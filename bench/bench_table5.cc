/**
 * @file
 * Table 5 — prime and probe latencies of the two Prime+Scope
 * strategies and Parallel Probing on Cloud Run.
 *
 * Paper reference: PS-Flush prime 6,024 +- 990, PS-Alt prime
 * 2,777 +- 735, Parallel prime 1,121 +- 448 cycles; probe 94 +- 0.7
 * (Prime+Scope) vs 118 +- 0.7 (Parallel) cycles.
 */

#include "attack/covert.hh"
#include "bench_common.hh"

#include <benchmark/benchmark.h>

namespace llcf {
namespace {

const MonitorKind kKinds[] = {MonitorKind::PsFlush, MonitorKind::PsAlt,
                              MonitorKind::Parallel};

void
BM_Table5(benchmark::State &state)
{
    const MonitorKind kind = kKinds[state.range(0)];
    const std::size_t trials = trialCount(6);

    SampleStats prime, probe;
    SuccessRate detection;
    for (auto _ : state) {
        for (std::size_t t = 0; t < trials; ++t) {
            BenchRig rig(skylakeSp(4), cloudRun(),
                         baseSeed() + t * 149, msToCycles(100.0));
            const unsigned w = rig.machine.config().sf.ways;
            const Addr sender = rig.pool->at(17 + t, 9);
            auto evset = groundTruthEvictionSet(rig.machine, *rig.pool,
                                                sender, w);
            std::vector<Addr> alt;
            if (kind == MonitorKind::PsAlt) {
                alt = groundTruthEvictionSet(rig.machine, *rig.pool,
                                             sender, w, w);
            }
            CovertParams params;
            params.accessInterval = 10000;
            params.accesses = 300;
            auto out = runCovertExperiment(*rig.session, kind, evset,
                                           alt, sender, params);
            prime.merge(out.primeLatency);
            probe.merge(out.probeLatency);
            detection.add(out.detectionRate > 0.5);
        }
    }
    state.counters["prime_mean_cyc"] = prime.mean();
    state.counters["prime_std_cyc"] = prime.stddev();
    state.counters["probe_mean_cyc"] = probe.mean();
    state.counters["probe_std_cyc"] = probe.stddev();

    std::printf("  %-10s prime %6.0f +- %5.0f cycles   probe %5.0f "
                "+- %4.1f cycles\n",
                monitorKindName(kind), prime.mean(), prime.stddev(),
                probe.mean(), probe.stddev());
}

BENCHMARK(BM_Table5)
    ->DenseRange(0, 2)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace llcf

BENCHMARK_MAIN();
