/**
 * @file
 * Table 5 — prime and probe latencies of the two Prime+Scope
 * strategies and Parallel Probing on Cloud Run.
 *
 * Paper reference: PS-Flush prime 6,024 +- 990, PS-Alt prime
 * 2,777 +- 735, Parallel prime 1,121 +- 448 cycles; probe 94 +- 0.7
 * (Prime+Scope) vs 118 +- 0.7 (Parallel) cycles.
 *
 * Runs on the harness: per-strategy trials fan across LLCF_THREADS
 * workers; BENCH_table5.json is identical for any thread count.
 */

#include "attack/covert.hh"
#include "bench_common.hh"

namespace llcf {
namespace {

const MonitorKind kKinds[] = {MonitorKind::PsFlush, MonitorKind::PsAlt,
                              MonitorKind::Parallel};

void
runCell(ExperimentSuite &suite, MonitorKind kind)
{
    char name[48];
    std::snprintf(name, sizeof(name), "%s @ cloud",
                  monitorKindName(kind));

    ExperimentConfig cfg;
    cfg.name = name;
    cfg.trials = trialCount(6);
    cfg.masterSeed = baseSeed();

    ExperimentRunner runner(cfg);
    ExperimentResult result = runner.run(
        [kind](TrialContext &ctx, TrialRecorder &rec) {
        const std::size_t t = ctx.index;
        ScenarioRig rig(benchSpec(/*env=*/1, 4, 100.0), ctx.seed);
        const unsigned w = rig.machine.config().sf.ways;
        const Addr sender = rig.pool->at(17 + t, 9);
        auto evset = groundTruthEvictionSet(rig.machine, *rig.pool,
                                            sender, w);
        std::vector<Addr> alt;
        if (kind == MonitorKind::PsAlt) {
            alt = groundTruthEvictionSet(rig.machine, *rig.pool,
                                         sender, w, w);
        }
        CovertParams params;
        params.accessInterval = 10000;
        params.accesses = 300;
        auto out = runCovertExperiment(*rig.session, kind, evset, alt,
                                       sender, params);
        for (double v : out.primeLatency.samples())
            rec.metric("prime_cyc", v);
        for (double v : out.probeLatency.samples())
            rec.metric("probe_cyc", v);
        rec.outcome("detected", out.detectionRate > 0.5);
    });

    const SampleStats *prime = result.metric("prime_cyc");
    const SampleStats *probe = result.metric("probe_cyc");
    if (prime && probe && !prime->empty() && !probe->empty()) {
        std::printf("  %-10s prime %6.0f +- %5.0f cycles   probe %5.0f "
                    "+- %4.1f cycles\n",
                    monitorKindName(kind), prime->mean(),
                    prime->stddev(), probe->mean(), probe->stddev());
    }
    suite.add(std::move(result));
}

int
benchMain()
{
    ExperimentSuite suite("table5");
    benchPrintHeader("Table 5");
    for (MonitorKind kind : kKinds)
        runCell(suite, kind);
    return benchWriteSuite(suite);
}

} // namespace
} // namespace llcf

int
main(int argc, char **argv)
{
    if (!llcf::benchRejectExtraArgs(llcf::benchParseArgs(argc, argv)))
        return 2;
    return llcf::benchMain();
}
