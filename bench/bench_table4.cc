/**
 * @file
 * Table 4 — eviction-set construction WITH L2-driven candidate
 * filtering, across the SingleSet / PageOffset / WholeSys scenarios
 * in both environments, for Gt, GtOp, PsBst (Prime+Scope with
 * filtering; Ps and PsOp perform alike there, the paper reports the
 * faster one) and BinS.
 *
 * Paper reference (Cloud Run): SingleSet ~27-33 ms each at 97-98%;
 * PageOffset Gt 5.51 s / GtOp 3.95 s / PsBst 4.51 s / BinS 2.87 s;
 * WholeSys Gt 301 s / GtOp 213 s / PsBst 244 s / BinS 142 s with
 * median success ~97-99%.  At the default scaled machine (8 slices,
 * U=256 instead of 896) absolute times shrink ~3.5x; the algorithm
 * ordering and success rates are the reproduction target.  WholeSys
 * is sampled over a subset of page offsets and extrapolated.
 *
 * Runs on the harness: trials of each cell fan out across
 * LLCF_THREADS workers, each on its own RNG stream, and the aggregate
 * table plus BENCH_table4.json is identical for any thread count.
 */

#include "bench_common.hh"

#include <vector>

#include "harness/experiment.hh"
#include "harness/thread_pool.hh"

namespace llcf {
namespace {

const PruneAlgo kAlgos[] = {PruneAlgo::Gt, PruneAlgo::GtOp,
                            PruneAlgo::PsOp, PruneAlgo::BinS};

const char *
algoLabel(int idx)
{
    return idx == 2 ? "PsBst" : pruneAlgoName(kAlgos[idx]);
}

std::string
cellName(const char *scenario, int algo_idx, int env)
{
    std::string name = scenario;
    name += ' ';
    name += algoLabel(algo_idx);
    name += " @ ";
    name += benchProfileName(env);
    return name;
}

/** Run one table cell and fold it into the suite + stdout table. */
const ExperimentResult &
runCell(ExperimentSuite &suite, const ExperimentConfig &cfg,
        const ExperimentRunner::TrialFn &fn)
{
    ExperimentRunner runner(cfg);
    ExperimentResult result = runner.run(fn);

    static const SuccessRate kNoRate;
    static const SampleStats kNoStats;
    const SuccessRate *sr = result.outcome("success");
    const SampleStats *times = result.metric("time_cycles");
    printRow(result.name().c_str(), sr ? *sr : kNoRate,
             times ? *times : kNoStats);
    suite.add(std::move(result));
    return suite.results().back();
}

void
runSingleSet(ExperimentSuite &suite, int algo_idx, int env)
{
    const PruneAlgo algo = kAlgos[algo_idx];
    ExperimentConfig cfg;
    cfg.name = cellName("SingleSet", algo_idx, env);
    cfg.trials = trialCount(8);
    cfg.masterSeed = baseSeed();

    runCell(suite, cfg, [algo, env](TrialContext &ctx, TrialRecorder &rec) {
        const std::size_t t = ctx.index;
        ScenarioRig rig(benchSpec(env, benchSlices(), 100.0),
                        ctx.seed);
        auto cands = rig.pool->candidatesAt(
            static_cast<unsigned>((3 * t) % kLinesPerPage));
        const Addr ta = cands[t % cands.size()];
        cands.erase(cands.begin() + static_cast<long>(t % cands.size()));
        EvictionSetBuilder builder(*rig.session, algo, true);
        auto out = builder.buildForTarget(ta, cands);
        rec.outcome("success", out.success && out.groundTruthValid);
        rec.metric("time_cycles", static_cast<double>(out.elapsed));
        rec.metric("time_ms", cyclesToMs(out.elapsed));
    });
}

void
runPageOffset(ExperimentSuite &suite, int algo_idx, int env)
{
    const PruneAlgo algo = kAlgos[algo_idx];
    ExperimentConfig cfg;
    cfg.name = cellName("PageOffset", algo_idx, env);
    cfg.trials = trialCount(2);
    cfg.masterSeed = baseSeed();

    runCell(suite, cfg, [algo, env](TrialContext &ctx, TrialRecorder &rec) {
        const std::size_t t = ctx.index;
        ScenarioRig rig(benchSpec(env, benchSlices(), 100.0),
                        ctx.seed);
        EvictionSetBuilder builder(*rig.session, algo, true);
        auto out = builder.buildAtLineIndex(
            *rig.pool,
            static_cast<unsigned>((7 * t + 1) % kLinesPerPage));
        for (unsigned i = 0; i < out.expectedSets; ++i)
            rec.outcome("success", i < out.validSets);
        rec.metric("time_cycles", static_cast<double>(out.elapsed));
        rec.metric("time_s", cyclesToSec(out.elapsed));
    });
}

void
runWholeSys(ExperimentSuite &suite, int algo_idx, int env)
{
    const PruneAlgo algo = kAlgos[algo_idx];
    // Sampled WholeSys: a subset of line indices, extrapolated to 64.
    const unsigned sample = fullScale()
                                ? kLinesPerPage
                                : static_cast<unsigned>(
                                      envU64("LLCF_WS_OFFSETS", 4));
    std::vector<unsigned> line_indices;
    for (unsigned i = 0; i < sample; ++i)
        line_indices.push_back(i * (kLinesPerPage / sample));

    char scenario[32];
    std::snprintf(scenario, sizeof(scenario), "WholeSys(%u/64 off)",
                  sample);
    ExperimentConfig cfg;
    cfg.name = cellName(scenario, algo_idx, env);
    cfg.trials = trialCount(1);
    cfg.masterSeed = baseSeed();

    const ExperimentResult &result = runCell(
        suite, cfg,
        [algo, env, sample, &line_indices](TrialContext &ctx,
                                           TrialRecorder &rec) {
        ScenarioRig rig(benchSpec(env, benchSlices(), 100.0),
                        ctx.seed);
        EvictionSetBuilder builder(*rig.session, algo, true);
        auto out = builder.buildWholeSystem(*rig.pool, line_indices);
        for (unsigned i = 0; i < out.expectedSets; ++i)
            rec.outcome("success", i < out.validSets);
        rec.metric("time_cycles", static_cast<double>(out.elapsed));
        rec.metric("sampled_s", cyclesToSec(out.elapsed));
        rec.metric("extrapolated_full_s",
                   cyclesToSec(out.elapsed) *
                       (static_cast<double>(kLinesPerPage) / sample));
    });
    const SampleStats *extrapolated = result.metric("extrapolated_full_s");
    std::printf("  %-28s extrapolated full-system time: %.1f s\n", "",
                extrapolated ? extrapolated->mean() : 0.0);
}

int
benchMain()
{
    ExperimentSuite suite("table4");
    benchPrintHeader("Table 4");

    std::printf("-- SingleSet --\n");
    for (int env = 0; env < 2; ++env) {
        for (int a = 0; a < 4; ++a)
            runSingleSet(suite, a, env);
    }
    std::printf("-- PageOffset --\n");
    for (int env = 0; env < 2; ++env) {
        for (int a = 0; a < 4; ++a)
            runPageOffset(suite, a, env);
    }
    std::printf("-- WholeSys --\n");
    for (int env = 0; env < 2; ++env) {
        for (int a = 0; a < 4; ++a)
            runWholeSys(suite, a, env);
    }

    return benchWriteSuite(suite);
}

} // namespace
} // namespace llcf

int
main(int argc, char **argv)
{
    if (!llcf::benchRejectExtraArgs(llcf::benchParseArgs(argc, argv)))
        return 2;
    return llcf::benchMain();
}
