/**
 * @file
 * Table 4 — eviction-set construction WITH L2-driven candidate
 * filtering, across the SingleSet / PageOffset / WholeSys scenarios
 * in both environments, for Gt, GtOp, PsBst (Prime+Scope with
 * filtering; Ps and PsOp perform alike there, the paper reports the
 * faster one) and BinS.
 *
 * Paper reference (Cloud Run): SingleSet ~27-33 ms each at 97-98%;
 * PageOffset Gt 5.51 s / GtOp 3.95 s / PsBst 4.51 s / BinS 2.87 s;
 * WholeSys Gt 301 s / GtOp 213 s / PsBst 244 s / BinS 142 s with
 * median success ~97-99%.  At the default scaled machine (8 slices,
 * U=256 instead of 896) absolute times shrink ~3.5x; the algorithm
 * ordering and success rates are the reproduction target.  WholeSys
 * is sampled over a subset of page offsets and extrapolated.
 */

#include "bench_common.hh"

namespace llcf {
namespace {

const PruneAlgo kAlgos[] = {PruneAlgo::Gt, PruneAlgo::GtOp,
                            PruneAlgo::PsOp, PruneAlgo::BinS};

const char *
algoLabel(int idx)
{
    return idx == 2 ? "PsBst" : pruneAlgoName(kAlgos[idx]);
}

void
BM_Table4_SingleSet(benchmark::State &state)
{
    const PruneAlgo algo = kAlgos[state.range(0)];
    const int env = static_cast<int>(state.range(1));
    const std::size_t trials = trialCount(8);

    SuccessRate sr;
    SampleStats times;
    for (auto _ : state) {
        for (std::size_t t = 0; t < trials; ++t) {
            BenchRig rig(benchSkylake(), benchProfile(env),
                         baseSeed() + t * 137, msToCycles(100.0));
            auto cands = rig.pool->candidatesAt(
                static_cast<unsigned>((3 * t) % kLinesPerPage));
            const Addr ta = cands[t % cands.size()];
            cands.erase(cands.begin() +
                        static_cast<long>(t % cands.size()));
            EvictionSetBuilder builder(*rig.session, algo, true);
            auto out = builder.buildForTarget(ta, cands);
            sr.add(out.success && out.groundTruthValid);
            times.add(static_cast<double>(out.elapsed));
        }
    }
    state.counters["succ_rate_pct"] = sr.rate() * 100.0;
    state.counters["avg_ms"] = cyclesToMs(
        static_cast<Cycles>(times.mean()));
    state.counters["med_ms"] = cyclesToMs(
        static_cast<Cycles>(times.median()));

    char label[64];
    std::snprintf(label, sizeof(label), "SingleSet %s @ %s",
                  algoLabel(static_cast<int>(state.range(0))),
                  benchProfileName(env));
    printRow(label, sr, times);
}

void
BM_Table4_PageOffset(benchmark::State &state)
{
    const PruneAlgo algo = kAlgos[state.range(0)];
    const int env = static_cast<int>(state.range(1));
    const std::size_t trials = trialCount(2);

    SuccessRate sr;
    SampleStats times;
    for (auto _ : state) {
        for (std::size_t t = 0; t < trials; ++t) {
            BenchRig rig(benchSkylake(), benchProfile(env),
                         baseSeed() + t * 139, msToCycles(100.0));
            EvictionSetBuilder builder(*rig.session, algo, true);
            auto out = builder.buildAtLineIndex(
                *rig.pool, static_cast<unsigned>((7 * t + 1) %
                                                 kLinesPerPage));
            for (unsigned i = 0; i < out.expectedSets; ++i)
                sr.add(i < out.validSets);
            times.add(static_cast<double>(out.elapsed));
        }
    }
    state.counters["succ_rate_pct"] = sr.rate() * 100.0;
    state.counters["avg_s"] = cyclesToSec(
        static_cast<Cycles>(times.mean()));

    char label[64];
    std::snprintf(label, sizeof(label), "PageOffset %s @ %s",
                  algoLabel(static_cast<int>(state.range(0))),
                  benchProfileName(env));
    printRow(label, sr, times);
}

void
BM_Table4_WholeSys(benchmark::State &state)
{
    const PruneAlgo algo = kAlgos[state.range(0)];
    const int env = static_cast<int>(state.range(1));
    // Sampled WholeSys: a subset of line indices, extrapolated to 64.
    const unsigned sample = fullScale() ? kLinesPerPage
                                        : static_cast<unsigned>(
                                              envU64("LLCF_WS_OFFSETS",
                                                     4));
    std::vector<unsigned> line_indices;
    for (unsigned i = 0; i < sample; ++i)
        line_indices.push_back(i * (kLinesPerPage / sample));

    SuccessRate sr;
    SampleStats times;
    double extrapolated_s = 0.0;
    for (auto _ : state) {
        BenchRig rig(benchSkylake(), benchProfile(env), baseSeed(),
                     msToCycles(100.0));
        EvictionSetBuilder builder(*rig.session, algo, true);
        auto out = builder.buildWholeSystem(*rig.pool, line_indices);
        for (unsigned i = 0; i < out.expectedSets; ++i)
            sr.add(i < out.validSets);
        times.add(static_cast<double>(out.elapsed));
        extrapolated_s = cyclesToSec(out.elapsed) *
                         (static_cast<double>(kLinesPerPage) / sample);
    }
    state.counters["succ_rate_pct"] = sr.rate() * 100.0;
    state.counters["sampled_s"] = cyclesToSec(
        static_cast<Cycles>(times.mean()));
    state.counters["extrapolated_full_s"] = extrapolated_s;

    char label[64];
    std::snprintf(label, sizeof(label),
                  "WholeSys(%u/64 off) %s @ %s", sample,
                  algoLabel(static_cast<int>(state.range(0))),
                  benchProfileName(env));
    printRow(label, sr, times);
    std::printf("  %-28s extrapolated full-system time: %.1f s\n",
                "", extrapolated_s);
}

BENCHMARK(BM_Table4_SingleSet)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Table4_PageOffset)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);
BENCHMARK(BM_Table4_WholeSys)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

} // namespace
} // namespace llcf

BENCHMARK_MAIN();
