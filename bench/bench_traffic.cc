/**
 * @file
 * The heavy-traffic matrix and its CI gate.
 *
 * Runs the registered traffic-* scenario cells (the traffic axis in
 * src/scenario/registry.cc: open-loop victim arrivals, bursty
 * co-tenant load, the AES T-table victim family, mid-campaign key
 * rotation and the adaptive scanner) and writes one
 * BENCH_traffic.json entry per cell: the stage's headline success
 * rate under load, the attack cost in simulated cycles, and the
 * traffic_* series (offered rate, arrivals served, queue delay,
 * co-tenant accesses, key epochs) that price the load itself.
 *
 * On top of the fixed cells the bench sweeps the rotation campaign
 * across scan cycle budgets — the keys-per-cycle-budget curve (see
 * README): one traffic-budget-* row per budget, each reporting how
 * many rotation epochs the fixed fleet recovers when Step 2 is given
 * that much virtual time.
 *
 *   bench_traffic --list                     enumerate traffic cells
 *   bench_traffic                            run every cell, full trials
 *   bench_traffic --scenario=traffic-aes-*   run a named subset
 *   bench_traffic --smoke                    trials capped at 2 per cell
 *   bench_traffic --smoke --baseline=BENCH_traffic.json
 *                                            + regression gate; exits 1
 *                                            on violation
 *
 * Three properties are gated unconditionally, baseline or not:
 *
 *  - the AES cell (traffic-aes-tiny-e2e) must recover at least one
 *    key-byte nibble block per trial on average — the line-granular
 *    extractor stays demonstrated end to end;
 *  - the saturated sparse cell (traffic-sparse-tiny-scan) must record
 *    an explicit target_found outcome — degrading under load must
 *    produce a scored miss, never a crash or a missing series;
 *  - the rotation campaign (traffic-rotate-tiny-campaign-2) must
 *    observe more than one key epoch, so per-epoch scoring is
 *    actually exercised.
 *
 * For a fixed seed the JSON is byte-identical at any worker-thread
 * count (each trial world is rebuilt from its positional stream; CI
 * diffs 1-thread vs 8-thread --smoke runs).  The checked-in baseline
 * at the repository root is regenerated with:
 *   ./build/bench_traffic --smoke --json-out=BENCH_traffic.json
 */

#include "bench_common.hh"

#include <cstdio>

#include "harness/json.hh"
#include "scenario/registry.hh"
#include "traffic/traffic.hh"
#include "victim/victim.hh"

namespace llcf {
namespace {

/** Absolute drift allowed on success rates by the gate: one trial of
 *  a 2-3 trial smoke cell may flip without failing CI. */
constexpr double kRateTolerance = 0.51;

/** Relative drift allowed on the attack-cycles mean. */
constexpr double kCyclesTolerance = 0.5;

/** The AES end-to-end cell and its nibble-recovery floor. */
constexpr const char *kNibbleCell = "traffic-aes-tiny-e2e";
constexpr double kNibbleFloor = 1.0;

/** The saturated cell that must degrade explicitly, not crash. */
constexpr const char *kDegradedCell = "traffic-sparse-tiny-scan";

/** The rotation campaign that must span multiple key epochs. */
constexpr const char *kRotateCell = "traffic-rotate-tiny-campaign-2";

/** Step-2 budgets (seconds of virtual time) for the
 *  keys-per-cycle-budget sweep over the rotation campaign.  The
 *  campaign's scan costs ~15 ms on the tiny host, so the sweep
 *  brackets it: starved, tight, and slack. */
constexpr double kBudgetSweepSec[] = {0.005, 0.02, 1.0};

/** The stage's headline attack outcome. */
const char *
primaryOutcome(ScenarioStage stage)
{
    switch (stage) {
      case ScenarioStage::EvsetBuild:
        return "success";
      case ScenarioStage::Scan:
      case ScenarioStage::EndToEnd:
        return "target_correct";
      case ScenarioStage::Campaign:
        return "key_recovered";
      case ScenarioStage::Calibrate:
        return "topology_match";
    }
    return "success";
}

/** The stage's attack-cost metric. */
const char *
primaryCycles(ScenarioStage stage)
{
    switch (stage) {
      case ScenarioStage::EvsetBuild:
        return "build_cycles";
      case ScenarioStage::Scan:
        return "scan_cycles";
      case ScenarioStage::EndToEnd:
      case ScenarioStage::Campaign:
        return "total_cycles";
      case ScenarioStage::Calibrate:
        return "calib_cycles";
    }
    return "build_cycles";
}

std::vector<const ScenarioSpec *>
trafficSpecs(const ScenarioRegistry &reg, bool scenario_given,
             const std::string &selection)
{
    std::vector<const ScenarioSpec *> specs;
    if (!scenario_given) {
        for (const ScenarioSpec &s : reg.all()) {
            if (s.trafficDomain())
                specs.push_back(&s);
        }
        return specs;
    }
    if (selection.empty())
        return specs;
    for (const ScenarioSpec *s : reg.select(selection)) {
        if (!s->trafficDomain()) {
            std::fprintf(stderr,
                         "bench_traffic: '%s' has no traffic axis "
                         "(those cells run under bench_matrix, "
                         "bench_e2e, bench_calib or bench_defense)\n",
                         s->name.c_str());
            std::exit(2);
        }
        specs.push_back(s);
    }
    return specs;
}

/** Short per-cell load label for --list. */
std::string
loadLabel(const ScenarioSpec &s)
{
    char buf[48];
    if (s.victimArrival.active()) {
        std::snprintf(buf, sizeof(buf), "%s %.0f/s",
                      arrivalKindName(s.victimArrival.kind),
                      s.victimArrival.ratePerSec);
    } else {
        std::snprintf(buf, sizeof(buf), "closed");
    }
    std::string label = buf;
    if (s.coTenants > 0) {
        std::snprintf(buf, sizeof(buf), " +%ux%.0f/s", s.coTenants,
                      s.coTenantRps);
        label += buf;
    }
    if (s.rotateKeys > 0) {
        std::snprintf(buf, sizeof(buf), " rot%llu",
                      static_cast<unsigned long long>(s.rotateKeys));
        label += buf;
    }
    if (s.adaptiveScan)
        label += " ucb";
    return label;
}

void
listCells(const std::vector<const ScenarioSpec *> &specs)
{
    std::printf("%-30s %-11s %-6s %-22s %s\n", "name", "stage",
                "victim", "load", "description");
    for (const ScenarioSpec *s : specs) {
        std::printf("%-30s %-11s %-6s %-22s %s\n", s->name.c_str(),
                    scenarioStageName(s->stage),
                    victimFamilyName(s->victimFamily),
                    loadLabel(*s).c_str(), s->description.c_str());
    }
}

void
printCellRow(const ScenarioSpec &spec, const ExperimentResult &r)
{
    const SuccessRate *sr = r.outcome(primaryOutcome(spec.stage));
    const SampleStats *cycles = r.metric(primaryCycles(spec.stage));
    const SampleStats *arrivals = r.metric("traffic_victim_arrivals");
    const SampleStats *delay = r.metric("traffic_queue_delay_cycles");
    const SampleStats *epochs = r.metric("traffic_epochs");
    std::printf("  %-30s %-22s succ %5.1f%%  cost %10s  "
                "arr %6.1f  qdelay %10s  epochs %4.1f\n",
                r.name().c_str(), loadLabel(spec).c_str(),
                sr ? sr->rate() * 100.0 : 0.0,
                cycles && !cycles->empty()
                    ? formatDuration(cycles->mean()).c_str()
                    : "-",
                arrivals && !arrivals->empty() ? arrivals->mean() : 0.0,
                delay && !delay->empty()
                    ? formatDuration(delay->mean()).c_str()
                    : "-",
                epochs && !epochs->empty() ? epochs->mean() : 0.0);
}

/**
 * The unconditional invariants: the AES extractor keeps recovering
 * nibbles, the saturated cell keeps failing *explicitly*, and the
 * rotation campaign keeps spanning epochs.  Returns violations.
 */
unsigned
gateInvariants(const ExperimentSuite &suite)
{
    unsigned violations = 0;
    for (const ExperimentResult &r : suite.results()) {
        if (r.name() == kNibbleCell) {
            const SampleStats *nibbles =
                r.metric("aes_nibbles_correct");
            const double mean =
                nibbles && !nibbles->empty() ? nibbles->mean() : 0.0;
            if (mean < kNibbleFloor) {
                std::fprintf(stderr,
                             "FAIL %s: %.2f correct nibbles per "
                             "trial < %.1f — the AES line-granular "
                             "extractor no longer recovers key "
                             "material\n",
                             r.name().c_str(), mean, kNibbleFloor);
                ++violations;
            }
        }
        if (r.name() == kDegradedCell) {
            const SuccessRate *found = r.outcome("target_found");
            if (!found) {
                std::fprintf(stderr,
                             "FAIL %s: no target_found outcome — "
                             "the starved cell must degrade to an "
                             "explicit scored miss, not a missing "
                             "series\n",
                             r.name().c_str());
                ++violations;
            } else if (found->rate() > 0.5) {
                std::fprintf(stderr,
                             "FAIL %s: target_found rate %.3f > 0.50 "
                             "— the sparse victim no longer starves "
                             "the scan budget, so the degraded row "
                             "demonstrates nothing\n",
                             r.name().c_str(), found->rate());
                ++violations;
            }
        }
        if (r.name() == kRotateCell) {
            const SampleStats *epochs = r.metric("traffic_epochs");
            const double mean =
                epochs && !epochs->empty() ? epochs->mean() : 0.0;
            if (mean <= 1.0) {
                std::fprintf(stderr,
                             "FAIL %s: %.2f key epochs observed — "
                             "rotation never advanced, per-epoch "
                             "scoring is untested\n",
                             r.name().c_str(), mean);
                ++violations;
            }
        }
    }
    return violations;
}

/**
 * Gate the suite against a checked-in baseline.  Returns the number
 * of violations; a stale or unreadable baseline counts as one so the
 * gate cannot silently pass.
 */
unsigned
gateAgainstBaseline(const ExperimentSuite &suite,
                    const std::vector<const ScenarioSpec *> &specs,
                    const std::string &path)
{
    JsonValue doc;
    if (!benchLoadBaseline(path, doc))
        return 1;
    const double rate_tol =
        benchBaselineTolerance(doc, "rate_tolerance", kRateTolerance);
    const double cyc_tol = benchBaselineTolerance(
        doc, "cycles_tolerance", kCyclesTolerance);

    unsigned violations = 0;
    for (const ExperimentResult &r : suite.results()) {
        const ScenarioSpec *spec = nullptr;
        for (const ScenarioSpec *s : specs) {
            if (s->name == r.name())
                spec = s;
        }
        if (!spec)
            continue;
        const JsonValue *base = benchBaselineEntry(doc, r.name());
        if (!base) {
            std::fprintf(stderr,
                         "FAIL %s: cell missing from baseline "
                         "(regenerate %s)\n",
                         r.name().c_str(), path.c_str());
            ++violations;
            continue;
        }
        const char *outcome = primaryOutcome(spec->stage);
        const JsonValue *want = base->find("outcomes", outcome, "rate");
        const SuccessRate *got = r.outcome(outcome);
        const bool want_has = want && want->isNumber();
        if (!want_has && !got) {
            // A cell saturated enough to kill an earlier stage leaves
            // the later stage's series unrecorded — in the run AND
            // the baseline.  Both degrading identically is the
            // expected band, not a gate failure.
        } else if (!want_has || !got) {
            std::fprintf(stderr,
                         "FAIL %s: no comparable %s rate "
                         "(regenerate %s)\n",
                         r.name().c_str(), outcome, path.c_str());
            ++violations;
        } else {
            const double w = want->asNumber();
            if (got->rate() < w - rate_tol ||
                got->rate() > w + rate_tol) {
                std::fprintf(stderr,
                             "FAIL %s/%s: %.3f outside "
                             "[%.3f, %.3f]\n",
                             r.name().c_str(), outcome, got->rate(),
                             w - rate_tol, w + rate_tol);
                ++violations;
            }
        }
        const char *cost = primaryCycles(spec->stage);
        const JsonValue *mean = base->find("metrics", cost, "mean");
        const SampleStats *cycles = r.metric(cost);
        const bool mean_has = mean && mean->isNumber();
        const bool cycles_has = cycles && !cycles->empty();
        if (!mean_has && !cycles_has) {
            // Same as above: stage never reached on either side.
        } else if (!mean_has || !cycles_has) {
            std::fprintf(stderr,
                         "FAIL %s: no comparable %s "
                         "(regenerate %s)\n",
                         r.name().c_str(), cost, path.c_str());
            ++violations;
        } else {
            const double w = mean->asNumber();
            const double lo = w * (1.0 - cyc_tol);
            const double hi = w * (1.0 + cyc_tol);
            if (cycles->mean() < lo || cycles->mean() > hi) {
                std::fprintf(stderr,
                             "FAIL %s/%s: %.4g outside "
                             "[%.4g, %.4g] (baseline %.4g)\n",
                             r.name().c_str(), cost, cycles->mean(),
                             lo, hi, w);
                ++violations;
            }
        }
    }
    if (violations == 0)
        std::printf("traffic gate: all cells within band of %s\n",
                    path.c_str());
    return violations;
}

/**
 * The keys-per-cycle-budget sweep: clone the rotation campaign at
 * each Step-2 budget and report the epoch keys the fixed fleet
 * recovers under it.  The clones are real suite rows (and gate
 * against the baseline like any cell), named traffic-budget-<ms>.
 */
std::vector<ScenarioSpec>
budgetSweepSpecs(const ScenarioRegistry &reg)
{
    std::vector<ScenarioSpec> sweep;
    const auto base = reg.select(kRotateCell);
    if (base.size() != 1)
        return sweep;
    for (double sec : kBudgetSweepSec) {
        ScenarioSpec s = *base.front();
        char name[48];
        std::snprintf(name, sizeof(name), "traffic-budget-%.0fms",
                      sec * 1e3);
        s.name = name;
        char desc[96];
        std::snprintf(desc, sizeof(desc),
                      "Rotation campaign at a %.0f ms Step-2 budget "
                      "(keys-per-cycle-budget curve)",
                      sec * 1e3);
        s.description = desc;
        s.scanTimeoutSec = sec;
        sweep.push_back(std::move(s));
    }
    return sweep;
}

int
benchMain(bool list, bool smoke, bool scenario_given,
          const std::string &selection, const std::string &baseline)
{
    const ScenarioRegistry &reg = builtinScenarios();
    auto specs = trafficSpecs(reg, scenario_given, selection);
    // The budget sweep runs only on full, unselected runs — a
    // --scenario subset means the caller wants those cells alone.
    std::vector<ScenarioSpec> sweep;
    if (!scenario_given)
        sweep = budgetSweepSpecs(reg);
    for (const ScenarioSpec &s : sweep)
        specs.push_back(&s);

    if (list) {
        listCells(specs);
        return 0;
    }
    if (specs.empty()) {
        std::fprintf(stderr,
                     "bench_traffic: no traffic scenarios matched "
                     "'%s' (try --list)\n",
                     selection.c_str());
        return 1;
    }

    benchPrintHeader("Heavy-traffic matrix");
    ExperimentSuite suite("traffic");
    suite.contextValue("rate_tolerance", kRateTolerance);
    suite.contextValue("cycles_tolerance", kCyclesTolerance);
    for (const ScenarioSpec *spec : specs) {
        const std::size_t trials =
            smoke ? std::min<std::size_t>(spec->defaultTrials, 2)
                  : trialCount(spec->defaultTrials);
        ExperimentResult result =
            runScenario(*spec, trials, 0, baseSeed());
        printCellRow(*spec, result);
        suite.add(std::move(result));
    }

    unsigned violations = gateInvariants(suite);
    // Gate before writing: when the output path and the baseline are
    // the same file, writing first would clobber the baseline and
    // gate the run against itself.
    if (!baseline.empty())
        violations += gateAgainstBaseline(suite, specs, baseline);
    const std::string out = suite.writeFile();
    if (out.empty()) {
        std::fprintf(stderr, "failed to write JSON output\n");
        return 1;
    }
    std::printf("wrote %s\n", out.c_str());
    return violations == 0 ? 0 : 1;
}

} // namespace
} // namespace llcf

int
main(int argc, char **argv)
{
    bool list = false;
    bool smoke = false;
    bool scenario_given = false;
    std::string selection;
    std::string baseline;
    std::vector<std::string> unknown;
    for (const std::string &arg : llcf::benchParseArgs(argc, argv)) {
        if (arg == "--list") {
            list = true;
        } else if (arg == "--smoke") {
            smoke = true;
        } else if (arg.rfind("--scenario=", 0) == 0) {
            scenario_given = true;
            if (!selection.empty())
                selection += ',';
            selection += arg.substr(sizeof("--scenario=") - 1);
        } else if (arg.rfind("--baseline=", 0) == 0) {
            baseline = arg.substr(sizeof("--baseline=") - 1);
        } else {
            unknown.push_back(arg);
        }
    }
    if (!llcf::benchRejectExtraArgs(unknown)) {
        std::fprintf(stderr,
                     "bench_traffic flags: --list --smoke "
                     "--scenario=<name[,name...]> "
                     "--baseline=BENCH_traffic.json\n");
        return 2;
    }
    return llcf::benchMain(list, smoke, scenario_given, selection,
                           baseline);
}
