#include "bench_common.hh"

#include <cstdlib>
#include <cstring>

#include "harness/thread_pool.hh"

namespace llcf {
namespace {

[[noreturn]] void
printUsageAndExit(const char *prog, int code)
{
    std::FILE *out = code == 0 ? stdout : stderr;
    std::fprintf(out,
                 "usage: %s [--seed=N] [--trials=N] [--threads=N]\n"
                 "          [--json-out=PATH] [--full-scale] "
                 "[--counters]\n"
                 "          [bench-specific flags]\n",
                 prog);
    std::exit(code);
}

/** "--flag=value" -> setenv(env, value); true if consumed. */
bool
consumeEnvFlag(const std::string &arg, const char *flag,
               const char *env, const char *prog)
{
    const std::size_t n = std::strlen(flag);
    if (arg.compare(0, n, flag) != 0)
        return false;
    if (arg.size() == n || arg[n] != '=')
        return false;
    if (arg.size() == n + 1) {
        std::fprintf(stderr, "%s: %s needs a value\n", prog, flag);
        printUsageAndExit(prog, 2);
    }
    setenv(env, arg.c_str() + n + 1, 1);
    return true;
}

} // namespace

std::vector<std::string>
benchParseArgs(int argc, char **argv)
{
    const char *prog = argc > 0 ? argv[0] : "bench";
    std::vector<std::string> extra;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            printUsageAndExit(prog, 0);
        if (arg == "--full-scale") {
            setenv("LLCF_FULL_SCALE", "1", 1);
            continue;
        }
        if (arg == "--counters") {
            setenv("LLCF_COUNTERS", "1", 1);
            continue;
        }
        if (consumeEnvFlag(arg, "--seed", "LLCF_SEED", prog) ||
            consumeEnvFlag(arg, "--trials", "LLCF_TRIALS", prog) ||
            consumeEnvFlag(arg, "--threads", "LLCF_THREADS", prog) ||
            consumeEnvFlag(arg, "--json-out", "LLCF_JSON_OUT", prog)) {
            continue;
        }
        extra.push_back(arg);
    }
    return extra;
}

bool
benchRejectExtraArgs(const std::vector<std::string> &extra)
{
    if (extra.empty())
        return true;
    for (const auto &arg : extra)
        std::fprintf(stderr, "unrecognised argument: %s\n", arg.c_str());
    return false;
}

void
benchPrintHeader(const char *title)
{
    std::printf("%s (harness: %u threads, seed %llu)\n", title,
                resolveThreadCount(),
                static_cast<unsigned long long>(baseSeed()));
}

int
benchWriteSuite(const ExperimentSuite &suite)
{
    const std::string path = suite.writeFile();
    if (path.empty()) {
        std::fprintf(stderr, "failed to write JSON output\n");
        return 1;
    }
    std::printf("wrote %s\n", path.c_str());
    return 0;
}

bool
benchLoadBaseline(const std::string &path, JsonValue &doc)
{
    std::string err;
    if (!loadJsonFile(path, doc, &err)) {
        std::fprintf(stderr, "baseline: %s\n", err.c_str());
        return false;
    }
    const JsonValue *list = doc.find("benchmarks");
    if (!list || !list->isArray()) {
        std::fprintf(stderr, "baseline %s: no benchmarks array\n",
                     path.c_str());
        return false;
    }
    return true;
}

double
benchBaselineTolerance(const JsonValue &doc, const char *key,
                       double def)
{
    const JsonValue *t = doc.find("context", key);
    return t && t->isNumber() ? t->asNumber() : def;
}

const JsonValue *
benchBaselineEntry(const JsonValue &doc, const std::string &name)
{
    const JsonValue *list = doc.find("benchmarks");
    if (!list || !list->isArray())
        return nullptr;
    for (const JsonValue &b : list->items()) {
        const JsonValue *bn = b.find("name");
        if (bn && bn->kind() == JsonValue::Kind::String &&
            bn->asString() == name) {
            return &b;
        }
    }
    return nullptr;
}

} // namespace llcf
