/**
 * @file
 * Fleet-scale end-to-end key-recovery campaigns and their CI gate.
 *
 * Runs the registered Stage::Campaign scenarios (see src/campaign/)
 * through KeyRecoveryCampaign and writes one BENCH_e2e.json entry per
 * campaign: the per-victim aggregates plus the fleet summary (keys
 * recovered, fleet success rate, simulated cycles per recovered key).
 *
 *   bench_e2e --list                    enumerate campaign scenarios
 *   bench_e2e                           run every campaign, full fleets
 *   bench_e2e --scenario=campaign-skl-* run a named subset (globs ok)
 *   bench_e2e --smoke                   fleets capped at 2 victims
 *   bench_e2e --smoke --baseline=BENCH_e2e.json
 *                                       + regression gate: fleet
 *                                       success rates inside the
 *                                       baseline's absolute band,
 *                                       per-victim total cycles inside
 *                                       the relative band; exits 1
 *                                       on a violation
 *
 * For a fixed seed the JSON is byte-identical at any worker-thread
 * count (each victim world is rebuilt from its positional trial
 * stream; CI diffs 1-thread vs 8-thread --smoke runs).  Wall-clock
 * numbers stay on stdout.  The checked-in baseline at the repository
 * root is regenerated with:
 *   ./build/bench_e2e --smoke --json-out=BENCH_e2e.json
 */

#include "bench_common.hh"

#include <cstdio>

#include "campaign/campaign.hh"
#include "harness/json.hh"
#include "scenario/registry.hh"

namespace llcf {
namespace {

/** Absolute drift allowed on fleet success rates by the --smoke
 *  gate: one victim of a smoke fleet may flip without failing CI
 *  (the pipeline is deterministic per seed but not per libm). */
constexpr double kRateTolerance = 0.5;

/** Relative drift allowed on the per-victim total_cycles mean. */
constexpr double kCyclesTolerance = 0.5;

/** Victims per campaign in --smoke mode. */
constexpr std::size_t kSmokeFleet = 2;

std::vector<const ScenarioSpec *>
campaignSpecs(const ScenarioRegistry &reg, bool scenario_given,
              const std::string &selection)
{
    std::vector<const ScenarioSpec *> specs;
    if (!scenario_given) {
        for (const ScenarioSpec &s : reg.all()) {
            if (s.stage == ScenarioStage::Campaign)
                specs.push_back(&s);
        }
        return specs;
    }
    if (selection.empty())
        return specs;
    for (const ScenarioSpec *s : reg.select(selection)) {
        if (s->stage != ScenarioStage::Campaign) {
            std::fprintf(stderr,
                         "bench_e2e: '%s' is a %s scenario, not a "
                         "campaign (those run under bench_matrix)\n",
                         s->name.c_str(), scenarioStageName(s->stage));
            std::exit(2);
        }
        specs.push_back(s);
    }
    return specs;
}

void
listCampaigns(const std::vector<const ScenarioSpec *> &specs)
{
    std::printf("%-28s %-18s %-8s %6s %-15s %s\n", "name", "machine",
                "repl", "fleet", "noise", "description");
    for (const ScenarioSpec *s : specs) {
        char machine[32];
        std::snprintf(machine, sizeof(machine), "%s/%usl",
                      scenarioMachineName(s->machine), s->slices);
        std::printf("%-28s %-18s %-8s %6u %-15s %s\n", s->name.c_str(),
                    machine, replKindName(s->sharedRepl), s->fleetSize,
                    s->noise.c_str(), s->description.c_str());
    }
}

void
printCampaignRow(const CampaignResult &r)
{
    const CampaignSummary &s = r.summary;
    std::printf("  %-28s fleet %3zu  keys %3zu  succ %5.1f%%  ",
                r.experiment.name().c_str(), s.fleet, s.keysRecovered,
                s.fleetSuccessRate * 100.0);
    if (s.keysRecovered > 0) {
        std::printf("%10s/key", formatDuration(
                                    s.cyclesPerRecoveredKey).c_str());
    } else {
        std::printf("%14s", "-");
    }
    std::printf("  wall %6.1f s\n", s.wallSeconds);
}

/**
 * Gate the suite against a checked-in baseline.  Returns the number
 * of violations; a stale or unreadable baseline counts as one so the
 * gate cannot silently pass.
 */
unsigned
gateAgainstBaseline(const CampaignSuite &suite, const std::string &path)
{
    JsonValue doc;
    if (!benchLoadBaseline(path, doc))
        return 1;
    const double rate_tol =
        benchBaselineTolerance(doc, "rate_tolerance", kRateTolerance);
    const double cyc_tol = benchBaselineTolerance(
        doc, "cycles_tolerance", kCyclesTolerance);

    unsigned violations = 0;
    for (const CampaignResult &r : suite.results()) {
        const std::string &name = r.experiment.name();
        const JsonValue *base = benchBaselineEntry(doc, name);
        if (!base) {
            std::fprintf(stderr,
                         "FAIL %s: campaign missing from baseline "
                         "(regenerate %s)\n",
                         name.c_str(), path.c_str());
            ++violations;
            continue;
        }
        const JsonValue *rate =
            base->find("campaign", "fleet_success_rate");
        if (!rate || !rate->isNumber()) {
            std::fprintf(stderr,
                         "FAIL %s: no baseline fleet_success_rate "
                         "(regenerate %s)\n",
                         name.c_str(), path.c_str());
            ++violations;
        } else {
            const double want = rate->asNumber();
            const double got = r.summary.fleetSuccessRate;
            if (got < want - rate_tol || got > want + rate_tol) {
                std::fprintf(stderr,
                             "FAIL %s/fleet_success_rate: %.3f "
                             "outside [%.3f, %.3f]\n",
                             name.c_str(), got, want - rate_tol,
                             want + rate_tol);
                ++violations;
            }
        }
        const JsonValue *mean =
            base->find("metrics", "total_cycles", "mean");
        const SampleStats *total =
            r.experiment.metric("total_cycles");
        if (!mean || !mean->isNumber() || !total || total->empty()) {
            std::fprintf(stderr,
                         "FAIL %s: no comparable total_cycles "
                         "(regenerate %s)\n",
                         name.c_str(), path.c_str());
            ++violations;
        } else {
            const double want = mean->asNumber();
            const double lo = want * (1.0 - cyc_tol);
            const double hi = want * (1.0 + cyc_tol);
            const double got = total->mean();
            if (got < lo || got > hi) {
                std::fprintf(stderr,
                             "FAIL %s/total_cycles: %.4g outside "
                             "[%.4g, %.4g] (baseline %.4g)\n",
                             name.c_str(), got, lo, hi, want);
                ++violations;
            }
        }
    }
    if (violations == 0)
        std::printf("e2e gate: all campaigns within band of %s\n",
                    path.c_str());
    return violations;
}

int
benchMain(bool list, bool smoke, bool scenario_given,
          const std::string &selection, const std::string &baseline)
{
    const auto specs = campaignSpecs(builtinScenarios(), scenario_given,
                                     selection);
    if (list) {
        listCampaigns(specs);
        return 0;
    }
    if (specs.empty()) {
        std::fprintf(stderr,
                     "bench_e2e: no campaigns matched '%s' "
                     "(try --list)\n",
                     selection.c_str());
        return 1;
    }

    benchPrintHeader("End-to-end key-recovery campaigns");
    CampaignSuite suite("e2e");
    suite.contextValue("rate_tolerance", kRateTolerance);
    suite.contextValue("cycles_tolerance", kCyclesTolerance);
    for (const ScenarioSpec *spec : specs) {
        const std::size_t fleet =
            smoke ? std::min<std::size_t>(spec->fleetSize, kSmokeFleet)
                  : trialCount(spec->fleetSize);
        KeyRecoveryCampaign campaign(*spec);
        CampaignResult result = campaign.run(fleet, 0, baseSeed());
        printCampaignRow(result);
        suite.add(std::move(result));
    }

    // Gate against the baseline *before* writing the suite: when the
    // output path and the baseline are the same file (e.g. running
    // the gate from the repo root with no --json-out), writing first
    // would clobber the baseline and gate the run against itself.
    const bool gate_ok =
        baseline.empty() || gateAgainstBaseline(suite, baseline) == 0;
    const std::string out = suite.writeFile();
    if (out.empty()) {
        std::fprintf(stderr, "failed to write JSON output\n");
        return 1;
    }
    std::printf("wrote %s\n", out.c_str());
    return gate_ok ? 0 : 1;
}

} // namespace
} // namespace llcf

int
main(int argc, char **argv)
{
    bool list = false;
    bool smoke = false;
    bool scenario_given = false;
    std::string selection;
    std::string baseline;
    std::vector<std::string> unknown;
    for (const std::string &arg : llcf::benchParseArgs(argc, argv)) {
        if (arg == "--list") {
            list = true;
        } else if (arg == "--smoke") {
            smoke = true;
        } else if (arg.rfind("--scenario=", 0) == 0) {
            scenario_given = true;
            if (!selection.empty())
                selection += ',';
            selection += arg.substr(sizeof("--scenario=") - 1);
        } else if (arg.rfind("--baseline=", 0) == 0) {
            baseline = arg.substr(sizeof("--baseline=") - 1);
        } else {
            unknown.push_back(arg);
        }
    }
    if (!llcf::benchRejectExtraArgs(unknown)) {
        std::fprintf(stderr,
                     "bench_e2e flags: --list --smoke "
                     "--scenario=<name[,name...]> "
                     "--baseline=BENCH_e2e.json\n");
        return 2;
    }
    return llcf::benchMain(list, smoke, scenario_given, selection,
                           baseline);
}
