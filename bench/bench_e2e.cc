/**
 * @file
 * Fleet-scale end-to-end key-recovery campaigns and their CI gate.
 *
 * Runs the registered Stage::Campaign scenarios (see src/campaign/)
 * through KeyRecoveryCampaign and writes one BENCH_e2e.json entry per
 * campaign: the per-victim aggregates plus the fleet summary (keys
 * recovered, fleet success rate, simulated cycles per recovered key).
 *
 *   bench_e2e --list                    enumerate campaign scenarios
 *   bench_e2e                           run every campaign, full fleets
 *   bench_e2e --scenario=campaign-skl-* run a named subset (globs ok)
 *   bench_e2e --smoke                   fleets capped at 2 victims
 *   bench_e2e --smoke --baseline=BENCH_e2e.json
 *                                       + regression gate: fleet
 *                                       success rates inside the
 *                                       baseline's absolute band,
 *                                       per-victim total cycles inside
 *                                       the relative band; exits 1
 *                                       on a violation
 *   bench_e2e --full-scale              the paper-scale tier: runs the
 *                                       fullScaleOnly fork campaigns
 *                                       (>= 10^5 victims) and writes
 *                                       BENCH_fullscale.json with a
 *                                       simulated keys/hour headline
 *   bench_e2e --checkpoint=cp.json [--resume] [--stop-after-shards=N]
 *                                       shard-boundary checkpointing
 *                                       for one selected campaign; an
 *                                       interrupted run exits 3 and
 *                                       writes no JSON — resume it
 *
 * For a fixed seed the JSON is byte-identical at any worker-thread
 * count, and a resumed run's JSON is byte-identical to an
 * uninterrupted one (each victim world derives from its positional
 * trial stream; shards fold in trial order; CI diffs 1-thread vs
 * 8-thread --smoke runs plus an interrupt/resume pair).  Wall-clock
 * numbers stay on stdout.  The checked-in baselines at the repository
 * root are regenerated with:
 *   ./build/bench_e2e --smoke --json-out=BENCH_e2e.json
 *   ./build/bench_e2e --full-scale --trials=2000 \
 *       --json-out=BENCH_fullscale.json
 * (the committed full-scale baseline uses a 2,000-victim fleet: its
 * per-victim bands cover both CI's 200-victim gate and the nightly
 * true 10^5 fleet, which regenerating at full scale would take hours
 * to reproduce).
 */

#include "bench_common.hh"

#include <cstdio>
#include <cstdlib>

#include "campaign/campaign.hh"
#include "harness/json.hh"
#include "scenario/registry.hh"

namespace llcf {
namespace {

/** Absolute drift allowed on fleet success rates by the --smoke
 *  gate: one victim of a smoke fleet may flip without failing CI
 *  (the pipeline is deterministic per seed but not per libm). */
constexpr double kRateTolerance = 0.5;

/** Relative drift allowed on the per-victim total_cycles mean. */
constexpr double kCyclesTolerance = 0.5;

/** Victims per campaign in --smoke mode. */
constexpr std::size_t kSmokeFleet = 2;

std::vector<const ScenarioSpec *>
campaignSpecs(const ScenarioRegistry &reg, bool scenario_given,
              const std::string &selection)
{
    std::vector<const ScenarioSpec *> specs;
    if (!scenario_given) {
        // The default and --full-scale selections are disjoint tiers:
        // fullScaleOnly campaigns are far too large for the default
        // run, and the default campaigns would dilute the full-scale
        // document's meaning.
        for (const ScenarioSpec &s : reg.all()) {
            if (s.stage == ScenarioStage::Campaign &&
                s.fullScaleOnly == fullScale() &&
                !s.defense.recordsMetrics() && // bench_defense's domain
                !s.trafficDomain())            // bench_traffic's domain
                specs.push_back(&s);
        }
        return specs;
    }
    if (selection.empty())
        return specs;
    for (const ScenarioSpec *s : reg.select(selection)) {
        if (s->stage != ScenarioStage::Campaign) {
            std::fprintf(stderr,
                         "bench_e2e: '%s' is a %s scenario, not a "
                         "campaign (those run under bench_matrix)\n",
                         s->name.c_str(), scenarioStageName(s->stage));
            std::exit(2);
        }
        specs.push_back(s);
    }
    return specs;
}

void
listCampaigns(const std::vector<const ScenarioSpec *> &specs)
{
    std::printf("%-28s %-18s %-8s %8s %-15s %s\n", "name", "machine",
                "repl", "fleet", "noise", "description");
    for (const ScenarioSpec *s : specs) {
        char machine[32];
        std::snprintf(machine, sizeof(machine), "%s/%usl",
                      scenarioMachineName(s->machine), s->slices);
        std::printf("%-28s %-18s %-8s %8u %-15s %s\n", s->name.c_str(),
                    machine, replKindName(s->sharedRepl), s->fleetSize,
                    s->noise.c_str(), s->description.c_str());
    }
}

/** Recovered keys per *simulated* hour of attack time, the paper's
 *  fleet-cost headline (0 when nothing was recovered). */
double
simulatedKeysPerHour(const CampaignSummary &s)
{
    if (s.keysRecovered == 0 || s.totalAttackCycles <= 0.0)
        return 0.0;
    const double hours =
        s.totalAttackCycles / (kCpuGhz * 1e9) / 3600.0;
    return static_cast<double>(s.keysRecovered) / hours;
}

void
printCampaignRow(const CampaignResult &r)
{
    const CampaignSummary &s = r.summary;
    std::printf("  %-28s fleet %7zu  keys %6zu  succ %5.1f%%  ",
                r.name.c_str(), s.fleet, s.keysRecovered,
                s.fleetSuccessRate * 100.0);
    if (s.keysRecovered > 0) {
        std::printf("%10s/key  %8.1f keys/h",
                    formatDuration(s.cyclesPerRecoveredKey).c_str(),
                    simulatedKeysPerHour(s));
    } else {
        std::printf("%14s  %15s", "-", "-");
    }
    // Host wall clock lives on stdout only; the JSON stays a pure
    // function of (spec, seed, fleet).
    std::printf("  wall %6.1f s\n", s.wallSeconds);
}

/**
 * Gate the suite against a checked-in baseline.  Returns the number
 * of violations; a stale or unreadable baseline counts as one so the
 * gate cannot silently pass.
 */
unsigned
gateAgainstBaseline(const CampaignSuite &suite, const std::string &path)
{
    JsonValue doc;
    if (!benchLoadBaseline(path, doc))
        return 1;
    const double rate_tol =
        benchBaselineTolerance(doc, "rate_tolerance", kRateTolerance);
    const double cyc_tol = benchBaselineTolerance(
        doc, "cycles_tolerance", kCyclesTolerance);

    unsigned violations = 0;
    for (const CampaignResult &r : suite.results()) {
        const std::string &name = r.name;
        const JsonValue *base = benchBaselineEntry(doc, name);
        if (!base) {
            std::fprintf(stderr,
                         "FAIL %s: campaign missing from baseline "
                         "(regenerate %s)\n",
                         name.c_str(), path.c_str());
            ++violations;
            continue;
        }
        const JsonValue *rate =
            base->find("campaign", "fleet_success_rate");
        if (!rate || !rate->isNumber()) {
            std::fprintf(stderr,
                         "FAIL %s: no baseline fleet_success_rate "
                         "(regenerate %s)\n",
                         name.c_str(), path.c_str());
            ++violations;
        } else {
            const double want = rate->asNumber();
            const double got = r.summary.fleetSuccessRate;
            if (got < want - rate_tol || got > want + rate_tol) {
                std::fprintf(stderr,
                             "FAIL %s/fleet_success_rate: %.3f "
                             "outside [%.3f, %.3f]\n",
                             name.c_str(), got, want - rate_tol,
                             want + rate_tol);
                ++violations;
            }
        }
        const JsonValue *mean =
            base->find("metrics", "total_cycles", "mean");
        const StreamingStats *total =
            r.aggregate.metric("total_cycles");
        // A fleet can legitimately record *no* per-victim accuracy or
        // cycle aggregates (e.g. every victim failed blind Step 0 on
        // the fork path).  Absent on both sides is consistent; absent
        // on one side only is a regression.
        const bool base_has = mean && mean->isNumber();
        const bool run_has = total && !total->empty();
        if (!base_has && !run_has)
            continue;
        if (!base_has || !run_has) {
            std::fprintf(stderr,
                         "FAIL %s: total_cycles %s in the run but %s "
                         "in the baseline (regenerate %s)\n",
                         name.c_str(), run_has ? "present" : "absent",
                         base_has ? "present" : "absent", path.c_str());
            ++violations;
            continue;
        }
        const double want = mean->asNumber();
        const double lo = want * (1.0 - cyc_tol);
        const double hi = want * (1.0 + cyc_tol);
        const double got = total->mean();
        if (got < lo || got > hi) {
            std::fprintf(stderr,
                         "FAIL %s/total_cycles: %.4g outside "
                         "[%.4g, %.4g] (baseline %.4g)\n",
                         name.c_str(), got, lo, hi, want);
            ++violations;
        }
    }
    if (violations == 0)
        std::printf("e2e gate: all campaigns within band of %s\n",
                    path.c_str());
    return violations;
}

int
benchMain(bool list, bool smoke, bool scenario_given,
          const std::string &selection, const std::string &baseline,
          const std::string &checkpoint, bool resume,
          std::size_t stop_after_shards)
{
    const auto specs = campaignSpecs(builtinScenarios(), scenario_given,
                                     selection);
    if (list) {
        listCampaigns(specs);
        return 0;
    }
    if (specs.empty()) {
        std::fprintf(stderr,
                     "bench_e2e: no campaigns matched '%s' "
                     "(try --list)\n",
                     selection.c_str());
        return 1;
    }
    if (!checkpoint.empty() && specs.size() > 1) {
        std::fprintf(stderr,
                     "bench_e2e: --checkpoint drives exactly one "
                     "campaign; narrow the run with --scenario= "
                     "(%zu selected)\n",
                     specs.size());
        return 2;
    }

    benchPrintHeader(fullScale()
                         ? "Full-scale key-recovery campaigns"
                         : "End-to-end key-recovery campaigns");
    CampaignSuite suite(fullScale() ? "fullscale" : "e2e");
    suite.contextValue("rate_tolerance", kRateTolerance);
    suite.contextValue("cycles_tolerance", kCyclesTolerance);
    for (const ScenarioSpec *spec : specs) {
        const std::size_t fleet =
            smoke ? std::min<std::size_t>(spec->fleetSize, kSmokeFleet)
                  : trialCount(spec->fleetSize);
        CampaignRunOptions opts;
        opts.fleet = fleet;
        opts.masterSeed = baseSeed();
        opts.checkpointPath = checkpoint;
        opts.resume = resume;
        opts.stopAfterShards = stop_after_shards;
        KeyRecoveryCampaign campaign(*spec);
        CampaignResult result = campaign.run(opts);
        printCampaignRow(result);
        if (result.interrupted) {
            std::printf("  %-28s interrupted at trial %zu/%zu; "
                        "checkpoint %s — resume with --resume\n",
                        result.name.c_str(),
                        result.aggregate.trials(), result.trials,
                        checkpoint.c_str());
            return 3;
        }
        suite.add(std::move(result));
    }

    // Gate against the baseline *before* writing the suite: when the
    // output path and the baseline are the same file (e.g. running
    // the gate from the repo root with no --json-out), writing first
    // would clobber the baseline and gate the run against itself.
    const bool gate_ok =
        baseline.empty() || gateAgainstBaseline(suite, baseline) == 0;
    const std::string out = suite.writeFile();
    if (out.empty()) {
        std::fprintf(stderr, "failed to write JSON output\n");
        return 1;
    }
    std::printf("wrote %s\n", out.c_str());
    return gate_ok ? 0 : 1;
}

} // namespace
} // namespace llcf

int
main(int argc, char **argv)
{
    bool list = false;
    bool smoke = false;
    bool scenario_given = false;
    bool resume = false;
    std::size_t stop_after_shards = 0;
    std::string selection;
    std::string baseline;
    std::string checkpoint;
    std::vector<std::string> unknown;
    for (const std::string &arg : llcf::benchParseArgs(argc, argv)) {
        if (arg == "--list") {
            list = true;
        } else if (arg == "--smoke") {
            smoke = true;
        } else if (arg.rfind("--scenario=", 0) == 0) {
            scenario_given = true;
            if (!selection.empty())
                selection += ',';
            selection += arg.substr(sizeof("--scenario=") - 1);
        } else if (arg.rfind("--baseline=", 0) == 0) {
            baseline = arg.substr(sizeof("--baseline=") - 1);
        } else if (arg.rfind("--checkpoint=", 0) == 0) {
            checkpoint = arg.substr(sizeof("--checkpoint=") - 1);
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg.rfind("--stop-after-shards=", 0) == 0) {
            stop_after_shards = static_cast<std::size_t>(std::strtoull(
                arg.c_str() + sizeof("--stop-after-shards=") - 1,
                nullptr, 10));
        } else {
            unknown.push_back(arg);
        }
    }
    if ((resume || stop_after_shards) && checkpoint.empty()) {
        std::fprintf(stderr,
                     "bench_e2e: --resume / --stop-after-shards "
                     "require --checkpoint=<path>\n");
        return 2;
    }
    if (!llcf::benchRejectExtraArgs(unknown)) {
        std::fprintf(stderr,
                     "bench_e2e flags: --list --smoke "
                     "--scenario=<name[,name...]> "
                     "--baseline=BENCH_e2e.json "
                     "--checkpoint=<path> --resume "
                     "--stop-after-shards=<n>\n");
        return 2;
    }
    return llcf::benchMain(list, smoke, scenario_given, selection,
                           baseline, checkpoint, resume,
                           stop_after_shards);
}
