/**
 * @file
 * The scenario matrix driver: runs any named subset of the registered
 * attack scenarios (machine x replacement policy x noise x pruning
 * algorithm x pipeline stage) on the deterministic experiment harness
 * and writes per-scenario metrics to BENCH_scenarios.json.
 *
 *   bench_matrix --list                 enumerate registered scenarios
 *   bench_matrix                        run the full matrix
 *   bench_matrix --scenario=build-*     run a named subset (globs ok)
 *   bench_matrix --smoke                1 trial per scenario (CI gate)
 *
 * Shared flags (--seed/--trials/--threads/--json-out/--full-scale)
 * are handled by bench_common.  For a fixed seed the JSON output is
 * byte-identical at any worker-thread count — CI diffs 1-thread vs
 * 8-thread --smoke runs on every push.
 */

#include "bench_common.hh"

#include "scenario/registry.hh"

namespace llcf {
namespace {

void
listScenarios(const ScenarioRegistry &reg)
{
    std::printf("%-32s %-11s %-18s %-8s %-5s %-15s %s\n", "name",
                "stage", "machine", "repl", "algo", "noise",
                "description");
    for (const ScenarioSpec &s : reg.all()) {
        char machine[32];
        std::snprintf(machine, sizeof(machine), "%s/%usl",
                      scenarioMachineName(s.machine), s.slices);
        std::printf("%-32s %-11s %-18s %-8s %-5s %-15s %s\n",
                    s.name.c_str(), scenarioStageName(s.stage), machine,
                    replKindName(s.sharedRepl), pruneAlgoName(s.algo),
                    s.noise.c_str(), s.description.c_str());
    }
}

void
printScenarioRow(const ExperimentResult &result)
{
    // Headline outcome: end-to-end correctness when available, else
    // construction success.
    static const SuccessRate kNoRate;
    static const SampleStats kNoStats;
    const SuccessRate *sr = result.outcome("target_correct");
    if (!sr)
        sr = result.outcome("success");
    const SampleStats *times = result.metric("total_cycles");
    if (!times)
        times = result.metric("build_cycles");
    printRow(result.name().c_str(), sr ? *sr : kNoRate,
             times ? *times : kNoStats);
}

int
benchMain(bool list, bool smoke, bool scenario_given,
          const std::string &selection)
{
    const ScenarioRegistry &reg = builtinScenarios();
    if (list) {
        listScenarios(reg);
        return 0;
    }

    std::vector<const ScenarioSpec *> specs;
    if (!scenario_given) {
        // The default matrix stops at the single-victim attack
        // stages: victim-fleet campaigns are bench_e2e's domain,
        // Step-0 calibration is bench_calib's, and the defense axis
        // is bench_defense's (each for cost and for their own
        // baseline gates).  The traffic axis (open-loop arrivals,
        // victim families, co-tenant load) is bench_traffic's.  All
        // stay addressable here via --scenario=campaign-* /
        // --scenario=calib-* / --scenario=defense-* /
        // --scenario=traffic-*.
        for (const ScenarioSpec &s : reg.all()) {
            if (s.stage != ScenarioStage::Campaign &&
                s.stage != ScenarioStage::Calibrate &&
                !s.defense.recordsMetrics() && !s.trafficDomain())
                specs.push_back(&s);
        }
    } else if (!selection.empty()) {
        specs = reg.select(selection);
    }
    if (specs.empty()) {
        // A --scenario selection that names nothing (empty value,
        // bare commas, ...) must fail loudly rather than write an
        // empty suite that looks like a passing run.
        std::fprintf(stderr,
                     "bench_matrix: no scenarios matched '%s' "
                     "(try --list)\n",
                     selection.c_str());
        return 1;
    }

    ExperimentSuite suite("scenarios");
    benchPrintHeader("Scenario matrix");
    for (const ScenarioSpec *spec : specs) {
        const std::size_t trials =
            smoke ? 1 : trialCount(spec->defaultTrials);
        ExperimentResult result =
            runScenario(*spec, trials, 0, baseSeed());
        printScenarioRow(result);
        suite.add(std::move(result));
    }
    return benchWriteSuite(suite);
}

} // namespace
} // namespace llcf

int
main(int argc, char **argv)
{
    bool list = false;
    bool smoke = false;
    bool scenario_given = false;
    std::string selection;
    std::vector<std::string> unknown;
    for (const std::string &arg : llcf::benchParseArgs(argc, argv)) {
        if (arg == "--list") {
            list = true;
        } else if (arg == "--smoke") {
            smoke = true;
        } else if (arg.rfind("--scenario=", 0) == 0) {
            scenario_given = true;
            if (!selection.empty())
                selection += ',';
            selection += arg.substr(sizeof("--scenario=") - 1);
        } else {
            unknown.push_back(arg);
        }
    }
    if (!llcf::benchRejectExtraArgs(unknown)) {
        std::fprintf(stderr,
                     "bench_matrix flags: --list --smoke "
                     "--scenario=<name[,name...]> (prefix globs ok)\n");
        return 2;
    }
    return llcf::benchMain(list, smoke, scenario_given, selection);
}
