/**
 * @file
 * Table 3 — effectiveness of the state-of-the-art address-pruning
 * algorithms (Gt, GtOp, Ps, PsOp) WITHOUT candidate filtering, in a
 * quiescent local environment, on Cloud Run, and on Cloud Run during
 * the 3-5 am quiet hours.
 *
 * Paper reference (Cloud Run row): Gt 39.4% / 714 ms, GtOp 56.0% /
 * 512 ms, Ps 3.2% / 580 ms, PsOp 6.9% / 572 ms; all ~97-99% and
 * 15-56 ms in the quiescent local environment.
 */

#include "bench_common.hh"

#include <benchmark/benchmark.h>

namespace llcf {
namespace {

const PruneAlgo kAlgos[] = {PruneAlgo::Gt, PruneAlgo::GtOp,
                            PruneAlgo::Ps, PruneAlgo::PsOp};

void
BM_Table3(benchmark::State &state)
{
    const PruneAlgo algo = kAlgos[state.range(0)];
    const int env = static_cast<int>(state.range(1));
    const std::size_t trials = trialCount(env == 0 ? 10 : 6);

    SuccessRate sr;
    SampleStats times;
    for (auto _ : state) {
        for (std::size_t t = 0; t < trials; ++t) {
            BenchRig rig(benchSkylake(), benchProfile(env),
                         baseSeed() + t * 131, msToCycles(1000.0));
            auto cands = rig.pool->candidatesAt(
                static_cast<unsigned>(t % kLinesPerPage));
            const Addr ta = cands[t % cands.size()];
            cands.erase(cands.begin() +
                        static_cast<long>(t % cands.size()));
            EvictionSetBuilder builder(*rig.session, algo,
                                       /*use_filter=*/false);
            auto out = builder.buildForTarget(ta, cands);
            sr.add(out.success && out.groundTruthValid);
            times.add(static_cast<double>(out.elapsed));
        }
    }
    state.counters["succ_rate_pct"] = sr.rate() * 100.0;
    state.counters["avg_ms"] = cyclesToMs(
        static_cast<Cycles>(times.mean()));
    state.counters["med_ms"] = cyclesToMs(
        static_cast<Cycles>(times.median()));
    state.counters["std_ms"] = cyclesToMs(
        static_cast<Cycles>(times.stddev()));

    char label[64];
    std::snprintf(label, sizeof(label), "%s @ %s",
                  pruneAlgoName(algo), benchProfileName(env));
    printRow(label, sr, times);
}

BENCHMARK(BM_Table3)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1, 2}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace llcf

BENCHMARK_MAIN();
