/**
 * @file
 * Table 3 — effectiveness of the state-of-the-art address-pruning
 * algorithms (Gt, GtOp, Ps, PsOp) WITHOUT candidate filtering, in a
 * quiescent local environment, on Cloud Run, and on Cloud Run during
 * the 3-5 am quiet hours.
 *
 * Paper reference (Cloud Run row): Gt 39.4% / 714 ms, GtOp 56.0% /
 * 512 ms, Ps 3.2% / 580 ms, PsOp 6.9% / 572 ms; all ~97-99% and
 * 15-56 ms in the quiescent local environment.
 *
 * Each cell is an anonymous EvsetBuild scenario executed through the
 * scenario runner, so the table shares its trial logic — and its
 * thread-count-independent determinism — with bench_matrix and the
 * scenario regression tests.
 */

#include "bench_common.hh"

namespace llcf {
namespace {

const PruneAlgo kAlgos[] = {PruneAlgo::Gt, PruneAlgo::GtOp,
                            PruneAlgo::Ps, PruneAlgo::PsOp};

void
runCell(ExperimentSuite &suite, PruneAlgo algo, int env)
{
    ScenarioSpec spec = benchSpec(env, benchSlices(), 1000.0);
    char name[64];
    std::snprintf(name, sizeof(name), "%s @ %s", pruneAlgoName(algo),
                  benchProfileName(env));
    spec.name = name;
    spec.stage = ScenarioStage::EvsetBuild;
    spec.algo = algo;
    spec.useFilter = false; // Table 3 measures the raw pruners
    spec.defaultTrials = trialCount(env == 0 ? 10 : 6);

    ExperimentResult result =
        runScenario(spec, 0, 0, baseSeed());

    static const SuccessRate kNoRate;
    static const SampleStats kNoStats;
    const SuccessRate *sr = result.outcome("success");
    const SampleStats *times = result.metric("build_cycles");
    printRow(result.name().c_str(), sr ? *sr : kNoRate,
             times ? *times : kNoStats);
    suite.add(std::move(result));
}

int
benchMain()
{
    ExperimentSuite suite("table3");
    benchPrintHeader("Table 3");
    for (int env = 0; env < 3; ++env) {
        for (PruneAlgo algo : kAlgos)
            runCell(suite, algo, env);
    }
    return benchWriteSuite(suite);
}

} // namespace
} // namespace llcf

int
main(int argc, char **argv)
{
    if (!llcf::benchRejectExtraArgs(llcf::benchParseArgs(argc, argv)))
        return 2;
    return llcf::benchMain();
}
