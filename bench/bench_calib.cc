/**
 * @file
 * Step-0 blind topology calibration accuracy/cost and its CI gate.
 *
 * Runs the registered Stage::Calibrate scenarios (see src/calib/) and
 * writes one BENCH_calib.json entry per scenario: per-field
 * match/mismatch rates against the true machine configuration
 * (w_llc_match, w_sf_match, slices_match, uncertainty_match,
 * topology_match), the measured geometry, and the calibration cost in
 * simulated cycles and TestEviction executions.
 *
 *   bench_calib --list                   enumerate calibration cells
 *   bench_calib                          run every cell, full trials
 *   bench_calib --scenario=calib-skl-*   run a named subset (globs ok)
 *   bench_calib --smoke                  trials capped at 2 per cell
 *   bench_calib --smoke --baseline=BENCH_calib.json
 *                                        + regression gate: match
 *                                        rates inside the baseline's
 *                                        absolute band, calibration
 *                                        cycles inside the relative
 *                                        band; exits 1 on a violation
 *
 * For a fixed seed the JSON is byte-identical at any worker-thread
 * count (each calibration world is rebuilt from its positional trial
 * stream; CI diffs 1-thread vs 8-thread --smoke runs).  The
 * checked-in baseline at the repository root is regenerated with:
 *   ./build/bench_calib --smoke --json-out=BENCH_calib.json
 */

#include "bench_common.hh"

#include <cstdio>

#include "harness/json.hh"
#include "scenario/registry.hh"

namespace llcf {
namespace {

/** Absolute drift allowed on per-field match rates by the gate: one
 *  trial of a 2-3 trial cell may flip without failing CI. */
constexpr double kRateTolerance = 0.51;

/** Relative drift allowed on the calib_cycles mean. */
constexpr double kCyclesTolerance = 0.5;

/** Outcomes the baseline gate bands (the per-field accuracy axes). */
constexpr const char *kGatedOutcomes[] = {
    "calibrated", "w_llc_match", "w_sf_match", "slices_match",
    "topology_match"};

std::vector<const ScenarioSpec *>
calibSpecs(const ScenarioRegistry &reg, bool scenario_given,
           const std::string &selection)
{
    std::vector<const ScenarioSpec *> specs;
    if (!scenario_given) {
        for (const ScenarioSpec &s : reg.all()) {
            if (s.stage == ScenarioStage::Calibrate &&
                !s.defense.recordsMetrics()) // bench_defense's domain
                specs.push_back(&s);
        }
        return specs;
    }
    if (selection.empty())
        return specs;
    for (const ScenarioSpec *s : reg.select(selection)) {
        if (s->stage != ScenarioStage::Calibrate) {
            std::fprintf(stderr,
                         "bench_calib: '%s' is a %s scenario, not a "
                         "calibration (those run under bench_matrix "
                         "or bench_e2e)\n",
                         s->name.c_str(), scenarioStageName(s->stage));
            std::exit(2);
        }
        specs.push_back(s);
    }
    return specs;
}

void
listCells(const std::vector<const ScenarioSpec *> &specs)
{
    std::printf("%-24s %-18s %-8s %-15s %s\n", "name", "machine",
                "repl", "noise", "description");
    for (const ScenarioSpec *s : specs) {
        char machine[32];
        std::snprintf(machine, sizeof(machine), "%s/%usl",
                      scenarioMachineName(s->machine), s->slices);
        std::printf("%-24s %-18s %-8s %-15s %s\n", s->name.c_str(),
                    machine, replKindName(s->sharedRepl),
                    s->noise.c_str(), s->description.c_str());
    }
}

void
printCellRow(const ExperimentResult &r)
{
    auto rate = [&r](const char *name) {
        const SuccessRate *sr = r.outcome(name);
        return sr ? sr->rate() * 100.0 : 0.0;
    };
    const SampleStats *cycles = r.metric("calib_cycles");
    std::printf("  %-24s calib %5.1f%%  W %5.1f%%/%5.1f%%  "
                "slices %5.1f%%  topo %5.1f%%  cost %10s\n",
                r.name().c_str(), rate("calibrated"),
                rate("w_llc_match"), rate("w_sf_match"),
                rate("slices_match"), rate("topology_match"),
                cycles && !cycles->empty()
                    ? formatDuration(cycles->mean()).c_str()
                    : "-");
}

/**
 * Gate the suite against a checked-in baseline.  Returns the number
 * of violations; a stale or unreadable baseline counts as one so the
 * gate cannot silently pass.
 */
unsigned
gateAgainstBaseline(const ExperimentSuite &suite,
                    const std::string &path)
{
    JsonValue doc;
    if (!benchLoadBaseline(path, doc))
        return 1;
    const double rate_tol =
        benchBaselineTolerance(doc, "rate_tolerance", kRateTolerance);
    const double cyc_tol = benchBaselineTolerance(
        doc, "cycles_tolerance", kCyclesTolerance);

    unsigned violations = 0;
    for (const ExperimentResult &r : suite.results()) {
        const JsonValue *base = benchBaselineEntry(doc, r.name());
        if (!base) {
            std::fprintf(stderr,
                         "FAIL %s: cell missing from baseline "
                         "(regenerate %s)\n",
                         r.name().c_str(), path.c_str());
            ++violations;
            continue;
        }
        for (const char *name : kGatedOutcomes) {
            const JsonValue *want =
                base->find("outcomes", name, "rate");
            const SuccessRate *got = r.outcome(name);
            if (!want || !want->isNumber() || !got) {
                std::fprintf(stderr,
                             "FAIL %s: no comparable %s rate "
                             "(regenerate %s)\n",
                             r.name().c_str(), name, path.c_str());
                ++violations;
                continue;
            }
            const double w = want->asNumber();
            if (got->rate() < w - rate_tol ||
                got->rate() > w + rate_tol) {
                std::fprintf(stderr,
                             "FAIL %s/%s: %.3f outside "
                             "[%.3f, %.3f]\n",
                             r.name().c_str(), name, got->rate(),
                             w - rate_tol, w + rate_tol);
                ++violations;
            }
        }
        const JsonValue *mean =
            base->find("metrics", "calib_cycles", "mean");
        const SampleStats *cycles = r.metric("calib_cycles");
        if (!mean || !mean->isNumber() || !cycles ||
            cycles->empty()) {
            std::fprintf(stderr,
                         "FAIL %s: no comparable calib_cycles "
                         "(regenerate %s)\n",
                         r.name().c_str(), path.c_str());
            ++violations;
        } else {
            const double want = mean->asNumber();
            const double lo = want * (1.0 - cyc_tol);
            const double hi = want * (1.0 + cyc_tol);
            if (cycles->mean() < lo || cycles->mean() > hi) {
                std::fprintf(stderr,
                             "FAIL %s/calib_cycles: %.4g outside "
                             "[%.4g, %.4g] (baseline %.4g)\n",
                             r.name().c_str(), cycles->mean(), lo, hi,
                             want);
                ++violations;
            }
        }
    }
    if (violations == 0)
        std::printf("calib gate: all cells within band of %s\n",
                    path.c_str());
    return violations;
}

int
benchMain(bool list, bool smoke, bool scenario_given,
          const std::string &selection, const std::string &baseline)
{
    const auto specs = calibSpecs(builtinScenarios(), scenario_given,
                                  selection);
    if (list) {
        listCells(specs);
        return 0;
    }
    if (specs.empty()) {
        std::fprintf(stderr,
                     "bench_calib: no calibration scenarios matched "
                     "'%s' (try --list)\n",
                     selection.c_str());
        return 1;
    }

    benchPrintHeader("Step-0 blind topology calibration");
    ExperimentSuite suite("calib");
    suite.contextValue("rate_tolerance", kRateTolerance);
    suite.contextValue("cycles_tolerance", kCyclesTolerance);
    for (const ScenarioSpec *spec : specs) {
        const std::size_t trials =
            smoke ? std::min<std::size_t>(spec->defaultTrials, 2)
                  : trialCount(spec->defaultTrials);
        ExperimentResult result =
            runScenario(*spec, trials, 0, baseSeed());
        printCellRow(result);
        suite.add(std::move(result));
    }

    // Gate before writing: when the output path and the baseline are
    // the same file, writing first would clobber the baseline and
    // gate the run against itself.
    const bool gate_ok =
        baseline.empty() || gateAgainstBaseline(suite, baseline) == 0;
    const std::string out = suite.writeFile();
    if (out.empty()) {
        std::fprintf(stderr, "failed to write JSON output\n");
        return 1;
    }
    std::printf("wrote %s\n", out.c_str());
    return gate_ok ? 0 : 1;
}

} // namespace
} // namespace llcf

int
main(int argc, char **argv)
{
    bool list = false;
    bool smoke = false;
    bool scenario_given = false;
    std::string selection;
    std::string baseline;
    std::vector<std::string> unknown;
    for (const std::string &arg : llcf::benchParseArgs(argc, argv)) {
        if (arg == "--list") {
            list = true;
        } else if (arg == "--smoke") {
            smoke = true;
        } else if (arg.rfind("--scenario=", 0) == 0) {
            scenario_given = true;
            if (!selection.empty())
                selection += ',';
            selection += arg.substr(sizeof("--scenario=") - 1);
        } else if (arg.rfind("--baseline=", 0) == 0) {
            baseline = arg.substr(sizeof("--baseline=") - 1);
        } else {
            unknown.push_back(arg);
        }
    }
    if (!llcf::benchRejectExtraArgs(unknown)) {
        std::fprintf(stderr,
                     "bench_calib flags: --list --smoke "
                     "--scenario=<name[,name...]> "
                     "--baseline=BENCH_calib.json\n");
        return 2;
    }
    return llcf::benchMain(list, smoke, scenario_given, selection,
                           baseline);
}
