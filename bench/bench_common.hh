/**
 * @file
 * Shared plumbing for the reproduction benchmarks.
 *
 * Every bench binary regenerates one table or figure of the paper.
 * Times reported are *virtual* (simulated cycles at 2 GHz) — the
 * reproduction target is the shape of each result, not wall-clock.
 *
 * All benches run on the deterministic experiment harness and accept
 * the shared CLI flags parsed by benchParseArgs() (which exports them
 * to the environment so library-level knobs see them too):
 *
 *   --seed=<n>       base RNG seed            (LLCF_SEED, default 42)
 *   --trials=<n>     per-cell trial override  (LLCF_TRIALS)
 *   --threads=<n>    harness worker threads   (LLCF_THREADS)
 *   --json-out=<p>   BENCH_*.json output path (LLCF_JSON_OUT)
 *   --full-scale     paper-scale machines     (LLCF_FULL_SCALE=1)
 *   --counters       record pc_* PerfCounter metrics (LLCF_COUNTERS=1)
 */

#ifndef LLCF_BENCH_BENCH_COMMON_HH
#define LLCF_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/options.hh"
#include "common/stats.hh"
#include "harness/experiment.hh"
#include "scenario/scenario.hh"

namespace llcf {

/**
 * Parse the shared bench flags out of argv, exporting recognised ones
 * into the environment (so envU64/baseSeed/... observe them), and
 * return the arguments the common parser did not consume.  Prints
 * usage and exits on --help or a malformed common flag.
 */
std::vector<std::string> benchParseArgs(int argc, char **argv);

/**
 * Report leftover args as an error.  Returns true if @p extra is
 * empty; otherwise prints the offenders to stderr and returns false.
 */
bool benchRejectExtraArgs(const std::vector<std::string> &extra);

/** Print the standard bench header (thread count + seed). */
void benchPrintHeader(const char *title);

/**
 * Write @p suite to its BENCH_*.json destination (honouring
 * LLCF_JSON_OUT) and report the path.  Returns the process exit code.
 */
int benchWriteSuite(const ExperimentSuite &suite);

// ------------------------------------------------- baseline gates
//
// Shared plumbing for benches that gate --smoke runs against a
// checked-in BENCH_*.json baseline (bench_hotpath, bench_e2e,
// bench_calib).  Gates run *before* the suite is written so a run
// whose output path equals the baseline cannot gate against itself.

/**
 * Load a baseline document and verify it has a "benchmarks" array.
 * Prints the reason to stderr and returns false on failure, so a
 * stale or unreadable baseline counts as a gate violation rather
 * than a silent pass.
 */
bool benchLoadBaseline(const std::string &path, JsonValue &doc);

/**
 * A gate tolerance recorded in the baseline's "context" object, or
 * @p def when absent — baselines carry their own bands so regenerated
 * documents and gate code cannot drift apart.
 */
double benchBaselineTolerance(const JsonValue &doc, const char *key,
                              double def);

/** The "benchmarks" entry named @p name, or nullptr. */
const JsonValue *benchBaselineEntry(const JsonValue &doc,
                                    const std::string &name);

/** Slice count for bench machines (28 at full scale, 8 scaled). */
inline unsigned
benchSlices()
{
    return fullScale() ? 28u : 8u;
}

/** Environment index -> noise-profile name, matching the paper rows. */
inline const char *
benchNoiseName(int env)
{
    switch (env) {
      case 0:
        return "quiescent-local";
      case 1:
        return "cloud-run";
      default:
        return "cloud-run-3-5am";
    }
}

/** Environment index -> short display label. */
inline const char *
benchProfileName(int env)
{
    switch (env) {
      case 0:
        return "local";
      case 1:
        return "cloud";
      default:
        return "cloud-3-5am";
    }
}

/**
 * Anonymous Skylake-SP scenario spec for one bench environment —
 * the per-trial worlds benches build via ScenarioRig.
 */
inline ScenarioSpec
benchSpec(int env, unsigned slices, double evset_budget_ms)
{
    ScenarioSpec spec;
    spec.machine = ScenarioMachine::SkylakeSp;
    spec.slices = slices;
    spec.noise = benchNoiseName(env);
    spec.evsetBudgetMs = evset_budget_ms;
    return spec;
}

/** Emit one formatted row to stdout (the "paper table" view). */
inline void
printRow(const char *label, const SuccessRate &sr,
         const SampleStats &times)
{
    std::printf("  %-28s succ %5.1f%%  avg %10s  med %10s  "
                "std %10s\n",
                label, sr.rate() * 100.0,
                times.empty() ? "-" : formatDuration(times.mean())
                    .c_str(),
                times.empty() ? "-" : formatDuration(times.median())
                    .c_str(),
                times.empty() ? "-" : formatDuration(times.stddev())
                    .c_str());
}

} // namespace llcf

#endif // LLCF_BENCH_BENCH_COMMON_HH
