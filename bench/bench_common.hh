/**
 * @file
 * Shared plumbing for the reproduction benchmarks.
 *
 * Every bench binary regenerates one table or figure of the paper.
 * Times reported are *virtual* (simulated cycles at 2 GHz) — the
 * reproduction target is the shape of each result, not wall-clock.
 *
 * Scale knobs (environment):
 *   LLCF_FULL_SCALE=1  use the paper's 28-slice Skylake-SP
 *                      (default: 8 slices, ~3.5x smaller U)
 *   LLCF_TRIALS=<n>    override per-cell trial counts
 *   LLCF_SEED=<n>      base RNG seed (default 42)
 *   LLCF_THREADS=<n>   worker threads for harness-driven benches
 *   LLCF_JSON_OUT=<p>  output path for harness BENCH_*.json files
 */

#ifndef LLCF_BENCH_BENCH_COMMON_HH
#define LLCF_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <memory>

#include "common/options.hh"
#include "common/stats.hh"
#include "evset/builder.hh"
#include "noise/profile.hh"

namespace llcf {

/** Slice count for bench machines (28 at full scale, 8 scaled). */
inline unsigned
benchSlices()
{
    return fullScale() ? 28u : 8u;
}

/** The Skylake-SP machine config used by most benches. */
inline MachineConfig
benchSkylake()
{
    return skylakeSp(benchSlices());
}

/** Environment index -> noise profile, matching the paper's rows. */
inline NoiseProfile
benchProfile(int env)
{
    switch (env) {
      case 0:
        return quiescentLocal();
      case 1:
        return cloudRun();
      default:
        return cloudRunQuietHours();
    }
}

inline const char *
benchProfileName(int env)
{
    switch (env) {
      case 0:
        return "local";
      case 1:
        return "cloud";
      default:
        return "cloud-3-5am";
    }
}

/** A fully-wired attacker rig on a fresh machine. */
struct BenchRig
{
    BenchRig(const MachineConfig &cfg, const NoiseProfile &profile,
             std::uint64_t seed, Cycles evset_budget)
        : machine(cfg, profile, seed)
    {
        AttackerConfig acfg;
        acfg.seed = seed;
        acfg.evsetBudget = evset_budget;
        session = std::make_unique<AttackSession>(machine, acfg);
        pool = std::make_unique<CandidatePool>(
            *session, CandidatePool::requiredPages(machine, 3.0));
    }

    Machine machine;
    std::unique_ptr<AttackSession> session;
    std::unique_ptr<CandidatePool> pool;
};

/** Emit one formatted row to stdout (the "paper table" view). */
inline void
printRow(const char *label, const SuccessRate &sr,
         const SampleStats &times)
{
    std::printf("  %-28s succ %5.1f%%  avg %10s  med %10s  "
                "std %10s\n",
                label, sr.rate() * 100.0,
                times.empty() ? "-" : formatDuration(times.mean())
                    .c_str(),
                times.empty() ? "-" : formatDuration(times.median())
                    .c_str(),
                times.empty() ? "-" : formatDuration(times.stddev())
                    .c_str());
}

} // namespace llcf

#endif // LLCF_BENCH_BENCH_COMMON_HH
