/**
 * @file
 * Figure 6 — covert-channel detection rate of each monitoring
 * strategy (Parallel, PS-Flush, PS-Alt) as the sender's access
 * interval varies from 1k to 100k cycles, with the paper's
 * epsilon = 500-cycle matching bound.
 *
 * Paper reference: at a 2k-cycle interval Parallel reaches 84.1%
 * while PS-Flush and PS-Alt manage 15.4% and 6.0%; even at 100k
 * cycles the ordering stays Parallel > PS-Flush > PS-Alt
 * (91.1% / 82.1% / 36.9%).
 */

#include "attack/covert.hh"
#include "bench_common.hh"

#include <benchmark/benchmark.h>

namespace llcf {
namespace {

const MonitorKind kKinds[] = {MonitorKind::Parallel,
                              MonitorKind::PsFlush, MonitorKind::PsAlt};
const Cycles kIntervals[] = {1000, 2000, 5000, 7000, 10000, 50000,
                             100000};

void
BM_Fig6(benchmark::State &state)
{
    const MonitorKind kind = kKinds[state.range(0)];
    const Cycles interval = kIntervals[state.range(1)];
    const std::size_t trials = trialCount(4);

    SampleStats rates;
    for (auto _ : state) {
        for (std::size_t t = 0; t < trials; ++t) {
            BenchRig rig(skylakeSp(4), cloudRun(),
                         baseSeed() + t * 151, msToCycles(100.0));
            const unsigned w = rig.machine.config().sf.ways;
            const Addr sender = rig.pool->at(23 + t, 31);
            auto evset = groundTruthEvictionSet(rig.machine, *rig.pool,
                                                sender, w);
            std::vector<Addr> alt;
            if (kind == MonitorKind::PsAlt) {
                alt = groundTruthEvictionSet(rig.machine, *rig.pool,
                                             sender, w, w);
            }
            CovertParams params;
            params.accessInterval = interval;
            params.accesses = static_cast<unsigned>(
                envU64("LLCF_SENDER_ACCESSES", 400));
            auto out = runCovertExperiment(*rig.session, kind, evset,
                                           alt, sender, params);
            rates.add(out.detectionRate);
        }
    }
    state.counters["detection_rate_pct"] = rates.mean() * 100.0;
    state.counters["stddev_pct"] = rates.stddev() * 100.0;
    std::printf("  %-10s interval %6lu cyc: detection %5.1f%% "
                "(+- %4.1f)\n",
                monitorKindName(kind),
                static_cast<unsigned long>(interval),
                rates.mean() * 100.0, rates.stddev() * 100.0);
}

BENCHMARK(BM_Fig6)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2, 3, 4, 5, 6}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace llcf

BENCHMARK_MAIN();
