/**
 * @file
 * Figure 6 — covert-channel detection rate of each monitoring
 * strategy (Parallel, PS-Flush, PS-Alt) as the sender's access
 * interval varies from 1k to 100k cycles, with the paper's
 * epsilon = 500-cycle matching bound.
 *
 * Paper reference: at a 2k-cycle interval Parallel reaches 84.1%
 * while PS-Flush and PS-Alt manage 15.4% and 6.0%; even at 100k
 * cycles the ordering stays Parallel > PS-Flush > PS-Alt
 * (91.1% / 82.1% / 36.9%).
 *
 * Runs on the harness: per-cell trials fan across LLCF_THREADS
 * workers; BENCH_fig6.json is identical for any thread count.
 */

#include "attack/covert.hh"
#include "bench_common.hh"

namespace llcf {
namespace {

const MonitorKind kKinds[] = {MonitorKind::Parallel,
                              MonitorKind::PsFlush, MonitorKind::PsAlt};
const Cycles kIntervals[] = {1000, 2000, 5000, 7000, 10000, 50000,
                             100000};

void
runCell(ExperimentSuite &suite, MonitorKind kind, Cycles interval)
{
    char name[64];
    std::snprintf(name, sizeof(name), "%s @ %lu cyc",
                  monitorKindName(kind),
                  static_cast<unsigned long>(interval));

    ExperimentConfig cfg;
    cfg.name = name;
    cfg.trials = trialCount(4);
    cfg.masterSeed = baseSeed();

    ExperimentRunner runner(cfg);
    ExperimentResult result = runner.run(
        [kind, interval](TrialContext &ctx, TrialRecorder &rec) {
        const std::size_t t = ctx.index;
        ScenarioRig rig(benchSpec(/*env=*/1, 4, 100.0), ctx.seed);
        const unsigned w = rig.machine.config().sf.ways;
        const Addr sender = rig.pool->at(23 + t, 31);
        auto evset = groundTruthEvictionSet(rig.machine, *rig.pool,
                                            sender, w);
        std::vector<Addr> alt;
        if (kind == MonitorKind::PsAlt) {
            alt = groundTruthEvictionSet(rig.machine, *rig.pool,
                                         sender, w, w);
        }
        CovertParams params;
        params.accessInterval = interval;
        params.accesses = static_cast<unsigned>(
            envU64("LLCF_SENDER_ACCESSES", 400));
        auto out = runCovertExperiment(*rig.session, kind, evset, alt,
                                       sender, params);
        rec.metric("detection_rate", out.detectionRate);
    });

    const SampleStats *rates = result.metric("detection_rate");
    if (rates && !rates->empty()) {
        std::printf("  %-10s interval %6lu cyc: detection %5.1f%% "
                    "(+- %4.1f)\n",
                    monitorKindName(kind),
                    static_cast<unsigned long>(interval),
                    rates->mean() * 100.0, rates->stddev() * 100.0);
    }
    suite.add(std::move(result));
}

int
benchMain()
{
    ExperimentSuite suite("fig6");
    benchPrintHeader("Figure 6");
    for (MonitorKind kind : kKinds) {
        for (Cycles interval : kIntervals)
            runCell(suite, kind, interval);
    }
    return benchWriteSuite(suite);
}

} // namespace
} // namespace llcf

int
main(int argc, char **argv)
{
    if (!llcf::benchRejectExtraArgs(llcf::benchParseArgs(argc, argv)))
        return 2;
    return llcf::benchMain();
}
