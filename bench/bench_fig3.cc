/**
 * @file
 * Figure 3 — execution time of the parallel and sequential
 * TestEviction implementations on Cloud Run for candidate counts
 * from U to 11U (U = LLC/SF uncertainty).
 *
 * Paper reference (28 slices, U = 896): parallel TestEviction takes
 * ~135 us at 11U = 9,856 candidates, roughly two orders of magnitude
 * below sequential (~4-5 ms at the same size).  Also reproduces the
 * Section 4.3 analysis: expected background accesses during one test
 * and the probability of a noise-free parallel test.
 *
 * Runs on the harness: each (implementation, size) cell fans its
 * trials across LLCF_THREADS workers on independent RNG streams;
 * BENCH_fig3.json is identical for any thread count.
 */

#include "bench_common.hh"

#include <cmath>

namespace llcf {
namespace {

const unsigned kMultipliers[] = {1, 3, 5, 7, 9, 11};

void
runCell(ExperimentSuite &suite, bool parallel, unsigned mult)
{
    char name[48];
    std::snprintf(name, sizeof(name), "%s %2uU @ cloud",
                  parallel ? "parallel" : "sequential", mult);

    ExperimentConfig cfg;
    cfg.name = name;
    cfg.trials = trialCount(parallel ? 8 : 3);
    cfg.masterSeed = baseSeed();

    ExperimentRunner runner(cfg);
    ExperimentResult result = runner.run(
        [parallel, mult](TrialContext &ctx, TrialRecorder &rec) {
        ScenarioRig rig(benchSpec(/*env=*/1, benchSlices(), 1000.0),
                        ctx.seed);
        const unsigned u = rig.machine.config().sf.uncertainty();
        const std::size_t n = static_cast<std::size_t>(u) * mult;
        auto cands = rig.pool->candidatesAt(13);
        if (cands.size() <= n) {
            std::fprintf(stderr,
                         "fig3: candidate pool (%zu) smaller than test "
                         "size %zu; skipping cell\n",
                         cands.size(), n);
            return;
        }
        const Addr ta = cands.back();
        cands.pop_back();
        cands.resize(n);

        const Cycles start = rig.machine.now();
        if (parallel) {
            rig.session->testEvictionLlcParallel(ta, cands, n);
        } else {
            // Sequential (pointer-chase) traversal + timed check.
            Machine &m = rig.machine;
            m.clflush(0, ta);
            m.loadShared(0, 1, ta);
            for (Addr a : cands)
                m.chaseLoad(0, a);
            m.probeLoad(0, ta);
        }
        rec.metric("duration_us",
                   cyclesToUs(rig.machine.now() - start));
        rec.metric("candidates", static_cast<double>(n));
    });

    const SampleStats *duration = result.metric("duration_us");
    const SampleStats *cands = result.metric("candidates");
    if (duration && !duration->empty()) {
        // Section 4.3: expected background accesses during one test,
        // and the resulting probability of a noise-free test.
        NoiseProfile profile = cloudRun();
        const double rate_per_us = profile.accessesPerSetPerMs / 1000.0;
        const double expected_noise = duration->mean() * rate_per_us;
        std::printf("  %-10s %6.0f cands (%2uU): %9.1f us"
                    "   E[bg accesses]=%6.2f   P[clean]=%.3f\n",
                    parallel ? "parallel" : "sequential",
                    cands ? cands->mean() : 0.0, mult,
                    duration->mean(), expected_noise,
                    std::exp(-expected_noise));
    }
    suite.add(std::move(result));
}

int
benchMain()
{
    ExperimentSuite suite("fig3");
    benchPrintHeader("Figure 3");
    for (bool parallel : {true, false}) {
        for (unsigned mult : kMultipliers)
            runCell(suite, parallel, mult);
    }
    return benchWriteSuite(suite);
}

} // namespace
} // namespace llcf

int
main(int argc, char **argv)
{
    if (!llcf::benchRejectExtraArgs(llcf::benchParseArgs(argc, argv)))
        return 2;
    return llcf::benchMain();
}
