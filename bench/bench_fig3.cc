/**
 * @file
 * Figure 3 — execution time of the parallel and sequential
 * TestEviction implementations on Cloud Run for candidate counts
 * from U to 11U (U = LLC/SF uncertainty).
 *
 * Paper reference (28 slices, U = 896): parallel TestEviction takes
 * ~135 us at 11U = 9,856 candidates, roughly two orders of magnitude
 * below sequential (~4-5 ms at the same size).  Also reproduces the
 * Section 4.3 analysis: expected background accesses during one test
 * and the probability of a noise-free parallel test.
 */

#include "bench_common.hh"

#include <benchmark/benchmark.h>

#include <cmath>

namespace llcf {
namespace {

const unsigned kMultipliers[] = {1, 3, 5, 7, 9, 11};

void
BM_Fig3(benchmark::State &state)
{
    const bool parallel = state.range(0) == 0;
    const unsigned mult = kMultipliers[state.range(1)];
    const std::size_t trials = trialCount(parallel ? 20 : 5);

    BenchRig rig(benchSkylake(), cloudRun(), baseSeed(),
                 msToCycles(1000.0));
    const unsigned u = rig.machine.config().sf.uncertainty();
    const std::size_t n = static_cast<std::size_t>(u) * mult;
    auto cands = rig.pool->candidatesAt(13);
    if (cands.size() <= n) {
        state.SkipWithError("candidate pool smaller than test size");
        return;
    }
    const Addr ta = cands.back();
    cands.pop_back();
    cands.resize(n);

    SampleStats duration_us;
    for (auto _ : state) {
        for (std::size_t t = 0; t < trials; ++t) {
            const Cycles start = rig.machine.now();
            if (parallel) {
                rig.session->testEvictionLlcParallel(ta, cands, n);
            } else {
                // Sequential (pointer-chase) traversal + timed check.
                Machine &m = rig.machine;
                m.clflush(0, ta);
                m.loadShared(0, 1, ta);
                for (Addr a : cands)
                    m.chaseLoad(0, a);
                m.probeLoad(0, ta);
            }
            duration_us.add(cyclesToUs(rig.machine.now() - start));
        }
    }

    const double rate_per_us =
        rig.machine.noiseProfile().accessesPerSetPerMs / 1000.0;
    const double expected_noise = duration_us.mean() * rate_per_us;
    state.counters["duration_us"] = duration_us.mean();
    state.counters["candidates"] = static_cast<double>(n);
    state.counters["expected_bg_accesses"] = expected_noise;
    state.counters["clean_test_prob"] = std::exp(-expected_noise);

    std::printf("  %-10s %6zu cands (%2uU): %9.1f us"
                "   E[bg accesses]=%6.2f   P[clean]=%.3f\n",
                parallel ? "parallel" : "sequential", n, mult,
                duration_us.mean(), expected_noise,
                std::exp(-expected_noise));
}

BENCHMARK(BM_Fig3)
    ->ArgsProduct({{0, 1}, {0, 1, 2, 3, 4, 5}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace llcf

BENCHMARK_MAIN();
