/**
 * @file
 * The defense-vs-attacker matrix and its CI gate.
 *
 * Runs the registered defense-* scenario cells (see src/defense/ and
 * the defense axis in src/scenario/registry.cc) and writes one
 * BENCH_defense.json entry per cell: the stage's headline success
 * rate under the deployed defense, the attack cost in simulated
 * cycles, and the def_* series (re-keys executed, lines remapped,
 * watchdog probe/miss/fire counts, victim working-set residency) that
 * price the defense itself.
 *
 *   bench_defense --list                    enumerate defense cells
 *   bench_defense                           run every cell, full trials
 *   bench_defense --scenario=defense-rekey-* run a named subset
 *   bench_defense --smoke                   trials capped at 2 per cell
 *   bench_defense --smoke --baseline=BENCH_defense.json
 *                                           + regression gate: success
 *                                           rates inside the baseline's
 *                                           absolute band, attack
 *                                           cycles inside the relative
 *                                           band; exits 1 on violation
 *
 * Two properties are gated unconditionally, baseline or not:
 *
 *  - the kill cell (defense-rekey-fast-tiny-build) must keep the
 *    attack's success rate below 10% — the measured re-key interval
 *    at which eviction-set construction dies stays demonstrated;
 *  - the undefended baseline row (defense-none-tiny-e2e) must keep
 *    succeeding, so "defense wins" can never be an artifact of the
 *    attack being broken everywhere.
 *
 * For a fixed seed the JSON is byte-identical at any worker-thread
 * count (each trial world is rebuilt from its positional stream; CI
 * diffs 1-thread vs 8-thread --smoke runs).  The checked-in baseline
 * at the repository root is regenerated with:
 *   ./build/bench_defense --smoke --json-out=BENCH_defense.json
 */

#include "bench_common.hh"

#include <cstdio>

#include "harness/json.hh"
#include "scenario/registry.hh"

namespace llcf {
namespace {

/** Absolute drift allowed on success rates by the gate: one trial of
 *  a 2-3 trial smoke cell may flip without failing CI. */
constexpr double kRateTolerance = 0.51;

/** Relative drift allowed on the attack-cycles mean. */
constexpr double kCyclesTolerance = 0.5;

/** The cell whose re-key interval must keep killing the attack. */
constexpr const char *kKillCell = "defense-rekey-fast-tiny-build";
constexpr double kKillCeiling = 0.10;

/** The undefended reference row that must keep succeeding. */
constexpr const char *kBaselineCell = "defense-none-tiny-e2e";
constexpr double kBaselineFloor = 0.50;

/** The stage's headline attack outcome a defense suppresses. */
const char *
primaryOutcome(ScenarioStage stage)
{
    switch (stage) {
      case ScenarioStage::EvsetBuild:
        return "success";
      case ScenarioStage::Scan:
      case ScenarioStage::EndToEnd:
        return "target_correct";
      case ScenarioStage::Campaign:
        return "key_recovered";
      case ScenarioStage::Calibrate:
        return "topology_match";
    }
    return "success";
}

/** The stage's attack-cost metric (the "extra attacker cycles" axis). */
const char *
primaryCycles(ScenarioStage stage)
{
    switch (stage) {
      case ScenarioStage::EvsetBuild:
        return "build_cycles";
      case ScenarioStage::Scan:
        return "scan_cycles";
      case ScenarioStage::EndToEnd:
      case ScenarioStage::Campaign:
        return "total_cycles";
      case ScenarioStage::Calibrate:
        return "calib_cycles";
    }
    return "build_cycles";
}

std::vector<const ScenarioSpec *>
defenseSpecs(const ScenarioRegistry &reg, bool scenario_given,
             const std::string &selection)
{
    std::vector<const ScenarioSpec *> specs;
    if (!scenario_given) {
        for (const ScenarioSpec &s : reg.all()) {
            if (s.defense.recordsMetrics())
                specs.push_back(&s);
        }
        return specs;
    }
    if (selection.empty())
        return specs;
    for (const ScenarioSpec *s : reg.select(selection)) {
        if (!s->defense.recordsMetrics()) {
            std::fprintf(stderr,
                         "bench_defense: '%s' has no defense axis "
                         "(those cells run under bench_matrix, "
                         "bench_e2e or bench_calib)\n",
                         s->name.c_str());
            std::exit(2);
        }
        specs.push_back(s);
    }
    return specs;
}

void
listCells(const std::vector<const ScenarioSpec *> &specs)
{
    std::printf("%-30s %-11s %-12s %-10s %s\n", "name", "stage",
                "defense", "machine", "description");
    for (const ScenarioSpec *s : specs) {
        char machine[32];
        std::snprintf(machine, sizeof(machine), "%s/%usl",
                      scenarioMachineName(s->machine), s->slices);
        std::printf("%-30s %-11s %-12s %-10s %s\n", s->name.c_str(),
                    scenarioStageName(s->stage),
                    defenseKindName(s->defense.kind), machine,
                    s->description.c_str());
    }
}

void
printCellRow(const ScenarioSpec &spec, const ExperimentResult &r)
{
    const SuccessRate *sr = r.outcome(primaryOutcome(spec.stage));
    const SampleStats *cycles = r.metric(primaryCycles(spec.stage));
    const SampleStats *rekeys = r.metric("def_rekeys");
    const SampleStats *fires = r.metric("def_wd_fires");
    const SampleStats *resident = r.metric("def_victim_resident");
    std::printf("  %-30s %-12s succ %5.1f%%  cost %10s  "
                "rekeys %6.1f  fires %5.1f  resident %s\n",
                r.name().c_str(), defenseKindName(spec.defense.kind),
                sr ? sr->rate() * 100.0 : 0.0,
                cycles && !cycles->empty()
                    ? formatDuration(cycles->mean()).c_str()
                    : "-",
                rekeys && !rekeys->empty() ? rekeys->mean() : 0.0,
                fires && !fires->empty() ? fires->mean() : 0.0,
                resident && !resident->empty()
                    ? (std::to_string(static_cast<int>(
                           resident->mean() * 100.0 + 0.5)) + "%")
                          .c_str()
                    : "-");
}

/**
 * The unconditional invariants: the kill cell stays lethal and the
 * undefended baseline row stays alive.  Returns violations.
 */
unsigned
gateInvariants(const ExperimentSuite &suite)
{
    unsigned violations = 0;
    for (const ExperimentResult &r : suite.results()) {
        if (r.name() == kKillCell) {
            const SuccessRate *sr = r.outcome("success");
            const double rate = sr ? sr->rate() : 1.0;
            if (rate >= kKillCeiling) {
                std::fprintf(stderr,
                             "FAIL %s: success rate %.3f >= %.2f — "
                             "the re-key interval no longer kills "
                             "eviction-set construction\n",
                             r.name().c_str(), rate, kKillCeiling);
                ++violations;
            }
        }
        if (r.name() == kBaselineCell) {
            const SuccessRate *sr = r.outcome("target_correct");
            const double rate = sr ? sr->rate() : 0.0;
            if (rate < kBaselineFloor) {
                std::fprintf(stderr,
                             "FAIL %s: undefended success rate %.3f "
                             "< %.2f — the attack itself is broken, "
                             "defense results are meaningless\n",
                             r.name().c_str(), rate, kBaselineFloor);
                ++violations;
            }
        }
    }
    return violations;
}

/**
 * Gate the suite against a checked-in baseline.  Returns the number
 * of violations; a stale or unreadable baseline counts as one so the
 * gate cannot silently pass.
 */
unsigned
gateAgainstBaseline(const ExperimentSuite &suite,
                    const std::vector<const ScenarioSpec *> &specs,
                    const std::string &path)
{
    JsonValue doc;
    if (!benchLoadBaseline(path, doc))
        return 1;
    const double rate_tol =
        benchBaselineTolerance(doc, "rate_tolerance", kRateTolerance);
    const double cyc_tol = benchBaselineTolerance(
        doc, "cycles_tolerance", kCyclesTolerance);

    unsigned violations = 0;
    for (const ExperimentResult &r : suite.results()) {
        const ScenarioSpec *spec = nullptr;
        for (const ScenarioSpec *s : specs) {
            if (s->name == r.name())
                spec = s;
        }
        if (!spec)
            continue;
        const JsonValue *base = benchBaselineEntry(doc, r.name());
        if (!base) {
            std::fprintf(stderr,
                         "FAIL %s: cell missing from baseline "
                         "(regenerate %s)\n",
                         r.name().c_str(), path.c_str());
            ++violations;
            continue;
        }
        const char *outcome = primaryOutcome(spec->stage);
        const JsonValue *want = base->find("outcomes", outcome, "rate");
        const SuccessRate *got = r.outcome(outcome);
        const bool want_has = want && want->isNumber();
        if (!want_has && !got) {
            // A defense that kills an earlier stage leaves the later
            // stage's series unrecorded — in the run AND the
            // baseline.  Both degrading identically is the expected
            // band, not a gate failure.
        } else if (!want_has || !got) {
            std::fprintf(stderr,
                         "FAIL %s: no comparable %s rate "
                         "(regenerate %s)\n",
                         r.name().c_str(), outcome, path.c_str());
            ++violations;
        } else {
            const double w = want->asNumber();
            if (got->rate() < w - rate_tol ||
                got->rate() > w + rate_tol) {
                std::fprintf(stderr,
                             "FAIL %s/%s: %.3f outside "
                             "[%.3f, %.3f]\n",
                             r.name().c_str(), outcome, got->rate(),
                             w - rate_tol, w + rate_tol);
                ++violations;
            }
        }
        const char *cost = primaryCycles(spec->stage);
        const JsonValue *mean = base->find("metrics", cost, "mean");
        const SampleStats *cycles = r.metric(cost);
        const bool mean_has = mean && mean->isNumber();
        const bool cycles_has = cycles && !cycles->empty();
        if (!mean_has && !cycles_has) {
            // Same as above: stage never reached on either side.
        } else if (!mean_has || !cycles_has) {
            std::fprintf(stderr,
                         "FAIL %s: no comparable %s "
                         "(regenerate %s)\n",
                         r.name().c_str(), cost, path.c_str());
            ++violations;
        } else {
            const double w = mean->asNumber();
            const double lo = w * (1.0 - cyc_tol);
            const double hi = w * (1.0 + cyc_tol);
            if (cycles->mean() < lo || cycles->mean() > hi) {
                std::fprintf(stderr,
                             "FAIL %s/%s: %.4g outside "
                             "[%.4g, %.4g] (baseline %.4g)\n",
                             r.name().c_str(), cost, cycles->mean(),
                             lo, hi, w);
                ++violations;
            }
        }
    }
    if (violations == 0)
        std::printf("defense gate: all cells within band of %s\n",
                    path.c_str());
    return violations;
}

int
benchMain(bool list, bool smoke, bool scenario_given,
          const std::string &selection, const std::string &baseline)
{
    const auto specs = defenseSpecs(builtinScenarios(), scenario_given,
                                    selection);
    if (list) {
        listCells(specs);
        return 0;
    }
    if (specs.empty()) {
        std::fprintf(stderr,
                     "bench_defense: no defense scenarios matched "
                     "'%s' (try --list)\n",
                     selection.c_str());
        return 1;
    }

    benchPrintHeader("Defense-vs-attacker matrix");
    ExperimentSuite suite("defense");
    suite.contextValue("rate_tolerance", kRateTolerance);
    suite.contextValue("cycles_tolerance", kCyclesTolerance);
    for (const ScenarioSpec *spec : specs) {
        const std::size_t trials =
            smoke ? std::min<std::size_t>(spec->defaultTrials, 2)
                  : trialCount(spec->defaultTrials);
        ExperimentResult result =
            runScenario(*spec, trials, 0, baseSeed());
        printCellRow(*spec, result);
        suite.add(std::move(result));
    }

    unsigned violations = gateInvariants(suite);
    // Gate before writing: when the output path and the baseline are
    // the same file, writing first would clobber the baseline and
    // gate the run against itself.
    if (!baseline.empty())
        violations += gateAgainstBaseline(suite, specs, baseline);
    const std::string out = suite.writeFile();
    if (out.empty()) {
        std::fprintf(stderr, "failed to write JSON output\n");
        return 1;
    }
    std::printf("wrote %s\n", out.c_str());
    return violations == 0 ? 0 : 1;
}

} // namespace
} // namespace llcf

int
main(int argc, char **argv)
{
    bool list = false;
    bool smoke = false;
    bool scenario_given = false;
    std::string selection;
    std::string baseline;
    std::vector<std::string> unknown;
    for (const std::string &arg : llcf::benchParseArgs(argc, argv)) {
        if (arg == "--list") {
            list = true;
        } else if (arg == "--smoke") {
            smoke = true;
        } else if (arg.rfind("--scenario=", 0) == 0) {
            scenario_given = true;
            if (!selection.empty())
                selection += ',';
            selection += arg.substr(sizeof("--scenario=") - 1);
        } else if (arg.rfind("--baseline=", 0) == 0) {
            baseline = arg.substr(sizeof("--baseline=") - 1);
        } else {
            unknown.push_back(arg);
        }
    }
    if (!llcf::benchRejectExtraArgs(unknown)) {
        std::fprintf(stderr,
                     "bench_defense flags: --list --smoke "
                     "--scenario=<name[,name...]> "
                     "--baseline=BENCH_defense.json\n");
        return 2;
    }
    return llcf::benchMain(list, smoke, scenario_given, selection,
                           baseline);
}
