/**
 * @file
 * Figure 2 — CDF of the time between background (other-tenant)
 * accesses to a randomly chosen LLC set, measured with Prime+Probe,
 * on Cloud Run vs a quiescent local machine.
 *
 * Paper reference: ~11.5 accesses/ms/set on Cloud Run vs ~0.29 on
 * the local machine; the Cloud Run CDF reaches ~1 within ~300 us.
 *
 * Runs on the harness: the per-environment trials fan out across
 * LLCF_THREADS workers on independent RNG streams; aggregates and
 * BENCH_fig2.json are identical for any thread count.
 */

#include "attack/covert.hh"
#include "attack/monitor.hh"
#include "bench_common.hh"
#include "harness/experiment.hh"
#include "harness/thread_pool.hh"

namespace llcf {
namespace {

void
runEnvironment(ExperimentSuite &suite, int env)
{
    // Paper: 1,000 back-to-back background accesses per trial.
    const std::size_t accesses_per_trial =
        envU64("LLCF_FIG2_ACCESSES", 400);

    ExperimentConfig cfg;
    cfg.name = std::string("Fig2 @ ") + benchProfileName(env);
    cfg.trials = trialCount(6);
    cfg.masterSeed = baseSeed();

    ExperimentRunner runner(cfg);
    ExperimentResult result = runner.run(
        [env, accesses_per_trial](TrialContext &ctx, TrialRecorder &rec) {
        const std::size_t t = ctx.index;
        ScenarioRig rig(benchSpec(env, 4, 100.0), ctx.seed);
        const unsigned w = rig.machine.config().sf.ways;
        const Addr target = rig.pool->at(5 + t, 44);
        auto evset = groundTruthEvictionSet(rig.machine, *rig.pool,
                                            target, w);
        auto monitor = PrimeProbeMonitor::make(MonitorKind::Parallel,
                                               *rig.session, evset);
        // Collect until enough detections or a time cap.
        const Cycles start = rig.machine.now();
        const Cycles cap = start + msToCycles(env == 0 ? 400.0 : 40.0);
        auto detections = monitor->collectTrace(cap);
        while (detections.size() > accesses_per_trial)
            detections.pop_back();
        for (std::size_t i = 1; i < detections.size(); ++i) {
            rec.metric("gap_us",
                       cyclesToUs(detections[i] - detections[i - 1]));
        }
        rec.metric("accesses",
                   static_cast<double>(detections.size()));
        rec.metric("elapsed_ms", cyclesToMs(rig.machine.now() - start));
    });

    const SampleStats *gaps = result.metric("gap_us");
    const SampleStats *accesses = result.metric("accesses");
    const SampleStats *elapsed = result.metric("elapsed_ms");
    const double total_accesses =
        accesses ? accesses->mean() *
                       static_cast<double>(accesses->count())
                 : 0.0;
    const double total_ms =
        elapsed ? elapsed->mean() * static_cast<double>(elapsed->count())
                : 0.0;
    const double rate = total_ms > 0.0 ? total_accesses / total_ms : 0.0;

    std::printf("  %-12s background rate %.2f accesses/ms/set\n",
                benchProfileName(env), rate);
    if (gaps && !gaps->empty()) {
        EmpiricalCdf cdf(gaps->samples());
        std::printf("  CDF of inter-access time (us -> P):\n");
        for (double x : {10.0, 25.0, 50.0, 100.0, 150.0, 200.0, 300.0,
                         500.0, 1000.0, 3000.0}) {
            std::printf("    %7.0f us  %.3f\n", x, cdf.at(x));
        }
    }
    suite.add(std::move(result));
}

int
benchMain()
{
    ExperimentSuite suite("fig2");
    benchPrintHeader("Figure 2");
    for (int env = 0; env < 2; ++env)
        runEnvironment(suite, env);
    return benchWriteSuite(suite);
}

} // namespace
} // namespace llcf

int
main(int argc, char **argv)
{
    if (!llcf::benchRejectExtraArgs(llcf::benchParseArgs(argc, argv)))
        return 2;
    return llcf::benchMain();
}
