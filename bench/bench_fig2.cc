/**
 * @file
 * Figure 2 — CDF of the time between background (other-tenant)
 * accesses to a randomly chosen LLC set, measured with Prime+Probe,
 * on Cloud Run vs a quiescent local machine.
 *
 * Paper reference: ~11.5 accesses/ms/set on Cloud Run vs ~0.29 on
 * the local machine; the Cloud Run CDF reaches ~1 within ~300 us.
 */

#include "attack/covert.hh"
#include "attack/monitor.hh"
#include "bench_common.hh"

namespace llcf {
namespace {

void
BM_Fig2(benchmark::State &state)
{
    const int env = static_cast<int>(state.range(0));
    const std::size_t trials = trialCount(6);
    // Paper: 1,000 back-to-back background accesses per trial.
    const std::size_t accesses_per_trial =
        envU64("LLCF_FIG2_ACCESSES", 400);

    SampleStats gaps_us;
    double total_accesses = 0.0, total_ms = 0.0;
    for (auto _ : state) {
        for (std::size_t t = 0; t < trials; ++t) {
            BenchRig rig(skylakeSp(4), benchProfile(env),
                         baseSeed() + t * 157, msToCycles(100.0));
            const unsigned w = rig.machine.config().sf.ways;
            const Addr target = rig.pool->at(5 + t, 44);
            auto evset = groundTruthEvictionSet(rig.machine, *rig.pool,
                                                target, w);
            auto monitor = PrimeProbeMonitor::make(
                MonitorKind::Parallel, *rig.session, evset);
            // Collect until enough detections or a time cap.
            const Cycles start = rig.machine.now();
            const Cycles cap = start + msToCycles(env == 0 ? 400.0
                                                           : 40.0);
            auto detections = monitor->collectTrace(cap);
            while (detections.size() > accesses_per_trial)
                detections.pop_back();
            for (std::size_t i = 1; i < detections.size(); ++i) {
                gaps_us.add(cyclesToUs(detections[i] -
                                       detections[i - 1]));
            }
            total_accesses += static_cast<double>(detections.size());
            total_ms += cyclesToMs(rig.machine.now() - start);
        }
    }
    const double rate = total_ms > 0.0 ? total_accesses / total_ms
                                       : 0.0;
    state.counters["accesses_per_ms_per_set"] = rate;
    state.counters["median_gap_us"] =
        gaps_us.empty() ? 0.0 : gaps_us.median();

    std::printf("  %-12s background rate %.2f accesses/ms/set\n",
                benchProfileName(env), rate);
    if (!gaps_us.empty()) {
        EmpiricalCdf cdf(gaps_us.samples());
        std::printf("  CDF of inter-access time (us -> P):\n");
        for (double x : {10.0, 25.0, 50.0, 100.0, 150.0, 200.0, 300.0,
                         500.0, 1000.0, 3000.0}) {
            std::printf("    %7.0f us  %.3f\n", x, cdf.at(x));
        }
    }
}

BENCHMARK(BM_Fig2)
    ->DenseRange(0, 1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

} // namespace
} // namespace llcf

BENCHMARK_MAIN();
