/**
 * @file
 * Hot-path microbenchmark and CI perf gate for the cache-model access
 * loop.
 *
 * Cells are (machine x shared replacement policy); each cell drives
 * four workload shapes through Machine::accessBatch:
 *
 *  - churn:      capacity-missing sweeps (sequential + overlapped
 *                loads and a flush sweep per round) — the
 *                DRAM/SF-allocate path
 *  - resident:   a cache-resident sweep — the private-hit fast path
 *  - evtest:     the TestEviction shape (flush working set, share the
 *                target, overlapped shared traversal, probe) — the
 *                attack's inner loop
 *  - flushsweep: repeated flush sweeps over mostly-absent lines — the
 *                flush pass at the top of every TestEviction once the
 *                previous traversal has displaced the working set
 *
 * Two kinds of numbers come out:
 *
 *  - accesses/sec (wall-clock, stdout only, never serialised): the
 *    host-side throughput headline the README "Performance" section
 *    tracks.  Skipped in --smoke mode.
 *  - simulated counters (BENCH_hotpath.json): cycles/access and
 *    eviction counts per workload — deterministic for a fixed seed,
 *    which is what the CI gate compares.
 *
 *   bench_hotpath                      full run, writes the JSON
 *   bench_hotpath --smoke              1 trial/cell, no wall-clock
 *   bench_hotpath --smoke --baseline=BENCH_hotpath.json
 *                                      + regression gate: every
 *                                      *_cycles_per_access mean must
 *                                      stay inside the baseline's
 *                                      tolerance band; exits 1 if not
 *
 * The checked-in baseline at the repository root is regenerated with:
 *   ./build/bench_hotpath --smoke --json-out=BENCH_hotpath.json
 */

#include "bench_common.hh"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <iterator>

#include "harness/json.hh"
#include "noise/profile.hh"
#include "sim/configs.hh"

namespace llcf {
namespace {

/** Relative drift allowed by the --smoke gate, serialised into the
 *  baseline context so the band travels with the numbers. */
constexpr double kGateTolerance = 0.10;

struct Cell
{
    const char *machineName;
    MachineConfig (*makeConfig)(unsigned);
    unsigned slices;
    ReplKind repl;
};

/** One workload execution's deterministic outcome. */
struct WorkloadRun
{
    std::uint64_t accesses = 0;
    Cycles cycles = 0;       //!< virtual cycles inside the timed region
    PerfCounters counters;   //!< machine counters at the end
    double wallSeconds = 0.0;
};

std::vector<Addr>
makeLines(Machine &m, AddressSpace &as, std::size_t pages)
{
    const Addr base = as.mmapAnon(pages * kPageBytes);
    (void)m;
    return as.translateLines(base, pages * kPageBytes);
}

/** Scale a per-machine workload: (pages, rounds) per machine kind. */
struct WorkloadScale
{
    std::size_t churnPages, churnRounds;
    std::size_t residentPages, residentRounds;
    std::size_t evtestPages, evtestRounds;
    std::size_t flushPages, flushRounds;
};

WorkloadScale
scaleFor(const MachineConfig &cfg)
{
    // Tiny machines need small footprints to still overflow/fit the
    // right levels; Skylake-scale machines get paper-plausible sizes.
    if (cfg.llc.lineCapacity() < 16384)
        return {64, 24, 12, 200, 4, 500, 16, 80};
    return {512, 4, 8, 300, 8, 200, 128, 16};
}

WorkloadRun
runChurn(const Cell &cell, std::uint64_t seed, const WorkloadScale &ws)
{
    MachineConfig cfg = cell.makeConfig(cell.slices);
    cfg.withSharedRepl(cell.repl);
    Machine m(cfg, silent(), seed);
    auto as = m.newAddressSpace();
    const auto lines = makeLines(m, *as, ws.churnPages);
    WorkloadRun run;
    const Cycles c0 = m.now();
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < ws.churnRounds; ++r) {
        m.accessBatch(0, lines, {BatchOp::Load});
        run.accesses += lines.size();
        m.accessBatch(0, lines, {BatchOp::Load, true, -1});
        run.accesses += lines.size();
        m.accessBatch(0, lines, {BatchOp::Flush, true, -1});
    }
    const auto t1 = std::chrono::steady_clock::now();
    run.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    run.cycles = m.now() - c0;
    run.counters = m.perfCounters();
    return run;
}

WorkloadRun
runResident(const Cell &cell, std::uint64_t seed,
            const WorkloadScale &ws)
{
    MachineConfig cfg = cell.makeConfig(cell.slices);
    cfg.withSharedRepl(cell.repl);
    Machine m(cfg, silent(), seed);
    auto as = m.newAddressSpace();
    const auto lines = makeLines(m, *as, ws.residentPages);
    m.accessBatch(0, lines, {BatchOp::Load}); // warm
    WorkloadRun run;
    const Cycles c0 = m.now();
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < ws.residentRounds; ++r) {
        m.accessBatch(0, lines, {BatchOp::Load});
        run.accesses += lines.size();
    }
    const auto t1 = std::chrono::steady_clock::now();
    run.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    run.cycles = m.now() - c0;
    run.counters = m.perfCounters();
    return run;
}

WorkloadRun
runEvtest(const Cell &cell, std::uint64_t seed, const WorkloadScale &ws)
{
    MachineConfig cfg = cell.makeConfig(cell.slices);
    cfg.withSharedRepl(cell.repl);
    Machine m(cfg, silent(), seed);
    auto as = m.newAddressSpace();
    auto lines = makeLines(m, *as, ws.evtestPages);
    const Addr ta = lines.back();
    lines.pop_back();
    WorkloadRun run;
    const Cycles c0 = m.now();
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < ws.evtestRounds; ++r) {
        // The TestEviction shape (AttackSession::testEvictionLlcParallel).
        m.accessBatch(0, lines, {BatchOp::Flush, true, -1});
        m.clflush(0, ta);
        m.loadShared(0, 1, ta);
        m.accessBatch(0, lines, {BatchOp::Load, true, 1});
        m.probeLoad(0, ta);
        run.accesses += 2 * lines.size() + 3;
    }
    const auto t1 = std::chrono::steady_clock::now();
    run.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    run.cycles = m.now() - c0;
    run.counters = m.perfCounters();
    return run;
}

WorkloadRun
runFlushSweep(const Cell &cell, std::uint64_t seed,
              const WorkloadScale &ws)
{
    MachineConfig cfg = cell.makeConfig(cell.slices);
    cfg.withSharedRepl(cell.repl);
    Machine m(cfg, silent(), seed);
    auto as = m.newAddressSpace();
    const auto lines = makeLines(m, *as, ws.flushPages);
    m.accessBatch(0, lines, {BatchOp::Load}); // populate once
    WorkloadRun run;
    const Cycles c0 = m.now();
    const auto t0 = std::chrono::steady_clock::now();
    // After the first sweep the lines are gone from every structure,
    // exactly like the flush pass at the top of each TestEviction once
    // the previous traversal has displaced the working set.
    for (std::size_t r = 0; r < ws.flushRounds; ++r) {
        m.accessBatch(0, lines, {BatchOp::Flush, true, -1});
        run.accesses += lines.size();
    }
    const auto t1 = std::chrono::steady_clock::now();
    run.wallSeconds = std::chrono::duration<double>(t1 - t0).count();
    run.cycles = m.now() - c0;
    run.counters = m.perfCounters();
    return run;
}

struct Workload
{
    const char *name;
    WorkloadRun (*run)(const Cell &, std::uint64_t,
                       const WorkloadScale &);
};

constexpr Workload kWorkloads[] = {
    {"churn", runChurn},
    {"resident", runResident},
    {"evtest", runEvtest},
    {"flushsweep", runFlushSweep},
};

std::string
cellName(const Cell &cell)
{
    std::string name = "hotpath-";
    name += cell.machineName;
    name += '-';
    name += replKindName(cell.repl);
    return name;
}

ExperimentResult
runCell(const Cell &cell, std::size_t trials, bool wallclock)
{
    const WorkloadScale ws =
        scaleFor(cell.makeConfig(cell.slices));
    ExperimentConfig ecfg;
    ecfg.name = cellName(cell);
    ecfg.trials = trials;
    ecfg.masterSeed = baseSeed();
    ExperimentRunner runner(ecfg);
    ExperimentResult result =
        runner.run([&](TrialContext &ctx, TrialRecorder &rec) {
            for (std::size_t wl = 0; wl < std::size(kWorkloads); ++wl) {
                const Workload &w = kWorkloads[wl];
                WorkloadRun run =
                    w.run(cell, streamSeed(ctx.seed, wl), ws);
                const std::string p = w.name;
                rec.metric(p + "_cycles_per_access",
                           static_cast<double>(run.cycles) /
                               static_cast<double>(run.accesses));
                rec.metric(p + "_llc_evictions",
                           static_cast<double>(
                               run.counters.llc.evictions));
                rec.metric(p + "_sf_evictions",
                           static_cast<double>(
                               run.counters.sf.evictions));
                if (wl == 0)
                    recordPerfCounters(rec, run.counters);
            }
        });

    if (wallclock) {
        // Dedicated single-threaded pass so accesses/sec is not
        // distorted by harness parallelism.  Wall-clock numbers stay
        // on stdout; the serialised metrics above are all simulated.
        std::printf("  %-34s", result.name().c_str());
        for (const Workload &w : kWorkloads) {
            WorkloadRun run = w.run(cell, streamSeed(baseSeed(), 0), ws);
            std::printf("  %s %7.2f Macc/s", w.name,
                        static_cast<double>(run.accesses) /
                            run.wallSeconds / 1e6);
        }
        std::printf("\n");
    } else {
        const SampleStats *churn =
            result.metric("churn_cycles_per_access");
        std::printf("  %-34s churn %8.2f cyc/acc\n",
                    result.name().c_str(),
                    churn && !churn->empty() ? churn->mean() : 0.0);
    }
    return result;
}

/**
 * Gate the suite against a checked-in baseline: every
 * *_cycles_per_access metric mean must stay within the baseline's
 * tolerance band.  Returns the number of violations (stale baselines
 * count as violations so the gate cannot silently pass).
 */
unsigned
gateAgainstBaseline(const ExperimentSuite &suite,
                    const std::string &path)
{
    JsonValue doc;
    if (!benchLoadBaseline(path, doc))
        return 1;
    const double tol =
        benchBaselineTolerance(doc, "tolerance", kGateTolerance);

    unsigned violations = 0;
    const char *suffix = "_cycles_per_access";
    for (const ExperimentResult &r : suite.results()) {
        const JsonValue *base = benchBaselineEntry(doc, r.name());
        if (!base) {
            std::fprintf(stderr,
                         "FAIL %s: cell missing from baseline "
                         "(regenerate %s)\n",
                         r.name().c_str(), path.c_str());
            ++violations;
            continue;
        }
        for (const auto &[metric, stats] : r.metrics()) {
            if (metric.size() < std::strlen(suffix) ||
                metric.compare(metric.size() - std::strlen(suffix),
                               std::strlen(suffix), suffix) != 0) {
                continue;
            }
            const JsonValue *mean =
                base->find("metrics", metric.c_str(), "mean");
            if (!mean || !mean->isNumber()) {
                std::fprintf(stderr,
                             "FAIL %s/%s: metric missing from "
                             "baseline (regenerate %s)\n",
                             r.name().c_str(), metric.c_str(),
                             path.c_str());
                ++violations;
                continue;
            }
            const double want = mean->asNumber();
            const double lo = want * (1.0 - tol);
            const double hi = want * (1.0 + tol);
            const double got = stats.mean();
            if (got < lo || got > hi) {
                std::fprintf(stderr,
                             "FAIL %s/%s: %.4f outside [%.4f, %.4f] "
                             "(baseline %.4f, tolerance %.0f%%)\n",
                             r.name().c_str(), metric.c_str(), got, lo,
                             hi, want, tol * 100.0);
                ++violations;
            }
        }
    }
    if (violations == 0)
        std::printf("perf gate: all cells within ±%.0f%% of %s\n",
                    tol * 100.0, path.c_str());
    return violations;
}

int
benchMain(bool smoke, const std::string &baseline)
{
    const Cell cells[] = {
        {"tiny-2sl", tinyTest, 2, ReplKind::LRU},
        {"tiny-2sl", tinyTest, 2, ReplKind::TreePLRU},
        {"tiny-2sl", tinyTest, 2, ReplKind::SRRIP},
        {"tiny-2sl", tinyTest, 2, ReplKind::Random},
        {"skylake-scaled-4sl", scaledSkylake, 4, ReplKind::LRU},
        {"skylake-scaled-4sl", scaledSkylake, 4, ReplKind::TreePLRU},
        {"skylake-scaled-4sl", scaledSkylake, 4, ReplKind::SRRIP},
        {"skylake-scaled-4sl", scaledSkylake, 4, ReplKind::Random},
        {"icelake-scaled-4sl", scaledIceLake, 4, ReplKind::LRU},
        {"icelake-scaled-4sl", scaledIceLake, 4, ReplKind::TreePLRU},
        {"icelake-scaled-4sl", scaledIceLake, 4, ReplKind::SRRIP},
        {"icelake-scaled-4sl", scaledIceLake, 4, ReplKind::Random},
    };

    benchPrintHeader("Cache hot path (machine x policy)");
    ExperimentSuite suite("hotpath");
    suite.contextValue("tolerance", kGateTolerance);
    const std::size_t trials = smoke ? 1 : trialCount(2);
    for (const Cell &cell : cells)
        suite.add(runCell(cell, trials, !smoke));

    // Gate before writing so an output path that happens to equal the
    // baseline path cannot clobber the baseline and self-gate.
    const bool gate_ok =
        baseline.empty() || gateAgainstBaseline(suite, baseline) == 0;
    const int write_rc = benchWriteSuite(suite);
    if (write_rc != 0)
        return write_rc;
    return gate_ok ? 0 : 1;
}

} // namespace
} // namespace llcf

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string baseline;
    std::vector<std::string> unknown;
    for (const std::string &arg : llcf::benchParseArgs(argc, argv)) {
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg.rfind("--baseline=", 0) == 0) {
            baseline = arg.substr(sizeof("--baseline=") - 1);
        } else {
            unknown.push_back(arg);
        }
    }
    if (!llcf::benchRejectExtraArgs(unknown)) {
        std::fprintf(stderr, "bench_hotpath flags: --smoke "
                             "--baseline=BENCH_hotpath.json\n");
        return 2;
    }
    return llcf::benchMain(smoke, baseline);
}
