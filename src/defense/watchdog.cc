/**
 * @file
 * Self-eviction watchdog window bookkeeping (see watchdog.hh).
 */

#include "defense/watchdog.hh"

#include "common/log.hh"

namespace llcf {

void
SelfEvictionWatchdog::arm(unsigned core, std::vector<Addr> lines,
                          Cycles now)
{
    if (lines.empty())
        fatal("watchdog: armed with an empty working set");
    armed_ = true;
    core_ = core;
    lines_ = std::move(lines);
    nextProbe_ = now + cfg_.probePeriod;
    windowProbes_ = 0;
    windowMisses_ = 0;
}

void
SelfEvictionWatchdog::disarm()
{
    armed_ = false;
    lines_.clear();
    nextProbe_ = kNeverCycles;
    windowProbes_ = 0;
    windowMisses_ = 0;
}

bool
SelfEvictionWatchdog::observe(bool anomalous_miss, Cycles now)
{
    ++probes_;
    ++windowProbes_;
    if (anomalous_miss) {
        ++misses_;
        ++windowMisses_;
    }
    if (windowProbes_ < cfg_.window)
        return false;
    const bool fire =
        windowMisses_ >= cfg_.threshold && now >= cooldownUntil_;
    windowProbes_ = 0;
    windowMisses_ = 0;
    if (fire) {
        ++fires_;
        cooldownUntil_ = now + cfg_.cooldown;
    }
    return fire;
}

} // namespace llcf
