/**
 * @file
 * Defense configuration validation, keyed index-hash derivation and
 * the scenario-axis mapping (see defense.hh).
 */

#include "defense/defense.hh"

#include <bit>

#include "common/log.hh"
#include "common/rng.hh"
#include "sim/configs.hh"

namespace llcf {

void
DefenseConfig::check(unsigned llc_ways, unsigned sf_ways,
                     unsigned cores) const
{
    if (partition.llc || partition.sf) {
        if (partition.protectedWays == 0)
            fatal("defense: partition reserves zero ways");
        if (partition.llc && partition.protectedWays >= llc_ways)
            fatal("defense: LLC partition reserves all %u ways",
                  llc_ways);
        if (partition.sf && partition.protectedWays >= sf_ways)
            fatal("defense: SF partition reserves all %u ways", sf_ways);
        if (partition.protectedCore >= cores)
            fatal("defense: protected core %u out of range (%u cores)",
                  partition.protectedCore, cores);
    }
    if (watchdog.enabled) {
        if (watchdog.window == 0 || watchdog.probePeriod == 0)
            fatal("defense: watchdog window/period must be non-zero");
        if (watchdog.threshold == 0 ||
            watchdog.threshold > watchdog.window) {
            fatal("defense: watchdog threshold %u outside (0, %u]",
                  watchdog.threshold, watchdog.window);
        }
        if (watchdog.action == WatchdogAction::Rekey &&
            !randomize.enabled) {
            fatal("defense: watchdog rekey action requires index "
                  "randomization");
        }
    }
}

SliceHashParams
makeIndexHashParams(unsigned idx_bits, std::uint64_t key)
{
    // 48-bit PA model: keyed bits live strictly above the page offset.
    constexpr Addr kFrameBits =
        ((1ULL << 48) - 1) & ~((1ULL << kPageBits) - 1);
    Rng rng(mix64(key ^ 0xdef0e11eULL));
    std::vector<Addr> masks(idx_bits);
    for (unsigned b = 0; b < idx_bits; ++b) {
        Addr mask = 1ULL << (kLineBits + b);
        if (kLineBits + b >= kPageBits)
            mask |= rng.next() & kFrameBits;
        masks[b] = mask;
    }
    return SliceHashParams::xorMatrix(std::move(masks));
}

unsigned
keyedIndexOf(const std::vector<Addr> &masks, Addr line)
{
    unsigned idx = 0;
    for (std::size_t b = 0; b < masks.size(); ++b)
        idx |= (std::popcount(line & masks[b]) & 1u) << b;
    return idx;
}

const char *
defenseKindName(DefenseKind kind)
{
    switch (kind) {
      case DefenseKind::None:
        return "none";
      case DefenseKind::KeyedRekey:
        return "keyed-rekey";
      case DefenseKind::WayPart:
        return "way-part";
      case DefenseKind::SfPart:
        return "sf-part";
      case DefenseKind::Watchdog:
        return "watchdog";
    }
    panic("unknown defense kind %d", static_cast<int>(kind));
}

void
DefenseSpec::applyTo(MachineConfig &cfg) const
{
    switch (kind) {
      case DefenseKind::None:
        return;
      case DefenseKind::KeyedRekey:
        cfg.defense.randomize.enabled = true;
        cfg.defense.randomize.rekeyInterval =
            rekeyIntervalMs > 0.0 ? msToCycles(rekeyIntervalMs) : 0;
        return;
      case DefenseKind::WayPart:
        cfg.defense.partition.llc = true;
        cfg.defense.partition.protectedWays = protectedWays;
        return;
      case DefenseKind::SfPart:
        cfg.defense.partition.sf = true;
        cfg.defense.partition.protectedWays = protectedWays;
        return;
      case DefenseKind::Watchdog:
        // The watchdog's response is a key rotation, so it implies
        // the keyed hash (with no timer of its own).
        cfg.defense.randomize.enabled = true;
        cfg.defense.watchdog.enabled = true;
        cfg.defense.watchdog.probePeriod =
            usToCycles(watchdogProbePeriodUs);
        cfg.defense.watchdog.window = watchdogWindow;
        cfg.defense.watchdog.threshold = watchdogThreshold;
        return;
    }
    panic("unknown defense kind %d", static_cast<int>(kind));
}

} // namespace llcf
