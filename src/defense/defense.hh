/**
 * @file
 * Host-side defenses against the LLC/SF eviction attacks the rest of
 * the simulator implements (ROADMAP item 2: the defense scenario
 * axis).  Three mechanism families are modelled:
 *
 *  - Keyed index randomization (CEASER/ScatterCache style): the
 *    shared-structure set index becomes a keyed XOR-matrix hash drawn
 *    from the same SliceHashParams family the slice hash uses, with an
 *    optional re-key interval that remaps every live LLC/SF line
 *    mid-run.  The keyed permutation acts on the page-uncontrolled
 *    index bits — the part of the mapping an attacker cannot learn
 *    from page offsets — so candidate-pool sizing is unchanged and a
 *    *static* key leaves the attack intact (the known CEASER-static
 *    weakness), while re-keying scrambles cross-page congruence and
 *    invalidates built eviction sets.
 *  - Way partitioning (Intel CAT style): per-domain allowed-way masks
 *    on the LLC and/or SF, enforced inside replacement victim
 *    selection so attacker fills can never evict the protected
 *    domain's ways.
 *  - A victim-side self-eviction watchdog: periodic probes of the
 *    victim's own working set count anomalous misses and can trigger
 *    a key rotation when the miss rate in a window crosses a
 *    threshold (see watchdog.hh).
 *
 * DefenseConfig is the machine-level knob block (a MachineConfig
 * member); DefenseSpec is the scenario-axis value that maps a named
 * defense cell onto a DefenseConfig.
 */

#ifndef LLCF_DEFENSE_DEFENSE_HH
#define LLCF_DEFENSE_DEFENSE_HH

#include <cstdint>

#include "cache/slice_hash.hh"
#include "common/types.hh"

namespace llcf {

/** Sentinel for "no scheduled defense event". */
inline constexpr Cycles kNeverCycles = ~static_cast<Cycles>(0);

/** What a fired watchdog does beyond counting. */
enum class WatchdogAction : std::uint8_t
{
    ReportOnly, //!< count the firing, take no action
    Rekey,      //!< request an index-hash re-key at the next safe point
};

/** Keyed index randomization + re-keying knobs. */
struct IndexRandomizationConfig
{
    bool enabled = false;

    /**
     * Cycles between automatic re-keys; 0 keeps the initial key for
     * the whole run (static-key CEASER).  Watchdog-triggered re-keys
     * are independent of this interval.
     */
    Cycles rekeyInterval = 0;

    /**
     * Stall charged per live line moved during a re-key — the cost of
     * the read-decrypt-rewrite pass relocating resident lines.
     */
    Cycles rekeyPerLineCost = 24;

    /** Mixed with the machine seed to derive the key stream. */
    std::uint64_t keySalt = 0x4cea5eULL;
};

/** CAT-style per-domain way masks on the shared structures. */
struct WayPartitionConfig
{
    bool llc = false; //!< partition the LLC ways
    bool sf = false;  //!< partition the SF ways

    /** Low ways reserved for the protected core's lines. */
    unsigned protectedWays = 2;

    /** Core whose lines fill the protected ways (the victim's). */
    unsigned protectedCore = 2;
};

/** Self-eviction watchdog knobs (mechanism lives in watchdog.hh). */
struct WatchdogConfig
{
    bool enabled = false;

    /** Cycles between working-set probe sweeps. */
    Cycles probePeriod = 50'000;

    /** Probes per decision window. */
    unsigned window = 48;

    /** Anomalous misses within a window that fire the watchdog. */
    unsigned threshold = 12;

    /** Minimum cycles between firings. */
    Cycles cooldown = 2'000'000;

    WatchdogAction action = WatchdogAction::Rekey;
};

/** Machine-level defense configuration (MachineConfig::defense). */
struct DefenseConfig
{
    IndexRandomizationConfig randomize;
    WayPartitionConfig partition;
    WatchdogConfig watchdog;

    /** True iff any mechanism is switched on. */
    bool
    any() const
    {
        return randomize.enabled || partition.llc || partition.sf ||
               watchdog.enabled;
    }

    /**
     * Validate against the machine shape; fatal on nonsense (e.g. a
     * partition reserving every way).  @p llc_ways / @p sf_ways are
     * the shared-structure associativities, @p cores the core count.
     */
    void check(unsigned llc_ways, unsigned sf_ways, unsigned cores) const;
};

/** Defense event totals a Machine reports (scenario metrics). */
struct DefenseStats
{
    std::uint64_t rekeys = 0;          //!< index-hash re-keys executed
    std::uint64_t rekeyLinesMoved = 0; //!< live lines remapped by them
    std::uint64_t wdProbes = 0;        //!< watchdog working-set probes
    std::uint64_t wdMisses = 0;        //!< anomalous misses among them
    std::uint64_t wdFires = 0;         //!< watchdog firings
};

/**
 * Derive the keyed set-index hash for one key epoch: one XOR mask per
 * set-index bit over @p idx_bits bits.  Every mask keeps its natural
 * index bit; masks for page-uncontrolled index bits additionally mix
 * keyed frame bits (>= kPageBits), so re-keying permutes how frames
 * land on the uncontrolled index space without disturbing the
 * page-offset structure attack code legitimately controls.  The
 * result is a genuine XorMatrix member of the SliceHashParams family.
 */
SliceHashParams makeIndexHashParams(unsigned idx_bits, std::uint64_t key);

/** Apply an XOR-matrix index hash to a line address. */
unsigned keyedIndexOf(const std::vector<Addr> &masks, Addr line);

// --------------------------------------------------- scenario axis

/** Defense mechanism deployed by a scenario cell. */
enum class DefenseKind : std::uint8_t
{
    None,       //!< undefended host (the existing cells)
    KeyedRekey, //!< keyed index hash, optionally re-keyed on a timer
    WayPart,    //!< CAT-style LLC way partition
    SfPart,     //!< SF way partition
    Watchdog,   //!< self-eviction watchdog triggering re-keys
};

/** Short kind name as used in cell names ("keyed-rekey", ...). */
const char *defenseKindName(DefenseKind kind);

/**
 * Scenario-axis value: which defense a cell deploys and its knobs.
 * applyTo() maps it onto the MachineConfig the cell builds, so every
 * stage (build/scan/e2e/campaign/calibrate) composes with every
 * defense without stage-specific plumbing.
 */
struct DefenseSpec
{
    DefenseKind kind = DefenseKind::None;

    /**
     * KeyedRekey: milliseconds between re-keys; 0 = static key.
     * (Virtual milliseconds at kCpuGhz, like every other knob.)
     */
    double rekeyIntervalMs = 0.0;

    /** WayPart/SfPart: ways reserved for the victim core. */
    unsigned protectedWays = 2;

    /** Watchdog: probe sweep period in virtual microseconds. */
    double watchdogProbePeriodUs = 25.0;

    /** Watchdog: probes per decision window. */
    unsigned watchdogWindow = 48;

    /** Watchdog: misses per window that trigger a re-key. */
    unsigned watchdogThreshold = 12;

    /**
     * Record defense metrics even when kind == None — set on the
     * undefended baseline cells of the defense suite so overhead
     * comparisons have a same-shaped reference row.
     */
    bool measure = false;

    /** True iff a mechanism is actually deployed. */
    bool active() const { return kind != DefenseKind::None; }

    /** True iff the trial should record defense metrics. */
    bool recordsMetrics() const { return active() || measure; }

    /** Fill @p cfg's defense block from this spec. */
    void applyTo(struct MachineConfig &cfg) const;
};

} // namespace llcf

#endif // LLCF_DEFENSE_DEFENSE_HH
