/**
 * @file
 * Victim-side self-eviction watchdog (defense mechanism (c)).
 *
 * The defended workload registers its own working set and the machine
 * sweeps it with non-charged background probes on a fixed period.  A
 * probe that has to reach beyond the private caches means some other
 * tenant displaced the line — exactly the footprint a conflict-based
 * attack leaves while it primes and probes.  When the anomalous-miss
 * count inside a decision window crosses the threshold the watchdog
 * fires, and (per WatchdogConfig::action) requests an index-hash
 * re-key at the machine's next safe point.
 *
 * The object is deliberately a plain value type: the Machine holds it
 * by value and its whole state rides along in Machine::Snapshot, so
 * campaign forks resume watchdog windows bit-exactly.
 */

#ifndef LLCF_DEFENSE_WATCHDOG_HH
#define LLCF_DEFENSE_WATCHDOG_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "defense/defense.hh"

namespace llcf {

/** Periodic working-set monitor; see file comment. */
class SelfEvictionWatchdog
{
  public:
    SelfEvictionWatchdog() = default;

    explicit SelfEvictionWatchdog(const WatchdogConfig &cfg)
        : cfg_(cfg)
    {}

    /**
     * Arm over @p lines (physical line addresses) probed as @p core,
     * with the first sweep one period after @p now.  Re-arming resets
     * the window but keeps lifetime totals.
     */
    void arm(unsigned core, std::vector<Addr> lines, Cycles now);

    /** Stop probing; lifetime totals survive. */
    void disarm();

    bool armed() const { return armed_; }
    unsigned core() const { return core_; }
    const std::vector<Addr> &lines() const { return lines_; }

    /** Absolute time of the next sweep (kNeverCycles when disarmed). */
    Cycles nextProbeAt() const { return armed_ ? nextProbe_ : kNeverCycles; }

    /** Schedule the following sweep after one finishes. */
    void scheduleNextProbe() { nextProbe_ += cfg_.probePeriod; }

    /**
     * Record one probe outcome at time @p now.  Returns true when
     * this observation closes a window over the threshold outside the
     * cooldown — i.e. the watchdog fires.
     */
    bool observe(bool anomalous_miss, Cycles now);

    // Lifetime totals (defense metrics).
    std::uint64_t probes() const { return probes_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t fires() const { return fires_; }

  private:
    WatchdogConfig cfg_;

    bool armed_ = false;
    unsigned core_ = 0;
    std::vector<Addr> lines_;
    Cycles nextProbe_ = kNeverCycles;

    unsigned windowProbes_ = 0;
    unsigned windowMisses_ = 0;
    Cycles cooldownUntil_ = 0;

    std::uint64_t probes_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t fires_ = 0;
};

} // namespace llcf

#endif // LLCF_DEFENSE_WATCHDOG_HH
