#include "svm.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace llcf {

KernelSvm::KernelSvm(const SvmParams &params) : params_(params)
{
}

double
KernelSvm::kernel(const std::vector<double> &a,
                  const std::vector<double> &b) const
{
    double dot = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        dot += a[i] * b[i];
    switch (params_.kernel) {
      case SvmKernel::Linear:
        return dot;
      case SvmKernel::Polynomial:
        return std::pow(params_.gamma * dot + params_.coef0,
                        params_.degree);
      case SvmKernel::Rbf: {
        double dist2 = 0.0;
        for (std::size_t i = 0; i < a.size(); ++i) {
            const double d = a[i] - b[i];
            dist2 += d * d;
        }
        return std::exp(-params_.gamma * dist2);
      }
    }
    return dot;
}

void
KernelSvm::fit(const Dataset &data)
{
    const std::size_t n = data.size();
    if (n == 0)
        fatal("cannot train an SVM on an empty dataset");

    std::vector<double> alpha(n, 0.0);
    double b = 0.0;
    Rng rng(params_.seed);

    // Cache the kernel matrix when it fits comfortably in memory;
    // training sets here are a few thousand samples at most.
    const bool cache = n <= 4096;
    std::vector<double> kmat;
    if (cache) {
        kmat.resize(n * n);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = i; j < n; ++j) {
                const double k = kernel(data.x[i], data.x[j]);
                kmat[i * n + j] = k;
                kmat[j * n + i] = k;
            }
        }
    }
    auto kval = [&](std::size_t i, std::size_t j) {
        return cache ? kmat[i * n + j] : kernel(data.x[i], data.x[j]);
    };
    auto fx = [&](std::size_t i) {
        double sum = b;
        for (std::size_t j = 0; j < n; ++j) {
            if (alpha[j] != 0.0)
                sum += alpha[j] * data.y[j] * kval(j, i);
        }
        return sum;
    };

    unsigned passes = 0;
    unsigned iters = 0;
    while (passes < params_.maxPasses && iters < params_.maxIterations) {
        unsigned changed = 0;
        for (std::size_t i = 0; i < n; ++i) {
            ++iters;
            const double ei = fx(i) - data.y[i];
            const bool violates =
                (data.y[i] * ei < -params_.tolerance &&
                 alpha[i] < params_.c) ||
                (data.y[i] * ei > params_.tolerance && alpha[i] > 0.0);
            if (!violates)
                continue;

            std::size_t j = static_cast<std::size_t>(
                rng.nextBelow(n - 1));
            if (j >= i)
                ++j;
            const double ej = fx(j) - data.y[j];

            const double ai_old = alpha[i], aj_old = alpha[j];
            double lo, hi;
            if (data.y[i] != data.y[j]) {
                lo = std::max(0.0, aj_old - ai_old);
                hi = std::min(params_.c, params_.c + aj_old - ai_old);
            } else {
                lo = std::max(0.0, ai_old + aj_old - params_.c);
                hi = std::min(params_.c, ai_old + aj_old);
            }
            if (lo >= hi)
                continue;

            const double eta = 2.0 * kval(i, j) - kval(i, i) -
                               kval(j, j);
            if (eta >= 0.0)
                continue;

            double aj = aj_old - data.y[j] * (ei - ej) / eta;
            aj = std::clamp(aj, lo, hi);
            if (std::abs(aj - aj_old) < 1e-6)
                continue;
            const double ai = ai_old + data.y[i] * data.y[j] *
                              (aj_old - aj);
            alpha[i] = ai;
            alpha[j] = aj;

            const double b1 = b - ei -
                data.y[i] * (ai - ai_old) * kval(i, i) -
                data.y[j] * (aj - aj_old) * kval(i, j);
            const double b2 = b - ej -
                data.y[i] * (ai - ai_old) * kval(i, j) -
                data.y[j] * (aj - aj_old) * kval(j, j);
            if (ai > 0.0 && ai < params_.c)
                b = b1;
            else if (aj > 0.0 && aj < params_.c)
                b = b2;
            else
                b = (b1 + b2) / 2.0;
            ++changed;
        }
        passes = changed == 0 ? passes + 1 : 0;
    }

    supportX_.clear();
    supportCoef_.clear();
    for (std::size_t i = 0; i < n; ++i) {
        if (alpha[i] > 1e-8) {
            supportX_.push_back(data.x[i]);
            supportCoef_.push_back(alpha[i] * data.y[i]);
        }
    }
    bias_ = b;
}

double
KernelSvm::decision(const std::vector<double> &sample) const
{
    double sum = bias_;
    for (std::size_t i = 0; i < supportX_.size(); ++i)
        sum += supportCoef_[i] * kernel(supportX_[i], sample);
    return sum;
}

int
KernelSvm::predict(const std::vector<double> &sample) const
{
    return decision(sample) >= 0.0 ? 1 : -1;
}

BinaryMetrics
KernelSvm::evaluate(const Dataset &data) const
{
    BinaryMetrics m;
    for (std::size_t i = 0; i < data.size(); ++i)
        m.add(data.y[i], predict(data.x[i]));
    return m;
}

} // namespace llcf
