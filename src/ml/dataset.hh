/**
 * @file
 * Small dense dataset utilities for the trace classifiers: feature
 * scaling, train/validation splitting, and binary metrics matching
 * what the paper reports (false-positive / false-negative rates).
 */

#ifndef LLCF_ML_DATASET_HH
#define LLCF_ML_DATASET_HH

#include <vector>

#include "common/rng.hh"

namespace llcf {

/** Binary-labelled dense dataset; labels are +1 / -1. */
struct Dataset
{
    std::vector<std::vector<double>> x;
    std::vector<int> y;

    std::size_t size() const { return x.size(); }
    std::size_t features() const { return x.empty() ? 0 : x[0].size(); }

    /** Append one sample. */
    void add(std::vector<double> features, int label);

    /** Shuffle samples in place. */
    void shuffle(Rng &rng);

    /** Split off the last @p fraction as a validation set. */
    std::pair<Dataset, Dataset> split(double fraction) const;
};

/** Per-feature standardisation to zero mean / unit variance. */
class StandardScaler
{
  public:
    /** Learn means and deviations from @p data. */
    void fit(const Dataset &data);

    /** Scale one sample in place. */
    void transform(std::vector<double> &sample) const;

    /** Scale a whole dataset in place. */
    void transform(Dataset &data) const;

    const std::vector<double> &means() const { return mean_; }
    const std::vector<double> &stddevs() const { return std_; }

  private:
    std::vector<double> mean_;
    std::vector<double> std_;
};

/** Binary-classification quality metrics. */
struct BinaryMetrics
{
    std::size_t tp = 0, tn = 0, fp = 0, fn = 0;

    void add(int truth, int predicted);

    double accuracy() const;
    /** Fraction of negatives misclassified as positive. */
    double falsePositiveRate() const;
    /** Fraction of positives misclassified as negative. */
    double falseNegativeRate() const;
};

} // namespace llcf

#endif // LLCF_ML_DATASET_HH
