#include "dataset.hh"

#include <cmath>

#include "common/log.hh"

namespace llcf {

void
Dataset::add(std::vector<double> features, int label)
{
    if (!x.empty() && features.size() != x[0].size())
        panic("dataset feature width mismatch");
    x.push_back(std::move(features));
    y.push_back(label);
}

void
Dataset::shuffle(Rng &rng)
{
    for (std::size_t i = size(); i > 1; --i) {
        std::size_t j = static_cast<std::size_t>(rng.nextBelow(i));
        std::swap(x[i - 1], x[j]);
        std::swap(y[i - 1], y[j]);
    }
}

std::pair<Dataset, Dataset>
Dataset::split(double fraction) const
{
    Dataset train, val;
    const std::size_t n_val = static_cast<std::size_t>(
        static_cast<double>(size()) * fraction);
    const std::size_t n_train = size() - n_val;
    for (std::size_t i = 0; i < size(); ++i) {
        if (i < n_train)
            train.add(x[i], y[i]);
        else
            val.add(x[i], y[i]);
    }
    return {std::move(train), std::move(val)};
}

void
StandardScaler::fit(const Dataset &data)
{
    const std::size_t f = data.features();
    mean_.assign(f, 0.0);
    std_.assign(f, 1.0);
    if (data.size() == 0)
        return;
    for (const auto &row : data.x) {
        for (std::size_t j = 0; j < f; ++j)
            mean_[j] += row[j];
    }
    for (std::size_t j = 0; j < f; ++j)
        mean_[j] /= static_cast<double>(data.size());
    std::vector<double> var(f, 0.0);
    for (const auto &row : data.x) {
        for (std::size_t j = 0; j < f; ++j) {
            const double d = row[j] - mean_[j];
            var[j] += d * d;
        }
    }
    for (std::size_t j = 0; j < f; ++j) {
        const double s = std::sqrt(var[j] /
                                   static_cast<double>(data.size()));
        std_[j] = s > 1e-12 ? s : 1.0;
    }
}

void
StandardScaler::transform(std::vector<double> &sample) const
{
    for (std::size_t j = 0; j < sample.size() && j < mean_.size(); ++j)
        sample[j] = (sample[j] - mean_[j]) / std_[j];
}

void
StandardScaler::transform(Dataset &data) const
{
    for (auto &row : data.x)
        transform(row);
}

void
BinaryMetrics::add(int truth, int predicted)
{
    if (truth > 0)
        predicted > 0 ? ++tp : ++fn;
    else
        predicted > 0 ? ++fp : ++tn;
}

double
BinaryMetrics::accuracy() const
{
    const std::size_t total = tp + tn + fp + fn;
    return total ? static_cast<double>(tp + tn) /
           static_cast<double>(total) : 0.0;
}

double
BinaryMetrics::falsePositiveRate() const
{
    const std::size_t neg = tn + fp;
    return neg ? static_cast<double>(fp) / static_cast<double>(neg) : 0.0;
}

double
BinaryMetrics::falseNegativeRate() const
{
    const std::size_t pos = tp + fn;
    return pos ? static_cast<double>(fn) / static_cast<double>(pos) : 0.0;
}

} // namespace llcf
