/**
 * @file
 * CART decision trees and a random forest, standing in for the
 * paper's random-forest iteration-boundary classifier (Section 7.3).
 */

#ifndef LLCF_ML_FOREST_HH
#define LLCF_ML_FOREST_HH

#include "ml/dataset.hh"

namespace llcf {

/** Decision-tree hyper-parameters. */
struct TreeParams
{
    unsigned maxDepth = 8;
    std::size_t minSamplesLeaf = 4;
    /** Features tried per split; 0 = sqrt(total features). */
    std::size_t maxFeatures = 0;
};

/**
 * Binary CART tree with Gini-impurity splits.
 */
class DecisionTree
{
  public:
    explicit DecisionTree(const TreeParams &params = TreeParams{});

    /**
     * Fit on a bootstrap view of @p data given by @p indices.
     * @param rng Source of feature-subsampling randomness.
     */
    void fit(const Dataset &data, const std::vector<std::size_t> &indices,
             Rng &rng);

    /** Probability of class +1. */
    double predictProba(const std::vector<double> &sample) const;

    /** Predicted label (+1 / -1). */
    int predict(const std::vector<double> &sample) const;

    /** Number of nodes (for tests). */
    std::size_t nodeCount() const { return nodes_.size(); }

  private:
    struct Node
    {
        int feature = -1;     //!< -1 marks a leaf
        double threshold = 0.0;
        double proba = 0.5;   //!< leaf probability of class +1
        int left = -1;
        int right = -1;
    };

    int build(const Dataset &data, std::vector<std::size_t> &indices,
              std::size_t begin, std::size_t end, unsigned depth,
              Rng &rng);

    TreeParams params_;
    std::vector<Node> nodes_;
};

/** Random-forest hyper-parameters. */
struct ForestParams
{
    unsigned trees = 40;
    TreeParams tree;
    double bootstrapFraction = 1.0;
    std::uint64_t seed = 11;
};

/**
 * Bagged ensemble of decision trees.
 */
class RandomForest
{
  public:
    explicit RandomForest(const ForestParams &params = ForestParams{});

    /** Train on @p data. */
    void fit(const Dataset &data);

    /** Mean of the trees' probabilities for class +1. */
    double predictProba(const std::vector<double> &sample) const;

    /** Predicted label (+1 / -1) with a 0.5 probability cut. */
    int predict(const std::vector<double> &sample) const;

    /** Evaluate on a labelled dataset. */
    BinaryMetrics evaluate(const Dataset &data) const;

    std::size_t treeCount() const { return trees_.size(); }

  private:
    ForestParams params_;
    std::vector<DecisionTree> trees_;
};

} // namespace llcf

#endif // LLCF_ML_FOREST_HH
