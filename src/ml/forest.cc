#include "forest.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace llcf {

DecisionTree::DecisionTree(const TreeParams &params) : params_(params)
{
}

namespace {

/** Gini impurity of a (pos, total) split side. */
double
gini(double pos, double total)
{
    if (total <= 0.0)
        return 0.0;
    const double p = pos / total;
    return 2.0 * p * (1.0 - p);
}

} // namespace

int
DecisionTree::build(const Dataset &data,
                    std::vector<std::size_t> &indices, std::size_t begin,
                    std::size_t end, unsigned depth, Rng &rng)
{
    const std::size_t n = end - begin;
    double pos = 0.0;
    for (std::size_t i = begin; i < end; ++i)
        pos += data.y[indices[i]] > 0 ? 1.0 : 0.0;

    Node node;
    node.proba = n ? pos / static_cast<double>(n) : 0.5;

    const bool pure = pos == 0.0 || pos == static_cast<double>(n);
    if (depth >= params_.maxDepth || n < 2 * params_.minSamplesLeaf ||
        pure) {
        nodes_.push_back(node);
        return static_cast<int>(nodes_.size()) - 1;
    }

    const std::size_t total_features = data.features();
    std::size_t try_features = params_.maxFeatures;
    if (try_features == 0) {
        try_features = static_cast<std::size_t>(
            std::sqrt(static_cast<double>(total_features)));
        try_features = std::max<std::size_t>(1, try_features);
    }

    // Sample candidate features without replacement.
    std::vector<std::size_t> feats(total_features);
    for (std::size_t f = 0; f < total_features; ++f)
        feats[f] = f;
    rng.shuffle(feats);
    feats.resize(std::min(try_features, total_features));

    int best_feature = -1;
    double best_threshold = 0.0;
    double best_score = gini(pos, static_cast<double>(n));
    std::vector<std::pair<double, int>> column(n);

    for (std::size_t f : feats) {
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t idx = indices[begin + i];
            column[i] = {data.x[idx][f], data.y[idx]};
        }
        std::sort(column.begin(), column.end());
        double left_pos = 0.0;
        for (std::size_t i = 0; i + 1 < n; ++i) {
            left_pos += column[i].second > 0 ? 1.0 : 0.0;
            if (column[i].first == column[i + 1].first)
                continue;
            const double nl = static_cast<double>(i + 1);
            const double nr = static_cast<double>(n) - nl;
            if (nl < params_.minSamplesLeaf ||
                nr < params_.minSamplesLeaf)
                continue;
            const double score =
                (nl * gini(left_pos, nl) +
                 nr * gini(pos - left_pos, nr)) /
                static_cast<double>(n);
            if (score < best_score - 1e-12) {
                best_score = score;
                best_feature = static_cast<int>(f);
                best_threshold = 0.5 * (column[i].first +
                                        column[i + 1].first);
            }
        }
    }

    if (best_feature < 0) {
        nodes_.push_back(node);
        return static_cast<int>(nodes_.size()) - 1;
    }

    // Partition indices around the chosen split.
    auto mid_it = std::partition(
        indices.begin() + begin, indices.begin() + end,
        [&](std::size_t idx) {
            return data.x[idx][best_feature] <= best_threshold;
        });
    const std::size_t mid = static_cast<std::size_t>(
        mid_it - indices.begin());
    if (mid == begin || mid == end) {
        nodes_.push_back(node);
        return static_cast<int>(nodes_.size()) - 1;
    }

    node.feature = best_feature;
    node.threshold = best_threshold;
    nodes_.push_back(node);
    const int self = static_cast<int>(nodes_.size()) - 1;
    const int left = build(data, indices, begin, mid, depth + 1, rng);
    const int right = build(data, indices, mid, end, depth + 1, rng);
    nodes_[self].left = left;
    nodes_[self].right = right;
    return self;
}

void
DecisionTree::fit(const Dataset &data,
                  const std::vector<std::size_t> &indices, Rng &rng)
{
    nodes_.clear();
    if (indices.empty())
        fatal("decision tree fit with no samples");
    std::vector<std::size_t> work = indices;
    build(data, work, 0, work.size(), 0, rng);
}

double
DecisionTree::predictProba(const std::vector<double> &sample) const
{
    if (nodes_.empty())
        return 0.5;
    int cur = 0;
    for (;;) {
        const Node &node = nodes_[cur];
        if (node.feature < 0 || node.left < 0 || node.right < 0)
            return node.proba;
        cur = sample[node.feature] <= node.threshold ? node.left
                                                     : node.right;
    }
}

int
DecisionTree::predict(const std::vector<double> &sample) const
{
    return predictProba(sample) >= 0.5 ? 1 : -1;
}

RandomForest::RandomForest(const ForestParams &params) : params_(params)
{
}

void
RandomForest::fit(const Dataset &data)
{
    if (data.size() == 0)
        fatal("cannot train a random forest on an empty dataset");
    trees_.clear();
    trees_.reserve(params_.trees);
    Rng rng(params_.seed);
    const std::size_t n_boot = std::max<std::size_t>(
        1, static_cast<std::size_t>(params_.bootstrapFraction *
                                    static_cast<double>(data.size())));
    for (unsigned t = 0; t < params_.trees; ++t) {
        std::vector<std::size_t> indices(n_boot);
        for (auto &idx : indices)
            idx = static_cast<std::size_t>(rng.nextBelow(data.size()));
        DecisionTree tree(params_.tree);
        Rng tree_rng = rng.split();
        tree.fit(data, indices, tree_rng);
        trees_.push_back(std::move(tree));
    }
}

double
RandomForest::predictProba(const std::vector<double> &sample) const
{
    if (trees_.empty())
        return 0.5;
    double sum = 0.0;
    for (const auto &tree : trees_)
        sum += tree.predictProba(sample);
    return sum / static_cast<double>(trees_.size());
}

int
RandomForest::predict(const std::vector<double> &sample) const
{
    return predictProba(sample) >= 0.5 ? 1 : -1;
}

BinaryMetrics
RandomForest::evaluate(const Dataset &data) const
{
    BinaryMetrics m;
    for (std::size_t i = 0; i < data.size(); ++i)
        m.add(data.y[i], predict(data.x[i]));
    return m;
}

} // namespace llcf
