/**
 * @file
 * Kernel support-vector machine trained with simplified SMO [Platt],
 * standing in for the paper's scikit-learn SVM with a polynomial
 * kernel (Section 7.2's target-set trace classifier).
 */

#ifndef LLCF_ML_SVM_HH
#define LLCF_ML_SVM_HH

#include "ml/dataset.hh"

namespace llcf {

/** Kernel families supported by the SVM. */
enum class SvmKernel { Linear, Polynomial, Rbf };

/** SVM hyper-parameters. */
struct SvmParams
{
    SvmKernel kernel = SvmKernel::Polynomial;
    double c = 1.0;        //!< box constraint
    double degree = 3.0;   //!< polynomial degree
    double gamma = 0.1;    //!< kernel scale (poly and RBF)
    double coef0 = 1.0;    //!< polynomial offset
    double tolerance = 1e-3;
    unsigned maxPasses = 8;   //!< SMO passes without change to stop
    unsigned maxIterations = 20000;
    std::uint64_t seed = 7;
};

/**
 * Binary kernel SVM (labels +1 / -1).
 */
class KernelSvm
{
  public:
    explicit KernelSvm(const SvmParams &params = SvmParams{});

    /** Train on @p data (already scaled by the caller). */
    void fit(const Dataset &data);

    /** Decision value; positive means class +1. */
    double decision(const std::vector<double> &sample) const;

    /** Predicted label (+1 / -1). */
    int predict(const std::vector<double> &sample) const;

    /** Evaluate on a labelled dataset. */
    BinaryMetrics evaluate(const Dataset &data) const;

    /** Number of support vectors retained after training. */
    std::size_t supportVectorCount() const { return supportX_.size(); }

  private:
    double kernel(const std::vector<double> &a,
                  const std::vector<double> &b) const;

    SvmParams params_;
    std::vector<std::vector<double>> supportX_;
    std::vector<double> supportCoef_; //!< alpha_i * y_i
    double bias_ = 0.0;
};

} // namespace llcf

#endif // LLCF_ML_SVM_HH
