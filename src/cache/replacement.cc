#include "replacement.hh"

#include "common/options.hh"

namespace llcf {

const char *
replKindName(ReplKind kind)
{
    switch (kind) {
      case ReplKind::LRU:
        return "LRU";
      case ReplKind::TreePLRU:
        return "TreePLRU";
      case ReplKind::SRRIP:
        return "SRRIP";
      case ReplKind::Random:
        return "Random";
    }
    return "?";
}

bool
parseReplKind(const std::string &name, ReplKind &out)
{
    for (ReplKind kind : kAllReplKinds) {
        if (equalsIgnoreCase(name, replKindName(kind))) {
            out = kind;
            return true;
        }
    }
    return false;
}

std::unique_ptr<ReplPolicy>
makeReplPolicy(ReplKind kind)
{
    return withReplOps(kind, [](auto ops) -> std::unique_ptr<ReplPolicy> {
        return std::make_unique<ReplPolicyFor<decltype(ops)>>();
    });
}

} // namespace llcf
