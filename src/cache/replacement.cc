#include "replacement.hh"

#include "common/log.hh"
#include "common/options.hh"

namespace llcf {

const char *
replKindName(ReplKind kind)
{
    switch (kind) {
      case ReplKind::LRU:
        return "LRU";
      case ReplKind::TreePLRU:
        return "TreePLRU";
      case ReplKind::SRRIP:
        return "SRRIP";
      case ReplKind::Random:
        return "Random";
    }
    return "?";
}

bool
parseReplKind(const std::string &name, ReplKind &out)
{
    for (ReplKind kind : kAllReplKinds) {
        if (equalsIgnoreCase(name, replKindName(kind))) {
            out = kind;
            return true;
        }
    }
    return false;
}

// ---------------------------------------------------------------- LRU

std::size_t
LruPolicy::stateBytes(unsigned ways) const
{
    return ways; // one age byte per way, 0 = MRU
}

void
LruPolicy::reset(std::uint8_t *st, unsigned ways) const
{
    for (unsigned w = 0; w < ways; ++w)
        st[w] = static_cast<std::uint8_t>(ways - 1 - w);
}

void
LruPolicy::onHit(std::uint8_t *st, unsigned ways, unsigned way) const
{
    const std::uint8_t old_age = st[way];
    for (unsigned w = 0; w < ways; ++w) {
        if (st[w] < old_age)
            ++st[w];
    }
    st[way] = 0;
}

void
LruPolicy::onFill(std::uint8_t *st, unsigned ways, unsigned way) const
{
    onHit(st, ways, way);
}

unsigned
LruPolicy::victim(std::uint8_t *st, unsigned ways, Rng &rng) const
{
    (void)rng;
    unsigned vic = 0;
    std::uint8_t oldest = 0;
    for (unsigned w = 0; w < ways; ++w) {
        if (st[w] >= oldest) {
            oldest = st[w];
            vic = w;
        }
    }
    return vic;
}

// ----------------------------------------------------------- TreePLRU

namespace {

unsigned
plruLeaves(unsigned ways)
{
    unsigned leaves = 1;
    while (leaves < ways)
        leaves <<= 1;
    return leaves;
}

} // namespace

std::size_t
TreePlruPolicy::stateBytes(unsigned ways) const
{
    // One byte per node slot of a full binary tree; index 0 unused.
    return plruLeaves(ways);
}

void
TreePlruPolicy::reset(std::uint8_t *st, unsigned ways) const
{
    const unsigned n = plruLeaves(ways);
    for (unsigned i = 0; i < n; ++i)
        st[i] = 0;
}

void
TreePlruPolicy::touch(std::uint8_t *st, unsigned ways, unsigned way) const
{
    const unsigned leaves = plruLeaves(ways);
    // Walk root to leaf, pointing each node away from the touched way.
    unsigned node = 1;
    unsigned lo = 0, hi = leaves;
    while (node < leaves) {
        unsigned mid = (lo + hi) / 2;
        if (way < mid) {
            st[node] = 1; // point at the right (other) side
            node = node * 2;
            hi = mid;
        } else {
            st[node] = 0;
            node = node * 2 + 1;
            lo = mid;
        }
    }
}

void
TreePlruPolicy::onHit(std::uint8_t *st, unsigned ways, unsigned way) const
{
    touch(st, ways, way);
}

void
TreePlruPolicy::onFill(std::uint8_t *st, unsigned ways, unsigned way) const
{
    touch(st, ways, way);
}

unsigned
TreePlruPolicy::victim(std::uint8_t *st, unsigned ways, Rng &rng) const
{
    (void)rng;
    const unsigned leaves = plruLeaves(ways);
    unsigned node = 1;
    unsigned lo = 0, hi = leaves;
    while (node < leaves) {
        unsigned mid = (lo + hi) / 2;
        if (st[node]) {
            node = node * 2 + 1;
            lo = mid;
        } else {
            node = node * 2;
            hi = mid;
        }
    }
    // With non-power-of-two ways the walk can land past the last way;
    // clamp (the tree bits still age sensibly).
    return lo < ways ? lo : ways - 1;
}

// -------------------------------------------------------------- SRRIP

std::size_t
SrripPolicy::stateBytes(unsigned ways) const
{
    return ways; // one RRPV byte per way
}

void
SrripPolicy::reset(std::uint8_t *st, unsigned ways) const
{
    for (unsigned w = 0; w < ways; ++w)
        st[w] = kMaxRrpv;
}

void
SrripPolicy::onHit(std::uint8_t *st, unsigned ways, unsigned way) const
{
    (void)ways;
    st[way] = 0; // hit promotion
}

void
SrripPolicy::onFill(std::uint8_t *st, unsigned ways, unsigned way) const
{
    (void)ways;
    st[way] = kMaxRrpv - 1; // long re-reference interval on insert
}

unsigned
SrripPolicy::victim(std::uint8_t *st, unsigned ways, Rng &rng) const
{
    (void)rng;
    for (;;) {
        for (unsigned w = 0; w < ways; ++w) {
            if (st[w] >= kMaxRrpv)
                return w;
        }
        for (unsigned w = 0; w < ways; ++w)
            ++st[w];
    }
}

// ------------------------------------------------------------- Random

std::size_t
RandomPolicy::stateBytes(unsigned ways) const
{
    (void)ways;
    return 0;
}

void
RandomPolicy::reset(std::uint8_t *st, unsigned ways) const
{
    (void)st;
    (void)ways;
}

void
RandomPolicy::onHit(std::uint8_t *st, unsigned ways, unsigned way) const
{
    (void)st;
    (void)ways;
    (void)way;
}

void
RandomPolicy::onFill(std::uint8_t *st, unsigned ways, unsigned way) const
{
    (void)st;
    (void)ways;
    (void)way;
}

unsigned
RandomPolicy::victim(std::uint8_t *st, unsigned ways, Rng &rng) const
{
    (void)st;
    return static_cast<unsigned>(rng.nextBelow(ways));
}

std::unique_ptr<ReplPolicy>
makeReplPolicy(ReplKind kind)
{
    switch (kind) {
      case ReplKind::LRU:
        return std::make_unique<LruPolicy>();
      case ReplKind::TreePLRU:
        return std::make_unique<TreePlruPolicy>();
      case ReplKind::SRRIP:
        return std::make_unique<SrripPolicy>();
      case ReplKind::Random:
        return std::make_unique<RandomPolicy>();
    }
    panic("unknown replacement kind");
}

} // namespace llcf
