/**
 * @file
 * Replacement policies for set-associative caches.
 *
 * Policies are stateless strategy objects operating on a small per-set
 * byte buffer owned by the cache array, so a machine with tens of
 * thousands of sets stays compact.  The paper's Parallel Probing claims
 * independence from the replacement policy; having LRU / Tree-PLRU /
 * SRRIP / Random selectable per structure lets the ablation benches
 * test that claim.
 */

#ifndef LLCF_CACHE_REPLACEMENT_HH
#define LLCF_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/rng.hh"

namespace llcf {

/** Selectable replacement policy kinds. */
enum class ReplKind { LRU, TreePLRU, SRRIP, Random };

/** Human-readable policy name. */
const char *replKindName(ReplKind kind);

/**
 * Parse a policy name as printed by replKindName (case-insensitive).
 * @return true and fills @p out on a known name.
 */
bool parseReplKind(const std::string &name, ReplKind &out);

/** All selectable policy kinds, for ablation sweeps. */
inline constexpr ReplKind kAllReplKinds[] = {
    ReplKind::LRU, ReplKind::TreePLRU, ReplKind::SRRIP, ReplKind::Random};

/**
 * Abstract replacement policy.
 *
 * One instance serves every set of a cache structure; all mutable
 * state lives in the per-set byte buffer passed to each call.
 */
class ReplPolicy
{
  public:
    virtual ~ReplPolicy() = default;

    /** Bytes of per-set state required for @p ways ways. */
    virtual std::size_t stateBytes(unsigned ways) const = 0;

    /** Initialise per-set state to the cold baseline. */
    virtual void reset(std::uint8_t *st, unsigned ways) const = 0;

    /** Update state on a hit to @p way. */
    virtual void onHit(std::uint8_t *st, unsigned ways, unsigned way)
        const = 0;

    /** Update state when a new line is filled into @p way. */
    virtual void onFill(std::uint8_t *st, unsigned ways, unsigned way)
        const = 0;

    /**
     * Choose the victim way.  The cache array fills invalid ways first,
     * so this is only consulted when every way is valid.
     */
    virtual unsigned victim(std::uint8_t *st, unsigned ways, Rng &rng)
        const = 0;

    /** Policy kind tag. */
    virtual ReplKind kind() const = 0;
};

/** True LRU via per-way age counters (0 = MRU). */
class LruPolicy : public ReplPolicy
{
  public:
    std::size_t stateBytes(unsigned ways) const override;
    void reset(std::uint8_t *st, unsigned ways) const override;
    void onHit(std::uint8_t *st, unsigned ways, unsigned way)
        const override;
    void onFill(std::uint8_t *st, unsigned ways, unsigned way)
        const override;
    unsigned victim(std::uint8_t *st, unsigned ways, Rng &rng)
        const override;
    ReplKind kind() const override { return ReplKind::LRU; }
};

/** Tree pseudo-LRU over the next power-of-two of ways. */
class TreePlruPolicy : public ReplPolicy
{
  public:
    std::size_t stateBytes(unsigned ways) const override;
    void reset(std::uint8_t *st, unsigned ways) const override;
    void onHit(std::uint8_t *st, unsigned ways, unsigned way)
        const override;
    void onFill(std::uint8_t *st, unsigned ways, unsigned way)
        const override;
    unsigned victim(std::uint8_t *st, unsigned ways, Rng &rng)
        const override;
    ReplKind kind() const override { return ReplKind::TreePLRU; }

  private:
    void touch(std::uint8_t *st, unsigned ways, unsigned way) const;
};

/** Static RRIP with 2-bit re-reference prediction values. */
class SrripPolicy : public ReplPolicy
{
  public:
    std::size_t stateBytes(unsigned ways) const override;
    void reset(std::uint8_t *st, unsigned ways) const override;
    void onHit(std::uint8_t *st, unsigned ways, unsigned way)
        const override;
    void onFill(std::uint8_t *st, unsigned ways, unsigned way)
        const override;
    unsigned victim(std::uint8_t *st, unsigned ways, Rng &rng)
        const override;
    ReplKind kind() const override { return ReplKind::SRRIP; }

  private:
    static constexpr std::uint8_t kMaxRrpv = 3;
};

/** Uniform random victim selection (no per-set state). */
class RandomPolicy : public ReplPolicy
{
  public:
    std::size_t stateBytes(unsigned ways) const override;
    void reset(std::uint8_t *st, unsigned ways) const override;
    void onHit(std::uint8_t *st, unsigned ways, unsigned way)
        const override;
    void onFill(std::uint8_t *st, unsigned ways, unsigned way)
        const override;
    unsigned victim(std::uint8_t *st, unsigned ways, Rng &rng)
        const override;
    ReplKind kind() const override { return ReplKind::Random; }
};

/** Factory for policy instances. */
std::unique_ptr<ReplPolicy> makeReplPolicy(ReplKind kind);

} // namespace llcf

#endif // LLCF_CACHE_REPLACEMENT_HH
