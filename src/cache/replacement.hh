/**
 * @file
 * Replacement policies for set-associative caches.
 *
 * Policies are stateless strategies operating on a small per-set byte
 * buffer owned by the cache array, so a machine with tens of thousands
 * of sets stays compact.  The paper's Parallel Probing claims
 * independence from the replacement policy; having LRU / Tree-PLRU /
 * SRRIP / Random selectable per structure lets the ablation benches
 * test that claim.
 *
 * Two layers are exposed:
 *
 *  - The *Ops structs (LruOps, TreePlruOps, SrripOps, RandomOps) hold
 *    the policy logic as inline static functions.  withReplOps()
 *    dispatches over a ReplKind tag at compile time per call site, so
 *    the cache array's hot path (CacheArray::onHit / fill) runs the
 *    policy update fully inlined — one predictable switch instead of a
 *    virtual call per access.
 *  - The virtual ReplPolicy classes wrap the same ops for callers that
 *    want runtime polymorphism (reference models in tests, tools).
 *    They contain no logic of their own.
 */

#ifndef LLCF_CACHE_REPLACEMENT_HH
#define LLCF_CACHE_REPLACEMENT_HH

#include <bit>
#include <cstdint>
#include <memory>
#include <string>

#include "common/log.hh"
#include "common/rng.hh"

namespace llcf {

/** Selectable replacement policy kinds. */
enum class ReplKind { LRU, TreePLRU, SRRIP, Random };

/** Human-readable policy name. */
const char *replKindName(ReplKind kind);

/**
 * Parse a policy name as printed by replKindName (case-insensitive).
 * @return true and fills @p out on a known name.
 */
bool parseReplKind(const std::string &name, ReplKind &out);

/** All selectable policy kinds, for ablation sweeps. */
inline constexpr ReplKind kAllReplKinds[] = {
    ReplKind::LRU, ReplKind::TreePLRU, ReplKind::SRRIP, ReplKind::Random};

// --------------------------------------------------------- policy ops
//
// Each ops struct provides the same five static operations on a
// per-set state buffer:
//
//   stateBytes(ways)          bytes of per-set state required
//   reset(st, ways)           initialise to the cold baseline
//   onHit(st, ways, way)      update on a hit
//   onFill(st, ways, way)     update when a new line fills @p way
//   victim(st, ways, rng)     choose the victim (all ways valid)
//
// plus victimMasked(st, ways, allowed, rng): the victim restricted to
// the set bits of an allowed-way mask — the hook CAT-style way
// partitioning uses so one domain's fills can never evict another
// domain's ways.  Preconditions: every allowed way is valid and the
// mask selects at least one way below `ways`.

/** True LRU via per-way age counters (0 = MRU). */
struct LruOps
{
    static constexpr ReplKind kKind = ReplKind::LRU;

    static std::size_t
    stateBytes(unsigned ways)
    {
        return ways; // one age byte per way, 0 = MRU
    }

    static void
    reset(std::uint8_t *st, unsigned ways)
    {
        for (unsigned w = 0; w < ways; ++w)
            st[w] = static_cast<std::uint8_t>(ways - 1 - w);
    }

    static void
    onHit(std::uint8_t *st, unsigned ways, unsigned way)
    {
        const std::uint8_t old_age = st[way];
        for (unsigned w = 0; w < ways; ++w) {
            if (st[w] < old_age)
                ++st[w];
        }
        st[way] = 0;
    }

    static void
    onFill(std::uint8_t *st, unsigned ways, unsigned way)
    {
        onHit(st, ways, way);
    }

    static unsigned
    victim(const std::uint8_t *st, unsigned ways, Rng &rng)
    {
        (void)rng;
        unsigned vic = 0;
        std::uint8_t oldest = 0;
        for (unsigned w = 0; w < ways; ++w) {
            if (st[w] >= oldest) {
                oldest = st[w];
                vic = w;
            }
        }
        return vic;
    }

    /** Fused victim() + onFill(); one dispatch for the fill path. */
    static unsigned
    victimAndFill(std::uint8_t *st, unsigned ways, Rng &rng)
    {
        const unsigned vic = victim(st, ways, rng);
        onFill(st, ways, vic);
        return vic;
    }

    /**
     * Oldest way within @p allowed, with the same >=-tie-break toward
     * the highest way as victim().
     */
    static unsigned
    victimMasked(std::uint8_t *st, unsigned ways, std::uint64_t allowed,
                 Rng &rng)
    {
        (void)rng;
        unsigned vic = 0;
        int oldest = -1;
        for (unsigned w = 0; w < ways; ++w) {
            if (!(allowed >> w & 1))
                continue;
            if (static_cast<int>(st[w]) >= oldest) {
                oldest = st[w];
                vic = w;
            }
        }
        return vic;
    }
};

/** Tree pseudo-LRU over the next power-of-two of ways. */
struct TreePlruOps
{
    static constexpr ReplKind kKind = ReplKind::TreePLRU;

    static unsigned
    leaves(unsigned ways)
    {
        unsigned n = 1;
        while (n < ways)
            n <<= 1;
        return n;
    }

    static std::size_t
    stateBytes(unsigned ways)
    {
        // One byte per node slot of a full binary tree; index 0 unused.
        return leaves(ways);
    }

    static void
    reset(std::uint8_t *st, unsigned ways)
    {
        const unsigned n = leaves(ways);
        for (unsigned i = 0; i < n; ++i)
            st[i] = 0;
    }

    static void
    onHit(std::uint8_t *st, unsigned ways, unsigned way)
    {
        // Walk root to leaf, pointing each node away from the touched
        // way.
        const unsigned n = leaves(ways);
        unsigned node = 1;
        unsigned lo = 0, hi = n;
        while (node < n) {
            unsigned mid = (lo + hi) / 2;
            if (way < mid) {
                st[node] = 1; // point at the right (other) side
                node = node * 2;
                hi = mid;
            } else {
                st[node] = 0;
                node = node * 2 + 1;
                lo = mid;
            }
        }
    }

    static void
    onFill(std::uint8_t *st, unsigned ways, unsigned way)
    {
        onHit(st, ways, way);
    }

    static unsigned
    victim(const std::uint8_t *st, unsigned ways, Rng &rng)
    {
        (void)rng;
        const unsigned n = leaves(ways);
        unsigned node = 1;
        unsigned lo = 0, hi = n;
        while (node < n) {
            unsigned mid = (lo + hi) / 2;
            if (st[node]) {
                node = node * 2 + 1;
                lo = mid;
            } else {
                node = node * 2;
                hi = mid;
            }
        }
        // With non-power-of-two ways the walk can land past the last
        // way; clamp (the tree bits still age sensibly).
        return lo < ways ? lo : ways - 1;
    }

    /**
     * Fused victim() + onFill(): the fill walk retraces the victim
     * walk exactly, flipping every visited node to point away from
     * the chosen leaf — so one descent can read the direction and
     * write its complement.  Only exact for power-of-two ways (the
     * non-pow2 clamp makes the touch path diverge); callers fall back
     * otherwise.
     */
    static unsigned
    victimAndFill(std::uint8_t *st, unsigned ways, Rng &rng)
    {
        if (!isPow2(ways)) {
            const unsigned vic = victim(st, ways, rng);
            onFill(st, ways, vic);
            return vic;
        }
        const unsigned n = leaves(ways);
        unsigned node = 1;
        unsigned lo = 0, hi = n;
        while (node < n) {
            const unsigned mid = (lo + hi) / 2;
            const std::uint8_t d = st[node];
            st[node] = d ? 0 : 1;
            if (d) {
                node = node * 2 + 1;
                lo = mid;
            } else {
                node = node * 2;
                hi = mid;
            }
        }
        return lo;
    }

    /**
     * Victim constrained to @p allowed: the descent follows each
     * node's pointer unless the pointed-to subtree contains no
     * allowed way, in which case it takes the other side.  Every
     * entered subtree contains an allowed way, so the final leaf is
     * always allowed (including the non-power-of-two tail, whose
     * phantom leaves never carry allowed bits).
     */
    static unsigned
    victimMasked(std::uint8_t *st, unsigned ways, std::uint64_t allowed,
                 Rng &rng)
    {
        (void)rng;
        const unsigned n = leaves(ways);
        const auto range_allowed = [&](unsigned lo, unsigned hi) {
            if (lo >= ways)
                return std::uint64_t{0};
            if (hi > ways)
                hi = ways;
            const std::uint64_t span =
                hi - lo >= 64 ? ~std::uint64_t{0}
                              : (std::uint64_t{1} << (hi - lo)) - 1;
            return allowed & (span << lo);
        };
        unsigned node = 1;
        unsigned lo = 0, hi = n;
        while (node < n) {
            const unsigned mid = (lo + hi) / 2;
            bool right = st[node] != 0;
            if (right && range_allowed(mid, hi) == 0)
                right = false;
            else if (!right && range_allowed(lo, mid) == 0)
                right = true;
            if (right) {
                node = node * 2 + 1;
                lo = mid;
            } else {
                node = node * 2;
                hi = mid;
            }
        }
        return lo;
    }

  private:
    static bool
    isPow2(unsigned v)
    {
        return v != 0 && (v & (v - 1)) == 0;
    }
};

/** Static RRIP with 2-bit re-reference prediction values. */
struct SrripOps
{
    static constexpr ReplKind kKind = ReplKind::SRRIP;
    static constexpr std::uint8_t kMaxRrpv = 3;

    static std::size_t
    stateBytes(unsigned ways)
    {
        return ways; // one RRPV byte per way
    }

    static void
    reset(std::uint8_t *st, unsigned ways)
    {
        for (unsigned w = 0; w < ways; ++w)
            st[w] = kMaxRrpv;
    }

    static void
    onHit(std::uint8_t *st, unsigned ways, unsigned way)
    {
        (void)ways;
        st[way] = 0; // hit promotion
    }

    static void
    onFill(std::uint8_t *st, unsigned ways, unsigned way)
    {
        (void)ways;
        st[way] = kMaxRrpv - 1; // long re-reference interval on insert
    }

    static unsigned
    victim(std::uint8_t *st, unsigned ways, Rng &rng)
    {
        (void)rng;
        for (;;) {
            for (unsigned w = 0; w < ways; ++w) {
                if (st[w] >= kMaxRrpv)
                    return w;
            }
            for (unsigned w = 0; w < ways; ++w)
                ++st[w];
        }
    }

    /** Fused victim() + onFill(); identical outcome, one dispatch. */
    static unsigned
    victimAndFill(std::uint8_t *st, unsigned ways, Rng &rng)
    {
        const unsigned vic = victim(st, ways, rng);
        st[vic] = kMaxRrpv - 1;
        return vic;
    }

    /**
     * First allowed way at max RRPV, aging only the allowed ways so
     * the other partition's re-reference state is untouched.
     */
    static unsigned
    victimMasked(std::uint8_t *st, unsigned ways, std::uint64_t allowed,
                 Rng &rng)
    {
        (void)rng;
        for (;;) {
            for (unsigned w = 0; w < ways; ++w) {
                if ((allowed >> w & 1) && st[w] >= kMaxRrpv)
                    return w;
            }
            for (unsigned w = 0; w < ways; ++w) {
                if (allowed >> w & 1)
                    ++st[w];
            }
        }
    }
};

/** Uniform random victim selection (no per-set state). */
struct RandomOps
{
    static constexpr ReplKind kKind = ReplKind::Random;

    static std::size_t
    stateBytes(unsigned ways)
    {
        (void)ways;
        return 0;
    }

    static void
    reset(std::uint8_t *st, unsigned ways)
    {
        (void)st;
        (void)ways;
    }

    static void
    onHit(std::uint8_t *st, unsigned ways, unsigned way)
    {
        (void)st;
        (void)ways;
        (void)way;
    }

    static void
    onFill(std::uint8_t *st, unsigned ways, unsigned way)
    {
        (void)st;
        (void)ways;
        (void)way;
    }

    static unsigned
    victim(const std::uint8_t *st, unsigned ways, Rng &rng)
    {
        (void)st;
        return static_cast<unsigned>(rng.nextBelow(ways));
    }

    /** Fused victim() + onFill(); state-free either way. */
    static unsigned
    victimAndFill(std::uint8_t *st, unsigned ways, Rng &rng)
    {
        return victim(st, ways, rng);
    }

    /** Uniform choice among the allowed ways. */
    static unsigned
    victimMasked(std::uint8_t *st, unsigned ways, std::uint64_t allowed,
                 Rng &rng)
    {
        (void)st;
        const std::uint64_t in_range =
            ways >= 64 ? allowed
                       : allowed & ((std::uint64_t{1} << ways) - 1);
        auto k = rng.nextBelow(
            static_cast<std::uint64_t>(std::popcount(in_range)));
        for (unsigned w = 0; w < ways; ++w) {
            if (!(allowed >> w & 1))
                continue;
            if (k == 0)
                return w;
            --k;
        }
        return ways - 1;
    }
};

/**
 * Invoke @p fn with the ops struct for @p kind.  The switch is the
 * whole dispatch cost: inside @p fn the policy operations are ordinary
 * inlineable static calls, which is what lets CacheArray's per-access
 * path run without virtual dispatch.
 */
template <typename Fn>
inline decltype(auto)
withReplOps(ReplKind kind, Fn &&fn)
{
    switch (kind) {
      case ReplKind::LRU:
        return fn(LruOps{});
      case ReplKind::TreePLRU:
        return fn(TreePlruOps{});
      case ReplKind::SRRIP:
        return fn(SrripOps{});
      case ReplKind::Random:
        return fn(RandomOps{});
    }
    panic("unknown replacement kind");
}

// ------------------------------------------------ virtual wrapper API

/**
 * Abstract replacement policy for callers that want runtime
 * polymorphism.  One instance serves every set of a cache structure;
 * all mutable state lives in the per-set byte buffer passed to each
 * call.  The concrete classes delegate to the ops structs above.
 */
class ReplPolicy
{
  public:
    virtual ~ReplPolicy() = default;

    /** Bytes of per-set state required for @p ways ways. */
    virtual std::size_t stateBytes(unsigned ways) const = 0;

    /** Initialise per-set state to the cold baseline. */
    virtual void reset(std::uint8_t *st, unsigned ways) const = 0;

    /** Update state on a hit to @p way. */
    virtual void onHit(std::uint8_t *st, unsigned ways, unsigned way)
        const = 0;

    /** Update state when a new line is filled into @p way. */
    virtual void onFill(std::uint8_t *st, unsigned ways, unsigned way)
        const = 0;

    /**
     * Choose the victim way.  The cache array fills invalid ways first,
     * so this is only consulted when every way is valid.
     */
    virtual unsigned victim(std::uint8_t *st, unsigned ways, Rng &rng)
        const = 0;

    /**
     * Victim restricted to the set bits of @p allowed (partitioned
     * fills).  @pre the mask selects at least one way below @p ways.
     */
    virtual unsigned victimMasked(std::uint8_t *st, unsigned ways,
                                  std::uint64_t allowed,
                                  Rng &rng) const = 0;

    /** Policy kind tag. */
    virtual ReplKind kind() const = 0;
};

/** Virtual wrapper over @p Ops (see the ops structs above). */
template <typename Ops>
class ReplPolicyFor : public ReplPolicy
{
  public:
    std::size_t
    stateBytes(unsigned ways) const override
    {
        return Ops::stateBytes(ways);
    }

    void
    reset(std::uint8_t *st, unsigned ways) const override
    {
        Ops::reset(st, ways);
    }

    void
    onHit(std::uint8_t *st, unsigned ways, unsigned way) const override
    {
        Ops::onHit(st, ways, way);
    }

    void
    onFill(std::uint8_t *st, unsigned ways, unsigned way) const override
    {
        Ops::onFill(st, ways, way);
    }

    unsigned
    victim(std::uint8_t *st, unsigned ways, Rng &rng) const override
    {
        return Ops::victim(st, ways, rng);
    }

    unsigned
    victimMasked(std::uint8_t *st, unsigned ways, std::uint64_t allowed,
                 Rng &rng) const override
    {
        return Ops::victimMasked(st, ways, allowed, rng);
    }

    ReplKind
    kind() const override
    {
        return Ops::kKind;
    }
};

/** Virtual wrappers of the four policy ops (reference models). */
using LruPolicy = ReplPolicyFor<LruOps>;
using TreePlruPolicy = ReplPolicyFor<TreePlruOps>;
using SrripPolicy = ReplPolicyFor<SrripOps>;
using RandomPolicy = ReplPolicyFor<RandomOps>;

/** Factory for virtual policy instances. */
std::unique_ptr<ReplPolicy> makeReplPolicy(ReplKind kind);

} // namespace llcf

#endif // LLCF_CACHE_REPLACEMENT_HH
