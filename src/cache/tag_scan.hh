/**
 * @file
 * Tag-row scan kernels for the structure-of-arrays cache layout.
 *
 * A CacheArray stores each set's tags as one contiguous, padded row of
 * 8-byte words (see cache_array.hh), so "is this line in the set?"
 * becomes a single pass over the row.  Two interchangeable kernels
 * implement that pass:
 *
 *  - tagScanFindScalar: a straight-line equality loop — the portable
 *    fallback, and the reference the differential tests compare
 *    against.
 *  - tagScanFindVector (LLCF_SIMD builds only): compares the row in
 *    128-bit vector groups using GCC/Clang vector extensions, with one
 *    mask check per four-tag group — a miss costs padded/2 vector
 *    compares and well-predicted not-taken branches, and a hit stops
 *    at its group and rescans only those four slots (hit-heavy
 *    private-cache lookups must not pay a full-row pass).  Vector
 *    extensions lower to SSE2/NEON without any -m flags, and all
 *    operations are integer-exact, so the two kernels return identical
 *    results on every input by construction — the property the
 *    scalar-vs-SIMD differential suite in tests/test_hotpath.cc pins
 *    end to end.
 *
 * Kernel selection is compile-time (the LLCF_SIMD CMake toggle) with a
 * runtime override: setTagScanForceScalar(true), or the environment
 * variable LLCF_SCALAR_TAGS=1 read at startup, forces the scalar
 * kernel in a SIMD build.  The override exists for the differential
 * tests and the CI byte-identity checks only; it is read once per scan
 * from a process-global flag and must not be flipped while machines
 * are being accessed concurrently.
 */

#ifndef LLCF_CACHE_TAG_SCAN_HH
#define LLCF_CACHE_TAG_SCAN_HH

#include "common/options.hh"
#include "common/types.hh"

// Vector extensions require GCC or Clang; anything else falls back to
// the scalar kernel even when LLCF_SIMD is on.
#if defined(LLCF_SIMD) && (defined(__GNUC__) || defined(__clang__))
#define LLCF_TAG_SCAN_VECTOR 1
#else
#define LLCF_TAG_SCAN_VECTOR 0
#endif

namespace llcf {

namespace detail {

/**
 * Process-global force-scalar flag (tests / CI byte-identity only).
 * LLCF_SCALAR_TAGS is read once at startup through the audited
 * src/common/options.cc environment layer — the only getenv site the
 * determinism linter admits (DESIGN.md §10).
 */
inline bool g_tag_scan_force_scalar = envBool("LLCF_SCALAR_TAGS");

} // namespace detail

/** Force the scalar kernel at runtime (differential tests only). */
inline void
setTagScanForceScalar(bool force)
{
    detail::g_tag_scan_force_scalar = force;
}

/** True iff a SIMD build is currently using the vector kernel. */
inline bool
tagScanVectorActive()
{
    return LLCF_TAG_SCAN_VECTOR && !detail::g_tag_scan_force_scalar;
}

/**
 * Reference kernel: first slot in [0, words) holding @p needle, or -1.
 */
inline int
tagScanFindScalar(const Addr *row, unsigned words, Addr needle)
{
    for (unsigned w = 0; w < words; ++w) {
        if (row[w] == needle)
            return static_cast<int>(w);
    }
    return -1;
}

#if LLCF_TAG_SCAN_VECTOR

/** Two 64-bit tag lanes; lowers to one SSE2/NEON register. */
typedef Addr TagVec __attribute__((vector_size(16)));

/**
 * Vector kernel: same contract as tagScanFindScalar.  @p words must be
 * a multiple of kTagLane (rows are padded by the cache array).  The
 * row is consumed in four-tag groups (two vectors each); a group whose
 * OR-folded mask is clear — the overwhelmingly common case on a miss —
 * costs two compares and one well-predicted branch, and the first
 * matching group recovers the lowest matching slot with a four-slot
 * rescan.  Tags are unique within a row, so the first matching group
 * holds the first match.
 */
inline int
tagScanFindVector(const Addr *row, unsigned words, Addr needle)
{
    const TagVec splat = {needle, needle};
    for (unsigned b = 0; b < words; b += 4) {
        TagVec v0, v1;
        __builtin_memcpy(&v0, row + b, sizeof v0);
        __builtin_memcpy(&v1, row + b + 2, sizeof v1);
        const TagVec m = (v0 == splat) | (v1 == splat);
        if (m[0] | m[1]) {
            for (unsigned w = b;; ++w) {
                if (row[w] == needle)
                    return static_cast<int>(w);
            }
        }
    }
    return -1;
}

#endif // LLCF_TAG_SCAN_VECTOR

/** Tags per padded-row group; rows are padded to a multiple of this. */
inline constexpr unsigned kTagLane = 4;

/**
 * First slot in [0, words) holding @p needle, or -1.  Dispatches to
 * the vector kernel when compiled in and not forced scalar; both
 * kernels are integer-exact and return identical results.
 */
inline int
tagScanFind(const Addr *row, unsigned words, Addr needle)
{
#if LLCF_TAG_SCAN_VECTOR
    if (!detail::g_tag_scan_force_scalar)
        return tagScanFindVector(row, words, needle);
#endif
    return tagScanFindScalar(row, words, needle);
}

} // namespace llcf

#endif // LLCF_CACHE_TAG_SCAN_HH
