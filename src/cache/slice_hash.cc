#include "slice_hash.hh"

#include <bit>

#include "common/log.hh"
#include "common/rng.hh"

namespace llcf {

OpaqueSliceHash::OpaqueSliceHash(unsigned n_slices, std::uint64_t salt)
    : nSlices_(n_slices), salt_(salt)
{
    if (n_slices == 0)
        fatal("slice hash needs at least one slice");
    if (n_slices > 1)
        magic_ = ~std::uint64_t{0} / n_slices; // floor((2^64 - 1) / n)
}

XorMatrixSliceHash::XorMatrixSliceHash(std::vector<Addr> masks)
    : masks_(std::move(masks))
{
    if (masks_.empty() || masks_.size() > 6)
        fatal("XOR slice hash supports 1..6 slice bits");
}

unsigned
XorMatrixSliceHash::slice(Addr pa) const
{
    unsigned s = 0;
    for (std::size_t i = 0; i < masks_.size(); ++i) {
        unsigned bit = std::popcount(pa & masks_[i]) & 1u;
        s |= bit << i;
    }
    return s;
}

std::unique_ptr<SliceHash>
makeOpaqueSliceHash(unsigned n_slices, std::uint64_t salt)
{
    return std::make_unique<OpaqueSliceHash>(n_slices, salt);
}

const char *
sliceHashKindName(SliceHashKind kind)
{
    switch (kind) {
      case SliceHashKind::Opaque:
        return "opaque";
      case SliceHashKind::XorMatrix:
        return "xor-matrix";
    }
    return "?";
}

std::unique_ptr<SliceHash>
makeSliceHash(const SliceHashParams &params)
{
    switch (params.kind) {
      case SliceHashKind::Opaque:
        if (!params.masks.empty())
            fatal("opaque slice hash takes no masks");
        return std::make_unique<OpaqueSliceHash>(params.slices,
                                                 params.salt);
      case SliceHashKind::XorMatrix:
        if (params.slices != (1u << params.masks.size()))
            fatal("XOR slice hash: %zu masks cannot produce %u slices",
                  params.masks.size(), params.slices);
        return std::make_unique<XorMatrixSliceHash>(params.masks);
    }
    fatal("unknown slice-hash kind");
}

} // namespace llcf
