/**
 * @file
 * LLC/SF slice-hash functions.
 *
 * Intel's slice hash consumes every PA bit above the line offset and is
 * complex and non-linear for non-power-of-two slice counts [McCalpin 21],
 * so partial control of the low PA bits does not narrow the possible
 * slices (Section 2.2.1).  Two models are provided:
 *
 *  - OpaqueSliceHash: a keyed pseudo-random hash of PA[.. :6].  It has
 *    exactly the properties the attack algorithms rely on (deterministic,
 *    attacker-opaque, all-bit-dependent) and supports any slice count.
 *  - XorMatrixSliceHash: the classic documented XOR-of-bit-masks hash
 *    for power-of-two slice counts, for machines where that applies.
 *
 * Both models are instances of one *parameterized family*
 * (SliceHashParams + makeSliceHash): a machine's hash is fully
 * described by a small parameter record, and the Step-0 topology
 * prober (src/calib/) fits the parameters it can observe — the slice
 * count, and the hash kind it assumes — from timing alone.  The salt
 * is attacker-unobservable by design: any salt yields a hash that is
 * observation-equivalent to the true one up to a relabeling of the
 * slices, which is all the eviction-set techniques need.
 */

#ifndef LLCF_CACHE_SLICE_HASH_HH
#define LLCF_CACHE_SLICE_HASH_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace llcf {

/** Maps a physical line address to an LLC/SF slice. */
class SliceHash
{
  public:
    virtual ~SliceHash() = default;

    /** Slice index in [0, slices()). */
    virtual unsigned slice(Addr pa) const = 0;

    /** Number of slices this hash targets. */
    virtual unsigned slices() const = 0;
};

/**
 * Keyed pseudo-random slice hash supporting arbitrary slice counts
 * (e.g. the 28-, 26- and 22-slice parts in the paper).
 */
class OpaqueSliceHash final : public SliceHash
{
  public:
    /**
     * @param n_slices Number of slices.
     * @param salt Per-machine key, so different simulated hosts have
     *             different (but internally fixed) slice mappings.
     */
    OpaqueSliceHash(unsigned n_slices, std::uint64_t salt);

    /**
     * Non-virtual hot path: the Machine holds this hash by value and
     * calls it once per simulated access, so the hash plus the
     * modulo-free reduction below must inline.
     */
    unsigned
    slice(Addr pa) const
    {
        // Hash the line address (all bits above the line offset).
        // mix64 is a strong 64-bit finaliser, so every PA bit
        // influences the slice, matching the attacker-visible
        // behaviour of the real hash.
        const std::uint64_t h = mix64((pa >> kLineBits) ^ salt_);
        if (nSlices_ == 1)
            return 0;
        // Granlund-Montgomery reduction with magic_ ~= 2^64 / n: q is
        // within two of h / n, so at most two corrections recover
        // exactly the h % n the modulo operator would produce, without
        // a hardware divide on the per-access path.
        const std::uint64_t q = static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(h) * magic_) >> 64);
        std::uint64_t r = h - q * nSlices_;
        while (r >= nSlices_)
            r -= nSlices_;
        return static_cast<unsigned>(r);
    }

    unsigned slices() const override { return nSlices_; }

  private:
    unsigned nSlices_;
    std::uint64_t salt_;
    std::uint64_t magic_ = 0; //!< floor(2^64 / nSlices_) for nSlices_ > 1
};

/**
 * XOR-matrix slice hash: slice bit i is the parity of (pa & mask[i]).
 * Only valid for power-of-two slice counts.
 */
class XorMatrixSliceHash : public SliceHash
{
  public:
    /**
     * @param masks One PA bit mask per slice-index bit.
     */
    explicit XorMatrixSliceHash(std::vector<Addr> masks);

    unsigned slice(Addr pa) const override;
    unsigned slices() const override { return 1u << masks_.size(); }

  private:
    std::vector<Addr> masks_;
};

/** Build the default opaque hash for a machine. */
std::unique_ptr<SliceHash> makeOpaqueSliceHash(unsigned n_slices,
                                               std::uint64_t salt);

/** Selector of one member of the slice-hash family. */
enum class SliceHashKind
{
    Opaque,    //!< keyed pseudo-random hash, any slice count
    XorMatrix, //!< documented XOR-of-masks hash, power-of-two slices
};

/** Human-readable hash-kind name. */
const char *sliceHashKindName(SliceHashKind kind);

/**
 * Parameter record fully describing one member of the slice-hash
 * family.  A MachineConfig derives its record via sliceHashParams()
 * and the simulator instantiates the hash from it, so a record round-
 * trips bit-for-bit (pinned by tests/test_calib.cc goldens).  The
 * Step-0 prober emits a fitted record as part of CalibratedTopology.
 */
struct SliceHashParams
{
    SliceHashKind kind = SliceHashKind::Opaque;
    unsigned slices = 1;      //!< slice count (any value for Opaque)
    std::uint64_t salt = 0;   //!< per-machine key (Opaque only)
    std::vector<Addr> masks;  //!< PA bit masks (XorMatrix only)

    /** Record for an opaque hash. */
    static SliceHashParams
    opaque(unsigned n_slices, std::uint64_t salt)
    {
        SliceHashParams p;
        p.kind = SliceHashKind::Opaque;
        p.slices = n_slices;
        p.salt = salt;
        return p;
    }

    /** Record for an XOR-matrix hash (one mask per slice-index bit). */
    static SliceHashParams
    xorMatrix(std::vector<Addr> masks)
    {
        SliceHashParams p;
        p.kind = SliceHashKind::XorMatrix;
        p.slices = 1u << masks.size();
        p.masks = std::move(masks);
        return p;
    }
};

/**
 * Instantiate the family member @p params describes.  Fatal on an
 * inconsistent record (e.g. XorMatrix whose mask count does not match
 * the slice count).
 */
std::unique_ptr<SliceHash> makeSliceHash(const SliceHashParams &params);

} // namespace llcf

#endif // LLCF_CACHE_SLICE_HASH_HH
