/**
 * @file
 * Allocation-free performance counters for the simulated memory
 * hierarchy.
 *
 * Counters exist at two levels and are plain structs of integers, so
 * recording one event is a single increment on the hot path and
 * snapshotting them is a struct copy:
 *
 *  - ArrayCounters: per CacheArray (hits / fills / evictions /
 *    invalidations / tag scans), maintained by the array itself.
 *  - PerfCounters: the machine-wide roll-up — per-structure
 *    ArrayCounters (L1/L2 summed over cores, LLC, SF), access and
 *    service-level totals, coherence downgrades and simulated cycles.
 *
 * All counts are *simulated* events, a deterministic function of the
 * access trace and seed: two runs of the same experiment produce the
 * same counters at any host parallelism, which is what lets CI gate on
 * them (bench_hotpath --smoke) instead of on noisy wall-clock numbers.
 */

#ifndef LLCF_CACHE_PERF_COUNTERS_HH
#define LLCF_CACHE_PERF_COUNTERS_HH

#include <cstdint>

namespace llcf {

/** Event counters of one cache structure (one CacheArray). */
struct ArrayCounters
{
    std::uint64_t hits = 0;          //!< replacement promotions (onHit)
    std::uint64_t fills = 0;         //!< lines inserted
    std::uint64_t evictions = 0;     //!< valid lines displaced by fills
    std::uint64_t invalidations = 0; //!< lines dropped by invalidate ops
    std::uint64_t tagScans = 0;      //!< tag-row lookups (findWay calls)

    ArrayCounters &
    operator+=(const ArrayCounters &o)
    {
        hits += o.hits;
        fills += o.fills;
        evictions += o.evictions;
        invalidations += o.invalidations;
        tagScans += o.tagScans;
        return *this;
    }
};

/** Number of HitLevel service classes (L1/L2/SF/LLC/DRAM). */
inline constexpr unsigned kHitLevelCount = 5;

/**
 * Machine-wide counter roll-up.  Snapshot via Machine::perfCounters();
 * deltas between snapshots attribute cost to a phase of an experiment.
 */
struct PerfCounters
{
    ArrayCounters l1;  //!< all cores' L1s combined
    ArrayCounters l2;  //!< all cores' L2s combined
    ArrayCounters llc;
    ArrayCounters sf;

    std::uint64_t accesses = 0; //!< demand loads + stores
    std::uint64_t hits = 0;     //!< accesses served above DRAM
    std::uint64_t misses = 0;   //!< accesses served from DRAM

    /** Accesses served per HitLevel (indexed by HitLevel). */
    std::uint64_t levelAccesses[kHitLevelCount] = {};

    /**
     * Pre-jitter dependent-access latency summed per HitLevel — the
     * "simulated cycles per structure" attribution (contention
     * multipliers included, jitter/interrupt cost excluded).
     */
    double levelCycles[kHitLevelCount] = {};

    /** E/M lines downgraded to Shared by another core's load. */
    std::uint64_t cohDowngrades = 0;

    /** Virtual clock consumed since machine construction. */
    std::uint64_t simCycles = 0;
};

} // namespace llcf

#endif // LLCF_CACHE_PERF_COUNTERS_HH
