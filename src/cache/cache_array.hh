/**
 * @file
 * Storage array for one cache structure: lines, per-set replacement
 * state, fill/evict/invalidate operations.
 *
 * The array is geometry-agnostic about indexing: callers (the Machine)
 * compute a flat set id (slice * sets_per_slice + set_index) and the
 * array manages ways within that set.  Lines carry a coherence state so
 * the snoop filter / LLC interplay of Section 2.3 of the paper can be
 * modelled: Exclusive/Modified lines live in private caches and are
 * tracked by the SF; Shared lines are tracked by (and resident in)
 * the LLC.
 *
 * Hot-path layout (structure-of-arrays): per-set state is split into
 * two planes instead of one interleaved record —
 *
 *  - the *tag plane*: one contiguous row of <= W 8-byte tag words per
 *    set, padded to a multiple of kTagLane with a sentinel no
 *    line-aligned address can equal, so findWay is one branch-free
 *    vectorized equality scan (tag_scan.hh) with no validity test;
 *  - the *metadata plane*: the coherence/owner bytes, valid count and
 *    replacement state, touched only on hits, fills and invalidates.
 *
 * The split is the classic AoS→SoA fix: a probe that misses — the
 * dominant outcome in flush sweeps and eviction tests — now reads
 * nothing but densely packed tags, so every fetched host cache line is
 * all useful data, and two structures sharing a set space (LLC + SF)
 * can interleave their tag rows so one fetch covers both probes.
 * Replacement decisions dispatch through the compile-time policy
 * switch (withReplOps) rather than virtual calls, and the per-access
 * operations are defined inline here so the Machine's access loop
 * compiles into one flat function.  Every simulated event is counted
 * in an allocation-free ArrayCounters (see perf_counters.hh).
 */

#ifndef LLCF_CACHE_CACHE_ARRAY_HH
#define LLCF_CACHE_CACHE_ARRAY_HH

#include <optional>
#include <vector>

#include "cache/geometry.hh"
#include "cache/perf_counters.hh"
#include "cache/replacement.hh"
#include "cache/tag_scan.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace llcf {

/** MESI-style coherence state of a cached line. */
enum class CohState : std::uint8_t {
    Invalid = 0,
    Exclusive, //!< private to one core, tracked by the SF
    Modified,  //!< private dirty, tracked by the SF
    Shared,    //!< present in the LLC (possibly also in private caches)
};

/** One cache line's bookkeeping. */
struct CacheLine
{
    Addr lineAddr = 0;                  //!< line-aligned physical address
    CohState coh = CohState::Invalid;
    std::uint8_t owner = 0;             //!< owning core for private lines

    bool valid() const { return coh != CohState::Invalid; }
};

/** Result of filling a line into a set. */
struct FillResult
{
    unsigned way = 0;          //!< way the new line landed in
    bool evicted = false;      //!< true iff a valid line was displaced
    CacheLine victim;          //!< the displaced line, if any
};

/**
 * Value snapshot of one CacheArray's simulated state.  Rows are stored
 * densely (no host-alignment stride, no interleaving), so the same
 * snapshot logic covers self-owned arrays and arrays placed inside a
 * shared external plane — restoring writes each row back through the
 * array's own placement arithmetic.
 */
struct CacheArrayState
{
    std::vector<Addr> tags;          //!< totalSets x tagRowWords words
    std::vector<std::uint64_t> meta; //!< totalSets x meta-row words
    ArrayCounters counters;
};

/**
 * A flat array of cache sets with pluggable replacement, stored as two
 * structure-of-arrays planes (tags / metadata).  A 57,344-set LLC
 * costs ~10 MB and a lookup is one vectorized scan of one padded tag
 * row.
 */
class CacheArray
{
  public:
    /**
     * @param geom Geometry (ways x sets x slices).
     * @param repl Replacement policy kind for every set.
     */
    CacheArray(const CacheGeometry &geom, ReplKind repl);

    /**
     * Place this array's per-set rows inside caller-owned planes
     * instead of self-owned storage: set @p s's tag row lives at
     * @p tag_base + s * @p tag_stride_words + @p tag_offset_words, and
     * its metadata row at @p meta_base + s * @p meta_stride_words +
     * @p meta_offset_words (both in 8-byte words).  Lets two
     * structures that share a set space (the LLC and SF) interleave
     * their rows per plane so one host cache fetch covers both — the
     * miss path, the flush path and the SF-eviction path all probe the
     * two structures at the same flat set back to back.  Both planes
     * must hold sets * stride words and outlive the array.
     */
    CacheArray(const CacheGeometry &geom, ReplKind repl, Addr *tag_base,
               std::size_t tag_stride_words, std::size_t tag_offset_words,
               std::uint64_t *meta_base, std::size_t meta_stride_words,
               std::size_t meta_offset_words);

    /** Padded tag-row words one set occupies for @p geom. */
    static std::size_t
    tagWordsFor(const CacheGeometry &geom)
    {
        return (geom.ways + kTagLane - 1) / kTagLane * kTagLane;
    }

    /** Metadata-row words one set occupies for @p geom under @p repl. */
    static std::size_t metaWordsFor(const CacheGeometry &geom,
                                    ReplKind repl);

    // Copying would leave the copy's plane bases aliasing (and later
    // dangling into) the source's buffers; moves transfer the buffers
    // and stay safe.
    CacheArray(const CacheArray &) = delete;
    CacheArray &operator=(const CacheArray &) = delete;
    CacheArray(CacheArray &&) = default;
    CacheArray &operator=(CacheArray &&) = default;

    /** The geometry this array was built with. */
    const CacheGeometry &geometry() const { return geom_; }

    /** Replacement policy kind. */
    ReplKind replKind() const { return kind_; }

    /** Simulated event counters since construction / resetCounters. */
    const ArrayCounters &counters() const { return counters_; }

    /** Zero the event counters (cache contents are untouched). */
    void resetCounters() { counters_ = ArrayCounters{}; }

    /** Flat set id from slice and per-slice index. */
    unsigned
    flatSet(unsigned slice, unsigned index) const
    {
        return slice * geom_.sets + index;
    }

    /**
     * Read-only view of @p set's padded tag row (tagRowWords() words;
     * padding holds the sentinel).  For callers that fuse scans over
     * interleaved rows (the Machine's shared flush probe) and for
     * host-side prefetch; simulated state must be mutated through the
     * operations below only.
     */
    const Addr *tagRow(unsigned set) const { return tagsOf(set); }

    /** Words in one padded tag row (ways rounded up to kTagLane). */
    unsigned tagRowWords() const { return paddedWays_; }

    /**
     * Hint the host to pull @p set's tag row into its caches.  The
     * batched access path prefetches the next elements' rows while the
     * current element is simulated — at Skylake scale the planes live
     * in multi-megabyte tables and the dependent lookups are
     * host-memory-latency-bound, so the overlap is where the batch
     * API's throughput comes from.  No simulated effect whatsoever.
     */
    void
    prefetchSet(unsigned set) const
    {
        const Addr *tags = tagsOf(set);
        for (unsigned b = 0;; b += 8) {
            __builtin_prefetch(tags + b);
            if (b + 8 >= paddedWays_)
                break;
        }
    }

    /**
     * Hint the host to pull @p set's metadata row too — worth it on
     * fill/hit-heavy sweeps; the tag-only prefetch above suffices for
     * miss-dominated probes.  No simulated effect.
     */
    void
    prefetchSetMeta(unsigned set) const
    {
        const std::uint8_t *meta = metaOf(set);
        for (std::size_t b = 0;; b += 64) {
            __builtin_prefetch(meta + b);
            if (b + 64 >= metaWords_ * 8)
                break;
        }
    }

    /**
     * Find the way holding @p line_addr in @p set.
     * @return way index, or std::nullopt on miss.
     */
    std::optional<unsigned>
    findWay(unsigned set, Addr line_addr) const
    {
        ++counters_.tagScans;
        // Invalid ways and row padding hold kInvalidTag, which no
        // line-aligned address equals, so no validity check is needed
        // and a match is always a real way.  Rows of one vector group
        // (small hit-heavy L1s) scan scalar: the splat/mask overhead
        // only amortises over multiple groups.  Both kernels return
        // identical slots, so the choice is invisible to simulation.
        const int slot =
            paddedWays_ <= kTagLane
                ? tagScanFindScalar(tagsOf(set), paddedWays_, line_addr)
                : tagScanFind(tagsOf(set), paddedWays_, line_addr);
        if (slot < 0)
            return std::nullopt;
        return static_cast<unsigned>(slot);
    }

    /** Read a line's bookkeeping. @pre way < ways */
    CacheLine
    line(unsigned set, unsigned way) const
    {
        const std::uint8_t *meta = metaOf(set);
        const CohState coh = static_cast<CohState>(meta[way]);
        return CacheLine{coh == CohState::Invalid ? 0 : tagsOf(set)[way],
                         coh, meta[geom_.ways + way]};
    }

    /** Promote @p way on a hit (replacement update only). */
    void
    onHit(unsigned set, unsigned way)
    {
        ++counters_.hits;
        withReplOps(kind_, [&](auto ops) {
            ops.onHit(replStateIn(metaOf(set)), geom_.ways, way);
        });
    }

    /**
     * Insert @p new_line into @p set, filling an invalid way if one
     * exists, otherwise evicting the policy's victim.
     */
    FillResult
    fill(unsigned set, const CacheLine &new_line, Rng &rng)
    {
        std::uint8_t *meta = metaOf(set);
        ++counters_.fills;
        return withReplOps(kind_, [&](auto ops) {
            std::uint8_t *st = replStateIn(meta);
            FillResult res;
            if (meta[validOffset_] < geom_.ways) {
                // Fill an invalid way.
                for (unsigned w = 0; w < geom_.ways; ++w) {
                    if (static_cast<CohState>(meta[w]) ==
                        CohState::Invalid) {
                        writeLine(set, w, new_line);
                        ++meta[validOffset_];
                        res.way = w;
                        ops.onFill(st, geom_.ways, w);
                        return res;
                    }
                }
            }

            // All ways valid: evict the policy victim (fused
            // victim-choice + fill-update, one state pass).
            const unsigned vic = ops.victimAndFill(st, geom_.ways, rng);
            res.way = vic;
            res.evicted = true;
            res.victim = line(set, vic);
            ++counters_.evictions;
            writeLine(set, vic, new_line);
            return res;
        });
    }

    /**
     * fill() restricted to the set bits of @p allowed — the CAT-style
     * partitioned fill: the new line lands in an invalid allowed way
     * if one exists, otherwise in the policy's masked victim, so lines
     * outside the mask are never displaced.  The set-wide valid count
     * can sit below ways while every *allowed* way is full, so the
     * invalid-way scan is mask-restricted rather than count-gated.
     * @pre allowed selects at least one way below ways (checked).
     */
    FillResult
    fillMasked(unsigned set, const CacheLine &new_line, Rng &rng,
               std::uint64_t allowed)
    {
        std::uint8_t *meta = metaOf(set);
        ++counters_.fills;
        return withReplOps(kind_, [&](auto ops) {
            std::uint8_t *st = replStateIn(meta);
            FillResult res;
            for (unsigned w = 0; w < geom_.ways; ++w) {
                if (!(allowed >> w & 1))
                    continue;
                if (static_cast<CohState>(meta[w]) == CohState::Invalid) {
                    writeLine(set, w, new_line);
                    ++meta[validOffset_];
                    res.way = w;
                    ops.onFill(st, geom_.ways, w);
                    return res;
                }
            }

            const unsigned vic =
                ops.victimMasked(st, geom_.ways, allowed, rng);
            if (vic >= geom_.ways || !(allowed >> vic & 1))
                panic("fillMasked: victim %u outside allowed mask", vic);
            ops.onFill(st, geom_.ways, vic);
            res.way = vic;
            res.evicted = true;
            res.victim = line(set, vic);
            ++counters_.evictions;
            writeLine(set, vic, new_line);
            return res;
        });
    }

    /** Invalidate a specific way. */
    void
    invalidateWay(unsigned set, unsigned way)
    {
        std::uint8_t *meta = metaOf(set);
        if (static_cast<CohState>(meta[way]) != CohState::Invalid) {
            ++counters_.invalidations;
            --meta[validOffset_];
        }
        tagsOf(set)[way] = kInvalidTag;
        meta[way] = static_cast<std::uint8_t>(CohState::Invalid);
        meta[geom_.ways + way] = 0;
    }

    /**
     * Invalidate @p line_addr if present.
     * @return the invalidated line, or std::nullopt if absent.
     */
    std::optional<CacheLine>
    invalidateLine(unsigned set, Addr line_addr)
    {
        auto way = findWay(set, line_addr);
        if (!way)
            return std::nullopt;
        CacheLine victim = line(set, *way);
        invalidateWay(set, *way);
        return victim;
    }

    /** Update a resident line's coherence state / owner in place. */
    void setLineState(unsigned set, unsigned way, CohState coh,
                      std::uint8_t owner);

    /** Number of valid lines in a set. */
    unsigned
    validCount(unsigned set) const
    {
        return metaOf(set)[validOffset_];
    }

    /** Invalidate every line and reset replacement state. */
    void flushAll();

    /** Copy out every set's tag/meta row plus the event counters. */
    CacheArrayState saveState() const;

    /**
     * Restore a state captured by saveState() on an array of the same
     * geometry and policy.  Fatal on a shape mismatch.
     */
    void restoreState(const CacheArrayState &state);

  private:
    /**
     * Tag stored in invalid ways and in row padding.  Real tags are
     * line-aligned (low kLineBits bits clear), so an odd value can
     * never match one and findWay needs no separate validity test.
     */
    static constexpr Addr kInvalidTag = 0x1;

    // ----------------------------------------------------- SoA planes
    //
    // Tag plane: per set, tagWordsFor() 8-byte tag words (ways rounded
    // up to kTagLane; padding = kInvalidTag) so the scan kernels can
    // consume whole vector groups with no tail loop.
    //
    // Meta plane: per set, metaWordsFor() words holding
    //
    //   [ coh: ways ][ owner: ways ][ valid: 1 ]
    //   [ repl state: replBytesPerSet ]
    //
    // accessed through char pointers (always aliasing-legal).  Probes
    // that miss never touch this plane — that is the point of the
    // split: the arrays are multi-megabyte at Skylake scale, the
    // access pattern is random, and host cache misses, not
    // instructions, bound the simulation there, so a probe should
    // fetch nothing but tags.

    Addr *
    tagsOf(unsigned set)
    {
        return tagBase_ + static_cast<std::size_t>(set) * tagStride_ +
               tagOffset_;
    }

    const Addr *
    tagsOf(unsigned set) const
    {
        return tagBase_ + static_cast<std::size_t>(set) * tagStride_ +
               tagOffset_;
    }

    std::uint8_t *
    metaOf(unsigned set)
    {
        return reinterpret_cast<std::uint8_t *>(
            metaBase_ + static_cast<std::size_t>(set) * metaStride_ +
            metaOffset_);
    }

    const std::uint8_t *
    metaOf(unsigned set) const
    {
        return reinterpret_cast<const std::uint8_t *>(
            metaBase_ + static_cast<std::size_t>(set) * metaStride_ +
            metaOffset_);
    }

    /** Replacement state inside a set's metadata row. */
    std::uint8_t *
    replStateIn(std::uint8_t *meta)
    {
        return meta + validOffset_ + 1;
    }

    void
    writeLine(unsigned set, unsigned way, const CacheLine &l)
    {
        tagsOf(set)[way] = l.lineAddr;
        std::uint8_t *meta = metaOf(set);
        meta[way] = static_cast<std::uint8_t>(l.coh);
        meta[geom_.ways + way] = l.owner;
    }

    /** Reset one set's tags, metadata and replacement state. */
    void resetSet(unsigned set);

    /** Shared init tail of the two constructors. */
    void initPlanes();

    CacheGeometry geom_;
    ReplKind kind_;
    std::size_t replBytesPerSet_;
    unsigned validOffset_;  //!< valid-count byte index within meta row
    unsigned paddedWays_;   //!< tag-row words (ways padded to kTagLane)
    std::size_t metaWords_; //!< meta-row 8-byte words

    std::vector<Addr> ownTags_;          //!< self-owned tag plane
    std::vector<std::uint64_t> ownMeta_; //!< self-owned meta plane
    Addr *tagBase_ = nullptr;            //!< tag plane (own or external)
    std::size_t tagStride_ = 0;          //!< words between sets' tag rows
    std::size_t tagOffset_ = 0;          //!< this array's tag-row offset
    std::uint64_t *metaBase_ = nullptr;  //!< meta plane (own or external)
    std::size_t metaStride_ = 0;         //!< words between sets' meta rows
    std::size_t metaOffset_ = 0;         //!< this array's meta-row offset

    // findWay is logically const but counts its scans; the counters
    // are observability state, not simulated cache state.
    mutable ArrayCounters counters_;
};

} // namespace llcf

#endif // LLCF_CACHE_CACHE_ARRAY_HH
