/**
 * @file
 * Storage array for one cache structure: lines, per-set replacement
 * state, fill/evict/invalidate operations.
 *
 * The array is geometry-agnostic about indexing: callers (the Machine)
 * compute a flat set id (slice * sets_per_slice + set_index) and the
 * array manages ways within that set.  Lines carry a coherence state so
 * the snoop filter / LLC interplay of Section 2.3 of the paper can be
 * modelled: Exclusive/Modified lines live in private caches and are
 * tracked by the SF; Shared lines are tracked by (and resident in)
 * the LLC.
 *
 * Hot-path layout: each set's whole state — tag words, coherence and
 * owner bytes, valid count and replacement state — lives in one
 * contiguous record, and invalid ways carry a sentinel tag no
 * line-aligned address can equal, so findWay is a straight-line
 * equality scan over <= W adjacent 8-byte tags with no validity
 * branch and a fill touches two or three host cache lines total.
 * Replacement decisions dispatch through the compile-time policy
 * switch (withReplOps) rather than virtual calls, and the per-access
 * operations are defined inline here so the Machine's access loop
 * compiles into one flat function.  Every simulated event is counted
 * in an allocation-free ArrayCounters (see perf_counters.hh).
 */

#ifndef LLCF_CACHE_CACHE_ARRAY_HH
#define LLCF_CACHE_CACHE_ARRAY_HH

#include <optional>
#include <vector>

#include "cache/geometry.hh"
#include "cache/perf_counters.hh"
#include "cache/replacement.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace llcf {

/** MESI-style coherence state of a cached line. */
enum class CohState : std::uint8_t {
    Invalid = 0,
    Exclusive, //!< private to one core, tracked by the SF
    Modified,  //!< private dirty, tracked by the SF
    Shared,    //!< present in the LLC (possibly also in private caches)
};

/** One cache line's bookkeeping. */
struct CacheLine
{
    Addr lineAddr = 0;                  //!< line-aligned physical address
    CohState coh = CohState::Invalid;
    std::uint8_t owner = 0;             //!< owning core for private lines

    bool valid() const { return coh != CohState::Invalid; }
};

/** Result of filling a line into a set. */
struct FillResult
{
    unsigned way = 0;          //!< way the new line landed in
    bool evicted = false;      //!< true iff a valid line was displaced
    CacheLine victim;          //!< the displaced line, if any
};

/**
 * A flat array of cache sets with pluggable replacement.
 *
 * All state is stored in contiguous per-set records so a 57,344-set
 * LLC costs ~10 MB and a lookup is one indexed scan of
 * <= associativity tags.
 */
class CacheArray
{
  public:
    /**
     * @param geom Geometry (ways x sets x slices).
     * @param repl Replacement policy kind for every set.
     */
    CacheArray(const CacheGeometry &geom, ReplKind repl);

    /**
     * Place this array's per-set records inside a caller-owned buffer
     * instead of self-owned storage: set @p s's record lives at
     * @p base + s * @p stride_words + @p offset_words.  Lets two
     * structures that share a set space (the LLC and SF) interleave
     * their records so one host cache fetch covers both — the miss
     * path, the flush path and the SF-eviction path all touch the two
     * structures at the same flat set back to back.  @p base must
     * hold sets * stride_words words and outlive the array.
     */
    CacheArray(const CacheGeometry &geom, ReplKind repl, Addr *base,
               std::size_t stride_words, std::size_t offset_words);

    /** Words one set's record occupies for @p geom under @p repl. */
    static std::size_t recordWordsFor(const CacheGeometry &geom,
                                      ReplKind repl);

    // Copying would leave the copy's record base aliasing (and later
    // dangling into) the source's buffer; moves transfer the buffer
    // and stay safe.
    CacheArray(const CacheArray &) = delete;
    CacheArray &operator=(const CacheArray &) = delete;
    CacheArray(CacheArray &&) = default;
    CacheArray &operator=(CacheArray &&) = default;

    /** The geometry this array was built with. */
    const CacheGeometry &geometry() const { return geom_; }

    /** Replacement policy kind. */
    ReplKind replKind() const { return kind_; }

    /** Simulated event counters since construction / resetCounters. */
    const ArrayCounters &counters() const { return counters_; }

    /** Zero the event counters (cache contents are untouched). */
    void resetCounters() { counters_ = ArrayCounters{}; }

    /** Flat set id from slice and per-slice index. */
    unsigned
    flatSet(unsigned slice, unsigned index) const
    {
        return slice * geom_.sets + index;
    }

    /**
     * Hint the host to pull @p set's record into its caches.  The
     * batched access path prefetches the next element's sets while
     * the current element is simulated — at Skylake scale the records
     * live in multi-megabyte tables and the dependent lookups are
     * host-memory-latency-bound, so the overlap is where the batch
     * API's throughput comes from.  No simulated effect whatsoever.
     */
    void
    prefetchSet(unsigned set) const
    {
        const Addr *tags = tagsOf(set);
        __builtin_prefetch(tags);
        // Records span up to ~3 host lines (tags + metadata); touch
        // the metadata line too for wide geometries.
        if (geom_.ways > 6)
            __builtin_prefetch(tags + geom_.ways);
    }

    /**
     * Find the way holding @p line_addr in @p set.
     * @return way index, or std::nullopt on miss.
     */
    std::optional<unsigned>
    findWay(unsigned set, Addr line_addr) const
    {
        const Addr *tags = tagsOf(set);
        for (unsigned w = 0; w < geom_.ways; ++w) {
            // Invalid ways hold kInvalidTag, which no line-aligned
            // address equals, so no validity check is needed.
            if (tags[w] == line_addr)
                return w;
        }
        return std::nullopt;
    }

    /** Read a line's bookkeeping. @pre way < ways */
    CacheLine
    line(unsigned set, unsigned way) const
    {
        const std::uint8_t *meta = metaOf(set);
        const CohState coh = static_cast<CohState>(meta[way]);
        return CacheLine{coh == CohState::Invalid ? 0 : tagsOf(set)[way],
                         coh, meta[geom_.ways + way]};
    }

    /** Promote @p way on a hit (replacement update only). */
    void
    onHit(unsigned set, unsigned way)
    {
        ++counters_.hits;
        withReplOps(kind_, [&](auto ops) {
            ops.onHit(replStateIn(metaOf(set)), geom_.ways, way);
        });
    }

    /**
     * Insert @p new_line into @p set, filling an invalid way if one
     * exists, otherwise evicting the policy's victim.
     */
    FillResult
    fill(unsigned set, const CacheLine &new_line, Rng &rng)
    {
        std::uint8_t *meta = metaOf(set);
        ++counters_.fills;
        return withReplOps(kind_, [&](auto ops) {
            std::uint8_t *st = replStateIn(meta);
            FillResult res;
            if (meta[validOffset_] < geom_.ways) {
                // Fill an invalid way.
                for (unsigned w = 0; w < geom_.ways; ++w) {
                    if (static_cast<CohState>(meta[w]) ==
                        CohState::Invalid) {
                        writeLine(set, w, new_line);
                        ++meta[validOffset_];
                        res.way = w;
                        ops.onFill(st, geom_.ways, w);
                        return res;
                    }
                }
            }

            // All ways valid: evict the policy victim (fused
            // victim-choice + fill-update, one state pass).
            const unsigned vic = ops.victimAndFill(st, geom_.ways, rng);
            res.way = vic;
            res.evicted = true;
            res.victim = line(set, vic);
            ++counters_.evictions;
            writeLine(set, vic, new_line);
            return res;
        });
    }

    /** Invalidate a specific way. */
    void
    invalidateWay(unsigned set, unsigned way)
    {
        std::uint8_t *meta = metaOf(set);
        if (static_cast<CohState>(meta[way]) != CohState::Invalid) {
            ++counters_.invalidations;
            --meta[validOffset_];
        }
        tagsOf(set)[way] = kInvalidTag;
        meta[way] = static_cast<std::uint8_t>(CohState::Invalid);
        meta[geom_.ways + way] = 0;
    }

    /**
     * Invalidate @p line_addr if present.
     * @return the invalidated line, or std::nullopt if absent.
     */
    std::optional<CacheLine>
    invalidateLine(unsigned set, Addr line_addr)
    {
        auto way = findWay(set, line_addr);
        if (!way)
            return std::nullopt;
        CacheLine victim = line(set, *way);
        invalidateWay(set, *way);
        return victim;
    }

    /** Update a resident line's coherence state / owner in place. */
    void setLineState(unsigned set, unsigned way, CohState coh,
                      std::uint8_t owner);

    /** Number of valid lines in a set. */
    unsigned
    validCount(unsigned set) const
    {
        return metaOf(set)[validOffset_];
    }

    /** Invalidate every line and reset replacement state. */
    void flushAll();

  private:
    /**
     * Tag stored in invalid ways.  Real tags are line-aligned (low
     * kLineBits bits clear), so an odd value can never match one and
     * findWay needs no separate validity test.
     */
    static constexpr Addr kInvalidTag = 0x1;

    // ---------------------------------------------- per-set records
    //
    // All of a set's state lives in one contiguous record so a fill
    // touches two or three host cache lines instead of five scattered
    // vectors (the arrays are multi-megabyte at Skylake scale and the
    // access pattern is random — host cache misses, not instructions,
    // bound the simulation there):
    //
    //   [ tags: ways x 8B ][ coh: ways ][ owner: ways ][ valid: 1 ]
    //   [ repl state: replBytesPerSet ]
    //
    // Records are sized in 8-byte words so tags stay naturally
    // aligned; the byte-granular metadata lives behind them and is
    // accessed through char pointers (always aliasing-legal).

    Addr *
    tagsOf(unsigned set)
    {
        return base_ + static_cast<std::size_t>(set) * strideWords_ +
               offsetWords_;
    }

    const Addr *
    tagsOf(unsigned set) const
    {
        return base_ + static_cast<std::size_t>(set) * strideWords_ +
               offsetWords_;
    }

    std::uint8_t *
    metaOf(unsigned set)
    {
        return reinterpret_cast<std::uint8_t *>(tagsOf(set) +
                                                geom_.ways);
    }

    const std::uint8_t *
    metaOf(unsigned set) const
    {
        return reinterpret_cast<const std::uint8_t *>(tagsOf(set) +
                                                      geom_.ways);
    }

    /** Replacement state inside a set's metadata block. */
    std::uint8_t *
    replStateIn(std::uint8_t *meta)
    {
        return meta + validOffset_ + 1;
    }

    void
    writeLine(unsigned set, unsigned way, const CacheLine &l)
    {
        tagsOf(set)[way] = l.lineAddr;
        std::uint8_t *meta = metaOf(set);
        meta[way] = static_cast<std::uint8_t>(l.coh);
        meta[geom_.ways + way] = l.owner;
    }

    /** Reset one set's lines, metadata and replacement state. */
    void resetSet(unsigned set);

    /** Shared init tail of the two constructors. */
    void initRecords();

    CacheGeometry geom_;
    ReplKind kind_;
    std::size_t replBytesPerSet_;
    unsigned validOffset_;     //!< valid-count byte index within meta
    std::size_t recordWords_;  //!< 8-byte words per set record
    std::vector<Addr> own_;    //!< self-owned storage (may be empty)
    Addr *base_ = nullptr;     //!< record base (own_ or external)
    std::size_t strideWords_ = 0; //!< words between consecutive sets
    std::size_t offsetWords_ = 0; //!< this array's offset in a block
    ArrayCounters counters_;
};

} // namespace llcf

#endif // LLCF_CACHE_CACHE_ARRAY_HH
