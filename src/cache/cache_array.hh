/**
 * @file
 * Storage array for one cache structure: lines, per-set replacement
 * state, fill/evict/invalidate operations.
 *
 * The array is geometry-agnostic about indexing: callers (the Machine)
 * compute a flat set id (slice * sets_per_slice + set_index) and the
 * array manages ways within that set.  Lines carry a coherence state so
 * the snoop filter / LLC interplay of Section 2.3 of the paper can be
 * modelled: Exclusive/Modified lines live in private caches and are
 * tracked by the SF; Shared lines are tracked by (and resident in)
 * the LLC.
 */

#ifndef LLCF_CACHE_CACHE_ARRAY_HH
#define LLCF_CACHE_CACHE_ARRAY_HH

#include <optional>
#include <vector>

#include "cache/geometry.hh"
#include "cache/replacement.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace llcf {

/** MESI-style coherence state of a cached line. */
enum class CohState : std::uint8_t {
    Invalid = 0,
    Exclusive, //!< private to one core, tracked by the SF
    Modified,  //!< private dirty, tracked by the SF
    Shared,    //!< present in the LLC (possibly also in private caches)
};

/** One cache line's bookkeeping. */
struct CacheLine
{
    Addr lineAddr = 0;                  //!< line-aligned physical address
    CohState coh = CohState::Invalid;
    std::uint8_t owner = 0;             //!< owning core for private lines

    bool valid() const { return coh != CohState::Invalid; }
};

/** Result of filling a line into a set. */
struct FillResult
{
    unsigned way = 0;          //!< way the new line landed in
    bool evicted = false;      //!< true iff a valid line was displaced
    CacheLine victim;          //!< the displaced line, if any
};

/**
 * A flat array of cache sets with pluggable replacement.
 *
 * All state is stored in contiguous vectors so a 57,344-set LLC costs
 * ~10 MB and a lookup is one indexed scan of <= associativity entries.
 */
class CacheArray
{
  public:
    /**
     * @param geom Geometry (ways x sets x slices).
     * @param repl Replacement policy kind for every set.
     */
    CacheArray(const CacheGeometry &geom, ReplKind repl);

    /** The geometry this array was built with. */
    const CacheGeometry &geometry() const { return geom_; }

    /** Replacement policy kind. */
    ReplKind replKind() const { return policy_->kind(); }

    /** Flat set id from slice and per-slice index. */
    unsigned
    flatSet(unsigned slice, unsigned index) const
    {
        return slice * geom_.sets + index;
    }

    /**
     * Find the way holding @p line_addr in @p set.
     * @return way index, or std::nullopt on miss.
     */
    std::optional<unsigned> findWay(unsigned set, Addr line_addr) const;

    /** Read a line. @pre way < ways */
    const CacheLine &line(unsigned set, unsigned way) const;

    /** Promote @p way on a hit (replacement update only). */
    void onHit(unsigned set, unsigned way);

    /**
     * Insert @p new_line into @p set, filling an invalid way if one
     * exists, otherwise evicting the policy's victim.
     */
    FillResult fill(unsigned set, const CacheLine &new_line, Rng &rng);

    /** Invalidate a specific way. */
    void invalidateWay(unsigned set, unsigned way);

    /**
     * Invalidate @p line_addr if present.
     * @return the invalidated line, or std::nullopt if absent.
     */
    std::optional<CacheLine> invalidateLine(unsigned set, Addr line_addr);

    /** Update a resident line's coherence state / owner in place. */
    void setLineState(unsigned set, unsigned way, CohState coh,
                      std::uint8_t owner);

    /** Number of valid lines in a set. */
    unsigned validCount(unsigned set) const;

    /** Invalidate every line and reset replacement state. */
    void flushAll();

  private:
    std::uint8_t *replState(unsigned set);
    const std::uint8_t *replState(unsigned set) const;

    CacheGeometry geom_;
    std::unique_ptr<ReplPolicy> policy_;
    std::size_t replBytesPerSet_;
    std::vector<CacheLine> lines_;       //!< [set * ways + way]
    std::vector<std::uint8_t> replData_; //!< [set * replBytesPerSet]
};

} // namespace llcf

#endif // LLCF_CACHE_CACHE_ARRAY_HH
