/**
 * @file
 * Static geometry of one cache structure (L1, L2, LLC slice, SF slice).
 *
 * Set-index extraction follows the paper's Figure 1: the L2 indexes with
 * PA bits 15..6, the LLC/SF with PA bits 16..6, and every PA bit above
 * the line offset feeds the slice hash.
 */

#ifndef LLCF_CACHE_GEOMETRY_HH
#define LLCF_CACHE_GEOMETRY_HH

#include "common/log.hh"
#include "common/types.hh"

namespace llcf {

/**
 * Geometry of a set-associative cache structure.
 *
 * @c sets is the per-slice set count; @c slices is 1 for private caches.
 */
struct CacheGeometry
{
    unsigned ways = 0;   //!< associativity W
    unsigned sets = 0;   //!< sets per slice (power of two)
    unsigned slices = 1; //!< number of slices (1 for private caches)

    /** Total number of sets across all slices. */
    unsigned totalSets() const { return sets * slices; }

    /** Total line capacity. */
    std::size_t lineCapacity() const
    {
        return static_cast<std::size_t>(ways) * totalSets();
    }

    /** Number of set-index bits (log2 of per-slice sets). */
    unsigned indexBits() const { return log2i(sets); }

    /** Per-slice set index of a physical line address. */
    unsigned
    setIndex(Addr pa) const
    {
        return static_cast<unsigned>((pa >> kLineBits) & (sets - 1));
    }

    /**
     * Number of set-index bits the attacker cannot control through the
     * page offset (bits above bit 11).  E.g. Skylake-SP L2: 4; LLC: 5.
     */
    unsigned
    uncontrolledIndexBits() const
    {
        unsigned total = indexBits();
        unsigned controlled = kPageBits - kLineBits; // 6 offset-derived
        return total > controlled ? total - controlled : 0;
    }

    /**
     * Cache uncertainty U (Section 2.2.1): possible sets a fixed page
     * offset can map to.  For sliced caches this multiplies by the
     * slice count because the hash is attacker-opaque.
     */
    unsigned
    uncertainty() const
    {
        return (1u << uncontrolledIndexBits()) * slices;
    }

    /** Validate invariants; call after construction. */
    void
    check() const
    {
        if (ways == 0 || sets == 0 || slices == 0)
            fatal("cache geometry with zero dimension");
        if (!isPowerOf2(sets))
            fatal("per-slice set count must be a power of two");
    }
};

} // namespace llcf

#endif // LLCF_CACHE_GEOMETRY_HH
