#include "cache_array.hh"

#include "common/log.hh"

namespace llcf {

std::size_t
CacheArray::recordWordsFor(const CacheGeometry &geom, ReplKind repl)
{
    const std::size_t repl_bytes = withReplOps(repl, [&](auto ops) {
        return ops.stateBytes(geom.ways);
    });
    const std::size_t meta_bytes = 2 * geom.ways + 1 + repl_bytes;
    return geom.ways + (meta_bytes + 7) / 8;
}

CacheArray::CacheArray(const CacheGeometry &geom, ReplKind repl)
    : geom_(geom), kind_(repl)
{
    geom_.check();
    recordWords_ = recordWordsFor(geom_, kind_);
    own_.assign(static_cast<std::size_t>(geom_.totalSets()) *
                    recordWords_,
                0);
    base_ = own_.data();
    strideWords_ = recordWords_;
    offsetWords_ = 0;
    initRecords();
}

CacheArray::CacheArray(const CacheGeometry &geom, ReplKind repl,
                       Addr *base, std::size_t stride_words,
                       std::size_t offset_words)
    : geom_(geom), kind_(repl)
{
    geom_.check();
    recordWords_ = recordWordsFor(geom_, kind_);
    if (offset_words + recordWords_ > stride_words)
        panic("cache array record does not fit its placement");
    base_ = base;
    strideWords_ = stride_words;
    offsetWords_ = offset_words;
    initRecords();
}

void
CacheArray::initRecords()
{
    replBytesPerSet_ = withReplOps(kind_, [&](auto ops) {
        return ops.stateBytes(geom_.ways);
    });
    validOffset_ = 2 * geom_.ways;
    for (unsigned s = 0; s < geom_.totalSets(); ++s)
        resetSet(s);
}

void
CacheArray::resetSet(unsigned set)
{
    Addr *tags = tagsOf(set);
    std::uint8_t *meta = metaOf(set);
    for (unsigned w = 0; w < geom_.ways; ++w) {
        tags[w] = kInvalidTag;
        meta[w] = static_cast<std::uint8_t>(CohState::Invalid);
        meta[geom_.ways + w] = 0;
    }
    meta[validOffset_] = 0;
    withReplOps(kind_, [&](auto ops) {
        ops.reset(replStateIn(meta), geom_.ways);
    });
}

void
CacheArray::setLineState(unsigned set, unsigned way, CohState coh,
                         std::uint8_t owner)
{
    std::uint8_t *meta = metaOf(set);
    if (static_cast<CohState>(meta[way]) == CohState::Invalid)
        panic("setLineState on invalid way %u", way);
    meta[way] = static_cast<std::uint8_t>(coh);
    meta[geom_.ways + way] = owner;
}

void
CacheArray::flushAll()
{
    for (unsigned s = 0; s < geom_.totalSets(); ++s)
        resetSet(s);
}

} // namespace llcf
