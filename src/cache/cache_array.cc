#include "cache_array.hh"

#include <cstring>

#include "common/log.hh"

namespace llcf {

std::size_t
CacheArray::metaWordsFor(const CacheGeometry &geom, ReplKind repl)
{
    const std::size_t repl_bytes = withReplOps(repl, [&](auto ops) {
        return ops.stateBytes(geom.ways);
    });
    const std::size_t meta_bytes = 2 * geom.ways + 1 + repl_bytes;
    return (meta_bytes + 7) / 8;
}

CacheArray::CacheArray(const CacheGeometry &geom, ReplKind repl)
    : geom_(geom), kind_(repl)
{
    geom_.check();
    paddedWays_ = static_cast<unsigned>(tagWordsFor(geom_));
    metaWords_ = metaWordsFor(geom_, kind_);
    // Tag rows start on host cache lines (aligned base, whole-line
    // stride) so a row never straddles an extra line; the stride gap
    // beyond paddedWays_ is never read.
    const std::size_t tag_stride = hostLineAlignWords(paddedWays_);
    ownTags_.assign(static_cast<std::size_t>(geom_.totalSets()) *
                            tag_stride +
                        kLineBytes / sizeof(Addr),
                    0);
    ownMeta_.assign(static_cast<std::size_t>(geom_.totalSets()) *
                        metaWords_,
                    0);
    tagBase_ = hostLineAlignPtr(ownTags_.data());
    tagStride_ = tag_stride;
    tagOffset_ = 0;
    metaBase_ = ownMeta_.data();
    metaStride_ = metaWords_;
    metaOffset_ = 0;
    initPlanes();
}

CacheArray::CacheArray(const CacheGeometry &geom, ReplKind repl,
                       Addr *tag_base, std::size_t tag_stride_words,
                       std::size_t tag_offset_words,
                       std::uint64_t *meta_base,
                       std::size_t meta_stride_words,
                       std::size_t meta_offset_words)
    : geom_(geom), kind_(repl)
{
    geom_.check();
    paddedWays_ = static_cast<unsigned>(tagWordsFor(geom_));
    metaWords_ = metaWordsFor(geom_, kind_);
    if (tag_offset_words + paddedWays_ > tag_stride_words)
        panic("cache array tag row does not fit its placement");
    if (meta_offset_words + metaWords_ > meta_stride_words)
        panic("cache array meta row does not fit its placement");
    tagBase_ = tag_base;
    tagStride_ = tag_stride_words;
    tagOffset_ = tag_offset_words;
    metaBase_ = meta_base;
    metaStride_ = meta_stride_words;
    metaOffset_ = meta_offset_words;
    initPlanes();
}

void
CacheArray::initPlanes()
{
    replBytesPerSet_ = withReplOps(kind_, [&](auto ops) {
        return ops.stateBytes(geom_.ways);
    });
    validOffset_ = 2 * geom_.ways;
    for (unsigned s = 0; s < geom_.totalSets(); ++s)
        resetSet(s);
}

void
CacheArray::resetSet(unsigned set)
{
    Addr *tags = tagsOf(set);
    std::uint8_t *meta = metaOf(set);
    // Padding slots beyond ways_ keep the sentinel forever so the
    // vector scan can consume whole groups without a validity mask.
    for (unsigned w = 0; w < paddedWays_; ++w)
        tags[w] = kInvalidTag;
    for (unsigned w = 0; w < geom_.ways; ++w) {
        meta[w] = static_cast<std::uint8_t>(CohState::Invalid);
        meta[geom_.ways + w] = 0;
    }
    meta[validOffset_] = 0;
    withReplOps(kind_, [&](auto ops) {
        ops.reset(replStateIn(meta), geom_.ways);
    });
}

void
CacheArray::setLineState(unsigned set, unsigned way, CohState coh,
                         std::uint8_t owner)
{
    std::uint8_t *meta = metaOf(set);
    if (static_cast<CohState>(meta[way]) == CohState::Invalid)
        panic("setLineState on invalid way %u", way);
    meta[way] = static_cast<std::uint8_t>(coh);
    meta[geom_.ways + way] = owner;
}

void
CacheArray::flushAll()
{
    for (unsigned s = 0; s < geom_.totalSets(); ++s)
        resetSet(s);
}

CacheArrayState
CacheArray::saveState() const
{
    CacheArrayState st;
    const std::size_t sets = geom_.totalSets();
    st.tags.resize(sets * paddedWays_);
    st.meta.resize(sets * metaWords_);
    for (std::size_t s = 0; s < sets; ++s) {
        std::memcpy(st.tags.data() + s * paddedWays_,
                    tagsOf(static_cast<unsigned>(s)),
                    paddedWays_ * sizeof(Addr));
        std::memcpy(st.meta.data() + s * metaWords_,
                    metaOf(static_cast<unsigned>(s)),
                    metaWords_ * sizeof(std::uint64_t));
    }
    st.counters = counters_;
    return st;
}

void
CacheArray::restoreState(const CacheArrayState &state)
{
    const std::size_t sets = geom_.totalSets();
    if (state.tags.size() != sets * paddedWays_ ||
        state.meta.size() != sets * metaWords_)
        panic("cache array state does not match this geometry");
    for (std::size_t s = 0; s < sets; ++s) {
        std::memcpy(tagsOf(static_cast<unsigned>(s)),
                    state.tags.data() + s * paddedWays_,
                    paddedWays_ * sizeof(Addr));
        std::memcpy(metaOf(static_cast<unsigned>(s)),
                    state.meta.data() + s * metaWords_,
                    metaWords_ * sizeof(std::uint64_t));
    }
    counters_ = state.counters;
}

} // namespace llcf
