#include "cache_array.hh"

#include "common/log.hh"

namespace llcf {

CacheArray::CacheArray(const CacheGeometry &geom, ReplKind repl)
    : geom_(geom), policy_(makeReplPolicy(repl))
{
    geom_.check();
    replBytesPerSet_ = policy_->stateBytes(geom_.ways);
    lines_.resize(static_cast<std::size_t>(geom_.totalSets()) * geom_.ways);
    replData_.resize(static_cast<std::size_t>(geom_.totalSets()) *
                     replBytesPerSet_);
    for (unsigned s = 0; s < geom_.totalSets(); ++s)
        policy_->reset(replState(s), geom_.ways);
}

std::uint8_t *
CacheArray::replState(unsigned set)
{
    return replData_.data() + static_cast<std::size_t>(set) *
           replBytesPerSet_;
}

const std::uint8_t *
CacheArray::replState(unsigned set) const
{
    return replData_.data() + static_cast<std::size_t>(set) *
           replBytesPerSet_;
}

std::optional<unsigned>
CacheArray::findWay(unsigned set, Addr line_addr) const
{
    const CacheLine *base = &lines_[static_cast<std::size_t>(set) *
                                    geom_.ways];
    for (unsigned w = 0; w < geom_.ways; ++w) {
        if (base[w].valid() && base[w].lineAddr == line_addr)
            return w;
    }
    return std::nullopt;
}

const CacheLine &
CacheArray::line(unsigned set, unsigned way) const
{
    return lines_[static_cast<std::size_t>(set) * geom_.ways + way];
}

void
CacheArray::onHit(unsigned set, unsigned way)
{
    policy_->onHit(replState(set), geom_.ways, way);
}

FillResult
CacheArray::fill(unsigned set, const CacheLine &new_line, Rng &rng)
{
    CacheLine *base = &lines_[static_cast<std::size_t>(set) * geom_.ways];
    FillResult res;

    // Fill an invalid way if one exists.
    for (unsigned w = 0; w < geom_.ways; ++w) {
        if (!base[w].valid()) {
            base[w] = new_line;
            res.way = w;
            policy_->onFill(replState(set), geom_.ways, w);
            return res;
        }
    }

    // All ways valid: evict the policy victim.
    const unsigned vic = policy_->victim(replState(set), geom_.ways, rng);
    res.way = vic;
    res.evicted = true;
    res.victim = base[vic];
    base[vic] = new_line;
    policy_->onFill(replState(set), geom_.ways, vic);
    return res;
}

void
CacheArray::invalidateWay(unsigned set, unsigned way)
{
    lines_[static_cast<std::size_t>(set) * geom_.ways + way] = CacheLine{};
}

std::optional<CacheLine>
CacheArray::invalidateLine(unsigned set, Addr line_addr)
{
    auto way = findWay(set, line_addr);
    if (!way)
        return std::nullopt;
    CacheLine victim = line(set, *way);
    invalidateWay(set, *way);
    return victim;
}

void
CacheArray::setLineState(unsigned set, unsigned way, CohState coh,
                         std::uint8_t owner)
{
    CacheLine &l = lines_[static_cast<std::size_t>(set) * geom_.ways + way];
    if (!l.valid())
        panic("setLineState on invalid way %u", way);
    l.coh = coh;
    l.owner = owner;
}

unsigned
CacheArray::validCount(unsigned set) const
{
    const CacheLine *base = &lines_[static_cast<std::size_t>(set) *
                                    geom_.ways];
    unsigned n = 0;
    for (unsigned w = 0; w < geom_.ways; ++w)
        n += base[w].valid() ? 1 : 0;
    return n;
}

void
CacheArray::flushAll()
{
    for (auto &l : lines_)
        l = CacheLine{};
    for (unsigned s = 0; s < geom_.totalSets(); ++s)
        policy_->reset(replState(s), geom_.ways);
}

} // namespace llcf
