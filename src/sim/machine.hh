/**
 * @file
 * The simulated multi-core server: private L1/L2 per core, a sliced
 * non-inclusive LLC plus snoop filter (SF) shared by all cores, a
 * virtual clock, a contention/latency model, and lazily-replayed
 * background activity (tenant noise and victim access streams).
 *
 * Coherence model (paper Section 2.3, simplified but behaviour-
 * preserving):
 *  - A line in Exclusive/Modified state lives in exactly one core's
 *    L1/L2 and is tracked by an SF entry.
 *  - A line in Shared state is resident in the LLC (and possibly in
 *    private caches); it has no SF entry.
 *  - Evicting an SF entry back-invalidates the owner's private copies;
 *    the line is inserted into the LLC with the reuse-predictor
 *    probability, otherwise written back to memory.
 *  - Evicting an LLC line back-invalidates all private Shared copies.
 *  - A load that hits a private line of another core downgrades it to
 *    Shared: the line moves into the LLC and its SF entry is freed.
 *  - A store (RFO) obtains Modified ownership: LLC and remote copies
 *    are invalidated and an SF entry is allocated.
 *  - L1 is kept inclusive in L2; an L2 eviction of a private line
 *    frees its SF entry (stale-entry corner cases are simplified away;
 *    see DESIGN.md).
 *
 * Background activity is applied lazily per shared set: each LLC/SF
 * set keeps a last-sync timestamp, and the first access after time
 * advances replays the Poisson tenant noise and any registered victim
 * stream events that fell into the gap.  This makes a 57,344-set noisy
 * machine cheap while preserving per-set event ordering.
 */

#ifndef LLCF_SIM_MACHINE_HH
#define LLCF_SIM_MACHINE_HH

#include <memory>
#include <span>
#include <vector>

#include "cache/cache_array.hh"
#include "cache/slice_hash.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "defense/watchdog.hh"
#include "mem/address_space.hh"
#include "noise/profile.hh"
#include "sim/configs.hh"

namespace llcf {

/** Operation applied to every element of a batched access. */
enum class BatchOp : std::uint8_t {
    Load,      //!< plain demand load
    Store,     //!< store with RFO semantics
    TimedLoad, //!< fenced rdtscp-timed load
    ChaseLoad, //!< dependent pointer-chase load
    ProbeLoad, //!< non-promoting timed probe
    Flush,     //!< clflush from every cache level
};

/**
 * Shape of one batched access sweep.  A sequential batch is exactly
 * equivalent to issuing the scalar operation per element (same RNG
 * draws, same clock advance — the equivalence the harness tests
 * assert); an overlapped batch has MLP burst semantics and is only
 * meaningful for Load/Store/Flush.
 */
struct BatchSpec
{
    BatchOp op = BatchOp::Load;
    bool overlapped = false; //!< MLP burst instead of serialised ops
    int helper = -1;         //!< helper core repeating each load, or -1
};

/** Aggregate event counters, for tests and diagnostics. */
struct MachineStats
{
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t sfTransfers = 0;
    std::uint64_t llcHits = 0;
    std::uint64_t dramFills = 0;
    std::uint64_t noiseAccesses = 0;
    std::uint64_t streamAccesses = 0;
    std::uint64_t interrupts = 0;
};

/**
 * One registered background access stream (absolute-time events
 * replayed lazily per shared set).  Namespace-scope so a Machine
 * snapshot can carry the pending streams by value.
 */
struct MachineStream
{
    std::uint64_t id = 0;
    unsigned core = 0;
    Addr line = 0;
    bool isStore = false;
    bool pinned = false; //!< survives Machine::clearStreams()
    std::vector<Cycles> times;
    std::size_t cursor = 0;
};

/**
 * A simulated host.  All memory operations take physical line
 * addresses; callers translate via AddressSpace (attack code treats
 * the translated values as opaque pointers and never inspects PA
 * bits — see evset/ for the enforced discipline).
 */
class Machine
{
  public:
    /** Identifies a registered background access stream. */
    using StreamId = std::uint64_t;

    Machine(const MachineConfig &cfg, const NoiseProfile &noise,
            std::uint64_t seed);

    // ------------------------------------------------------ plumbing

    /** The configuration this machine was built from. */
    const MachineConfig &config() const { return cfg_; }

    /** The environment noise profile. */
    const NoiseProfile &noiseProfile() const { return noise_; }

    /** Event counters. */
    const MachineStats &stats() const { return stats_; }

    /**
     * Snapshot of the allocation-free hierarchy counters: per-structure
     * hits/fills/evictions (L1/L2 summed over cores), access and
     * service-level totals, coherence downgrades and simulated cycles.
     * Purely simulated events — deterministic for a fixed seed.
     */
    PerfCounters perfCounters() const;

    /** Backing physical frame allocator. */
    PageAllocator &allocator() { return allocator_; }

    /** Create a new process address space. */
    std::unique_ptr<AddressSpace> newAddressSpace();

    // --------------------------------------------------------- clock

    /** Current virtual time in cycles. */
    Cycles now() const { return clock_; }

    /** Spin the clock forward without memory activity. */
    void idle(Cycles dt) { clock_ += dt; }

    // ------------------------------------------------ memory ops
    // All operations advance the clock by the returned duration.

    /** One load; returns its latency. */
    Cycles load(unsigned core, Addr pa);

    /** One store (RFO semantics); returns its latency. */
    Cycles store(unsigned core, Addr pa);

    /**
     * One timed load (fenced rdtscp pair).  Returns the measured
     * latency including measurement overhead — the value an attacker
     * compares against LatencyThresholds.
     */
    Cycles timedLoad(unsigned core, Addr pa);

    /**
     * Dependent pointer-chase load (serialised, no MLP), as used by
     * sequential TestEviction implementations.  The chase overhead
     * includes the TLB-walk cost of page-granular random chains.
     */
    Cycles chaseLoad(unsigned core, Addr pa);

    /**
     * Timed probe that does not disturb LLC/SF replacement state on a
     * hit — the Prime+Scope "scope" primitive, whose whole point is
     * overcoming the observer effect of ordinary probes.
     */
    Cycles probeLoad(unsigned core, Addr pa);

    /**
     * Load on @p core while a helper core concurrently repeats the
     * access, leaving the line Shared and LLC-resident (the helper-
     * thread technique of Section 4.2).  Only the main core's time is
     * charged; the helper runs on its own core in parallel.
     */
    Cycles loadShared(unsigned core, unsigned helper, Addr pa);

    /**
     * Batched accesses: apply @p spec to every element of @p pas and
     * return the total duration.  This is the preferred hot-path entry
     * point — the TestEviction traversals, probe sweeps and monitors
     * all run on it — and the scalar operations above are equivalent
     * to a one-element batch.  Overlapped batches are chunked
     * internally so background activity interleaves realistically.
     */
    Cycles accessBatch(unsigned core, std::span<const Addr> pas,
                       const BatchSpec &spec);

    /**
     * Overlapped (MLP) loads of @p pas; returns the burst duration.
     */
    Cycles
    parallelLoads(unsigned core, std::span<const Addr> pas)
    {
        return accessBatch(core, pas, {BatchOp::Load, true, -1});
    }

    /** Overlapped stores (RFO) of @p pas. */
    Cycles
    parallelStores(unsigned core, std::span<const Addr> pas)
    {
        return accessBatch(core, pas, {BatchOp::Store, true, -1});
    }

    /** Overlapped helper-shared loads of @p pas. */
    Cycles
    parallelLoadsShared(unsigned core, unsigned helper,
                        std::span<const Addr> pas)
    {
        return accessBatch(core, pas,
                           {BatchOp::Load, true,
                            static_cast<int>(helper)});
    }

    /** Flush one line from every cache level. */
    Cycles clflush(unsigned core, Addr pa);

    /**
     * Flush many lines back-to-back; clflush is weakly ordered, so
     * the cost is throughput-bound rather than per-line latency.
     */
    Cycles
    clflushMany(unsigned core, std::span<const Addr> pas)
    {
        return accessBatch(core, pas, {BatchOp::Flush, true, -1});
    }

    // ------------------------------------------- background streams

    /**
     * Register a timed access stream (e.g. the victim's secret-
     * dependent code fetches).  @p times are absolute cycle stamps,
     * sorted ascending; each is applied as one access by @p core to
     * @p pa when the containing set is next synchronised.  A
     * @p pinned stream (co-tenant offered load) survives
     * clearStreams().
     */
    StreamId addStream(unsigned core, Addr pa, std::vector<Cycles> times,
                       bool is_store = false, bool pinned = false);

    /** Remove a stream; pending events are dropped. */
    void removeStream(StreamId id);

    /** Remove all non-pinned streams. */
    void clearStreams();

    // ------------------------------------------------------ defenses
    // Configured via MachineConfig::defense; everything below is
    // inert (and free on the hot path) when no defense is enabled.

    /** True iff the keyed set-index hash is active. */
    bool indexRandomized() const { return !indexMasks_.empty(); }

    /**
     * The XorMatrix slice-hash-family member currently keying the
     * shared set index.  @pre indexRandomized()
     */
    const SliceHashParams &
    indexHashParams() const
    {
        return indexHashParams_;
    }

    /**
     * Re-key the index hash immediately: draw the next key, remap
     * every live LLC/SF line to its set under the new key (evicting
     * through the ordinary paths on conflicts) and charge the
     * per-line remap stall.  Interval- and watchdog-triggered re-keys
     * run through this at operation boundaries — never inside an
     * access, where resolved set ids are live.
     * @pre DefenseConfig::randomize.enabled
     */
    void rekeyNow();

    /**
     * Arm the self-eviction watchdog over the defended workload's
     * working set (physical line addresses, probed as @p core).
     * @pre DefenseConfig::watchdog.enabled
     */
    void armWatchdog(unsigned core, std::vector<Addr> lines);

    /** Defense event totals (re-keys, watchdog probes/fires). */
    DefenseStats defenseStats() const;

    // --------------------------------- introspection (ground truth)
    // For tests and validation only; attack code must not use these.

    /** LLC/SF slice of a physical address. */
    unsigned sliceOf(Addr pa) const;

    /** Flat shared (LLC/SF) set id of a physical address. */
    unsigned sharedSetOf(Addr pa) const;

    /** L2 set index of a physical address. */
    unsigned l2SetOf(Addr pa) const;

    /** True iff the line is in @p core's L1. */
    bool inL1(unsigned core, Addr pa) const;

    /** True iff the line is in @p core's L2. */
    bool inL2(unsigned core, Addr pa) const;

    /** True iff the line is LLC-resident. */
    bool inLlc(Addr pa) const;

    /** True iff the line has an SF entry. */
    bool inSf(Addr pa) const;

    /** Total shared sets (slices x sets per slice). */
    unsigned totalSharedSets() const { return llc_.geometry().totalSets(); }

    // ------------------------------------------------ fork snapshots

    /**
     * Value snapshot of the whole simulated machine — cache planes,
     * clock, RNGs, frame allocator, background-replay state and
     * counters.  Campaigns warm one world, snapshot it, and fork every
     * victim trial from the copy instead of rebuilding (the machine
     * itself is non-copyable because the SoA planes alias, so state is
     * captured by value and restored in place).  Config and noise
     * profile are not captured: a snapshot may only be restored onto
     * the machine that took it (or an identically-configured clone).
     */
    struct Snapshot
    {
        Rng rng;
        Rng jitterRng;
        // 1-frame placeholder until snapshot() copies the real pool
        // (PageAllocator rejects an empty pool by design).
        PageAllocator allocator{1, Rng{}};
        unsigned nextAsid = 0;
        std::vector<CacheArrayState> l1;
        std::vector<CacheArrayState> l2;
        CacheArrayState llc;
        CacheArrayState sf;
        unsigned privateHitStreak = 0;
        Cycles clock = 0;
        std::vector<Cycles> lastSync;
        std::vector<std::uint8_t> hasStream;
        std::vector<std::vector<std::size_t>> setStreams;
        std::vector<MachineStream> streams;
        StreamId nextStreamId = 1;
        Addr noiseCounter = 0;
        bool quiescent = false;
        MachineStats stats;
        PerfCounters perf;
        // Defense state (inert defaults when no defense is on).
        std::vector<Addr> indexMasks;
        SliceHashParams indexHashParams;
        Rng rekeyRng;
        Cycles nextRekey = kNeverCycles;
        bool rekeyPending = false;
        std::uint64_t rekeys = 0;
        std::uint64_t rekeyLinesMoved = 0;
        SelfEvictionWatchdog watchdog;
    };

    /** Capture the current simulated state. */
    Snapshot snapshot() const;

    /** Restore a state captured on an identically-configured machine. */
    void restore(const Snapshot &s);

  private:
    /** Owner id used for synthetic other-tenant lines. */
    static constexpr std::uint8_t kNoiseOwner = 0xff;

    /** Tag space for synthetic other-tenant lines. */
    static constexpr Addr kNoiseBase = 1ULL << 62;

    using Stream = MachineStream;

    struct AccessOutcome
    {
        double latency = 0.0; //!< raw dependent-access latency
        HitLevel level = HitLevel::L1;
    };

    // Core access path; mutates all cache state, no clock change.
    // With probe=true, LLC/SF hits do not update replacement state.
    AccessOutcome accessLine(unsigned core, Addr line, bool is_store,
                             bool probe = false);

    /**
     * Host-cache prefetch of the state the next batch element will
     * touch (shared-structure records, sync stamp, private sets).
     * Purely a host-side hint issued by the batch loops; simulated
     * behaviour is untouched.
     */
    void
    prefetchLine(unsigned core, Addr pa)
    {
        // Small machines' tables live in the host's caches already;
        // the hash + hint work would be pure overhead there.  The
        // same holds while a sweep is running entirely out of the
        // private caches — the streak heuristic backs off then and
        // re-arms on the first shared-structure access.
        if (!prefetchRecords_ || privateHitStreak_ > 64)
            return;
        const Addr line = lineAlign(pa);
        const unsigned s = sharedSetOf(line);
        // Both planes: a miss only reads the tag rows, but fills,
        // hits and invalidates follow into the metadata rows, and a
        // sweep that stalls there gives back the tag-plane win.
        sf_.prefetchSet(s);
        llc_.prefetchSet(s);
        sf_.prefetchSetMeta(s);
        llc_.prefetchSetMeta(s);
        __builtin_prefetch(&lastSync_[s]);
        const unsigned l2s = cfg_.l2.setIndex(line);
        l2_[core].prefetchSet(l2s);
        l2_[core].prefetchSetMeta(l2s);
    }

    /** Count one serviced access and build its outcome. */
    AccessOutcome
    serve(HitLevel level)
    {
        const double lat = effLatency(level);
        const unsigned idx = static_cast<unsigned>(level);
        ++perf_.levelAccesses[idx];
        perf_.levelCycles[idx] += lat;
        if (level == HitLevel::L1 || level == HitLevel::L2)
            ++privateHitStreak_;
        else
            privateHitStreak_ = 0;
        return {lat, level};
    }

    /** Shared implementation of the overlapped-burst operations. */
    Cycles overlappedAccess(unsigned core, std::span<const Addr> pas,
                            bool is_store, int helper);

    /** Shared implementation of the overlapped flush sweep. */
    Cycles overlappedFlush(unsigned core, std::span<const Addr> pas);

    /** Drop @p line from every structure (no clock change). */
    void
    flushLineNow(Addr line)
    {
        flushLineNowAt(line, sharedSetOf(line));
    }

    /**
     * flushLineNow with the shared set precomputed by the caller (the
     * tiled flush sweep maps a whole tile ahead of simulating it).
     * @pre line is line-aligned and s == sharedSetOf(line).
     */
    void flushLineNowAt(Addr line, unsigned s);

    /** Apply background noise + streams to shared set @p s up to now. */
    void syncSharedSet(unsigned s);

    /** Recompute the quiescent flag (see the member below). */
    void
    updateQuiescent()
    {
        quiescent_ = noisePerCycle_ == 0.0 && streams_.empty();
    }

    /** One synthetic other-tenant access to shared set @p s. */
    void noiseTouch(unsigned s);

    /** Insert a line into the LLC at set @p s, handling evictions. */
    void llcInsert(unsigned s, const CacheLine &line);

    /** Allocate an SF entry at set @p s, handling evictions. */
    void sfAllocate(unsigned s, const CacheLine &entry);

    /** Remove a line from @p core's L1/L2 (no SF/LLC bookkeeping). */
    void dropPrivate(unsigned core, Addr line);

    /** Remove Shared copies of @p line from every core's L1/L2. */
    void dropAllPrivate(Addr line);

    /** Fill @p line into @p core's L2 then L1, handling L2 evictions. */
    void fillPrivate(unsigned core, Addr line, CohState coh);

    /** Upgrade a Shared line to Modified ownership by @p core. */
    void upgradeToModified(unsigned core, Addr line);

    /** Latency with contention multiplier applied. */
    double effLatency(HitLevel level) const;

    /** Throughput cost with contention multiplier applied. */
    double effThroughput(HitLevel level) const;

    /** Add jitter and possible interrupt cost, then advance clock. */
    Cycles finishOp(double duration);

    // ------------------------------------------- defense internals

    /**
     * Run due defense work — interval re-keys, pending watchdog-
     * triggered re-keys, watchdog sweeps.  Called from finishOp, i.e.
     * at operation boundaries only: a re-key changes the set mapping,
     * so it must never run inside accessLine where resolved set ids
     * are live.
     */
    void defenseTick();

    /** One watchdog sweep over the armed working set. */
    void runWatchdogProbe();

    /** Move every live LLC/SF line to its set under the current key. */
    void remapSharedStructures();

    /** Rebuild the per-set stream-replay index after a re-key. */
    void rebuildStreamIndex();

    MachineConfig cfg_;
    NoiseProfile noise_;

    Rng rng_;       //!< machine-internal randomness (replacement, noise)
    Rng jitterRng_; //!< timing jitter, decoupled from state randomness

    PageAllocator allocator_;
    unsigned nextAsid_ = 0;

    OpaqueSliceHash sliceHash_; //!< by value: slice() inlines per access

    std::vector<CacheArray> l1_; //!< per core
    std::vector<CacheArray> l2_; //!< per core

    /**
     * Interleaved LLC + SF structure-of-arrays planes ([sf | llc] per
     * flat set in each plane): the two structures share the set space
     * and the hot path always probes them back to back, so
     * co-locating their tag rows makes one host fetch cover both
     * probes — and flushLineNowAt scans the combined row in a single
     * fused pass.  Metadata rows are interleaved the same way in
     * their own plane so probes that miss never pull them in.
     * Declared before llc_/sf_ so the planes outlive and pre-exist
     * them.
     */
    std::vector<Addr> sharedTags_;
    std::vector<std::uint64_t> sharedMeta_;
    CacheArray llc_;
    CacheArray sf_;

    /** Shared tables big enough that batch prefetch hints pay off. */
    bool prefetchRecords_ = false;

    /** Consecutive accesses served from private caches (host-side
     *  prefetch back-off heuristic; no simulated meaning). */
    unsigned privateHitStreak_ = 0;

    Cycles clock_ = 0;

    // Lazy background replay state.
    std::vector<Cycles> lastSync_;        //!< per shared set
    std::vector<std::uint8_t> hasStream_; //!< per shared set
    /** Stream indices per shared set, indexed like hasStream_.  A
     *  dense vector rather than a hash map so replay visits streams
     *  in registration order, independent of any hash function. */
    std::vector<std::vector<std::size_t>> setStreams_;
    std::vector<Stream> streams_;
    StreamId nextStreamId_ = 1;
    Addr noiseCounter_ = 0;
    double noisePerCycle_ = 0.0;

    /**
     * True iff background replay can have no observable effect: the
     * noise rate is zero and no streams are registered.  Stream
     * replay ignores the per-set sync stamp (events fire on absolute
     * time), so with this set syncSharedSet is a provable no-op and
     * private-cache hits skip the slice hash entirely.
     */
    bool quiescent_ = false;

    MachineStats stats_;

    /**
     * Machine-level perf counter state (service-level tallies and
     * coherence downgrades); per-structure counts live in the
     * CacheArrays and are merged by perfCounters().
     */
    PerfCounters perf_;

    // ------------------------------------------------ defense state
    // All inert (empty masks, kNeverCycles timers) when cfg_.defense
    // is off, so the undefended hot path pays one compare in finishOp
    // and one empty() test in sharedSetOf.

    std::vector<Addr> indexMasks_; //!< keyed index hash; empty = natural
    SliceHashParams indexHashParams_; //!< family record of indexMasks_
    Rng rekeyRng_;                    //!< key stream for (re)keying
    Cycles nextRekey_ = kNeverCycles; //!< next interval-triggered re-key
    bool rekeyPending_ = false; //!< watchdog requested a re-key
    bool inDefenseTick_ = false; //!< defenseTick re-entry guard
    Cycles nextDefenseEvent_ = kNeverCycles; //!< min of defense timers
    std::uint64_t rekeys_ = 0;
    std::uint64_t rekeyLinesMoved_ = 0;
    bool llcPartitioned_ = false;
    bool sfPartitioned_ = false;
    std::uint64_t llcProtectedMask_ = 0; //!< victim-domain LLC ways
    std::uint64_t llcOtherMask_ = 0;     //!< everyone else's LLC ways
    std::uint64_t sfProtectedMask_ = 0;  //!< victim-domain SF ways
    std::uint64_t sfOtherMask_ = 0;      //!< everyone else's SF ways
    SelfEvictionWatchdog watchdog_;
};

} // namespace llcf

#endif // LLCF_SIM_MACHINE_HH
