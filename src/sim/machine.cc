#include "machine.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace llcf {

Machine::Machine(const MachineConfig &cfg, const NoiseProfile &noise,
                 std::uint64_t seed)
    : cfg_(cfg),
      noise_(noise),
      rng_(mix64(seed ^ 0x6d61636869ULL)),
      jitterRng_(mix64(seed + 0x7ea5)),
      allocator_(cfg.physFrames, Rng(mix64(seed + 0xa110c))),
      sliceHash_(makeOpaqueSliceHash(cfg.llc.slices,
                                     cfg.sliceSalt ^ mix64(seed))),
      llc_(cfg.llc, cfg.llcRepl),
      sf_(cfg.sf, cfg.sfRepl)
{
    cfg_.check();
    l1_.reserve(cfg_.cores);
    l2_.reserve(cfg_.cores);
    for (unsigned c = 0; c < cfg_.cores; ++c) {
        l1_.emplace_back(cfg_.l1, cfg_.l1Repl);
        l2_.emplace_back(cfg_.l2, cfg_.l2Repl);
    }
    lastSync_.assign(totalSharedSets(), 0);
    hasStream_.assign(totalSharedSets(), 0);
    noisePerCycle_ = noise_.accessesPerSetPerCycle();
}

std::unique_ptr<AddressSpace>
Machine::newAddressSpace()
{
    return std::make_unique<AddressSpace>(allocator_, nextAsid_++);
}

// ------------------------------------------------------------ mapping

unsigned
Machine::sliceOf(Addr pa) const
{
    return sliceHash_->slice(lineAlign(pa));
}

unsigned
Machine::sharedSetOf(Addr pa) const
{
    const Addr line = lineAlign(pa);
    return sliceOf(line) * cfg_.llc.sets + cfg_.llc.setIndex(line);
}

unsigned
Machine::l2SetOf(Addr pa) const
{
    return cfg_.l2.setIndex(lineAlign(pa));
}

// ------------------------------------------------------- introspection

bool
Machine::inL1(unsigned core, Addr pa) const
{
    const Addr line = lineAlign(pa);
    return l1_[core].findWay(cfg_.l1.setIndex(line), line).has_value();
}

bool
Machine::inL2(unsigned core, Addr pa) const
{
    const Addr line = lineAlign(pa);
    return l2_[core].findWay(cfg_.l2.setIndex(line), line).has_value();
}

bool
Machine::inLlc(Addr pa) const
{
    const Addr line = lineAlign(pa);
    return llc_.findWay(sharedSetOf(line), line).has_value();
}

bool
Machine::inSf(Addr pa) const
{
    const Addr line = lineAlign(pa);
    return sf_.findWay(sharedSetOf(line), line).has_value();
}

// ------------------------------------------------- internal helpers

double
Machine::effLatency(HitLevel level) const
{
    double lat = cfg_.timing.latency(level);
    if (level == HitLevel::SfTransfer || level == HitLevel::Llc ||
        level == HitLevel::Dram) {
        lat *= noise_.memLatencyMul;
    }
    return lat;
}

double
Machine::effThroughput(HitLevel level) const
{
    double thr = cfg_.timing.throughputCost(level);
    if (level == HitLevel::Llc || level == HitLevel::Dram ||
        level == HitLevel::SfTransfer) {
        thr *= noise_.memThroughputMul;
    }
    return thr;
}

Cycles
Machine::finishOp(double duration)
{
    if (noise_.latencyJitter > 0.0) {
        double mul = 1.0 + noise_.latencyJitter * jitterRng_.nextGaussian();
        duration *= std::max(0.5, mul);
    }
    const double p = noise_.interruptRate * duration;
    if (p > 0.0 && jitterRng_.nextBool(std::min(p, 1.0))) {
        duration += jitterRng_.nextExponential(noise_.interruptCostMean);
        ++stats_.interrupts;
    }
    Cycles c = static_cast<Cycles>(duration + 0.5);
    if (c == 0)
        c = 1;
    clock_ += c;
    return c;
}

void
Machine::dropPrivate(unsigned core, Addr line)
{
    l1_[core].invalidateLine(cfg_.l1.setIndex(line), line);
    l2_[core].invalidateLine(cfg_.l2.setIndex(line), line);
}

void
Machine::dropAllPrivate(Addr line)
{
    for (unsigned c = 0; c < cfg_.cores; ++c)
        dropPrivate(c, line);
}

void
Machine::llcInsert(unsigned s, const CacheLine &line)
{
    FillResult fr = llc_.fill(s, line, rng_);
    if (fr.evicted && fr.victim.owner != kNoiseOwner) {
        // A real Shared line left the LLC: nothing tracks it any
        // more, so private Shared copies are back-invalidated.
        dropAllPrivate(fr.victim.lineAddr);
    }
}

void
Machine::sfAllocate(unsigned s, const CacheLine &entry)
{
    FillResult fr = sf_.fill(s, entry, rng_);
    if (!fr.evicted)
        return;
    const CacheLine v = fr.victim;
    if (v.owner != kNoiseOwner) {
        // Evicting an SF entry evicts the owner's private copies.
        dropPrivate(v.owner, v.lineAddr);
    }
    // Reuse predictor decides whether the evicted line is worth
    // keeping in the LLC (Section 2.3).
    if (rng_.nextBool(cfg_.sfEvictToLlcProb))
        llcInsert(s, CacheLine{v.lineAddr, CohState::Shared, v.owner});
}

void
Machine::fillPrivate(unsigned core, Addr line, CohState coh)
{
    const unsigned l2s = cfg_.l2.setIndex(line);
    FillResult fr = l2_[core].fill(l2s, CacheLine{line, coh,
                                   static_cast<std::uint8_t>(core)}, rng_);
    if (fr.evicted) {
        const CacheLine v = fr.victim;
        // Keep L1 inclusive in L2.
        l1_[core].invalidateLine(cfg_.l1.setIndex(v.lineAddr), v.lineAddr);
        if (v.coh == CohState::Exclusive || v.coh == CohState::Modified) {
            // Private line left the owner's L2: free its SF entry
            // (simplified stale-entry model; see machine.hh) and let
            // the reuse predictor decide on LLC insertion.
            const unsigned vs = sharedSetOf(v.lineAddr);
            sf_.invalidateLine(vs, v.lineAddr);
            if (rng_.nextBool(cfg_.sfEvictToLlcProb)) {
                llcInsert(vs, CacheLine{v.lineAddr, CohState::Shared,
                                        v.owner});
            }
        }
        // Shared victims are silent: the LLC still tracks them.
    }
    FillResult f1 = l1_[core].fill(cfg_.l1.setIndex(line),
                                   CacheLine{line, coh,
                                   static_cast<std::uint8_t>(core)}, rng_);
    (void)f1; // L1 evictions are silent: the line remains in L2
}

void
Machine::upgradeToModified(unsigned core, Addr line)
{
    const unsigned s = sharedSetOf(line);
    llc_.invalidateLine(s, line);
    for (unsigned c = 0; c < cfg_.cores; ++c) {
        if (c != core)
            dropPrivate(c, line);
    }
    // Flip the local copies to Modified.
    const unsigned l1s = cfg_.l1.setIndex(line);
    const unsigned l2s = cfg_.l2.setIndex(line);
    if (auto w = l1_[core].findWay(l1s, line)) {
        l1_[core].setLineState(l1s, *w, CohState::Modified,
                               static_cast<std::uint8_t>(core));
    }
    if (auto w = l2_[core].findWay(l2s, line)) {
        l2_[core].setLineState(l2s, *w, CohState::Modified,
                               static_cast<std::uint8_t>(core));
    }
    sfAllocate(s, CacheLine{line, CohState::Modified,
                            static_cast<std::uint8_t>(core)});
}

void
Machine::noiseTouch(unsigned s)
{
    ++stats_.noiseAccesses;
    const Addr tag = kNoiseBase | (noiseCounter_++ << kLineBits);
    if (rng_.nextBool(noise_.sfFraction)) {
        sfAllocate(s, CacheLine{tag, CohState::Exclusive, kNoiseOwner});
    } else {
        llcInsert(s, CacheLine{tag, CohState::Shared, kNoiseOwner});
    }
}

void
Machine::syncSharedSet(unsigned s)
{
    const Cycles t = clock_;
    const Cycles last = lastSync_[s];
    if (t <= last)
        return;
    lastSync_[s] = t;

    // Tenant noise: Poisson arrivals with optional burstiness that
    // preserves the mean access rate.
    const double dt = static_cast<double>(t - last);
    const double lam = noisePerCycle_ * dt;
    if (lam > 0.0) {
        const double burst = std::max(1.0, noise_.burstMean);
        const double arrival_lam = lam / burst;
        std::uint64_t arrivals;
        if (arrival_lam < 1e-3)
            arrivals = rng_.nextBool(arrival_lam) ? 1 : 0;
        else
            arrivals = rng_.nextPoisson(arrival_lam);
        for (std::uint64_t a = 0; a < arrivals; ++a) {
            std::uint64_t size = 1;
            if (burst > 1.0)
                size += rng_.nextPoisson(burst - 1.0);
            for (std::uint64_t i = 0; i < size; ++i)
                noiseTouch(s);
        }
    }

    // Registered streams (victim accesses) due in (last, t].
    if (hasStream_[s]) {
        auto it = setStreams_.find(s);
        if (it != setStreams_.end()) {
            for (std::size_t idx : it->second) {
                Stream &st = streams_[idx];
                while (st.cursor < st.times.size() &&
                       st.times[st.cursor] <= t) {
                    ++st.cursor;
                    ++stats_.streamAccesses;
                    accessLine(st.core, st.line, st.isStore);
                }
            }
        }
    }
}

Machine::AccessOutcome
Machine::accessLine(unsigned core, Addr line, bool is_store, bool probe)
{
    line = lineAlign(line);
    const unsigned s = sharedSetOf(line);
    syncSharedSet(s);

    if (is_store)
        ++stats_.stores;
    else
        ++stats_.loads;

    // L1.
    const unsigned l1s = cfg_.l1.setIndex(line);
    CacheArray &l1 = l1_[core];
    if (auto w = l1.findWay(l1s, line)) {
        if (is_store && l1.line(l1s, *w).coh == CohState::Shared) {
            upgradeToModified(core, line);
            return {effLatency(HitLevel::SfTransfer),
                    HitLevel::SfTransfer};
        }
        l1.onHit(l1s, *w);
        ++stats_.l1Hits;
        return {effLatency(HitLevel::L1), HitLevel::L1};
    }

    // L2.
    const unsigned l2s = cfg_.l2.setIndex(line);
    CacheArray &l2 = l2_[core];
    if (auto w = l2.findWay(l2s, line)) {
        const CohState coh = l2.line(l2s, *w).coh;
        if (is_store && coh == CohState::Shared) {
            upgradeToModified(core, line);
            return {effLatency(HitLevel::SfTransfer),
                    HitLevel::SfTransfer};
        }
        l2.onHit(l2s, *w);
        // Refill L1 (kept inclusive); the L1 victim stays in L2.
        l1.fill(l1s, CacheLine{line, coh,
                static_cast<std::uint8_t>(core)}, rng_);
        ++stats_.l2Hits;
        return {effLatency(HitLevel::L2), HitLevel::L2};
    }

    // Snoop filter: the line is private to some core.
    if (auto w = sf_.findWay(s, line)) {
        const CacheLine entry = sf_.line(s, *w);
        const unsigned owner = entry.owner;
        ++stats_.sfTransfers;
        if (is_store) {
            // RFO: steal exclusive ownership.
            if (owner != core && owner != kNoiseOwner)
                dropPrivate(owner, line);
            sf_.setLineState(s, *w, CohState::Modified,
                             static_cast<std::uint8_t>(core));
            sf_.onHit(s, *w);
            fillPrivate(core, line, CohState::Modified);
            return {effLatency(HitLevel::SfTransfer),
                    HitLevel::SfTransfer};
        }
        // Load hit on a private line: transition to Shared.  The line
        // moves into the LLC and its SF entry is freed (Section 2.3).
        if (owner != core && owner != kNoiseOwner) {
            const unsigned ol1 = cfg_.l1.setIndex(line);
            const unsigned ol2 = cfg_.l2.setIndex(line);
            if (auto ow = l1_[owner].findWay(ol1, line)) {
                l1_[owner].setLineState(ol1, *ow, CohState::Shared,
                        static_cast<std::uint8_t>(owner));
            }
            if (auto ow = l2_[owner].findWay(ol2, line)) {
                l2_[owner].setLineState(ol2, *ow, CohState::Shared,
                        static_cast<std::uint8_t>(owner));
            }
        }
        sf_.invalidateWay(s, *w);
        llcInsert(s, CacheLine{line, CohState::Shared,
                               static_cast<std::uint8_t>(core)});
        fillPrivate(core, line, CohState::Shared);
        return {effLatency(HitLevel::SfTransfer), HitLevel::SfTransfer};
    }

    // LLC.
    if (auto w = llc_.findWay(s, line)) {
        ++stats_.llcHits;
        if (is_store) {
            // Shared -> Modified: leave the LLC, allocate an SF entry.
            llc_.invalidateWay(s, *w);
            dropAllPrivate(line);
            sfAllocate(s, CacheLine{line, CohState::Modified,
                                    static_cast<std::uint8_t>(core)});
            fillPrivate(core, line, CohState::Modified);
            return {effLatency(HitLevel::Llc), HitLevel::Llc};
        }
        if (probe) {
            // Scope probe: observe without disturbing LLC state.
            fillPrivate(core, line, CohState::Shared);
            return {effLatency(HitLevel::Llc), HitLevel::Llc};
        }
        // Does any other core still hold a Shared copy?
        bool other_sharer = false;
        const unsigned l1s_x = cfg_.l1.setIndex(line);
        const unsigned l2s_x = cfg_.l2.setIndex(line);
        for (unsigned c = 0; c < cfg_.cores && !other_sharer; ++c) {
            if (c == core)
                continue;
            other_sharer = l1_[c].findWay(l1s_x, line).has_value() ||
                           l2_[c].findWay(l2s_x, line).has_value();
        }
        if (other_sharer) {
            // Still shared: the LLC keeps tracking it.
            llc_.onHit(s, *w);
            fillPrivate(core, line, CohState::Shared);
        } else {
            // Sole requester: the line upgrades to Exclusive, leaves
            // the mostly-exclusive LLC and is re-tracked by the SF
            // (Section 2.3: E-transitioning lines are removed from
            // the LLC and get an SF entry).
            llc_.invalidateWay(s, *w);
            sfAllocate(s, CacheLine{line, CohState::Exclusive,
                                    static_cast<std::uint8_t>(core)});
            fillPrivate(core, line, CohState::Exclusive);
        }
        return {effLatency(HitLevel::Llc), HitLevel::Llc};
    }

    // Memory.
    ++stats_.dramFills;
    const CohState coh = is_store ? CohState::Modified
                                  : CohState::Exclusive;
    sfAllocate(s, CacheLine{line, coh, static_cast<std::uint8_t>(core)});
    fillPrivate(core, line, coh);
    return {effLatency(HitLevel::Dram), HitLevel::Dram};
}

// -------------------------------------------------------- public ops

Cycles
Machine::load(unsigned core, Addr pa)
{
    return finishOp(accessLine(core, pa, false).latency);
}

Cycles
Machine::store(unsigned core, Addr pa)
{
    return finishOp(accessLine(core, pa, true).latency);
}

Cycles
Machine::timedLoad(unsigned core, Addr pa)
{
    const double lat = accessLine(core, pa, false).latency;
    return finishOp(lat + cfg_.timing.timedOverhead);
}

Cycles
Machine::chaseLoad(unsigned core, Addr pa)
{
    const double lat = accessLine(core, pa, false).latency;
    return finishOp(lat + cfg_.timing.chaseOverhead);
}

Cycles
Machine::probeLoad(unsigned core, Addr pa)
{
    const double lat = accessLine(core, pa, false, true).latency;
    return finishOp(lat + cfg_.timing.timedOverhead);
}

Cycles
Machine::loadShared(unsigned core, unsigned helper, Addr pa)
{
    const double lat = accessLine(core, pa, false).latency;
    // Helper core repeats the access concurrently (not charged).
    accessLine(helper, pa, false);
    return finishOp(lat);
}

namespace {

/** Chunk size for long MLP bursts so background events interleave. */
constexpr std::size_t kBurstChunk = 128;

} // namespace

Cycles
Machine::parallelAccess(unsigned core, std::span<const Addr> pas,
                        bool is_store, int helper)
{
    Cycles total = 0;
    bool first = true;
    for (std::size_t base = 0; base < pas.size(); base += kBurstChunk) {
        const std::size_t end = std::min(pas.size(), base + kBurstChunk);
        double max_lat = 0.0, thr_sum = 0.0;
        for (std::size_t i = base; i < end; ++i) {
            AccessOutcome out = accessLine(core, pas[i], is_store);
            if (helper >= 0)
                accessLine(static_cast<unsigned>(helper), pas[i],
                           is_store);
            max_lat = std::max(max_lat, out.latency);
            thr_sum += effThroughput(out.level);
        }
        // An overlapped burst is bound either by the slowest single
        // access or by sustained throughput, whichever dominates.
        double d = std::max(max_lat, thr_sum);
        if (first) {
            d += cfg_.timing.parallelFixed;
            first = false;
        }
        total += finishOp(d);
    }
    return total;
}

Cycles
Machine::parallelLoads(unsigned core, std::span<const Addr> pas)
{
    return parallelAccess(core, pas, false, -1);
}

Cycles
Machine::parallelStores(unsigned core, std::span<const Addr> pas)
{
    return parallelAccess(core, pas, true, -1);
}

Cycles
Machine::parallelLoadsShared(unsigned core, unsigned helper,
                             std::span<const Addr> pas)
{
    return parallelAccess(core, pas, false, static_cast<int>(helper));
}

Cycles
Machine::clflush(unsigned core, Addr pa)
{
    (void)core;
    const Addr line = lineAlign(pa);
    const unsigned s = sharedSetOf(line);
    syncSharedSet(s);
    dropAllPrivate(line);
    sf_.invalidateLine(s, line);
    llc_.invalidateLine(s, line);
    return finishOp(cfg_.timing.clflushCost);
}

Cycles
Machine::clflushMany(unsigned core, std::span<const Addr> pas)
{
    (void)core;
    Cycles total = 0;
    for (std::size_t base = 0; base < pas.size(); base += kBurstChunk) {
        const std::size_t end = std::min(pas.size(), base + kBurstChunk);
        for (std::size_t i = base; i < end; ++i) {
            const Addr line = lineAlign(pas[i]);
            const unsigned s = sharedSetOf(line);
            syncSharedSet(s);
            dropAllPrivate(line);
            sf_.invalidateLine(s, line);
            llc_.invalidateLine(s, line);
        }
        total += finishOp(static_cast<double>(end - base) *
                          cfg_.timing.clflushThroughput);
    }
    return total;
}

// ----------------------------------------------------------- streams

Machine::StreamId
Machine::addStream(unsigned core, Addr pa, std::vector<Cycles> times,
                   bool is_store)
{
    if (core >= cfg_.cores)
        fatal("stream core %u out of range", core);
    std::sort(times.begin(), times.end());
    Stream st;
    st.id = nextStreamId_++;
    st.core = core;
    st.line = lineAlign(pa);
    st.isStore = is_store;
    st.times = std::move(times);
    const unsigned s = sharedSetOf(st.line);
    streams_.push_back(std::move(st));
    setStreams_[s].push_back(streams_.size() - 1);
    hasStream_[s] = 1;
    return streams_.back().id;
}

void
Machine::removeStream(StreamId id)
{
    for (auto &st : streams_) {
        if (st.id == id) {
            st.cursor = st.times.size();
            return;
        }
    }
}

void
Machine::clearStreams()
{
    streams_.clear();
    setStreams_.clear();
    std::fill(hasStream_.begin(), hasStream_.end(), 0);
}

} // namespace llcf
