#include "machine.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace llcf {

namespace {

/** Tag-plane words per interleaved [sf | llc] shared-set row. */
std::size_t
sharedTagWords(const MachineConfig &cfg)
{
    return CacheArray::tagWordsFor(cfg.sf) +
           CacheArray::tagWordsFor(cfg.llc);
}

/**
 * Tag-plane stride: the combined row rounded up to whole host cache
 * lines, so with the plane base line-aligned no row straddles an
 * extra line.  The gap words are never read.
 */
std::size_t
sharedTagStride(const MachineConfig &cfg)
{
    return hostLineAlignWords(sharedTagWords(cfg));
}

/** Meta-plane words per interleaved [sf | llc] shared-set row. */
std::size_t
sharedMetaWords(const MachineConfig &cfg)
{
    return CacheArray::metaWordsFor(cfg.sf, cfg.sfRepl) +
           CacheArray::metaWordsFor(cfg.llc, cfg.llcRepl);
}

/** Shared sets both planes are sized for. */
std::size_t
sharedSetCount(const MachineConfig &cfg)
{
    return std::max(cfg.llc.totalSets(), cfg.sf.totalSets());
}

/**
 * Instantiate the config's slice-hash record as the by-value hash the
 * access hot path inlines.  Only the opaque family member has the
 * divide-free inline slice(); a config asking for another kind is a
 * configuration error rather than a silent fallback.
 */
OpaqueSliceHash
inlineSliceHash(const SliceHashParams &params)
{
    if (params.kind != SliceHashKind::Opaque)
        fatal("machine hot path requires the opaque slice-hash family "
              "member, not %s",
              sliceHashKindName(params.kind));
    return OpaqueSliceHash(params.slices, params.salt);
}

} // namespace

Machine::Machine(const MachineConfig &cfg, const NoiseProfile &noise,
                 std::uint64_t seed)
    : cfg_(cfg),
      noise_(noise),
      rng_(mix64(seed ^ 0x6d61636869ULL)),
      jitterRng_(mix64(seed + 0x7ea5)),
      allocator_(cfg.physFrames, Rng(mix64(seed + 0xa110c))),
      sliceHash_(inlineSliceHash(cfg.sliceHashParams(seed))),
      sharedTags_(sharedSetCount(cfg) * sharedTagStride(cfg) +
                      kLineBytes / sizeof(Addr),
                  0),
      sharedMeta_(sharedSetCount(cfg) * sharedMetaWords(cfg), 0),
      llc_(cfg.llc, cfg.llcRepl, hostLineAlignPtr(sharedTags_.data()),
           sharedTagStride(cfg), CacheArray::tagWordsFor(cfg.sf),
           sharedMeta_.data(), sharedMetaWords(cfg),
           CacheArray::metaWordsFor(cfg.sf, cfg.sfRepl)),
      sf_(cfg.sf, cfg.sfRepl, hostLineAlignPtr(sharedTags_.data()),
          sharedTagStride(cfg), 0, sharedMeta_.data(),
          sharedMetaWords(cfg), 0)
{
    cfg_.check();
    l1_.reserve(cfg_.cores);
    l2_.reserve(cfg_.cores);
    for (unsigned c = 0; c < cfg_.cores; ++c) {
        l1_.emplace_back(cfg_.l1, cfg_.l1Repl);
        l2_.emplace_back(cfg_.l2, cfg_.l2Repl);
    }
    if (cfg_.defense.any()) {
        if (cfg_.defense.randomize.enabled) {
            rekeyRng_ =
                Rng(mix64(seed ^ cfg_.defense.randomize.keySalt));
            indexHashParams_ = makeIndexHashParams(cfg_.llc.indexBits(),
                                                   rekeyRng_.next());
            indexMasks_ = indexHashParams_.masks;
            if (cfg_.defense.randomize.rekeyInterval > 0)
                nextRekey_ = cfg_.defense.randomize.rekeyInterval;
        }
        const auto &part = cfg_.defense.partition;
        const auto low_mask = [](unsigned n) {
            return (std::uint64_t{1} << n) - 1;
        };
        if (part.llc) {
            llcPartitioned_ = true;
            llcProtectedMask_ = low_mask(part.protectedWays);
            llcOtherMask_ =
                low_mask(cfg_.llc.ways) & ~llcProtectedMask_;
        }
        if (part.sf) {
            sfPartitioned_ = true;
            sfProtectedMask_ = low_mask(part.protectedWays);
            sfOtherMask_ = low_mask(cfg_.sf.ways) & ~sfProtectedMask_;
        }
        watchdog_ = SelfEvictionWatchdog(cfg_.defense.watchdog);
        nextDefenseEvent_ =
            std::min(nextRekey_, watchdog_.nextProbeAt());
    }
    lastSync_.assign(totalSharedSets(), 0);
    hasStream_.assign(totalSharedSets(), 0);
    setStreams_.assign(totalSharedSets(), {});
    noisePerCycle_ = noise_.accessesPerSetPerCycle();
    updateQuiescent();
    // Batch prefetch hints only pay for themselves once the shared
    // planes outgrow a typical host L2 (the tables then miss in the
    // host cache and the access loop is memory-latency-bound).
    prefetchRecords_ = (sharedTags_.size() + sharedMeta_.size()) *
                           sizeof(Addr) >=
                       (1u << 19);
}

std::unique_ptr<AddressSpace>
Machine::newAddressSpace()
{
    return std::make_unique<AddressSpace>(allocator_, nextAsid_++);
}

// ------------------------------------------------------------ mapping

unsigned
Machine::sliceOf(Addr pa) const
{
    return sliceHash_.slice(lineAlign(pa));
}

unsigned
Machine::sharedSetOf(Addr pa) const
{
    const Addr line = lineAlign(pa);
    const unsigned idx = indexMasks_.empty()
                             ? cfg_.llc.setIndex(line)
                             : keyedIndexOf(indexMasks_, line);
    return sliceOf(line) * cfg_.llc.sets + idx;
}

unsigned
Machine::l2SetOf(Addr pa) const
{
    return cfg_.l2.setIndex(lineAlign(pa));
}

// ------------------------------------------------------- introspection

bool
Machine::inL1(unsigned core, Addr pa) const
{
    const Addr line = lineAlign(pa);
    return l1_[core].findWay(cfg_.l1.setIndex(line), line).has_value();
}

bool
Machine::inL2(unsigned core, Addr pa) const
{
    const Addr line = lineAlign(pa);
    return l2_[core].findWay(cfg_.l2.setIndex(line), line).has_value();
}

bool
Machine::inLlc(Addr pa) const
{
    const Addr line = lineAlign(pa);
    return llc_.findWay(sharedSetOf(line), line).has_value();
}

bool
Machine::inSf(Addr pa) const
{
    const Addr line = lineAlign(pa);
    return sf_.findWay(sharedSetOf(line), line).has_value();
}

// ------------------------------------------------- internal helpers

double
Machine::effLatency(HitLevel level) const
{
    double lat = cfg_.timing.latency(level);
    if (level == HitLevel::SfTransfer || level == HitLevel::Llc ||
        level == HitLevel::Dram) {
        lat *= noise_.memLatencyMul;
    }
    return lat;
}

double
Machine::effThroughput(HitLevel level) const
{
    double thr = cfg_.timing.throughputCost(level);
    if (level == HitLevel::Llc || level == HitLevel::Dram ||
        level == HitLevel::SfTransfer) {
        thr *= noise_.memThroughputMul;
    }
    return thr;
}

Cycles
Machine::finishOp(double duration)
{
    if (noise_.latencyJitter > 0.0) {
        double mul = 1.0 + noise_.latencyJitter * jitterRng_.nextGaussian();
        duration *= std::max(0.5, mul);
    }
    const double p = noise_.interruptRate * duration;
    if (p > 0.0 && jitterRng_.nextBool(std::min(p, 1.0))) {
        duration += jitterRng_.nextExponential(noise_.interruptCostMean);
        ++stats_.interrupts;
    }
    Cycles c = static_cast<Cycles>(duration + 0.5);
    if (c == 0)
        c = 1;
    clock_ += c;
    // Safe point: resolved set ids from the finished op are dead, so
    // due defense work (re-keys, watchdog sweeps) may run now.  One
    // compare against kNeverCycles when no defense is configured.
    if (clock_ >= nextDefenseEvent_)
        defenseTick();
    return c;
}

void
Machine::dropPrivate(unsigned core, Addr line)
{
    // L1 is kept inclusive in L2, so the L1 scan is only needed when
    // the line was actually L2-resident.
    if (l2_[core].invalidateLine(cfg_.l2.setIndex(line), line))
        l1_[core].invalidateLine(cfg_.l1.setIndex(line), line);
}

void
Machine::dropAllPrivate(Addr line)
{
    for (unsigned c = 0; c < cfg_.cores; ++c)
        dropPrivate(c, line);
}

void
Machine::llcInsert(unsigned s, const CacheLine &line)
{
    // CAT semantics: the fill partition is the one of the core that
    // causes the fill (the line's recorded owner), so a victim line
    // pulled Shared by the attacker occupies the attacker's ways.
    FillResult fr =
        llcPartitioned_
            ? llc_.fillMasked(s, line, rng_,
                              line.owner ==
                                      cfg_.defense.partition.protectedCore
                                  ? llcProtectedMask_
                                  : llcOtherMask_)
            : llc_.fill(s, line, rng_);
    if (fr.evicted && fr.victim.owner != kNoiseOwner) {
        // A real Shared line left the LLC: nothing tracks it any
        // more, so private Shared copies are back-invalidated.
        dropAllPrivate(fr.victim.lineAddr);
    }
}

void
Machine::sfAllocate(unsigned s, const CacheLine &entry)
{
    FillResult fr =
        sfPartitioned_
            ? sf_.fillMasked(s, entry, rng_,
                             entry.owner ==
                                     cfg_.defense.partition.protectedCore
                                 ? sfProtectedMask_
                                 : sfOtherMask_)
            : sf_.fill(s, entry, rng_);
    if (!fr.evicted)
        return;
    const CacheLine v = fr.victim;
    if (v.owner != kNoiseOwner) {
        // Evicting an SF entry evicts the owner's private copies.
        dropPrivate(v.owner, v.lineAddr);
    }
    // Reuse predictor decides whether the evicted line is worth
    // keeping in the LLC (Section 2.3).
    if (rng_.nextBool(cfg_.sfEvictToLlcProb))
        llcInsert(s, CacheLine{v.lineAddr, CohState::Shared, v.owner});
}

void
Machine::fillPrivate(unsigned core, Addr line, CohState coh)
{
    const unsigned l2s = cfg_.l2.setIndex(line);
    FillResult fr = l2_[core].fill(l2s, CacheLine{line, coh,
                                   static_cast<std::uint8_t>(core)}, rng_);
    if (fr.evicted) {
        const CacheLine v = fr.victim;
        // Keep L1 inclusive in L2.
        l1_[core].invalidateLine(cfg_.l1.setIndex(v.lineAddr), v.lineAddr);
        if (v.coh == CohState::Exclusive || v.coh == CohState::Modified) {
            // Private line left the owner's L2: free its SF entry
            // (simplified stale-entry model; see machine.hh) and let
            // the reuse predictor decide on LLC insertion.
            const unsigned vs = sharedSetOf(v.lineAddr);
            sf_.invalidateLine(vs, v.lineAddr);
            if (rng_.nextBool(cfg_.sfEvictToLlcProb)) {
                llcInsert(vs, CacheLine{v.lineAddr, CohState::Shared,
                                        v.owner});
            }
        }
        // Shared victims are silent: the LLC still tracks them.
    }
    FillResult f1 = l1_[core].fill(cfg_.l1.setIndex(line),
                                   CacheLine{line, coh,
                                   static_cast<std::uint8_t>(core)}, rng_);
    (void)f1; // L1 evictions are silent: the line remains in L2
}

void
Machine::upgradeToModified(unsigned core, Addr line)
{
    const unsigned s = sharedSetOf(line);
    llc_.invalidateLine(s, line);
    for (unsigned c = 0; c < cfg_.cores; ++c) {
        if (c != core)
            dropPrivate(c, line);
    }
    // Flip the local copies to Modified.
    const unsigned l1s = cfg_.l1.setIndex(line);
    const unsigned l2s = cfg_.l2.setIndex(line);
    if (auto w = l1_[core].findWay(l1s, line)) {
        l1_[core].setLineState(l1s, *w, CohState::Modified,
                               static_cast<std::uint8_t>(core));
    }
    if (auto w = l2_[core].findWay(l2s, line)) {
        l2_[core].setLineState(l2s, *w, CohState::Modified,
                               static_cast<std::uint8_t>(core));
    }
    sfAllocate(s, CacheLine{line, CohState::Modified,
                            static_cast<std::uint8_t>(core)});
}

void
Machine::noiseTouch(unsigned s)
{
    ++stats_.noiseAccesses;
    const Addr tag = kNoiseBase | (noiseCounter_++ << kLineBits);
    if (rng_.nextBool(noise_.sfFraction)) {
        sfAllocate(s, CacheLine{tag, CohState::Exclusive, kNoiseOwner});
    } else {
        llcInsert(s, CacheLine{tag, CohState::Shared, kNoiseOwner});
    }
}

void
Machine::syncSharedSet(unsigned s)
{
    if (quiescent_)
        return; // provably no effect; see the flag's definition
    const Cycles t = clock_;
    const Cycles last = lastSync_[s];
    if (t <= last)
        return;
    lastSync_[s] = t;

    // Tenant noise: Poisson arrivals with optional burstiness that
    // preserves the mean access rate.
    const double dt = static_cast<double>(t - last);
    const double lam = noisePerCycle_ * dt;
    if (lam > 0.0) {
        const double burst = std::max(1.0, noise_.burstMean);
        const double arrival_lam = lam / burst;
        std::uint64_t arrivals;
        if (arrival_lam < 1e-3)
            arrivals = rng_.nextBool(arrival_lam) ? 1 : 0;
        else
            arrivals = rng_.nextPoisson(arrival_lam);
        for (std::uint64_t a = 0; a < arrivals; ++a) {
            std::uint64_t size = 1;
            if (burst > 1.0)
                size += rng_.nextPoisson(burst - 1.0);
            for (std::uint64_t i = 0; i < size; ++i)
                noiseTouch(s);
        }
    }

    // Registered streams (victim accesses) due in (last, t].
    if (hasStream_[s]) {
        for (std::size_t idx : setStreams_[s]) {
            Stream &st = streams_[idx];
            while (st.cursor < st.times.size() &&
                   st.times[st.cursor] <= t) {
                ++st.cursor;
                ++stats_.streamAccesses;
                accessLine(st.core, st.line, st.isStore);
            }
        }
    }
}

Machine::AccessOutcome
Machine::accessLine(unsigned core, Addr line, bool is_store, bool probe)
{
    // Sentinel for "shared set not resolved yet" (real ids are far
    // smaller); on quiescent machines the slice hash is deferred
    // until an access actually reaches the shared structures.
    constexpr unsigned kUnresolved = ~0u;

    line = lineAlign(line);
    unsigned s = kUnresolved;
    if (!quiescent_) {
        s = sharedSetOf(line);
        syncSharedSet(s);
    }

    if (is_store)
        ++stats_.stores;
    else
        ++stats_.loads;

    // L1.
    const unsigned l1s = cfg_.l1.setIndex(line);
    CacheArray &l1 = l1_[core];
    if (auto w = l1.findWay(l1s, line)) {
        if (is_store && l1.line(l1s, *w).coh == CohState::Shared) {
            upgradeToModified(core, line);
            return serve(HitLevel::SfTransfer);
        }
        l1.onHit(l1s, *w);
        ++stats_.l1Hits;
        return serve(HitLevel::L1);
    }

    // L2.
    const unsigned l2s = cfg_.l2.setIndex(line);
    CacheArray &l2 = l2_[core];
    if (auto w = l2.findWay(l2s, line)) {
        const CohState coh = l2.line(l2s, *w).coh;
        if (is_store && coh == CohState::Shared) {
            upgradeToModified(core, line);
            return serve(HitLevel::SfTransfer);
        }
        l2.onHit(l2s, *w);
        // Refill L1 (kept inclusive); the L1 victim stays in L2.
        l1.fill(l1s, CacheLine{line, coh,
                static_cast<std::uint8_t>(core)}, rng_);
        ++stats_.l2Hits;
        return serve(HitLevel::L2);
    }

    // Shared structures from here on: resolve the set if the
    // quiescent fast path deferred it.
    if (s == kUnresolved)
        s = sharedSetOf(line);

    // Snoop filter: the line is private to some core.
    if (auto w = sf_.findWay(s, line)) {
        const CacheLine entry = sf_.line(s, *w);
        const unsigned owner = entry.owner;
        ++stats_.sfTransfers;
        if (is_store) {
            // RFO: steal exclusive ownership.
            if (owner != core && owner != kNoiseOwner)
                dropPrivate(owner, line);
            sf_.setLineState(s, *w, CohState::Modified,
                             static_cast<std::uint8_t>(core));
            sf_.onHit(s, *w);
            fillPrivate(core, line, CohState::Modified);
            return serve(HitLevel::SfTransfer);
        }
        // Load hit on a private line: transition to Shared.  The line
        // moves into the LLC and its SF entry is freed (Section 2.3).
        ++perf_.cohDowngrades;
        if (owner != core && owner != kNoiseOwner) {
            const unsigned ol1 = cfg_.l1.setIndex(line);
            const unsigned ol2 = cfg_.l2.setIndex(line);
            if (auto ow = l1_[owner].findWay(ol1, line)) {
                l1_[owner].setLineState(ol1, *ow, CohState::Shared,
                        static_cast<std::uint8_t>(owner));
            }
            if (auto ow = l2_[owner].findWay(ol2, line)) {
                l2_[owner].setLineState(ol2, *ow, CohState::Shared,
                        static_cast<std::uint8_t>(owner));
            }
        }
        sf_.invalidateWay(s, *w);
        llcInsert(s, CacheLine{line, CohState::Shared,
                               static_cast<std::uint8_t>(core)});
        fillPrivate(core, line, CohState::Shared);
        return serve(HitLevel::SfTransfer);
    }

    // LLC.
    if (auto w = llc_.findWay(s, line)) {
        ++stats_.llcHits;
        if (is_store) {
            // Shared -> Modified: leave the LLC, allocate an SF entry.
            llc_.invalidateWay(s, *w);
            dropAllPrivate(line);
            sfAllocate(s, CacheLine{line, CohState::Modified,
                                    static_cast<std::uint8_t>(core)});
            fillPrivate(core, line, CohState::Modified);
            return serve(HitLevel::Llc);
        }
        if (probe) {
            // Scope probe: observe without disturbing LLC state.
            fillPrivate(core, line, CohState::Shared);
            return serve(HitLevel::Llc);
        }
        // Does any other core still hold a Shared copy?
        bool other_sharer = false;
        const unsigned l1s_x = cfg_.l1.setIndex(line);
        const unsigned l2s_x = cfg_.l2.setIndex(line);
        for (unsigned c = 0; c < cfg_.cores && !other_sharer; ++c) {
            if (c == core)
                continue;
            other_sharer = l1_[c].findWay(l1s_x, line).has_value() ||
                           l2_[c].findWay(l2s_x, line).has_value();
        }
        if (other_sharer) {
            // Still shared: the LLC keeps tracking it.
            llc_.onHit(s, *w);
            fillPrivate(core, line, CohState::Shared);
        } else {
            // Sole requester: the line upgrades to Exclusive, leaves
            // the mostly-exclusive LLC and is re-tracked by the SF
            // (Section 2.3: E-transitioning lines are removed from
            // the LLC and get an SF entry).
            llc_.invalidateWay(s, *w);
            sfAllocate(s, CacheLine{line, CohState::Exclusive,
                                    static_cast<std::uint8_t>(core)});
            fillPrivate(core, line, CohState::Exclusive);
        }
        return serve(HitLevel::Llc);
    }

    // Memory.
    ++stats_.dramFills;
    const CohState coh = is_store ? CohState::Modified
                                  : CohState::Exclusive;
    sfAllocate(s, CacheLine{line, coh, static_cast<std::uint8_t>(core)});
    fillPrivate(core, line, coh);
    return serve(HitLevel::Dram);
}

// -------------------------------------------------------- public ops

Cycles
Machine::load(unsigned core, Addr pa)
{
    return finishOp(accessLine(core, pa, false).latency);
}

Cycles
Machine::store(unsigned core, Addr pa)
{
    return finishOp(accessLine(core, pa, true).latency);
}

Cycles
Machine::timedLoad(unsigned core, Addr pa)
{
    const double lat = accessLine(core, pa, false).latency;
    return finishOp(lat + cfg_.timing.timedOverhead);
}

Cycles
Machine::chaseLoad(unsigned core, Addr pa)
{
    const double lat = accessLine(core, pa, false).latency;
    return finishOp(lat + cfg_.timing.chaseOverhead);
}

Cycles
Machine::probeLoad(unsigned core, Addr pa)
{
    const double lat = accessLine(core, pa, false, true).latency;
    return finishOp(lat + cfg_.timing.timedOverhead);
}

Cycles
Machine::loadShared(unsigned core, unsigned helper, Addr pa)
{
    const double lat = accessLine(core, pa, false).latency;
    // Helper core repeats the access concurrently (not charged).
    accessLine(helper, pa, false);
    return finishOp(lat);
}

namespace {

/** Chunk size for long MLP bursts so background events interleave. */
constexpr std::size_t kBurstChunk = 128;

/** Elements mapped + prefetched ahead of simulation per sweep tile. */
constexpr std::size_t kSweepTile = 16;

} // namespace

Cycles
Machine::overlappedAccess(unsigned core, std::span<const Addr> pas,
                          bool is_store, int helper)
{
    Cycles total = 0;
    bool first = true;
    std::size_t pf = 0; // prefetch cursor, one tile ahead
    for (std::size_t base = 0; base < pas.size(); base += kBurstChunk) {
        const std::size_t end = std::min(pas.size(), base + kBurstChunk);
        double max_lat = 0.0, thr_sum = 0.0;
        for (std::size_t tb = base; tb < end; tb += kSweepTile) {
            const std::size_t te = std::min(end, tb + kSweepTile);
            const std::size_t lead =
                std::min(pas.size(), te + kSweepTile);
            for (; pf < lead; ++pf)
                prefetchLine(core, pas[pf]);
            for (std::size_t i = tb; i < te; ++i) {
                AccessOutcome out = accessLine(core, pas[i], is_store);
                if (helper >= 0)
                    accessLine(static_cast<unsigned>(helper), pas[i],
                               is_store);
                max_lat = std::max(max_lat, out.latency);
                thr_sum += effThroughput(out.level);
            }
        }
        // An overlapped burst is bound either by the slowest single
        // access or by sustained throughput, whichever dominates.
        double d = std::max(max_lat, thr_sum);
        if (first) {
            d += cfg_.timing.parallelFixed;
            first = false;
        }
        total += finishOp(d);
    }
    return total;
}

void
Machine::flushLineNowAt(Addr line, unsigned s)
{
    if (!quiescent_)
        syncSharedSet(s);
    // The SF and LLC tag rows for a shared set are adjacent in the
    // shared tag plane (sf at offset 0, llc right after — the wiring
    // this constructor set up), so both presence probes resolve
    // against one fetched region, and a flush of a non-resident line
    // — the common case in repeated flush sweeps — never touches
    // metadata at all.
    const Addr *row = sf_.tagRow(s);
    const int sfw = tagScanFind(row, sf_.tagRowWords(), line);
    const int llcw =
        tagScanFind(row + sf_.tagRowWords(), llc_.tagRowWords(), line);
    // A line resident in any private cache is either E/M — tracked by
    // an SF entry naming its single owner — or Shared and tracked by
    // the LLC (see DESIGN.md).  The shared-structure probes therefore
    // bound which private caches can hold copies, saving the
    // two-per-core private scans of the general case.
    std::uint8_t sf_owner = 0;
    if (sfw >= 0) {
        sf_owner = sf_.line(s, static_cast<unsigned>(sfw)).owner;
        sf_.invalidateWay(s, static_cast<unsigned>(sfw));
    }
    if (llcw >= 0)
        llc_.invalidateWay(s, static_cast<unsigned>(llcw));
    if (sfw >= 0) {
        if (sf_owner != kNoiseOwner)
            dropPrivate(sf_owner, line);
    } else if (llcw >= 0) {
        dropAllPrivate(line);
    }
}

Cycles
Machine::overlappedFlush(unsigned core, std::span<const Addr> pas)
{
    (void)core;
    Cycles total = 0;
    Addr lines[kSweepTile];
    unsigned sets[kSweepTile];
    for (std::size_t base = 0; base < pas.size(); base += kBurstChunk) {
        const std::size_t end = std::min(pas.size(), base + kBurstChunk);
        for (std::size_t tb = base; tb < end; tb += kSweepTile) {
            const std::size_t n = std::min(end - tb, kSweepTile);
            // Map the whole tile (line-align + slice hash) and issue
            // its host prefetches, then simulate it with the set ids
            // already in registers: the dependent tag-row fetches of
            // up to kSweepTile flushes overlap instead of serialising
            // on host-memory latency.  Host-side only — the simulated
            // flush order and RNG draw order are untouched.
            for (std::size_t j = 0; j < n; ++j) {
                lines[j] = lineAlign(pas[tb + j]);
                sets[j] = sharedSetOf(lines[j]);
                if (prefetchRecords_) {
                    sf_.prefetchSet(sets[j]);
                    llc_.prefetchSet(sets[j]);
                    sf_.prefetchSetMeta(sets[j]);
                    llc_.prefetchSetMeta(sets[j]);
                    __builtin_prefetch(&lastSync_[sets[j]]);
                }
            }
            for (std::size_t j = 0; j < n; ++j)
                flushLineNowAt(lines[j], sets[j]);
        }
        total += finishOp(static_cast<double>(end - base) *
                          cfg_.timing.clflushThroughput);
    }
    return total;
}

Cycles
Machine::clflush(unsigned core, Addr pa)
{
    (void)core;
    flushLineNow(lineAlign(pa));
    return finishOp(cfg_.timing.clflushCost);
}

Cycles
Machine::accessBatch(unsigned core, std::span<const Addr> pas,
                     const BatchSpec &spec)
{
    if (spec.overlapped) {
        switch (spec.op) {
          case BatchOp::Load:
            return overlappedAccess(core, pas, false, spec.helper);
          case BatchOp::Store:
            return overlappedAccess(core, pas, true, spec.helper);
          case BatchOp::Flush:
            return overlappedFlush(core, pas);
          default:
            panic("accessBatch: only Load/Store/Flush overlap");
        }
    }
    // Sequential sweeps: element-for-element equivalent to the scalar
    // operations (same RNG draws, same clock advance per element).
    // Sweeps are tiled for the host: each tile's shared tag rows are
    // prefetched before the previous tile finishes simulating, so the
    // random-set fetches overlap several elements deep instead of the
    // single-element lead the scalar path gets.
    const auto sweep = [&](auto op) {
        Cycles total = 0;
        std::size_t pf = 0; // prefetch cursor, one tile ahead
        for (std::size_t base = 0; base < pas.size();
             base += kSweepTile) {
            const std::size_t end =
                std::min(pas.size(), base + kSweepTile);
            const std::size_t lead =
                std::min(pas.size(), end + kSweepTile);
            for (; pf < lead; ++pf)
                prefetchLine(core, pas[pf]);
            for (std::size_t i = base; i < end; ++i)
                total += op(pas[i]);
        }
        return total;
    };
    switch (spec.op) {
      case BatchOp::Load:
        if (spec.helper >= 0) {
            const unsigned helper =
                static_cast<unsigned>(spec.helper);
            return sweep([&](Addr pa) {
                return loadShared(core, helper, pa);
            });
        }
        return sweep([&](Addr pa) { return load(core, pa); });
      case BatchOp::Store:
        return sweep([&](Addr pa) { return store(core, pa); });
      case BatchOp::TimedLoad:
        return sweep([&](Addr pa) { return timedLoad(core, pa); });
      case BatchOp::ChaseLoad:
        return sweep([&](Addr pa) { return chaseLoad(core, pa); });
      case BatchOp::ProbeLoad:
        return sweep([&](Addr pa) { return probeLoad(core, pa); });
      case BatchOp::Flush:
        return sweep([&](Addr pa) { return clflush(core, pa); });
    }
    panic("accessBatch: unknown op");
}

PerfCounters
Machine::perfCounters() const
{
    PerfCounters pc = perf_;
    for (const CacheArray &a : l1_)
        pc.l1 += a.counters();
    for (const CacheArray &a : l2_)
        pc.l2 += a.counters();
    pc.llc = llc_.counters();
    pc.sf = sf_.counters();
    pc.accesses = stats_.loads + stats_.stores;
    pc.misses = stats_.dramFills;
    pc.hits = pc.accesses - pc.misses;
    pc.simCycles = clock_;
    return pc;
}

// ----------------------------------------------------------- streams

Machine::StreamId
Machine::addStream(unsigned core, Addr pa, std::vector<Cycles> times,
                   bool is_store, bool pinned)
{
    if (core >= cfg_.cores)
        fatal("stream core %u out of range", core);
    std::sort(times.begin(), times.end());
    quiescent_ = false; // stream replay must run from now on
    Stream st;
    st.id = nextStreamId_++;
    st.core = core;
    st.line = lineAlign(pa);
    st.isStore = is_store;
    st.pinned = pinned;
    st.times = std::move(times);
    const unsigned s = sharedSetOf(st.line);
    streams_.push_back(std::move(st));
    setStreams_[s].push_back(streams_.size() - 1);
    hasStream_[s] = 1;
    return streams_.back().id;
}

void
Machine::removeStream(StreamId id)
{
    for (auto &st : streams_) {
        if (st.id == id) {
            st.cursor = st.times.size();
            return;
        }
    }
}

void
Machine::clearStreams()
{
    bool any_pinned = false;
    for (const Stream &st : streams_)
        any_pinned |= st.pinned;
    if (!any_pinned) {
        streams_.clear();
        setStreams_.assign(setStreams_.size(), {});
        std::fill(hasStream_.begin(), hasStream_.end(), 0);
        updateQuiescent();
        return;
    }
    // Pinned streams (co-tenant offered load) survive the attack
    // layer's between-step cleanups; only victim streams drop.
    std::erase_if(streams_,
                  [](const Stream &st) { return !st.pinned; });
    rebuildStreamIndex();
    updateQuiescent();
}

// ---------------------------------------------------------- defenses

void
Machine::armWatchdog(unsigned core, std::vector<Addr> lines)
{
    if (!cfg_.defense.watchdog.enabled)
        fatal("armWatchdog: watchdog disabled in this configuration");
    if (core >= cfg_.cores)
        fatal("armWatchdog: core %u out of range", core);
    for (Addr &pa : lines)
        pa = lineAlign(pa);
    watchdog_.arm(core, std::move(lines), clock_);
    nextDefenseEvent_ = std::min(nextRekey_, watchdog_.nextProbeAt());
}

DefenseStats
Machine::defenseStats() const
{
    DefenseStats ds;
    ds.rekeys = rekeys_;
    ds.rekeyLinesMoved = rekeyLinesMoved_;
    ds.wdProbes = watchdog_.probes();
    ds.wdMisses = watchdog_.misses();
    ds.wdFires = watchdog_.fires();
    return ds;
}

void
Machine::rekeyNow()
{
    if (!cfg_.defense.randomize.enabled)
        fatal("rekeyNow: index randomization disabled");
    indexHashParams_ = makeIndexHashParams(cfg_.llc.indexBits(),
                                           rekeyRng_.next());
    indexMasks_ = indexHashParams_.masks;
    ++rekeys_;
    remapSharedStructures();
}

void
Machine::remapSharedStructures()
{
    // Collect every live shared line in deterministic set/way order.
    struct Saved
    {
        CacheLine line;
        bool inSf;
    };
    std::vector<Saved> saved;
    const unsigned total = totalSharedSets();
    for (unsigned s = 0; s < total; ++s) {
        for (unsigned w = 0; w < cfg_.sf.ways; ++w) {
            const CacheLine l = sf_.line(s, w);
            if (l.valid())
                saved.push_back({l, true});
        }
        for (unsigned w = 0; w < cfg_.llc.ways; ++w) {
            const CacheLine l = llc_.line(s, w);
            if (l.valid())
                saved.push_back({l, false});
        }
    }
    sf_.flushAll();
    llc_.flushAll();
    // Reinsert under the new key.  Sets that overflow in the new
    // mapping evict through the ordinary insert paths — including
    // back-invalidation of private copies — which is the real cost
    // of relocating into a colder arrangement.
    for (const Saved &sv : saved) {
        const unsigned s = sharedSetOf(sv.line.lineAddr);
        if (sv.inSf)
            sfAllocate(s, sv.line);
        else
            llcInsert(s, sv.line);
    }
    rekeyLinesMoved_ += saved.size();
    // Stream replay is indexed by shared set and the mapping changed.
    rebuildStreamIndex();
    idle(static_cast<Cycles>(saved.size()) *
         cfg_.defense.randomize.rekeyPerLineCost);
}

void
Machine::rebuildStreamIndex()
{
    setStreams_.assign(setStreams_.size(), {});
    std::fill(hasStream_.begin(), hasStream_.end(), 0);
    for (std::size_t i = 0; i < streams_.size(); ++i) {
        const unsigned s = sharedSetOf(streams_[i].line);
        setStreams_[s].push_back(i);
        hasStream_[s] = 1;
    }
}

void
Machine::runWatchdogProbe()
{
    // Background sweep: the monitor's own time is not charged to the
    // op this tick piggybacks on, but the accesses touch real cache
    // state — self-monitoring has an observer effect, and the sweep
    // re-establishes residency of the very working set it checks.
    const unsigned core = watchdog_.core();
    bool fired = false;
    for (const Addr line : watchdog_.lines()) {
        const AccessOutcome out = accessLine(core, line, false);
        const bool miss =
            out.level != HitLevel::L1 && out.level != HitLevel::L2;
        fired |= watchdog_.observe(miss, clock_);
    }
    if (fired && cfg_.defense.watchdog.action == WatchdogAction::Rekey)
        rekeyPending_ = true;
}

void
Machine::defenseTick()
{
    if (inDefenseTick_)
        return;
    inDefenseTick_ = true;
    if (watchdog_.armed()) {
        while (clock_ >= watchdog_.nextProbeAt()) {
            runWatchdogProbe();
            watchdog_.scheduleNextProbe();
        }
    }
    if (rekeyPending_ || clock_ >= nextRekey_) {
        rekeyPending_ = false;
        const Cycles iv = cfg_.defense.randomize.rekeyInterval;
        if (nextRekey_ != kNeverCycles) {
            while (nextRekey_ <= clock_)
                nextRekey_ += iv;
        }
        rekeyNow();
        // The remap stall may have crossed the next interval already.
        if (nextRekey_ != kNeverCycles) {
            while (nextRekey_ <= clock_)
                nextRekey_ += iv;
        }
    }
    nextDefenseEvent_ = std::min(nextRekey_, watchdog_.nextProbeAt());
    inDefenseTick_ = false;
}

Machine::Snapshot
Machine::snapshot() const
{
    Snapshot s;
    s.rng = rng_;
    s.jitterRng = jitterRng_;
    s.allocator = allocator_;
    s.nextAsid = nextAsid_;
    s.l1.reserve(l1_.size());
    for (const CacheArray &a : l1_)
        s.l1.push_back(a.saveState());
    s.l2.reserve(l2_.size());
    for (const CacheArray &a : l2_)
        s.l2.push_back(a.saveState());
    s.llc = llc_.saveState();
    s.sf = sf_.saveState();
    s.privateHitStreak = privateHitStreak_;
    s.clock = clock_;
    s.lastSync = lastSync_;
    s.hasStream = hasStream_;
    s.setStreams = setStreams_;
    s.streams = streams_;
    s.nextStreamId = nextStreamId_;
    s.noiseCounter = noiseCounter_;
    s.quiescent = quiescent_;
    s.stats = stats_;
    s.perf = perf_;
    s.indexMasks = indexMasks_;
    s.indexHashParams = indexHashParams_;
    s.rekeyRng = rekeyRng_;
    s.nextRekey = nextRekey_;
    s.rekeyPending = rekeyPending_;
    s.rekeys = rekeys_;
    s.rekeyLinesMoved = rekeyLinesMoved_;
    s.watchdog = watchdog_;
    return s;
}

void
Machine::restore(const Snapshot &s)
{
    if (s.l1.size() != l1_.size() || s.l2.size() != l2_.size())
        panic("machine snapshot does not match this configuration");
    rng_ = s.rng;
    jitterRng_ = s.jitterRng;
    allocator_ = s.allocator;
    nextAsid_ = s.nextAsid;
    for (std::size_t i = 0; i < l1_.size(); ++i)
        l1_[i].restoreState(s.l1[i]);
    for (std::size_t i = 0; i < l2_.size(); ++i)
        l2_[i].restoreState(s.l2[i]);
    llc_.restoreState(s.llc);
    sf_.restoreState(s.sf);
    privateHitStreak_ = s.privateHitStreak;
    clock_ = s.clock;
    lastSync_ = s.lastSync;
    hasStream_ = s.hasStream;
    setStreams_ = s.setStreams;
    streams_ = s.streams;
    nextStreamId_ = s.nextStreamId;
    noiseCounter_ = s.noiseCounter;
    quiescent_ = s.quiescent;
    stats_ = s.stats;
    perf_ = s.perf;
    indexMasks_ = s.indexMasks;
    indexHashParams_ = s.indexHashParams;
    rekeyRng_ = s.rekeyRng;
    nextRekey_ = s.nextRekey;
    rekeyPending_ = s.rekeyPending;
    rekeys_ = s.rekeys;
    rekeyLinesMoved_ = s.rekeyLinesMoved;
    watchdog_ = s.watchdog;
    nextDefenseEvent_ = std::min(nextRekey_, watchdog_.nextProbeAt());
}

} // namespace llcf
