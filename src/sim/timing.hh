/**
 * @file
 * Latency/throughput parameters of the modelled memory hierarchy.
 *
 * All values are cycles at 2 GHz, calibrated against the magnitudes the
 * paper reports for a quiescent local Skylake-SP: Table 5 prime/probe
 * latencies, Figure 3 TestEviction durations, and Section 4.3's
 * sequential-vs-parallel gap.  Cloud contention multiplies the shared
 * levels via NoiseProfile::memLatencyMul / memThroughputMul.
 */

#ifndef LLCF_SIM_TIMING_HH
#define LLCF_SIM_TIMING_HH

namespace llcf {

/** Which level of the hierarchy served an access. */
enum class HitLevel { L1, L2, SfTransfer, Llc, Dram };

/** Human-readable level name. */
const char *hitLevelName(HitLevel level);

/**
 * Timing model of one machine.  Latencies are for isolated
 * (dependent) accesses; thr* are the marginal per-line costs when
 * accesses overlap with maximum memory-level parallelism.
 */
struct TimingParams
{
    double l1Hit = 4.0;        //!< L1D hit latency
    double l2Hit = 14.0;       //!< L2 hit latency
    double llcHit = 55.0;      //!< LLC hit (cross-slice average)
    double sfTransfer = 75.0;  //!< SF hit: cache-to-cache transfer
    double dram = 230.0;       //!< memory access latency

    double timedOverhead = 90.0;  //!< lfence+rdtscp pair around a load
    /**
     * Per-link overhead of a page-granular pointer chase: loop code
     * plus the TLB miss / page walk that a random page-per-line chain
     * takes on nearly every step.
     */
    double chaseOverhead = 250.0;
    double clflushCost = 60.0;    //!< one clflush instruction
    double clflushThroughput = 4.0; //!< per-line cost in a flush burst
    double parallelFixed = 12.0;  //!< fixed start-up of an MLP burst

    /** Marginal per-line cost in an overlapped (MLP) burst. */
    double thrL1 = 3.0;
    double thrL2 = 7.7;
    double thrLlc = 11.0;
    double thrDram = 15.8;

    /** Dependent-access latency of @p level (before contention). */
    double
    latency(HitLevel level) const
    {
        switch (level) {
          case HitLevel::L1:
            return l1Hit;
          case HitLevel::L2:
            return l2Hit;
          case HitLevel::SfTransfer:
            return sfTransfer;
          case HitLevel::Llc:
            return llcHit;
          case HitLevel::Dram:
            return dram;
        }
        return dram;
    }

    /** Overlapped marginal cost of @p level (before contention). */
    double
    throughputCost(HitLevel level) const
    {
        switch (level) {
          case HitLevel::L1:
            return thrL1;
          case HitLevel::L2:
            return thrL2;
          case HitLevel::SfTransfer:
            return thrLlc;
          case HitLevel::Llc:
            return thrLlc;
          case HitLevel::Dram:
            return thrDram;
        }
        return thrDram;
    }
};

/**
 * Measured-latency classification thresholds an attacker would
 * calibrate.  "Measured" includes timedOverhead.
 */
struct LatencyThresholds
{
    /**
     * Above this, the line was not in the prober's private caches:
     * its SF entry is gone (LLC hit or DRAM).  Between l2Hit and
     * llcHit measured latencies.
     */
    double privateMiss = 135.0;

    /**
     * Above this, the line was not even in the LLC (DRAM fetch).
     * Between llcHit and dram measured latencies, with headroom for
     * cloud contention on the LLC path.
     */
    double llcMiss = 290.0;
};

} // namespace llcf

#endif // LLCF_SIM_TIMING_HH
