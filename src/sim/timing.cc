#include "timing.hh"

namespace llcf {

const char *
hitLevelName(HitLevel level)
{
    switch (level) {
      case HitLevel::L1:
        return "L1";
      case HitLevel::L2:
        return "L2";
      case HitLevel::SfTransfer:
        return "SF-transfer";
      case HitLevel::Llc:
        return "LLC";
      case HitLevel::Dram:
        return "DRAM";
    }
    return "?";
}

double
TimingParams::latency(HitLevel level) const
{
    switch (level) {
      case HitLevel::L1:
        return l1Hit;
      case HitLevel::L2:
        return l2Hit;
      case HitLevel::SfTransfer:
        return sfTransfer;
      case HitLevel::Llc:
        return llcHit;
      case HitLevel::Dram:
        return dram;
    }
    return dram;
}

double
TimingParams::throughputCost(HitLevel level) const
{
    switch (level) {
      case HitLevel::L1:
        return thrL1;
      case HitLevel::L2:
        return thrL2;
      case HitLevel::SfTransfer:
        return thrLlc;
      case HitLevel::Llc:
        return thrLlc;
      case HitLevel::Dram:
        return thrDram;
    }
    return thrDram;
}

} // namespace llcf
