#include "timing.hh"

namespace llcf {

const char *
hitLevelName(HitLevel level)
{
    switch (level) {
      case HitLevel::L1:
        return "L1";
      case HitLevel::L2:
        return "L2";
      case HitLevel::SfTransfer:
        return "SF-transfer";
      case HitLevel::Llc:
        return "LLC";
      case HitLevel::Dram:
        return "DRAM";
    }
    return "?";
}

} // namespace llcf
