#include "configs.hh"

#include "common/log.hh"
#include "common/rng.hh"

namespace llcf {

SliceHashParams
MachineConfig::sliceHashParams(std::uint64_t machine_seed) const
{
    return SliceHashParams::opaque(llc.slices,
                                   sliceSalt ^ mix64(machine_seed));
}

void
MachineConfig::check() const
{
    l1.check();
    l2.check();
    llc.check();
    sf.check();
    if (cores < 1)
        fatal("machine needs at least one core");
    if (llc.sets != sf.sets || llc.slices != sf.slices)
        fatal("LLC and SF must share set count and slice count "
              "(they share the set mapping and slice hash)");
    if (sf.ways <= llc.ways)
        warn("SF ways (%u) not greater than LLC ways (%u); an SF "
             "eviction set is then not automatically an LLC one",
             sf.ways, llc.ways);
    // L2 set-index bits must be a subset of the LLC set-index bits for
    // L2-driven candidate filtering (Section 5.1) to be sound.
    if (l2.sets > llc.sets)
        fatal("L2 has more sets per slice than the LLC; candidate "
              "filtering assumptions would break");
    // The SF-extension test keeps W_SF + 1 congruent lines (all in
    // one L2 set) resident; the L2 needs headroom for that.
    if (l2.ways < sf.ways + 2)
        warn("L2 ways (%u) below SF ways + 2 (%u); SF eviction-set "
             "extension will thrash its own working set",
             l2.ways, sf.ways + 2);
    defense.check(llc.ways, sf.ways, cores);
}

MachineConfig &
MachineConfig::withSharedRepl(ReplKind kind)
{
    llcRepl = kind;
    sfRepl = kind;
    return *this;
}

MachineConfig
skylakeSp(unsigned slices)
{
    MachineConfig cfg;
    cfg.name = "skylake-sp-" + std::to_string(slices) + "sl";
    cfg.cores = 4;
    cfg.l1 = CacheGeometry{8, 64, 1};
    cfg.l2 = CacheGeometry{16, 1024, 1};
    cfg.llc = CacheGeometry{11, 2048, slices};
    cfg.sf = CacheGeometry{12, 2048, slices};
    cfg.check();
    return cfg;
}

MachineConfig
iceLakeSp(unsigned slices)
{
    MachineConfig cfg;
    cfg.name = "icelake-sp-" + std::to_string(slices) + "sl";
    cfg.cores = 4;
    cfg.l1 = CacheGeometry{12, 64, 1};
    cfg.l2 = CacheGeometry{20, 1024, 1};
    cfg.llc = CacheGeometry{12, 2048, slices};
    cfg.sf = CacheGeometry{16, 2048, slices};
    // Ice Lake has slightly different latencies; keep the same model
    // but a marginally slower L2 and LLC.
    cfg.timing.l2Hit = 16.0;
    cfg.timing.llcHit = 60.0;
    cfg.check();
    return cfg;
}

MachineConfig
tinyTest(unsigned slices)
{
    MachineConfig cfg;
    cfg.name = "tiny-" + std::to_string(slices) + "sl";
    cfg.cores = 3;
    // Small but with non-trivial uncertainty: the L2 has 1 and the
    // LLC 2 page-uncontrollable index bits (vs 4 and 5 on Skylake-SP).
    // Like on Skylake, the L2 must hold an SF set's worth of lines
    // plus slack (the SF-extension working set lives in one L2 set).
    cfg.l1 = CacheGeometry{2, 8, 1};
    cfg.l2 = CacheGeometry{8, 128, 1};
    cfg.llc = CacheGeometry{4, 256, slices};
    cfg.sf = CacheGeometry{5, 256, slices};
    cfg.physFrames = 1u << 14; // 64 MB
    cfg.check();
    return cfg;
}

MachineConfig
scaledSkylake(unsigned slices)
{
    MachineConfig cfg = skylakeSp(slices);
    cfg.name = "skylake-scaled-" + std::to_string(slices) + "sl";
    return cfg;
}

MachineConfig
scaledIceLake(unsigned slices)
{
    MachineConfig cfg = iceLakeSp(slices);
    cfg.name = "icelake-scaled-" + std::to_string(slices) + "sl";
    return cfg;
}

} // namespace llcf
