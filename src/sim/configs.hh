/**
 * @file
 * Machine configurations: the paper's host microarchitectures plus
 * scaled-down variants for fast tests and benches.
 */

#ifndef LLCF_SIM_CONFIGS_HH
#define LLCF_SIM_CONFIGS_HH

#include <cstdint>
#include <string>

#include "cache/geometry.hh"
#include "cache/replacement.hh"
#include "cache/slice_hash.hh"
#include "defense/defense.hh"
#include "sim/timing.hh"

namespace llcf {

/**
 * Full static description of a simulated host.
 */
struct MachineConfig
{
    std::string name = "skylake-sp";

    /** Number of physical cores; the attack needs >= 3 (main, helper,
     *  victim). */
    unsigned cores = 3;

    CacheGeometry l1{8, 64, 1};
    CacheGeometry l2{16, 1024, 1};
    CacheGeometry llc{11, 2048, 28};
    CacheGeometry sf{12, 2048, 28};

    ReplKind l1Repl = ReplKind::LRU;
    ReplKind l2Repl = ReplKind::LRU;
    ReplKind llcRepl = ReplKind::LRU;
    ReplKind sfRepl = ReplKind::LRU;

    /**
     * Reuse-predictor probability that a private line evicted because
     * of an SF/L2 eviction is inserted into the LLC (Section 2.3).
     */
    double sfEvictToLlcProb = 0.3;

    /** Physical memory pool in 4 kB frames. */
    std::size_t physFrames = 1u << 20; // 4 GB

    /** Key of the per-machine opaque slice hash. */
    std::uint64_t sliceSalt = 0x5eed5a17;

    /** Host-side defenses; default-constructed = all off. */
    DefenseConfig defense;

    TimingParams timing;

    /** Validate geometric invariants the attack techniques rely on. */
    void check() const;

    /**
     * The slice-hash family member this host instantiates: the opaque
     * hash over the LLC slice count, keyed by the config salt mixed
     * with the per-machine @p machine_seed (so two simulated hosts of
     * the same model still have distinct slice mappings).  Machine
     * builds its hash from exactly this record, and the family goldens
     * in tests/test_calib.cc pin the round-trip bit-for-bit.
     */
    SliceHashParams sliceHashParams(std::uint64_t machine_seed) const;

    /**
     * Set the replacement policy of the shared structures (LLC + SF)
     * — the axis the paper's policy ablation varies.  Returns *this
     * for chaining onto the factory calls.
     */
    MachineConfig &withSharedRepl(ReplKind kind);
};

/**
 * Intel Skylake-SP / Cascade Lake-SP (Table 2): 8-way 32 kB L1,
 * 16-way 1 MB L2, 11-way 2,048-set LLC slices, 12-way 2,048-set SF
 * slices.  Cloud Run hosts commonly have 28 slices (Xeon Platinum
 * 8173M); the paper's local box has 22 (Xeon Gold 6152).
 */
MachineConfig skylakeSp(unsigned slices = 28);

/**
 * Intel Ice Lake-SP (Section 5.3.2): 20-way 1.25 MB L2, 16-way SF,
 * 26 slices on the Xeon Gold 5320.
 */
MachineConfig iceLakeSp(unsigned slices = 26);

/**
 * A miniature machine for unit tests: same structural invariants
 * (L2 index bits subset of LLC index bits, SF ways > LLC ways) at a
 * fraction of the size.
 */
MachineConfig tinyTest(unsigned slices = 2);

/**
 * Skylake-like machine scaled to fewer slices for fast benches;
 * per-slice geometry and timing stay faithful.
 */
MachineConfig scaledSkylake(unsigned slices);

/**
 * Ice Lake-like machine scaled to fewer slices for fast benches;
 * per-slice geometry and timing stay faithful.  Exercises the
 * non-power-of-two way counts (20-way L2, 12-way LLC) the Skylake
 * variant does not.
 */
MachineConfig scaledIceLake(unsigned slices);

} // namespace llcf

#endif // LLCF_SIM_CONFIGS_HH
