#include "builder.hh"

#include <algorithm>

#include "common/flat_set.hh"
#include "common/log.hh"

namespace llcf {

EvictionSetBuilder::EvictionSetBuilder(AttackSession &session,
                                       PruneAlgo algo, bool use_filter)
    : session_(session),
      pruner_(makePruner(algo)),
      useFilter_(use_filter),
      filter_(session)
{
}

std::optional<std::vector<Addr>>
EvictionSetBuilder::extendToSf(Addr ta, const std::vector<Addr> &llc_set,
                               const std::vector<Addr> &cands,
                               Cycles deadline)
{
    const TopologyView &topo = session_.topology();
    const unsigned w_llc = static_cast<unsigned>(llc_set.size());
    // W_SF - W_LLC further congruent addresses are needed: 1 on
    // Skylake-SP (12- vs 11-way) but 4 on Ice Lake-SP (16- vs
    // 12-way).  LLC and SF share the set mapping and slice hash, so
    // LLC-congruence is the membership test.
    const unsigned needed =
        topo.wSf > w_llc ? topo.wSf - w_llc : 1;

    FlatSet<Addr> exclude(llc_set.begin(), llc_set.end());
    exclude.insert(ta);
    std::vector<Addr> extras;
    // Substitution probe: llc_set with its last member swapped for the
    // candidate — the set evicts ta again iff the candidate is
    // congruent too.
    std::vector<Addr> probe = llc_set;
    for (Addr x : cands) {
        if (session_.expired(deadline))
            return std::nullopt;
        if (exclude.count(x))
            continue;
        probe.back() = x;
        // Two consecutive positives damp noise-induced false
        // congruence, as in the per-candidate SF test this replaces.
        if (!session_.testEvictionLlcParallel(ta, probe, probe.size()) ||
            !session_.testEvictionLlcParallel(ta, probe, probe.size()))
            continue;
        extras.push_back(x);
        exclude.insert(x);
        if (extras.size() < needed)
            continue;
        // Full-set confirmation against the SF; two consecutive
        // positives damp noise-induced false hits.
        std::vector<Addr> full = llc_set;
        full.insert(full.end(), extras.begin(), extras.end());
        if (session_.testEvictionSfParallel(ta, full, full.size()) &&
            session_.testEvictionSfParallel(ta, full, full.size())) {
            return extras;
        }
        // Confirmation failed: drop the latest pick and keep looking.
        exclude.erase(extras.back());
        extras.pop_back();
    }
    return std::nullopt;
}

std::optional<BuiltEvictionSet>
EvictionSetBuilder::attemptBuild(Addr ta, const std::vector<Addr> &cands,
                                 Cycles deadline, unsigned *backtracks)
{
    const unsigned w_llc = session_.topology().wLlc;

    std::vector<Addr> working = cands;
    session_.rng().shuffle(working);

    PruneResult pr = pruner_->prune(session_, ta, std::move(working),
                                    w_llc, deadline, TestTarget::Llc);
    if (backtracks)
        *backtracks += pr.backtracks;
    if (!pr.success)
        return std::nullopt;

    auto ext = extendToSf(ta, pr.evset, cands, deadline);
    if (!ext)
        return std::nullopt;

    BuiltEvictionSet evset;
    evset.target = ta;
    evset.llcSet = pr.evset;
    evset.sfSet = pr.evset;
    evset.sfSet.insert(evset.sfSet.end(), ext->begin(), ext->end());
    return evset;
}

bool
EvictionSetBuilder::validateGroundTruth(const BuiltEvictionSet &evset)
    const
{
    const Machine &m = session_.machine();
    if (evset.sfSet.size() != m.config().sf.ways)
        return false;
    const unsigned target_set = m.sharedSetOf(evset.target);
    for (Addr a : evset.sfSet) {
        if (m.sharedSetOf(a) != target_set)
            return false;
    }
    return true;
}

BuildOutcome
EvictionSetBuilder::buildForTarget(Addr ta, std::vector<Addr> cands)
{
    BuildOutcome out;
    Machine &m = session_.machine();
    const Cycles start = m.now();
    const Cycles deadline = start + session_.config().evsetBudget;

    std::vector<Addr> working = std::move(cands);
    bool filtered = false;
    for (unsigned a = 0; a < session_.config().maxAttempts; ++a) {
        if (session_.expired(deadline))
            break;
        ++out.attempts;

        if (useFilter_ && !filtered) {
            auto l2set = filter_.buildL2EvictionSet(ta, working,
                                                    deadline);
            if (!l2set)
                continue; // attempt consumed by a failed filter build
            working = filter_.filter(*l2set, working);
            filtered = true;
            if (working.size() < session_.topology().wSf)
                break; // filtering left too few candidates
        }

        auto built = attemptBuild(ta, working, deadline,
                                  &out.backtracks);
        if (built) {
            out.success = true;
            out.evset = std::move(*built);
            out.groundTruthValid = validateGroundTruth(out.evset);
            break;
        }
    }
    out.elapsed = m.now() - start;
    return out;
}

Cycles
EvictionSetBuilder::partitionBudget() const
{
    const auto &l2 = session_.machine().config().l2;
    return session_.config().evsetBudget * (4 * l2.uncertainty() + 16);
}

bool
EvictionSetBuilder::coveredByExisting(
    Addr ta, const std::vector<BuiltEvictionSet> &sets)
{
    if (sets.empty())
        return false;
    std::vector<Addr> union_lines;
    union_lines.reserve(sets.size() * sets.front().sfSet.size());
    for (const auto &s : sets) {
        union_lines.insert(union_lines.end(), s.sfSet.begin(),
                           s.sfSet.end());
    }
    return session_.testEvictionLlcParallel(ta, union_lines,
                                            union_lines.size());
}

void
EvictionSetBuilder::buildClass(std::vector<Addr> members,
                               BulkOutcome &out)
{
    Machine &m = session_.machine();
    const unsigned w_sf = session_.topology().wSf;
    session_.rng().shuffle(members);

    std::vector<BuiltEvictionSet> class_sets;
    FlatSet<Addr> consumed;

    for (std::size_t idx = 0; idx < members.size(); ++idx) {
        const Addr ta = members[idx];
        if (consumed.count(ta))
            continue;
        // Remaining candidate pool for this target.
        std::vector<Addr> working;
        working.reserve(members.size() - idx);
        for (std::size_t j = idx + 1; j < members.size(); ++j) {
            if (!consumed.count(members[j]))
                working.push_back(members[j]);
        }
        if (working.size() < w_sf)
            break; // ran out of candidates

        if (coveredByExisting(ta, class_sets))
            continue; // this SF set already has an eviction set

        const Cycles deadline = m.now() + session_.config().evsetBudget;
        for (unsigned a = 0; a < session_.config().maxAttempts; ++a) {
            if (session_.expired(deadline))
                break;
            auto built = attemptBuild(ta, working, deadline, nullptr);
            if (built) {
                for (Addr used : built->sfSet)
                    consumed.insert(used);
                class_sets.push_back(std::move(*built));
                break;
            }
        }
    }

    // Account the class results, deduplicating by ground-truth set.
    FlatSet<unsigned> seen_sets;
    for (const auto &s : out.evsets)
        seen_sets.insert(m.sharedSetOf(s.target));
    for (auto &s : class_sets) {
        ++out.builtSets;
        if (validateGroundTruth(s) &&
            !seen_sets.count(m.sharedSetOf(s.target))) {
            ++out.validSets;
            seen_sets.insert(m.sharedSetOf(s.target));
        }
        out.evsets.push_back(std::move(s));
    }
}

BulkOutcome
EvictionSetBuilder::buildAtLineIndex(const CandidatePool &pool,
                                     unsigned line_index)
{
    Machine &m = session_.machine();
    BulkOutcome out;
    // The attacker's own coverage expectation: its (possibly
    // calibrated) uncertainty U, not the oracle's.
    out.expectedSets = session_.topology().uncertainty();
    const Cycles start = m.now();

    std::vector<Addr> cands = pool.candidatesAt(line_index);
    if (useFilter_) {
        // The partition deadline must stay far above the undefended
        // cost (so it never trips and changes bytes) but finite: a
        // defense that starves L2 priming (an SF partition back-
        // invalidating primed lines) otherwise leaves the pruner
        // churning inside an hour-scale horizon instead of failing
        // the build explicitly.
        const Cycles far = m.now() + partitionBudget();
        auto classes = filter_.partition(std::move(cands), far);
        for (auto &cls : classes)
            buildClass(std::move(cls.members), out);
    } else {
        buildClass(std::move(cands), out);
    }
    out.elapsed = m.now() - start;
    return out;
}

BulkOutcome
EvictionSetBuilder::buildWholeSystem(const CandidatePool &pool,
                                     std::vector<unsigned> line_indices)
{
    Machine &m = session_.machine();
    if (line_indices.empty()) {
        line_indices.resize(kLinesPerPage);
        for (unsigned i = 0; i < kLinesPerPage; ++i)
            line_indices[i] = i;
    }

    BulkOutcome out;
    out.expectedSets = session_.topology().uncertainty() *
                       static_cast<unsigned>(line_indices.size());
    const Cycles start = m.now();

    if (useFilter_) {
        // Build the L2 classes once at line index 0 and reuse them at
        // every other offset via same-page shifts (Section 5.3.1).
        // Same finite horizon as buildAtLineIndex.
        const Cycles far = m.now() + partitionBudget();
        auto base_classes = filter_.partition(pool.candidatesAt(0), far);
        for (unsigned li : line_indices) {
            auto classes = CandidateFilter::shiftClasses(base_classes,
                                                         li);
            for (auto &cls : classes)
                buildClass(std::move(cls.members), out);
        }
    } else {
        for (unsigned li : line_indices)
            buildClass(pool.candidatesAt(li), out);
    }
    out.elapsed = m.now() - start;
    return out;
}

} // namespace llcf
