#include "algorithms.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/options.hh"

namespace llcf {

const char *
pruneAlgoName(PruneAlgo algo)
{
    switch (algo) {
      case PruneAlgo::Gt:
        return "Gt";
      case PruneAlgo::GtOp:
        return "GtOp";
      case PruneAlgo::Ps:
        return "Ps";
      case PruneAlgo::PsOp:
        return "PsOp";
      case PruneAlgo::BinS:
        return "BinS";
    }
    return "?";
}

bool
parsePruneAlgo(const std::string &name, PruneAlgo &out)
{
    for (PruneAlgo algo : kAllPruneAlgos) {
        if (equalsIgnoreCase(name, pruneAlgoName(algo))) {
            out = algo;
            return true;
        }
    }
    return false;
}

bool
verifyEvictionSet(AttackSession &session, Addr ta,
                  const std::vector<Addr> &evset, unsigned votes,
                  TestTarget target)
{
    unsigned positive = 0;
    for (unsigned v = 0; v < votes; ++v) {
        if (session.testEviction(target, ta, evset, evset.size()))
            ++positive;
    }
    return positive * 2 > votes;
}

// ------------------------------------------------------ group testing

PruneResult
GroupTestPruner::prune(AttackSession &session, Addr ta,
                       std::vector<Addr> cands, unsigned target_ways,
                       Cycles deadline, TestTarget target)
{
    PruneResult res;
    const unsigned W = target_ways;
    std::vector<Addr> set = std::move(cands);
    std::vector<std::vector<Addr>> removed_stack;

    if (set.size() < W)
        return res;

    // The full candidate set must evict Ta to begin with.
    if (!session.testEviction(target, ta, set, set.size()))
        return res;

    std::vector<Addr> trial;
    while (set.size() > W) {
        if (session.expired(deadline))
            return res;

        const unsigned G = std::min<std::size_t>(W + 1, set.size());
        const std::size_t n = set.size();

        // Contiguous group boundaries.
        std::vector<std::size_t> bounds(G + 1);
        for (unsigned g = 0; g <= G; ++g)
            bounds[g] = n * g / G;

        std::vector<bool> kept(G, true);
        bool any_removed = false;
        for (unsigned g = 0; g < G; ++g) {
            if (session.expired(deadline))
                return res;
            // Trial = all kept groups except g.
            trial.clear();
            for (unsigned h = 0; h < G; ++h) {
                if (h == g || !kept[h])
                    continue;
                trial.insert(trial.end(), set.begin() + bounds[h],
                             set.begin() + bounds[h + 1]);
            }
            if (trial.size() < W)
                continue;
            if (session.testEviction(target, ta, trial, trial.size())) {
                kept[g] = false;
                removed_stack.emplace_back(set.begin() + bounds[g],
                                           set.begin() + bounds[g + 1]);
                any_removed = true;
                if (earlyTermination_)
                    break;
            }
        }

        if (any_removed) {
            trial.clear();
            for (unsigned h = 0; h < G; ++h) {
                if (!kept[h])
                    continue;
                trial.insert(trial.end(), set.begin() + bounds[h],
                             set.begin() + bounds[h + 1]);
            }
            set = trial;
            continue;
        }

        // Stuck: a previous removal likely discarded congruent
        // addresses on a false-positive test.  Backtrack by restoring
        // the most recently removed group [Vila et al.].
        if (res.backtracks >= session.config().maxBacktracks)
            return res;
        ++res.backtracks;
        if (removed_stack.empty())
            return res;
        set.insert(set.end(), removed_stack.back().begin(),
                   removed_stack.back().end());
        removed_stack.pop_back();
    }

    if (set.size() != W)
        return res;
    if (!verifyEvictionSet(session, ta, set, 3, target))
        return res;
    res.success = true;
    res.evset = std::move(set);
    return res;
}

// -------------------------------------------------------- Prime+Scope

PruneResult
PrimeScopePruner::prune(AttackSession &session, Addr ta,
                        std::vector<Addr> cands, unsigned target_ways,
                        Cycles deadline, TestTarget target)
{
    PruneResult res;
    const unsigned W = target_ways;
    if (cands.size() < W)
        return res;

    std::vector<Addr> evset;
    evset.reserve(W);

    // Multiple passes over the candidate list are allowed: with an
    // LRU-like target, each detection requires ~W congruent
    // insertions after the previous re-prime, so a single pass finds
    // only a few members.
    const bool llc_target = target == TestTarget::Llc;
    if (llc_target)
        session.shareLine(ta);
    else
        session.machine().load(session.config().mainCore, ta);
    std::size_t i = 0;
    std::size_t steps = 0;
    const std::size_t max_steps = cands.size() * 64;
    while (evset.size() < W && steps < max_steps) {
        if ((steps & 0x3f) == 0 && session.expired(deadline))
            return res;
        ++steps;
        if (i >= cands.size())
            i = 0;
        const Addr candidate = cands[i];

        // Skip already-accepted members.
        if (std::find(evset.begin(), evset.end(), candidate) !=
            evset.end()) {
            ++i;
            continue;
        }

        if (llc_target)
            session.seqSharedAccess(candidate);
        else
            session.machine().chaseLoad(session.config().mainCore,
                                        candidate);
        const bool evicted = llc_target ? session.probeLlcMiss(ta)
                                        : session.probePrivateMiss(ta);
        if (evicted) {
            // Ta left the LLC: the last access completed an eviction,
            // so the last accessed candidate is congruent.
            evset.push_back(candidate);
            if (evset.size() == W)
                break;
            // Re-prime: the detection probe refetched Ta privately;
            // restore it to the target structure.
            if (llc_target)
                session.shareLine(ta);
            if (recharge_) {
                // PsOp (Appendix A): recharge the upcoming scan window
                // with candidates from the back of the list.
                const std::size_t window =
                    std::min<std::size_t>(cands.size() / 4,
                                          cands.size() - i - 1);
                if (window > 1) {
                    std::rotate(cands.begin() + i + 1,
                                cands.end() - window, cands.end());
                }
            }
        }
        ++i;
    }

    if (evset.size() != W)
        return res;
    if (!verifyEvictionSet(session, ta, evset, 3, target))
        return res;
    res.success = true;
    res.evset = std::move(evset);
    return res;
}

// ------------------------------------------------------ binary search

PruneResult
BinarySearchPruner::prune(AttackSession &session, Addr ta,
                          std::vector<Addr> cands, unsigned target_ways,
                          Cycles deadline, TestTarget target)
{
    PruneResult res;
    const unsigned W = target_ways;
    const std::size_t N = cands.size();
    if (N < W)
        return res;

    // Figure 4, 0-based: after iteration i, cands[0..i] are congruent
    // and the first UB addresses always contain W congruent addresses.
    std::size_t UB = N;

    // The invariant needs the full set to evict Ta.
    if (!session.testEviction(target, ta, cands, N))
        return res;

    for (unsigned i = 0; i < W; ++i) {
        std::size_t LB = i;     // first i entries are found congruent
        bool redo = true;
        while (redo) {
            redo = false;
            while (UB - LB != 1) {
                if (session.expired(deadline))
                    return res;
                const std::size_t n = (LB + UB) / 2;
                if (session.testEviction(target, ta, cands, n))
                    UB = n;
                else
                    LB = n;
            }
            // cands[UB-1] is the W-th congruent address of the prefix.
            std::swap(cands[i], cands[UB - 1]);

            // Detect the erroneous state a false-positive test causes:
            // the first UB addresses should still evict Ta.
            if (!session.testEviction(target, ta, cands, UB)) {
                if (res.backtracks >= session.config().maxBacktracks)
                    return res;
                ++res.backtracks;
                // Recover by widening UB with a large stride until the
                // prefix evicts again, then redo this iteration.
                const std::size_t stride = std::max<std::size_t>(8, N / 16);
                std::swap(cands[i], cands[UB - 1]); // undo the swap
                while (UB < N) {
                    if (session.expired(deadline))
                        return res;
                    UB = std::min(N, UB + stride);
                    if (session.testEviction(target, ta, cands, UB))
                        break;
                }
                if (UB >= N &&
                    !session.testEviction(target, ta, cands, N)) {
                    return res; // candidate set no longer sufficient
                }
                LB = i;
                redo = true;
            }
        }
    }

    std::vector<Addr> evset(cands.begin(), cands.begin() + W);
    if (!verifyEvictionSet(session, ta, evset, 3, target))
        return res;
    res.success = true;
    res.evset = std::move(evset);
    return res;
}

BlindReduceResult
blindReduceToMinimal(AttackSession &session, Addr ta,
                     std::vector<Addr> cands, Cycles deadline,
                     TestTarget target)
{
    BlindReduceResult out;
    auto test = [&](const std::vector<Addr> &s) {
        ++out.tests;
        return session.testEviction(target, ta, s, s.size());
    };

    // The pool must evict to begin with (one retry damps noise).
    if (cands.empty() || (!test(cands) && !test(cands)))
        return out;

    std::vector<Addr> s = std::move(cands);
    bool changed = true;
    while (changed && !session.expired(deadline)) {
        changed = false;
        // Try removing progressively smaller blocks; a removal
        // sticks iff the remainder still evicts the target.
        for (std::size_t block = s.size() / 2; block >= 1;
             block /= 2) {
            std::size_t i = 0;
            while (i < s.size() && s.size() > block) {
                if (session.expired(deadline))
                    return out;
                const std::size_t cut = std::min(block, s.size() - i);
                std::vector<Addr> t;
                t.reserve(s.size() - cut);
                t.insert(t.end(), s.begin(),
                         s.begin() + static_cast<long>(i));
                t.insert(t.end(),
                         s.begin() + static_cast<long>(i + cut),
                         s.end());
                if (!t.empty() && test(t)) {
                    s = std::move(t);
                    changed = true;
                } else {
                    i += cut;
                }
            }
        }
    }

    // Two consecutive positives confirm the survivor still evicts —
    // a reduction broken by a noise-lucky removal fails here instead
    // of reporting a too-small "associativity".
    if (session.expired(deadline) || !test(s) || !test(s))
        return out;
    out.success = true;
    out.evset = std::move(s);
    return out;
}

std::unique_ptr<Pruner>
makePruner(PruneAlgo algo)
{
    switch (algo) {
      case PruneAlgo::Gt:
        return std::make_unique<GroupTestPruner>(true);
      case PruneAlgo::GtOp:
        return std::make_unique<GroupTestPruner>(false);
      case PruneAlgo::Ps:
        return std::make_unique<PrimeScopePruner>(false);
      case PruneAlgo::PsOp:
        return std::make_unique<PrimeScopePruner>(true);
      case PruneAlgo::BinS:
        return std::make_unique<BinarySearchPruner>();
    }
    panic("unknown pruning algorithm");
}

} // namespace llcf
