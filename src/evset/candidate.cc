#include "candidate.hh"

#include <cmath>

namespace llcf {

CandidatePool::CandidatePool(AttackSession &session, std::size_t pages)
{
    AddressSpace &space = session.space();
    const Addr base = space.mmapAnon(pages * kPageBytes);
    framePa_ = space.framesOf(base, pages * kPageBytes);
}

std::vector<Addr>
CandidatePool::candidatesAt(unsigned line_index) const
{
    std::vector<Addr> out;
    out.reserve(framePa_.size());
    for (std::size_t p = 0; p < framePa_.size(); ++p)
        out.push_back(at(p, line_index));
    return out;
}

std::vector<Addr>
CandidatePool::shiftToLineIndex(const std::vector<Addr> &at_zero,
                                unsigned line_index)
{
    std::vector<Addr> out;
    out.reserve(at_zero.size());
    const Addr delta = static_cast<Addr>(line_index) << kLineBits;
    for (Addr a : at_zero)
        out.push_back((a & ~static_cast<Addr>(kPageBytes - 1)) | delta);
    return out;
}

std::size_t
CandidatePool::requiredPages(const Machine &machine, double factor)
{
    const auto &sf = machine.config().sf;
    return static_cast<std::size_t>(
        std::ceil(factor * sf.uncertainty() * sf.ways));
}

std::size_t
CandidatePool::requiredPagesBlind(unsigned assumed_uncertainty,
                                  unsigned assumed_ways, double factor)
{
    return static_cast<std::size_t>(
        std::ceil(factor * assumed_uncertainty * assumed_ways));
}

} // namespace llcf
