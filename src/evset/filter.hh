/**
 * @file
 * L2-driven candidate address filtering (paper Section 5.1).
 *
 * Because the L2 set-index bits (PA 15..6) are a subset of the LLC/SF
 * set-index bits (PA 16..6), two addresses that are not congruent in
 * the L2 cannot be congruent in the LLC/SF.  An L2 eviction set for
 * the target therefore filters a candidate set down by a factor of
 * U_L2 (16 on Skylake-SP) before any LLC/SF pruning runs.
 */

#ifndef LLCF_EVSET_FILTER_HH
#define LLCF_EVSET_FILTER_HH

#include <optional>
#include <vector>

#include "evset/algorithms.hh"
#include "evset/session.hh"

namespace llcf {

/**
 * Builds L2 eviction sets and uses them to filter candidates.
 */
class CandidateFilter
{
  public:
    /** One L2-congruence class of the candidate pool. */
    struct L2Class
    {
        std::vector<Addr> l2Evset;  //!< W_L2 L2-congruent addresses
        std::vector<Addr> members;  //!< candidates congruent in L2
    };

    explicit CandidateFilter(AttackSession &session);

    /**
     * Construct an L2 eviction set for @p ta using the binary-search
     * pruner on the private-L2 TestEviction predicate.
     *
     * @param cands Candidate addresses at ta's page offset; only the
     *              first ~3*U_L2*W_L2 are used.
     * @return the eviction set, or nullopt on failure/timeout.
     */
    std::optional<std::vector<Addr>> buildL2EvictionSet(
        Addr ta, const std::vector<Addr> &cands, Cycles deadline);

    /**
     * Keep only the candidates the L2 eviction set evicts, i.e. the
     * ones L2-congruent with the eviction set's target.
     */
    std::vector<Addr> filter(const std::vector<Addr> &l2_evset,
                             const std::vector<Addr> &cands);

    /**
     * Partition a candidate pool into its L2-congruence classes,
     * building one L2 eviction set per class — the bulk strategy of
     * Section 5.3.1 (at most U_L2 filtering executions per offset).
     */
    std::vector<L2Class> partition(std::vector<Addr> cands,
                                   Cycles deadline);

    /**
     * Derive the classes at another line index from classes built at
     * line index 0, exploiting same-page offset shifts preserving L2
     * congruence (Section 5.3.1) — no further filtering needed.
     */
    static std::vector<L2Class> shiftClasses(
        const std::vector<L2Class> &at_zero, unsigned line_index);

  private:
    AttackSession &session_;
    BinarySearchPruner pruner_;
};

} // namespace llcf

#endif // LLCF_EVSET_FILTER_HH
