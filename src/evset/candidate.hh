/**
 * @file
 * Candidate-set construction (paper Section 2.2.1, step 1).
 *
 * The attacker mmaps a large pool of 4 kB pages; each page contributes
 * one candidate address per page offset.  Because the kernel assigns
 * physical frames the attacker cannot observe, a candidate's L2/LLC/SF
 * set is unknown up to the cache uncertainty U — which is exactly why
 * candidate sets must hold ~factor * U * W addresses.
 */

#ifndef LLCF_EVSET_CANDIDATE_HH
#define LLCF_EVSET_CANDIDATE_HH

#include <vector>

#include "evset/session.hh"

namespace llcf {

/**
 * A pool of attacker pages providing candidate addresses at any page
 * offset.  Addresses are pre-translated once (mmap + first touch) and
 * then treated as opaque pointers.
 */
class CandidatePool
{
  public:
    /**
     * Allocate @p pages pages in @p session's address space.
     */
    CandidatePool(AttackSession &session, std::size_t pages);

    /** Number of pages (candidates per offset). */
    std::size_t pages() const { return framePa_.size(); }

    /** Candidate address of page @p page at cache-line @p line_index. */
    Addr
    at(std::size_t page, unsigned line_index) const
    {
        return framePa_[page] |
               (static_cast<Addr>(line_index) << kLineBits);
    }

    /** All candidates at a given line index (page offset / 64). */
    std::vector<Addr> candidatesAt(unsigned line_index) const;

    /**
     * Derive candidates at @p line_index from a list of candidates at
     * line index 0 by adding the offset delta — the Section 5.3.1
     * trick: same-page shifts preserve L2 congruence.
     */
    static std::vector<Addr> shiftToLineIndex(
        const std::vector<Addr> &at_zero, unsigned line_index);

    /**
     * Pool size needed for one construction campaign on @p machine:
     * ceil(factor * U_sf * W_sf) pages.  Oracle sizing — reads the
     * machine's true geometry; blind attackers size with
     * requiredPagesBlind instead.
     */
    static std::size_t requiredPages(const Machine &machine,
                                     double factor);

    /**
     * Pool size for a blind attacker who has not calibrated yet:
     * ceil(factor * assumed_uncertainty * assumed_ways) pages from the
     * attacker's prior upper bounds on U and W (a cloud tenant knows
     * the host family from cpuid, not the exact part).  Oversizing
     * only costs memory; undersizing makes Step 0 and Step 1 fail.
     */
    static std::size_t requiredPagesBlind(unsigned assumed_uncertainty,
                                          unsigned assumed_ways,
                                          double factor);

  private:
    std::vector<Addr> framePa_; //!< page-aligned translated bases
};

} // namespace llcf

#endif // LLCF_EVSET_CANDIDATE_HH
