/**
 * @file
 * Attacker-side context: which cores the attacker owns, calibrated
 * latency thresholds, construction budgets, and the TestEviction
 * primitives every pruning algorithm builds on (paper Section 4.1).
 *
 * Discipline: attack code holds translated physical line addresses as
 * opaque pointer values (the simulator's stand-in for the attacker's
 * virtual-address pointers) and only ever passes them back to Machine
 * operations.  It never inspects PA bits — the information an
 * unprivileged attacker does not have.
 */

#ifndef LLCF_EVSET_SESSION_HH
#define LLCF_EVSET_SESSION_HH

#include <span>
#include <vector>

#include "sim/machine.hh"

namespace llcf {

/** Which structure a generic TestEviction targets. */
enum class TestTarget { Llc, PrivateL2 };

/**
 * The attacker's view of the *shared* cache topology — the four
 * parameters every eviction-set procedure consumes.  In oracle mode
 * the view is copied from MachineConfig; in blind mode it starts
 * unknown and is produced by the Step-0 TopologyProber (src/calib/)
 * from timing observations alone.  Private-cache (L1/L2) geometry is
 * deliberately absent: the attacker can query its own core's caches
 * through cpuid, so the L2 filter keeps reading the config.
 */
struct TopologyView
{
    unsigned wLlc = 0;   //!< LLC associativity W_LLC
    unsigned wSf = 0;    //!< SF associativity W_SF
    unsigned slices = 1; //!< LLC/SF slice count
    /** Shared set-index bits the page offset does not control. */
    unsigned uncontrolledIndexBits = 0;
    bool fromOracle = false; //!< true when copied from MachineConfig

    /** Cache uncertainty U: congruence classes per page offset. */
    unsigned
    uncertainty() const
    {
        return (1u << uncontrolledIndexBits) * slices;
    }

    /** Shared sets per slice implied by the view (index bits =
     *  uncontrolled bits + the 6 page-controlled ones). */
    unsigned
    setsPerSlice() const
    {
        return 1u << (uncontrolledIndexBits + (kPageBits - kLineBits));
    }

    /** The oracle view of @p cfg's shared structures. */
    static TopologyView fromConfig(const MachineConfig &cfg);
};

/** Knobs of the attacker program. */
struct AttackerConfig
{
    unsigned mainCore = 0;   //!< thread running the attack logic
    unsigned helperCore = 1; //!< concurrent helper (Section 4.2)

    /** Seed of the attacker's own randomness (shuffles, retries). */
    std::uint64_t seed = 1;

    LatencyThresholds thresholds;

    /** Per-eviction-set construction attempts (paper: 10). */
    unsigned maxAttempts = 10;

    /** Backtracks allowed per attempt (paper: 20 for group testing). */
    unsigned maxBacktracks = 20;

    /** Virtual-time budget per eviction set; Table 3 uses 1,000 ms,
     *  Table 4 (with candidate filtering) uses 100 ms. */
    Cycles evsetBudget = msToCycles(1000.0);

    /** Candidate set size factor: N = factor * U * W (paper: 3). */
    double candidateFactor = 3.0;

    /**
     * Blind-topology mode: the session starts with no shared-geometry
     * knowledge, and consulting topology() before adoptTopology()
     * is fatal.  The oracle default mirrors the paper's local-machine
     * experiments where the part number (and thus the geometry) is
     * known.
     */
    bool blindTopology = false;
};

/**
 * Wraps a Machine with the attacker's primitives and bookkeeping.
 */
class AttackSession
{
  public:
    AttackSession(Machine &machine, const AttackerConfig &cfg);

    Machine &machine() { return machine_; }
    const AttackerConfig &config() const { return cfg_; }
    AddressSpace &space() { return *space_; }
    Rng &rng() { return rng_; }

    /** Number of TestEviction executions so far (all flavours). */
    std::uint64_t testCount() const { return testCount_; }

    // ------------------------------------------------- topology view

    /**
     * The attacker's shared-cache topology.  Fatal when the session is
     * blind and no CalibratedTopology has been adopted yet — attack
     * code structurally cannot fall back to oracle geometry.
     */
    const TopologyView &topology() const;

    /** True once topology() may be consulted. */
    bool topologyKnown() const { return topologyKnown_; }

    /** Install a (calibrated) topology view; fatal on a zero-way one. */
    void adoptTopology(const TopologyView &view);

    // -------------------------------------------------- primitives

    /**
     * Parallel TestEviction against the LLC (shared-line protocol):
     * load the target via main+helper so it is LLC-resident, traverse
     * the first @p n candidates the same way with overlapped accesses,
     * then decide from a timed probe whether the target left the LLC.
     */
    bool testEvictionLlcParallel(Addr ta, std::span<const Addr> cands,
                                 std::size_t n);

    /**
     * Parallel TestEviction against the attacker's private caches /
     * SF (store protocol): returns true iff traversing the first @p n
     * candidates (as stores) pushed the target's SF entry out.
     */
    bool testEvictionSfParallel(Addr ta, std::span<const Addr> cands,
                                std::size_t n);

    /**
     * Parallel TestEviction against the private L2 (plain loads, no
     * helper): returns true iff the target left the private caches.
     */
    bool testEvictionL2Parallel(Addr ta, std::span<const Addr> cands,
                                std::size_t n);

    /** Dispatch to the LLC or private-L2 parallel TestEviction. */
    bool testEviction(TestTarget target, Addr ta,
                      std::span<const Addr> cands, std::size_t n);

    /** Bring a line into the LLC in Shared state (main + helper). */
    void shareLine(Addr pa);

    /** One serialised shared access (Prime+Scope's candidate step). */
    void seqSharedAccess(Addr pa);

    /** Non-promoting timed probe; true iff measured > llcMiss. */
    bool probeLlcMiss(Addr ta);

    /** Timed load; true iff measured > privateMiss (SF entry gone). */
    bool probePrivateMiss(Addr ta);

    /** True iff the wall-clock deadline passed. */
    bool expired(Cycles deadline) const { return machine_.now() > deadline; }

    // ------------------------------------------------ fork snapshots

    /**
     * Attacker-side state that advances while the attack runs; the
     * campaign fork path restores it together with Machine::Snapshot
     * so every forked victim sees the identical attacker.  Topology
     * is not captured: it is fixed once adopted.
     */
    struct Snapshot
    {
        Rng rng;
        std::uint64_t testCount = 0;
        AddressSpace::State space;
    };

    /** Capture attacker RNG, test counter and mappings. */
    Snapshot
    snapshot() const
    {
        return {rng_, testCount_, space_->saveState()};
    }

    /** Restore a state captured on this session. */
    void
    restore(const Snapshot &s)
    {
        rng_ = s.rng;
        testCount_ = s.testCount;
        space_->restoreState(s.space);
    }

  private:
    Machine &machine_;
    AttackerConfig cfg_;
    std::unique_ptr<AddressSpace> space_;
    Rng rng_;
    std::uint64_t testCount_ = 0;
    TopologyView topology_;
    bool topologyKnown_ = false;
};

} // namespace llcf

#endif // LLCF_EVSET_SESSION_HH
