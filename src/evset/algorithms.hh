/**
 * @file
 * Address-pruning algorithms (paper Sections 2.2.1, 5.2, Appendix A).
 *
 * Given a target address Ta and a candidate set containing at least W
 * congruent addresses, a pruner reduces the candidates to a minimal
 * LLC eviction set of W addresses:
 *
 *  - Gt    : group testing [Vila et al., Qureshi] with backtracking
 *            and early termination, using parallel TestEviction.
 *  - GtOp  : the paper's optimised group testing — no early
 *            termination, pruning larger groups per round.
 *  - Ps    : Prime+Scope [Purnal et al.]: sequential scan; after each
 *            candidate access a non-promoting scope probe of Ta tells
 *            whether the last access completed an eviction.
 *  - PsOp  : Prime+Scope with the paper's "recharge" optimisation:
 *            after a congruent address is found, candidates from the
 *            back of the list are moved near the front.
 *  - BinS  : the paper's binary-search pruner (Figure 4) with the
 *            stride-recovery backtracking of Section 5.2.
 */

#ifndef LLCF_EVSET_ALGORITHMS_HH
#define LLCF_EVSET_ALGORITHMS_HH

#include <memory>
#include <string>
#include <vector>

#include "evset/session.hh"

namespace llcf {

/** Selectable pruning algorithms. */
enum class PruneAlgo { Gt, GtOp, Ps, PsOp, BinS };

/** Human-readable algorithm name (paper nomenclature). */
const char *pruneAlgoName(PruneAlgo algo);

/**
 * Parse an algorithm name as printed by pruneAlgoName
 * (case-insensitive).  @return true and fills @p out on a known name.
 */
bool parsePruneAlgo(const std::string &name, PruneAlgo &out);

/** All pruning algorithms, for sweep-style experiments. */
inline constexpr PruneAlgo kAllPruneAlgos[] = {
    PruneAlgo::Gt, PruneAlgo::GtOp, PruneAlgo::Ps, PruneAlgo::PsOp,
    PruneAlgo::BinS};

/** Outcome of one pruning attempt. */
struct PruneResult
{
    bool success = false;
    std::vector<Addr> evset; //!< W addresses believed congruent
    unsigned backtracks = 0;
};

/**
 * Abstract pruning algorithm.  Implementations must stop when the
 * absolute deadline passes and report failure.
 */
class Pruner
{
  public:
    virtual ~Pruner() = default;

    virtual PruneAlgo kind() const = 0;

    /**
     * Reduce @p cands to a minimal eviction set of @p target_ways
     * addresses for the cache set of @p ta in @p target.
     *
     * @param session Attacker context providing TestEviction.
     * @param ta Target address (not included in the eviction set).
     * @param cands Candidate addresses; consumed (reordered freely).
     * @param target_ways Associativity W of the target structure.
     * @param deadline Absolute virtual time to give up at.
     * @param target Structure to evict from (LLC or private L2).
     */
    virtual PruneResult prune(AttackSession &session, Addr ta,
                              std::vector<Addr> cands,
                              unsigned target_ways, Cycles deadline,
                              TestTarget target = TestTarget::Llc) = 0;
};

/** Group testing; @p early_termination distinguishes Gt from GtOp. */
class GroupTestPruner : public Pruner
{
  public:
    explicit GroupTestPruner(bool early_termination)
        : earlyTermination_(early_termination)
    {
    }

    PruneAlgo
    kind() const override
    {
        return earlyTermination_ ? PruneAlgo::Gt : PruneAlgo::GtOp;
    }

    PruneResult prune(AttackSession &session, Addr ta,
                      std::vector<Addr> cands, unsigned target_ways,
                      Cycles deadline,
                      TestTarget target = TestTarget::Llc) override;

  private:
    bool earlyTermination_;
};

/** Prime+Scope; @p recharge distinguishes PsOp from Ps. */
class PrimeScopePruner : public Pruner
{
  public:
    explicit PrimeScopePruner(bool recharge) : recharge_(recharge) {}

    PruneAlgo
    kind() const override
    {
        return recharge_ ? PruneAlgo::PsOp : PruneAlgo::Ps;
    }

    PruneResult prune(AttackSession &session, Addr ta,
                      std::vector<Addr> cands, unsigned target_ways,
                      Cycles deadline,
                      TestTarget target = TestTarget::Llc) override;

  private:
    bool recharge_;
};

/** The paper's binary-search pruner (Figure 4). */
class BinarySearchPruner : public Pruner
{
  public:
    PruneAlgo kind() const override { return PruneAlgo::BinS; }

    PruneResult prune(AttackSession &session, Addr ta,
                      std::vector<Addr> cands, unsigned target_ways,
                      Cycles deadline,
                      TestTarget target = TestTarget::Llc) override;
};

/** Factory. */
std::unique_ptr<Pruner> makePruner(PruneAlgo algo);

/**
 * Verify a pruned eviction set by repeated TestEviction (majority of
 * @p votes).  Attacker-visible check; ground-truth validation lives
 * in the builder / tests.
 */
bool verifyEvictionSet(AttackSession &session, Addr ta,
                       const std::vector<Addr> &evset, unsigned votes = 3,
                       TestTarget target = TestTarget::Llc);

/** Outcome of a blind (associativity-unknown) reduction. */
struct BlindReduceResult
{
    bool success = false;
    std::vector<Addr> evset; //!< minimal set; its size measures W
    unsigned tests = 0;      //!< TestEviction executions consumed
};

/**
 * Reduce @p cands to a *minimal* eviction set for @p ta without
 * knowing the target associativity — the group-testing primitive
 * Step-0 calibration rests on, usable before the slice hash or any
 * way count has been measured.  Shrinking blocks are removed while
 * the remainder still evicts (each removal re-tested by TestEviction),
 * then single members, until no member can be dropped; the final
 * size *is* the measured associativity.  Noise can break a reduction
 * (a false-positive test discards needed members); the final double
 * verification catches that and reports failure so callers retry.
 */
BlindReduceResult blindReduceToMinimal(AttackSession &session, Addr ta,
                                       std::vector<Addr> cands,
                                       Cycles deadline,
                                       TestTarget target = TestTarget::Llc);

} // namespace llcf

#endif // LLCF_EVSET_ALGORITHMS_HH
