/**
 * @file
 * End-to-end eviction-set construction: candidate set -> (optional)
 * L2 filtering -> LLC pruning -> SF extension, with the paper's
 * attempt/timeout policy, plus the bulk procedures for the SingleSet,
 * PageOffset and WholeSys scenarios (Sections 2.2.2-2.2.3, 5.3).
 */

#ifndef LLCF_EVSET_BUILDER_HH
#define LLCF_EVSET_BUILDER_HH

#include <optional>
#include <vector>

#include "evset/algorithms.hh"
#include "evset/candidate.hh"
#include "evset/filter.hh"
#include "evset/session.hh"

namespace llcf {

/** A constructed SF eviction set and its target address. */
struct BuiltEvictionSet
{
    Addr target = 0;
    std::vector<Addr> llcSet; //!< W_LLC congruent addresses
    std::vector<Addr> sfSet;  //!< llcSet plus the SF extension address
};

/** Outcome of constructing one eviction set. */
struct BuildOutcome
{
    bool success = false;
    BuiltEvictionSet evset;
    Cycles elapsed = 0;       //!< virtual time spent
    unsigned attempts = 0;
    unsigned backtracks = 0;
    /** Ground truth (experimenter-side): every SF-set member is
     *  congruent with the target. */
    bool groundTruthValid = false;
};

/** Outcome of a bulk construction campaign. */
struct BulkOutcome
{
    unsigned expectedSets = 0;  //!< SF sets the campaign should cover
    unsigned builtSets = 0;     //!< eviction sets returned
    unsigned validSets = 0;     //!< ground-truth-valid, distinct sets
    Cycles elapsed = 0;
    std::vector<BuiltEvictionSet> evsets;

    /** Paper-style success rate: distinct valid sets / expected. */
    double
    successRate() const
    {
        return expectedSets ? static_cast<double>(validSets) /
               expectedSets : 0.0;
    }
};

/**
 * Drives one pruning algorithm through the full construction
 * pipeline.
 */
class EvictionSetBuilder
{
  public:
    /**
     * @param session Attacker context.
     * @param algo Pruning algorithm for the LLC phase.
     * @param use_filter Enable L2-driven candidate filtering.
     */
    EvictionSetBuilder(AttackSession &session, PruneAlgo algo,
                       bool use_filter);

    /** Algorithm in use. */
    PruneAlgo algo() const { return pruner_->kind(); }

    /** Whether candidate filtering is enabled. */
    bool usesFilter() const { return useFilter_; }

    /**
     * Construct an SF eviction set for @p ta from @p cands (addresses
     * at ta's page offset), honouring the attempt/timeout policy of
     * AttackerConfig.  SingleSet scenario.
     */
    BuildOutcome buildForTarget(Addr ta, std::vector<Addr> cands);

    /**
     * Construct eviction sets for every SF set at one line index
     * (page offset / 64): the PageOffset scenario.
     */
    BulkOutcome buildAtLineIndex(const CandidatePool &pool,
                                 unsigned line_index);

    /**
     * Construct eviction sets for every SF set in the system: the
     * WholeSys scenario.  With filtering enabled, the L2 classes are
     * built once at line index 0 and shifted to the other 63 offsets
     * (Section 5.3.1).
     *
     * @param line_indices Optional subset of line indices (for scaled
     *        benches); empty means all 64.
     */
    BulkOutcome buildWholeSystem(const CandidatePool &pool,
                                 std::vector<unsigned> line_indices = {});

  private:
    /**
     * Extend an LLC eviction set to an SF eviction set by locating
     * the W_SF - W_LLC additional congruent addresses (Section 4.2's
     * protocol; one address on Skylake-SP, four on Ice Lake-SP).
     * Returns the extension addresses.
     */
    std::optional<std::vector<Addr>> extendToSf(
        Addr ta, const std::vector<Addr> &llc_set,
        const std::vector<Addr> &cands, Cycles deadline);

    /** One construction attempt (no retry policy). */
    std::optional<BuiltEvictionSet> attemptBuild(
        Addr ta, const std::vector<Addr> &cands, Cycles deadline,
        unsigned *backtracks);

    /**
     * Bulk-build within one candidate class (paper Section 2.2.3):
     * pick targets, skip those covered by existing sets, prune, and
     * consume used addresses.
     */
    void buildClass(std::vector<Addr> members, BulkOutcome &out);

    /** True iff the union of built sets already evicts @p ta. */
    bool coveredByExisting(Addr ta,
                           const std::vector<BuiltEvictionSet> &sets);

    /**
     * Virtual-time horizon for the bulk builders' one-off L2 class
     * partition: generous multiples of the per-set budget per
     * expected class, far above the undefended cost but finite, so a
     * defense that starves L2 priming fails the build explicitly
     * instead of stalling the trial.
     */
    Cycles partitionBudget() const;

    /** Ground-truth congruence check (experimenter-side). */
    bool validateGroundTruth(const BuiltEvictionSet &evset) const;

    AttackSession &session_;
    std::unique_ptr<Pruner> pruner_;
    bool useFilter_;
    CandidateFilter filter_;
};

} // namespace llcf

#endif // LLCF_EVSET_BUILDER_HH
