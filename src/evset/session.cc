#include "session.hh"

#include "common/log.hh"

namespace llcf {

TopologyView
TopologyView::fromConfig(const MachineConfig &cfg)
{
    TopologyView v;
    v.wLlc = cfg.llc.ways;
    v.wSf = cfg.sf.ways;
    v.slices = cfg.sf.slices;
    v.uncontrolledIndexBits = cfg.sf.uncontrolledIndexBits();
    v.fromOracle = true;
    return v;
}

AttackSession::AttackSession(Machine &machine, const AttackerConfig &cfg)
    : machine_(machine), cfg_(cfg), space_(machine.newAddressSpace()),
      rng_(mix64(cfg.seed ^ 0xa77ac3))
{
    if (!cfg.blindTopology) {
        topology_ = TopologyView::fromConfig(machine.config());
        topologyKnown_ = true;
    }
}

const TopologyView &
AttackSession::topology() const
{
    if (!topologyKnown_)
        fatal("blind attack session consulted the shared-cache "
              "topology before calibrating it (run the Step-0 "
              "TopologyProber and adoptTopology() first)");
    return topology_;
}

void
AttackSession::adoptTopology(const TopologyView &view)
{
    if (view.wLlc == 0 || view.wSf == 0 || view.slices == 0)
        fatal("refusing to adopt a degenerate topology view "
              "(W_LLC %u, W_SF %u, %u slices)",
              view.wLlc, view.wSf, view.slices);
    topology_ = view;
    topologyKnown_ = true;
}

bool
AttackSession::testEviction(TestTarget target, Addr ta,
                            std::span<const Addr> cands, std::size_t n)
{
    switch (target) {
      case TestTarget::Llc:
        return testEvictionLlcParallel(ta, cands, n);
      case TestTarget::PrivateL2:
        return testEvictionL2Parallel(ta, cands, n);
    }
    return false;
}

bool
AttackSession::testEvictionLlcParallel(Addr ta, std::span<const Addr> cands,
                                       std::size_t n)
{
    // Flush-then-access discipline: flushing the working set first
    // makes every traversal access a fresh LLC insertion.  Re-access
    // of an already-resident line would merely promote it, and
    // promotions cannot displace the target — on real hardware the
    // equivalent insertion pressure comes from the victim-cache fill
    // path; see DESIGN.md.  The flush pass is throughput-bound and
    // cheap relative to the traversal.
    ++testCount_;
    machine_.accessBatch(cfg_.mainCore, cands.subspan(0, n),
                         {BatchOp::Flush, true, -1});
    machine_.clflush(cfg_.mainCore, ta);
    machine_.loadShared(cfg_.mainCore, cfg_.helperCore, ta);
    machine_.accessBatch(cfg_.mainCore, cands.subspan(0, n),
                         {BatchOp::Load, true,
                          static_cast<int>(cfg_.helperCore)});
    return probeLlcMiss(ta);
}

bool
AttackSession::testEvictionSfParallel(Addr ta, std::span<const Addr> cands,
                                      std::size_t n)
{
    // This predicate runs on small candidate buffers (the LLC set
    // plus one probe address) that fit in the private caches, so the
    // whole working set is flushed first — otherwise the stores hit
    // in L1/L2 and never re-allocate SF entries, leaving stale
    // replacement ages.  Real implementations reset their own lines
    // the same way between trials.
    ++testCount_;
    machine_.clflush(cfg_.mainCore, ta);
    machine_.accessBatch(cfg_.mainCore, cands.subspan(0, n),
                         {BatchOp::Flush, false, -1});
    machine_.store(cfg_.mainCore, ta);
    machine_.accessBatch(cfg_.mainCore, cands.subspan(0, n),
                         {BatchOp::Store, true, -1});
    return probePrivateMiss(ta);
}

bool
AttackSession::testEvictionL2Parallel(Addr ta, std::span<const Addr> cands,
                                      std::size_t n)
{
    ++testCount_;
    machine_.accessBatch(cfg_.mainCore, cands.subspan(0, n),
                         {BatchOp::Flush, true, -1});
    machine_.clflush(cfg_.mainCore, ta);
    machine_.load(cfg_.mainCore, ta);
    machine_.accessBatch(cfg_.mainCore, cands.subspan(0, n),
                         {BatchOp::Load, true, -1});
    return probePrivateMiss(ta);
}

void
AttackSession::shareLine(Addr pa)
{
    // Flush first so the line is freshly inserted into the LLC
    // (re-accessing a private-cache-resident line never updates the
    // LLC's replacement state).
    machine_.clflush(cfg_.mainCore, pa);
    machine_.loadShared(cfg_.mainCore, cfg_.helperCore, pa);
}

void
AttackSession::seqSharedAccess(Addr pa)
{
    // Serialised candidate access with the same flush-then-access
    // discipline as the parallel traversal; the chase overhead covers
    // the serialisation and per-page TLB walk.
    machine_.clflush(cfg_.mainCore, pa);
    machine_.loadShared(cfg_.mainCore, cfg_.helperCore, pa);
    machine_.idle(static_cast<Cycles>(
        machine_.config().timing.chaseOverhead));
}

bool
AttackSession::probeLlcMiss(Addr ta)
{
    const Cycles measured = machine_.probeLoad(cfg_.mainCore, ta);
    return static_cast<double>(measured) > cfg_.thresholds.llcMiss;
}

bool
AttackSession::probePrivateMiss(Addr ta)
{
    const Cycles measured = machine_.timedLoad(cfg_.mainCore, ta);
    return static_cast<double>(measured) > cfg_.thresholds.privateMiss;
}

} // namespace llcf
