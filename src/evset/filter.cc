#include "filter.hh"

#include <algorithm>
#include <cmath>

#include "common/flat_set.hh"
#include "evset/candidate.hh"

namespace llcf {

CandidateFilter::CandidateFilter(AttackSession &session)
    : session_(session)
{
}

std::optional<std::vector<Addr>>
CandidateFilter::buildL2EvictionSet(Addr ta,
                                    const std::vector<Addr> &cands,
                                    Cycles deadline)
{
    const auto &l2 = session_.machine().config().l2;
    const double factor = session_.config().candidateFactor;
    const std::size_t need = static_cast<std::size_t>(
        std::ceil(factor * l2.uncertainty() * l2.ways));

    if (cands.size() < l2.ways)
        return std::nullopt;

    std::vector<Addr> sample(cands.begin(),
                             cands.begin() +
                             std::min(cands.size(), need));

    PruneResult pr = pruner_.prune(session_, ta, std::move(sample),
                                   l2.ways, deadline,
                                   TestTarget::PrivateL2);
    if (!pr.success)
        return std::nullopt;
    return pr.evset;
}

std::vector<Addr>
CandidateFilter::filter(const std::vector<Addr> &l2_evset,
                        const std::vector<Addr> &cands)
{
    std::vector<Addr> kept;
    kept.reserve(cands.size() / 8);
    Machine &m = session_.machine();
    const unsigned core = session_.config().mainCore;
    for (Addr a : cands) {
        // Skip the eviction set's own members; they are congruent by
        // construction and retained by the caller via the class'
        // member list.
        if (std::find(l2_evset.begin(), l2_evset.end(), a) !=
            l2_evset.end()) {
            kept.push_back(a);
            continue;
        }
        // Flush the working set so every access is a fresh L2 fill
        // (see AttackSession::testEvictionLlcParallel).
        m.accessBatch(core, l2_evset, {BatchOp::Flush, true, -1});
        m.clflush(core, a);
        m.load(core, a);
        m.accessBatch(core, l2_evset, {BatchOp::Load, true, -1});
        if (session_.probePrivateMiss(a))
            kept.push_back(a);
    }
    return kept;
}

std::vector<CandidateFilter::L2Class>
CandidateFilter::partition(std::vector<Addr> cands, Cycles deadline)
{
    std::vector<L2Class> classes;
    const auto &l2 = session_.machine().config().l2;
    const unsigned max_classes = l2.uncertainty();
    unsigned consecutive_failures = 0;

    while (!cands.empty() && classes.size() < max_classes) {
        if (session_.expired(deadline) || consecutive_failures > 4)
            break;
        const Addr ta = cands.front();
        // The target itself must not appear among the candidates the
        // eviction set is built from.
        std::vector<Addr> rest(cands.begin() + 1, cands.end());

        auto l2set = buildL2EvictionSet(ta, rest, deadline);
        if (!l2set) {
            ++consecutive_failures;
            // Rotate so a different target is tried next.
            std::rotate(cands.begin(), cands.begin() + 1, cands.end());
            continue;
        }
        consecutive_failures = 0;

        L2Class cls;
        cls.l2Evset = *l2set;
        cls.members = filter(cls.l2Evset, rest);
        // ta itself belongs to the class.
        if (std::find(cls.members.begin(), cls.members.end(), ta) ==
            cls.members.end()) {
            cls.members.push_back(ta);
        }

        // Remove the class members from the remaining pool.
        FlatSet<Addr> member_set(cls.members.begin(),
                                 cls.members.end());
        std::vector<Addr> remaining;
        remaining.reserve(cands.size() - cls.members.size());
        for (Addr a : cands) {
            if (!member_set.count(a))
                remaining.push_back(a);
        }
        cands = std::move(remaining);
        classes.push_back(std::move(cls));
    }
    return classes;
}

std::vector<CandidateFilter::L2Class>
CandidateFilter::shiftClasses(const std::vector<L2Class> &at_zero,
                              unsigned line_index)
{
    std::vector<L2Class> out;
    out.reserve(at_zero.size());
    for (const auto &cls : at_zero) {
        L2Class shifted;
        shifted.l2Evset =
            CandidatePool::shiftToLineIndex(cls.l2Evset, line_index);
        shifted.members =
            CandidatePool::shiftToLineIndex(cls.members, line_index);
        out.push_back(std::move(shifted));
    }
    return out;
}

} // namespace llcf
