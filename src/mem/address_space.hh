/**
 * @file
 * Physical frame allocation and per-process virtual address spaces.
 *
 * The attacker in the paper is an unprivileged container user: they pick
 * virtual addresses but the kernel picks physical frames, so PA bits
 * above the 4 kB page offset are uncontrolled and unknown (Figure 1).
 * PageAllocator models that by handing out pseudo-randomly chosen frames
 * from a large pool; AddressSpace maps process-private virtual pages to
 * those frames.
 */

#ifndef LLCF_MEM_ADDRESS_SPACE_HH
#define LLCF_MEM_ADDRESS_SPACE_HH

#include <unordered_map>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace llcf {

/**
 * Allocates 4 kB physical page frames from a finite pool in a
 * randomised order.
 *
 * Randomisation is what creates the paper's "cache uncertainty": the
 * attacker cannot steer which L2/LLC sets a fresh page's lines map to.
 */
class PageAllocator
{
  public:
    /**
     * @param total_frames Size of the physical pool in 4 kB frames.
     * @param rng Source of allocation randomness (copied).
     */
    PageAllocator(std::size_t total_frames, Rng rng);

    /** Allocate one frame; returns its physical base address. */
    Addr allocFrame();

    /** Return a frame to the pool. @pre pa was returned by allocFrame */
    void freeFrame(Addr pa);

    /** Frames still available. */
    std::size_t freeFrames() const { return free_.size(); }

    /** Total pool size in frames. */
    std::size_t totalFrames() const { return totalFrames_; }

  private:
    std::size_t totalFrames_;
    std::vector<std::uint32_t> free_; //!< free frame numbers, shuffled
    Rng rng_;
};

/**
 * A process-private virtual address space with 4 kB page granularity.
 *
 * Only the mechanics an attack program relies on are modelled: mapping
 * anonymous memory (mmapAnon) and translating VAs to PAs during access.
 * Shared mappings (the victim binary mapped into the attacker for
 * ground-truth validation, Section 7.2) are supported via mapShared.
 */
class AddressSpace
{
  public:
    /**
     * @param allocator Backing frame allocator (shared between spaces,
     *                  not owned).
     * @param asid Address-space id, used only to spread VA layouts.
     */
    AddressSpace(PageAllocator &allocator, unsigned asid);

    /**
     * Map @p bytes of anonymous memory (rounded up to whole pages).
     * Frames are allocated eagerly, matching an attack buffer that is
     * touched immediately after mmap.
     * @return base virtual address of the mapping.
     */
    Addr mmapAnon(std::size_t bytes);

    /**
     * Map an existing physical range (e.g. another process's pages)
     * at a fresh VA.  @p frames are page base PAs.
     * @return base virtual address of the mapping.
     */
    Addr mapShared(const std::vector<Addr> &frames);

    /** Translate a virtual address. @pre va was mapped here. */
    Addr translate(Addr va) const;

    /**
     * Translate every cache line of [@p va, @p va + @p bytes): one
     * page-table lookup per page instead of one per line, with the
     * in-page lines filled in arithmetically.  This is the bulk path
     * candidate pools and bench working sets are built through — at
     * Skylake scale they translate tens of thousands of lines, and
     * the per-line hash lookups dominate construction otherwise.
     * @pre va is line-aligned and the whole range is mapped here.
     */
    std::vector<Addr> translateLines(Addr va, std::size_t bytes) const;

    /** True iff the page containing @p va is mapped. */
    bool isMapped(Addr va) const;

    /** Physical frames backing a mapping of @p bytes at @p base. */
    std::vector<Addr> framesOf(Addr base, std::size_t bytes) const;

    /** Number of mapped pages. */
    std::size_t pageCount() const { return pageTable_.size(); }

    /** Value snapshot of the mapping table (fork/restore). */
    struct State
    {
        std::unordered_map<Addr, Addr> pageTable;
        Addr nextVa = 0;
    };

    /** Capture the current mappings. */
    State saveState() const { return {pageTable_, nextVa_}; }

    /** Restore mappings captured on this space (frames must still be
     *  owned, i.e. the backing allocator was restored alongside). */
    void
    restoreState(const State &s)
    {
        pageTable_ = s.pageTable;
        nextVa_ = s.nextVa;
    }

  private:
    PageAllocator &allocator_;
    /** VA page -> PA frame.  Stays unordered deliberately: this is
     *  the per-access translation hot path and every use is a point
     *  lookup — nothing ever iterates it, so hash order cannot reach
     *  observable state (the static unordered-iter rule would flag
     *  any future iteration on a serialization path). */
    std::unordered_map<Addr, Addr> pageTable_;
    Addr nextVa_;
};

} // namespace llcf

#endif // LLCF_MEM_ADDRESS_SPACE_HH
