#include "address_space.hh"

#include <numeric>

#include "common/log.hh"

namespace llcf {

PageAllocator::PageAllocator(std::size_t total_frames, Rng rng)
    : totalFrames_(total_frames), rng_(rng)
{
    if (total_frames == 0)
        fatal("PageAllocator needs a non-empty frame pool");
    free_.resize(total_frames);
    std::iota(free_.begin(), free_.end(), 0u);
    rng_.shuffle(free_);
}

Addr
PageAllocator::allocFrame()
{
    if (free_.empty())
        fatal("physical frame pool exhausted (%zu frames)", totalFrames_);
    std::uint32_t frame = free_.back();
    free_.pop_back();
    return static_cast<Addr>(frame) << kPageBits;
}

void
PageAllocator::freeFrame(Addr pa)
{
    if (pageOffset(pa) != 0)
        panic("freeFrame on non page-aligned PA %#lx",
              static_cast<unsigned long>(pa));
    free_.push_back(static_cast<std::uint32_t>(pa >> kPageBits));
}

AddressSpace::AddressSpace(PageAllocator &allocator, unsigned asid)
    : allocator_(allocator),
      // Spread VA bases apart so per-process layouts never collide;
      // the 0x10000... base mimics a typical mmap region.
      nextVa_(0x100000000000ULL + (static_cast<Addr>(asid) << 36))
{
}

Addr
AddressSpace::mmapAnon(std::size_t bytes)
{
    const std::size_t pages = (bytes + kPageBytes - 1) / kPageBytes;
    const Addr base = nextVa_;
    for (std::size_t i = 0; i < pages; ++i) {
        Addr va_page = base + static_cast<Addr>(i) * kPageBytes;
        pageTable_[va_page] = allocator_.allocFrame();
    }
    nextVa_ += static_cast<Addr>(pages) * kPageBytes;
    // Leave a guard gap between mappings, as real mmap tends to.
    nextVa_ += kPageBytes;
    return base;
}

Addr
AddressSpace::mapShared(const std::vector<Addr> &frames)
{
    const Addr base = nextVa_;
    for (std::size_t i = 0; i < frames.size(); ++i) {
        if (pageOffset(frames[i]) != 0)
            panic("mapShared frame %zu not page aligned", i);
        pageTable_[base + static_cast<Addr>(i) * kPageBytes] = frames[i];
    }
    nextVa_ += static_cast<Addr>(frames.size() + 1) * kPageBytes;
    return base;
}

Addr
AddressSpace::translate(Addr va) const
{
    const Addr va_page = va & ~static_cast<Addr>(kPageBytes - 1);
    auto it = pageTable_.find(va_page);
    if (it == pageTable_.end())
        panic("translate of unmapped VA %#lx",
              static_cast<unsigned long>(va));
    return it->second | pageOffset(va);
}

std::vector<Addr>
AddressSpace::translateLines(Addr va, std::size_t bytes) const
{
    if (lineAlign(va) != va)
        panic("translateLines VA %#lx not line aligned",
              static_cast<unsigned long>(va));
    std::vector<Addr> lines;
    lines.reserve((bytes + kLineBytes - 1) / kLineBytes);
    Addr v = va;
    const Addr end = va + bytes;
    while (v < end) {
        // One lookup covers every line left on this page.
        const Addr pa = translate(v);
        const Addr page_end =
            (v & ~static_cast<Addr>(kPageBytes - 1)) + kPageBytes;
        const Addr stop = page_end < end ? page_end : end;
        for (Addr off = 0; v + off < stop; off += kLineBytes)
            lines.push_back(pa + off);
        v = stop;
    }
    return lines;
}

bool
AddressSpace::isMapped(Addr va) const
{
    const Addr va_page = va & ~static_cast<Addr>(kPageBytes - 1);
    return pageTable_.count(va_page) != 0;
}

std::vector<Addr>
AddressSpace::framesOf(Addr base, std::size_t bytes) const
{
    std::vector<Addr> frames;
    const std::size_t pages = (bytes + kPageBytes - 1) / kPageBytes;
    frames.reserve(pages);
    for (std::size_t i = 0; i < pages; ++i)
        frames.push_back(translate(base + static_cast<Addr>(i) *
                                   kPageBytes));
    return frames;
}

} // namespace llcf
