/**
 * @file
 * Open-loop offered-load generation: arrival processes and pinned
 * co-tenant access streams.
 *
 * The paper's production-cloud claim is that the pipeline survives
 * real tenant traffic, not the scheduled idle gaps of a closed-loop
 * victim.  This layer supplies that traffic deterministically: an
 * ArrivalProcess turns a positional RNG stream into Poisson or
 * bursty (on/off) inter-arrival gaps, victims consume one process
 * for open-loop request timing, and CoTenantLoad replays the same
 * arrival shape as pinned Machine streams so attacker probes contend
 * with offered load for the whole trial, across the attack layer's
 * clearStreams() calls.
 */

#ifndef LLCF_TRAFFIC_TRAFFIC_HH
#define LLCF_TRAFFIC_TRAFFIC_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace llcf {

class Machine;
class AddressSpace;

/** Shape of an open-loop arrival process. */
enum class ArrivalKind {
    None,    //!< closed loop: think-time gaps scheduled by the server
    Poisson, //!< memoryless arrivals at a fixed mean rate
    Bursty,  //!< on/off bursts; the long-run mean rate is preserved
};

/** Human-readable arrival-kind name (for cell listings). */
const char *arrivalKindName(ArrivalKind kind);

/**
 * Declarative description of an arrival process.  `ratePerSec` is the
 * long-run mean arrival rate for both kinds; a bursty process
 * concentrates the same offered load into ON windows (arriving at
 * `ratePerSec / onFraction` inside a burst) separated by silent OFF
 * periods.
 */
struct ArrivalSpec
{
    ArrivalKind kind = ArrivalKind::None;
    double ratePerSec = 0.0;  //!< long-run mean arrivals per second
    double onFraction = 0.4;  //!< bursty: fraction of time inside bursts
    double meanBurstMs = 0.2; //!< bursty: mean ON-window length

    /** True when the spec describes an open-loop process. */
    bool active() const { return kind != ArrivalKind::None; }

    /** fatal() on non-positive rates or degenerate burst geometry. */
    void check() const;
};

/**
 * Deterministic arrival-gap generator over one positional RNG stream.
 * Identical (spec, seed) pairs yield identical gap sequences on any
 * thread count — the generator owns all of its state.
 */
class ArrivalProcess
{
  public:
    /** Validates @p spec (fatal on nonsense) and seeds the stream. */
    ArrivalProcess(const ArrivalSpec &spec, std::uint64_t seed);

    /** Cycles until the next arrival (always >= 1). */
    Cycles nextInterarrival();

    /** The validated spec this process draws from. */
    const ArrivalSpec &spec() const { return spec_; }

  private:
    ArrivalSpec spec_;
    Rng rng_;
    double gapMean_ = 0.0; //!< mean in-service gap, cycles
    double onMean_ = 0.0;  //!< bursty: mean ON-window length, cycles
    double offMean_ = 0.0; //!< bursty: mean OFF-window length, cycles
    double onLeft_ = 0.0;  //!< bursty: cycles left in the current burst
};

/** Co-tenant offered-load configuration (see CoTenantLoad). */
struct CoTenantLoadConfig
{
    unsigned tenants = 0;           //!< emulated co-tenant services
    unsigned core = 3;              //!< core the co-tenants run on
    unsigned linesPerTenant = 4;    //!< distinct hot lines per tenant
    unsigned accessesPerArrival = 6; //!< line touches per request
    ArrivalSpec arrival;            //!< per-tenant offered load shape
    std::uint64_t seed = 0;         //!< master seed; tenant t draws
                                    //!< from positional stream t
};

/**
 * Pre-schedules co-tenant cache traffic over a horizon as *pinned*
 * Machine streams: the attack layer's clearStreams() calls between
 * pipeline steps drop victim streams but keep these, so scan and
 * monitor probes contend with the offered load end to end.
 */
class CoTenantLoad
{
  public:
    /**
     * Maps one page per tenant, draws each tenant's arrivals from
     * `streamSeed(cfg.seed, tenant)`, and registers the resulting
     * access times as pinned streams spanning
     * [@p start, @p start + @p horizon).
     */
    CoTenantLoad(Machine &machine, const CoTenantLoadConfig &cfg,
                 Cycles start, Cycles horizon);
    ~CoTenantLoad();

    CoTenantLoad(const CoTenantLoad &) = delete;
    CoTenantLoad &operator=(const CoTenantLoad &) = delete;

    /** Total line accesses scheduled across all tenants. */
    std::uint64_t scheduledAccesses() const { return accesses_; }

    /** The hot-line physical addresses the tenants stream against.
     *  Streams apply lazily when a set is next synchronised, so
     *  accounting (and tests) touch these to flush pending load. */
    const std::vector<Addr> &linePas() const { return pas_; }

  private:
    std::unique_ptr<AddressSpace> space_;
    std::uint64_t accesses_ = 0;
    std::vector<Addr> pas_;
};

} // namespace llcf

#endif // LLCF_TRAFFIC_TRAFFIC_HH
