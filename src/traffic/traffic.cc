/**
 * @file
 * Arrival-process generation and pinned co-tenant load scheduling.
 */

#include "traffic/traffic.hh"

#include <algorithm>
#include <utility>

#include "common/log.hh"
#include "mem/address_space.hh"
#include "sim/machine.hh"

namespace llcf {

const char *
arrivalKindName(ArrivalKind kind)
{
    switch (kind) {
    case ArrivalKind::None:
        return "none";
    case ArrivalKind::Poisson:
        return "poisson";
    case ArrivalKind::Bursty:
        return "bursty";
    }
    return "?";
}

void
ArrivalSpec::check() const
{
    if (!active())
        return;
    if (!(ratePerSec > 0.0)) {
        // detlint: allow(float-format) -- fatal diagnostic only
        fatal("arrival rate %.3f must be positive", ratePerSec);
    }
    if (kind == ArrivalKind::Bursty) {
        if (!(onFraction > 0.0) || onFraction > 1.0) {
            // detlint: allow(float-format) -- fatal diagnostic only
            fatal("arrival onFraction %.3f outside (0, 1]",
                  onFraction);
        }
        if (!(meanBurstMs > 0.0)) {
            // detlint: allow(float-format) -- fatal diagnostic only
            fatal("arrival meanBurstMs %.3f must be positive",
                  meanBurstMs);
        }
    }
}

ArrivalProcess::ArrivalProcess(const ArrivalSpec &spec, std::uint64_t seed)
    : spec_(spec), rng_(mix64(seed))
{
    if (!spec_.active())
        fatal("arrival process needs an active spec");
    spec_.check();
    const double mean_cycles = kCpuGhz * 1e9 / spec_.ratePerSec;
    if (spec_.kind == ArrivalKind::Poisson) {
        gapMean_ = mean_cycles;
        return;
    }
    // Bursty: the same long-run rate, concentrated into ON windows.
    gapMean_ = spec_.onFraction * mean_cycles;
    onMean_ = static_cast<double>(msToCycles(spec_.meanBurstMs));
    offMean_ = onMean_ * (1.0 - spec_.onFraction) / spec_.onFraction;
    onLeft_ = rng_.nextExponential(onMean_);
}

Cycles
ArrivalProcess::nextInterarrival()
{
    if (spec_.kind == ArrivalKind::Poisson) {
        const double gap = rng_.nextExponential(gapMean_);
        return std::max<Cycles>(1, static_cast<Cycles>(gap));
    }
    // Bursty on/off: candidate in-burst gaps are exponential; a gap
    // that overruns the current ON window burns the remainder, sits
    // out one OFF window, and redraws (valid by memorylessness).
    double total = 0.0;
    for (;;) {
        const double gap = rng_.nextExponential(gapMean_);
        if (gap <= onLeft_) {
            onLeft_ -= gap;
            total += gap;
            break;
        }
        total += onLeft_;
        if (offMean_ > 0.0)
            total += rng_.nextExponential(offMean_);
        onLeft_ = rng_.nextExponential(onMean_);
    }
    return std::max<Cycles>(1, static_cast<Cycles>(total));
}

CoTenantLoad::CoTenantLoad(Machine &machine, const CoTenantLoadConfig &cfg,
                           Cycles start, Cycles horizon)
    : space_(machine.newAddressSpace())
{
    if (cfg.tenants == 0)
        fatal("co-tenant load needs at least one tenant");
    if (cfg.linesPerTenant == 0 ||
        cfg.linesPerTenant > kLinesPerPage)
        fatal("co-tenant linesPerTenant %u outside [1, %u]",
              cfg.linesPerTenant, kLinesPerPage);
    if (cfg.accessesPerArrival == 0)
        fatal("co-tenant accessesPerArrival must be positive");
    // Small hosts have fewer cores than the default placement; the
    // load is shared-cache pressure, so any core off the victim's
    // works — take the last one the machine actually has.
    const unsigned core =
        std::min(cfg.core, machine.config().cores - 1);

    for (unsigned t = 0; t < cfg.tenants; ++t) {
        // Positional sub-streams: arrivals and layout each get their
        // own child so adding tenants never perturbs earlier ones.
        const std::uint64_t tseed = streamSeed(cfg.seed, t);
        ArrivalProcess arrivals(cfg.arrival, streamSeed(tseed, 0));
        Rng layout = Rng::forStream(tseed, 1);

        const Addr page = space_->mmapAnon(kPageBytes);
        // One draw picks the base line; a stride coprime to the page
        // spreads the tenant's hot lines across distinct sets.
        const unsigned base =
            static_cast<unsigned>(layout.nextBelow(kLinesPerPage));
        std::vector<std::vector<Cycles>> times(cfg.linesPerTenant);

        Cycles now = start;
        const Cycles end = start + horizon;
        std::uint64_t arrival_index = 0;
        for (;;) {
            now += arrivals.nextInterarrival();
            if (now >= end)
                break;
            for (unsigned k = 0; k < cfg.accessesPerArrival; ++k) {
                const unsigned slot =
                    static_cast<unsigned>((arrival_index + k) %
                                          cfg.linesPerTenant);
                times[slot].push_back(now + 37 * k);
            }
            ++arrival_index;
        }

        for (unsigned j = 0; j < cfg.linesPerTenant; ++j) {
            if (times[j].empty())
                continue;
            const unsigned line = (base + 17 * j) % kLinesPerPage;
            const Addr pa = space_->translate(
                page + (static_cast<Addr>(line) << kLineBits));
            accesses_ += times[j].size();
            pas_.push_back(pa);
            machine.addStream(core, pa, std::move(times[j]),
                              /*is_store=*/false, /*pinned=*/true);
        }
    }
}

CoTenantLoad::~CoTenantLoad() = default;

} // namespace llcf
