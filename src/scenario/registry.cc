#include "registry.hh"

#include <utility>

#include "common/log.hh"

namespace llcf {
namespace {

/** Short noise key used in scenario names -> profile name. */
const char *
noiseFor(const char *key)
{
    const std::string k(key);
    if (k == "local")
        return "quiescent-local";
    if (k == "cloud")
        return "cloud-run";
    if (k == "quiet")
        return "cloud-run-3-5am";
    if (k == "silent")
        return "silent";
    fatal("unknown noise key '%s'", key);
}

/** Spec skeleton shared by the scenario families below. */
ScenarioSpec
base(const char *name, const char *description, ScenarioStage stage,
     ScenarioMachine machine, unsigned slices, ReplKind repl,
     const char *noise_key, PruneAlgo algo)
{
    ScenarioSpec s;
    s.name = name;
    s.description = description;
    s.stage = stage;
    s.machine = machine;
    s.slices = slices;
    s.sharedRepl = repl;
    s.noise = noiseFor(noise_key);
    s.algo = algo;
    return s;
}

/**
 * Campaign skeleton: full Step 1-3 fleets keep the per-victim cost in
 * check with the lighter classifier-training budget and scan timeout
 * the timing probes validated (recovery rates are unchanged).
 */
ScenarioSpec
campaignBase(const char *name, const char *description,
             ScenarioMachine machine, unsigned slices, ReplKind repl,
             const char *noise_key, unsigned fleet)
{
    ScenarioSpec s = base(name, description, ScenarioStage::Campaign,
                          machine, slices, repl, noise_key,
                          PruneAlgo::BinS);
    s.fleetSize = fleet;
    s.defaultTrials = fleet;
    s.trainTargetTraces = 10;
    s.trainNontargetTraces = 20;
    s.scanTimeoutSec = 3.0;
    return s;
}

/**
 * Calibration skeleton: Step-0-only scenarios measuring blind
 * topology recovery accuracy and cost (bench_calib's domain).
 */
ScenarioSpec
calibBase(const char *name, const char *description,
          ScenarioMachine machine, unsigned slices, ReplKind repl,
          const char *noise_key)
{
    ScenarioSpec s = base(name, description, ScenarioStage::Calibrate,
                          machine, slices, repl, noise_key,
                          PruneAlgo::BinS);
    s.defaultTrials = 2;
    // At the full-size hosts' U=64 a 160-page window yields too few
    // congruence hits for a stable estimate; membership tests are
    // cheap (two short TestEvictions each), so scan wider.
    s.calibSamplePages = 896;
    return s;
}

ScenarioRegistry
makeBuiltins()
{
    using M = ScenarioMachine;
    using R = ReplKind;
    using A = PruneAlgo;
    using St = ScenarioStage;
    ScenarioRegistry reg;

    // ---- Eviction-set construction across hosts, policies, noise.
    reg.add(base("build-gt-skl-lru-local",
                 "Group testing on quiescent Skylake-SP (Table 3 row)",
                 St::EvsetBuild, M::SkylakeSp, 4, R::LRU, "local",
                 A::Gt));
    // Stress cell: at the 11/12-way Skylake geometry a Tree-PLRU
    // LLC/SF defeats single-pass traversal, so success rates collapse.
    reg.add(base("build-gtop-skl-plru-cloud",
                 "Stress: optimised group testing vs Tree-PLRU LLC/SF",
                 St::EvsetBuild, M::SkylakeSp, 4, R::TreePLRU, "cloud",
                 A::GtOp));
    reg.add(base("build-ps-skl-srrip-local",
                 "Prime+Scope pruning under SRRIP on a quiet host",
                 St::EvsetBuild, M::SkylakeSp, 4, R::SRRIP, "local",
                 A::Ps));
    // Stress cell: single-pass eviction-set traversal rarely displaces
    // the target under random replacement, so construction mostly
    // fails — the matrix documents the degradation.
    reg.add(base("build-psop-skl-random-cloud",
                 "Stress: recharging Prime+Scope vs a Random LLC/SF",
                 St::EvsetBuild, M::SkylakeSp, 4, R::Random, "cloud",
                 A::PsOp));
    reg.add(base("build-bins-skl-lru-cloud",
                 "Binary-search pruning on Cloud Run (Table 4 row)",
                 St::EvsetBuild, M::SkylakeSp, 4, R::LRU, "cloud",
                 A::BinS));
    reg.add(base("build-bins-skl-lru-quiet",
                 "Binary-search pruning in the 3-5 am quiet hours",
                 St::EvsetBuild, M::SkylakeSp, 4, R::LRU, "quiet",
                 A::BinS));
    reg.add(base("build-gt-icx-lru-cloud",
                 "Group testing on Ice Lake-SP (Section 5.3.2 host)",
                 St::EvsetBuild, M::IceLakeSp, 4, R::LRU, "cloud",
                 A::Gt));
    reg.add(base("build-bins-icx-lru-local",
                 "Binary-search pruning on a quiescent Ice Lake-SP",
                 St::EvsetBuild, M::IceLakeSp, 4, R::LRU, "local",
                 A::BinS));

    // ---- Deterministic regression anchors (tight tolerance bands).
    {
        ScenarioSpec s = base(
            "build-bins-tiny-lru-silent",
            "Regression anchor: BinS on the tiny machine, zero noise",
            St::EvsetBuild, M::TinyTest, 2, R::LRU, "silent", A::BinS);
        s.defaultTrials = 6;
        reg.add(s);
    }
    {
        ScenarioSpec s = base(
            "build-bins-sklscaled-lru-local",
            "Regression anchor: BinS on a 2-slice scaled Skylake",
            St::EvsetBuild, M::ScaledSkylake, 2, R::LRU, "local",
            A::BinS);
        s.defaultTrials = 3;
        reg.add(s);
    }

    // ---- Scanner stage: PSD target-set identification.
    {
        ScenarioSpec s = base(
            "scan-bins-tiny-lru-local",
            "PSD scan finds the victim's SF set on a quiet tiny host",
            St::Scan, M::TinyTest, 2, R::LRU, "local", A::BinS);
        s.defaultTrials = 3;
        s.scanTimeoutSec = 3.0;
        reg.add(s);
    }
    {
        ScenarioSpec s = base(
            "scan-bins-tiny-srrip-silent",
            "PSD scan with an SRRIP-managed LLC/SF, zero noise",
            St::Scan, M::TinyTest, 2, R::SRRIP, "silent", A::BinS);
        s.defaultTrials = 3;
        s.scanTimeoutSec = 3.0;
        reg.add(s);
    }
    {
        ScenarioSpec s = base(
            "scan-bins-tiny-plru-silent",
            "PSD scan with a Tree-PLRU LLC/SF, zero noise",
            St::Scan, M::TinyTest, 2, R::TreePLRU, "silent", A::BinS);
        s.defaultTrials = 3;
        s.scanTimeoutSec = 3.0;
        reg.add(s);
    }

    // ---- Full end-to-end nonce recovery.
    {
        ScenarioSpec s = base(
            "e2e-bins-tiny-lru-silent",
            "Full attack recovers nonce bits on the tiny machine",
            St::EndToEnd, M::TinyTest, 2, R::LRU, "silent", A::BinS);
        s.defaultTrials = 2;
        s.scanTimeoutSec = 3.0;
        reg.add(s);
    }
    {
        ScenarioSpec s = base(
            "e2e-gt-tiny-srrip-local",
            "Full attack via group testing under SRRIP replacement",
            St::EndToEnd, M::TinyTest, 2, R::SRRIP, "local", A::Gt);
        s.defaultTrials = 2;
        s.scanTimeoutSec = 3.0;
        reg.add(s);
    }

    // ---- Key-recovery campaigns: full-pipeline victim fleets
    // (bench_e2e's domain; excluded from bench_matrix's default set).
    reg.add(campaignBase(
        "campaign-skl-lru-quiet-1",
        "Single-tenant anchor: one victim on a quiet Skylake-SP",
        M::SkylakeSp, 2, R::LRU, "quiet", 1));
    reg.add(campaignBase(
        "campaign-skl-lru-quiet-16",
        "Fleet headline: 16 victims on Skylake-SP in the quiet hours",
        M::SkylakeSp, 2, R::LRU, "quiet", 16));
    reg.add(campaignBase(
        "campaign-skl-lru-cloud-4",
        "4-victim fleet on Skylake-SP under Cloud Run noise",
        M::SkylakeSp, 2, R::LRU, "cloud", 4));
    reg.add(campaignBase(
        "campaign-icx-lru-cloud-4",
        "4-victim fleet on Ice Lake-SP under Cloud Run noise",
        M::IceLakeSp, 2, R::LRU, "cloud", 4));
    {
        // Mixed-environment fleet of rate-limited victims: noise
        // rotates per victim and each service has a request quota, so
        // the partial-result paths stay exercised end to end.
        ScenarioSpec s = campaignBase(
            "campaign-tiny-quota-mixed-4",
            "Quota'd 4-victim fleet across mixed noise environments",
            M::TinyTest, 2, R::LRU, "local", 4);
        s.fleetNoises = {"silent", "quiescent-local"};
        s.scanTimeoutSec = 1.0;
        s.victimRequestQuota = 200;
        reg.add(s);
    }
    {
        // Fork-mode anchor: a uniform fleet wide enough to span two
        // checkpoint shards (64 trials each), so the snapshot-fork
        // and interrupt/resume paths stay covered at CI speed.
        ScenarioSpec s = campaignBase(
            "campaign-fork-tiny-silent-96",
            "Forked 96-victim uniform fleet on the tiny silent host",
            M::TinyTest, 2, R::LRU, "silent", 96);
        s.forkVictims = true;
        s.fleetLineIndexStep = 0; // uniform layout: fork prerequisite
        s.scanTimeoutSec = 1.0;
        s.tracesPerVictim = 1;
        reg.add(s);
    }
    {
        // The paper-scale tier (bench_e2e --full-scale): 10^5 forked
        // victims off one warmed world, streaming aggregation keeping
        // per-metric memory O(1).  Far too large for the default
        // selection; CI gates a LLCF_TRIALS-reduced fleet against the
        // committed BENCH_fullscale.json (its bands are
        // count-independent).
        ScenarioSpec s = campaignBase(
            "campaign-fork-tiny-silent-100k",
            "Full-scale fleet: 100,000 forked victims, one warmup",
            M::TinyTest, 2, R::LRU, "silent", 100000);
        s.forkVictims = true;
        s.fullScaleOnly = true;
        s.fleetLineIndexStep = 0;
        s.scanTimeoutSec = 1.0;
        s.tracesPerVictim = 1;
        reg.add(s);
    }

    // ---- Step-0 blind topology calibration (bench_calib's domain):
    // oracle-free recovery of W_LLC / W_SF / slices / uncertainty,
    // gated per field against the true config.  The oracle
    // counterparts of these cells are the build-*/campaign-*
    // scenarios above, which consume MachineConfig directly.
    reg.add(calibBase(
        "calib-skl-lru-quiet",
        "Blind calibration on Skylake-SP in the quiet hours",
        M::SkylakeSp, 2, R::LRU, "quiet"));
    reg.add(calibBase(
        "calib-skl-lru-cloud",
        "Blind calibration on Skylake-SP under Cloud Run noise",
        M::SkylakeSp, 2, R::LRU, "cloud"));
    // Stress cell: Tree-PLRU defeats single-pass traversal at the
    // 11/12-way Skylake geometry, so reductions often fail or
    // mis-measure — the matrix documents the degradation.
    reg.add(calibBase(
        "calib-skl-plru-quiet",
        "Stress: blind calibration vs a Tree-PLRU LLC/SF",
        M::SkylakeSp, 2, R::TreePLRU, "quiet"));
    reg.add(calibBase(
        "calib-icx-lru-quiet",
        "Blind calibration on Ice Lake-SP (16-way SF) when quiet",
        M::IceLakeSp, 2, R::LRU, "quiet"));
    reg.add(calibBase(
        "calib-icx-lru-cloud",
        "Blind calibration on Ice Lake-SP under Cloud Run noise",
        M::IceLakeSp, 2, R::LRU, "cloud"));
    {
        // Deterministic anchor: tiny machine, zero noise, small
        // assumed bounds so the whole Step 0 runs in milliseconds.
        ScenarioSpec s = calibBase(
            "calib-tiny-lru-silent",
            "Regression anchor: blind calibration, tiny host, silent",
            M::TinyTest, 2, R::LRU, "silent");
        s.defaultTrials = 3;
        s.assumedMaxUncertainty = 16;
        s.assumedMaxWays = 8;
        s.calibSamplePages = 96;
        reg.add(s);
    }

    // ---- Defense axis (bench_defense's domain; excluded from
    // bench_matrix's default set): the attacker pipeline vs host-side
    // defenses.  Cell names use the "defense-<kind>-..." prefix so the
    // build-*/scan-*/e2e-* selections stay stage-pure.  Baseline
    // "none" cells set measure so the def_* series exists as a
    // same-shaped reference row for overhead comparisons.
    {
        ScenarioSpec s = base(
            "defense-none-tiny-e2e",
            "Undefended baseline row for the tiny e2e defense matrix",
            St::EndToEnd, M::TinyTest, 2, R::LRU, "silent", A::BinS);
        s.defaultTrials = 2;
        // Defended cells time out instead of completing: a blocked
        // eviction signal burns the whole scan timeout per training
        // trace and per scanned set, and a partition burns the whole
        // per-set construction budget for every set in the scan
        // group, so the undefended ~ms budgets are trimmed hard
        // (still >10x headroom over the observed undefended costs)
        // and training is kept to a dozen traces — the same knobs on
        // every cell of the matrix, baseline row included, so
        // overheads stay comparable.
        s.scanTimeoutSec = 0.1;
        s.evsetBudgetMs = 1.0;
        s.trainTargetTraces = 6;
        s.trainNontargetTraces = 12;
        s.defense.measure = true;
        reg.add(s);
    }
    {
        // CEASER with a static key: the keyed index hash alone does
        // not stop the attack — congruence is scrambled but stable,
        // so eviction sets still build and still evict.
        ScenarioSpec s = base(
            "defense-rekey-off-tiny-e2e",
            "Static-key CEASER: keyed index hash, never re-keyed",
            St::EndToEnd, M::TinyTest, 2, R::LRU, "silent", A::BinS);
        s.defaultTrials = 2;
        // Defended cells time out instead of completing: a blocked
        // eviction signal burns the whole scan timeout per training
        // trace and per scanned set, and a partition burns the whole
        // per-set construction budget for every set in the scan
        // group, so the undefended ~ms budgets are trimmed hard
        // (still >10x headroom over the observed undefended costs)
        // and training is kept to a dozen traces — the same knobs on
        // every cell of the matrix, baseline row included, so
        // overheads stay comparable.
        s.scanTimeoutSec = 0.1;
        s.evsetBudgetMs = 1.0;
        s.trainTargetTraces = 6;
        s.trainNontargetTraces = 12;
        s.defense.kind = DefenseKind::KeyedRekey;
        s.defense.rekeyIntervalMs = 0.0;
        reg.add(s);
    }
    {
        ScenarioSpec s = base(
            "defense-rekey-slow-tiny-e2e",
            "Keyed index hash re-keyed every 500 us of virtual time",
            St::EndToEnd, M::TinyTest, 2, R::LRU, "silent", A::BinS);
        s.defaultTrials = 2;
        // Defended cells time out instead of completing: a blocked
        // eviction signal burns the whole scan timeout per training
        // trace and per scanned set, and a partition burns the whole
        // per-set construction budget for every set in the scan
        // group, so the undefended ~ms budgets are trimmed hard
        // (still >10x headroom over the observed undefended costs)
        // and training is kept to a dozen traces — the same knobs on
        // every cell of the matrix, baseline row included, so
        // overheads stay comparable.
        s.scanTimeoutSec = 0.1;
        s.evsetBudgetMs = 1.0;
        s.trainTargetTraces = 6;
        s.trainNontargetTraces = 12;
        s.defense.kind = DefenseKind::KeyedRekey;
        s.defense.rekeyIntervalMs = 0.5;
        reg.add(s);
    }
    {
        ScenarioSpec s = base(
            "defense-rekey-fast-tiny-e2e",
            "Keyed index hash re-keyed every 50 us of virtual time",
            St::EndToEnd, M::TinyTest, 2, R::LRU, "silent", A::BinS);
        s.defaultTrials = 2;
        // Defended cells time out instead of completing: a blocked
        // eviction signal burns the whole scan timeout per training
        // trace and per scanned set, and a partition burns the whole
        // per-set construction budget for every set in the scan
        // group, so the undefended ~ms budgets are trimmed hard
        // (still >10x headroom over the observed undefended costs)
        // and training is kept to a dozen traces — the same knobs on
        // every cell of the matrix, baseline row included, so
        // overheads stay comparable.
        s.scanTimeoutSec = 0.1;
        s.evsetBudgetMs = 1.0;
        s.trainTargetTraces = 6;
        s.trainNontargetTraces = 12;
        s.defense.kind = DefenseKind::KeyedRekey;
        s.defense.rekeyIntervalMs = 0.05;
        reg.add(s);
    }
    {
        // CAT on the LLC only: on the 4-way tiny host, walling off
        // half the LLC ways starves eviction-set construction
        // outright — every per-set build burns its whole (trimmed)
        // budget and the attack dies at the build stage.
        ScenarioSpec s = base(
            "defense-waypart-tiny-e2e",
            "CAT-style LLC way partition reserving the victim's ways",
            St::EndToEnd, M::TinyTest, 2, R::LRU, "silent", A::BinS);
        s.defaultTrials = 2;
        // Defended cells time out instead of completing: a blocked
        // eviction signal burns the whole scan timeout per training
        // trace and per scanned set, and a partition burns the whole
        // per-set construction budget for every set in the scan
        // group, so the undefended ~ms budgets are trimmed hard
        // (still >10x headroom over the observed undefended costs)
        // and training is kept to a dozen traces — the same knobs on
        // every cell of the matrix, baseline row included, so
        // overheads stay comparable.
        s.scanTimeoutSec = 0.1;
        s.evsetBudgetMs = 1.0;
        s.trainTargetTraces = 6;
        s.trainNontargetTraces = 12;
        s.defense.kind = DefenseKind::WayPart;
        s.defense.protectedWays = 2;
        reg.add(s);
    }
    {
        ScenarioSpec s = base(
            "defense-sfpart-tiny-e2e",
            "SF way partition: attacker fills can't evict victim SF "
            "entries",
            St::EndToEnd, M::TinyTest, 2, R::LRU, "silent", A::BinS);
        s.defaultTrials = 2;
        // Defended cells time out instead of completing: a blocked
        // eviction signal burns the whole scan timeout per training
        // trace and per scanned set, and a partition burns the whole
        // per-set construction budget for every set in the scan
        // group, so the undefended ~ms budgets are trimmed hard
        // (still >10x headroom over the observed undefended costs)
        // and training is kept to a dozen traces — the same knobs on
        // every cell of the matrix, baseline row included, so
        // overheads stay comparable.
        s.scanTimeoutSec = 0.1;
        s.evsetBudgetMs = 1.0;
        s.trainTargetTraces = 6;
        s.trainNontargetTraces = 12;
        s.defense.kind = DefenseKind::SfPart;
        s.defense.protectedWays = 2;
        reg.add(s);
    }
    {
        ScenarioSpec s = base(
            "defense-watchdog-tiny-e2e",
            "Self-eviction watchdog triggering re-keys when probed "
            "misses spike",
            St::EndToEnd, M::TinyTest, 2, R::LRU, "silent", A::BinS);
        s.defaultTrials = 2;
        // Defended cells time out instead of completing: a blocked
        // eviction signal burns the whole scan timeout per training
        // trace and per scanned set, and a partition burns the whole
        // per-set construction budget for every set in the scan
        // group, so the undefended ~ms budgets are trimmed hard
        // (still >10x headroom over the observed undefended costs)
        // and training is kept to a dozen traces — the same knobs on
        // every cell of the matrix, baseline row included, so
        // overheads stay comparable.
        s.scanTimeoutSec = 0.1;
        s.evsetBudgetMs = 1.0;
        s.trainTargetTraces = 6;
        s.trainNontargetTraces = 12;
        s.defense.kind = DefenseKind::Watchdog;
        reg.add(s);
    }
    {
        ScenarioSpec s = base(
            "defense-waypart-tiny-scan",
            "PSD scan vs an LLC way partition on the tiny host",
            St::Scan, M::TinyTest, 2, R::LRU, "silent", A::BinS);
        s.defaultTrials = 3;
        s.scanTimeoutSec = 0.1; // see the e2e cells above
        s.evsetBudgetMs = 1.0;
        s.trainTargetTraces = 6;
        s.trainNontargetTraces = 12;
        s.defense.kind = DefenseKind::WayPart;
        s.defense.protectedWays = 2;
        reg.add(s);
    }
    {
        // The kill cell: the re-key interval sits inside a single
        // eviction-set construction window, so cross-page congruence
        // dissolves mid-build and success collapses below 10%
        // (bench_defense hard-gates that ceiling).
        ScenarioSpec s = base(
            "defense-rekey-fast-tiny-build",
            "Kill cell: re-keying inside the build window starves "
            "eviction-set construction",
            St::EvsetBuild, M::TinyTest, 2, R::LRU, "silent", A::BinS);
        s.defaultTrials = 6;
        // Construction needs ~75 us of stable congruence and a 100 ms
        // budget lets it retry through occasional re-keys; a 10 us
        // interval leaves no window wide enough, so the trimmed 10 ms
        // budget is spent failing (bench_defense gates succ < 10%).
        s.evsetBudgetMs = 10.0;
        s.defense.kind = DefenseKind::KeyedRekey;
        s.defense.rekeyIntervalMs = 0.01;
        reg.add(s);
    }
    {
        // Control for the kill cell: same machine and algorithm, but
        // the interval spans many build windows, so construction
        // survives — together the two cells bracket the re-key
        // interval at which the attack dies.
        ScenarioSpec s = base(
            "defense-rekey-slow-tiny-build",
            "Control: re-keying slower than the build window leaves "
            "construction alive",
            St::EvsetBuild, M::TinyTest, 2, R::LRU, "silent", A::BinS);
        s.defaultTrials = 6;
        s.defense.kind = DefenseKind::KeyedRekey;
        s.defense.rekeyIntervalMs = 0.5;
        reg.add(s);
    }
    {
        ScenarioSpec s = base(
            "defense-rekey-skl-build",
            "Fast re-keying vs eviction-set construction on "
            "Skylake-SP",
            St::EvsetBuild, M::SkylakeSp, 2, R::LRU, "local", A::BinS);
        s.defaultTrials = 3;
        s.defense.kind = DefenseKind::KeyedRekey;
        s.defense.rekeyIntervalMs = 0.05;
        reg.add(s);
    }
    {
        // Partitioning protects victim residency, not the mapping:
        // eviction sets still build fine inside the attacker's own
        // partition — the cell documents that non-result.
        ScenarioSpec s = base(
            "defense-sfpart-icx-build",
            "SF partition does not stop eviction-set construction "
            "(Ice Lake)",
            St::EvsetBuild, M::IceLakeSp, 2, R::LRU, "local", A::BinS);
        s.defaultTrials = 3;
        s.defense.kind = DefenseKind::SfPart;
        s.defense.protectedWays = 2;
        reg.add(s);
    }
    {
        // Step 0 under a static keyed hash: blind calibration measures
        // geometry through the randomized mapping.
        ScenarioSpec s = calibBase(
            "defense-rekey-off-tiny-calib",
            "Blind calibration through a static keyed index hash",
            M::TinyTest, 2, R::LRU, "silent");
        s.defaultTrials = 3;
        s.assumedMaxUncertainty = 16;
        s.assumedMaxWays = 8;
        s.calibSamplePages = 96;
        s.defense.kind = DefenseKind::KeyedRekey;
        s.defense.rekeyIntervalMs = 0.0;
        reg.add(s);
    }
    {
        ScenarioSpec s = calibBase(
            "defense-rekey-fast-tiny-calib",
            "Blind calibration degrades under fast re-keying",
            M::TinyTest, 2, R::LRU, "silent");
        s.defaultTrials = 3;
        s.assumedMaxUncertainty = 16;
        s.assumedMaxWays = 8;
        s.calibSamplePages = 96;
        s.defense.kind = DefenseKind::KeyedRekey;
        s.defense.rekeyIntervalMs = 0.05;
        reg.add(s);
    }
    {
        ScenarioSpec s = campaignBase(
            "defense-rekey-tiny-campaign-2",
            "2-victim fleet attacked through periodic re-keying",
            M::TinyTest, 2, R::LRU, "silent", 2);
        s.scanTimeoutSec = 0.3;
        s.defense.kind = DefenseKind::KeyedRekey;
        // Mild interval: several re-keys per victim attack, yet most
        // training traces stay inside one key epoch.
        s.defense.rekeyIntervalMs = 2.0;
        reg.add(s);
    }

    // ---- Blind campaigns: Step 0 feeds Steps 1-3 with calibrated
    // topology; calibration cycles count toward cycles-per-key.
    {
        ScenarioSpec s = campaignBase(
            "campaign-blind-skl-quiet-2",
            "Blind 2-victim fleet: calibrate, then attack Skylake-SP",
            M::SkylakeSp, 2, R::LRU, "quiet", 2);
        s.blindTopology = true;
        reg.add(s);
    }
    {
        ScenarioSpec s = campaignBase(
            "campaign-blind-tiny-silent-2",
            "Blind 2-victim fleet on the tiny silent anchor host",
            M::TinyTest, 2, R::LRU, "silent", 2);
        s.blindTopology = true;
        s.assumedMaxUncertainty = 16;
        s.assumedMaxWays = 8;
        s.calibSamplePages = 96;
        s.scanTimeoutSec = 1.0;
        reg.add(s);
    }

    // ---- Traffic axis (bench_traffic's domain; excluded from the
    // bench_matrix and bench_e2e default sets): open-loop arrival
    // processes, the AES table-lookup victim family, co-tenant load,
    // key rotation and the adaptive scanner.  Cell names use the
    // "traffic-" prefix so the stage-pure selections stay stable.
    {
        ScenarioSpec s = base(
            "traffic-poisson-skl-scan",
            "PSD scan of an open-loop Poisson ECDSA victim on "
            "Skylake-SP",
            St::Scan, M::SkylakeSp, 2, R::LRU, "local", A::BinS);
        s.defaultTrials = 2;
        s.scanTimeoutSec = 3.0;
        s.victimArrival.kind = ArrivalKind::Poisson;
        s.victimArrival.ratePerSec = 60.0;
        reg.add(s);
    }
    {
        ScenarioSpec s = base(
            "traffic-bursty-icx-scan",
            "PSD scan of a bursty on/off ECDSA victim on Ice Lake-SP",
            St::Scan, M::IceLakeSp, 2, R::LRU, "local", A::BinS);
        s.defaultTrials = 2;
        s.scanTimeoutSec = 3.0;
        s.victimArrival.kind = ArrivalKind::Bursty;
        s.victimArrival.ratePerSec = 60.0;
        reg.add(s);
    }
    {
        ScenarioSpec s = base(
            "traffic-poisson-tiny-e2e",
            "Full attack against an open-loop Poisson ECDSA victim",
            St::EndToEnd, M::TinyTest, 2, R::LRU, "silent", A::BinS);
        s.defaultTrials = 2;
        s.scanTimeoutSec = 3.0;
        s.victimArrival.kind = ArrivalKind::Poisson;
        s.victimArrival.ratePerSec = 120.0;
        reg.add(s);
    }
    {
        // The AES nibble-recovery anchor: the attacker monitors one
        // T-table line across table-lookup encryptions and recovers
        // the four observable key-byte upper nibbles by elimination.
        ScenarioSpec s = base(
            "traffic-aes-tiny-e2e",
            "Full attack recovers AES key nibbles from one T-table "
            "line",
            St::EndToEnd, M::TinyTest, 2, R::LRU, "silent", A::BinS);
        s.defaultTrials = 2;
        s.scanTimeoutSec = 3.0;
        s.tracesPerVictim = 12;
        s.victimFamily = VictimFamily::AesTable;
        s.victimArrival.kind = ArrivalKind::Poisson;
        s.victimArrival.ratePerSec = 200.0;
        reg.add(s);
    }
    {
        ScenarioSpec s = base(
            "traffic-aes-bursty-tiny-scan",
            "PSD scan locks onto a bursty AES table-lookup victim",
            St::Scan, M::TinyTest, 2, R::LRU, "silent", A::BinS);
        s.defaultTrials = 3;
        s.scanTimeoutSec = 3.0;
        s.victimFamily = VictimFamily::AesTable;
        s.victimArrival.kind = ArrivalKind::Bursty;
        s.victimArrival.ratePerSec = 400.0;
        reg.add(s);
    }
    {
        // Co-tenant contention: pinned open-loop load streams share
        // the LLC/SF with the attack, so probes contend with offered
        // load end to end.
        ScenarioSpec s = base(
            "traffic-cotenant-tiny-e2e",
            "Full attack with two co-tenants offering open-loop load",
            St::EndToEnd, M::TinyTest, 2, R::LRU, "silent", A::BinS);
        s.defaultTrials = 2;
        s.scanTimeoutSec = 3.0;
        s.coTenants = 2;
        s.coTenantRps = 3000.0;
        reg.add(s);
    }
    {
        // The degraded-but-explicit cell: the arrival rate leaves the
        // victim idle for most of the scan window, so the scanner
        // usually times out — recorded as target_found = false, never
        // a crash or a silent success.
        ScenarioSpec s = base(
            "traffic-sparse-tiny-scan",
            "Degraded cell: a sparse open-loop victim starves the "
            "scan",
            St::Scan, M::TinyTest, 2, R::LRU, "silent", A::BinS);
        s.defaultTrials = 3;
        // Finding this victim takes ~190-260 ms of scanning at
        // 8 rps; the 150 ms budget forces the explicit scored miss
        // the bench gate pins (degrade, never crash).
        s.scanTimeoutSec = 0.15;
        s.victimArrival.kind = ArrivalKind::Poisson;
        s.victimArrival.ratePerSec = 8.0;
        reg.add(s);
    }
    {
        ScenarioSpec s = base(
            "traffic-adaptive-tiny-scan",
            "UCB-adaptive scan of an open-loop Poisson ECDSA victim",
            St::Scan, M::TinyTest, 2, R::LRU, "silent", A::BinS);
        s.defaultTrials = 3;
        s.scanTimeoutSec = 3.0;
        s.adaptiveScan = true;
        s.victimArrival.kind = ArrivalKind::Poisson;
        s.victimArrival.ratePerSec = 120.0;
        reg.add(s);
    }
    {
        // Key rotation: the victim re-keys every 4 requests, so the
        // campaign scores each key epoch independently (DESIGN.md
        // §11) and the headline counts epochs, not victims.
        ScenarioSpec s = campaignBase(
            "traffic-rotate-tiny-campaign-2",
            "2-victim fleet with mid-campaign key rotation every 4 "
            "requests",
            M::TinyTest, 2, R::LRU, "silent", 2);
        s.scanTimeoutSec = 1.0;
        s.rotateKeys = 4;
        s.tracesPerVictim = 10; // spans three key epochs per victim
        reg.add(s);
    }

    return reg;
}

} // namespace

void
ScenarioRegistry::add(ScenarioSpec spec)
{
    if (find(spec.name))
        fatal("duplicate scenario name '%s'", spec.name.c_str());
    if (spec.name.empty())
        fatal("scenario must have a name");
    specs_.push_back(std::move(spec));
}

const ScenarioSpec *
ScenarioRegistry::find(std::string_view name) const
{
    for (const auto &s : specs_) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

std::vector<const ScenarioSpec *>
ScenarioRegistry::select(std::string_view patterns) const
{
    std::vector<bool> picked(specs_.size(), false);
    std::size_t start = 0;
    while (start <= patterns.size()) {
        std::size_t comma = patterns.find(',', start);
        if (comma == std::string_view::npos)
            comma = patterns.size();
        std::string_view pat = patterns.substr(start, comma - start);
        start = comma + 1;
        if (pat.empty())
            continue;
        bool matched = false;
        const bool glob = !pat.empty() && pat.back() == '*';
        const std::string_view prefix =
            glob ? pat.substr(0, pat.size() - 1) : pat;
        for (std::size_t i = 0; i < specs_.size(); ++i) {
            const std::string &name = specs_[i].name;
            const bool hit = glob
                                 ? name.compare(0, prefix.size(),
                                                prefix) == 0
                                 : name == pat;
            if (hit) {
                picked[i] = true;
                matched = true;
            }
        }
        if (!matched)
            fatal("no scenario matches '%.*s' (try --list)",
                  static_cast<int>(pat.size()), pat.data());
    }
    std::vector<const ScenarioSpec *> out;
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        if (picked[i])
            out.push_back(&specs_[i]);
    }
    return out;
}

const ScenarioRegistry &
builtinScenarios()
{
    static const ScenarioRegistry reg = makeBuiltins();
    return reg;
}

} // namespace llcf
