/**
 * @file
 * Named end-to-end attack scenarios.
 *
 * A scenario is one point in the experiment matrix the paper sweeps
 * by hand: a host microarchitecture, a shared-cache replacement
 * policy, an environment noise profile, a pruning algorithm and
 * attacker knobs, plus a pipeline-stage selector choosing how deep
 * into the attack the scenario drives (eviction-set construction
 * only, PSD scanning, or the full nonce-recovery attack).
 *
 * Scenarios execute on the deterministic experiment harness: every
 * trial builds its whole world (machine, attacker session, candidate
 * pool, victim) from its positional RNG stream, so a scenario's
 * aggregate — and its BENCH_scenarios.json serialisation — is
 * byte-identical at any worker-thread count.
 */

#ifndef LLCF_SCENARIO_SCENARIO_HH
#define LLCF_SCENARIO_SCENARIO_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "attack/scanner.hh"
#include "calib/prober.hh"
#include "defense/defense.hh"
#include "evset/builder.hh"
#include "harness/experiment.hh"
#include "noise/profile.hh"

namespace llcf {

/** How deep into the attack pipeline a scenario drives. */
enum class ScenarioStage
{
    EvsetBuild, //!< Step 1 only: one SF eviction set per trial
    Scan,       //!< Steps 1-2: bulk build + PSD target-set scan
    EndToEnd,   //!< Steps 1-3: full EndToEndAttack with extraction
    Campaign,   //!< Steps 1-3 against a whole victim fleet (one
                //!< victim world per harness trial; see src/campaign/)
    Calibrate,  //!< Step 0 only: blind topology calibration, gated on
                //!< per-field accuracy vs the oracle (see src/calib/)
};

/** Human-readable stage name. */
const char *scenarioStageName(ScenarioStage stage);

/** Host selector, kept symbolic so specs stay declarative. */
enum class ScenarioMachine { SkylakeSp, IceLakeSp, ScaledSkylake, TinyTest };

/** Human-readable machine-kind name. */
const char *scenarioMachineName(ScenarioMachine machine);

/**
 * Full declarative description of one scenario: the registry key
 * plus everything needed to rebuild its world from a trial seed.
 */
struct ScenarioSpec
{
    std::string name;        //!< registry key, e.g. "build-bins-skl-lru-cloud"
    std::string description; //!< one-line intent, shown by --list

    // ------------------------------------------------- matrix axes
    ScenarioMachine machine = ScenarioMachine::TinyTest; //!< host kind
    unsigned slices = 2;                  //!< host slice count
    ReplKind sharedRepl = ReplKind::LRU;  //!< LLC + SF policy
    std::string noise = "quiescent-local"; //!< NoiseProfile name
    PruneAlgo algo = PruneAlgo::BinS;     //!< Step-1 pruning algorithm
    bool useFilter = true; //!< L2-driven candidate filtering
    ScenarioStage stage = ScenarioStage::EvsetBuild; //!< pipeline depth

    /** Host-side defense deployed against the attacker (the defense
     *  axis; see src/defense/).  Default = undefended host. */
    DefenseSpec defense;

    // --------------------------------------------- attacker knobs
    double evsetBudgetMs = 100.0; //!< per-set construction budget
    double candidateFactor = 3.0; //!< pool size factor (N = f*U*W)

    // --------------------------------------------- stage-specific
    unsigned tracesPerVictim = 2;    //!< EndToEnd: signings monitored
    unsigned trainTargetTraces = 20; //!< Scan/EndToEnd: classifier
    unsigned trainNontargetTraces = 40;
    double scanTimeoutSec = 10.0;    //!< Scan/EndToEnd scanner timeout

    // --------------------------------------- campaign (Stage::Campaign)
    // A campaign runs a fleet of victim services — one per harness
    // trial — through the full Step 1-3 pipeline.  Victims differ
    // positionally: victim v gets its own RNG streams (and therefore
    // its own ECDSA key), its own target page offset, and its noise
    // profile from the rotation below.

    /** Victims in the fleet (the campaign's defaultTrials). */
    unsigned fleetSize = 4;

    /** Per-victim noise rotation; empty = every victim uses noise. */
    std::vector<std::string> fleetNoises;

    /** Victim v's target page-line index:
     *  (fleetLineIndexBase + fleetLineIndexStep * v) % 64. */
    unsigned fleetLineIndexBase = 21;
    unsigned fleetLineIndexStep = 13;

    /** Per-victim request quota (0 = unlimited); see VictimConfig. */
    std::uint64_t victimRequestQuota = 0;

    /**
     * Fork victims from a warmed-world snapshot instead of rebuilding
     * the whole world per trial: each campaign worker builds ONE
     * world (machine, session, classifier, Step-1 eviction sets, the
     * one-time Step-2 scan), snapshots it, and every victim trial
     * restores the snapshot and runs only the Step-3 monitoring loop
     * against its own key.  This is what makes >= 10^5-victim fleets
     * tractable.  Requires a uniform fleet — fleetLineIndexStep == 0
     * and no fleetNoises rotation — so the scanned eviction set is
     * valid for every victim (fatal otherwise).
     */
    bool forkVictims = false;

    /** Exclude from default bench selections; run only under
     *  --full-scale (or by explicit --scenario= name). */
    bool fullScaleOnly = false;

    /** A victim's key counts as recovered iff the correct SF set was
     *  monitored and the mean recovered fraction / bit error rate of
     *  its traces clear these bands.  With key rotation the same
     *  bands apply per epoch (DESIGN.md §11). */
    double keyMinRecoveredFraction = 0.35;
    double keyMaxBitErrorRate = 0.35;

    // ------------------------------------------------ traffic axis
    // Heavy-traffic realism: which service family the victim runs,
    // open-loop offered load, mid-campaign key rotation, and the
    // scanner's adaptive budget allocation.  All default-off so
    // every pre-existing cell keeps its serialized bytes.

    /** Victim service family (ECDSA ladder or T-table AES). */
    VictimFamily victimFamily = VictimFamily::EcdsaLadder;

    /** Open-loop victim request arrivals (inactive = closed loop). */
    ArrivalSpec victimArrival;

    /** Co-tenant services emitting pinned offered load (0 = none). */
    unsigned coTenants = 0;

    /** Per-co-tenant mean arrival rate (requests per second). */
    double coTenantRps = 0.0;

    /** Victim requests per key epoch (0 = never rotate). */
    std::uint64_t rotateKeys = 0;

    /** Scanner uses UCB bandit budget allocation (Step 2). */
    bool adaptiveScan = false;

    /** True iff any traffic-axis knob is set; such cells run under
     *  bench_traffic and are excluded from the bench_matrix /
     *  bench_e2e default selections so committed baselines keep
     *  their bytes. */
    bool
    trafficDomain() const
    {
        return victimFamily != VictimFamily::EcdsaLadder ||
               victimArrival.active() || coTenants > 0 ||
               rotateKeys > 0 || adaptiveScan;
    }

    // ------------------------------------ Step 0 (Stage::Calibrate
    // scenarios, and any stage with blindTopology set)

    /**
     * Blind-topology mode: the attacker session starts with *no*
     * shared-cache geometry (consulting it pre-calibration is fatal),
     * sizes its candidate pool from the assumed bounds below, and
     * runs the Step-0 TopologyProber before its attack stages.
     * Stage Calibrate implies blind and stops after Step 0; every
     * other stage calibrates first and records the calibration
     * outcomes alongside its own, with a failed Step 0 degrading to
     * explicit failure outcomes.  A blind Campaign additionally
     * charges the calibration cycles to the per-key cost.
     */
    bool blindTopology = false;

    double calibBudgetMs = 400.0; //!< Step-0 virtual-time budget
    unsigned calibTargets = 2;    //!< independent calibration targets
    unsigned calibSamplePages = 160; //!< U-estimator scan window

    /** Blind pool-sizing priors (see requiredPagesBlind): upper
     *  bounds the attacker assumes for U and W before measuring. */
    unsigned assumedMaxUncertainty = 96;
    unsigned assumedMaxWays = 14;

    std::size_t defaultTrials = 4; //!< trials when the caller passes 0

    /** Instantiate the host config (slices + shared policy applied). */
    MachineConfig machineConfig() const;

    /** Resolve the noise profile; fatal on an unknown name. */
    NoiseProfile noiseProfile() const;

    /** True iff the attacker session must start without geometry
     *  (Stage::Calibrate always does; other stages opt in). */
    bool
    blind() const
    {
        return blindTopology || stage == ScenarioStage::Calibrate;
    }

    /** The Step-0 prober configuration this spec implies. */
    CalibrationConfig calibrationConfig() const;
};

/**
 * One trial's world, rebuilt per trial from the spec and the trial's
 * stream seed: machine, attacker session, candidate pool.  Machine,
 * attacker and victim randomness are derived positionally from the
 * seed, so two rigs from the same (spec, seed) are identical.
 */
struct ScenarioRig
{
    ScenarioRig(const ScenarioSpec &spec, std::uint64_t seed);

    /** Seed for the victim service of this trial (stage Scan/E2E). */
    std::uint64_t victimSeed() const { return victimSeed_; }

    Machine machine; //!< this trial's simulated host

    /** Attacker context; starts blind iff spec.blind(). */
    std::unique_ptr<AttackSession> session;

    std::unique_ptr<CandidatePool> pool; //!< attacker candidate pages

  private:
    std::uint64_t victimSeed_ = 0;
};

/**
 * Execute one trial of @p spec, recording stage-appropriate metrics:
 *
 *  - EvsetBuild: outcome "success"; metrics "build_cycles", "attempts"
 *  - Scan: outcomes "evsets_built", "target_found", "target_correct";
 *    metrics "build_cycles", "scan_cycles", "sets_scanned"
 *  - EndToEnd: the scan outcomes plus metrics "extract_cycles",
 *    "total_cycles", "recovered_fraction", "bit_error_rate"
 *
 * Uses only @p ctx state — never ambient randomness — so the harness
 * determinism contract holds.
 */
void runScenarioTrial(const ScenarioSpec &spec, TrialContext &ctx,
                      TrialRecorder &rec);

/**
 * Run @p spec on the experiment harness.
 *
 * @param trials 0 = spec.defaultTrials.
 * @param threads 0 = LLCF_THREADS / hardware concurrency.
 * @param masterSeed Root of the per-trial RNG streams.
 */
ExperimentResult runScenario(const ScenarioSpec &spec,
                             std::size_t trials = 0, unsigned threads = 0,
                             std::uint64_t masterSeed = 42);

/**
 * Train the PSD trace classifier the way the paper does — offline,
 * on a controlled victim instance of the same host class — using the
 * rig's session, pool and the scenario's training-trace counts.
 * Campaign trials train on an attacker-side replica victim, so the
 * production victim's request quota stays untouched.
 */
TraceClassifier trainScenarioClassifier(const ScenarioSpec &spec,
                                        ScenarioRig &rig,
                                        Victim &victim);

/**
 * Run Step 0 for a blind rig: probe the topology with the spec's
 * calibration knobs and, when the result is valid, adopt it into the
 * rig's session so the attack stages can proceed.  Fatal when called
 * on a non-blind rig (the session already has oracle geometry — the
 * calibration would silently measure nothing new).
 */
CalibratedTopology runScenarioCalibration(const ScenarioSpec &spec,
                                          ScenarioRig &rig);

/**
 * Record a calibration's outcomes/metrics under the canonical names:
 * outcome "calibrated" plus one "<field>_match" per report field and
 * "topology_match" for the conjunction; metrics "calib_cycles",
 * "calib_test_evictions", "calib_confidence" and the measured
 * geometry fields.
 */
void recordCalibration(TrialRecorder &rec,
                       const CalibratedTopology &calib,
                       const CalibrationReport &report);

/**
 * Record one trial's hierarchy PerfCounters under the canonical
 * "pc_*" metric names (accesses, hit/miss split, LLC/SF evictions,
 * coherence downgrades, simulated cycles and cycles-per-access).
 * Scenario trials call this when LLCF_COUNTERS is set (see
 * countersEnabled()); bench_hotpath records them unconditionally.
 */
void recordPerfCounters(TrialRecorder &rec, const PerfCounters &pc);

/**
 * Record one trial's defense event totals under the canonical
 * "def_*" metric names (re-keys, lines remapped, watchdog
 * probe/miss/fire counts plus the windowed self-miss rate), and —
 * when @p working_set is non-null — the fraction of those victim
 * lines still cached anywhere ("def_victim_resident": the residency
 * cost re-keying and partition pressure impose on the victim's own
 * working set).  Trial bodies call this iff
 * spec.defense.recordsMetrics(), so undefended cells keep their
 * serialized shape byte-identical.
 */
void recordDefenseMetrics(TrialRecorder &rec, const Machine &machine,
                          const std::vector<Addr> *working_set);

/**
 * Arm the machine's self-eviction watchdog on @p victim's working set
 * (target + decoy lines) iff the machine deploys one.  Called by the
 * victim-bearing trial bodies right after victim construction so the
 * watchdog observes the whole attack window.
 */
void maybeArmScenarioWatchdog(Machine &machine, const Victim &victim);

/**
 * Build the trial's victim from the spec's traffic axis: family,
 * open-loop arrival spec, and rotation interval applied on top of
 * the caller's line index / quota / seed.  Pre-traffic cells hit the
 * identical EcdsaLadderVictim construction path.
 */
std::unique_ptr<Victim> makeScenarioVictim(const ScenarioSpec &spec,
                                           Machine &machine,
                                           std::uint64_t seed,
                                           unsigned line_index,
                                           std::uint64_t quota);

/**
 * Register the spec's co-tenant offered load as pinned machine
 * streams spanning the remainder of the trial (no-op returning null
 * when spec.coTenants == 0).  Call after classifier training —
 * training is offline on attacker-controlled hosts — and before
 * Step 1, so build, scan and monitor all contend with the load.
 */
std::unique_ptr<CoTenantLoad> makeScenarioLoad(const ScenarioSpec &spec,
                                               Machine &machine,
                                               std::uint64_t seed);

/**
 * Record the traffic axis's per-trial metrics (traffic_* series) iff
 * spec.trafficDomain(): offered rate, arrivals served, mean queue
 * delay, scheduled co-tenant accesses.  Keeps non-traffic cells'
 * serialized shape untouched.
 */
void maybeRecordTraffic(const ScenarioSpec &spec, TrialRecorder &rec,
                        const Victim &victim, const CoTenantLoad *load);

} // namespace llcf

#endif // LLCF_SCENARIO_SCENARIO_HH
