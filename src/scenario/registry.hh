/**
 * @file
 * The scenario registry: named points of the machine x policy x noise
 * x algorithm x stage matrix, so benches, tests and future sweeps
 * address scenarios by name instead of re-wiring configuration by
 * hand.  Adding a scenario for a new policy, host or victim is ~10
 * lines in builtinScenarios().
 */

#ifndef LLCF_SCENARIO_REGISTRY_HH
#define LLCF_SCENARIO_REGISTRY_HH

#include <string_view>
#include <vector>

#include "scenario/scenario.hh"

namespace llcf {

/**
 * An ordered, name-unique collection of scenario specs.  Insertion
 * order is preserved — it determines bench_matrix's execution and
 * JSON output order.
 */
class ScenarioRegistry
{
  public:
    /** Register one scenario; fatal on a duplicate name. */
    void add(ScenarioSpec spec);

    /** Spec by exact name, or nullptr. */
    const ScenarioSpec *find(std::string_view name) const;

    /** All specs in registration order. */
    const std::vector<ScenarioSpec> &all() const { return specs_; }

    /**
     * Resolve a comma-separated selection.  Each element is an exact
     * name or a prefix glob like "build-*"; fatal on an element that
     * matches nothing.  Duplicates are dropped, order follows the
     * registry.
     */
    std::vector<const ScenarioSpec *> select(std::string_view patterns)
        const;

  private:
    std::vector<ScenarioSpec> specs_;
};

/**
 * The built-in scenario matrix: both host configurations (Skylake-SP
 * and Ice Lake-SP), all four replacement policies, the paper's noise
 * regimes plus the deterministic "silent" lab, every pruning
 * algorithm, and all three pipeline stages.
 */
const ScenarioRegistry &builtinScenarios();

} // namespace llcf

#endif // LLCF_SCENARIO_REGISTRY_HH
