#include "scenario.hh"

#include "attack/e2e.hh"
#include "campaign/campaign.hh"
#include "common/log.hh"
#include "common/options.hh"
#include "common/rng.hh"

namespace llcf {
namespace {

/** Positional sub-seed: trial seed -> per-actor stream. */
std::uint64_t
actorSeed(std::uint64_t trial_seed, std::uint64_t actor)
{
    return streamSeed(trial_seed, actor);
}

constexpr std::uint64_t kMachineActor = 0;
constexpr std::uint64_t kAttackerActor = 1;
constexpr std::uint64_t kVictimActor = 2;

/** Counters hook shared by the trial bodies (opt-in via env). */
void
maybeRecordCounters(const ScenarioRig &rig, TrialRecorder &rec)
{
    if (countersEnabled())
        recordPerfCounters(rec, rig.machine.perfCounters());
}

void
runEvsetBuildTrial(const ScenarioSpec &spec, TrialContext &ctx,
                   TrialRecorder &rec)
{
    ScenarioRig rig(spec, ctx.seed);
    const std::size_t t = ctx.index;
    auto cands = rig.pool->candidatesAt(
        static_cast<unsigned>((3 * t) % kLinesPerPage));
    const Addr ta = cands[t % cands.size()];
    cands.erase(cands.begin() + static_cast<long>(t % cands.size()));

    EvictionSetBuilder builder(*rig.session, spec.algo, spec.useFilter);
    auto out = builder.buildForTarget(ta, cands);
    rec.outcome("success", out.success && out.groundTruthValid);
    rec.metric("build_cycles", static_cast<double>(out.elapsed));
    rec.metric("attempts", static_cast<double>(out.attempts));
    maybeRecordCounters(rig, rec);
}

void
runScanTrial(const ScenarioSpec &spec, TrialContext &ctx,
             TrialRecorder &rec)
{
    ScenarioRig rig(spec, ctx.seed);
    Machine &m = rig.machine;
    VictimConfig vcfg;
    vcfg.seed = rig.victimSeed();
    VictimService victim(m, vcfg);
    TraceClassifier classifier = trainScenarioClassifier(spec, rig,
                                                         victim);

    Cycles t0 = m.now();
    EvictionSetBuilder builder(*rig.session, spec.algo, spec.useFilter);
    auto bulk = builder.buildAtLineIndex(*rig.pool,
                                         victim.targetLineIndex());
    rec.metric("build_cycles", static_cast<double>(m.now() - t0));
    rec.outcome("evsets_built", !bulk.evsets.empty());
    if (bulk.evsets.empty())
        return;

    // Keep the victim serving requests across the scan window.
    victim.serveRequests(m.now(), 8);
    t0 = m.now();
    TargetSetScanner scanner(*rig.session, classifier);
    auto res = scanner.scan(bulk.evsets);
    m.clearStreams();
    rec.metric("scan_cycles", static_cast<double>(m.now() - t0));
    rec.metric("sets_scanned", static_cast<double>(res.setsScanned));
    rec.outcome("target_found", res.found);
    rec.outcome("target_correct",
                res.found &&
                    m.sharedSetOf(bulk.evsets[res.evsetIndex].target) ==
                        m.sharedSetOf(victim.targetLinePa()));
    maybeRecordCounters(rig, rec);
}

void
runEndToEndTrial(const ScenarioSpec &spec, TrialContext &ctx,
                 TrialRecorder &rec)
{
    ScenarioRig rig(spec, ctx.seed);
    VictimConfig vcfg;
    vcfg.seed = rig.victimSeed();
    VictimService victim(rig.machine, vcfg);
    TraceClassifier classifier = trainScenarioClassifier(spec, rig,
                                                         victim);
    NonceExtractor extractor; // rule-based boundary detection

    E2EParams params;
    params.algo = spec.algo;
    params.useFilter = spec.useFilter;
    params.tracesPerVictim = spec.tracesPerVictim;
    params.scanner.timeout = secToCycles(spec.scanTimeoutSec);
    EndToEndAttack attack(*rig.session, victim, classifier, extractor,
                          params);
    auto res = attack.run(*rig.pool);

    rec.outcome("evsets_built", res.evsetsBuilt);
    rec.outcome("target_found", res.targetFound);
    rec.outcome("target_correct", res.targetCorrect);
    rec.metric("build_cycles", static_cast<double>(res.buildTime));
    rec.metric("scan_cycles", static_cast<double>(res.scanTime));
    rec.metric("extract_cycles", static_cast<double>(res.extractTime));
    rec.metric("total_cycles", static_cast<double>(res.totalTime()));
    for (double v : res.recoveredFraction.samples())
        rec.metric("recovered_fraction", v);
    for (double v : res.bitErrorRate.samples())
        rec.metric("bit_error_rate", v);
    maybeRecordCounters(rig, rec);
}

} // namespace

TraceClassifier
trainScenarioClassifier(const ScenarioSpec &spec, ScenarioRig &rig,
                        VictimService &victim)
{
    ScannerParams sparams;
    sparams.timeout = secToCycles(spec.scanTimeoutSec);
    TraceClassifier classifier(sparams);
    ScannerTrainer trainer(*rig.session, victim, *rig.pool);
    classifier.train(trainer.collect(classifier, spec.trainTargetTraces,
                                     spec.trainNontargetTraces));
    return classifier;
}

const char *
scenarioStageName(ScenarioStage stage)
{
    switch (stage) {
      case ScenarioStage::EvsetBuild:
        return "evset-build";
      case ScenarioStage::Scan:
        return "scan";
      case ScenarioStage::EndToEnd:
        return "end-to-end";
      case ScenarioStage::Campaign:
        return "campaign";
    }
    return "?";
}

const char *
scenarioMachineName(ScenarioMachine machine)
{
    switch (machine) {
      case ScenarioMachine::SkylakeSp:
        return "skylake-sp";
      case ScenarioMachine::IceLakeSp:
        return "icelake-sp";
      case ScenarioMachine::ScaledSkylake:
        return "skylake-scaled";
      case ScenarioMachine::TinyTest:
        return "tiny";
    }
    return "?";
}

MachineConfig
ScenarioSpec::machineConfig() const
{
    MachineConfig cfg;
    switch (machine) {
      case ScenarioMachine::SkylakeSp:
        cfg = skylakeSp(slices);
        break;
      case ScenarioMachine::IceLakeSp:
        cfg = iceLakeSp(slices);
        break;
      case ScenarioMachine::ScaledSkylake:
        cfg = scaledSkylake(slices);
        break;
      case ScenarioMachine::TinyTest:
        cfg = tinyTest(slices);
        break;
    }
    return cfg.withSharedRepl(sharedRepl);
}

NoiseProfile
ScenarioSpec::noiseProfile() const
{
    NoiseProfile p;
    if (!noiseProfileByName(noise, p))
        fatal("scenario '%s': unknown noise profile '%s'", name.c_str(),
              noise.c_str());
    return p;
}

ScenarioRig::ScenarioRig(const ScenarioSpec &spec, std::uint64_t seed)
    : machine(spec.machineConfig(), spec.noiseProfile(),
              actorSeed(seed, kMachineActor))
{
    AttackerConfig acfg;
    acfg.seed = actorSeed(seed, kAttackerActor);
    acfg.evsetBudget = msToCycles(spec.evsetBudgetMs);
    acfg.candidateFactor = spec.candidateFactor;
    session = std::make_unique<AttackSession>(machine, acfg);
    pool = std::make_unique<CandidatePool>(
        *session,
        CandidatePool::requiredPages(machine, spec.candidateFactor));
    victimSeed_ = actorSeed(seed, kVictimActor);
}

void
runScenarioTrial(const ScenarioSpec &spec, TrialContext &ctx,
                 TrialRecorder &rec)
{
    switch (spec.stage) {
      case ScenarioStage::EvsetBuild:
        runEvsetBuildTrial(spec, ctx, rec);
        return;
      case ScenarioStage::Scan:
        runScanTrial(spec, ctx, rec);
        return;
      case ScenarioStage::EndToEnd:
        runEndToEndTrial(spec, ctx, rec);
        return;
      case ScenarioStage::Campaign:
        runCampaignVictimTrial(spec, ctx, rec);
        return;
    }
    fatal("scenario '%s': unknown stage", spec.name.c_str());
}

void
recordPerfCounters(TrialRecorder &rec, const PerfCounters &pc)
{
    rec.metric("pc_accesses", static_cast<double>(pc.accesses));
    rec.metric("pc_hits", static_cast<double>(pc.hits));
    rec.metric("pc_misses", static_cast<double>(pc.misses));
    rec.metric("pc_l1_evictions", static_cast<double>(pc.l1.evictions));
    rec.metric("pc_l2_evictions", static_cast<double>(pc.l2.evictions));
    rec.metric("pc_llc_evictions",
               static_cast<double>(pc.llc.evictions));
    rec.metric("pc_sf_evictions", static_cast<double>(pc.sf.evictions));
    rec.metric("pc_coh_downgrades",
               static_cast<double>(pc.cohDowngrades));
    rec.metric("pc_sim_cycles", static_cast<double>(pc.simCycles));
    if (pc.accesses) {
        rec.metric("pc_cycles_per_access",
                   static_cast<double>(pc.simCycles) /
                       static_cast<double>(pc.accesses));
    }
}

ExperimentResult
runScenario(const ScenarioSpec &spec, std::size_t trials,
            unsigned threads, std::uint64_t masterSeed)
{
    ExperimentConfig cfg;
    cfg.name = spec.name;
    cfg.trials = trials ? trials : spec.defaultTrials;
    cfg.threads = threads;
    cfg.masterSeed = masterSeed;
    ExperimentRunner runner(cfg);
    return runner.run([&spec](TrialContext &ctx, TrialRecorder &rec) {
        runScenarioTrial(spec, ctx, rec);
    });
}

} // namespace llcf
