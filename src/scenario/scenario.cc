#include "scenario.hh"

#include "attack/e2e.hh"
#include "campaign/campaign.hh"
#include "common/log.hh"
#include "common/options.hh"
#include "common/rng.hh"

namespace llcf {
namespace {

/** Positional sub-seed: trial seed -> per-actor stream. */
std::uint64_t
actorSeed(std::uint64_t trial_seed, std::uint64_t actor)
{
    return streamSeed(trial_seed, actor);
}

constexpr std::uint64_t kMachineActor = 0;
constexpr std::uint64_t kAttackerActor = 1;
constexpr std::uint64_t kVictimActor = 2;

/** Counters hook shared by the trial bodies (opt-in via env). */
void
maybeRecordCounters(const ScenarioRig &rig, TrialRecorder &rec)
{
    if (countersEnabled())
        recordPerfCounters(rec, rig.machine.perfCounters());
}

/** The victim lines a defense watches: target + decoys. */
std::vector<Addr>
victimWorkingSet(const Victim &victim)
{
    std::vector<Addr> lines;
    lines.reserve(1 + victim.decoyPas().size());
    lines.push_back(victim.targetLinePa());
    lines.insert(lines.end(), victim.decoyPas().begin(),
                 victim.decoyPas().end());
    return lines;
}

/**
 * Defense hook shared by the trial bodies: record the "def_*" series
 * iff the spec asks for them (active defense, or an undefended
 * baseline cell with measure set).  Gated here so the existing cells'
 * serialized records stay byte-identical.
 */
void
maybeRecordDefense(const ScenarioSpec &spec, const ScenarioRig &rig,
                   TrialRecorder &rec, const Victim *victim)
{
    if (!spec.defense.recordsMetrics())
        return;
    if (victim) {
        const std::vector<Addr> ws = victimWorkingSet(*victim);
        recordDefenseMetrics(rec, rig.machine, &ws);
    } else {
        recordDefenseMetrics(rec, rig.machine, nullptr);
    }
}

/**
 * Step 0 for blind single-victim stages: calibrate, record, adopt.
 * Returns false when calibration failed and the attack stages cannot
 * run; the caller then records its stage outcomes and cycle metrics
 * as explicit zeros so suite aggregates keep counting failed trials.
 * @p calib_cycles receives the Step-0 cost either way — stages with
 * a total-cost metric charge it there, exactly like the campaign
 * flow in src/campaign/ charges it to the per-key cost.
 */
bool
maybeCalibrateBlind(const ScenarioSpec &spec, ScenarioRig &rig,
                    TrialRecorder &rec, Cycles *calib_cycles)
{
    *calib_cycles = 0;
    if (!spec.blind())
        return true;
    CalibratedTopology calib = runScenarioCalibration(spec, rig);
    recordCalibration(rec, calib,
                      compareToOracle(calib, rig.machine.config()));
    *calib_cycles = calib.cycles;
    return calib.valid;
}

void
runEvsetBuildTrial(const ScenarioSpec &spec, TrialContext &ctx,
                   TrialRecorder &rec)
{
    ScenarioRig rig(spec, ctx.seed);
    Cycles calibCycles = 0;
    if (!maybeCalibrateBlind(spec, rig, rec, &calibCycles)) {
        rec.outcome("success", false);
        rec.metric("build_cycles", 0.0);
        rec.metric("attempts", 0.0);
        maybeRecordDefense(spec, rig, rec, nullptr);
        maybeRecordCounters(rig, rec);
        return;
    }
    const std::size_t t = ctx.index;
    auto cands = rig.pool->candidatesAt(
        static_cast<unsigned>((3 * t) % kLinesPerPage));
    const Addr ta = cands[t % cands.size()];
    cands.erase(cands.begin() + static_cast<long>(t % cands.size()));

    EvictionSetBuilder builder(*rig.session, spec.algo, spec.useFilter);
    auto out = builder.buildForTarget(ta, cands);
    rec.outcome("success", out.success && out.groundTruthValid);
    rec.metric("build_cycles", static_cast<double>(out.elapsed));
    rec.metric("attempts", static_cast<double>(out.attempts));
    maybeRecordDefense(spec, rig, rec, nullptr);
    maybeRecordCounters(rig, rec);
}

void
runScanTrial(const ScenarioSpec &spec, TrialContext &ctx,
             TrialRecorder &rec)
{
    ScenarioRig rig(spec, ctx.seed);
    Cycles calibCycles = 0;
    if (!maybeCalibrateBlind(spec, rig, rec, &calibCycles)) {
        rec.outcome("evsets_built", false);
        rec.outcome("target_found", false);
        rec.outcome("target_correct", false);
        rec.metric("build_cycles", 0.0);
        rec.metric("scan_cycles", 0.0);
        rec.metric("sets_scanned", 0.0);
        maybeRecordDefense(spec, rig, rec, nullptr);
        maybeRecordCounters(rig, rec);
        return;
    }
    Machine &m = rig.machine;
    auto victim = makeScenarioVictim(spec, m, rig.victimSeed(),
                                     VictimConfig{}.targetLineIndex, 0);
    maybeArmScenarioWatchdog(m, *victim);
    TraceClassifier classifier = trainScenarioClassifier(spec, rig,
                                                         *victim);
    auto load = makeScenarioLoad(spec, m, rig.victimSeed());

    Cycles t0 = m.now();
    EvictionSetBuilder builder(*rig.session, spec.algo, spec.useFilter);
    auto bulk = builder.buildAtLineIndex(*rig.pool,
                                         victim->targetLineIndex());
    rec.metric("build_cycles", static_cast<double>(m.now() - t0));
    rec.outcome("evsets_built", !bulk.evsets.empty());
    if (bulk.evsets.empty()) {
        maybeRecordDefense(spec, rig, rec, victim.get());
        return;
    }

    // Keep the victim serving requests across the scan window.  Open
    // loop sizes the request count from the arrival rate; closed loop
    // keeps the historical fixed batch.
    const unsigned scanRequests =
        victim->config().arrival.active()
            ? EndToEndAttack::scanRequestCount(*victim,
                                               classifier.params())
            : 8;
    victim->serveRequests(m.now(), scanRequests);
    t0 = m.now();
    TargetSetScanner scanner(*rig.session, classifier);
    auto res = scanner.scan(bulk.evsets);
    m.clearStreams();
    rec.metric("scan_cycles", static_cast<double>(m.now() - t0));
    rec.metric("sets_scanned", static_cast<double>(res.setsScanned));
    rec.outcome("target_found", res.found);
    rec.outcome("target_correct",
                res.found &&
                    m.sharedSetOf(bulk.evsets[res.evsetIndex].target) ==
                        m.sharedSetOf(victim->targetLinePa()));
    maybeRecordDefense(spec, rig, rec, victim.get());
    maybeRecordTraffic(spec, rec, *victim, load.get());
    maybeRecordCounters(rig, rec);
}

void
runEndToEndTrial(const ScenarioSpec &spec, TrialContext &ctx,
                 TrialRecorder &rec)
{
    ScenarioRig rig(spec, ctx.seed);
    Cycles calibCycles = 0;
    if (!maybeCalibrateBlind(spec, rig, rec, &calibCycles)) {
        rec.outcome("evsets_built", false);
        rec.outcome("target_found", false);
        rec.outcome("target_correct", false);
        rec.metric("build_cycles", 0.0);
        rec.metric("scan_cycles", 0.0);
        rec.metric("extract_cycles", 0.0);
        rec.metric("total_cycles", static_cast<double>(calibCycles));
        maybeRecordDefense(spec, rig, rec, nullptr);
        maybeRecordCounters(rig, rec);
        return;
    }
    auto victim = makeScenarioVictim(spec, rig.machine,
                                     rig.victimSeed(),
                                     VictimConfig{}.targetLineIndex, 0);
    maybeArmScenarioWatchdog(rig.machine, *victim);
    TraceClassifier classifier = trainScenarioClassifier(spec, rig,
                                                         *victim);
    auto load = makeScenarioLoad(spec, rig.machine, rig.victimSeed());
    NonceExtractor extractor; // rule-based boundary detection

    E2EParams params;
    params.algo = spec.algo;
    params.useFilter = spec.useFilter;
    params.tracesPerVictim = spec.tracesPerVictim;
    params.scanner.timeout = secToCycles(spec.scanTimeoutSec);
    EndToEndAttack attack(*rig.session, *victim, classifier, extractor,
                          params);
    auto res = attack.run(*rig.pool);

    rec.outcome("evsets_built", res.evsetsBuilt);
    rec.outcome("target_found", res.targetFound);
    rec.outcome("target_correct", res.targetCorrect);
    rec.metric("build_cycles", static_cast<double>(res.buildTime));
    rec.metric("scan_cycles", static_cast<double>(res.scanTime));
    rec.metric("extract_cycles", static_cast<double>(res.extractTime));
    // Blind trials charge Step 0 into the total, as campaigns do.
    rec.metric("total_cycles",
               static_cast<double>(res.totalTime() + calibCycles));
    for (double v : res.recoveredFraction.samples())
        rec.metric("recovered_fraction", v);
    for (double v : res.bitErrorRate.samples())
        rec.metric("bit_error_rate", v);
    if (spec.victimFamily == VictimFamily::AesTable) {
        rec.metric("aes_nibbles_total",
                   static_cast<double>(res.aesNibblesTotal));
        rec.metric("aes_nibbles_correct",
                   static_cast<double>(res.aesNibblesCorrect));
    }
    maybeRecordDefense(spec, rig, rec, victim.get());
    maybeRecordTraffic(spec, rec, *victim, load.get());
    maybeRecordCounters(rig, rec);
}

void
runCalibrateTrial(const ScenarioSpec &spec, TrialContext &ctx,
                  TrialRecorder &rec)
{
    ScenarioRig rig(spec, ctx.seed);
    CalibratedTopology calib = runScenarioCalibration(spec, rig);
    recordCalibration(rec, calib,
                      compareToOracle(calib, rig.machine.config()));
    maybeRecordDefense(spec, rig, rec, nullptr);
    maybeRecordCounters(rig, rec);
}

} // namespace

TraceClassifier
trainScenarioClassifier(const ScenarioSpec &spec, ScenarioRig &rig,
                        Victim &victim)
{
    ScannerParams sparams;
    sparams.timeout = secToCycles(spec.scanTimeoutSec);
    sparams.adaptive = spec.adaptiveScan;
    TraceClassifier classifier(sparams);
    ScannerTrainer trainer(*rig.session, victim, *rig.pool);
    classifier.train(trainer.collect(classifier, spec.trainTargetTraces,
                                     spec.trainNontargetTraces));
    return classifier;
}

const char *
scenarioStageName(ScenarioStage stage)
{
    switch (stage) {
      case ScenarioStage::EvsetBuild:
        return "evset-build";
      case ScenarioStage::Scan:
        return "scan";
      case ScenarioStage::EndToEnd:
        return "end-to-end";
      case ScenarioStage::Campaign:
        return "campaign";
      case ScenarioStage::Calibrate:
        return "calibrate";
    }
    return "?";
}

const char *
scenarioMachineName(ScenarioMachine machine)
{
    switch (machine) {
      case ScenarioMachine::SkylakeSp:
        return "skylake-sp";
      case ScenarioMachine::IceLakeSp:
        return "icelake-sp";
      case ScenarioMachine::ScaledSkylake:
        return "skylake-scaled";
      case ScenarioMachine::TinyTest:
        return "tiny";
    }
    return "?";
}

MachineConfig
ScenarioSpec::machineConfig() const
{
    MachineConfig cfg;
    switch (machine) {
      case ScenarioMachine::SkylakeSp:
        cfg = skylakeSp(slices);
        break;
      case ScenarioMachine::IceLakeSp:
        cfg = iceLakeSp(slices);
        break;
      case ScenarioMachine::ScaledSkylake:
        cfg = scaledSkylake(slices);
        break;
      case ScenarioMachine::TinyTest:
        cfg = tinyTest(slices);
        break;
    }
    cfg.withSharedRepl(sharedRepl);
    // The defense axis composes with every machine/policy/stage cell;
    // an inactive spec leaves cfg.defense all-off (no re-check cost).
    defense.applyTo(cfg);
    cfg.check();
    return cfg;
}

NoiseProfile
ScenarioSpec::noiseProfile() const
{
    NoiseProfile p;
    if (!noiseProfileByName(noise, p))
        fatal("scenario '%s': unknown noise profile '%s'", name.c_str(),
              noise.c_str());
    return p;
}

CalibrationConfig
ScenarioSpec::calibrationConfig() const
{
    CalibrationConfig c;
    c.budgetMs = calibBudgetMs;
    c.targets = calibTargets;
    c.samplePages = calibSamplePages;
    // Sanity-cap measured associativities by the spec's own prior,
    // with 2x slack: assumedMaxWays sizes the pool and may sit below
    // the true W_SF (Ice Lake's 16-way SF vs the default prior of
    // 14), but a noise-stalled reduction claiming twice the prior is
    // a broken measurement, not a surprising host.
    c.maxWays = std::min(c.maxWays, 2 * assumedMaxWays);
    return c;
}

ScenarioRig::ScenarioRig(const ScenarioSpec &spec, std::uint64_t seed)
    : machine(spec.machineConfig(), spec.noiseProfile(),
              actorSeed(seed, kMachineActor))
{
    AttackerConfig acfg;
    acfg.seed = actorSeed(seed, kAttackerActor);
    acfg.evsetBudget = msToCycles(spec.evsetBudgetMs);
    acfg.candidateFactor = spec.candidateFactor;
    acfg.blindTopology = spec.blind();
    session = std::make_unique<AttackSession>(machine, acfg);
    // A blind attacker cannot size its pool from the machine's true
    // geometry; it falls back to the spec's assumed upper bounds.
    pool = std::make_unique<CandidatePool>(
        *session,
        spec.blind()
            ? CandidatePool::requiredPagesBlind(
                  spec.assumedMaxUncertainty, spec.assumedMaxWays,
                  spec.candidateFactor)
            : CandidatePool::requiredPages(machine,
                                           spec.candidateFactor));
    victimSeed_ = actorSeed(seed, kVictimActor);
}

CalibratedTopology
runScenarioCalibration(const ScenarioSpec &spec, ScenarioRig &rig)
{
    if (rig.session->topologyKnown())
        fatal("scenario '%s': calibration on a non-blind session "
              "(set blindTopology, or drop the Step-0 run)",
              spec.name.c_str());
    TopologyProber prober(*rig.session, *rig.pool,
                          spec.calibrationConfig());
    CalibratedTopology calib = prober.calibrate();
    if (calib.valid)
        rig.session->adoptTopology(calib.view);
    return calib;
}

void
recordCalibration(TrialRecorder &rec, const CalibratedTopology &calib,
                  const CalibrationReport &report)
{
    rec.outcome("calibrated", calib.valid);
    for (const CalibrationFieldReport &f : report.fields) {
        rec.outcome(std::string(f.field) + "_match", f.match);
        rec.metric(f.field, f.measured);
    }
    rec.outcome("topology_match", report.allMatch);
    rec.metric("calib_cycles", static_cast<double>(calib.cycles));
    rec.metric("calib_test_evictions",
               static_cast<double>(calib.testEvictions));
    rec.metric("calib_confidence", calib.confidence);
    rec.metric("calib_uncertainty_raw", calib.uncertaintyRaw);
    rec.metric("calib_slices_raw", calib.slicesRaw);
    if (calib.recallTests) {
        rec.metric("calib_test_recall",
                   static_cast<double>(calib.recallPasses) /
                       static_cast<double>(calib.recallTests));
    }
}

void
runScenarioTrial(const ScenarioSpec &spec, TrialContext &ctx,
                 TrialRecorder &rec)
{
    switch (spec.stage) {
      case ScenarioStage::EvsetBuild:
        runEvsetBuildTrial(spec, ctx, rec);
        return;
      case ScenarioStage::Scan:
        runScanTrial(spec, ctx, rec);
        return;
      case ScenarioStage::EndToEnd:
        runEndToEndTrial(spec, ctx, rec);
        return;
      case ScenarioStage::Campaign:
        runCampaignVictimTrial(spec, ctx, rec);
        return;
      case ScenarioStage::Calibrate:
        runCalibrateTrial(spec, ctx, rec);
        return;
    }
    fatal("scenario '%s': unknown stage", spec.name.c_str());
}

void
recordPerfCounters(TrialRecorder &rec, const PerfCounters &pc)
{
    rec.metric("pc_accesses", static_cast<double>(pc.accesses));
    rec.metric("pc_hits", static_cast<double>(pc.hits));
    rec.metric("pc_misses", static_cast<double>(pc.misses));
    rec.metric("pc_l1_evictions", static_cast<double>(pc.l1.evictions));
    rec.metric("pc_l2_evictions", static_cast<double>(pc.l2.evictions));
    rec.metric("pc_llc_evictions",
               static_cast<double>(pc.llc.evictions));
    rec.metric("pc_sf_evictions", static_cast<double>(pc.sf.evictions));
    rec.metric("pc_coh_downgrades",
               static_cast<double>(pc.cohDowngrades));
    rec.metric("pc_sim_cycles", static_cast<double>(pc.simCycles));
    if (pc.accesses) {
        rec.metric("pc_cycles_per_access",
                   static_cast<double>(pc.simCycles) /
                       static_cast<double>(pc.accesses));
    }
}

void
recordDefenseMetrics(TrialRecorder &rec, const Machine &machine,
                     const std::vector<Addr> *working_set)
{
    const DefenseStats ds = machine.defenseStats();
    rec.metric("def_rekeys", static_cast<double>(ds.rekeys));
    rec.metric("def_rekey_lines",
               static_cast<double>(ds.rekeyLinesMoved));
    rec.metric("def_wd_probes", static_cast<double>(ds.wdProbes));
    rec.metric("def_wd_misses", static_cast<double>(ds.wdMisses));
    rec.metric("def_wd_fires", static_cast<double>(ds.wdFires));
    rec.metric("def_wd_selfmiss_rate",
               ds.wdProbes ? static_cast<double>(ds.wdMisses) /
                                 static_cast<double>(ds.wdProbes)
                           : 0.0);
    if (!working_set || working_set->empty())
        return;
    // Residency of the victim's working set at trial end: ground-truth
    // introspection only, so recording perturbs nothing.  Re-key line
    // movement and partition pressure show up here as lost residency —
    // the victim-side overhead the defense matrix reports.
    const unsigned core = machine.config().defense.partition.protectedCore;
    std::size_t resident = 0;
    for (Addr pa : *working_set) {
        if (machine.inL1(core, pa) || machine.inL2(core, pa) ||
            machine.inLlc(pa) || machine.inSf(pa))
            ++resident;
    }
    rec.metric("def_victim_resident",
               static_cast<double>(resident) /
                   static_cast<double>(working_set->size()));
}

void
maybeArmScenarioWatchdog(Machine &machine, const Victim &victim)
{
    if (!machine.config().defense.watchdog.enabled)
        return;
    machine.armWatchdog(victim.config().core,
                        victimWorkingSet(victim));
}

std::unique_ptr<Victim>
makeScenarioVictim(const ScenarioSpec &spec, Machine &machine,
                   std::uint64_t seed, unsigned line_index,
                   std::uint64_t quota)
{
    VictimConfig vcfg;
    vcfg.family = spec.victimFamily;
    vcfg.arrival = spec.victimArrival;
    vcfg.rotateKeys = spec.rotateKeys;
    vcfg.targetLineIndex = line_index;
    vcfg.requestQuota = quota;
    vcfg.seed = seed;
    return makeVictim(machine, vcfg);
}

std::unique_ptr<CoTenantLoad>
makeScenarioLoad(const ScenarioSpec &spec, Machine &machine,
                 std::uint64_t seed)
{
    if (spec.coTenants == 0)
        return nullptr;
    CoTenantLoadConfig lcfg;
    lcfg.tenants = spec.coTenants;
    // Co-tenants reuse the victim's arrival shape at their own rate;
    // a cell with a closed-loop victim still offers Poisson load.
    lcfg.arrival = spec.victimArrival;
    if (!lcfg.arrival.active())
        lcfg.arrival.kind = ArrivalKind::Poisson;
    lcfg.arrival.ratePerSec = spec.coTenantRps;
    lcfg.seed = streamSeed(seed, 3);
    // The horizon covers training echoes, Step 1 and the scan window
    // with slack; Step 3 monitors windows the victim itself times.
    const Cycles horizon = secToCycles(4.0 * spec.scanTimeoutSec + 1.0);
    return std::make_unique<CoTenantLoad>(machine, lcfg, machine.now(),
                                          horizon);
}

void
maybeRecordTraffic(const ScenarioSpec &spec, TrialRecorder &rec,
                   const Victim &victim, const CoTenantLoad *load)
{
    if (!spec.trafficDomain())
        return;
    rec.metric("traffic_offered_rps",
               spec.victimArrival.active()
                   ? spec.victimArrival.ratePerSec
                   : 0.0);
    rec.metric("traffic_victim_arrivals",
               static_cast<double>(victim.arrivalCount()));
    rec.metric("traffic_queue_delay_cycles",
               victim.meanQueueDelayCycles());
    rec.metric("traffic_cotenant_accesses",
               load ? static_cast<double>(load->scheduledAccesses())
                    : 0.0);
    rec.metric("traffic_key_epochs",
               static_cast<double>(victim.keyEpoch()) + 1.0);
}

ExperimentResult
runScenario(const ScenarioSpec &spec, std::size_t trials,
            unsigned threads, std::uint64_t masterSeed)
{
    ExperimentConfig cfg;
    cfg.name = spec.name;
    cfg.trials = trials ? trials : spec.defaultTrials;
    cfg.threads = threads;
    cfg.masterSeed = masterSeed;
    ExperimentRunner runner(cfg);
    return runner.run([&spec](TrialContext &ctx, TrialRecorder &rec) {
        runScenarioTrial(spec, ctx, rec);
    });
}

} // namespace llcf
