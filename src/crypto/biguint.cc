#include "biguint.hh"

#include <algorithm>
#include <cctype>

#include "common/log.hh"

namespace llcf {

BigUint::BigUint(std::uint64_t v)
{
    if (v)
        limbs_.push_back(v);
}

void
BigUint::trim()
{
    while (!limbs_.empty() && limbs_.back() == 0)
        limbs_.pop_back();
}

BigUint
BigUint::fromHex(const std::string &hex)
{
    BigUint out;
    std::string clean;
    clean.reserve(hex.size());
    for (char c : hex) {
        if (std::isxdigit(static_cast<unsigned char>(c)))
            clean.push_back(c);
        else if (!std::isspace(static_cast<unsigned char>(c)))
            fatal("invalid hex digit '%c'", c);
    }
    if (clean.empty())
        return out;
    const std::size_t nibbles = clean.size();
    out.limbs_.assign((nibbles + 15) / 16, 0);
    for (std::size_t i = 0; i < nibbles; ++i) {
        const char c = clean[nibbles - 1 - i];
        std::uint64_t v;
        if (c >= '0' && c <= '9')
            v = static_cast<std::uint64_t>(c - '0');
        else
            v = static_cast<std::uint64_t>(std::tolower(c) - 'a' + 10);
        out.limbs_[i / 16] |= v << (4 * (i % 16));
    }
    out.trim();
    return out;
}

BigUint
BigUint::fromLimbs(std::vector<std::uint64_t> limbs)
{
    BigUint out;
    out.limbs_ = std::move(limbs);
    out.trim();
    return out;
}

BigUint
BigUint::randomBelow(const BigUint &bound, Rng &rng)
{
    if (bound.isZero())
        fatal("randomBelow needs a positive bound");
    const unsigned bits = bound.bitLength();
    const std::size_t words = (bits + 63) / 64;
    for (;;) {
        std::vector<std::uint64_t> limbs(words);
        for (auto &w : limbs)
            w = rng.next();
        const unsigned top_bits = bits % 64;
        if (top_bits)
            limbs.back() &= (1ULL << top_bits) - 1;
        BigUint candidate = fromLimbs(std::move(limbs));
        if (candidate < bound)
            return candidate;
    }
}

std::string
BigUint::toHex() const
{
    if (isZero())
        return "0";
    static const char digits[] = "0123456789abcdef";
    std::string out;
    bool leading = true;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        for (int shift = 60; shift >= 0; shift -= 4) {
            const unsigned nib = (limbs_[i] >> shift) & 0xf;
            if (leading && nib == 0)
                continue;
            leading = false;
            out.push_back(digits[nib]);
        }
    }
    return out;
}

bool
BigUint::isOne() const
{
    return limbs_.size() == 1 && limbs_[0] == 1;
}

bool
BigUint::isEven() const
{
    return limbs_.empty() || (limbs_[0] & 1) == 0;
}

unsigned
BigUint::bitLength() const
{
    if (limbs_.empty())
        return 0;
    unsigned bits = static_cast<unsigned>(limbs_.size() - 1) * 64;
    std::uint64_t top = limbs_.back();
    while (top) {
        ++bits;
        top >>= 1;
    }
    return bits;
}

bool
BigUint::bit(unsigned i) const
{
    const std::size_t limb = i / 64;
    if (limb >= limbs_.size())
        return false;
    return (limbs_[limb] >> (i % 64)) & 1;
}

int
BigUint::compare(const BigUint &other) const
{
    if (limbs_.size() != other.limbs_.size())
        return limbs_.size() < other.limbs_.size() ? -1 : 1;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
        if (limbs_[i] != other.limbs_[i])
            return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
    return 0;
}

BigUint
BigUint::operator+(const BigUint &o) const
{
    BigUint out;
    const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
    out.limbs_.assign(n + 1, 0);
    unsigned __int128 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
        unsigned __int128 sum = carry;
        if (i < limbs_.size())
            sum += limbs_[i];
        if (i < o.limbs_.size())
            sum += o.limbs_[i];
        out.limbs_[i] = static_cast<std::uint64_t>(sum);
        carry = sum >> 64;
    }
    out.limbs_[n] = static_cast<std::uint64_t>(carry);
    out.trim();
    return out;
}

BigUint
BigUint::operator-(const BigUint &o) const
{
    if (*this < o)
        panic("BigUint subtraction underflow");
    BigUint out;
    out.limbs_.assign(limbs_.size(), 0);
    std::uint64_t borrow = 0;
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        const std::uint64_t rhs = i < o.limbs_.size() ? o.limbs_[i] : 0;
        const std::uint64_t lhs = limbs_[i];
        std::uint64_t diff = lhs - rhs - borrow;
        borrow = (lhs < rhs + borrow ||
                  (rhs == ~0ULL && borrow)) ? 1 : 0;
        out.limbs_[i] = diff;
    }
    out.trim();
    return out;
}

BigUint
BigUint::operator*(const BigUint &o) const
{
    BigUint out;
    if (isZero() || o.isZero())
        return out;
    out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        unsigned __int128 carry = 0;
        for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
            unsigned __int128 cur = out.limbs_[i + j];
            cur += static_cast<unsigned __int128>(limbs_[i]) *
                   o.limbs_[j];
            cur += carry;
            out.limbs_[i + j] = static_cast<std::uint64_t>(cur);
            carry = cur >> 64;
        }
        std::size_t k = i + o.limbs_.size();
        while (carry) {
            unsigned __int128 cur = out.limbs_[k];
            cur += carry;
            out.limbs_[k] = static_cast<std::uint64_t>(cur);
            carry = cur >> 64;
            ++k;
        }
    }
    out.trim();
    return out;
}

BigUint
BigUint::operator<<(unsigned bits) const
{
    if (isZero() || bits == 0)
        return *this;
    const unsigned limb_shift = bits / 64;
    const unsigned bit_shift = bits % 64;
    BigUint out;
    out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
        out.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
        if (bit_shift) {
            out.limbs_[i + limb_shift + 1] |=
                limbs_[i] >> (64 - bit_shift);
        }
    }
    out.trim();
    return out;
}

BigUint
BigUint::operator>>(unsigned bits) const
{
    const unsigned limb_shift = bits / 64;
    const unsigned bit_shift = bits % 64;
    if (limb_shift >= limbs_.size())
        return BigUint();
    BigUint out;
    out.limbs_.assign(limbs_.size() - limb_shift, 0);
    for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
        out.limbs_[i] = limbs_[i + limb_shift] >> bit_shift;
        if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
            out.limbs_[i] |=
                limbs_[i + limb_shift + 1] << (64 - bit_shift);
        }
    }
    out.trim();
    return out;
}

std::pair<BigUint, BigUint>
BigUint::divmod(const BigUint &num, const BigUint &den)
{
    if (den.isZero())
        fatal("BigUint division by zero");
    if (num < den)
        return {BigUint(), num};

    // Long division one bit at a time; adequate for ECDSA's usage.
    BigUint quotient, remainder;
    const unsigned bits = num.bitLength();
    quotient.limbs_.assign((bits + 63) / 64, 0);
    for (unsigned i = bits; i-- > 0;) {
        remainder = remainder << 1;
        if (num.bit(i)) {
            if (remainder.limbs_.empty())
                remainder.limbs_.push_back(1);
            else
                remainder.limbs_[0] |= 1;
        }
        if (remainder >= den) {
            remainder = remainder - den;
            quotient.limbs_[i / 64] |= 1ULL << (i % 64);
        }
    }
    quotient.trim();
    return {quotient, remainder};
}

BigUint
BigUint::operator%(const BigUint &m) const
{
    return divmod(*this, m).second;
}

BigUint
BigUint::operator/(const BigUint &d) const
{
    return divmod(*this, d).first;
}

BigUint
BigUint::addMod(const BigUint &a, const BigUint &b, const BigUint &m)
{
    BigUint sum = a + b;
    if (sum >= m)
        sum = sum % m;
    return sum;
}

BigUint
BigUint::subMod(const BigUint &a, const BigUint &b, const BigUint &m)
{
    const BigUint am = a % m;
    const BigUint bm = b % m;
    if (am >= bm)
        return am - bm;
    return m - (bm - am);
}

BigUint
BigUint::mulMod(const BigUint &a, const BigUint &b, const BigUint &m)
{
    return (a * b) % m;
}

BigUint
BigUint::invMod(const BigUint &m) const
{
    // Extended Euclid with signed bookkeeping emulated by tracking
    // coefficient signs explicitly.
    BigUint r0 = m;
    BigUint r1 = *this % m;
    if (r1.isZero())
        fatal("invMod of zero");

    BigUint t0;        // coefficient of m
    BigUint t1(1);     // coefficient of *this
    bool t0_neg = false, t1_neg = false;

    while (!r1.isZero()) {
        auto [q, r2] = divmod(r0, r1);
        // t2 = t0 - q * t1
        BigUint qt1 = q * t1;
        BigUint t2;
        bool t2_neg;
        if (t0_neg == t1_neg) {
            // same sign: t0 - q*t1 may flip sign
            if (t0 >= qt1) {
                t2 = t0 - qt1;
                t2_neg = t0_neg;
            } else {
                t2 = qt1 - t0;
                t2_neg = !t0_neg;
            }
        } else {
            t2 = t0 + qt1;
            t2_neg = t0_neg;
        }
        r0 = r1;
        r1 = r2;
        t0 = t1;
        t0_neg = t1_neg;
        t1 = t2;
        t1_neg = t2_neg;
    }
    if (!r0.isOne())
        fatal("invMod: operand not coprime with modulus");
    BigUint result = t0 % m;
    if (t0_neg && !result.isZero())
        result = m - result;
    return result;
}

} // namespace llcf
