/**
 * @file
 * ECDSA over sect571r1 with the vulnerable Montgomery-ladder nonce
 * multiplication (paper Section 7.1).  Signing records the ladder's
 * per-iteration nonce bits so the victim model can replay the
 * secret-dependent access pattern and the experiments can validate
 * extracted bits against ground truth.
 */

#ifndef LLCF_CRYPTO_ECDSA_HH
#define LLCF_CRYPTO_ECDSA_HH

#include <string>

#include "crypto/ec2m.hh"
#include "crypto/sha256.hh"

namespace llcf {

/** A private/public key pair. */
struct EcdsaKeyPair
{
    BigUint d;   //!< private scalar
    Ec2mPoint q; //!< public point d * G
};

/** An ECDSA signature. */
struct EcdsaSignature
{
    BigUint r;
    BigUint s;
};

/** A signature plus its signing-time secrets (ground truth). */
struct SigningRecord
{
    EcdsaSignature signature;
    BigUint nonce;                       //!< the ephemeral k
    std::vector<std::uint8_t> ladderBits; //!< bits the ladder processed
};

/**
 * ECDSA engine bound to sect571r1.
 */
class Ecdsa
{
  public:
    /** @param rng Source of key/nonce randomness (copied). */
    explicit Ecdsa(Rng rng);

    /** Generate a key pair. */
    EcdsaKeyPair generateKey();

    /** Truncate a SHA-256 digest to an integer mod-ready value. */
    BigUint hashToInt(const Sha256Digest &digest) const;

    /**
     * Sign @p digest with private key @p d via the Montgomery-ladder
     * nonce multiplication, recording the nonce and its ladder bits.
     */
    SigningRecord signWithTrace(const Sha256Digest &digest,
                                const BigUint &d);

    /** Sign without the ground-truth record. */
    EcdsaSignature sign(const Sha256Digest &digest, const BigUint &d);

    /** Standard ECDSA verification (affine double-and-add). */
    bool verify(const Sha256Digest &digest, const EcdsaSignature &sig,
                const Ec2mPoint &q) const;

  private:
    const Sect571r1 &curve_;
    Rng rng_;
};

} // namespace llcf

#endif // LLCF_CRYPTO_ECDSA_HH
