/**
 * @file
 * AES-128 block cipher with T-table access tracing.
 *
 * The cipher itself is the plain FIPS-197 round structure.  What the
 * simulator needs on top is the *memory behaviour* of the classic
 * table-lookup implementation (four 1 KB T-tables): every round-1
 * lookup indexes table (j mod 4) with plaintext[j] XOR key[j], so the
 * upper nibble of each index — the 64-byte cache line touched — leaks
 * the upper nibble of a key byte (Osvik/Shamir/Tromer).  encryptTrace
 * reports each lookup of rounds 1-9 as a (table, index) pair in issue
 * order; the AES victim turns those into timed line accesses.
 */

#ifndef LLCF_CRYPTO_AES_HH
#define LLCF_CRYPTO_AES_HH

#include <array>
#include <cstdint>
#include <vector>

namespace llcf {

/**
 * AES-128 with the key schedule expanded at construction.  Pure
 * computation: no RNG, no clock, no I/O.
 */
class Aes128
{
  public:
    /** One 16-byte block (also used for keys). */
    using Block = std::array<std::uint8_t, 16>;

    /**
     * One T-table lookup: which of the four 1 KB tables, and the
     * byte index into its 256 four-byte entries.  Sixteen entries
     * share a 64-byte line, so the touched line is `index >> 4`.
     */
    struct TableLookup
    {
        std::uint8_t table = 0; //!< T-table number, 0-3
        std::uint8_t index = 0; //!< entry index, 0-255
    };

    /** Expand @p key into the 11 round keys. */
    explicit Aes128(const Block &key);

    /** Encrypt one block. */
    Block encrypt(const Block &plaintext) const;

    /**
     * Encrypt one block, appending the T-table lookups of rounds 1-9
     * (16 per round, 144 total) to @p lookups in issue order.  The
     * final round uses a separate S-box table and is not traced.
     */
    Block encryptTrace(const Block &plaintext,
                       std::vector<TableLookup> &lookups) const;

    /** The cipher key (experimenter-side ground truth). */
    const Block &key() const { return key_; }

  private:
    Block key_;
    std::array<Block, 11> roundKeys_;
};

} // namespace llcf

#endif // LLCF_CRYPTO_AES_HH
