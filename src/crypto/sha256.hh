/**
 * @file
 * SHA-256 (FIPS 180-4), used as the ECDSA message digest.
 */

#ifndef LLCF_CRYPTO_SHA256_HH
#define LLCF_CRYPTO_SHA256_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace llcf {

/** A 32-byte SHA-256 digest. */
using Sha256Digest = std::array<std::uint8_t, 32>;

/** Digest of a byte buffer. */
Sha256Digest sha256(const std::uint8_t *data, std::size_t len);

/** Digest of a string. */
Sha256Digest sha256(const std::string &data);

/** Digest of a byte vector. */
Sha256Digest sha256(const std::vector<std::uint8_t> &data);

/** Hex rendering of a digest. */
std::string digestToHex(const Sha256Digest &digest);

} // namespace llcf

#endif // LLCF_CRYPTO_SHA256_HH
