#include "gf2m.hh"

#include "common/log.hh"

namespace llcf {

namespace {

constexpr unsigned kWords = Gf571::kWords;
constexpr unsigned kBits = Gf571::kBits;

/** Carry-less 64x64 -> 128 multiplication via a 4-bit window. */
inline void
clmul64(std::uint64_t a, std::uint64_t b, std::uint64_t &hi,
        std::uint64_t &lo)
{
    std::uint64_t tab_lo[16], tab_hi[16];
    tab_lo[0] = 0;
    tab_hi[0] = 0;
    for (unsigned n = 1; n < 16; ++n) {
        std::uint64_t l = 0, h = 0;
        for (unsigned j = 0; j < 4; ++j) {
            if (n & (1u << j)) {
                l ^= a << j;
                h ^= j ? a >> (64 - j) : 0;
            }
        }
        tab_lo[n] = l;
        tab_hi[n] = h;
    }
    hi = 0;
    lo = 0;
    for (int nib = 15; nib >= 0; --nib) {
        hi = (hi << 4) | (lo >> 60);
        lo <<= 4;
        const unsigned idx = (b >> (4 * nib)) & 0xf;
        lo ^= tab_lo[idx];
        hi ^= tab_hi[idx];
    }
}

/** XOR @p word shifted to absolute bit position @p bitpos into p. */
inline void
xorShifted(std::uint64_t *p, std::uint64_t word, unsigned bitpos)
{
    const unsigned w = bitpos / 64;
    const unsigned s = bitpos % 64;
    p[w] ^= word << s;
    if (s)
        p[w + 1] ^= word >> (64 - s);
}

/**
 * Reduce an 18-word product modulo f(x) = x^571 + x^10 + x^5 + x^2 + 1
 * into the low 9 words.
 */
void
reduce(std::uint64_t p[2 * kWords])
{
    for (unsigned i = 2 * kWords - 1; i >= kWords; --i) {
        const std::uint64_t x = p[i];
        if (!x)
            continue;
        p[i] = 0;
        const unsigned base = i * 64 - kBits;
        xorShifted(p, x, base);
        xorShifted(p, x, base + 2);
        xorShifted(p, x, base + 5);
        xorShifted(p, x, base + 10);
    }
    // Bits 571..575 live in the top of word 8.
    const std::uint64_t top = p[kWords - 1] >> 59;
    if (top) {
        p[kWords - 1] &= (1ULL << 59) - 1;
        p[0] ^= top ^ (top << 2) ^ (top << 5) ^ (top << 10);
    }
}

/** Bit-spreading table for squaring: byte -> 16-bit interleaved. */
std::uint16_t
spreadByte(std::uint8_t b)
{
    std::uint16_t out = 0;
    for (unsigned i = 0; i < 8; ++i) {
        if (b & (1u << i))
            out |= static_cast<std::uint16_t>(1u << (2 * i));
    }
    return out;
}

// --------------------------- fixed-width polynomial helpers (EEA) ---

constexpr unsigned kPolyWords = kWords + 1; // degree up to 571 (f itself)

int
polyDegree(const std::uint64_t *p)
{
    for (int i = kPolyWords - 1; i >= 0; --i) {
        if (p[i]) {
            int bit = 63;
            while (!(p[i] & (1ULL << bit)))
                --bit;
            return i * 64 + bit;
        }
    }
    return -1;
}

void
polyXorShifted(std::uint64_t *dst, const std::uint64_t *src,
               unsigned shift)
{
    const unsigned w = shift / 64;
    const unsigned s = shift % 64;
    for (unsigned i = 0; i < kPolyWords; ++i) {
        if (!src[i])
            continue;
        if (i + w < kPolyWords)
            dst[i + w] ^= src[i] << s;
        if (s && i + w + 1 < kPolyWords)
            dst[i + w + 1] ^= src[i] >> (64 - s);
    }
}

} // namespace

Gf571
Gf571::fromHex(const std::string &hex)
{
    return fromBigUint(BigUint::fromHex(hex));
}

Gf571
Gf571::fromBigUint(const BigUint &v)
{
    if (v.bitLength() > kBits)
        fatal("GF(2^571) element exceeds 571 bits");
    Gf571 out;
    const auto &limbs = v.limbs();
    for (std::size_t i = 0; i < limbs.size() && i < kWords; ++i)
        out.w_[i] = limbs[i];
    return out;
}

BigUint
Gf571::toBigUint() const
{
    return BigUint::fromLimbs(
        std::vector<std::uint64_t>(w_.begin(), w_.end()));
}

std::string
Gf571::toHex() const
{
    return toBigUint().toHex();
}

bool
Gf571::isZero() const
{
    for (std::uint64_t w : w_) {
        if (w)
            return false;
    }
    return true;
}

bool
Gf571::isOne() const
{
    if (w_[0] != 1)
        return false;
    for (unsigned i = 1; i < kWords; ++i) {
        if (w_[i])
            return false;
    }
    return true;
}

int
Gf571::degree() const
{
    for (int i = kWords - 1; i >= 0; --i) {
        if (w_[i]) {
            int bit = 63;
            while (!(w_[i] & (1ULL << bit)))
                --bit;
            return i * 64 + bit;
        }
    }
    return -1;
}

Gf571
Gf571::operator+(const Gf571 &o) const
{
    Gf571 out;
    for (unsigned i = 0; i < kWords; ++i)
        out.w_[i] = w_[i] ^ o.w_[i];
    return out;
}

Gf571
Gf571::operator*(const Gf571 &o) const
{
    std::uint64_t prod[2 * kWords] = {0};
    for (unsigned i = 0; i < kWords; ++i) {
        if (!w_[i])
            continue;
        for (unsigned j = 0; j < kWords; ++j) {
            if (!o.w_[j])
                continue;
            std::uint64_t hi, lo;
            clmul64(w_[i], o.w_[j], hi, lo);
            prod[i + j] ^= lo;
            prod[i + j + 1] ^= hi;
        }
    }
    reduce(prod);
    Gf571 out;
    for (unsigned i = 0; i < kWords; ++i)
        out.w_[i] = prod[i];
    return out;
}

Gf571
Gf571::square() const
{
    std::uint64_t prod[2 * kWords] = {0};
    for (unsigned i = 0; i < kWords; ++i) {
        const std::uint64_t w = w_[i];
        std::uint64_t lo = 0, hi = 0;
        for (unsigned byte = 0; byte < 4; ++byte) {
            lo |= static_cast<std::uint64_t>(spreadByte(
                      static_cast<std::uint8_t>(w >> (8 * byte))))
                  << (16 * byte);
            hi |= static_cast<std::uint64_t>(spreadByte(
                      static_cast<std::uint8_t>(w >> (8 * (byte + 4)))))
                  << (16 * byte);
        }
        prod[2 * i] = lo;
        prod[2 * i + 1] = hi;
    }
    reduce(prod);
    Gf571 out;
    for (unsigned i = 0; i < kWords; ++i)
        out.w_[i] = prod[i];
    return out;
}

Gf571
Gf571::inverse() const
{
    if (isZero())
        fatal("inverse of zero in GF(2^571)");

    // Polynomial extended Euclid: maintain
    //   u = g1 * a (mod f),  v = g2 * a (mod f)
    // and reduce degrees until u == 1.
    std::uint64_t u[kPolyWords] = {0};
    std::uint64_t v[kPolyWords] = {0};
    std::uint64_t g1[kPolyWords] = {0};
    std::uint64_t g2[kPolyWords] = {0};

    for (unsigned i = 0; i < kWords; ++i)
        u[i] = w_[i];
    // f(x) = x^571 + x^10 + x^5 + x^2 + 1.
    v[0] = (1ULL << 10) | (1ULL << 5) | (1ULL << 2) | 1ULL;
    v[kBits / 64] |= 1ULL << (kBits % 64);
    g1[0] = 1;

    int du = polyDegree(u);
    int dv = polyDegree(v);
    while (du > 0) {
        int j = du - dv;
        if (j < 0) {
            std::swap_ranges(u, u + kPolyWords, v);
            std::swap_ranges(g1, g1 + kPolyWords, g2);
            std::swap(du, dv);
            j = -j;
        }
        polyXorShifted(u, v, static_cast<unsigned>(j));
        polyXorShifted(g1, g2, static_cast<unsigned>(j));
        du = polyDegree(u);
    }
    if (du != 0)
        panic("GF(2^571) inverse: element not invertible");

    Gf571 out;
    for (unsigned i = 0; i < kWords; ++i)
        out.w_[i] = g1[i];
    return out;
}

} // namespace llcf
