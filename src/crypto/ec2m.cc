#include "ec2m.hh"

#include "common/log.hh"

namespace llcf {

namespace {

// SEC 2 v2.0 / FIPS 186-4 parameters for sect571r1 (NIST B-571).
const char *kB =
    "02F40E7E 2221F295 DE297117 B7F3D62F 5C6A97FF CB8CEFF1 CD6BA8CE"
    " 4A9A18AD 84FFABBD 8EFA5933 2BE7AD67 56A66E29 4AFD185A 78FF12AA"
    " 520E4DE7 39BACA0C 7FFEFF7F 2955727A";
const char *kGx =
    "0303001D 34B85629 6C16C0D4 0D3CD775 0A93D1D2 955FA80A A5F40FC8"
    " DB7B2ABD BDE53950 F4C0D293 CDD711A3 5B67FB14 99AE6003 8614F139"
    " 4ABFA3B4 C850D927 E1E7769C 8EEC2D19";
const char *kGy =
    "037BF273 42DA639B 6DCCFFFE B73D69D7 8C6C27A6 009CBBCA 1980F853"
    " 3921E8A6 84423E43 BAB08A57 6291AF8F 461BB2A8 B3531D2F 0485C19B"
    " 16E2F151 6E23DD3C 1A4827AF 1B8AC15B";
const char *kN =
    "03FFFFFF FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFF"
    " FFFFFFFF FFFFFFFF E661CE18 FF559873 08059B18 6823851E C7DD9CA1"
    " 161DE93D 5174D66E 8382E9BB 2FE84E47";

} // namespace

Sect571r1::Sect571r1()
    : a_(1),
      b_(Gf571::fromHex(kB)),
      g_(Ec2mPoint::make(Gf571::fromHex(kGx), Gf571::fromHex(kGy))),
      n_(BigUint::fromHex(kN))
{
    if (!onCurve(g_))
        panic("sect571r1 generator fails the curve equation");
}

const Sect571r1 &
Sect571r1::instance()
{
    static const Sect571r1 curve;
    return curve;
}

bool
Sect571r1::onCurve(const Ec2mPoint &p) const
{
    if (p.infinity)
        return true;
    // y^2 + x y == x^3 + a x^2 + b
    const Gf571 lhs = p.y.square() + p.x * p.y;
    const Gf571 x2 = p.x.square();
    const Gf571 rhs = x2 * p.x + a_ * x2 + b_;
    return lhs == rhs;
}

Ec2mPoint
Sect571r1::negate(const Ec2mPoint &p) const
{
    if (p.infinity)
        return p;
    return Ec2mPoint::make(p.x, p.x + p.y);
}

Ec2mPoint
Sect571r1::add(const Ec2mPoint &p, const Ec2mPoint &q) const
{
    if (p.infinity)
        return q;
    if (q.infinity)
        return p;
    if (p.x == q.x) {
        if (p.y == q.y)
            return dbl(p);
        return Ec2mPoint{}; // P + (-P) = infinity
    }
    const Gf571 lambda = (p.y + q.y) * (p.x + q.x).inverse();
    const Gf571 x3 = lambda.square() + lambda + p.x + q.x + a_;
    const Gf571 y3 = lambda * (p.x + x3) + x3 + p.y;
    return Ec2mPoint::make(x3, y3);
}

Ec2mPoint
Sect571r1::dbl(const Ec2mPoint &p) const
{
    if (p.infinity || p.x.isZero())
        return Ec2mPoint{};
    const Gf571 lambda = p.x + p.y * p.x.inverse();
    const Gf571 x3 = lambda.square() + lambda + a_;
    const Gf571 y3 = p.x.square() + (lambda + Gf571(1)) * x3;
    return Ec2mPoint::make(x3, y3);
}

Ec2mPoint
Sect571r1::scalarMul(const BigUint &k, const Ec2mPoint &p) const
{
    Ec2mPoint acc; // infinity
    const unsigned bits = k.bitLength();
    for (unsigned i = bits; i-- > 0;) {
        acc = dbl(acc);
        if (k.bit(i))
            acc = add(acc, p);
    }
    return acc;
}

void
Sect571r1::mAdd(Gf571 &x1, Gf571 &z1, const Gf571 &x2, const Gf571 &z2,
                const Gf571 &x) const
{
    // López–Dahab mixed differential addition, as in OpenSSL's
    // gf2m_Madd: the difference of the two points is the base (x, 1).
    const Gf571 t1 = x1 * z2;
    const Gf571 t2 = x2 * z1;
    z1 = (t1 + t2).square();
    x1 = x * z1 + t1 * t2;
}

void
Sect571r1::mDouble(Gf571 &x, Gf571 &z) const
{
    // gf2m_Mdouble: x <- x^4 + b z^4, z <- x^2 z^2.
    const Gf571 x2 = x.square();
    const Gf571 z2 = z.square();
    z = x2 * z2;
    x = x2.square() + b_ * z2.square();
}

Sect571r1::LadderResult
Sect571r1::ladderMulX(const BigUint &k, const Gf571 &px) const
{
    LadderResult res;
    const unsigned bits = k.bitLength();
    if (bits == 0)
        fatal("Montgomery ladder needs a non-zero scalar");
    if (px.isZero()) {
        // x = 0 is the 2-torsion point; k * P is handled trivially.
        res.infinity = k.isEven();
        res.x = Gf571();
        return res;
    }

    // (x1, z1) = P, (x2, z2) = 2P.
    Gf571 x1 = px;
    Gf571 z1(1);
    Gf571 z2 = px.square();
    Gf571 x2 = z2.square() + b_;

    res.bits.reserve(bits > 0 ? bits - 1 : 0);
    for (unsigned i = bits - 1; i-- > 0;) {
        const bool bit = k.bit(i);
        res.bits.push_back(bit ? 1 : 0);
        if (bit) {
            mAdd(x1, z1, x2, z2, px);
            mDouble(x2, z2);
        } else {
            mAdd(x2, z2, x1, z1, px);
            mDouble(x1, z1);
        }
    }

    if (z1.isZero()) {
        res.infinity = true;
        return res;
    }
    res.infinity = false;
    res.x = x1 * z1.inverse();
    return res;
}

} // namespace llcf
