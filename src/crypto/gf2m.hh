/**
 * @file
 * Arithmetic in GF(2^571) with the sect571r1 reduction polynomial
 * f(x) = x^571 + x^10 + x^5 + x^2 + 1 — the field underlying the
 * vulnerable OpenSSL Montgomery-ladder ECDSA implementation the paper
 * attacks (Section 7.1).
 */

#ifndef LLCF_CRYPTO_GF2M_HH
#define LLCF_CRYPTO_GF2M_HH

#include <array>
#include <cstdint>
#include <string>

#include "crypto/biguint.hh"

namespace llcf {

/**
 * An element of GF(2^571): a binary polynomial of degree < 571 in
 * nine little-endian 64-bit words.
 */
class Gf571
{
  public:
    static constexpr unsigned kBits = 571;
    static constexpr unsigned kWords = 9;

    /** Zero element. */
    Gf571() : w_{} {}

    /** From a small constant (bits 0..63). */
    explicit Gf571(std::uint64_t low) : w_{} { w_[0] = low; }

    /** Parse big-endian hex (whitespace allowed). */
    static Gf571 fromHex(const std::string &hex);

    /** Convert from an integer (must fit 571 bits). */
    static Gf571 fromBigUint(const BigUint &v);

    /** Interpret the bit string as an integer. */
    BigUint toBigUint() const;

    /** Lowercase hex string. */
    std::string toHex() const;

    bool isZero() const;
    bool isOne() const;
    bool operator==(const Gf571 &o) const { return w_ == o.w_; }
    bool operator!=(const Gf571 &o) const { return !(*this == o); }

    /** Addition = XOR. */
    Gf571 operator+(const Gf571 &o) const;

    /** Polynomial multiplication mod f(x). */
    Gf571 operator*(const Gf571 &o) const;

    /** Squaring mod f(x) (linear in GF(2)). */
    Gf571 square() const;

    /** Multiplicative inverse via the polynomial extended Euclid.
     *  @pre !isZero() */
    Gf571 inverse() const;

    /** Degree of the polynomial (-1 for zero). */
    int degree() const;

    /** Raw word access (for tests). */
    const std::array<std::uint64_t, kWords> &words() const { return w_; }

  private:
    std::array<std::uint64_t, kWords> w_;
};

} // namespace llcf

#endif // LLCF_CRYPTO_GF2M_HH
