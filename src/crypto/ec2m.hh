/**
 * @file
 * The sect571r1 binary elliptic curve (NIST B-571) with affine group
 * operations and the López–Dahab x-only Montgomery ladder — the exact
 * structure of the vulnerable OpenSSL 1.0.1e scalar multiplication
 * the paper attacks (Figure 8): one MAdd and one MDouble per nonce
 * bit, with secret-dependent argument order.
 */

#ifndef LLCF_CRYPTO_EC2M_HH
#define LLCF_CRYPTO_EC2M_HH

#include <vector>

#include "crypto/gf2m.hh"

namespace llcf {

/** An affine point on the curve (or the point at infinity). */
struct Ec2mPoint
{
    Gf571 x;
    Gf571 y;
    bool infinity = true;

    static Ec2mPoint
    make(const Gf571 &x, const Gf571 &y)
    {
        return Ec2mPoint{x, y, false};
    }
};

/**
 * sect571r1: y^2 + xy = x^3 + a x^2 + b over GF(2^571), a = 1.
 */
class Sect571r1
{
  public:
    /** Curve singleton (parameters are compile-time constants). */
    static const Sect571r1 &instance();

    const Gf571 &a() const { return a_; }
    const Gf571 &b() const { return b_; }
    const Ec2mPoint &generator() const { return g_; }
    const BigUint &order() const { return n_; }
    unsigned cofactor() const { return 2; }

    /** Curve-equation membership test. */
    bool onCurve(const Ec2mPoint &p) const;

    /** Affine negation: -(x, y) = (x, x + y). */
    Ec2mPoint negate(const Ec2mPoint &p) const;

    /** Affine point addition. */
    Ec2mPoint add(const Ec2mPoint &p, const Ec2mPoint &q) const;

    /** Affine point doubling. */
    Ec2mPoint dbl(const Ec2mPoint &p) const;

    /** Double-and-add scalar multiplication (verification path). */
    Ec2mPoint scalarMul(const BigUint &k, const Ec2mPoint &p) const;

    /** Result of the x-only Montgomery ladder. */
    struct LadderResult
    {
        bool infinity = true;
        Gf571 x;
        /** The nonce bits the ladder loop processed, in loop order
         *  (MSB-1 downwards) — the paper's per-iteration secret. */
        std::vector<std::uint8_t> bits;
    };

    /**
     * x-only López–Dahab Montgomery ladder computing the x-coordinate
     * of k * P from P's x-coordinate, mirroring OpenSSL 1.0.1e's
     * ec_GF2m_montgomery_point_multiply.
     * @pre !k.isZero()
     */
    LadderResult ladderMulX(const BigUint &k, const Gf571 &px) const;

    /** MAdd step (Figure 8): (x1,z1) += (x2,z2) with base x. */
    void mAdd(Gf571 &x1, Gf571 &z1, const Gf571 &x2, const Gf571 &z2,
              const Gf571 &x) const;

    /** MDouble step (Figure 8): (x,z) = 2 * (x,z). */
    void mDouble(Gf571 &x, Gf571 &z) const;

  private:
    Sect571r1();

    Gf571 a_;
    Gf571 b_;
    Ec2mPoint g_;
    BigUint n_;
};

} // namespace llcf

#endif // LLCF_CRYPTO_EC2M_HH
