#include "ecdsa.hh"

#include "common/log.hh"

namespace llcf {

Ecdsa::Ecdsa(Rng rng) : curve_(Sect571r1::instance()), rng_(rng)
{
}

EcdsaKeyPair
Ecdsa::generateKey()
{
    EcdsaKeyPair kp;
    do {
        kp.d = BigUint::randomBelow(curve_.order(), rng_);
    } while (kp.d.isZero());
    kp.q = curve_.scalarMul(kp.d, curve_.generator());
    return kp;
}

BigUint
Ecdsa::hashToInt(const Sha256Digest &digest) const
{
    // The digest (256 bits) is shorter than the order (570 bits), so
    // the whole digest is used, big-endian.
    std::vector<std::uint64_t> limbs(4, 0);
    for (unsigned i = 0; i < 32; ++i) {
        limbs[3 - i / 8] |= static_cast<std::uint64_t>(digest[i])
                            << (8 * (7 - (i % 8)));
    }
    return BigUint::fromLimbs(std::move(limbs));
}

SigningRecord
Ecdsa::signWithTrace(const Sha256Digest &digest, const BigUint &d)
{
    const BigUint &n = curve_.order();
    const BigUint z = hashToInt(digest);
    SigningRecord rec;
    for (;;) {
        BigUint k;
        do {
            k = BigUint::randomBelow(n, rng_);
        } while (k.isZero());

        // The vulnerable code path: x-only Montgomery ladder.
        auto ladder = curve_.ladderMulX(k, curve_.generator().x);
        if (ladder.infinity)
            continue;
        const BigUint r = ladder.x.toBigUint() % n;
        if (r.isZero())
            continue;
        const BigUint kinv = k.invMod(n);
        const BigUint s = BigUint::mulMod(
            kinv, BigUint::addMod(z, BigUint::mulMod(r, d, n), n), n);
        if (s.isZero())
            continue;

        rec.signature = EcdsaSignature{r, s};
        rec.nonce = k;
        rec.ladderBits = std::move(ladder.bits);
        return rec;
    }
}

EcdsaSignature
Ecdsa::sign(const Sha256Digest &digest, const BigUint &d)
{
    return signWithTrace(digest, d).signature;
}

bool
Ecdsa::verify(const Sha256Digest &digest, const EcdsaSignature &sig,
              const Ec2mPoint &q) const
{
    const BigUint &n = curve_.order();
    if (sig.r.isZero() || sig.s.isZero() || sig.r >= n || sig.s >= n)
        return false;
    const BigUint z = hashToInt(digest);
    const BigUint w = sig.s.invMod(n);
    const BigUint u1 = BigUint::mulMod(z, w, n);
    const BigUint u2 = BigUint::mulMod(sig.r, w, n);
    const Ec2mPoint p =
        curve_.add(curve_.scalarMul(u1, curve_.generator()),
                   curve_.scalarMul(u2, q));
    if (p.infinity)
        return false;
    return (p.x.toBigUint() % n) == sig.r;
}

} // namespace llcf
