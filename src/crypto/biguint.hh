/**
 * @file
 * Arbitrary-precision unsigned integers for the ECDSA group
 * arithmetic (mod-n computations on the 571-bit curve order).
 *
 * Little-endian 64-bit limbs, always trimmed of leading zero limbs.
 * Only the operations ECDSA needs are provided; they favour clarity
 * over speed (signing performs a handful of them).
 */

#ifndef LLCF_CRYPTO_BIGUINT_HH
#define LLCF_CRYPTO_BIGUINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace llcf {

/**
 * Unsigned big integer.
 */
class BigUint
{
  public:
    /** Zero. */
    BigUint() = default;

    /** From a 64-bit value. */
    explicit BigUint(std::uint64_t v);

    /** Parse a hexadecimal string (whitespace allowed). */
    static BigUint fromHex(const std::string &hex);

    /** From little-endian limb vector (copied, trimmed). */
    static BigUint fromLimbs(std::vector<std::uint64_t> limbs);

    /** Uniform random value below @p bound (> 0). */
    static BigUint randomBelow(const BigUint &bound, Rng &rng);

    /** Lowercase hex string (no leading zeros, "0" for zero). */
    std::string toHex() const;

    bool isZero() const { return limbs_.empty(); }
    bool isOne() const;
    bool isEven() const;

    /** Index of the highest set bit plus one (0 for zero). */
    unsigned bitLength() const;

    /** Value of bit @p i. */
    bool bit(unsigned i) const;

    /** Low 64 bits. */
    std::uint64_t low64() const { return limbs_.empty() ? 0 : limbs_[0]; }

    /** Read-only limb access. */
    const std::vector<std::uint64_t> &limbs() const { return limbs_; }

    /** Three-way comparison. */
    int compare(const BigUint &other) const;

    bool operator==(const BigUint &o) const { return compare(o) == 0; }
    bool operator!=(const BigUint &o) const { return compare(o) != 0; }
    bool operator<(const BigUint &o) const { return compare(o) < 0; }
    bool operator<=(const BigUint &o) const { return compare(o) <= 0; }
    bool operator>(const BigUint &o) const { return compare(o) > 0; }
    bool operator>=(const BigUint &o) const { return compare(o) >= 0; }

    BigUint operator+(const BigUint &o) const;
    /** @pre *this >= o */
    BigUint operator-(const BigUint &o) const;
    BigUint operator*(const BigUint &o) const;
    BigUint operator<<(unsigned bits) const;
    BigUint operator>>(unsigned bits) const;

    /** Quotient and remainder. @pre !d.isZero() */
    static std::pair<BigUint, BigUint> divmod(const BigUint &num,
                                              const BigUint &den);

    BigUint operator%(const BigUint &m) const;
    BigUint operator/(const BigUint &d) const;

    /** (a + b) mod m */
    static BigUint addMod(const BigUint &a, const BigUint &b,
                          const BigUint &m);

    /** (a - b) mod m */
    static BigUint subMod(const BigUint &a, const BigUint &b,
                          const BigUint &m);

    /** (a * b) mod m */
    static BigUint mulMod(const BigUint &a, const BigUint &b,
                          const BigUint &m);

    /**
     * Modular inverse via the extended Euclidean algorithm.
     * @pre gcd(*this, m) == 1, m > 1
     */
    BigUint invMod(const BigUint &m) const;

  private:
    void trim();

    std::vector<std::uint64_t> limbs_; //!< little-endian, trimmed
};

} // namespace llcf

#endif // LLCF_CRYPTO_BIGUINT_HH
