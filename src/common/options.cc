#include "options.hh"

#include <cctype>
#include <cstdlib>

namespace llcf {

std::uint64_t
envU64(const char *name, std::uint64_t def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    return std::strtoull(v, nullptr, 0);
}

double
envDouble(const char *name, double def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    return std::strtod(v, nullptr);
}

bool
envBool(const char *name, bool def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    std::string s(v);
    return !(s == "0" || s == "false" || s == "no" || s == "off");
}

std::string
envString(const char *name, const std::string &def)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return def;
    return v;
}

bool
equalsIgnoreCase(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const unsigned char ca = static_cast<unsigned char>(a[i]);
        const unsigned char cb = static_cast<unsigned char>(b[i]);
        if (std::tolower(ca) != std::tolower(cb))
            return false;
    }
    return true;
}

bool
fullScale()
{
    return envBool("LLCF_FULL_SCALE", false);
}

bool
countersEnabled()
{
    return envBool("LLCF_COUNTERS", false);
}

std::uint64_t
baseSeed()
{
    return envU64("LLCF_SEED", 42);
}

std::size_t
trialCount(std::size_t def)
{
    return static_cast<std::size_t>(envU64("LLCF_TRIALS", def));
}

} // namespace llcf
