/**
 * @file
 * Fundamental scalar types and unit helpers shared by every module.
 *
 * The simulator models a 2 GHz Intel Skylake-SP-class server, so time is
 * expressed in CPU cycles (Cycles) and converted to wall-clock units with
 * the helpers below.
 */

#ifndef LLCF_COMMON_TYPES_HH
#define LLCF_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace llcf {

/** A physical or virtual memory address. */
using Addr = std::uint64_t;

/** A duration or timestamp measured in CPU cycles. */
using Cycles = std::uint64_t;

/** Signed cycle delta, for differences that may be negative. */
using CyclesDelta = std::int64_t;

/** Number of bytes in a cache line on all modelled machines. */
inline constexpr unsigned kLineBytes = 64;

/** log2 of the cache-line size; the low-order line-offset bits. */
inline constexpr unsigned kLineBits = 6;

/** Standard small-page size; user containers cannot get huge pages. */
inline constexpr unsigned kPageBytes = 4096;

/** log2 of the page size; the page-offset bits shared by VA and PA. */
inline constexpr unsigned kPageBits = 12;

/** Cache lines per 4 kB page (64). */
inline constexpr unsigned kLinesPerPage = kPageBytes / kLineBytes;

/** Nominal core frequency of the modelled hosts (Table 5: 2 GHz). */
inline constexpr double kCpuGhz = 2.0;

/** Convert a cycle count to microseconds at the modelled frequency. */
constexpr double
cyclesToUs(Cycles c)
{
    return static_cast<double>(c) / (kCpuGhz * 1e3);
}

/** Convert a cycle count to milliseconds at the modelled frequency. */
constexpr double
cyclesToMs(Cycles c)
{
    return static_cast<double>(c) / (kCpuGhz * 1e6);
}

/** Convert a cycle count to seconds at the modelled frequency. */
constexpr double
cyclesToSec(Cycles c)
{
    return static_cast<double>(c) / (kCpuGhz * 1e9);
}

/** Convert microseconds to cycles at the modelled frequency. */
constexpr Cycles
usToCycles(double us)
{
    return static_cast<Cycles>(us * kCpuGhz * 1e3);
}

/** Convert milliseconds to cycles at the modelled frequency. */
constexpr Cycles
msToCycles(double ms)
{
    return static_cast<Cycles>(ms * kCpuGhz * 1e6);
}

/** Convert seconds to cycles at the modelled frequency. */
constexpr Cycles
secToCycles(double sec)
{
    return static_cast<Cycles>(sec * kCpuGhz * 1e9);
}

/** Extract the line-aligned address (strip the line offset). */
constexpr Addr
lineAlign(Addr a)
{
    return a & ~static_cast<Addr>(kLineBytes - 1);
}

/** Extract the page offset (low 12 bits) of an address. */
constexpr unsigned
pageOffset(Addr a)
{
    return static_cast<unsigned>(a & (kPageBytes - 1));
}

/** Extract the line index within the page (bits 11..6). */
constexpr unsigned
pageLineIndex(Addr a)
{
    return static_cast<unsigned>((a >> kLineBits) & (kLinesPerPage - 1));
}

/** Round a word count up to a whole number of host cache lines. */
constexpr std::size_t
hostLineAlignWords(std::size_t words)
{
    constexpr std::size_t kWordsPerLine = kLineBytes / sizeof(Addr);
    return (words + kWordsPerLine - 1) / kWordsPerLine * kWordsPerLine;
}

/** Round a word pointer up to the next 64-byte host cache line. */
inline Addr *
hostLineAlignPtr(Addr *p)
{
    const auto u = reinterpret_cast<std::uintptr_t>(p);
    return reinterpret_cast<Addr *>((u + (kLineBytes - 1)) &
                                    ~static_cast<std::uintptr_t>(
                                        kLineBytes - 1));
}

/** True iff @p v is a power of two (and non-zero). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Integer log2 of a power of two. */
constexpr unsigned
log2i(std::uint64_t v)
{
    unsigned r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

} // namespace llcf

#endif // LLCF_COMMON_TYPES_HH
