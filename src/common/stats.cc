#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "log.hh"
#include "types.hh"

namespace llcf {

void
SampleStats::add(double v)
{
    samples_.push_back(v);
    dirty_ = true;
}

void
SampleStats::merge(const SampleStats &other)
{
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    dirty_ = true;
}

double
SampleStats::mean() const
{
    if (samples_.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : samples_)
        sum += v;
    return sum / static_cast<double>(samples_.size());
}

double
SampleStats::stddev() const
{
    if (samples_.size() < 2)
        return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double v : samples_)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(samples_.size()));
}

void
SampleStats::ensureSorted() const
{
    if (dirty_ || sorted_.size() != samples_.size()) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        dirty_ = false;
    }
}

double
SampleStats::min() const
{
    if (samples_.empty())
        panic("SampleStats::min() on an empty aggregate");
    ensureSorted();
    return sorted_.front();
}

double
SampleStats::max() const
{
    if (samples_.empty())
        panic("SampleStats::max() on an empty aggregate");
    ensureSorted();
    return sorted_.back();
}

double
SampleStats::median() const
{
    return percentile(50.0);
}

double
SampleStats::percentile(double pct) const
{
    if (samples_.empty())
        panic("SampleStats::percentile() on an empty aggregate");
    ensureSorted();
    if (sorted_.size() == 1)
        return sorted_.front();
    double clamped = std::clamp(pct, 0.0, 100.0);
    double rank = clamped / 100.0 * static_cast<double>(sorted_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

void
SuccessRate::add(bool success)
{
    ++trials_;
    if (success)
        ++successes_;
}

double
SuccessRate::rate() const
{
    if (trials_ == 0)
        return 0.0;
    return static_cast<double>(successes_) / static_cast<double>(trials_);
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples))
{
    std::sort(sorted_.begin(), sorted_.end());
}

double
EmpiricalCdf::at(double x) const
{
    if (sorted_.empty())
        return 0.0;
    auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) /
           static_cast<double>(sorted_.size());
}

double
EmpiricalCdf::quantile(double q) const
{
    double clamped = std::clamp(q, 0.0, 1.0);
    double rank = clamped * static_cast<double>(sorted_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::vector<std::pair<double, double>>
EmpiricalCdf::curve(std::size_t points) const
{
    std::vector<std::pair<double, double>> out;
    if (sorted_.empty() || points == 0)
        return out;
    const double lo = sorted_.front();
    const double hi = sorted_.back();
    const double step = points > 1 ? (hi - lo) /
                        static_cast<double>(points - 1) : 0.0;
    out.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        double x = lo + step * static_cast<double>(i);
        out.emplace_back(x, at(x));
    }
    return out;
}

std::string
formatDuration(double cycles)
{
    char buf[64];
    const double us = cycles / (kCpuGhz * 1e3);
    if (us < 1e3)
        std::snprintf(buf, sizeof(buf), "%.1f us", us);
    else if (us < 1e6)
        std::snprintf(buf, sizeof(buf), "%.1f ms", us / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.2f s", us / 1e6);
    return buf;
}

} // namespace llcf
