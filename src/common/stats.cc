#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "log.hh"
#include "types.hh"

namespace llcf {

namespace {

/** Neumaier-compensated sum over a sample vector in storage order. */
double
compensatedTotal(const std::vector<double> &samples)
{
    CompensatedSum acc;
    for (double v : samples)
        acc.add(v);
    return acc.value();
}

/**
 * Population standard deviation over a sample vector, both passes
 * compensated.  Shared by SampleStats and the StreamingStats head
 * phase so the two accumulators agree to the last bit on small sets.
 */
double
vectorStddev(const std::vector<double> &samples)
{
    if (samples.size() < 2)
        return 0.0;
    const double m =
        compensatedTotal(samples) / static_cast<double>(samples.size());
    CompensatedSum acc;
    for (double v : samples)
        acc.add((v - m) * (v - m));
    return std::sqrt(acc.value() / static_cast<double>(samples.size()));
}

/** Linear-interpolation percentile over an already-sorted vector. */
double
sortedPercentile(const std::vector<double> &sorted, double pct)
{
    if (sorted.size() == 1)
        return sorted.front();
    double clamped = std::clamp(pct, 0.0, 100.0);
    double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

} // namespace

void
CompensatedSum::add(double v)
{
    const double t = sum_ + v;
    if (std::abs(sum_) >= std::abs(v))
        comp_ += (sum_ - t) + v;
    else
        comp_ += (v - t) + sum_;
    sum_ = t;
}

void
SampleStats::add(double v)
{
    samples_.push_back(v);
    dirty_ = true;
}

void
SampleStats::merge(const SampleStats &other)
{
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    dirty_ = true;
}

double
SampleStats::sum() const
{
    return compensatedTotal(samples_);
}

double
SampleStats::mean() const
{
    if (samples_.empty())
        return 0.0;
    return sum() / static_cast<double>(samples_.size());
}

double
SampleStats::stddev() const
{
    return vectorStddev(samples_);
}

void
SampleStats::ensureSorted() const
{
    if (dirty_ || sorted_.size() != samples_.size()) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        dirty_ = false;
    }
}

double
SampleStats::min() const
{
    if (samples_.empty())
        panic("SampleStats::min() on an empty aggregate");
    ensureSorted();
    return sorted_.front();
}

double
SampleStats::max() const
{
    if (samples_.empty())
        panic("SampleStats::max() on an empty aggregate");
    ensureSorted();
    return sorted_.back();
}

double
SampleStats::median() const
{
    return percentile(50.0);
}

double
SampleStats::percentile(double pct) const
{
    if (samples_.empty())
        panic("SampleStats::percentile() on an empty aggregate");
    ensureSorted();
    return sortedPercentile(sorted_, pct);
}

void
StreamingStats::add(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_.add(v);
    const double d = v - welfordMean_;
    welfordMean_ += d / static_cast<double>(count_);
    welfordM2_ += d * (v - welfordMean_);
    if (head_.size() < kHeadCapacity)
        head_.push_back(v);
    sketchPush(0, v);
}

void
StreamingStats::merge(const StreamingStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    if (other.exact()) {
        // The other side still holds its full sample stream: replaying
        // it is byte-for-byte the same as having added those samples
        // here directly, which keeps head-phase exactness alive.
        for (double v : other.head_)
            add(v);
        return;
    }
    // Streaming combine (Chan et al. for the moments).  Deterministic
    // but order-sensitive; callers fold shards in trial order.
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.welfordMean_ - welfordMean_;
    welfordM2_ +=
        other.welfordM2_ + delta * delta * na * nb / (na + nb);
    welfordMean_ += delta * nb / (na + nb);
    sum_.add(other.sum_);
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    for (std::size_t level = 0; level < other.levels_.size(); ++level)
        for (double v : other.levels_[level])
            sketchPush(level, v);
}

double
StreamingStats::mean() const
{
    if (count_ == 0)
        return 0.0;
    return sum_.value() / static_cast<double>(count_);
}

double
StreamingStats::stddev() const
{
    if (count_ < 2)
        return 0.0;
    if (exact())
        return vectorStddev(head_);
    return std::sqrt(welfordM2_ / static_cast<double>(count_));
}

double
StreamingStats::min() const
{
    if (count_ == 0)
        panic("StreamingStats::min() on an empty aggregate");
    return min_;
}

double
StreamingStats::max() const
{
    if (count_ == 0)
        panic("StreamingStats::max() on an empty aggregate");
    return max_;
}

double
StreamingStats::median() const
{
    return percentile(50.0);
}

double
StreamingStats::percentile(double pct) const
{
    if (count_ == 0)
        panic("StreamingStats::percentile() on an empty aggregate");
    if (exact()) {
        std::vector<double> sorted = head_;
        std::sort(sorted.begin(), sorted.end());
        return sortedPercentile(sorted, pct);
    }
    return sketchQuantile(pct);
}

void
StreamingStats::sketchPush(std::size_t level, double v)
{
    if (levels_.size() <= level) {
        levels_.resize(level + 1);
        parity_.resize(level + 1, 0);
    }
    levels_[level].push_back(v);
    if (levels_[level].size() >= kSketchBuf)
        sketchCompact(level);
}

void
StreamingStats::sketchCompact(std::size_t level)
{
    // Sort the full buffer, keep every second item starting at the
    // level's parity offset, and promote the kept half one level up
    // (each promoted item now stands for twice as many samples).
    // Alternating the offset removes the systematic rank bias a fixed
    // offset would give, without any randomness — the sketch is a pure
    // function of the input sequence.
    std::sort(levels_[level].begin(), levels_[level].end());
    const std::size_t start = parity_[level];
    parity_[level] ^= 1;
    std::vector<double> promoted;
    promoted.reserve(levels_[level].size() / 2);
    for (std::size_t i = start; i < levels_[level].size(); i += 2)
        promoted.push_back(levels_[level][i]);
    levels_[level].clear();
    for (double v : promoted)
        sketchPush(level + 1, v);
}

double
StreamingStats::sketchQuantile(double pct) const
{
    // Weighted rank selection over all compactor buffers: an item at
    // level L stands for 2^L original samples, and the total weight
    // always equals count().
    std::vector<std::pair<double, double>> weighted;
    for (std::size_t level = 0; level < levels_.size(); ++level) {
        const double w = static_cast<double>(std::uint64_t{1} << level);
        for (double v : levels_[level])
            weighted.emplace_back(v, w);
    }
    std::sort(weighted.begin(), weighted.end());
    const double total = static_cast<double>(count_);
    const double clamped = std::clamp(pct, 0.0, 100.0);
    const double rank = clamped / 100.0 * (total - 1.0);
    double cum = 0.0;
    for (const auto &[v, w] : weighted) {
        cum += w;
        if (cum > rank)
            return v;
    }
    return weighted.back().first;
}

StreamingStatsState
StreamingStats::state() const
{
    StreamingStatsState s;
    s.count = count_;
    s.sum = sum_.raw();
    s.sumComp = sum_.compensation();
    s.mean = welfordMean_;
    s.m2 = welfordM2_;
    s.min = min_;
    s.max = max_;
    s.head = head_;
    s.levels = levels_;
    s.parity.assign(parity_.begin(), parity_.end());
    return s;
}

StreamingStats
StreamingStats::fromState(const StreamingStatsState &state)
{
    StreamingStats out;
    out.count_ = state.count;
    out.sum_ = CompensatedSum::fromState(state.sum, state.sumComp);
    out.welfordMean_ = state.mean;
    out.welfordM2_ = state.m2;
    out.min_ = state.min;
    out.max_ = state.max;
    out.head_ = state.head;
    out.levels_ = state.levels;
    out.parity_.assign(state.parity.begin(), state.parity.end());
    return out;
}

SuccessRate::SuccessRate(std::size_t trials, std::size_t successes)
    : trials_(trials), successes_(successes)
{
    if (successes > trials)
        panic("SuccessRate: more successes than trials");
}

void
SuccessRate::add(bool success)
{
    ++trials_;
    if (success)
        ++successes_;
}

void
SuccessRate::merge(const SuccessRate &other)
{
    trials_ += other.trials_;
    successes_ += other.successes_;
}

double
SuccessRate::rate() const
{
    if (trials_ == 0)
        return 0.0;
    return static_cast<double>(successes_) / static_cast<double>(trials_);
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : sorted_(std::move(samples))
{
    std::sort(sorted_.begin(), sorted_.end());
}

double
EmpiricalCdf::at(double x) const
{
    if (sorted_.empty())
        return 0.0;
    auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) /
           static_cast<double>(sorted_.size());
}

double
EmpiricalCdf::quantile(double q) const
{
    double clamped = std::clamp(q, 0.0, 1.0);
    double rank = clamped * static_cast<double>(sorted_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::vector<std::pair<double, double>>
EmpiricalCdf::curve(std::size_t points) const
{
    std::vector<std::pair<double, double>> out;
    if (sorted_.empty() || points == 0)
        return out;
    const double lo = sorted_.front();
    const double hi = sorted_.back();
    const double step = points > 1 ? (hi - lo) /
                        static_cast<double>(points - 1) : 0.0;
    out.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        double x = lo + step * static_cast<double>(i);
        out.emplace_back(x, at(x));
    }
    return out;
}

std::string
formatDuration(double cycles)
{
    char buf[64];
    const double us = cycles / (kCpuGhz * 1e3);
    // Human-readable stdout durations; never serialized (the JSON
    // stores raw cycle counts through jsonNumber()).
    if (us < 1e3)
        // detlint: allow(float-format) -- human-readable stdout only
        std::snprintf(buf, sizeof(buf), "%.1f us", us);
    else if (us < 1e6)
        // detlint: allow(float-format) -- human-readable stdout only
        std::snprintf(buf, sizeof(buf), "%.1f ms", us / 1e3);
    else
        // detlint: allow(float-format) -- human-readable stdout only
        std::snprintf(buf, sizeof(buf), "%.2f s", us / 1e6);
    return buf;
}

} // namespace llcf
