#include "rng.hh"

#include <cmath>

namespace llcf {

std::uint64_t
streamSeed(std::uint64_t master, std::uint64_t stream)
{
    // Double mixing keeps adjacent stream indices from producing
    // correlated xoshiro seed blocks even for small masters.
    return mix64(mix64(master ^ 0x6c62272e07bb0142ULL) +
                 stream * 0x9e3779b97f4a7c15ULL);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

double
Rng::nextExponential(double mean)
{
    double u;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::nextGaussian()
{
    if (hasGaussSpare_) {
        hasGaussSpare_ = false;
        return gaussSpare_;
    }
    double u1, u2;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    u2 = nextDouble();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    gaussSpare_ = mag * std::sin(2.0 * M_PI * u2);
    hasGaussSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::nextGaussian(double mean, double stddev)
{
    return mean + stddev * nextGaussian();
}

std::uint64_t
Rng::nextPoisson(double lambda)
{
    if (lambda <= 0.0)
        return 0;
    if (lambda < 30.0) {
        // Knuth's product-of-uniforms method for small lambda.
        const double limit = std::exp(-lambda);
        std::uint64_t k = 0;
        double prod = nextDouble();
        while (prod > limit) {
            ++k;
            prod *= nextDouble();
        }
        return k;
    }
    // Gaussian approximation for large lambda; adequate for noise
    // burst counts where lambda is a background access count.
    double v = nextGaussian(lambda, std::sqrt(lambda));
    if (v < 0.0)
        v = 0.0;
    return static_cast<std::uint64_t>(v + 0.5);
}

Rng
Rng::forStream(std::uint64_t master, std::uint64_t stream)
{
    return Rng(streamSeed(master, stream));
}

Rng
Rng::split()
{
    return Rng(mix64(next()));
}

} // namespace llcf
