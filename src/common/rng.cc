#include "rng.hh"

#include <cmath>

namespace llcf {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
mix64(std::uint64_t v)
{
    return splitmix64(v);
}

std::uint64_t
streamSeed(std::uint64_t master, std::uint64_t stream)
{
    // Double mixing keeps adjacent stream indices from producing
    // correlated xoshiro seed blocks even for small masters.
    return mix64(mix64(master ^ 0x6c62272e07bb0142ULL) +
                 stream * 0x9e3779b97f4a7c15ULL);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    // Lemire-style rejection to remove modulo bias.
    std::uint64_t threshold = (-bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

double
Rng::nextExponential(double mean)
{
    double u;
    do {
        u = nextDouble();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

double
Rng::nextGaussian()
{
    if (hasGaussSpare_) {
        hasGaussSpare_ = false;
        return gaussSpare_;
    }
    double u1, u2;
    do {
        u1 = nextDouble();
    } while (u1 <= 0.0);
    u2 = nextDouble();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    gaussSpare_ = mag * std::sin(2.0 * M_PI * u2);
    hasGaussSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::nextGaussian(double mean, double stddev)
{
    return mean + stddev * nextGaussian();
}

std::uint64_t
Rng::nextPoisson(double lambda)
{
    if (lambda <= 0.0)
        return 0;
    if (lambda < 30.0) {
        // Knuth's product-of-uniforms method for small lambda.
        const double limit = std::exp(-lambda);
        std::uint64_t k = 0;
        double prod = nextDouble();
        while (prod > limit) {
            ++k;
            prod *= nextDouble();
        }
        return k;
    }
    // Gaussian approximation for large lambda; adequate for noise
    // burst counts where lambda is a background access count.
    double v = nextGaussian(lambda, std::sqrt(lambda));
    if (v < 0.0)
        v = 0.0;
    return static_cast<std::uint64_t>(v + 0.5);
}

Rng
Rng::forStream(std::uint64_t master, std::uint64_t stream)
{
    return Rng(streamSeed(master, stream));
}

Rng
Rng::split()
{
    return Rng(mix64(next()));
}

} // namespace llcf
