/**
 * @file
 * Minimal logging and error-termination helpers, in the spirit of
 * gem5's logging.hh: panic() for internal invariant violations and
 * fatal() for user-caused conditions.
 */

#ifndef LLCF_COMMON_LOG_HH
#define LLCF_COMMON_LOG_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace llcf {

/** Verbosity levels; messages below the global level are suppressed. */
enum class LogLevel { Quiet = 0, Warn = 1, Info = 2, Debug = 3 };

/** Set the process-wide verbosity (default: Warn). */
void setLogLevel(LogLevel level);

/** Current process-wide verbosity. */
LogLevel logLevel();

/** printf-style informational message (suppressed below Info). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style warning (suppressed below Warn). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style debug trace (suppressed below Debug). */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation and abort.  Use for simulator
 * bugs, never for bad user input.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user-facing error (bad configuration,
 * impossible parameters) and exit(1).
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace llcf

#endif // LLCF_COMMON_LOG_HH
