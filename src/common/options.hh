/**
 * @file
 * Environment-variable driven experiment knobs.
 *
 * Benchmarks and examples read scale/seed knobs from the environment so
 * google-benchmark binaries need no custom argv handling:
 *
 *   LLCF_FULL_SCALE=1  run experiments at full paper scale
 *   LLCF_SEED=<n>      base RNG seed
 *   LLCF_TRIALS=<n>    override per-experiment trial counts
 */

#ifndef LLCF_COMMON_OPTIONS_HH
#define LLCF_COMMON_OPTIONS_HH

#include <cstdint>
#include <string>

namespace llcf {

/** Read an environment variable as uint64 with a default. */
std::uint64_t envU64(const char *name, std::uint64_t def);

/** Read an environment variable as double with a default. */
double envDouble(const char *name, double def);

/** Read an environment variable as bool (unset/"0"/"false" => false). */
bool envBool(const char *name, bool def = false);

/** Read an environment variable as string with a default. */
std::string envString(const char *name, const std::string &def);

/**
 * ASCII case-insensitive string equality — for matching user-supplied
 * axis names (replacement policies, pruning algorithms) against their
 * canonical spellings.
 */
bool equalsIgnoreCase(const std::string &a, const std::string &b);

/** True iff LLCF_FULL_SCALE requests full paper-scale experiments. */
bool fullScale();

/**
 * True iff LLCF_COUNTERS asks experiment trials to record the
 * hierarchy PerfCounters as metrics.  Off by default so existing
 * BENCH_*.json outputs keep their exact historical byte content.
 */
bool countersEnabled();

/** Base experiment seed from LLCF_SEED (default 42). */
std::uint64_t baseSeed();

/** Trial count: LLCF_TRIALS if set, otherwise @p def. */
std::size_t trialCount(std::size_t def);

} // namespace llcf

#endif // LLCF_COMMON_OPTIONS_HH
