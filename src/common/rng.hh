/**
 * @file
 * Deterministic, fast pseudo-random number generation.
 *
 * Every stochastic component of the simulator (page-frame allocation,
 * tenant noise, replacement tie-breaking, ...) draws from an Rng seeded
 * explicitly, so whole experiments replay bit-identically from one seed.
 * The generator is xoshiro256**, seeded through SplitMix64 as its authors
 * recommend.
 */

#ifndef LLCF_COMMON_RNG_HH
#define LLCF_COMMON_RNG_HH

#include <cstdint>
#include <utility>

namespace llcf {

/** One step of the SplitMix64 stream; also usable as a mixing hash. */
inline std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Stateless SplitMix64 finaliser: hash a 64-bit value. */
inline std::uint64_t
mix64(std::uint64_t v)
{
    return splitmix64(v);
}

/**
 * Seed of the @p stream-th independent child stream of @p master.
 *
 * Derivation is purely positional (no shared mutable state), so any
 * worker can seed stream i without having generated streams 0..i-1 —
 * the property the parallel experiment harness relies on for
 * schedule-independent reproducibility.
 */
std::uint64_t streamSeed(std::uint64_t master, std::uint64_t stream);

/**
 * xoshiro256** pseudo-random generator with distribution helpers.
 *
 * Not thread-safe; give each simulated actor its own instance (forked
 * via split()) so actors stay decoupled and replayable.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via SplitMix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Generator over the @p stream-th child stream of @p master. */
    static Rng forStream(std::uint64_t master, std::uint64_t stream);

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;

        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);

        return result;
    }

    /** Uniform integer in [0, bound), bias-corrected. @pre bound > 0 */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        // Lemire-style rejection to remove modulo bias.
        std::uint64_t threshold = (-bound) % bound;
        for (;;) {
            std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi */
    std::uint64_t
    nextRange(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + nextBelow(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** True with probability @p p (clamped to [0,1]). */
    bool
    nextBool(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return nextDouble() < p;
    }

    /** Exponentially distributed value with the given mean. */
    double nextExponential(double mean);

    /** Standard normal via Box-Muller (mean 0, stddev 1). */
    double nextGaussian();

    /** Normal with explicit mean and standard deviation. */
    double nextGaussian(double mean, double stddev);

    /** Poisson-distributed count with the given mean (lambda). */
    std::uint64_t nextPoisson(double lambda);

    /**
     * Fork an independent generator.  The child stream is derived by
     * hashing this generator's next output, so parent and child do not
     * overlap in practice.
     */
    Rng split();

    /** Fisher-Yates shuffle of a random-access container. */
    template <typename Container>
    void
    shuffle(Container &c)
    {
        for (std::size_t i = c.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(nextBelow(i));
            using std::swap;
            swap(c[i - 1], c[j]);
        }
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];

    /** Cached second Box-Muller deviate. */
    double gaussSpare_ = 0.0;
    bool hasGaussSpare_ = false;
};

} // namespace llcf

#endif // LLCF_COMMON_RNG_HH
