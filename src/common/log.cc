#include "log.hh"

namespace llcf {

namespace {

LogLevel gLevel = LogLevel::Warn;

void
vprint(const char *tag, const char *fmt, std::va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    gLevel = level;
}

LogLevel
logLevel()
{
    return gLevel;
}

void
inform(const char *fmt, ...)
{
    if (gLevel < LogLevel::Info)
        return;
    std::va_list args;
    va_start(args, fmt);
    vprint("info", fmt, args);
    va_end(args);
}

void
warn(const char *fmt, ...)
{
    if (gLevel < LogLevel::Warn)
        return;
    std::va_list args;
    va_start(args, fmt);
    vprint("warn", fmt, args);
    va_end(args);
}

void
debug(const char *fmt, ...)
{
    if (gLevel < LogLevel::Debug)
        return;
    std::va_list args;
    va_start(args, fmt);
    vprint("debug", fmt, args);
    va_end(args);
}

void
panic(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vprint("panic", fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vprint("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

} // namespace llcf
