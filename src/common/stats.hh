/**
 * @file
 * Summary statistics and empirical distributions.
 *
 * The paper reports success rates, mean/stddev/median execution times and
 * CDFs (Figure 2); these helpers compute those from collected samples.
 */

#ifndef LLCF_COMMON_STATS_HH
#define LLCF_COMMON_STATS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace llcf {

/**
 * Accumulates scalar samples and reports order statistics on demand.
 *
 * Samples are kept (not streamed) because experiments need exact
 * medians and percentiles; sample counts here are modest.
 */
class SampleStats
{
  public:
    /** Record one sample. */
    void add(double v);

    /** Append all samples from another accumulator. */
    void merge(const SampleStats &other);

    /** Number of recorded samples. */
    std::size_t count() const { return samples_.size(); }

    /** True iff no samples recorded. */
    bool empty() const { return samples_.empty(); }

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /** Population standard deviation (0 when fewer than 2 samples). */
    double stddev() const;

    /** Smallest sample. @pre !empty() */
    double min() const;

    /** Largest sample. @pre !empty() */
    double max() const;

    /** Median, by linear interpolation. @pre !empty() */
    double median() const;

    /**
     * Percentile in [0, 100] with linear interpolation between ranks.
     * @pre !empty()
     */
    double percentile(double pct) const;

    /** Read-only access to raw samples (unsorted). */
    const std::vector<double> &samples() const { return samples_; }

  private:
    /** Sort the cached copy if new samples arrived since last query. */
    void ensureSorted() const;

    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool dirty_ = false;
};

/**
 * Counter of binary outcomes, reporting a success rate.
 */
class SuccessRate
{
  public:
    /** Record one trial. */
    void add(bool success);

    /** Number of trials. */
    std::size_t trials() const { return trials_; }

    /** Number of successful trials. */
    std::size_t successes() const { return successes_; }

    /** Fraction of successes in [0,1]; 0 when no trials. */
    double rate() const;

  private:
    std::size_t trials_ = 0;
    std::size_t successes_ = 0;
};

/**
 * Empirical cumulative distribution function over recorded samples.
 */
class EmpiricalCdf
{
  public:
    /** Build from a sample vector (copied and sorted). */
    explicit EmpiricalCdf(std::vector<double> samples);

    /** P(X <= x) over the recorded samples. */
    double at(double x) const;

    /** Inverse CDF: the q-quantile for q in [0,1]. @pre !empty() */
    double quantile(double q) const;

    /** Number of samples. */
    std::size_t size() const { return sorted_.size(); }

    /**
     * Evaluate the CDF at @p points evenly spaced values covering
     * [min, max]; returns (x, cdf) pairs, e.g. for plotting Figure 2.
     */
    std::vector<std::pair<double, double>> curve(std::size_t points) const;

  private:
    std::vector<double> sorted_;
};

/** Format a cycles-denominated duration with an adaptive unit. */
std::string formatDuration(double cycles);

} // namespace llcf

#endif // LLCF_COMMON_STATS_HH
