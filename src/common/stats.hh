/**
 * @file
 * Summary statistics and empirical distributions.
 *
 * The paper reports success rates, mean/stddev/median execution times and
 * CDFs (Figure 2); these helpers compute those from collected samples.
 */

#ifndef LLCF_COMMON_STATS_HH
#define LLCF_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace llcf {

/**
 * Neumaier-compensated running sum: the classic Kahan update with
 * Neumaier's branch so the correction also survives |v| > |sum|.
 * The accumulated value() is exact to one final rounding for the
 * magnitude spreads campaigns produce (calibration cycles in the 1e9
 * range folded with sub-1.0 rates), where a naive left-fold loses
 * low-order bits on every step.
 */
class CompensatedSum
{
  public:
    /** Fold one term into the sum. */
    void add(double v);

    /** Fold another compensated sum in (order-sensitive). */
    void
    add(const CompensatedSum &other)
    {
        add(other.sum_);
        add(other.comp_);
    }

    /** The compensated total. */
    double value() const { return sum_ + comp_; }

    /** Raw running sum (serialisation). */
    double raw() const { return sum_; }

    /** Accumulated correction term (serialisation). */
    double compensation() const { return comp_; }

    /** Rebuild from serialised state. */
    static CompensatedSum
    fromState(double raw, double compensation)
    {
        CompensatedSum s;
        s.sum_ = raw;
        s.comp_ = compensation;
        return s;
    }

  private:
    double sum_ = 0.0;
    double comp_ = 0.0;
};

/**
 * Accumulates scalar samples and reports order statistics on demand.
 *
 * Samples are kept (not streamed): this is the *exact* accumulator,
 * for experiments that need precise medians/percentiles (and for the
 * committed BENCH_*.json whose bytes are pinned to it).  Aggregation
 * paths that must scale to 10^5+ samples use StreamingStats below,
 * which answers the same queries in O(1) memory per metric.
 */
class SampleStats
{
  public:
    /** Record one sample. */
    void add(double v);

    /** Append all samples from another accumulator. */
    void merge(const SampleStats &other);

    /** Number of recorded samples. */
    std::size_t count() const { return samples_.size(); }

    /** True iff no samples recorded. */
    bool empty() const { return samples_.empty(); }

    /**
     * Exact compensated sum of all samples (0 when empty) — the
     * campaign total-cycles path consumes this instead of the lossy
     * mean()*count round-trip.
     */
    double sum() const;

    /** Arithmetic mean (0 when empty), from the compensated sum. */
    double mean() const;

    /** Population standard deviation (0 when fewer than 2 samples). */
    double stddev() const;

    /** Smallest sample. @pre !empty() */
    double min() const;

    /** Largest sample. @pre !empty() */
    double max() const;

    /** Median, by linear interpolation. @pre !empty() */
    double median() const;

    /**
     * Percentile in [0, 100] with linear interpolation between ranks.
     * @pre !empty()
     */
    double percentile(double pct) const;

    /** Read-only access to raw samples (unsorted). */
    const std::vector<double> &samples() const { return samples_; }

  private:
    /** Sort the cached copy if new samples arrived since last query. */
    void ensureSorted() const;

    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool dirty_ = false;
};

/**
 * Serialisable value snapshot of a StreamingStats accumulator, for
 * campaign checkpoints.  All members round-trip exactly through the
 * harness JSON layer (jsonNumber emits shortest-round-trip doubles).
 */
struct StreamingStatsState
{
    std::uint64_t count = 0;
    double sum = 0.0;         //!< raw Neumaier running sum
    double sumComp = 0.0;     //!< Neumaier correction term
    double mean = 0.0;        //!< Welford running mean
    double m2 = 0.0;          //!< Welford sum of squared deviations
    double min = 0.0;         //!< valid iff count > 0
    double max = 0.0;         //!< valid iff count > 0
    std::vector<double> head; //!< exact-phase sample buffer
    /** Quantile-sketch compactor buffers, one per level (level L
     *  items each stand for 2^L original samples). */
    std::vector<std::vector<double>> levels;
    std::vector<std::uint8_t> parity; //!< per-level compaction parity
};

/**
 * Streaming aggregate with the SampleStats query API in O(1) memory
 * per metric.
 *
 * Three cooperating pieces:
 *  - an exact head buffer of the first kHeadCapacity samples.  While
 *    count() fits the head, every query is answered from it with the
 *    *same algorithms SampleStats uses*, so small aggregates — all
 *    committed BENCH_*.json smoke fleets — are byte-identical between
 *    the exact and streaming accumulators;
 *  - Neumaier-compensated sum and Welford moments, fed from the first
 *    sample, so sum()/mean()/stddev() stay exact-to-last-rounding at
 *    10^6 samples;
 *  - a deterministic mergeable quantile-sketch (per-level compacting
 *    buffers with alternating keep-parity, no randomness), answering
 *    percentile queries once the head is outgrown.
 *
 * Determinism contract: the accumulator state is a pure function of
 * the sample sequence, and merge(a, b) is defined as replaying b after
 * a where possible and as a fixed-order combine otherwise — so folds
 * that always combine in trial order (the campaign harness does)
 * produce identical state at any worker-thread count, and a state
 * round-tripped through StreamingStatsState resumes bit-identically.
 */
class StreamingStats
{
  public:
    /** Samples kept exactly before switching to streaming answers. */
    static constexpr std::size_t kHeadCapacity = 64;

    /** Record one sample. */
    void add(double v);

    /** Fold another accumulator in (order-sensitive, deterministic). */
    void merge(const StreamingStats &other);

    /** Number of recorded samples. */
    std::size_t count() const { return static_cast<std::size_t>(count_); }

    /** True iff no samples recorded. */
    bool empty() const { return count_ == 0; }

    /** True while queries are answered exactly from the head. */
    bool exact() const { return count_ <= kHeadCapacity; }

    /** Compensated sum of all samples (0 when empty). */
    double sum() const { return count_ ? sum_.value() : 0.0; }

    /** Arithmetic mean (0 when empty). */
    double mean() const;

    /** Population standard deviation (0 when fewer than 2 samples). */
    double stddev() const;

    /** Smallest sample. @pre !empty() */
    double min() const;

    /** Largest sample. @pre !empty() */
    double max() const;

    /** Median (exact in the head phase, sketched beyond). */
    double median() const;

    /** Percentile in [0, 100]; exact in the head phase. @pre !empty() */
    double percentile(double pct) const;

    /** Value snapshot for checkpoint serialisation. */
    StreamingStatsState state() const;

    /** Rebuild an accumulator from a checkpointed state. */
    static StreamingStats fromState(const StreamingStatsState &state);

  private:
    /** Compactor buffer capacity per sketch level (must stay even). */
    static constexpr std::size_t kSketchBuf = 64;

    /** Append @p v to sketch level @p level, compacting overflow. */
    void sketchPush(std::size_t level, double v);

    /** Sort level @p level and promote alternate items one level up. */
    void sketchCompact(std::size_t level);

    /** Weighted quantile over the sketch buffers. @pre !empty() */
    double sketchQuantile(double pct) const;

    std::uint64_t count_ = 0;
    CompensatedSum sum_;
    double welfordMean_ = 0.0;
    double welfordM2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::vector<double> head_;
    std::vector<std::vector<double>> levels_;
    std::vector<std::uint8_t> parity_;
};

/**
 * Counter of binary outcomes, reporting a success rate.
 */
class SuccessRate
{
  public:
    SuccessRate() = default;

    /** Rebuild from checkpointed counts. @pre successes <= trials */
    SuccessRate(std::size_t trials, std::size_t successes);

    /** Record one trial. */
    void add(bool success);

    /** Fold another counter in. */
    void merge(const SuccessRate &other);

    /** Number of trials. */
    std::size_t trials() const { return trials_; }

    /** Number of successful trials. */
    std::size_t successes() const { return successes_; }

    /** Fraction of successes in [0,1]; 0 when no trials. */
    double rate() const;

  private:
    std::size_t trials_ = 0;
    std::size_t successes_ = 0;
};

/**
 * Empirical cumulative distribution function over recorded samples.
 */
class EmpiricalCdf
{
  public:
    /** Build from a sample vector (copied and sorted). */
    explicit EmpiricalCdf(std::vector<double> samples);

    /** P(X <= x) over the recorded samples. */
    double at(double x) const;

    /** Inverse CDF: the q-quantile for q in [0,1]. @pre !empty() */
    double quantile(double q) const;

    /** Number of samples. */
    std::size_t size() const { return sorted_.size(); }

    /**
     * Evaluate the CDF at @p points evenly spaced values covering
     * [min, max]; returns (x, cdf) pairs, e.g. for plotting Figure 2.
     */
    std::vector<std::pair<double, double>> curve(std::size_t points) const;

  private:
    std::vector<double> sorted_;
};

/** Format a cycles-denominated duration with an adaptive unit. */
std::string formatDuration(double cycles);

} // namespace llcf

#endif // LLCF_COMMON_STATS_HH
