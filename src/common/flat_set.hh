/**
 * @file
 * Sorted-vector set and map: deterministic replacements for the
 * unordered containers on attacker bookkeeping paths.
 *
 * std::unordered_{set,map} iterate in hash order, which is
 * implementation-defined and (for pointer-derived keys) can vary
 * between runs — exactly the nondeterminism the repo's byte-identity
 * contract bans (DESIGN.md §6, enforced statically by detlint's
 * unordered-iter rule, §10).  These containers keep a single sorted
 * std::vector, so iteration order is the key order, always.
 *
 * Complexity: O(log n) lookup, O(n) worst-case insert/erase.  The
 * sites that use them (eviction-set exclusion sets, prober page
 * bookkeeping) hold at most a few thousand small keys and are
 * dominated by simulated cache traffic, so the asymptotic loss is
 * noise; the dense layout usually wins the constant factor anyway.
 */

#ifndef LLCF_COMMON_FLAT_SET_HH
#define LLCF_COMMON_FLAT_SET_HH

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace llcf {

/**
 * A set over a sorted std::vector.  Iteration visits keys in
 * ascending order — deterministic by construction.
 */
template <typename K>
class FlatSet
{
  public:
    FlatSet() = default;

    /** Build from a range; duplicates are dropped. */
    template <typename It>
    FlatSet(It first, It last) : keys_(first, last)
    {
        std::sort(keys_.begin(), keys_.end());
        keys_.erase(std::unique(keys_.begin(), keys_.end()),
                    keys_.end());
    }

    /** Insert @p k; returns true iff it was not present. */
    bool
    insert(const K &k)
    {
        auto it = std::lower_bound(keys_.begin(), keys_.end(), k);
        if (it != keys_.end() && *it == k)
            return false;
        keys_.insert(it, k);
        return true;
    }

    /** Remove @p k; returns true iff it was present. */
    bool
    erase(const K &k)
    {
        auto it = std::lower_bound(keys_.begin(), keys_.end(), k);
        if (it == keys_.end() || *it != k)
            return false;
        keys_.erase(it);
        return true;
    }

    /** 1 if @p k is present, else 0 (std::set-compatible). */
    std::size_t
    count(const K &k) const
    {
        return std::binary_search(keys_.begin(), keys_.end(), k)
                   ? 1 : 0;
    }

    bool contains(const K &k) const { return count(k) != 0; }
    std::size_t size() const { return keys_.size(); }
    bool empty() const { return keys_.empty(); }
    void clear() { keys_.clear(); }
    void reserve(std::size_t n) { keys_.reserve(n); }

    auto begin() const { return keys_.begin(); }
    auto end() const { return keys_.end(); }

  private:
    std::vector<K> keys_; //!< sorted, unique
};

/**
 * A map over a key-sorted std::vector of pairs.  Iteration visits
 * entries in ascending key order — deterministic by construction.
 * find() returns a pointer (nullptr when absent) instead of an
 * iterator, which keeps call sites shorter than the std::map idiom.
 */
template <typename K, typename V>
class FlatMap
{
  public:
    FlatMap() = default;

    /** Insert (k, v) if @p k is absent; returns true iff inserted. */
    bool
    emplace(const K &k, V v)
    {
        auto it = lowerBound(k);
        if (it != entries_.end() && it->first == k)
            return false;
        entries_.insert(it, {k, std::move(v)});
        return true;
    }

    /** Pointer to the entry for @p k, or nullptr when absent. */
    const std::pair<K, V> *
    find(const K &k) const
    {
        auto it = lowerBound(k);
        if (it == entries_.end() || it->first != k)
            return nullptr;
        return &*it;
    }

    /** 1 if @p k is present, else 0 (std::map-compatible). */
    std::size_t count(const K &k) const { return find(k) ? 1 : 0; }

    std::size_t size() const { return entries_.size(); }
    bool empty() const { return entries_.empty(); }
    void clear() { entries_.clear(); }
    void reserve(std::size_t n) { entries_.reserve(n); }

    auto begin() const { return entries_.begin(); }
    auto end() const { return entries_.end(); }

  private:
    typename std::vector<std::pair<K, V>>::const_iterator
    lowerBound(const K &k) const
    {
        return std::lower_bound(entries_.begin(), entries_.end(), k,
                                [](const std::pair<K, V> &e,
                                   const K &key) {
                                    return e.first < key;
                                });
    }

    std::vector<std::pair<K, V>> entries_; //!< sorted by key, unique
};

} // namespace llcf

#endif // LLCF_COMMON_FLAT_SET_HH
