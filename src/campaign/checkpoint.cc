#include "checkpoint.hh"

#include <cstdio>
#include <cstdlib>

namespace llcf {

std::string
campaignCheckpointJson(const CampaignCheckpoint &cp)
{
    JsonWriter w;
    w.beginObject();
    w.member("campaign", cp.campaign);
    w.member("fleet", cp.fleet);
    // Seeds are full 64-bit values; JSON numbers are doubles, so the
    // seed goes through a string to survive the round trip exactly.
    w.member("master_seed", std::to_string(cp.masterSeed));
    w.member("shard_trials", cp.shardTrials);
    w.member("next_trial", cp.nextTrial);
    w.key("aggregate");
    cp.aggregate.writeState(w);
    w.endObject();
    return w.str();
}

bool
writeCampaignCheckpoint(const std::string &path,
                        const CampaignCheckpoint &cp, std::string *error)
{
    const std::string doc = campaignCheckpointJson(cp);
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "w");
    if (!f) {
        if (error)
            *error = "cannot open " + tmp + " for writing";
        return false;
    }
    const bool wrote =
        std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
        std::fputc('\n', f) != EOF;
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed) {
        if (error)
            *error = "error writing " + tmp;
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (error)
            *error = "cannot rename " + tmp + " to " + path;
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
loadCampaignCheckpoint(const std::string &path, CampaignCheckpoint &out,
                       std::string *error)
{
    JsonValue doc;
    if (!loadJsonFile(path, doc, error))
        return false;
    if (!doc.isObject()) {
        if (error)
            *error = path + ": checkpoint is not a JSON object";
        return false;
    }
    const JsonValue *campaign = doc.find("campaign");
    const JsonValue *fleet = doc.find("fleet");
    const JsonValue *seed = doc.find("master_seed");
    const JsonValue *shard = doc.find("shard_trials");
    const JsonValue *next = doc.find("next_trial");
    const JsonValue *agg = doc.find("aggregate");
    if (!campaign || !fleet || !fleet->isNumber() || !seed ||
        !shard || !shard->isNumber() || !next || !next->isNumber() ||
        !agg) {
        if (error)
            *error = path + ": checkpoint is missing required fields";
        return false;
    }
    out.campaign = campaign->asString();
    out.fleet = static_cast<std::uint64_t>(fleet->asNumber());
    out.masterSeed = std::strtoull(seed->asString().c_str(), nullptr, 10);
    out.shardTrials = static_cast<std::uint64_t>(shard->asNumber());
    out.nextTrial = static_cast<std::uint64_t>(next->asNumber());
    std::string aggError;
    if (!CampaignAggregate::fromState(*agg, out.aggregate, &aggError)) {
        if (error)
            *error = path + ": " + aggError;
        return false;
    }
    return true;
}

} // namespace llcf
