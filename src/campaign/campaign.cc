#include "campaign.hh"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <utility>

#include "attack/e2e.hh"
#include "campaign/checkpoint.hh"
#include "common/log.hh"
#include "common/options.hh"
#include "common/rng.hh"
#include "harness/thread_pool.hh"
#include "victim/victim.hh"

namespace llcf {
namespace {

/** Sub-streams of one victim trial's victim seed. */
constexpr std::uint64_t kProductionVictim = 0;
constexpr std::uint64_t kTrainingReplica = 1;

/**
 * Stream index of the fork path's shared warmup world.  Deliberately
 * outside the trial range [0, fleet), so no victim trial shares
 * randomness with the warmup.
 */
constexpr std::uint64_t kWorldStream = 0xFFFFFFFFFFFFFFFFull;

/** The noise profile victim @p v of the fleet runs under. */
const std::string &
fleetNoiseFor(const ScenarioSpec &spec, std::size_t v)
{
    if (spec.fleetNoises.empty())
        return spec.noise;
    return spec.fleetNoises[v % spec.fleetNoises.size()];
}

/** Victim @p v's target page-line index inside its binary. */
unsigned
fleetLineIndexFor(const ScenarioSpec &spec, std::size_t v)
{
    return static_cast<unsigned>(
        (spec.fleetLineIndexBase +
         static_cast<std::uint64_t>(spec.fleetLineIndexStep) * v) %
        kLinesPerPage);
}

/** The explicit failure record of a victim whose attack never ran
 *  (failed warmup on the fork path, failed Step 0 on rebuild). */
void
recordFailedVictim(TrialRecorder &rec, Cycles totalCycles)
{
    rec.outcome("evsets_built", false);
    rec.outcome("target_found", false);
    rec.outcome("target_correct", false);
    rec.outcome("key_recovered", false);
    rec.metric("build_cycles", 0.0);
    rec.metric("scan_cycles", 0.0);
    rec.metric("extract_cycles", 0.0);
    rec.metric("total_cycles", static_cast<double>(totalCycles));
    rec.metric("traces_collected", 0.0);
    // No recovered_fraction / bit_error_rate samples: a victim that
    // was never attacked contributes *absent* accuracy metrics, not
    // fake zeros — summarizeCampaign and the bench gate handle the
    // all-victims-failed fleet where these keys never appear at all.
}

/**
 * Rotation campaigns score each key epoch independently: a trace only
 * supports the key it was served under (DESIGN.md §11).  Records one
 * "epoch_key_recovered" outcome per epoch seen in the monitored
 * traces and returns whether any epoch's key met the quality bands.
 */
bool
scoreKeyEpochs(const ScenarioSpec &spec, TrialRecorder &rec,
               const E2EResult &res)
{
    // Traces arrive in collection order, so epochs are non-decreasing;
    // group by scanning for boundaries.
    std::size_t epochs = 0;
    std::size_t recoveredEpochs = 0;
    std::size_t i = 0;
    while (i < res.traceRecords.size()) {
        const unsigned epoch = res.traceRecords[i].keyEpoch;
        SampleStats rf;
        SampleStats ber;
        for (; i < res.traceRecords.size() &&
               res.traceRecords[i].keyEpoch == epoch;
             ++i) {
            rf.add(res.traceRecords[i].recoveredFraction);
            if (res.traceRecords[i].hasBitErrorRate)
                ber.add(res.traceRecords[i].bitErrorRate);
        }
        const bool recovered =
            res.targetCorrect && !rf.empty() && !ber.empty() &&
            rf.mean() >= spec.keyMinRecoveredFraction &&
            ber.mean() <= spec.keyMaxBitErrorRate;
        rec.outcome("epoch_key_recovered", recovered);
        ++epochs;
        recoveredEpochs += recovered;
    }
    rec.metric("traffic_epochs", static_cast<double>(epochs));
    rec.metric("traffic_epoch_keys",
               static_cast<double>(recoveredEpochs));
    return recoveredEpochs > 0;
}

/** Record one attack result under the campaign's canonical names. */
void
recordVictimResult(const ScenarioSpec &spec, TrialRecorder &rec,
                   const E2EResult &res, Cycles totalCycles)
{
    rec.outcome("evsets_built", res.evsetsBuilt);
    rec.outcome("target_found", res.targetFound);
    rec.outcome("target_correct", res.targetCorrect);
    const bool recovered =
        spec.rotateKeys > 0
            ? scoreKeyEpochs(spec, rec, res)
            : res.targetCorrect && !res.recoveredFraction.empty() &&
                  !res.bitErrorRate.empty() &&
                  res.recoveredFraction.mean() >=
                      spec.keyMinRecoveredFraction &&
                  res.bitErrorRate.mean() <= spec.keyMaxBitErrorRate;
    rec.outcome("key_recovered", recovered);

    rec.metric("build_cycles", static_cast<double>(res.buildTime));
    rec.metric("scan_cycles", static_cast<double>(res.scanTime));
    rec.metric("extract_cycles", static_cast<double>(res.extractTime));
    rec.metric("total_cycles", static_cast<double>(totalCycles));
    rec.metric("traces_collected",
               static_cast<double>(res.tracesCollected));
    for (double v : res.recoveredFraction.samples())
        rec.metric("recovered_fraction", v);
    for (double v : res.bitErrorRate.samples())
        rec.metric("bit_error_rate", v);
}

/**
 * The fork path's per-worker warmed world: Steps 0-2 run once, the
 * machine and attacker session are snapshotted, and every victim
 * trial on this worker restores the snapshot and pays only for its
 * own Step-3 monitoring.  Every worker builds a bit-identical world
 * (same spec, same kWorldStream seed), so which worker runs which
 * trial cannot affect the aggregate.
 */
struct CampaignWorld
{
    CampaignWorld(const ScenarioSpec &s, std::uint64_t masterSeed);

    ScenarioSpec spec;
    ScenarioRig rig;
    TraceClassifier classifier;
    NonceExtractor extractor;
    E2EParams params;

    /** The scanned target eviction set, valid fleet-wide (uniform
     *  fleet: every victim maps its target at the same line index). */
    BuiltEvictionSet evset;

    Machine::Snapshot machineSnap;
    AttackSession::Snapshot sessionSnap;

    bool scanOk = false;    //!< warmup reached a scanned target set
    Cycles warmupCycles = 0; //!< one-time Steps 0-2 cost (simulated)
};

CampaignWorld::CampaignWorld(const ScenarioSpec &s,
                             std::uint64_t masterSeed)
    : spec(s), rig(s, streamSeed(masterSeed, kWorldStream))
{
    Machine &m = rig.machine;

    // ---- Step 0: blind campaigns calibrate once; the cost lands in
    // warmupCycles like the rest of the warmup.
    if (spec.blind()) {
        CalibratedTopology calib = runScenarioCalibration(spec, rig);
        if (!calib.valid) {
            warmupCycles = m.now();
            return; // scanOk stays false: every victim fails explicitly
        }
    }

    // All fleet victims share one layout on the fork path.
    const unsigned lineIndex = fleetLineIndexFor(spec, 0);

    // ---- classifier training on an attacker-side replica.
    auto replica = makeScenarioVictim(
        spec, m, streamSeed(rig.victimSeed(), kTrainingReplica),
        lineIndex, 0);
    classifier = trainScenarioClassifier(spec, rig, *replica);

    params.algo = spec.algo;
    params.useFilter = spec.useFilter;
    params.tracesPerVictim = spec.tracesPerVictim;
    params.scanner.timeout = secToCycles(spec.scanTimeoutSec);

    // ---- Step 1: eviction sets at the fleet's target line index.
    EvictionSetBuilder builder(*rig.session, spec.algo, spec.useFilter);
    BulkOutcome built =
        builder.buildAtLineIndex(*rig.pool, lineIndex);
    if (built.evsets.empty()) {
        warmupCycles = m.now();
        return;
    }

    // ---- fork point.  The snapshot is taken *before* the scan victim
    // exists, so each restored trial's production victim allocates the
    // exact frames the scan victim drew here — the scanned set stays
    // the true target set for every forked victim.
    machineSnap = m.snapshot();
    sessionSnap = rig.session->snapshot();

    // ---- Step 2: identify the target SF set against a stand-in
    // victim with the fleet layout.
    auto scanVictim = makeScenarioVictim(
        spec, m, streamSeed(rig.victimSeed(), kProductionVictim),
        lineIndex, 0);
    scanVictim->serveRequests(
        m.now(),
        EndToEndAttack::scanRequestCount(*scanVictim, params.scanner));
    TargetSetScanner scanner(*rig.session, classifier);
    ScanResult scan = scanner.scan(built.evsets);
    m.clearStreams();
    warmupCycles = m.now();
    if (!scan.found)
        return;
    evset = built.evsets[scan.evsetIndex];
    scanOk = true;
}

/**
 * Distinguishes campaign runs so stale thread_local worlds from a
 * previous run (or a previous pool's recycled thread) are never
 * reused across (spec, seed) boundaries.
 */
std::atomic<std::uint64_t> campaignRunToken{0};

/** This worker's warmed world for run @p token (built on first use). */
CampaignWorld &
workerWorld(const ScenarioSpec &spec, std::uint64_t masterSeed,
            std::uint64_t token)
{
    struct WorldSlot
    {
        std::uint64_t token = 0;
        std::unique_ptr<CampaignWorld> world;
    };
    thread_local WorldSlot slot;
    if (slot.token != token || !slot.world) {
        slot.world = std::make_unique<CampaignWorld>(spec, masterSeed);
        slot.token = token;
    }
    return *slot.world;
}

/**
 * One victim's trial body on the fork path: restore the post-build
 * snapshot, create this victim (own key, own quota, shared layout)
 * and run the Step-3 monitoring loop against the pre-scanned set.
 */
void
runForkedVictimTrial(CampaignWorld &world, const ScenarioSpec &spec,
                     TrialContext &ctx, TrialRecorder &rec)
{
    if (!world.scanOk) {
        // Warmup failed (blind calibration, Step 1 or Step 2): there
        // is no set to monitor, so every victim in the fleet fails
        // explicitly.  The one-time warmup cost is still charged via
        // trial 0's warmup_cycles metric below.
        recordFailedVictim(rec, 0);
        if (ctx.index == 0)
            rec.metric("warmup_cycles",
                       static_cast<double>(world.warmupCycles));
        return;
    }

    Machine &m = world.rig.machine;
    m.restore(world.machineSnap);
    world.rig.session->restore(world.sessionSnap);
    const Cycles start = m.now();

    auto victim = makeScenarioVictim(
        spec, m, streamSeed(ctx.seed, kProductionVictim),
        fleetLineIndexFor(spec, ctx.index), spec.victimRequestQuota);

    EndToEndAttack attack(*world.rig.session, *victim,
                          world.classifier, world.extractor,
                          world.params);
    E2EResult res = attack.runFromScan(world.evset);

    // Per-victim marginal cost: only this victim's monitoring time.
    // The shared Steps 0-2 cost is charged once (warmup_cycles).
    recordVictimResult(spec, rec, res, m.now() - start);
    maybeRecordTraffic(spec, rec, *victim, nullptr);
    recordPerfCounters(rec, m.perfCounters());
    if (ctx.index == 0)
        rec.metric("warmup_cycles",
                   static_cast<double>(world.warmupCycles));
}

} // namespace

void
runCampaignVictimTrial(const ScenarioSpec &spec, TrialContext &ctx,
                       TrialRecorder &rec)
{
    // Victim v's world view: the campaign axes with v's own noise
    // environment.  Everything else is rebuilt from the trial stream,
    // so two victims share nothing but the spec.
    ScenarioSpec victimSpec = spec;
    victimSpec.noise = fleetNoiseFor(spec, ctx.index);
    ScenarioRig rig(victimSpec, ctx.seed);

    // Blind campaigns run Step 0 first; its cycles are charged to the
    // victim's total attack cost (and therefore to the fleet's
    // cycles-per-recovered-key headline).
    Cycles calibCycles = 0;
    if (victimSpec.blind()) {
        CalibratedTopology calib =
            runScenarioCalibration(victimSpec, rig);
        recordCalibration(rec, calib,
                          compareToOracle(calib,
                                          rig.machine.config()));
        calibCycles = calib.cycles;
        if (!calib.valid) {
            // Step 0 came home empty: the attack cannot proceed.
            // Record the explicit empty outcomes so the fleet
            // aggregates stay comparable with successful victims.
            recordFailedVictim(rec, calibCycles);
            recordPerfCounters(rec, rig.machine.perfCounters());
            return;
        }
    }

    auto victim = makeScenarioVictim(
        spec, rig.machine, streamSeed(rig.victimSeed(),
                                      kProductionVictim),
        fleetLineIndexFor(spec, ctx.index), spec.victimRequestQuota);
    maybeArmScenarioWatchdog(rig.machine, *victim);

    // The classifier trains offline on an attacker-side replica of
    // the victim binary (same layout, its own key, no quota), as in
    // the paper — the production victim's quota is never spent on
    // training traffic.
    auto replica = makeScenarioVictim(
        spec, rig.machine, streamSeed(rig.victimSeed(),
                                      kTrainingReplica),
        fleetLineIndexFor(spec, ctx.index), 0);
    TraceClassifier classifier =
        trainScenarioClassifier(victimSpec, rig, *replica);
    auto load =
        makeScenarioLoad(victimSpec, rig.machine, rig.victimSeed());

    NonceExtractor extractor; // rule-based boundary detection
    E2EParams params;
    params.algo = victimSpec.algo;
    params.useFilter = victimSpec.useFilter;
    params.tracesPerVictim = victimSpec.tracesPerVictim;
    params.scanner.timeout = secToCycles(victimSpec.scanTimeoutSec);
    EndToEndAttack attack(*rig.session, *victim, classifier, extractor,
                          params);
    E2EResult res = attack.run(*rig.pool);

    recordVictimResult(spec, rec, res, res.totalTime() + calibCycles);
    if (spec.defense.recordsMetrics())
        recordDefenseMetrics(rec, rig.machine, nullptr);
    maybeRecordTraffic(spec, rec, *victim, load.get());
    // Campaigns always aggregate the hierarchy counters: BENCH_e2e
    // is new output, so there is no historical byte content to keep.
    recordPerfCounters(rec, rig.machine.perfCounters());
}

CampaignSummary
summarizeCampaign(const CampaignAggregate &aggregate)
{
    CampaignSummary s;
    s.fleet = aggregate.trials();
    if (const SuccessRate *kr = aggregate.outcome("key_recovered")) {
        s.keysRecovered = kr->successes();
        s.fleetSuccessRate = kr->rate();
    }
    // Exact streaming sums; a fleet whose every victim failed before
    // the attack simply has no such metrics, leaving the explicit 0.
    if (const StreamingStats *total = aggregate.metric("total_cycles"))
        s.totalAttackCycles = total->sum();
    if (const StreamingStats *warm = aggregate.metric("warmup_cycles"))
        s.totalAttackCycles += warm->sum();
    s.cyclesPerRecoveredKey =
        s.keysRecovered
            ? s.totalAttackCycles / static_cast<double>(s.keysRecovered)
            : std::numeric_limits<double>::quiet_NaN();
    return s;
}

CampaignSummary
summarizeCampaign(const ExperimentResult &experiment)
{
    CampaignSummary s;
    s.fleet = experiment.trials();
    if (const SuccessRate *kr = experiment.outcome("key_recovered")) {
        s.keysRecovered = kr->successes();
        s.fleetSuccessRate = kr->rate();
    }
    if (const SampleStats *total = experiment.metric("total_cycles")) {
        // The exact compensated sum — mean()*count round-trips the
        // already-rounded mean and is off by ulps at fleet scale.
        s.totalAttackCycles = total->sum();
    }
    s.cyclesPerRecoveredKey =
        s.keysRecovered
            ? s.totalAttackCycles / static_cast<double>(s.keysRecovered)
            : std::numeric_limits<double>::quiet_NaN();
    return s;
}

void
CampaignResult::writeJson(JsonWriter &w) const
{
    w.beginObject();
    aggregate.writeJsonMembers(w, name, masterSeed);
    w.key("campaign").beginObject();
    w.member("fleet", static_cast<std::uint64_t>(summary.fleet));
    w.member("keys_recovered",
             static_cast<std::uint64_t>(summary.keysRecovered));
    w.member("fleet_success_rate", summary.fleetSuccessRate);
    w.member("total_attack_cycles", summary.totalAttackCycles);
    // NaN (no key recovered) serialises as an explicit null.
    w.member("cycles_per_recovered_key", summary.cyclesPerRecoveredKey);
    w.endObject();
    w.endObject();
}

KeyRecoveryCampaign::KeyRecoveryCampaign(ScenarioSpec spec)
    : spec_(std::move(spec))
{
    if (spec_.stage != ScenarioStage::Campaign)
        fatal("campaign '%s': spec stage is %s, not campaign",
              spec_.name.c_str(), scenarioStageName(spec_.stage));
    if (spec_.forkVictims &&
        (spec_.fleetLineIndexStep != 0 || !spec_.fleetNoises.empty()))
        fatal("campaign '%s': forkVictims needs a uniform fleet "
              "(fleetLineIndexStep == 0, no fleetNoises rotation) — "
              "the one-time scan is only valid when every victim "
              "shares the layout and environment",
              spec_.name.c_str());
    if (spec_.forkVictims && spec_.defense.active())
        fatal("campaign '%s': forkVictims cannot compose with an "
              "active defense — re-keying or watchdog state would "
              "invalidate the shared post-scan snapshot; use the "
              "per-trial (non-fork) campaign path",
              spec_.name.c_str());
    if (spec_.forkVictims && spec_.coTenants > 0)
        fatal("campaign '%s': forkVictims cannot compose with "
              "co-tenant load — the pinned load streams live outside "
              "the shared post-scan snapshot; use the per-trial "
              "(non-fork) campaign path",
              spec_.name.c_str());
}

CampaignResult
KeyRecoveryCampaign::run(const CampaignRunOptions &opts) const
{
    // wallSeconds is stdout-only progress info; writeJson omits it
    // (campaign.hh), so no serialized byte depends on this read.
    // detlint: allow(wallclock) -- stdout-only wall time
    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t fleet = opts.fleet ? opts.fleet : spec_.fleetSize;
    const unsigned threads = resolveThreadCount(opts.threads);

    CampaignResult out;
    out.name = spec_.name;
    out.trials = fleet;
    out.masterSeed = opts.masterSeed;
    out.threadsUsed = threads;

    // ---- resume: adopt the checkpointed aggregate, continue at the
    // recorded trial.  A missing file is a fresh start; a mismatched
    // or unreadable one is an operator error, not something to paper
    // over by silently recomputing.
    std::size_t nextTrial = 0;
    if (opts.resume && !opts.checkpointPath.empty()) {
        if (std::FILE *f = std::fopen(opts.checkpointPath.c_str(), "r")) {
            std::fclose(f);
            CampaignCheckpoint cp;
            std::string err;
            if (!loadCampaignCheckpoint(opts.checkpointPath, cp, &err))
                fatal("campaign '%s': cannot resume: %s",
                      spec_.name.c_str(), err.c_str());
            if (cp.campaign != spec_.name || cp.fleet != fleet ||
                cp.masterSeed != opts.masterSeed ||
                cp.shardTrials != kCampaignShardTrials)
                fatal("campaign '%s': checkpoint %s belongs to a "
                      "different run (campaign '%s', fleet %llu, seed "
                      "%llu, shard %llu)",
                      spec_.name.c_str(), opts.checkpointPath.c_str(),
                      cp.campaign.c_str(),
                      static_cast<unsigned long long>(cp.fleet),
                      static_cast<unsigned long long>(cp.masterSeed),
                      static_cast<unsigned long long>(cp.shardTrials));
            out.aggregate = std::move(cp.aggregate);
            nextTrial = static_cast<std::size_t>(cp.nextTrial);
        }
    }

    // One token per run: recycled worker threads must not reuse a
    // world warmed for a different (spec, seed).
    const std::uint64_t token = ++campaignRunToken;

    ThreadPool pool(threads);
    std::size_t shardsRun = 0;
    while (nextTrial < fleet) {
        if (opts.stopAfterShards && shardsRun >= opts.stopAfterShards) {
            out.interrupted = true;
            break;
        }
        const std::size_t shardEnd =
            std::min(fleet, nextTrial + kCampaignShardTrials);
        const std::size_t count = shardEnd - nextTrial;

        // Per-trial slots, folded in trial order below: the aggregate
        // is a function of (spec, seed, fleet) alone, whatever the
        // worker count or schedule.
        std::vector<TrialRecorder> slots(count);
        pool.parallelFor(count, [&, nextTrial](std::size_t i) {
            const std::size_t trial = nextTrial + i;
            TrialContext ctx{trial, streamSeed(opts.masterSeed, trial),
                             Rng::forStream(opts.masterSeed, trial)};
            if (spec_.forkVictims) {
                CampaignWorld &world =
                    workerWorld(spec_, opts.masterSeed, token);
                runForkedVictimTrial(world, spec_, ctx, slots[i]);
            } else {
                runCampaignVictimTrial(spec_, ctx, slots[i]);
            }
        });
        for (const TrialRecorder &slot : slots)
            out.aggregate.fold(slot);
        nextTrial = shardEnd;
        ++shardsRun;

        if (!opts.checkpointPath.empty()) {
            CampaignCheckpoint cp;
            cp.campaign = spec_.name;
            cp.fleet = fleet;
            cp.masterSeed = opts.masterSeed;
            cp.shardTrials = kCampaignShardTrials;
            cp.nextTrial = nextTrial;
            cp.aggregate = out.aggregate;
            std::string err;
            if (!writeCampaignCheckpoint(opts.checkpointPath, cp, &err))
                fatal("campaign '%s': checkpoint write failed: %s",
                      spec_.name.c_str(), err.c_str());
        }
    }

    out.summary = summarizeCampaign(out.aggregate);
    // Paired with the t0 read above; feeds the stdout-only
    // wallSeconds field, never the JSON.
    // detlint: allow(wallclock) -- stdout-only wall time
    const auto t1 = std::chrono::steady_clock::now();
    out.summary.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    return out;
}

CampaignSuite::CampaignSuite(std::string bench)
    : bench_(std::move(bench))
{
}

void
CampaignSuite::contextValue(std::string key, double v)
{
    contextValues_.emplace_back(std::move(key), v);
}

void
CampaignSuite::add(CampaignResult result)
{
    if (result.interrupted)
        fatal("campaign suite '%s': refusing to serialise the "
              "interrupted campaign '%s' — resume it to completion "
              "first",
              bench_.c_str(), result.name.c_str());
    results_.push_back(std::move(result));
}

std::string
CampaignSuite::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.key("context").beginObject();
    w.member("bench", bench_);
    w.member("base_seed", baseSeed());
    w.member("full_scale", fullScale());
    for (const auto &[key, v] : contextValues_)
        w.member(key, v);
    w.endObject();
    w.key("benchmarks").beginArray();
    for (const auto &r : results_)
        r.writeJson(w);
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
CampaignSuite::writeFile(const std::string &path) const
{
    return writeBenchDocument(bench_, toJson(), path);
}

} // namespace llcf
