#include "campaign.hh"

#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "attack/e2e.hh"
#include "common/log.hh"
#include "common/options.hh"
#include "common/rng.hh"
#include "victim/victim.hh"

namespace llcf {
namespace {

/** Sub-streams of one victim trial's victim seed. */
constexpr std::uint64_t kProductionVictim = 0;
constexpr std::uint64_t kTrainingReplica = 1;

/** The noise profile victim @p v of the fleet runs under. */
const std::string &
fleetNoiseFor(const ScenarioSpec &spec, std::size_t v)
{
    if (spec.fleetNoises.empty())
        return spec.noise;
    return spec.fleetNoises[v % spec.fleetNoises.size()];
}

/** Victim @p v's target page-line index inside its binary. */
unsigned
fleetLineIndexFor(const ScenarioSpec &spec, std::size_t v)
{
    return static_cast<unsigned>(
        (spec.fleetLineIndexBase +
         static_cast<std::uint64_t>(spec.fleetLineIndexStep) * v) %
        kLinesPerPage);
}

} // namespace

void
runCampaignVictimTrial(const ScenarioSpec &spec, TrialContext &ctx,
                       TrialRecorder &rec)
{
    // Victim v's world view: the campaign axes with v's own noise
    // environment.  Everything else is rebuilt from the trial stream,
    // so two victims share nothing but the spec.
    ScenarioSpec victimSpec = spec;
    victimSpec.noise = fleetNoiseFor(spec, ctx.index);
    ScenarioRig rig(victimSpec, ctx.seed);

    // Blind campaigns run Step 0 first; its cycles are charged to the
    // victim's total attack cost (and therefore to the fleet's
    // cycles-per-recovered-key headline).
    Cycles calibCycles = 0;
    if (victimSpec.blind()) {
        CalibratedTopology calib =
            runScenarioCalibration(victimSpec, rig);
        recordCalibration(rec, calib,
                          compareToOracle(calib,
                                          rig.machine.config()));
        calibCycles = calib.cycles;
        if (!calib.valid) {
            // Step 0 came home empty: the attack cannot proceed.
            // Record the explicit empty outcomes so the fleet
            // aggregates stay comparable with successful victims.
            rec.outcome("evsets_built", false);
            rec.outcome("target_found", false);
            rec.outcome("target_correct", false);
            rec.outcome("key_recovered", false);
            rec.metric("build_cycles", 0.0);
            rec.metric("scan_cycles", 0.0);
            rec.metric("extract_cycles", 0.0);
            rec.metric("total_cycles",
                       static_cast<double>(calibCycles));
            rec.metric("traces_collected", 0.0);
            recordPerfCounters(rec, rig.machine.perfCounters());
            return;
        }
    }

    VictimConfig vcfg;
    vcfg.seed = streamSeed(rig.victimSeed(), kProductionVictim);
    vcfg.targetLineIndex = fleetLineIndexFor(spec, ctx.index);
    vcfg.requestQuota = spec.victimRequestQuota;
    VictimService victim(rig.machine, vcfg);

    // The classifier trains offline on an attacker-side replica of
    // the victim binary (same layout, its own key, no quota), as in
    // the paper — the production victim's quota is never spent on
    // training traffic.
    VictimConfig rcfg = vcfg;
    rcfg.seed = streamSeed(rig.victimSeed(), kTrainingReplica);
    rcfg.requestQuota = 0;
    VictimService replica(rig.machine, rcfg);
    TraceClassifier classifier =
        trainScenarioClassifier(victimSpec, rig, replica);

    NonceExtractor extractor; // rule-based boundary detection
    E2EParams params;
    params.algo = victimSpec.algo;
    params.useFilter = victimSpec.useFilter;
    params.tracesPerVictim = victimSpec.tracesPerVictim;
    params.scanner.timeout = secToCycles(victimSpec.scanTimeoutSec);
    EndToEndAttack attack(*rig.session, victim, classifier, extractor,
                          params);
    E2EResult res = attack.run(*rig.pool);

    rec.outcome("evsets_built", res.evsetsBuilt);
    rec.outcome("target_found", res.targetFound);
    rec.outcome("target_correct", res.targetCorrect);
    const bool recovered =
        res.targetCorrect && !res.recoveredFraction.empty() &&
        !res.bitErrorRate.empty() &&
        res.recoveredFraction.mean() >= spec.keyMinRecoveredFraction &&
        res.bitErrorRate.mean() <= spec.keyMaxBitErrorRate;
    rec.outcome("key_recovered", recovered);

    rec.metric("build_cycles", static_cast<double>(res.buildTime));
    rec.metric("scan_cycles", static_cast<double>(res.scanTime));
    rec.metric("extract_cycles", static_cast<double>(res.extractTime));
    rec.metric("total_cycles",
               static_cast<double>(res.totalTime() + calibCycles));
    rec.metric("traces_collected",
               static_cast<double>(res.tracesCollected));
    for (double v : res.recoveredFraction.samples())
        rec.metric("recovered_fraction", v);
    for (double v : res.bitErrorRate.samples())
        rec.metric("bit_error_rate", v);
    // Campaigns always aggregate the hierarchy counters: BENCH_e2e
    // is new output, so there is no historical byte content to keep.
    recordPerfCounters(rec, rig.machine.perfCounters());
}

CampaignSummary
summarizeCampaign(const ExperimentResult &experiment)
{
    CampaignSummary s;
    s.fleet = experiment.trials();
    if (const SuccessRate *kr = experiment.outcome("key_recovered")) {
        s.keysRecovered = kr->successes();
        s.fleetSuccessRate = kr->rate();
    }
    if (const SampleStats *total = experiment.metric("total_cycles")) {
        s.totalAttackCycles =
            total->mean() * static_cast<double>(total->count());
    }
    s.cyclesPerRecoveredKey =
        s.keysRecovered
            ? s.totalAttackCycles / static_cast<double>(s.keysRecovered)
            : std::numeric_limits<double>::quiet_NaN();
    return s;
}

void
CampaignResult::writeJson(JsonWriter &w) const
{
    w.beginObject();
    experiment.writeJsonMembers(w);
    w.key("campaign").beginObject();
    w.member("fleet", static_cast<std::uint64_t>(summary.fleet));
    w.member("keys_recovered",
             static_cast<std::uint64_t>(summary.keysRecovered));
    w.member("fleet_success_rate", summary.fleetSuccessRate);
    w.member("total_attack_cycles", summary.totalAttackCycles);
    // NaN (no key recovered) serialises as an explicit null.
    w.member("cycles_per_recovered_key", summary.cyclesPerRecoveredKey);
    w.endObject();
    w.endObject();
}

KeyRecoveryCampaign::KeyRecoveryCampaign(ScenarioSpec spec)
    : spec_(std::move(spec))
{
    if (spec_.stage != ScenarioStage::Campaign)
        fatal("campaign '%s': spec stage is %s, not campaign",
              spec_.name.c_str(), scenarioStageName(spec_.stage));
}

CampaignResult
KeyRecoveryCampaign::run(std::size_t fleet, unsigned threads,
                         std::uint64_t masterSeed) const
{
    const auto t0 = std::chrono::steady_clock::now();
    CampaignResult out;
    out.experiment = runScenario(
        spec_, fleet ? fleet : spec_.fleetSize, threads, masterSeed);
    out.summary = summarizeCampaign(out.experiment);
    const auto t1 = std::chrono::steady_clock::now();
    out.summary.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    return out;
}

CampaignSuite::CampaignSuite(std::string bench)
    : bench_(std::move(bench))
{
}

void
CampaignSuite::contextValue(std::string key, double v)
{
    contextValues_.emplace_back(std::move(key), v);
}

void
CampaignSuite::add(CampaignResult result)
{
    results_.push_back(std::move(result));
}

std::string
CampaignSuite::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.key("context").beginObject();
    w.member("bench", bench_);
    w.member("base_seed", baseSeed());
    w.member("full_scale", fullScale());
    for (const auto &[key, v] : contextValues_)
        w.member(key, v);
    w.endObject();
    w.key("benchmarks").beginArray();
    for (const auto &r : results_)
        r.writeJson(w);
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
CampaignSuite::writeFile(const std::string &path) const
{
    return writeBenchDocument(bench_, toJson(), path);
}

} // namespace llcf
