/**
 * @file
 * Fleet-scale end-to-end key-recovery campaigns.
 *
 * A campaign drives the paper's full Step 1-3 pipeline — eviction-set
 * construction, PSD target-set scan, Prime+Probe monitoring and nonce
 * extraction — against a *fleet* of N victim services instead of the
 * single victim EndToEndAttack handles.  Victims differ the way
 * co-resident tenants do: each has its own ECDSA key, its own target
 * page offset inside its binary, its own noise environment and
 * (optionally) a request quota.
 *
 * Execution is sharded: trials run in fixed-width shards (one victim
 * is one trial), each shard fans across the worker pool into
 * per-trial slots, and slots fold into a streaming CampaignAggregate
 * strictly in trial order.  Shard width is thread-count-independent,
 * so the aggregate — and its BENCH_e2e.json serialisation — is
 * byte-identical for 1 or 8 worker threads (DESIGN.md §6, §9).  At
 * each shard boundary the runner can checkpoint the aggregate plus
 * the next trial index; a resumed campaign finishes with JSON
 * byte-identical to an uninterrupted one.
 *
 * Two trial bodies exist: the rebuild path (every trial constructs
 * its complete world from its positional stream — the original,
 * per-victim-expensive contract) and the fork path
 * (ScenarioSpec::forkVictims — each worker warms one world once,
 * snapshots it after Steps 0-2, and every victim restores the
 * snapshot and pays only for Step 3), which is what 10^5+-victim
 * fleets run on.
 */

#ifndef LLCF_CAMPAIGN_CAMPAIGN_HH
#define LLCF_CAMPAIGN_CAMPAIGN_HH

#include <string>
#include <vector>

#include "campaign/aggregate.hh"
#include "scenario/scenario.hh"

namespace llcf {

/**
 * Trials per campaign shard.  Fixed (never derived from the thread
 * count) so checkpoint boundaries — and therefore resumed runs — are
 * identical at any parallelism.
 */
constexpr std::size_t kCampaignShardTrials = 64;

/** Cross-victim aggregate of one campaign run. */
struct CampaignSummary
{
    std::size_t fleet = 0;         //!< victims attacked
    std::size_t keysRecovered = 0; //!< victims whose key was recovered

    /** keysRecovered / fleet (0 when the fleet is empty). */
    double fleetSuccessRate = 0.0;

    /**
     * Sum of per-victim attack time (simulated cycles), computed with
     * the exact compensated sum — never the lossy mean()*count round
     * trip — plus the one-time warmup cost in fork mode.  0 when the
     * campaign recorded no cycle metrics at all (e.g. an empty fleet).
     */
    double totalAttackCycles = 0.0;

    /**
     * Simulated attack cycles spent per recovered key — the
     * campaign's cost headline.  NaN when no key was recovered
     * (serialised as an explicit JSON null).
     */
    double cyclesPerRecoveredKey = 0.0;

    /** Host-side wall clock of the run; stdout only, never
     *  serialised (it would break byte-determinism). */
    double wallSeconds = 0.0;
};

/** One campaign's streaming aggregates plus the fleet summary. */
struct CampaignResult
{
    std::string name;              //!< scenario name
    std::size_t trials = 0;        //!< fleet size of the (full) run
    std::uint64_t masterSeed = 0;  //!< root of the per-victim streams
    unsigned threadsUsed = 0;      //!< workers (not serialised)
    CampaignAggregate aggregate;   //!< per-victim metrics/outcomes

    /**
     * True when the run stopped at a shard boundary before the fleet
     * completed (CampaignRunOptions::stopAfterShards).  An
     * interrupted result must not be serialised as a finished BENCH
     * entry; resume from the checkpoint instead.
     */
    bool interrupted = false;

    CampaignSummary summary;

    /**
     * One "benchmarks" array entry: the experiment members (name,
     * trials, seed, metrics, outcomes) plus a "campaign" object with
     * the fleet summary.  wallSeconds is deliberately omitted.
     */
    void writeJson(JsonWriter &w) const;
};

/**
 * Derive the fleet summary from a campaign's streaming aggregates
 * (the "key_recovered" outcome and "total_cycles" metric, plus the
 * fork path's one-time "warmup_cycles").  Handles aggregates where
 * metrics are entirely absent — e.g. a fleet whose every victim
 * failed blind calibration never records recovered_fraction — by
 * leaving the corresponding summary fields at their explicit
 * defaults.  Pure, so tests can feed synthetic aggregates.
 */
CampaignSummary summarizeCampaign(const CampaignAggregate &aggregate);

/** Same derivation from an exact experiment aggregate (bench_matrix
 *  runs campaign scenarios through the plain harness). */
CampaignSummary summarizeCampaign(const ExperimentResult &experiment);

/** How a campaign run executes (fleet, workers, checkpointing). */
struct CampaignRunOptions
{
    std::size_t fleet = 0;    //!< victims; 0 = spec.fleetSize
    unsigned threads = 0;     //!< workers (0 = LLCF_THREADS / hw)
    std::uint64_t masterSeed = 42;

    /** Checkpoint file updated at every shard boundary ("" = none). */
    std::string checkpointPath;

    /**
     * Resume from checkpointPath if it exists: completed shards are
     * loaded, execution continues at the recorded trial.  A
     * checkpoint whose identity (campaign, fleet, seed, shard width)
     * does not match this run is fatal, not silently ignored.
     */
    bool resume = false;

    /** Stop after this many shards have run (0 = run to completion);
     *  the scripted-interrupt hook for checkpoint tests and CI. */
    std::size_t stopAfterShards = 0;
};

/**
 * Runs one campaign scenario (a ScenarioSpec with
 * ScenarioStage::Campaign) on the sharded streaming runner.
 */
class KeyRecoveryCampaign
{
  public:
    /** @p spec must have stage Campaign (fatal otherwise). */
    explicit KeyRecoveryCampaign(ScenarioSpec spec);

    const ScenarioSpec &spec() const { return spec_; }

    /** Attack a fleet with full control over sharding/checkpoints. */
    CampaignResult run(const CampaignRunOptions &opts) const;

    /**
     * Attack a fleet (no checkpointing).
     *
     * @param fleet Victims to run; 0 = spec.fleetSize.
     * @param threads Harness workers (0 = LLCF_THREADS / hardware).
     * @param masterSeed Root of the per-victim RNG streams.
     */
    CampaignResult
    run(std::size_t fleet = 0, unsigned threads = 0,
        std::uint64_t masterSeed = 42) const
    {
        CampaignRunOptions opts;
        opts.fleet = fleet;
        opts.threads = threads;
        opts.masterSeed = masterSeed;
        return run(opts);
    }

  private:
    ScenarioSpec spec_;
};

/**
 * One victim's trial body on the rebuild path: construct the victim's
 * world from the trial stream, run the full EndToEndAttack, and
 * record the per-victim outcomes ("evsets_built", "target_found",
 * "target_correct", "key_recovered"), stage cycle metrics,
 * recovered-fraction / bit-error-rate samples, traces_collected and
 * the pc_* counters.  Dispatched by runScenarioTrial for
 * ScenarioStage::Campaign, so campaign scenarios also run under
 * bench_matrix --scenario=.
 */
void runCampaignVictimTrial(const ScenarioSpec &spec, TrialContext &ctx,
                            TrialRecorder &rec);

/**
 * An ordered collection of campaign results destined for one
 * BENCH_e2e.json document (mirrors ExperimentSuite).
 */
class CampaignSuite
{
  public:
    /** @param bench Bench identifier, e.g. "e2e". */
    explicit CampaignSuite(std::string bench);

    /** Numeric "context" entry (e.g. the CI gate's tolerance). */
    void contextValue(std::string key, double v);

    /** Append one result (rendered in insertion order). */
    void add(CampaignResult result);

    const std::vector<CampaignResult> &results() const
    {
        return results_;
    }

    /** Whole-suite JSON document (context + benchmarks array). */
    std::string toJson() const;

    /** Write toJson() to @p path or the default BENCH destination
     *  (see writeBenchDocument). Returns the path, or "" on I/O
     *  failure. */
    std::string writeFile(const std::string &path = "") const;

  private:
    std::string bench_;
    std::vector<std::pair<std::string, double>> contextValues_;
    std::vector<CampaignResult> results_;
};

} // namespace llcf

#endif // LLCF_CAMPAIGN_CAMPAIGN_HH
