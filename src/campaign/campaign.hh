/**
 * @file
 * Fleet-scale end-to-end key-recovery campaigns.
 *
 * A campaign drives the paper's full Step 1-3 pipeline — eviction-set
 * construction, PSD target-set scan, Prime+Probe monitoring and nonce
 * extraction — against a *fleet* of N victim services instead of the
 * single victim EndToEndAttack handles.  Victims differ the way
 * co-resident tenants do: each has its own ECDSA key, its own target
 * page offset inside its binary, its own noise environment and
 * (optionally) a request quota.
 *
 * Determinism contract: one victim is one harness trial, and each
 * trial rebuilds its complete world (Machine, AttackSession,
 * CandidatePool, VictimService, classifier) from the trial's
 * positional RNG stream.  The experiment runner shards trials across
 * worker threads and merges per-trial slots in trial order, so a
 * campaign's aggregate — and its BENCH_e2e.json serialisation — is
 * byte-identical for 1 or 8 worker threads (DESIGN.md §6).
 */

#ifndef LLCF_CAMPAIGN_CAMPAIGN_HH
#define LLCF_CAMPAIGN_CAMPAIGN_HH

#include <string>
#include <vector>

#include "scenario/scenario.hh"

namespace llcf {

/** Cross-victim aggregate of one campaign run. */
struct CampaignSummary
{
    std::size_t fleet = 0;         //!< victims attacked
    std::size_t keysRecovered = 0; //!< victims whose key was recovered

    /** keysRecovered / fleet (0 when the fleet is empty). */
    double fleetSuccessRate = 0.0;

    /** Sum of per-victim attack time (simulated cycles). */
    double totalAttackCycles = 0.0;

    /**
     * Simulated attack cycles spent per recovered key — the
     * campaign's cost headline.  NaN when no key was recovered
     * (serialised as an explicit JSON null).
     */
    double cyclesPerRecoveredKey = 0.0;

    /** Host-side wall clock of the run; stdout only, never
     *  serialised (it would break byte-determinism). */
    double wallSeconds = 0.0;
};

/** One campaign's per-victim aggregates plus the fleet summary. */
struct CampaignResult
{
    ExperimentResult experiment; //!< per-victim metrics/outcomes
    CampaignSummary summary;

    /**
     * One "benchmarks" array entry: the experiment members (name,
     * trials, seed, metrics, outcomes) plus a "campaign" object with
     * the fleet summary.  wallSeconds is deliberately omitted.
     */
    void writeJson(JsonWriter &w) const;
};

/**
 * Derive the fleet summary from a campaign experiment's aggregates
 * (the "key_recovered" outcome and "total_cycles" metric).  Pure, so
 * tests can feed synthetic experiments.
 */
CampaignSummary summarizeCampaign(const ExperimentResult &experiment);

/**
 * Runs one campaign scenario (a ScenarioSpec with
 * ScenarioStage::Campaign) on the experiment harness.
 */
class KeyRecoveryCampaign
{
  public:
    /** @p spec must have stage Campaign (fatal otherwise). */
    explicit KeyRecoveryCampaign(ScenarioSpec spec);

    const ScenarioSpec &spec() const { return spec_; }

    /**
     * Attack a fleet.
     *
     * @param fleet Victims to run; 0 = spec.fleetSize.
     * @param threads Harness workers (0 = LLCF_THREADS / hardware).
     * @param masterSeed Root of the per-victim RNG streams.
     */
    CampaignResult run(std::size_t fleet = 0, unsigned threads = 0,
                       std::uint64_t masterSeed = 42) const;

  private:
    ScenarioSpec spec_;
};

/**
 * One victim's trial body: rebuild the victim's world from the trial
 * stream, run the full EndToEndAttack, and record the per-victim
 * outcomes ("evsets_built", "target_found", "target_correct",
 * "key_recovered"), stage cycle metrics, recovered-fraction /
 * bit-error-rate samples, traces_collected and the pc_* counters.
 * Dispatched by runScenarioTrial for ScenarioStage::Campaign, so
 * campaign scenarios also run under bench_matrix --scenario=.
 */
void runCampaignVictimTrial(const ScenarioSpec &spec, TrialContext &ctx,
                            TrialRecorder &rec);

/**
 * An ordered collection of campaign results destined for one
 * BENCH_e2e.json document (mirrors ExperimentSuite).
 */
class CampaignSuite
{
  public:
    /** @param bench Bench identifier, e.g. "e2e". */
    explicit CampaignSuite(std::string bench);

    /** Numeric "context" entry (e.g. the CI gate's tolerance). */
    void contextValue(std::string key, double v);

    /** Append one result (rendered in insertion order). */
    void add(CampaignResult result);

    const std::vector<CampaignResult> &results() const
    {
        return results_;
    }

    /** Whole-suite JSON document (context + benchmarks array). */
    std::string toJson() const;

    /** Write toJson() to @p path or the default BENCH destination
     *  (see writeBenchDocument). Returns the path, or "" on I/O
     *  failure. */
    std::string writeFile(const std::string &path = "") const;

  private:
    std::string bench_;
    std::vector<std::pair<std::string, double>> contextValues_;
    std::vector<CampaignResult> results_;
};

} // namespace llcf

#endif // LLCF_CAMPAIGN_CAMPAIGN_HH
