/**
 * @file
 * Campaign checkpoint/resume.
 *
 * A checkpoint is the complete state of a half-finished campaign at a
 * shard boundary: the identity of the run (campaign name, fleet size,
 * master seed, shard width), the next trial to execute, and the
 * streaming aggregate of every completed trial.  All floating-point
 * state round-trips exactly (shortest-round-trip doubles), so a
 * resumed campaign continues bit-identically — its final JSON matches
 * an uninterrupted run byte for byte, at any thread count.
 *
 * Writes are atomic (temp file + rename): a campaign killed mid-write
 * leaves either the previous checkpoint or the new one, never a torn
 * file.
 */

#ifndef LLCF_CAMPAIGN_CHECKPOINT_HH
#define LLCF_CAMPAIGN_CHECKPOINT_HH

#include <string>

#include "campaign/aggregate.hh"

namespace llcf {

/** Serialisable state of a partially-run campaign. */
struct CampaignCheckpoint
{
    std::string campaign;          //!< scenario name (identity check)
    std::uint64_t fleet = 0;       //!< total victims of the run
    std::uint64_t masterSeed = 0;  //!< root of the per-victim streams
    std::uint64_t shardTrials = 0; //!< shard width the run uses
    std::uint64_t nextTrial = 0;   //!< first trial not yet aggregated
    CampaignAggregate aggregate;   //!< completed trials, in order
};

/** The checkpoint as a JSON document. */
std::string campaignCheckpointJson(const CampaignCheckpoint &cp);

/**
 * Write @p cp to @p path atomically (write to "<path>.tmp", rename
 * over @p path).  @return false and fills @p error on I/O failure.
 */
bool writeCampaignCheckpoint(const std::string &path,
                             const CampaignCheckpoint &cp,
                             std::string *error = nullptr);

/**
 * Load a checkpoint written by writeCampaignCheckpoint.
 * @return false and fills @p error when the file is unreadable or
 *         malformed.
 */
bool loadCampaignCheckpoint(const std::string &path,
                            CampaignCheckpoint &out,
                            std::string *error = nullptr);

} // namespace llcf

#endif // LLCF_CAMPAIGN_CHECKPOINT_HH
