/**
 * @file
 * Streaming cross-victim aggregate of a key-recovery campaign.
 *
 * The experiment harness keeps every trial's raw samples (SampleStats)
 * — exact, but O(fleet) memory, which caps campaigns at toy fleets.
 * CampaignAggregate is the fleet-scale replacement: per-metric
 * StreamingStats (compensated sum + Welford moments + deterministic
 * quantile sketch, O(1) memory each) and per-outcome SuccessRate
 * counters, folded strictly in trial order so the aggregate — and its
 * JSON — is a pure function of (spec, seed, fleet) at any worker
 * count.  The whole aggregate serialises to JSON and restores
 * bit-identically, which is what makes campaign checkpoints possible.
 */

#ifndef LLCF_CAMPAIGN_AGGREGATE_HH
#define LLCF_CAMPAIGN_AGGREGATE_HH

#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hh"
#include "harness/experiment.hh"
#include "harness/json.hh"

namespace llcf {

/**
 * Ordered streaming metric/outcome aggregates over campaign trials.
 * Key order is first-recorded order, exactly as the experiment
 * runner's trial-order merge produces it.
 */
class CampaignAggregate
{
  public:
    /** Trials folded in so far. */
    std::size_t trials() const { return trials_; }

    /** Fold one trial's recorded samples in (call in trial order). */
    void fold(const TrialRecorder &rec);

    /**
     * Fold another aggregate in: its trials count as recorded after
     * ours.  Deterministic given the fold order; campaign shards are
     * always merged ascending.
     */
    void merge(const CampaignAggregate &other);

    /** Aggregate for @p name, or nullptr if never recorded. */
    const StreamingStats *metric(std::string_view name) const;

    /** Success rate for @p name, or nullptr if never recorded. */
    const SuccessRate *outcome(std::string_view name) const;

    /** Metric aggregates in first-recorded order. */
    const std::vector<std::pair<std::string, StreamingStats>> &
    metrics() const
    {
        return metrics_;
    }

    /** Outcome aggregates in first-recorded order. */
    const std::vector<std::pair<std::string, SuccessRate>> &
    outcomes() const
    {
        return outcomes_;
    }

    /**
     * The benchmark-entry members ExperimentResult::writeJsonMembers
     * emits — name, trials, seed, metrics, outcomes — byte-identical
     * to the exact accumulator's output for head-phase fleets, so the
     * committed BENCH_e2e.json survives the streaming refactor.
     */
    void writeJsonMembers(JsonWriter &w, const std::string &name,
                          std::uint64_t masterSeed) const;

    /** Full value state as a JSON object (campaign checkpoints). */
    void writeState(JsonWriter &w) const;

    /**
     * Rebuild an aggregate from a writeState() object.
     * @return false (and fills @p error) on a malformed document.
     */
    static bool fromState(const JsonValue &v, CampaignAggregate &out,
                          std::string *error);

  private:
    StreamingStats &statsFor(const std::string &name);
    SuccessRate &rateFor(const std::string &name);

    std::size_t trials_ = 0;
    std::vector<std::pair<std::string, StreamingStats>> metrics_;
    std::vector<std::pair<std::string, SuccessRate>> outcomes_;
};

} // namespace llcf

#endif // LLCF_CAMPAIGN_AGGREGATE_HH
