#include "aggregate.hh"

#include <cmath>

namespace llcf {

StreamingStats &
CampaignAggregate::statsFor(const std::string &name)
{
    for (auto &[n, stats] : metrics_) {
        if (n == name)
            return stats;
    }
    metrics_.emplace_back(name, StreamingStats{});
    return metrics_.back().second;
}

SuccessRate &
CampaignAggregate::rateFor(const std::string &name)
{
    for (auto &[n, sr] : outcomes_) {
        if (n == name)
            return sr;
    }
    outcomes_.emplace_back(name, SuccessRate{});
    return outcomes_.back().second;
}

void
CampaignAggregate::fold(const TrialRecorder &rec)
{
    ++trials_;
    for (const auto &[name, v] : rec.metrics())
        statsFor(name).add(v);
    for (const auto &[name, ok] : rec.outcomes())
        rateFor(name).add(ok);
}

void
CampaignAggregate::merge(const CampaignAggregate &other)
{
    trials_ += other.trials_;
    for (const auto &[name, stats] : other.metrics_)
        statsFor(name).merge(stats);
    for (const auto &[name, sr] : other.outcomes_)
        rateFor(name).merge(sr);
}

const StreamingStats *
CampaignAggregate::metric(std::string_view name) const
{
    for (const auto &[n, stats] : metrics_) {
        if (n == name)
            return &stats;
    }
    return nullptr;
}

const SuccessRate *
CampaignAggregate::outcome(std::string_view name) const
{
    for (const auto &[n, sr] : outcomes_) {
        if (n == name)
            return &sr;
    }
    return nullptr;
}

void
CampaignAggregate::writeJsonMembers(JsonWriter &w,
                                    const std::string &name,
                                    std::uint64_t masterSeed) const
{
    w.member("name", name);
    w.member("trials", static_cast<std::uint64_t>(trials_));
    w.member("seed", masterSeed);
    w.key("metrics").beginObject();
    for (const auto &[n, stats] : metrics_) {
        w.key(n);
        writeStatsObject(w, stats);
    }
    w.endObject();
    w.key("outcomes").beginObject();
    for (const auto &[n, sr] : outcomes_) {
        w.key(n).beginObject();
        w.member("trials", static_cast<std::uint64_t>(sr.trials()));
        w.member("successes",
                 static_cast<std::uint64_t>(sr.successes()));
        w.member("rate", sr.rate());
        w.endObject();
    }
    w.endObject();
}

void
CampaignAggregate::writeState(JsonWriter &w) const
{
    w.beginObject();
    w.member("trials", static_cast<std::uint64_t>(trials_));
    w.key("metrics").beginArray();
    for (const auto &[n, stats] : metrics_) {
        const StreamingStatsState s = stats.state();
        w.beginObject();
        w.member("name", n);
        w.member("count", s.count);
        w.member("sum", s.sum);
        w.member("sum_comp", s.sumComp);
        w.member("mean", s.mean);
        w.member("m2", s.m2);
        w.member("min", s.min);
        w.member("max", s.max);
        w.key("head").beginArray();
        for (double v : s.head)
            w.value(v);
        w.endArray();
        w.key("levels").beginArray();
        for (const auto &level : s.levels) {
            w.beginArray();
            for (double v : level)
                w.value(v);
            w.endArray();
        }
        w.endArray();
        w.key("parity").beginArray();
        for (std::uint8_t p : s.parity)
            w.value(static_cast<std::uint64_t>(p));
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.key("outcomes").beginArray();
    for (const auto &[n, sr] : outcomes_) {
        w.beginObject();
        w.member("name", n);
        w.member("trials", static_cast<std::uint64_t>(sr.trials()));
        w.member("successes",
                 static_cast<std::uint64_t>(sr.successes()));
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

namespace {

/** Read a required numeric member; false + message otherwise. */
bool
numberField(const JsonValue &obj, const char *key, double &out,
            std::string *error)
{
    const JsonValue *v = obj.find(key);
    if (!v || !v->isNumber()) {
        if (error)
            *error = std::string("missing numeric field '") + key + "'";
        return false;
    }
    out = v->asNumber();
    return true;
}

} // namespace

bool
CampaignAggregate::fromState(const JsonValue &v, CampaignAggregate &out,
                             std::string *error)
{
    out = CampaignAggregate{};
    if (!v.isObject()) {
        if (error)
            *error = "aggregate state is not an object";
        return false;
    }
    double trials = 0.0;
    if (!numberField(v, "trials", trials, error))
        return false;
    out.trials_ = static_cast<std::size_t>(trials);

    const JsonValue *metrics = v.find("metrics");
    if (!metrics || !metrics->isArray()) {
        if (error)
            *error = "aggregate state has no metrics array";
        return false;
    }
    for (const JsonValue &m : metrics->items()) {
        const JsonValue *name = m.find("name");
        if (!name) {
            if (error)
                *error = "metric state has no name";
            return false;
        }
        StreamingStatsState s;
        double count = 0.0;
        if (!numberField(m, "count", count, error) ||
            !numberField(m, "sum", s.sum, error) ||
            !numberField(m, "sum_comp", s.sumComp, error) ||
            !numberField(m, "mean", s.mean, error) ||
            !numberField(m, "m2", s.m2, error) ||
            !numberField(m, "min", s.min, error) ||
            !numberField(m, "max", s.max, error))
            return false;
        s.count = static_cast<std::uint64_t>(count);
        const JsonValue *head = m.find("head");
        const JsonValue *levels = m.find("levels");
        const JsonValue *parity = m.find("parity");
        if (!head || !head->isArray() || !levels || !levels->isArray() ||
            !parity || !parity->isArray()) {
            if (error)
                *error = "metric state is missing sketch arrays";
            return false;
        }
        for (const JsonValue &h : head->items())
            s.head.push_back(h.asNumber());
        for (const JsonValue &level : levels->items()) {
            s.levels.emplace_back();
            for (const JsonValue &item : level.items())
                s.levels.back().push_back(item.asNumber());
        }
        for (const JsonValue &p : parity->items())
            s.parity.push_back(
                static_cast<std::uint8_t>(p.asNumber()));
        out.metrics_.emplace_back(name->asString(),
                                  StreamingStats::fromState(s));
    }

    const JsonValue *outcomes = v.find("outcomes");
    if (!outcomes || !outcomes->isArray()) {
        if (error)
            *error = "aggregate state has no outcomes array";
        return false;
    }
    for (const JsonValue &o : outcomes->items()) {
        const JsonValue *name = o.find("name");
        double trialCount = 0.0;
        double successes = 0.0;
        if (!name || !numberField(o, "trials", trialCount, error) ||
            !numberField(o, "successes", successes, error)) {
            if (error && error->empty())
                *error = "outcome state is malformed";
            return false;
        }
        out.outcomes_.emplace_back(
            name->asString(),
            SuccessRate(static_cast<std::size_t>(trialCount),
                        static_cast<std::size_t>(successes)));
    }
    return true;
}

} // namespace llcf
