#include "prober.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace llcf {
namespace {

/** Majority value of @p votes; agreement = winners / votes. */
unsigned
majority(const std::vector<unsigned> &votes, double *agreement)
{
    unsigned best = 0;
    std::size_t best_count = 0;
    for (unsigned v : votes) {
        std::size_t count = 0;
        for (unsigned w : votes) {
            if (w == v)
                ++count;
        }
        // Strict > keeps the first-seen value on ties: deterministic.
        if (count > best_count) {
            best = v;
            best_count = count;
        }
    }
    *agreement = votes.empty() ? 0.0
                               : static_cast<double>(best_count) /
                                     static_cast<double>(votes.size());
    return best;
}

} // namespace

TopologyProber::TopologyProber(AttackSession &session,
                               const CandidatePool &pool,
                               const CalibrationConfig &cfg)
    : session_(session), pool_(pool), cfg_(cfg)
{
    if (cfg_.lineIndex == cfg_.crossLineIndex)
        fatal("calibration needs two distinct probe line indices");
    pageOfBase_.reserve(pool_.pages());
    for (std::size_t p = 0; p < pool_.pages(); ++p)
        pageOfBase_.emplace(pool_.at(p, 0), p);
}

std::vector<Addr>
TopologyProber::minimalSetFor(Addr ta, unsigned line_index,
                              Cycles deadline)
{
    for (unsigned attempt = 0; attempt < cfg_.attemptsPerTarget;
         ++attempt) {
        if (session_.expired(deadline))
            break;
        std::vector<Addr> cands = pool_.candidatesAt(line_index);
        std::erase(cands, ta);
        session_.rng().shuffle(cands);
        auto red = blindReduceToMinimal(session_, ta, std::move(cands),
                                        deadline, TestTarget::Llc);
        if (red.success && red.evset.size() <= cfg_.maxWays)
            return std::move(red.evset);
    }
    return {};
}

bool
TopologyProber::congruent(Addr ta, const std::vector<Addr> &min_set,
                          Addr cand)
{
    // Substitution probe: the minimal set with its last member
    // swapped for the candidate evicts the target iff the candidate
    // is congruent too.  Best-of-three vote: requiring two
    // *consecutive* positives would bias toward false negatives under
    // tenant noise, and the U estimator is sensitive to exactly that.
    std::vector<Addr> probe = min_set;
    probe.back() = cand;
    const bool a =
        session_.testEvictionLlcParallel(ta, probe, probe.size());
    const bool b =
        session_.testEvictionLlcParallel(ta, probe, probe.size());
    if (a == b)
        return a;
    return session_.testEvictionLlcParallel(ta, probe, probe.size());
}

void
TopologyProber::membershipScan(TargetProbe &probe, Cycles deadline,
                               CalibratedTopology &out)
{
    FlatSet<Addr> member_base;
    for (Addr a : probe.minSet)
        member_base.insert(a & ~static_cast<Addr>(kPageBytes - 1));
    const std::size_t window =
        std::min<std::size_t>(cfg_.samplePages, pool_.pages());
    for (std::size_t p = 0; p < window; ++p) {
        if (session_.expired(deadline))
            return;
        if (p == probe.taPage)
            continue;
        const Addr cand = pool_.at(p, cfg_.lineIndex);
        if (member_base.count(
                cand & ~static_cast<Addr>(kPageBytes - 1))) {
            // A minimal-set member inside the window is a verified
            // congruent sample.  It cannot re-run the substitution
            // vote (swapping it in duplicates a member), but it must
            // stay in the estimator: members are 100% congruent, so
            // dropping them from both counts would deflate the hit
            // rate and inflate U.
            ++out.membershipTests;
            ++out.membershipHits;
            continue;
        }
        ++out.membershipTests;
        if (congruent(probe.ta, probe.minSet, cand)) {
            ++out.membershipHits;
            probe.congruentPages.push_back(p);
        }
    }
}

unsigned
TopologyProber::measureSfWays(TargetProbe &probe, Cycles deadline,
                              CalibratedTopology &out)
{
    auto sf_evicts = [&](const std::vector<Addr> &set) {
        return session_.testEvictionSfParallel(probe.ta, set,
                                               set.size()) &&
               session_.testEvictionSfParallel(probe.ta, set,
                                               set.size());
    };

    std::vector<Addr> current = probe.minSet;
    if (sf_evicts(current))
        return static_cast<unsigned>(current.size()); // W_SF == W_LLC

    // Extend with congruent pages: the scan hits first, then keep
    // scanning the pool past the sample window.
    FlatSet<Addr> used;
    used.insert(pool_.at(probe.taPage, 0));
    for (Addr a : current)
        used.insert(a & ~static_cast<Addr>(kPageBytes - 1));

    auto extend_with = [&](std::size_t page, bool record) -> int {
        const Addr base = pool_.at(page, 0);
        if (!used.insert(base))
            return 0;
        const Addr cand = pool_.at(page, cfg_.lineIndex);
        // Continuation-scan tests (record == true) are fresh
        // congruence samples; pool them into the U estimator.  The
        // scan-hit replays are already counted.
        if (record)
            ++out.membershipTests;
        if (!congruent(probe.ta, probe.minSet, cand))
            return 0;
        if (record)
            ++out.membershipHits;
        current.push_back(cand);
        if (record)
            probe.congruentPages.push_back(page);
        if (current.size() > cfg_.maxWays)
            return -1; // runaway: SF test never fired
        if (sf_evicts(current))
            return 1;
        return 0;
    };

    // Scan hits are substitution-confirmed already; consume them
    // first (by index: the pool continuation below records new hits
    // into the same vector).
    const std::size_t known_hits = probe.congruentPages.size();
    for (std::size_t i = 0; i < known_hits; ++i) {
        if (session_.expired(deadline))
            return 0;
        const int r = extend_with(probe.congruentPages[i], false);
        if (r != 0)
            return r > 0 ? static_cast<unsigned>(current.size()) : 0;
    }
    // Continue past the membership-scan window (its pages were all
    // tested above or during the scan; re-testing would double-count
    // correlated samples into the U estimator).
    for (std::size_t p =
             std::min<std::size_t>(cfg_.samplePages, pool_.pages());
         p < pool_.pages(); ++p) {
        if (session_.expired(deadline))
            return 0;
        const int r = extend_with(p, true);
        if (r != 0)
            return r > 0 ? static_cast<unsigned>(current.size()) : 0;
    }
    return 0;
}

void
TopologyProber::survivalProbe(TargetProbe &probe, Cycles deadline,
                              CalibratedTopology &out)
{
    const Addr ta2 = pool_.at(probe.taPage, cfg_.crossLineIndex);
    const std::vector<Addr> min_set2 =
        minimalSetFor(ta2, cfg_.crossLineIndex, deadline);
    if (min_set2.empty())
        return; // no survival data; snapGeometry falls back

    FlatSet<Addr> exclude;
    exclude.insert(pool_.at(probe.taPage, 0));
    for (Addr a : min_set2)
        exclude.insert(a & ~static_cast<Addr>(kPageBytes - 1));

    // Every page here is congruent with the target page at
    // cfg_.lineIndex: the set-index bits above the page offset carry
    // over to any offset, so cross-offset survival measures only
    // whether the slice hash re-rolled onto the same slice (~1/S).
    std::vector<std::size_t> pages = probe.congruentPages;
    for (Addr a : probe.minSet) {
        const auto *e =
            pageOfBase_.find(a & ~static_cast<Addr>(kPageBytes - 1));
        if (e)
            pages.push_back(e->second);
    }
    for (std::size_t p : pages) {
        if (session_.expired(deadline))
            return;
        if (p == probe.taPage)
            continue;
        if (exclude.count(pool_.at(p, 0))) {
            // A min_set2 member among our L0-congruent pages is a
            // verified survivor (congruent at both offsets).  It
            // cannot be substitution-tested against its own set, but
            // skipping it would deflate the survival rate — these
            // pages are survivors with certainty.
            ++out.survivalTests;
            ++out.survivalHits;
            continue;
        }
        ++out.survivalTests;
        if (congruent(ta2, min_set2, pool_.at(p, cfg_.crossLineIndex)))
            ++out.survivalHits;
    }
}

void
TopologyProber::snapGeometry(CalibratedTopology &out)
{
    // Raw estimators, censored when a count came back empty: zero
    // hits in T tests only bounds the value below by ~T.  The
    // observed hit rate is (1/U) * recall, so the measured recall of
    // the congruence vote divides back out (clamped: a recall
    // estimate below one-half says the vote itself is broken, and
    // scaling by it would just amplify its noise).
    double recall = 1.0;
    if (out.recallTests > 0) {
        recall = std::max(0.5,
                          static_cast<double>(out.recallPasses) /
                              static_cast<double>(out.recallTests));
    }
    double u_raw = 1.0;
    if (out.membershipTests > 0) {
        u_raw = out.membershipHits > 0
                    ? recall *
                          static_cast<double>(out.membershipTests) /
                          static_cast<double>(out.membershipHits)
                    : static_cast<double>(out.membershipTests + 1);
    }
    double s_raw = 1.0;
    bool s_known = false;
    if (out.survivalTests > 0) {
        s_known = true;
        // Survival hits are suppressed by the same false negatives.
        s_raw = out.survivalHits > 0
                    ? recall *
                          static_cast<double>(out.survivalTests) /
                          static_cast<double>(out.survivalHits)
                    : static_cast<double>(out.survivalTests + 1);
        s_raw = std::max(1.0, s_raw);
    }
    out.uncertaintyRaw = u_raw;
    out.slicesRaw = s_known ? s_raw : 0.0;

    // Joint integer snap: pick (uncontrolled bits u, slices s) whose
    // implied U = 2^u * s and slice count best match both raw
    // estimators in log space.  First minimum wins: deterministic.
    const double log_u = std::log(std::max(1.0, u_raw));
    const double log_s = std::log(std::max(1.0, s_raw));
    unsigned best_u = 0, best_s = 1;
    double best_cost = 0.0;
    bool first = true;
    for (unsigned u = 0; u <= 12; ++u) {
        for (unsigned s = 1; s <= 64; ++s) {
            const double log_total =
                std::log(static_cast<double>(1u << u) *
                         static_cast<double>(s));
            const double eu = log_total - log_u;
            const double es =
                std::log(static_cast<double>(s)) - log_s;
            const double cost = eu * eu + es * es;
            if (first || cost < best_cost) {
                first = false;
                best_cost = cost;
                best_u = u;
                best_s = s;
            }
        }
    }
    out.view.uncontrolledIndexBits = best_u;
    out.view.slices = best_s;
}

CalibratedTopology
TopologyProber::calibrate()
{
    Machine &m = session_.machine();
    const Cycles t0 = m.now();
    const std::uint64_t tests0 = session_.testCount();
    const Cycles deadline = t0 + msToCycles(cfg_.budgetMs);

    CalibratedTopology out;
    auto finish = [&]() -> CalibratedTopology & {
        out.cycles = m.now() - t0;
        out.testEvictions = session_.testCount() - tests0;
        return out;
    };

    // Stage 1: minimal LLC sets on independent targets.
    std::vector<TargetProbe> probes;
    std::vector<unsigned> w_llc_votes;
    for (unsigned t = 0; t < cfg_.targets; ++t) {
        if (session_.expired(deadline))
            break;
        TargetProbe probe;
        probe.taPage = session_.rng().nextBelow(pool_.pages());
        probe.ta = pool_.at(probe.taPage, cfg_.lineIndex);
        probe.minSet =
            minimalSetFor(probe.ta, cfg_.lineIndex, deadline);
        if (probe.minSet.empty())
            continue;
        w_llc_votes.push_back(
            static_cast<unsigned>(probe.minSet.size()));
        probes.push_back(std::move(probe));
    }
    if (probes.empty())
        return finish(); // invalid: nothing measurable in budget
    const unsigned w_llc = majority(w_llc_votes, &out.wLlcAgreement);

    // Stage 3 first (its hits feed the SF extension): membership scan
    // on every target whose minimal size matches the vote.
    for (TargetProbe &probe : probes) {
        if (probe.minSet.size() == w_llc)
            membershipScan(probe, deadline, out);
    }

    // Stage 2: W_SF by extension until the SF TestEviction fires.
    std::vector<unsigned> w_sf_votes;
    for (TargetProbe &probe : probes) {
        if (probe.minSet.size() != w_llc)
            continue;
        probe.wSf = measureSfWays(probe, deadline, out);
        if (probe.wSf)
            w_sf_votes.push_back(probe.wSf);
    }
    if (w_sf_votes.empty())
        return finish(); // invalid: SF ways unmeasurable
    const unsigned w_sf = majority(w_sf_votes, &out.wSfAgreement);

    // Recall self-measurement: fresh votes on pages already known
    // congruent.  Conditioning on the original pass does not bias
    // this — noise is independent across votes given congruence.
    for (TargetProbe &probe : probes) {
        if (probe.minSet.size() != w_llc || probe.wSf != w_sf)
            continue;
        const std::size_t n =
            std::min<std::size_t>(probe.congruentPages.size(), 8);
        for (std::size_t i = 0; i < n; ++i) {
            const Addr cand =
                pool_.at(probe.congruentPages[i], cfg_.lineIndex);
            for (int r = 0; r < 2; ++r) {
                if (session_.expired(deadline))
                    break;
                ++out.recallTests;
                if (congruent(probe.ta, probe.minSet, cand))
                    ++out.recallPasses;
            }
        }
        break; // one well-measured target suffices
    }

    // Stage 4: slice survival on the first well-measured target (one
    // extra reduction; further targets add cost, little information).
    for (TargetProbe &probe : probes) {
        if (probe.minSet.size() == w_llc && probe.wSf == w_sf) {
            survivalProbe(probe, deadline, out);
            break;
        }
    }

    out.view.wLlc = w_llc;
    out.view.wSf = w_sf;
    out.view.fromOracle = false;
    snapGeometry(out);
    out.hashModel =
        SliceHashParams::opaque(out.view.slices, /*salt=*/0);
    out.confidence =
        out.wLlcAgreement * out.wSfAgreement *
        std::min(1.0, static_cast<double>(out.membershipHits) / 4.0) *
        std::min(1.0, static_cast<double>(out.survivalTests) / 6.0);
    // A deadline-starved run can measure the way counts yet collect
    // no class-structure evidence at all; adopting its U=1/slices=1
    // fallback would silently cripple the attack, so such a run is
    // a failed calibration, not a low-confidence one.
    out.valid =
        w_llc > 0 && w_sf >= w_llc && out.membershipTests > 0;
    return finish();
}

CalibrationReport
compareToOracle(const CalibratedTopology &calib,
                const MachineConfig &cfg)
{
    CalibrationReport rep;
    auto field = [&rep](const char *name, double measured,
                        double expected) {
        CalibrationFieldReport f;
        f.field = name;
        f.measured = measured;
        f.expected = expected;
        f.match = measured == expected;
        if (f.match)
            ++rep.matches;
        rep.fields.push_back(f);
    };
    const TopologyView &v = calib.view;
    field("w_llc", v.wLlc, cfg.llc.ways);
    field("w_sf", v.wSf, cfg.sf.ways);
    field("slices", v.slices, cfg.sf.slices);
    field("uncontrolled_index_bits", v.uncontrolledIndexBits,
          cfg.sf.uncontrolledIndexBits());
    field("uncertainty", v.uncertainty(), cfg.sf.uncertainty());
    field("sets_per_slice", v.setsPerSlice(), cfg.sf.sets);
    rep.allMatch = calib.valid && rep.matches == rep.fields.size();
    return rep;
}

} // namespace llcf
