/**
 * @file
 * Step 0: blind topology calibration.
 *
 * Every other stage of the pipeline assumes the attacker knows the
 * shared-cache geometry (W_LLC, W_SF, slice count, slice-hash shape).
 * On a real public-cloud host it does not — the paper's attack is
 * credible precisely because eviction sets can be built on unknown
 * hardware.  The TopologyProber recovers the whole TopologyView from
 * timing observations alone, using only AttackSession primitives:
 *
 *  1. **W_LLC** — blindReduceToMinimal() shrinks a candidate pool to
 *     a minimal LLC eviction set without knowing the way count; the
 *     minimal size *is* the associativity.  Measured on several
 *     independent targets; the majority wins and the agreement
 *     fraction becomes the confidence.
 *  2. **W_SF** — congruent addresses (found by substitution tests)
 *     are appended to a minimal LLC set one at a time until the SF
 *     TestEviction fires; the first firing size is W_SF.
 *  3. **Uncertainty U** — a fixed window of pool pages is membership-
 *     tested against each target; congruence is Bernoulli(1/U), so
 *     U ~ tests/hits.
 *  4. **Slice count** — pages congruent with the target at one page
 *     offset are re-tested at a second offset.  The set-index bits
 *     above the page offset are offset-invariant, but the opaque
 *     slice hash re-rolls: the survival rate of congruence across
 *     offsets is ~1/slices.  A small integer grid then snaps (slices,
 *     uncontrolled index bits) to the pair most consistent with both
 *     raw estimators.
 *
 * The result is a CalibratedTopology the session adopts in place of
 * oracle geometry, plus a fitted SliceHashParams record (the opaque
 * family member with the estimated slice count; the salt is
 * unobservable by design, and any salt is observation-equivalent up
 * to slice relabeling).  compareToOracle() produces the per-field
 * match/mismatch accounting benches and tests gate on — it is the
 * only function here that may read MachineConfig, and it is
 * experimenter-side reporting, never attack input.
 *
 * Determinism: the prober draws randomness exclusively from the
 * session RNG and advances only the session's machine clock, so a
 * calibration trial obeys the harness byte-determinism contract
 * (DESIGN.md §8).
 */

#ifndef LLCF_CALIB_PROBER_HH
#define LLCF_CALIB_PROBER_HH

#include <vector>

#include "common/flat_set.hh"
#include "evset/algorithms.hh"
#include "evset/candidate.hh"
#include "evset/session.hh"

namespace llcf {

/** Knobs of one Step-0 calibration run. */
struct CalibrationConfig
{
    /** Page-line index the primary probes run at. */
    unsigned lineIndex = 5;

    /** Second line index for the cross-offset slice survival probe. */
    unsigned crossLineIndex = 37;

    /** Independent calibration targets (majority vote over W). */
    unsigned targets = 2;

    /** Blind reductions attempted per target before giving up. */
    unsigned attemptsPerTarget = 3;

    /** Pool pages membership-scanned per target (the U estimator's
     *  sample window). */
    unsigned samplePages = 128;

    /** Sanity cap on any measured associativity. */
    unsigned maxWays = 32;

    /** Virtual-time budget for the whole calibration. */
    double budgetMs = 400.0;
};

/**
 * What Step 0 recovered: the adoptable attacker view, the fitted
 * slice-hash family record, the raw (pre-snap) estimators, and the
 * cost accounting campaigns charge against recovered keys.
 */
struct CalibratedTopology
{
    /** False when the core measurements (W_LLC / W_SF) failed inside
     *  the budget; the view must not be adopted then. */
    bool valid = false;

    /** The adoptable view (fromOracle == false). */
    TopologyView view;

    /** Fitted family record: opaque kind, measured slice count,
     *  salt 0 (unobservable; equivalent up to slice relabeling). */
    SliceHashParams hashModel;

    double uncertaintyRaw = 0.0; //!< tests/hits before integer snap
    double slicesRaw = 0.0;      //!< 1/survival-rate before snap

    /** Product of the per-stage confidences in [0, 1]: W agreement
     *  fractions and the evidence mass behind the U / slice
     *  estimators. */
    double confidence = 0.0;

    double wLlcAgreement = 0.0; //!< targets agreeing with the vote
    double wSfAgreement = 0.0;

    unsigned membershipTests = 0; //!< U-estimator sample size
    unsigned membershipHits = 0;
    unsigned survivalTests = 0;   //!< cross-offset congruence samples
    unsigned survivalHits = 0;

    /** Recall self-measurement: fresh votes on known-congruent pages
     *  estimate the congruence test's own false-negative rate, which
     *  debiases the U estimator under tenant noise. */
    unsigned recallTests = 0;
    unsigned recallPasses = 0;

    Cycles cycles = 0;              //!< virtual time Step 0 consumed
    std::uint64_t testEvictions = 0; //!< TestEviction executions
};

/** One calibrated field vs the oracle (experimenter-side report). */
struct CalibrationFieldReport
{
    const char *field = "";  //!< e.g. "w_llc"
    double measured = 0.0;
    double expected = 0.0;
    bool match = false;
};

/** Per-field match/mismatch accounting of one calibration. */
struct CalibrationReport
{
    std::vector<CalibrationFieldReport> fields;
    unsigned matches = 0; //!< fields whose measured == expected
    bool allMatch = false;
};

/**
 * Compare a calibration against the true machine configuration.
 * Experimenter-side accounting (the one sanctioned oracle read in
 * this module); attack code never consumes the result.
 */
CalibrationReport compareToOracle(const CalibratedTopology &calib,
                                  const MachineConfig &cfg);

/**
 * Runs Step 0 against a (typically blind) attack session.  The pool
 * provides the attacker pages; all probing randomness comes from the
 * session RNG.
 */
class TopologyProber
{
  public:
    TopologyProber(AttackSession &session, const CandidatePool &pool,
                   const CalibrationConfig &cfg = {});

    /** Execute the calibration; see the file comment for the plan. */
    CalibratedTopology calibrate();

    const CalibrationConfig &config() const { return cfg_; }

  private:
    /** State accumulated for one calibration target. */
    struct TargetProbe
    {
        std::size_t taPage = 0;  //!< pool page of the target
        Addr ta = 0;             //!< target at cfg_.lineIndex
        std::vector<Addr> minSet;          //!< minimal LLC set
        std::vector<std::size_t> congruentPages; //!< scan hits
        unsigned wSf = 0;        //!< measured SF ways (0 = failed)
    };

    /** Minimal LLC eviction set for @p ta (retries inside deadline). */
    std::vector<Addr> minimalSetFor(Addr ta, unsigned line_index,
                                    Cycles deadline);

    /** Substitution congruence test of @p cand against a minimal set
     *  for @p ta (best-of-three vote, balancing false negatives and
     *  false positives under noise). */
    bool congruent(Addr ta, const std::vector<Addr> &min_set, Addr cand);

    /** Stage 3: membership-scan the sample window for @p probe. */
    void membershipScan(TargetProbe &probe, Cycles deadline,
                        CalibratedTopology &out);

    /** Stage 2: measure W_SF by extension until the SF test fires.
     *  Its continuation scan past the sample window is itself a
     *  congruence-sampling walk, so its tests pool into @p out's
     *  membership counts (variance reduction for the U estimator). */
    unsigned measureSfWays(TargetProbe &probe, Cycles deadline,
                           CalibratedTopology &out);

    /** Stage 4: cross-offset survival counting for @p probe. */
    void survivalProbe(TargetProbe &probe, Cycles deadline,
                       CalibratedTopology &out);

    /** Snap the raw estimators to integer (slices, index bits). */
    static void snapGeometry(CalibratedTopology &out);

    AttackSession &session_;
    const CandidatePool &pool_;
    CalibrationConfig cfg_;

    /** Page-frame base -> pool page index, for mapping eviction-set
     *  members back to their pages. */
    FlatMap<Addr, std::size_t> pageOfBase_;
};

} // namespace llcf

#endif // LLCF_CALIB_PROBER_HH
