/**
 * @file
 * The end-to-end cross-tenant attack (paper Section 7.3): build
 * eviction sets at the target page offset (Step 1), identify the
 * target SF set with the PSD scanner (Step 2), then monitor it across
 * repeated victim signings and extract nonce bits (Step 3).
 */

#ifndef LLCF_ATTACK_E2E_HH
#define LLCF_ATTACK_E2E_HH

#include "attack/extractor.hh"
#include "attack/scanner.hh"

namespace llcf {

/** End-to-end attack parameters. */
struct E2EParams
{
    PruneAlgo algo = PruneAlgo::BinS;
    bool useFilter = true;
    unsigned tracesPerVictim = 10; //!< signings monitored (paper: 10)
    ScannerParams scanner{};
};

/** End-to-end attack outcome. */
struct E2EResult
{
    bool evsetsBuilt = false;
    bool targetFound = false;   //!< the scanner returned a set
    bool targetCorrect = false; //!< ... and it is the true target set

    /**
     * Signings actually monitored in Step 3.  May fall short of
     * E2EParams::tracesPerVictim when the victim stops producing
     * executions (e.g. its request quota runs out); the result is
     * then partial, never invalid.
     */
    unsigned tracesCollected = 0;

    Cycles buildTime = 0;
    Cycles scanTime = 0;
    Cycles extractTime = 0;

    Cycles
    totalTime() const
    {
        return buildTime + scanTime + extractTime;
    }

    /** Per-trace recovered fraction of nonce bits. */
    SampleStats recoveredFraction;
    /** Per-trace bit error rate among recovered bits. */
    SampleStats bitErrorRate;

    /** One monitored trace's scores, tagged with its key epoch so
        rotation campaigns can re-group per epoch (DESIGN.md §11). */
    struct TraceRecord
    {
        unsigned keyEpoch = 0;
        double recoveredFraction = 0.0;
        bool hasBitErrorRate = false;
        double bitErrorRate = 0.0;
    };

    /** Per-trace records in collection order. */
    std::vector<TraceRecord> traceRecords;

    /** AES family: key-byte upper nibbles scored (0 or 4). */
    unsigned aesNibblesTotal = 0;
    /** AES family: ... of which match the true key. */
    unsigned aesNibblesCorrect = 0;
};

/**
 * Orchestrates the full attack against one victim.
 *
 * The classifier and extractor are trained offline (on hosts the
 * attacker controls) and passed in ready to use, as in the paper.
 */
class EndToEndAttack
{
  public:
    EndToEndAttack(AttackSession &session, Victim &victim,
                   const TraceClassifier &classifier,
                   const NonceExtractor &extractor,
                   const E2EParams &params = {});

    /**
     * Run Steps 1-3.  @p pool provides the attacker's candidate
     * pages.  The victim is triggered by the attack itself (the
     * attacker can send requests to the victim service).
     */
    E2EResult run(const CandidatePool &pool);

    /**
     * Run Step 3 only, against an eviction set already identified by a
     * previous scan.  This is the forked-victim path of fleet
     * campaigns: when every victim in the fleet maps its target at the
     * same line index and the machine world is restored from the
     * post-scan snapshot, Steps 1-2 are valid fleet-wide and each
     * additional key costs only the monitoring loop.  The returned
     * result has zero build/scan time and re-derives targetCorrect
     * against *this* victim's target line.
     */
    E2EResult runFromScan(const BuiltEvictionSet &evset);

    /**
     * Requests Step 2 schedules to keep @p victim signing across the
     * scan window, sized from the scanner timeout and the victim's
     * expected request duration.  Exposed so quota sizing (tests,
     * campaign specs) shares the attack's own arithmetic.
     */
    static unsigned scanRequestCount(const Victim &victim,
                                     const ScannerParams &scanner);

  private:
    /** The Step-3 monitoring/extraction loop shared by both entry
     *  points; accumulates traces into @p res. */
    void collectTraces(const BuiltEvictionSet &evset, E2EResult &res);

    /** AES family: per-window line-touch prediction vs ground truth. */
    static ExtractionScore scoreAesTrace(
        const std::vector<Cycles> &detections,
        const Victim::Execution &exec);

    AttackSession &session_;
    Victim &victim_;
    const TraceClassifier &classifier_;
    const NonceExtractor &extractor_;
    E2EParams params_;
};

} // namespace llcf

#endif // LLCF_ATTACK_E2E_HH
