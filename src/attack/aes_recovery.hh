/**
 * @file
 * AES key-nibble recovery from line-granular Prime+Probe traces.
 *
 * The monitored line is line L of T-table T.  Round 1 indexes T with
 * plaintext[j] XOR key[j] for byte positions j in {T, T+4, T+8,
 * T+12}, and 16 table entries share a line, so the line touched by
 * position j is high(p[j]) XOR high(k[j]).  An encryption window
 * with *no* detected access therefore rules out, for each of the
 * four positions, the one candidate nibble v = high(p[j]) XOR L that
 * would have put that position's lookup on the monitored line
 * (Osvik/Shamir/Tromer elimination).  Wrong candidates accumulate
 * eliminations from genuine no-access windows; the true nibble only
 * from monitor misses — argmin recovers it, ties broken to the
 * lowest value so recovery is deterministic.
 */

#ifndef LLCF_ATTACK_AES_RECOVERY_HH
#define LLCF_ATTACK_AES_RECOVERY_HH

#include <array>
#include <cstdint>
#include <vector>

#include "victim/victim.hh"

namespace llcf {

/**
 * Violation-counting recovery of the four key-byte upper nibbles
 * observable through one monitored T-table line.  Feed it every
 * monitored trace of one victim; read the guesses at the end.
 */
class AesNibbleRecovery
{
  public:
    /** @p target_line_index selects table and line (page layout). */
    explicit AesNibbleRecovery(unsigned target_line_index);

    /**
     * Fold one monitored trace into the counters: @p detections are
     * absolute probe-detection times, @p exec supplies the window
     * boundaries and the attacker-known plaintexts.
     */
    void addTrace(const std::vector<Cycles> &detections,
                  const Victim::Execution &exec);

    /** One recovered key-byte upper nibble. */
    struct NibbleGuess
    {
        unsigned byteIndex = 0;     //!< key byte position (0-15)
        std::uint8_t nibble = 0;    //!< recovered upper nibble
        std::uint64_t violations = 0; //!< eliminations of the winner
    };

    /** Best guess per observable byte position (4 entries). */
    std::vector<NibbleGuess> recover() const;

    /** Encryption windows folded in so far. */
    std::uint64_t windowsScored() const { return windows_; }

  private:
    unsigned table_ = 0;
    unsigned line_ = 0;
    std::array<std::array<std::uint64_t, 16>, 4> violations_{};
    std::uint64_t windows_ = 0;
};

} // namespace llcf

#endif // LLCF_ATTACK_AES_RECOVERY_HH
