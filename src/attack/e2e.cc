#include "e2e.hh"

#include "attack/aes_recovery.hh"
#include "common/log.hh"
#include "victim/aes_victim.hh"

namespace llcf {

EndToEndAttack::EndToEndAttack(AttackSession &session, Victim &victim,
                               const TraceClassifier &classifier,
                               const NonceExtractor &extractor,
                               const E2EParams &params)
    : session_(session),
      victim_(victim),
      classifier_(classifier),
      extractor_(extractor),
      params_(params)
{
}

E2EResult
EndToEndAttack::run(const CandidatePool &pool)
{
    Machine &m = session_.machine();
    E2EResult res;

    // ---- Step 1: eviction sets for all SF sets at the target page
    // offset (the attacker knows the library layout, Section 7.1).
    Cycles t0 = m.now();
    EvictionSetBuilder builder(session_, params_.algo,
                               params_.useFilter);
    BulkOutcome built = builder.buildAtLineIndex(
        pool, victim_.targetLineIndex());
    res.buildTime = m.now() - t0;
    if (built.evsets.empty())
        return res;
    res.evsetsBuilt = true;

    // ---- Step 2: identify the target SF set while triggering the
    // victim.  Keep the victim serving requests across the scan.
    t0 = m.now();
    victim_.serveRequests(m.now(),
                          scanRequestCount(victim_, params_.scanner));

    TargetSetScanner scanner(session_, classifier_);
    ScanResult scan = scanner.scan(built.evsets);
    res.scanTime = m.now() - t0;
    m.clearStreams();
    if (!scan.found)
        return res;
    res.targetFound = true;
    res.targetCorrect =
        m.sharedSetOf(built.evsets[scan.evsetIndex].target) ==
        m.sharedSetOf(victim_.targetLinePa());

    // ---- Step 3: collect traces of fresh signings and extract the
    // nonce bits from each.
    t0 = m.now();
    collectTraces(built.evsets[scan.evsetIndex], res);
    res.extractTime = m.now() - t0;
    return res;
}

E2EResult
EndToEndAttack::runFromScan(const BuiltEvictionSet &evset)
{
    Machine &m = session_.machine();
    E2EResult res;
    res.evsetsBuilt = true;
    res.targetFound = true;
    res.targetCorrect = m.sharedSetOf(evset.target) ==
                        m.sharedSetOf(victim_.targetLinePa());

    const Cycles t0 = m.now();
    collectTraces(evset, res);
    res.extractTime = m.now() - t0;
    return res;
}

void
EndToEndAttack::collectTraces(const BuiltEvictionSet &evset,
                              E2EResult &res)
{
    Machine &m = session_.machine();
    // Monitoring extends slightly past the ladder so the closing
    // boundary fetch at ladderEnd is observable; the slack stays
    // below the minimum iteration duration, so no spurious boundary
    // pair can form beyond the ladder.
    const Cycles tail_slack = extractor_.params().minIteration / 2;
    const bool aes = victim_.family() == VictimFamily::AesTable;
    AesNibbleRecovery nibbles(victim_.targetLineIndex());
    for (unsigned i = 0; i < params_.tracesPerVictim; ++i) {
        auto execs = victim_.serveRequests(m.now() + 1000, 1);
        if (execs.empty()) {
            // The victim produced no execution (request quota spent,
            // service gone).  Return what was recovered so far as a
            // partial result instead of indexing an empty vector.
            warn("e2e: victim produced no execution for request "
                 "%u/%u; returning a partial result",
                 i + 1, params_.tracesPerVictim);
            break;
        }
        const auto &exec = execs[0];
        // The attacker monitors from request dispatch to response.
        auto monitor = PrimeProbeMonitor::make(MonitorKind::Parallel,
                                               session_, evset.sfSet);
        if (exec.ladderStart > m.now())
            m.idle(exec.ladderStart - m.now());
        auto detections = monitor->collectTrace(exec.ladderEnd +
                                                tail_slack);
        m.clearStreams();

        ExtractionScore sc;
        if (aes) {
            sc = scoreAesTrace(detections, exec);
            nibbles.addTrace(detections, exec);
        } else {
            auto bits = extractor_.extract(detections);
            sc = extractor_.score(bits, exec);
        }
        ++res.tracesCollected;
        res.recoveredFraction.add(sc.recoveredFraction());
        if (sc.recoveredBits > 0)
            res.bitErrorRate.add(sc.bitErrorRate());
        res.traceRecords.push_back({exec.keyEpoch,
                                    sc.recoveredFraction(),
                                    sc.recoveredBits > 0,
                                    sc.bitErrorRate()});
    }
    if (aes && res.tracesCollected > 0) {
        const auto &victim = static_cast<const AesTableVictim &>(victim_);
        const auto guesses = nibbles.recover();
        res.aesNibblesTotal = static_cast<unsigned>(guesses.size());
        for (const auto &g : guesses) {
            const std::uint8_t truth =
                victim.keyBytes()[g.byteIndex] >> 4;
            res.aesNibblesCorrect += g.nibble == truth;
        }
    }
}

ExtractionScore
EndToEndAttack::scoreAesTrace(const std::vector<Cycles> &detections,
                              const Victim::Execution &exec)
{
    // Line-granular leakage: the per-window prediction is simply
    // "was the monitored line touched", compared against the ground
    // truth bit of every window.
    ExtractionScore sc;
    sc.totalBits = exec.bits.size();
    std::size_t cursor = 0;
    for (std::size_t i = 0; i + 1 < exec.iterationStarts.size(); ++i) {
        const Cycles lo = exec.iterationStarts[i];
        const Cycles hi = exec.iterationStarts[i + 1];
        while (cursor < detections.size() && detections[cursor] < lo)
            ++cursor;
        const bool predicted =
            cursor < detections.size() && detections[cursor] < hi;
        ++sc.recoveredBits;
        sc.bitErrors += predicted != (exec.bits[i] != 0);
    }
    return sc;
}

unsigned
EndToEndAttack::scanRequestCount(const Victim &victim,
                                 const ScannerParams &scanner)
{
    const double scan_sec = cyclesToSec(scanner.timeout);
    if (victim.config().arrival.active()) {
        // Open loop: the arrival process, not the service time,
        // decides how many requests land in the scan window.
        const double expected =
            victim.config().arrival.ratePerSec * scan_sec;
        return std::max<unsigned>(
            4, static_cast<unsigned>(expected * 1.2) + 2);
    }
    return std::max<unsigned>(
        4, static_cast<unsigned>(
               scan_sec /
               cyclesToSec(victim.expectedRequestCycles(
                   victim.expectedIterations())) * 1.2) +
               2);
}

} // namespace llcf
