/**
 * @file
 * Nonce-bit extraction from a monitored access trace (paper Section
 * 7.3): a random-forest classifier marks which detected accesses are
 * ladder-iteration boundaries; boundary pairs 8k-12k cycles apart
 * delimit iterations; the bit of an iteration follows from whether an
 * extra access falls near its midpoint.
 */

#ifndef LLCF_ATTACK_EXTRACTOR_HH
#define LLCF_ATTACK_EXTRACTOR_HH

#include "ml/forest.hh"
#include "victim/victim.hh"

namespace llcf {

/** Extractor parameters. */
struct ExtractorParams
{
    Cycles iterationCycles = 9700; //!< expected iteration duration
    Cycles minIteration = 8000;    //!< boundary-pair filter (paper: 8k)
    Cycles maxIteration = 12000;   //!< boundary-pair filter (paper: 12k)
    /** Matching tolerance when scoring against ground truth. */
    Cycles groundTruthTolerance = 1500;
    /** Bit convention: midpoint access present => bit is 0 (the
     *  instrumented layout of Section 7.1). */
    bool midpointMeansZero = true;
};

/** One extracted iteration. */
struct ExtractedBit
{
    Cycles start = 0; //!< predicted iteration start
    Cycles end = 0;   //!< predicted iteration end
    int bit = 0;      //!< extracted bit value
};

/** Extraction quality against ground truth. */
struct ExtractionScore
{
    std::size_t totalBits = 0;     //!< ground-truth ladder iterations
    std::size_t recoveredBits = 0; //!< iterations with an extracted bit
    std::size_t bitErrors = 0;     //!< recovered bits that are wrong

    double
    recoveredFraction() const
    {
        return totalBits ? static_cast<double>(recoveredBits) /
               static_cast<double>(totalBits) : 0.0;
    }

    double
    bitErrorRate() const
    {
        return recoveredBits ? static_cast<double>(bitErrors) /
               static_cast<double>(recoveredBits) : 0.0;
    }
};

/**
 * Random-forest boundary classifier plus the bit-recovery rules.
 */
class NonceExtractor
{
  public:
    explicit NonceExtractor(const ExtractorParams &params = {});

    /** Per-access feature vector (gaps to neighbours, local density). */
    std::vector<double> accessFeatures(const std::vector<Cycles> &trace,
                                       std::size_t index) const;

    /**
     * Build a labelled boundary dataset from traces with ground
     * truth: an access is a boundary iff it matches an iteration
     * start within the tolerance.
     */
    Dataset buildTrainingSet(
        const std::vector<std::vector<Cycles>> &traces,
        const std::vector<const Victim::Execution *> &truths)
        const;

    /** Train the boundary forest. */
    void train(const Dataset &data);

    /** True once train() has been called. */
    bool trained() const { return trained_; }

    /** Extract bits from a detection-timestamp trace. */
    std::vector<ExtractedBit> extract(const std::vector<Cycles> &trace)
        const;

    /** Score extracted bits against a signing's ground truth. */
    ExtractionScore score(const std::vector<ExtractedBit> &bits,
                          const Victim::Execution &truth) const;

    const ExtractorParams &params() const { return params_; }

  private:
    /** Predicted boundary timestamps of a trace. */
    std::vector<Cycles> predictBoundaries(const std::vector<Cycles>
                                          &trace) const;

    ExtractorParams params_;
    RandomForest forest_;
    bool trained_ = false;
};

} // namespace llcf

#endif // LLCF_ATTACK_EXTRACTOR_HH
