/**
 * @file
 * Target-set identification in the frequency domain (paper Sections
 * 6.2 and 7.2, Table 6): collect a short Prime+Probe access trace per
 * candidate SF set, estimate its power spectral density with Welch's
 * method, and classify target vs non-target with an SVM trained on
 * labelled traces (polynomial kernel, like the paper's scikit-learn
 * model).
 */

#ifndef LLCF_ATTACK_SCANNER_HH
#define LLCF_ATTACK_SCANNER_HH

#include "attack/monitor.hh"
#include "evset/builder.hh"
#include "ml/svm.hh"
#include "signal/welch.hh"
#include "victim/victim.hh"

namespace llcf {

/** Scanner parameters (paper Section 7.2). */
struct ScannerParams
{
    Cycles traceDuration = usToCycles(500.0);
    unsigned minAccesses = 50;  //!< preliminary filter lower bound
    unsigned maxAccesses = 400; //!< preliminary filter upper bound
    Cycles binCycles = 1024;    //!< event-binning resolution
    WelchParams welch{};        //!< PSD estimation parameters
    Cycles timeout = secToCycles(60.0);
    /** Apply the nonce-extraction false-positive filter (used for
     *  WholeSys in the paper). */
    bool fpFilter = false;
    /**
     * Bandit-style budget allocation: instead of shuffled sweeps,
     * pick the next set to trace by UCB over per-set activity
     * rewards (deterministic: ties break to the lowest index and no
     * session RNG is drawn).  Pays off under offered load, where
     * most sets show some traffic and uniform sweeping wastes
     * monitoring budget on quiet sets.
     */
    bool adaptive = false;
    /** UCB exploration constant (adaptive mode only). */
    double ucbExplore = 1.2;
};

/**
 * SVM-backed classifier over PSD features of an access trace.
 */
class TraceClassifier
{
  public:
    explicit TraceClassifier(const ScannerParams &params = {});

    /** PSD feature vector of a detection-timestamp trace. */
    std::vector<double> features(const std::vector<Cycles> &rel_times)
        const;

    /** Fit the scaler and SVM on labelled feature rows. */
    void train(Dataset data);

    /** True iff the trace looks like the target set. */
    bool isTarget(const std::vector<double> &feature_row) const;

    /** Metrics on a labelled validation set. */
    BinaryMetrics validate(const Dataset &data) const;

    const ScannerParams &params() const { return params_; }

  private:
    ScannerParams params_;
    StandardScaler scaler_;
    KernelSvm svm_;
};

/**
 * Generates labelled training traces by monitoring target and
 * non-target sets of a controlled victim — the offline training the
 * paper performs on hosts it owns (Section 7.2).
 */
class ScannerTrainer
{
  public:
    ScannerTrainer(AttackSession &session, Victim &victim,
                   const CandidatePool &pool);

    /**
     * Collect @p per_class labelled traces of each class and return
     * the feature dataset (+1 = target set).
     */
    Dataset collect(const TraceClassifier &featurizer,
                    unsigned target_traces, unsigned nontarget_traces);

  private:
    AttackSession &session_;
    Victim &victim_;
    const CandidatePool &pool_;
};

/** Scan outcome (Table 6 metrics). */
struct ScanResult
{
    bool found = false;
    std::size_t evsetIndex = 0; //!< index into the scanned evsets
    Cycles elapsed = 0;
    unsigned setsScanned = 0;

    /** Sets scanned per second of virtual time. */
    double
    scanRate() const
    {
        const double sec = cyclesToSec(elapsed);
        return sec > 0.0 ? setsScanned / sec : 0.0;
    }
};

/**
 * The online scanner: sweeps candidate eviction sets while the victim
 * serves requests, classifying each trace until the target is found
 * or the timeout expires.
 */
class TargetSetScanner
{
  public:
    TargetSetScanner(AttackSession &session,
                     const TraceClassifier &classifier);

    /**
     * Scan @p evsets repeatedly until a positive classification or
     * timeout.  The caller must keep the victim executing (e.g. by
     * pre-scheduling requests across the scan window).
     */
    ScanResult scan(const std::vector<BuiltEvictionSet> &evsets);

  private:
    /** Cheap nonce-shaped sanity filter for WholeSys false positives. */
    bool plausibleNonceTrace(const std::vector<Cycles> &rel_times) const;

    /** UCB bandit sweep (ScannerParams::adaptive). */
    ScanResult scanAdaptive(const std::vector<BuiltEvictionSet> &evsets);

    AttackSession &session_;
    const TraceClassifier &classifier_;
};

} // namespace llcf

#endif // LLCF_ATTACK_SCANNER_HH
