#include "extractor.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace llcf {

NonceExtractor::NonceExtractor(const ExtractorParams &params)
    : params_(params),
      forest_(ForestParams{60, TreeParams{10, 3, 0}, 1.0, 11})
{
}

std::vector<double>
NonceExtractor::accessFeatures(const std::vector<Cycles> &trace,
                               std::size_t index) const
{
    const double iter = static_cast<double>(params_.iterationCycles);
    const double t = static_cast<double>(trace[index]);
    auto gap = [&](std::ptrdiff_t delta) {
        const std::ptrdiff_t j = static_cast<std::ptrdiff_t>(index) +
                                 delta;
        if (j < 0 || j >= static_cast<std::ptrdiff_t>(trace.size()))
            return 4.0; // out-of-range marker (in iteration units)
        return std::abs(static_cast<double>(trace[j]) - t) / iter;
    };
    // Local density: accesses within +-half an iteration.
    const double half = iter / 2.0;
    unsigned density = 0;
    for (std::size_t j = 0; j < trace.size(); ++j) {
        if (std::abs(static_cast<double>(trace[j]) - t) <= half)
            ++density;
    }
    return {gap(-2), gap(-1), gap(+1), gap(+2),
            static_cast<double>(density)};
}

Dataset
NonceExtractor::buildTrainingSet(
    const std::vector<std::vector<Cycles>> &traces,
    const std::vector<const Victim::Execution *> &truths) const
{
    Dataset data;
    for (std::size_t k = 0; k < traces.size(); ++k) {
        const auto &trace = traces[k];
        const auto &starts = truths[k]->iterationStarts;
        for (std::size_t i = 0; i < trace.size(); ++i) {
            // Access is a boundary iff it matches an iteration start.
            auto it = std::lower_bound(starts.begin(), starts.end(),
                                       trace[i]);
            Cycles best = ~0ULL;
            if (it != starts.end())
                best = std::min(best, *it - std::min(*it, trace[i]));
            if (it != starts.begin()) {
                const Cycles prev = *(it - 1);
                best = std::min(best, trace[i] - prev);
            }
            const int label =
                best <= params_.groundTruthTolerance ? +1 : -1;
            data.add(accessFeatures(trace, i), label);
        }
    }
    return data;
}

void
NonceExtractor::train(const Dataset &data)
{
    forest_.fit(data);
    trained_ = true;
}

std::vector<Cycles>
NonceExtractor::predictBoundaries(const std::vector<Cycles> &trace) const
{
    std::vector<Cycles> boundaries;
    if (trained_) {
        for (std::size_t i = 0; i < trace.size(); ++i) {
            if (forest_.predict(accessFeatures(trace, i)) > 0)
                boundaries.push_back(trace[i]);
        }
        return boundaries;
    }
    // Untrained fallback: greedy segmentation — the next boundary is
    // the first access at least three quarters of an iteration after
    // the previous one, which skips midpoint accesses.
    const Cycles min_gap = params_.iterationCycles * 3 / 4;
    for (Cycles t : trace) {
        if (boundaries.empty() || t >= boundaries.back() + min_gap)
            boundaries.push_back(t);
    }
    return boundaries;
}

std::vector<ExtractedBit>
NonceExtractor::extract(const std::vector<Cycles> &trace) const
{
    std::vector<ExtractedBit> out;
    if (trace.size() < 2)
        return out;
    std::vector<Cycles> sorted = trace;
    std::sort(sorted.begin(), sorted.end());
    const std::vector<Cycles> boundaries = predictBoundaries(sorted);

    for (std::size_t i = 0; i + 1 < boundaries.size(); ++i) {
        const Cycles b0 = boundaries[i];
        const Cycles b1 = boundaries[i + 1];
        const Cycles span = b1 - b0;
        // Keep only boundary pairs one iteration apart (paper: the
        // 8k-12k cycle duration window).
        if (span < params_.minIteration || span > params_.maxIteration)
            continue;
        // Is there an access near the midpoint of the iteration?
        const Cycles lo = b0 + span / 4;
        const Cycles hi = b0 + (3 * span) / 4;
        auto first = std::lower_bound(sorted.begin(), sorted.end(), lo);
        bool midpoint = first != sorted.end() && *first <= hi;
        ExtractedBit bit;
        bit.start = b0;
        bit.end = b1;
        if (params_.midpointMeansZero)
            bit.bit = midpoint ? 0 : 1;
        else
            bit.bit = midpoint ? 1 : 0;
        out.push_back(bit);
    }
    return out;
}

ExtractionScore
NonceExtractor::score(const std::vector<ExtractedBit> &bits,
                      const Victim::Execution &truth) const
{
    ExtractionScore s;
    s.totalBits = truth.bits.size();
    const auto &starts = truth.iterationStarts;
    std::vector<bool> matched(truth.bits.size(), false);
    for (const auto &b : bits) {
        // Match the extracted iteration to the nearest ground-truth
        // iteration by its start time.
        auto it = std::lower_bound(starts.begin(), starts.end(),
                                   b.start);
        std::size_t best_idx = starts.size();
        Cycles best = params_.groundTruthTolerance + 1;
        if (it != starts.end()) {
            const Cycles d = *it - std::min(*it, b.start);
            if (d < best) {
                best = d;
                best_idx = static_cast<std::size_t>(it -
                                                    starts.begin());
            }
        }
        if (it != starts.begin()) {
            const Cycles prev = *(it - 1);
            const Cycles d = b.start - prev;
            if (d < best) {
                best = d;
                best_idx = static_cast<std::size_t>(it - 1 -
                                                    starts.begin());
            }
        }
        if (best_idx >= truth.bits.size() || matched[best_idx])
            continue;
        matched[best_idx] = true;
        ++s.recoveredBits;
        if (truth.bits[best_idx] != b.bit)
            ++s.bitErrors;
    }
    return s;
}

} // namespace llcf
