/**
 * @file
 * Prime+Probe monitors over one SF set (paper Section 6.1).
 *
 *  - Parallel: the paper's Parallel Probing — prime by traversing the
 *    eviction set 12 times with overlapped stores, probe all W lines
 *    with one overlapped load burst.  No replacement-state
 *    preparation needed, so priming is fast.
 *  - PsFlush: Prime+Scope "flush" strategy — load, clflush and
 *    sequentially reload the eviction set so its first line is the
 *    eviction candidate (EVC); probe only the EVC.
 *  - PsAlt: Prime+Scope "alternating" strategy — two eviction sets
 *    primed alternately with dependent loads; probe the active set's
 *    EVC.
 *
 * Monitors keep prime/probe latency statistics (Table 5) and expose a
 * trace-collection loop producing detection timestamps (the input to
 * the PSD pipeline and the nonce extractor).
 */

#ifndef LLCF_ATTACK_MONITOR_HH
#define LLCF_ATTACK_MONITOR_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "evset/session.hh"

namespace llcf {

/** Monitoring strategies evaluated in the paper. */
enum class MonitorKind { Parallel, PsFlush, PsAlt };

/** Human-readable strategy name (paper nomenclature). */
const char *monitorKindName(MonitorKind kind);

/**
 * Base class: the prime/probe state machine and statistics.
 */
class PrimeProbeMonitor
{
  public:
    /** Outcome of one probe. */
    struct ProbeResult
    {
        bool detected = false;
        Cycles duration = 0;
    };

    virtual ~PrimeProbeMonitor() = default;

    virtual MonitorKind kind() const = 0;

    /** Prepare the monitored set; returns the prime duration. */
    virtual Cycles prime() = 0;

    /** One probe; records latency statistics. */
    virtual ProbeResult probe() = 0;

    /**
     * Monitor until @p deadline (absolute): prime once, then probe
     * continuously, re-priming after each detection.
     * @return detection timestamps (probe completion times).
     */
    std::vector<Cycles> collectTrace(Cycles deadline);

    /** Prime latencies (interrupt outliers > 20k cycles excluded). */
    const SampleStats &primeStats() const { return primeStats_; }

    /** Probe latencies (outliers excluded). */
    const SampleStats &probeStats() const { return probeStats_; }

    /**
     * Build a monitor.  @p evset must be a minimal SF eviction set;
     * @p alt_evset is required by PsAlt (a second eviction set for
     * the same SF set) and ignored otherwise.
     */
    static std::unique_ptr<PrimeProbeMonitor> make(
        MonitorKind kind, AttackSession &session,
        std::vector<Addr> evset, std::vector<Addr> alt_evset = {});

  protected:
    explicit PrimeProbeMonitor(AttackSession &session)
        : session_(session)
    {
    }

    /** Record a latency sample, dropping >20k-cycle outliers. */
    static void record(SampleStats &stats, Cycles value);

    AttackSession &session_;
    SampleStats primeStats_;
    SampleStats probeStats_;
};

/** The paper's Parallel Probing monitor. */
class ParallelMonitor : public PrimeProbeMonitor
{
  public:
    ParallelMonitor(AttackSession &session, std::vector<Addr> evset);

    MonitorKind kind() const override { return MonitorKind::Parallel; }
    Cycles prime() override;
    ProbeResult probe() override;

  private:
    std::vector<Addr> evset_;
    double threshold_ = 0.0; //!< calibrated probe-duration threshold
};

/** Prime+Scope with the flush-based prime pattern. */
class PsFlushMonitor : public PrimeProbeMonitor
{
  public:
    PsFlushMonitor(AttackSession &session, std::vector<Addr> evset);

    MonitorKind kind() const override { return MonitorKind::PsFlush; }
    Cycles prime() override;
    ProbeResult probe() override;

  private:
    std::vector<Addr> evset_;
};

/** Prime+Scope with the alternating two-set prime pattern. */
class PsAltMonitor : public PrimeProbeMonitor
{
  public:
    PsAltMonitor(AttackSession &session, std::vector<Addr> evset,
                 std::vector<Addr> alt_evset);

    MonitorKind kind() const override { return MonitorKind::PsAlt; }
    Cycles prime() override;
    ProbeResult probe() override;

  private:
    std::vector<Addr> sets_[2];
    unsigned active_ = 0;
};

} // namespace llcf

#endif // LLCF_ATTACK_MONITOR_HH
