#include "covert.hh"

#include <algorithm>

#include "common/log.hh"

namespace llcf {

std::vector<Addr>
groundTruthEvictionSet(const Machine &machine, const CandidatePool &pool,
                       Addr target, unsigned ways, unsigned skip)
{
    const unsigned target_set = machine.sharedSetOf(target);
    const unsigned line_index = pageLineIndex(target);
    std::vector<Addr> out;
    unsigned skipped = 0;
    for (std::size_t p = 0; p < pool.pages() && out.size() < ways; ++p) {
        const Addr a = pool.at(p, line_index);
        if (a == lineAlign(target))
            continue;
        if (machine.sharedSetOf(a) == target_set) {
            if (skipped < skip) {
                ++skipped;
                continue;
            }
            out.push_back(a);
        }
    }
    if (out.size() < ways)
        fatal("pool too small for a ground-truth eviction set "
              "(found %zu of %u)", out.size(), ways);
    return out;
}

double
matchDetections(const std::vector<Cycles> &sender_times,
                const std::vector<Cycles> &detections, Cycles epsilon)
{
    if (sender_times.empty())
        return 0.0;
    std::size_t hits = 0;
    std::size_t d = 0;
    for (Cycles t : sender_times) {
        while (d < detections.size() && detections[d] <= t)
            ++d;
        if (d < detections.size() && detections[d] <= t + epsilon)
            ++hits;
    }
    return static_cast<double>(hits) /
           static_cast<double>(sender_times.size());
}

CovertOutcome
runCovertExperiment(AttackSession &session, MonitorKind kind,
                    std::vector<Addr> evset, std::vector<Addr> alt_evset,
                    Addr sender_line, const CovertParams &params)
{
    Machine &m = session.machine();

    if (params.accesses == 0)
        fatal("covert experiment needs at least one sender access");

    // Schedule the sender's fixed-interval accesses, leaving room for
    // the receiver's initial prime.
    const Cycles start = m.now() + 100000;
    std::vector<Cycles> sender_times(params.accesses);
    for (unsigned i = 0; i < params.accesses; ++i) {
        sender_times[i] = start + static_cast<Cycles>(i) *
                          params.accessInterval;
    }
    const Cycles deadline = sender_times.back() + params.accessInterval;
    const auto stream = m.addStream(params.senderCore, sender_line,
                                    sender_times);

    auto monitor = PrimeProbeMonitor::make(kind, session,
                                           std::move(evset),
                                           std::move(alt_evset));
    const std::vector<Cycles> detections = monitor->collectTrace(deadline);
    m.removeStream(stream);

    CovertOutcome out;
    out.detectionRate = matchDetections(sender_times, detections,
                                        params.epsilon);
    out.primeLatency = monitor->primeStats();
    out.probeLatency = monitor->probeStats();
    return out;
}

} // namespace llcf
