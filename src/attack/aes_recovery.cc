#include "attack/aes_recovery.hh"

#include <algorithm>

namespace llcf {

AesNibbleRecovery::AesNibbleRecovery(unsigned target_line_index)
    : table_(target_line_index / 16), line_(target_line_index % 16)
{
}

void
AesNibbleRecovery::addTrace(const std::vector<Cycles> &detections,
                            const Victim::Execution &exec)
{
    if (exec.iterationStarts.size() < 2 ||
        exec.plaintexts.size() + 1 != exec.iterationStarts.size())
        return;
    std::size_t cursor = 0;
    const std::size_t windows = exec.plaintexts.size();
    for (std::size_t i = 0; i < windows; ++i) {
        const Cycles lo = exec.iterationStarts[i];
        const Cycles hi = exec.iterationStarts[i + 1];
        while (cursor < detections.size() && detections[cursor] < lo)
            ++cursor;
        const bool detected =
            cursor < detections.size() && detections[cursor] < hi;
        ++windows_;
        if (detected)
            continue;
        // No access: eliminate, for each observable byte position,
        // the nibble that would have mapped its round-1 lookup onto
        // the monitored line.
        for (unsigned s = 0; s < 4; ++s) {
            const unsigned j = table_ + 4 * s;
            const unsigned hi_pt = exec.plaintexts[i][j] >> 4;
            const unsigned v = hi_pt ^ line_;
            ++violations_[s][v];
        }
    }
}

std::vector<AesNibbleRecovery::NibbleGuess>
AesNibbleRecovery::recover() const
{
    std::vector<NibbleGuess> out;
    out.reserve(4);
    for (unsigned s = 0; s < 4; ++s) {
        NibbleGuess g;
        g.byteIndex = table_ + 4 * s;
        g.nibble = 0;
        g.violations = violations_[s][0];
        for (unsigned v = 1; v < 16; ++v) {
            // Strict <: ties keep the lowest nibble (deterministic).
            if (violations_[s][v] < g.violations) {
                g.nibble = static_cast<std::uint8_t>(v);
                g.violations = violations_[s][v];
            }
        }
        out.push_back(g);
    }
    return out;
}

} // namespace llcf
