#include "monitor.hh"

#include <algorithm>

#include "common/log.hh"

namespace llcf {

const char *
monitorKindName(MonitorKind kind)
{
    switch (kind) {
      case MonitorKind::Parallel:
        return "Parallel";
      case MonitorKind::PsFlush:
        return "PS-Flush";
      case MonitorKind::PsAlt:
        return "PS-Alt";
    }
    return "?";
}

void
PrimeProbeMonitor::record(SampleStats &stats, Cycles value)
{
    // The paper excludes outliers above 20,000 cycles (interrupts /
    // context switches).
    if (value <= 20000)
        stats.add(static_cast<double>(value));
}

std::vector<Cycles>
PrimeProbeMonitor::collectTrace(Cycles deadline)
{
    Machine &m = session_.machine();
    std::vector<Cycles> detections;
    prime();
    while (m.now() < deadline) {
        const ProbeResult r = probe();
        if (r.detected) {
            detections.push_back(m.now());
            prime();
        }
    }
    return detections;
}

std::unique_ptr<PrimeProbeMonitor>
PrimeProbeMonitor::make(MonitorKind kind, AttackSession &session,
                        std::vector<Addr> evset,
                        std::vector<Addr> alt_evset)
{
    switch (kind) {
      case MonitorKind::Parallel:
        return std::make_unique<ParallelMonitor>(session,
                                                 std::move(evset));
      case MonitorKind::PsFlush:
        return std::make_unique<PsFlushMonitor>(session,
                                                std::move(evset));
      case MonitorKind::PsAlt:
        if (alt_evset.empty())
            fatal("PS-Alt needs a second eviction set");
        return std::make_unique<PsAltMonitor>(session, std::move(evset),
                                              std::move(alt_evset));
    }
    panic("unknown monitor kind");
}

// ------------------------------------------------------ Parallel

ParallelMonitor::ParallelMonitor(AttackSession &session,
                                 std::vector<Addr> evset)
    : PrimeProbeMonitor(session), evset_(std::move(evset))
{
    Machine &m = session_.machine();
    const unsigned core = session_.config().mainCore;

    // Calibrate the all-hit probe duration, then set the detection
    // threshold above its spread but below a memory-level miss.
    const BatchSpec stores{BatchOp::Store, true, -1};
    const BatchSpec loads{BatchOp::Load, true, -1};
    m.accessBatch(core, evset_, stores);
    SampleStats baseline;
    for (int i = 0; i < 16; ++i) {
        m.accessBatch(core, evset_, stores);
        baseline.add(static_cast<double>(
            m.accessBatch(core, evset_, loads)));
    }
    threshold_ = std::max(baseline.median() + 120.0,
                          baseline.percentile(90.0) + 60.0);
}

Cycles
ParallelMonitor::prime()
{
    Machine &m = session_.machine();
    const unsigned core = session_.config().mainCore;
    // Traverse the eviction set 12 times with overlapped accesses;
    // no replacement-state preparation needed (Section 6.1).
    Cycles total = 0;
    for (int pass = 0; pass < 12; ++pass)
        total += m.accessBatch(core, evset_, {BatchOp::Store, true, -1});
    record(primeStats_, total);
    return total;
}

PrimeProbeMonitor::ProbeResult
ParallelMonitor::probe()
{
    Machine &m = session_.machine();
    const unsigned core = session_.config().mainCore;
    const Cycles d = m.accessBatch(core, evset_,
                                   {BatchOp::Load, true, -1});
    record(probeStats_, d);
    return {static_cast<double>(d) > threshold_, d};
}

// ------------------------------------------------------- PS-Flush

PsFlushMonitor::PsFlushMonitor(AttackSession &session,
                               std::vector<Addr> evset)
    : PrimeProbeMonitor(session), evset_(std::move(evset))
{
}

Cycles
PsFlushMonitor::prime()
{
    Machine &m = session_.machine();
    const unsigned core = session_.config().mainCore;
    // Load, flush, and sequentially reload so the first line ends up
    // as the set's eviction candidate.
    Cycles total = m.accessBatch(core, evset_, {BatchOp::Load});
    total += m.accessBatch(core, evset_, {BatchOp::Flush});
    total += m.accessBatch(core, evset_, {BatchOp::Load});
    record(primeStats_, total);
    return total;
}

PrimeProbeMonitor::ProbeResult
PsFlushMonitor::probe()
{
    Machine &m = session_.machine();
    const unsigned core = session_.config().mainCore;
    // Scope: check only whether the EVC is still in the private
    // caches; a hit leaves the set's state untouched.
    const Cycles d = m.probeLoad(core, evset_.front());
    record(probeStats_, d);
    const bool miss = static_cast<double>(d) >
                      session_.config().thresholds.privateMiss;
    return {miss, d};
}

// --------------------------------------------------------- PS-Alt

PsAltMonitor::PsAltMonitor(AttackSession &session,
                           std::vector<Addr> evset,
                           std::vector<Addr> alt_evset)
    : PrimeProbeMonitor(session)
{
    sets_[0] = std::move(evset);
    sets_[1] = std::move(alt_evset);
}

Cycles
PsAltMonitor::prime()
{
    Machine &m = session_.machine();
    const unsigned core = session_.config().mainCore;
    // Switch to the other eviction set and prime it with a dependent
    // pointer chase; its lines displace the previous set's entries,
    // leaving the first-chased line as the EVC.
    active_ ^= 1;
    const Cycles total = m.accessBatch(core, sets_[active_],
                                       {BatchOp::Load});
    record(primeStats_, total);
    return total;
}

PrimeProbeMonitor::ProbeResult
PsAltMonitor::probe()
{
    Machine &m = session_.machine();
    const unsigned core = session_.config().mainCore;
    const Cycles d = m.probeLoad(core, sets_[active_].front());
    record(probeStats_, d);
    const bool miss = static_cast<double>(d) >
                      session_.config().thresholds.privateMiss;
    return {miss, d};
}

} // namespace llcf
