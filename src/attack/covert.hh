/**
 * @file
 * Covert-channel evaluation of the monitoring strategies (paper
 * Section 6.1, Table 5 and Figure 6): a sender on another core
 * accesses an agreed SF set at a fixed interval; a receiver monitor
 * reports the fraction of sender accesses it detects within the
 * paper's error bound (epsilon = 500 cycles).
 */

#ifndef LLCF_ATTACK_COVERT_HH
#define LLCF_ATTACK_COVERT_HH

#include "attack/monitor.hh"
#include "evset/candidate.hh"

namespace llcf {

/** Covert-channel experiment parameters. */
struct CovertParams
{
    Cycles accessInterval = 10000; //!< sender period
    unsigned accesses = 2000;      //!< sender accesses per experiment
    Cycles epsilon = 500;          //!< detection error bound
    unsigned senderCore = 2;
};

/** Covert-channel experiment outcome. */
struct CovertOutcome
{
    double detectionRate = 0.0;
    SampleStats primeLatency;
    SampleStats probeLatency;
};

/**
 * Experimenter utility: pick @p ways pool addresses congruent with
 * @p target using ground truth, bypassing organic construction.
 * Used where the paper evaluates monitors in isolation (the eviction
 * set's existence is a precondition, not the subject).
 */
std::vector<Addr> groundTruthEvictionSet(const Machine &machine,
                                         const CandidatePool &pool,
                                         Addr target, unsigned ways,
                                         unsigned skip = 0);

/**
 * Run one covert-channel experiment.
 *
 * @param session Receiver context.
 * @param kind Monitoring strategy.
 * @param evset SF eviction set for the agreed set.
 * @param alt_evset Second set (PS-Alt only).
 * @param sender_line A line congruent with the agreed set, accessed
 *        by the sender core.
 */
CovertOutcome runCovertExperiment(AttackSession &session,
                                  MonitorKind kind,
                                  std::vector<Addr> evset,
                                  std::vector<Addr> alt_evset,
                                  Addr sender_line,
                                  const CovertParams &params);

/**
 * Fraction of @p sender_times with a detection in (t, t + epsilon].
 */
double matchDetections(const std::vector<Cycles> &sender_times,
                       const std::vector<Cycles> &detections,
                       Cycles epsilon);

} // namespace llcf

#endif // LLCF_ATTACK_COVERT_HH
