#include "scanner.hh"

#include <algorithm>
#include <cmath>

#include "attack/covert.hh"
#include "common/log.hh"

namespace llcf {

TraceClassifier::TraceClassifier(const ScannerParams &params)
    : params_(params),
      svm_(SvmParams{SvmKernel::Polynomial, 2.0, 3.0, 0.05, 1.0, 1e-3,
                     6, 20000, 7})
{
}

std::vector<double>
TraceClassifier::features(const std::vector<Cycles> &rel_times) const
{
    const std::vector<double> binned =
        binEvents(rel_times, params_.traceDuration, params_.binCycles);
    const double fs = kCpuGhz * 1e9 /
                      static_cast<double>(params_.binCycles);
    const PsdEstimate psd = welchPsd(binned, fs, params_.welch);

    std::vector<double> row;
    if (!psd.valid()) {
        // Degenerate PSD (trace too short for one Welch segment):
        // return an empty row — a flagged "no feature" marker — so no
        // fabricated all-zero spectrum ever reaches the SVM.
        return row;
    }
    // Log-power spectrum, normalised by total power so the SVM sees
    // spectral *shape* rather than trace intensity.
    const double total = std::max(psd.totalPower(), 1e-12);
    row.reserve(psd.power.size());
    for (double p : psd.power)
        row.push_back(std::log10(p / total + 1e-9));
    return row;
}

void
TraceClassifier::train(Dataset data)
{
    scaler_.fit(data);
    scaler_.transform(data);
    svm_.fit(data);
}

bool
TraceClassifier::isTarget(const std::vector<double> &feature_row) const
{
    // An empty row is the "no feature" marker from features(): never
    // the target (scoring it would read past the scaler's dims).
    if (feature_row.empty())
        return false;
    std::vector<double> scaled = feature_row;
    scaler_.transform(scaled);
    return svm_.predict(scaled) > 0;
}

BinaryMetrics
TraceClassifier::validate(const Dataset &data) const
{
    BinaryMetrics m;
    for (std::size_t i = 0; i < data.size(); ++i)
        m.add(data.y[i], isTarget(data.x[i]) ? 1 : -1);
    return m;
}

// ------------------------------------------------------------ trainer

ScannerTrainer::ScannerTrainer(AttackSession &session, Victim &victim,
                               const CandidatePool &pool)
    : session_(session), victim_(victim), pool_(pool)
{
}

Dataset
ScannerTrainer::collect(const TraceClassifier &featurizer,
                        unsigned target_traces, unsigned nontarget_traces)
{
    Machine &m = session_.machine();
    const auto &params = featurizer.params();
    // Set sizing follows the attacker's (possibly calibrated) W_SF;
    // the membership labels below stay ground truth — training is
    // offline on hosts the experimenter controls.
    const unsigned w_sf = session_.topology().wSf;
    Dataset data;

    // Ground-truth eviction sets: training is offline on hosts the
    // experimenter controls (Section 7.2's mmap-based validation).
    const std::vector<Addr> target_set = groundTruthEvictionSet(
        m, pool_, victim_.targetLinePa(), w_sf);

    auto collect_one = [&](const std::vector<Addr> &evset, int label) {
        // Keep the victim running across the trace window.
        auto execs = victim_.serveRequests(m.now(), 1);
        if (execs.empty()) {
            // Training victim exhausted (request quota): skip the
            // sample rather than index an empty execution list.
            warn("scanner trainer: victim produced no execution; "
                 "skipping a label-%+d trace", label);
            m.clearStreams();
            return;
        }
        // Start the trace somewhere inside the ladder for positive
        // examples; random phase otherwise.
        Cycles begin = m.now();
        if (label > 0) {
            const Cycles span = execs[0].ladderEnd -
                                execs[0].ladderStart;
            begin = execs[0].ladderStart +
                    session_.rng().nextBelow(std::max<Cycles>(
                        1, span > params.traceDuration ?
                           span - params.traceDuration : 1));
        }
        if (begin > m.now())
            m.idle(begin - m.now());
        auto monitor = PrimeProbeMonitor::make(MonitorKind::Parallel,
                                               session_, evset);
        const Cycles t0 = m.now();
        auto detections = monitor->collectTrace(t0 +
                                                params.traceDuration);
        for (auto &d : detections)
            d -= t0;
        auto row = featurizer.features(detections);
        if (!row.empty()) // skip flagged degenerate-PSD traces
            data.add(std::move(row), label);
        // Let the victim finish so streams drain.
        if (execs[0].requestEnd > m.now())
            m.idle(execs[0].requestEnd - m.now());
        m.clearStreams();
    };

    for (unsigned i = 0; i < target_traces; ++i)
        collect_one(target_set, +1);

    for (unsigned i = 0; i < nontarget_traces; ++i) {
        // Random non-target set: a random pool address (excluding
        // those congruent with the real target), or a decoy line's
        // set for the hard negatives.
        std::vector<Addr> evset;
        if (i % 4 == 0 && !victim_.decoyPas().empty()) {
            const Addr decoy = victim_.decoyPas()[
                i / 4 % victim_.decoyPas().size()];
            evset = groundTruthEvictionSet(m, pool_, decoy, w_sf);
        } else {
            for (;;) {
                const Addr ta = pool_.at(
                    session_.rng().nextBelow(pool_.pages()),
                    session_.rng().nextBelow(kLinesPerPage));
                if (m.sharedSetOf(ta) ==
                    m.sharedSetOf(victim_.targetLinePa()))
                    continue;
                evset = groundTruthEvictionSet(m, pool_, ta, w_sf, 1);
                break;
            }
        }
        collect_one(evset, -1);
    }
    return data;
}

// ------------------------------------------------------------ scanner

TargetSetScanner::TargetSetScanner(AttackSession &session,
                                   const TraceClassifier &classifier)
    : session_(session), classifier_(classifier)
{
}

bool
TargetSetScanner::plausibleNonceTrace(
    const std::vector<Cycles> &rel_times) const
{
    // A genuine nonce trace alternates ~half-iteration and
    // ~full-iteration gaps; compute the fraction of half-gaps and
    // reject heavily biased traces (Section 7.2's FP filter).
    if (rel_times.size() < 16)
        return false;
    unsigned half = 0, full = 0;
    for (std::size_t i = 1; i < rel_times.size(); ++i) {
        const double gap = static_cast<double>(rel_times[i] -
                                               rel_times[i - 1]);
        if (gap > 3500 && gap < 6500)
            ++half;
        else if (gap > 8000 && gap < 12000)
            ++full;
    }
    const unsigned informative = half + full;
    if (informative < rel_times.size() / 4)
        return false;
    const double frac = static_cast<double>(half) /
                        static_cast<double>(informative);
    return frac > 0.08 && frac < 0.92;
}

ScanResult
TargetSetScanner::scan(const std::vector<BuiltEvictionSet> &evsets)
{
    if (classifier_.params().adaptive)
        return scanAdaptive(evsets);
    Machine &m = session_.machine();
    const auto &params = classifier_.params();
    ScanResult res;
    const Cycles start = m.now();
    const Cycles deadline = start + params.timeout;

    std::vector<std::size_t> order(evsets.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;

    while (m.now() < deadline && !res.found) {
        session_.rng().shuffle(order);
        for (std::size_t idx : order) {
            if (m.now() >= deadline)
                break;
            auto monitor = PrimeProbeMonitor::make(
                MonitorKind::Parallel, session_, evsets[idx].sfSet);
            const Cycles t0 = m.now();
            auto detections =
                monitor->collectTrace(t0 + params.traceDuration);
            ++res.setsScanned;
            if (detections.size() < params.minAccesses ||
                detections.size() > params.maxAccesses)
                continue;
            for (auto &d : detections)
                d -= t0;
            if (!classifier_.isTarget(classifier_.features(detections)))
                continue;
            if (params.fpFilter && !plausibleNonceTrace(detections))
                continue;
            res.found = true;
            res.evsetIndex = idx;
            break;
        }
    }
    res.elapsed = m.now() - start;
    return res;
}

ScanResult
TargetSetScanner::scanAdaptive(
    const std::vector<BuiltEvictionSet> &evsets)
{
    Machine &m = session_.machine();
    const auto &params = classifier_.params();
    ScanResult res;
    const Cycles start = m.now();
    const Cycles deadline = start + params.timeout;
    if (evsets.empty()) {
        res.elapsed = m.now() - start;
        return res;
    }

    // UCB1 over candidate sets.  Reward: 1.0 for a classifier
    // positive, 0.5 for in-band activity, 0 otherwise — sets showing
    // plausible traffic get revisited first, quiet sets decay to the
    // exploration floor.  Everything is deterministic: unscanned
    // sets go first in index order and the argmax breaks ties on the
    // lowest index, so identical trials replay identically at any
    // thread count.
    std::vector<double> reward(evsets.size(), 0.0);
    std::vector<std::uint64_t> pulls(evsets.size(), 0);
    std::uint64_t total = 0;

    while (m.now() < deadline && !res.found) {
        std::size_t pick = evsets.size();
        for (std::size_t i = 0; i < evsets.size(); ++i) {
            if (pulls[i] == 0) {
                pick = i;
                break;
            }
        }
        if (pick == evsets.size()) {
            double best = -1.0;
            const double logn =
                std::log(static_cast<double>(std::max<std::uint64_t>(
                    total, 2)));
            for (std::size_t i = 0; i < evsets.size(); ++i) {
                const double n = static_cast<double>(pulls[i]);
                const double ucb = reward[i] / n +
                                   params.ucbExplore *
                                       std::sqrt(logn / n);
                if (ucb > best) { // strict: ties keep the lowest index
                    best = ucb;
                    pick = i;
                }
            }
        }

        auto monitor = PrimeProbeMonitor::make(
            MonitorKind::Parallel, session_, evsets[pick].sfSet);
        const Cycles t0 = m.now();
        auto detections =
            monitor->collectTrace(t0 + params.traceDuration);
        ++res.setsScanned;
        ++pulls[pick];
        ++total;
        if (detections.size() < params.minAccesses ||
            detections.size() > params.maxAccesses)
            continue;
        reward[pick] += 0.5;
        for (auto &d : detections)
            d -= t0;
        if (!classifier_.isTarget(classifier_.features(detections)))
            continue;
        if (params.fpFilter && !plausibleNonceTrace(detections))
            continue;
        reward[pick] += 0.5;
        res.found = true;
        res.evsetIndex = pick;
    }
    res.elapsed = m.now() - start;
    return res;
}

} // namespace llcf
