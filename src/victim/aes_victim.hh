/**
 * @file
 * The table-lookup AES victim: a second leakage family.
 *
 * The service encrypts attacker-known plaintexts with T-table
 * AES-128.  All four 1 KB T-tables live on one 4 KB page, 16 lines
 * each; the monitored cache line is line `targetLineIndex % 16` of
 * table `targetLineIndex / 16`.  Every encryption window either
 * touches that line or it does not — cache-line-granular leakage:
 * a window with *no* access rules out every key-byte upper nibble
 * that would have mapped one of the window's first-round lookups
 * onto the line (Osvik/Shamir/Tromer), which is how the attack side
 * (attack/aes_recovery.*) recovers upper key-byte nibbles.
 *
 * Ground truth follows the shared Execution contract: one
 * "iteration" is one encryption window, `bits[i]` records whether
 * the monitored line was touched in window i, and `targetAccesses`
 * holds the touch times.
 */

#ifndef LLCF_VICTIM_AES_VICTIM_HH
#define LLCF_VICTIM_AES_VICTIM_HH

#include <array>
#include <optional>

#include "crypto/aes.hh"
#include "victim/victim.hh"

namespace llcf {

/**
 * AES-128 T-table encryption service (VictimFamily::AesTable).
 */
class AesTableVictim final : public Victim
{
  public:
    AesTableVictim(Machine &machine, const VictimConfig &cfg);

    VictimFamily family() const override;

    /** One request runs cfg.aesEncryptions encryption windows. */
    std::size_t expectedIterations() const override;

    /**
     * The monitored line receives 36/16 = 2.25 of each window's
     * traced lookups on average.
     */
    double expectedAccessFrequencyHz() const override;

    /** The current AES key (experimenter-side ground truth). */
    const Aes128::Block &keyBytes() const { return aes_->key(); }

    /** T-table number of the monitored line (0-3). */
    unsigned monitoredTable() const { return cfg_.targetLineIndex / 16; }

    /** Line index of the monitored line inside its table (0-15). */
    unsigned monitoredLine() const { return cfg_.targetLineIndex % 16; }

  protected:
    Execution generateExecution(Cycles request_start) override;
    void rotateKey() override;
    Cycles closedLoopGap() override;

  private:
    Rng rng_;    //!< window jitter + plaintext stream
    Rng keyRng_; //!< key material stream (rotation epochs)
    std::optional<Aes128> aes_;
    std::array<Addr, kLinesPerPage> linePas_{};
};

} // namespace llcf

#endif // LLCF_VICTIM_AES_VICTIM_HH
