/**
 * @file
 * Victim services: the family interface and the Montgomery-ladder
 * ECDSA signer (paper Section 7.1).
 *
 * A Victim is a containerized service whose secret-dependent cache
 * line accesses are replayed into the simulated machine as timed
 * streams, together with the experimenter-side ground truth
 * (Execution) the attack is scored against.  Families:
 *
 *  - EcdsaLadderVictim signs requests with the vulnerable sect571r1
 *    Montgomery ladder.  The target line is fetched at every
 *    iteration boundary (the `if (bit)` line acts as the attacker's
 *    clock) and once more at the iteration midpoint when the branch
 *    direction matching the monitored line is taken (with the
 *    instrumented layout of Section 7.1, the bit value 0).  Decoy
 *    lines model MAdd/MDouble body fetches — the false-positive
 *    sources the paper's Section 7.2 scanner must reject.
 *
 *  - AesTableVictim (aes_victim.hh) encrypts with table-lookup
 *    AES-128; its T-table line accesses are key-byte-dependent at
 *    cache-line granularity, so the attacker recovers upper key-byte
 *    nibbles instead of nonce bits.
 *
 * Both families honour the same request-loop contract: closed-loop
 * think-time gaps by default, open-loop arrivals when
 * VictimConfig::arrival is active, and mid-campaign key rotation
 * every VictimConfig::rotateKeys requests.
 */

#ifndef LLCF_VICTIM_VICTIM_HH
#define LLCF_VICTIM_VICTIM_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/ecdsa.hh"
#include "sim/machine.hh"
#include "traffic/traffic.hh"

namespace llcf {

/** Registered victim families (makeVictim dispatches on this). */
enum class VictimFamily {
    EcdsaLadder, //!< Montgomery-ladder ECDSA signer (nonce bits leak)
    AesTable,    //!< T-table AES-128 (key-byte nibbles leak)
};

/** Human-readable family name (cell listings, conformance suite). */
const char *victimFamilyName(VictimFamily family);

/** Victim service parameters. */
struct VictimConfig
{
    /** Which service family to run (see VictimFamily). */
    VictimFamily family = VictimFamily::EcdsaLadder;

    unsigned core = 2;         //!< physical core the victim runs on

    /** Ladder-iteration duration (paper: ~9,700 cycles at 2 GHz).
        For the AES family: one encryption window. */
    Cycles iterationCycles = 9700;

    /** Per-iteration duration jitter (fraction). */
    double iterationJitter = 0.02;

    /**
     * Monitored-line semantics: true models the instrumented layout
     * where the midpoint access occurs for bit == 0 (Section 7.1);
     * false models the original line-2 layout (midpoint on bit == 1).
     * ECDSA family only.
     */
    bool midpointOnZero = true;

    /** Fraction of a request spent in the vulnerable loop. */
    double dutyCycle = 0.25;

    /** Page-line index of the target line inside the victim binary. */
    unsigned targetLineIndex = 21;

    /** Number of decoy code/data lines accessed at ladder frequency. */
    unsigned decoyLines = 3;

    /**
     * Lifetime request quota (0 = unlimited).  Models a rate-limited
     * or short-lived victim service: once the quota is exhausted,
     * serveRequests() returns fewer executions than asked — possibly
     * none.  Campaign fleets use this to exercise the attack's
     * partial-result paths.
     */
    std::uint64_t requestQuota = 0;

    /**
     * Rotate the secret key every this many requests (0 = never).
     * Each rotation starts a new key epoch; campaigns score epochs
     * independently (DESIGN.md §11).
     */
    std::uint64_t rotateKeys = 0;

    /** AES family: encryptions per request (leakage windows). */
    unsigned aesEncryptions = 48;

    /**
     * Open-loop request arrivals.  Inactive (the default) keeps the
     * closed-loop think-time behaviour; active specs time requests
     * by a dedicated positional arrival stream instead, with queueing
     * when a request arrives before the previous one finished.
     */
    ArrivalSpec arrival;

    std::uint64_t seed = 99;
};

/**
 * A victim service instance on a simulated machine: the family
 * interface.  Concrete families implement generateExecution() (one
 * request's access streams + ground truth), key rotation, and the
 * spectral self-description the scanner trains against.
 */
class Victim
{
  public:
    /** Ground truth of one triggered request. */
    struct Execution
    {
        /** ECDSA family: the signing's nonce/ladder record. */
        SigningRecord record;
        Cycles requestStart = 0;
        Cycles ladderStart = 0;
        Cycles ladderEnd = 0;
        Cycles requestEnd = 0;
        /** Iteration boundary times (size = bits + 1: includes end). */
        std::vector<Cycles> iterationStarts;
        /** Per-iteration ground-truth bits (loop order).  ECDSA:
            nonce bits; AES: 1 iff the monitored line was touched in
            that encryption window. */
        std::vector<std::uint8_t> bits;
        /** Times the target line was fetched. */
        std::vector<Cycles> targetAccesses;
        /** Key epoch this request was served under (0-based). */
        unsigned keyEpoch = 0;
        /** AES family: attacker-known plaintexts, one per window. */
        std::vector<std::array<std::uint8_t, 16>> plaintexts;
    };

    virtual ~Victim();

    Victim(const Victim &) = delete;
    Victim &operator=(const Victim &) = delete;

    const VictimConfig &config() const { return cfg_; }

    /** The concrete family (dispatch for family-specific scoring). */
    virtual VictimFamily family() const = 0;

    /** Physical address of the monitored cache line. */
    Addr targetLinePa() const { return targetPa_; }

    /** Page-line index (page offset / 64) of the target line. */
    unsigned targetLineIndex() const { return cfg_.targetLineIndex; }

    /** Physical addresses of the decoy lines (ground truth). */
    const std::vector<Addr> &decoyPas() const { return decoyPas_; }

    /**
     * Serve one request: processing starts at @p request_start
     * (absolute machine time, may be in the future).  Rotates the
     * key at epoch boundaries, registers the access streams and
     * returns the full ground truth.
     */
    Execution triggerRequest(Cycles request_start);

    /**
     * Serve up to @p count requests starting at @p first_start.
     * Closed loop (no arrival spec): back-to-back with think-time
     * gaps so the leaky loop occupies ~dutyCycle of wall time.
     * Open loop: requests are timed by the arrival process and queue
     * behind the previous request when they arrive early.  Stops
     * once the request quota (if any) is exhausted, so the result
     * may hold fewer than @p count executions — callers must not
     * index it unchecked.
     * @return ground truth per served request.
     */
    std::vector<Execution> serveRequests(Cycles first_start,
                                         unsigned count);

    /** Requests still allowed by the quota (~0 when unlimited). */
    std::uint64_t
    remainingQuota() const
    {
        if (cfg_.requestQuota == 0)
            return ~0ULL;
        return cfg_.requestQuota - std::min(cfg_.requestQuota,
                                            requestCounter_);
    }

    /** Current key epoch (increments every cfg.rotateKeys requests). */
    unsigned keyEpoch() const { return keyEpoch_; }

    /** Duration of one full request (loop time / dutyCycle) estimate. */
    Cycles expectedRequestCycles(std::size_t iterations) const;

    /** Typical leakage-loop iterations per request (request sizing). */
    virtual std::size_t expectedIterations() const = 0;

    /**
     * Expected frequency (Hz) of target-line accesses while the
     * leaky loop runs — where the scanner expects the PSD peak.
     */
    virtual double expectedAccessFrequencyHz() const = 0;

    /** Open-loop arrivals served so far (0 in closed loop). */
    std::uint64_t arrivalCount() const { return arrivalCount_; }

    /** Mean open-loop queueing delay in cycles (0 when none). */
    double
    meanQueueDelayCycles() const
    {
        return arrivalCount_ == 0
                   ? 0.0
                   : queueDelaySum_ / static_cast<double>(arrivalCount_);
    }

  protected:
    /** Validates @p cfg (fatal on nonsense) and maps nothing yet:
        concrete families lay out their own code/table pages. */
    Victim(Machine &machine, const VictimConfig &cfg);

    /** One request's streams + ground truth (epoch set by caller). */
    virtual Execution generateExecution(Cycles request_start) = 0;

    /** Install a fresh secret at an epoch boundary. */
    virtual void rotateKey() = 0;

    /** Closed-loop think time drawn from the family's own stream. */
    virtual Cycles closedLoopGap() = 0;

    Machine &machine_;
    VictimConfig cfg_;
    std::unique_ptr<AddressSpace> space_;
    Addr targetPa_ = 0;
    std::vector<Addr> decoyPas_;
    std::uint64_t requestCounter_ = 0;

  private:
    std::unique_ptr<ArrivalProcess> arrivals_;
    Cycles nextArrival_ = 0;
    bool arrivalsPrimed_ = false;
    Cycles lastRequestEnd_ = 0;
    std::uint64_t arrivalCount_ = 0;
    double queueDelaySum_ = 0.0;
    unsigned keyEpoch_ = 0;
    std::uint64_t requestsThisEpoch_ = 0;
};

/**
 * The Montgomery-ladder ECDSA signing service (paper Section 7.1).
 */
class EcdsaLadderVictim final : public Victim
{
  public:
    EcdsaLadderVictim(Machine &machine, const VictimConfig &cfg);

    VictimFamily family() const override;

    /** The victim's key pair (experimenter-side ground truth). */
    const EcdsaKeyPair &keyPair() const { return key_; }

    /** sect571r1 ladders run ~570 iterations. */
    std::size_t expectedIterations() const override;

    /**
     * One access per half iteration on average — the paper's PSD
     * peak location (~0.41 MHz at default timing).
     */
    double expectedAccessFrequencyHz() const override;

  protected:
    Execution generateExecution(Cycles request_start) override;
    void rotateKey() override;
    Cycles closedLoopGap() override;

  private:
    Ecdsa ecdsa_;
    EcdsaKeyPair key_;
    Rng rng_;
};

/** Construct the family selected by @p cfg.family. */
std::unique_ptr<Victim> makeVictim(Machine &machine,
                                   const VictimConfig &cfg);

} // namespace llcf

#endif // LLCF_VICTIM_VICTIM_HH
