/**
 * @file
 * The victim: a containerized web service signing requests with the
 * vulnerable Montgomery-ladder ECDSA (paper Section 7.1).
 *
 * Each triggered signing runs the real sect571r1 ladder to obtain the
 * nonce's bit sequence, then replays the Figure 8 code-fetch pattern
 * into the simulated machine as a timed access stream:
 *
 *  - the target cache line is fetched at every iteration boundary
 *    (the `if (bit)` line acts as the attacker's clock), and
 *  - once more at the iteration midpoint when the branch direction
 *    matching the monitored line is taken (with the instrumented
 *    layout of Section 7.1, the bit value 0).
 *
 * Additional "decoy" lines model MAdd/MDouble body fetches — the
 * false-positive sources the paper's Section 7.2 scanner must reject.
 */

#ifndef LLCF_VICTIM_VICTIM_HH
#define LLCF_VICTIM_VICTIM_HH

#include <algorithm>
#include <vector>

#include "crypto/ecdsa.hh"
#include "sim/machine.hh"

namespace llcf {

/** Victim service parameters. */
struct VictimConfig
{
    unsigned core = 2;         //!< physical core the victim runs on

    /** Ladder-iteration duration (paper: ~9,700 cycles at 2 GHz). */
    Cycles iterationCycles = 9700;

    /** Per-iteration duration jitter (fraction). */
    double iterationJitter = 0.02;

    /**
     * Monitored-line semantics: true models the instrumented layout
     * where the midpoint access occurs for bit == 0 (Section 7.1);
     * false models the original line-2 layout (midpoint on bit == 1).
     */
    bool midpointOnZero = true;

    /** Fraction of a request spent in the vulnerable ladder loop. */
    double dutyCycle = 0.25;

    /** Page-line index of the target line inside the victim binary. */
    unsigned targetLineIndex = 21;

    /** Number of decoy code/data lines accessed at ladder frequency. */
    unsigned decoyLines = 3;

    /**
     * Lifetime request quota (0 = unlimited).  Models a rate-limited
     * or short-lived victim service: once the quota is exhausted,
     * serveRequests() returns fewer executions than asked — possibly
     * none.  Campaign fleets use this to exercise the attack's
     * partial-result paths.
     */
    std::uint64_t requestQuota = 0;

    std::uint64_t seed = 99;
};

/**
 * A victim service instance on a simulated machine.
 */
class VictimService
{
  public:
    /** Ground truth of one triggered signing. */
    struct Execution
    {
        SigningRecord record;
        Cycles requestStart = 0;
        Cycles ladderStart = 0;
        Cycles ladderEnd = 0;
        Cycles requestEnd = 0;
        /** Iteration boundary times (size = bits + 1: includes end). */
        std::vector<Cycles> iterationStarts;
        /** Per-iteration nonce bits (loop order). */
        std::vector<std::uint8_t> bits;
        /** Times the target line was fetched. */
        std::vector<Cycles> targetAccesses;
    };

    VictimService(Machine &machine, const VictimConfig &cfg);

    const VictimConfig &config() const { return cfg_; }

    /** The victim's key pair (experimenter-side ground truth). */
    const EcdsaKeyPair &keyPair() const { return key_; }

    /** Physical address of the monitored cache line. */
    Addr targetLinePa() const { return targetPa_; }

    /** Page-line index (page offset / 64) of the target line. */
    unsigned targetLineIndex() const { return cfg_.targetLineIndex; }

    /** Physical addresses of the decoy lines (ground truth). */
    const std::vector<Addr> &decoyPas() const { return decoyPas_; }

    /**
     * Schedule one request: signing starts at @p request_start
     * (absolute machine time, may be in the future).  Registers the
     * access streams and returns the full ground truth.
     */
    Execution triggerSigning(Cycles request_start);

    /**
     * Schedule back-to-back requests starting at @p first_start,
     * with idle gaps so the ladder occupies ~dutyCycle of wall time.
     * Stops early once the request quota (if any) is exhausted, so
     * the result may hold fewer than @p count executions — callers
     * must not index it unchecked.
     * @return ground truth per served request.
     */
    std::vector<Execution> serveRequests(Cycles first_start,
                                         unsigned count);

    /** Requests still allowed by the quota (~0 when unlimited). */
    std::uint64_t
    remainingQuota() const
    {
        if (cfg_.requestQuota == 0)
            return ~0ULL;
        return cfg_.requestQuota - std::min(cfg_.requestQuota,
                                            requestCounter_);
    }

    /** Duration of one full request (ladder / dutyCycle) estimate. */
    Cycles expectedRequestCycles(std::size_t iterations) const;

    /**
     * Expected frequency (Hz) of target-line accesses while the
     * ladder runs — the paper's PSD peak location (~0.41 MHz: one
     * access per half iteration).
     */
    double expectedAccessFrequencyHz() const;

  private:
    Machine &machine_;
    VictimConfig cfg_;
    std::unique_ptr<AddressSpace> space_;
    Ecdsa ecdsa_;
    EcdsaKeyPair key_;
    Rng rng_;
    Addr targetPa_ = 0;
    std::vector<Addr> decoyPas_;
    std::uint64_t requestCounter_ = 0;
};

} // namespace llcf

#endif // LLCF_VICTIM_VICTIM_HH
