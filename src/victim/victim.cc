#include "victim.hh"

#include <algorithm>
#include <string>

#include "common/log.hh"
#include "victim/aes_victim.hh"

namespace llcf {

const char *
victimFamilyName(VictimFamily family)
{
    switch (family) {
    case VictimFamily::EcdsaLadder:
        return "ecdsa";
    case VictimFamily::AesTable:
        return "aes";
    }
    return "?";
}

Victim::Victim(Machine &machine, const VictimConfig &cfg)
    : machine_(machine),
      cfg_(cfg),
      space_(machine.newAddressSpace())
{
    if (cfg_.core >= machine.config().cores)
        fatal("victim core %u out of range", cfg_.core);
    if (cfg_.targetLineIndex >= kLinesPerPage)
        fatal("target line index %u out of range", cfg_.targetLineIndex);
    // dutyCycle divides expectedRequestCycles and the think-time
    // model; anything outside (0, 1] (or NaN) poisons every derived
    // duration, so reject it here instead of emitting nonsense.
    if (!(cfg_.dutyCycle > 0.0) || cfg_.dutyCycle > 1.0) {
        // detlint: allow(float-format) -- fatal diagnostic only
        fatal("victim dutyCycle %.3f outside (0, 1]", cfg_.dutyCycle);
    }
    if (cfg_.iterationCycles == 0)
        fatal("victim iterationCycles must be positive");
    if (!(cfg_.iterationJitter >= 0.0) ||
        cfg_.iterationJitter >= 1.0) {
        // detlint: allow(float-format) -- fatal diagnostic only
        fatal("victim iterationJitter %.3f outside [0, 1)",
              cfg_.iterationJitter);
    }
    // Open-loop arrivals draw from their own positional stream so
    // closed-loop behaviour is byte-identical with or without the
    // traffic wing compiled in.
    if (cfg_.arrival.active())
        arrivals_ = std::make_unique<ArrivalProcess>(
            cfg_.arrival, mix64(cfg_.seed ^ 0x0a21));
}

Victim::~Victim() = default;

Cycles
Victim::expectedRequestCycles(std::size_t iterations) const
{
    const double ladder = static_cast<double>(iterations) *
                          static_cast<double>(cfg_.iterationCycles);
    return static_cast<Cycles>(ladder / cfg_.dutyCycle);
}

Victim::Execution
Victim::triggerRequest(Cycles request_start)
{
    if (cfg_.rotateKeys > 0 && requestsThisEpoch_ == cfg_.rotateKeys) {
        rotateKey();
        ++keyEpoch_;
        requestsThisEpoch_ = 0;
    }
    Execution exec = generateExecution(request_start);
    exec.keyEpoch = keyEpoch_;
    ++requestCounter_;
    ++requestsThisEpoch_;
    return exec;
}

std::vector<Victim::Execution>
Victim::serveRequests(Cycles first_start, unsigned count)
{
    std::vector<Execution> out;
    out.reserve(count);
    Cycles start = first_start;
    for (unsigned i = 0; i < count; ++i) {
        if (remainingQuota() == 0)
            break;
        if (arrivals_) {
            // Open loop: the arrival clock runs independently of
            // service completions; early arrivals queue behind the
            // in-flight request.
            if (!arrivalsPrimed_) {
                nextArrival_ =
                    first_start + arrivals_->nextInterarrival();
                arrivalsPrimed_ = true;
            }
            const Cycles arrival = nextArrival_;
            nextArrival_ = arrival + arrivals_->nextInterarrival();
            start = std::max({arrival, lastRequestEnd_, first_start});
            queueDelaySum_ += static_cast<double>(start - arrival);
            ++arrivalCount_;
        }
        Execution exec = triggerRequest(start);
        lastRequestEnd_ = exec.requestEnd;
        if (!arrivals_) {
            // Small think time between requests.
            const Cycles gap = closedLoopGap();
            start = exec.requestEnd + gap;
        }
        out.push_back(std::move(exec));
    }
    return out;
}

// ------------------------------------------------- EcdsaLadderVictim

EcdsaLadderVictim::EcdsaLadderVictim(Machine &machine,
                                     const VictimConfig &cfg)
    : Victim(machine, cfg),
      ecdsa_(Rng(mix64(cfg.seed ^ 0xec2a))),
      rng_(mix64(cfg.seed ^ 0x71c7))
{
    key_ = ecdsa_.generateKey();

    // The victim "library" is mapped once at container start and keeps
    // its VA-PA mapping for the container's lifetime (Section 7.1).
    const Addr code_base = space_->mmapAnon(4 * kPageBytes);
    targetPa_ = space_->translate(
        code_base + (static_cast<Addr>(cfg_.targetLineIndex)
                     << kLineBits));
    // Decoy lines: MAdd/MDouble bodies on neighbouring lines/pages.
    for (unsigned i = 0; i < cfg_.decoyLines; ++i) {
        const Addr va = code_base + ((i + 1) % 4) * kPageBytes +
            (((cfg_.targetLineIndex + 7 * (i + 1)) % kLinesPerPage)
             << kLineBits);
        decoyPas_.push_back(space_->translate(va));
    }
}

VictimFamily
EcdsaLadderVictim::family() const
{
    return VictimFamily::EcdsaLadder;
}

std::size_t
EcdsaLadderVictim::expectedIterations() const
{
    return 570;
}

double
EcdsaLadderVictim::expectedAccessFrequencyHz() const
{
    // One access per half iteration on average (boundary access every
    // iteration plus a midpoint access for about half the bits).
    const double half_iter = static_cast<double>(cfg_.iterationCycles)
                             / 2.0;
    return kCpuGhz * 1e9 / half_iter;
}

void
EcdsaLadderVictim::rotateKey()
{
    key_ = ecdsa_.generateKey();
}

Cycles
EcdsaLadderVictim::closedLoopGap()
{
    return static_cast<Cycles>(
        rng_.nextExponential(static_cast<double>(
            cfg_.iterationCycles) * 20.0));
}

Victim::Execution
EcdsaLadderVictim::generateExecution(Cycles request_start)
{
    Execution exec;
    exec.requestStart = request_start;

    // Real signing: real nonce, real ladder bit sequence.
    const std::string msg =
        "sign-request-" + std::to_string(requestCounter_);
    exec.record = ecdsa_.signWithTrace(sha256(msg), key_.d);
    exec.bits = exec.record.ladderBits;

    // Request timeline: pre-processing, ladder, post-processing.
    const std::size_t iters = exec.bits.size();
    const double ladder_time = static_cast<double>(iters) *
                               static_cast<double>(cfg_.iterationCycles);
    const double other_time =
        ladder_time * (1.0 - cfg_.dutyCycle) / cfg_.dutyCycle;
    const Cycles pre = static_cast<Cycles>(other_time * 0.4);
    exec.ladderStart = request_start + pre;

    // Iteration boundaries with jitter.
    exec.iterationStarts.reserve(iters + 1);
    std::vector<Cycles> target_times;
    std::vector<Cycles> decoy_times;
    double t = static_cast<double>(exec.ladderStart);
    for (std::size_t i = 0; i < iters; ++i) {
        const Cycles start = static_cast<Cycles>(t);
        exec.iterationStarts.push_back(start);
        double dur = static_cast<double>(cfg_.iterationCycles);
        if (cfg_.iterationJitter > 0.0) {
            dur *= std::max(0.5, 1.0 + cfg_.iterationJitter *
                                 rng_.nextGaussian());
        }
        // Boundary fetch of the target line (the `if (bit)` clock).
        target_times.push_back(start);
        // Midpoint fetch when the monitored branch direction is taken.
        const bool midpoint =
            cfg_.midpointOnZero ? exec.bits[i] == 0 : exec.bits[i] == 1;
        if (midpoint)
            target_times.push_back(start + static_cast<Cycles>(dur / 2));
        // Decoy fetches: function bodies run every iteration.
        decoy_times.push_back(start + static_cast<Cycles>(dur * 0.25));
        decoy_times.push_back(start + static_cast<Cycles>(dur * 0.75));
        t += dur;
    }
    exec.ladderEnd = static_cast<Cycles>(t);
    exec.iterationStarts.push_back(exec.ladderEnd);
    // Closing boundary fetch: the loop-header line is touched once
    // more when the ladder exits, matching the ground truth above
    // (iterationStarts includes ladderEnd).  Without it the final
    // iteration has no closing boundary and its bit is unrecoverable
    // by construction.
    target_times.push_back(exec.ladderEnd);
    exec.requestEnd = exec.ladderEnd +
        static_cast<Cycles>(other_time * 0.6);
    exec.targetAccesses = target_times;

    // Register the access streams with the machine.
    machine_.addStream(cfg_.core, targetPa_, std::move(target_times));
    for (std::size_t d = 0; d < decoyPas_.size(); ++d) {
        // Stagger decoys so their phases differ.
        std::vector<Cycles> times = decoy_times;
        for (auto &time : times)
            time += static_cast<Cycles>(137 * (d + 1));
        machine_.addStream(cfg_.core, decoyPas_[d], std::move(times));
    }
    return exec;
}

std::unique_ptr<Victim>
makeVictim(Machine &machine, const VictimConfig &cfg)
{
    switch (cfg.family) {
    case VictimFamily::EcdsaLadder:
        return std::make_unique<EcdsaLadderVictim>(machine, cfg);
    case VictimFamily::AesTable:
        return std::make_unique<AesTableVictim>(machine, cfg);
    }
    fatal("unknown victim family");
}

} // namespace llcf
