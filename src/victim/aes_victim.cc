#include "victim/aes_victim.hh"

#include <algorithm>
#include <utility>

#include "common/log.hh"

namespace llcf {

AesTableVictim::AesTableVictim(Machine &machine, const VictimConfig &cfg)
    : Victim(machine, cfg),
      rng_(mix64(cfg.seed ^ 0xae51)),
      keyRng_(mix64(cfg.seed ^ 0xae52))
{
    if (cfg_.aesEncryptions == 0)
        fatal("aes victim needs at least one encryption per request");
    if (cfg_.decoyLines > 3)
        fatal("aes victim supports at most 3 decoy lines (one per "
              "sibling table), got %u",
              cfg_.decoyLines);

    rotateKey();

    // The T-table page is mapped once and keeps its VA-PA mapping
    // for the service's lifetime, like the ECDSA victim's library.
    const Addr table_base = space_->mmapAnon(kPageBytes);
    for (unsigned line = 0; line < kLinesPerPage; ++line) {
        linePas_[line] = space_->translate(
            table_base + (static_cast<Addr>(line) << kLineBits));
    }
    targetPa_ = linePas_[cfg_.targetLineIndex];
    // Decoys: the same in-table line of the sibling tables — they
    // carry the same access statistics as the monitored line, which
    // is exactly the false-positive shape the scanner must reject.
    for (unsigned i = 0; i < cfg_.decoyLines; ++i) {
        const unsigned idx =
            ((monitoredTable() + 1 + i) % 4) * 16 + monitoredLine();
        decoyPas_.push_back(linePas_[idx]);
    }
}

VictimFamily
AesTableVictim::family() const
{
    return VictimFamily::AesTable;
}

std::size_t
AesTableVictim::expectedIterations() const
{
    return cfg_.aesEncryptions;
}

double
AesTableVictim::expectedAccessFrequencyHz() const
{
    // 144 traced lookups per encryption, 36 into the monitored
    // table, uniform over its 16 lines: 2.25 touches per window.
    const double per_window = 36.0 / 16.0;
    return kCpuGhz * 1e9 * per_window /
           static_cast<double>(cfg_.iterationCycles);
}

void
AesTableVictim::rotateKey()
{
    Aes128::Block key;
    for (auto &b : key)
        b = static_cast<std::uint8_t>(keyRng_.nextBelow(256));
    aes_.emplace(key);
}

Cycles
AesTableVictim::closedLoopGap()
{
    return static_cast<Cycles>(
        rng_.nextExponential(static_cast<double>(
            cfg_.iterationCycles) * 20.0));
}

Victim::Execution
AesTableVictim::generateExecution(Cycles request_start)
{
    Execution exec;
    exec.requestStart = request_start;

    const std::size_t windows = cfg_.aesEncryptions;
    const double loop_time = static_cast<double>(windows) *
                             static_cast<double>(cfg_.iterationCycles);
    const double other_time =
        loop_time * (1.0 - cfg_.dutyCycle) / cfg_.dutyCycle;
    const Cycles pre = static_cast<Cycles>(other_time * 0.4);
    exec.ladderStart = request_start + pre;

    exec.iterationStarts.reserve(windows + 1);
    exec.plaintexts.reserve(windows);
    std::vector<Cycles> target_times;
    std::vector<std::vector<Cycles>> decoy_times(decoyPas_.size());
    std::vector<Aes128::TableLookup> lookups;

    double t = static_cast<double>(exec.ladderStart);
    for (std::size_t i = 0; i < windows; ++i) {
        const Cycles start = static_cast<Cycles>(t);
        exec.iterationStarts.push_back(start);
        double dur = static_cast<double>(cfg_.iterationCycles);
        if (cfg_.iterationJitter > 0.0) {
            dur *= std::max(0.5, 1.0 + cfg_.iterationJitter *
                                 rng_.nextGaussian());
        }

        Aes128::Block pt;
        for (auto &b : pt)
            b = static_cast<std::uint8_t>(rng_.nextBelow(256));
        exec.plaintexts.push_back(pt);

        lookups.clear();
        aes_->encryptTrace(pt, lookups);

        // Nine rounds of 16 lookups, spread across the window in
        // round order — pure data flow, no host randomness.
        bool touched = false;
        for (std::size_t n = 0; n < lookups.size(); ++n) {
            const unsigned round = static_cast<unsigned>(n / 16);
            const unsigned slot = static_cast<unsigned>(n % 16);
            const unsigned line =
                lookups[n].table * 16u + (lookups[n].index >> 4);
            const Cycles when =
                start +
                static_cast<Cycles>(dur * (0.05 + 0.09 * round)) +
                11 * slot;
            if (line == cfg_.targetLineIndex) {
                target_times.push_back(when);
                touched = true;
                continue;
            }
            for (std::size_t d = 0; d < decoyPas_.size(); ++d) {
                const unsigned didx =
                    ((monitoredTable() + 1 +
                      static_cast<unsigned>(d)) % 4) * 16 +
                    monitoredLine();
                if (line == didx) {
                    decoy_times[d].push_back(when);
                    break;
                }
            }
        }
        exec.bits.push_back(touched ? 1 : 0);
        t += dur;
    }
    exec.ladderEnd = static_cast<Cycles>(t);
    exec.iterationStarts.push_back(exec.ladderEnd);
    exec.requestEnd = exec.ladderEnd +
        static_cast<Cycles>(other_time * 0.6);
    exec.targetAccesses = target_times;

    machine_.addStream(cfg_.core, targetPa_, std::move(target_times));
    for (std::size_t d = 0; d < decoyPas_.size(); ++d) {
        if (!decoy_times[d].empty()) {
            machine_.addStream(cfg_.core, decoyPas_[d],
                               std::move(decoy_times[d]));
        }
    }
    return exec;
}

} // namespace llcf
