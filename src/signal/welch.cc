#include "welch.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"
#include "signal/fft.hh"

namespace llcf {

std::vector<double>
makeWindow(WindowKind kind, std::size_t n)
{
    std::vector<double> w(n, 1.0);
    if (n <= 1)
        return w;
    switch (kind) {
      case WindowKind::Rect:
        break;
      case WindowKind::Hann:
        for (std::size_t i = 0; i < n; ++i) {
            w[i] = 0.5 * (1.0 - std::cos(2.0 * M_PI *
                   static_cast<double>(i) / static_cast<double>(n - 1)));
        }
        break;
      case WindowKind::Hamming:
        for (std::size_t i = 0; i < n; ++i) {
            w[i] = 0.54 - 0.46 * std::cos(2.0 * M_PI *
                   static_cast<double>(i) / static_cast<double>(n - 1));
        }
        break;
    }
    return w;
}

std::size_t
PsdEstimate::peakIndex(double min_hz) const
{
    std::size_t best = 0;
    double best_power = -1.0;
    for (std::size_t i = 0; i < frequency.size(); ++i) {
        if (frequency[i] < min_hz)
            continue;
        if (power[i] > best_power) {
            best_power = power[i];
            best = i;
        }
    }
    return best;
}

double
PsdEstimate::powerAt(double hz) const
{
    if (frequency.empty())
        return 0.0;
    auto it = std::lower_bound(frequency.begin(), frequency.end(), hz);
    std::size_t idx = static_cast<std::size_t>(it - frequency.begin());
    if (idx >= frequency.size())
        idx = frequency.size() - 1;
    if (idx > 0 && hz - frequency[idx - 1] < frequency[idx] - hz)
        --idx;
    return power[idx];
}

double
PsdEstimate::totalPower() const
{
    double sum = 0.0;
    for (double p : power)
        sum += p;
    return sum;
}

PsdEstimate
welchPsd(const std::vector<double> &signal, double sample_rate_hz,
         const WelchParams &params)
{
    PsdEstimate est;
    const std::size_t seg = params.segmentLength;
    if (!isPowerOf2(seg))
        fatal("Welch segment length must be a power of two");
    // A signal shorter than one segment yields zero segments to
    // average — return the flagged empty estimate (est.valid() is
    // false) instead of dividing by the segment count.
    if (signal.size() < seg || sample_rate_hz <= 0.0)
        return est;

    const std::size_t hop = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               static_cast<double>(seg) * (1.0 - params.overlap)));
    const std::vector<double> window = makeWindow(params.window, seg);

    double window_power = 0.0;
    for (double w : window)
        window_power += w * w;

    const std::size_t bins = seg / 2 + 1;
    std::vector<double> accum(bins, 0.0);
    std::size_t segments = 0;
    std::vector<Complex> buf(seg);

    for (std::size_t start = 0; start + seg <= signal.size();
         start += hop) {
        double mean = 0.0;
        if (params.detrend) {
            for (std::size_t i = 0; i < seg; ++i)
                mean += signal[start + i];
            mean /= static_cast<double>(seg);
        }
        for (std::size_t i = 0; i < seg; ++i) {
            buf[i] = Complex((signal[start + i] - mean) * window[i],
                             0.0);
        }
        fft(buf);
        for (std::size_t k = 0; k < bins; ++k) {
            double mag2 = std::norm(buf[k]);
            // One-sided: double everything except DC and Nyquist.
            if (k != 0 && k != seg / 2)
                mag2 *= 2.0;
            accum[k] += mag2;
        }
        ++segments;
    }
    if (segments == 0)
        return est;

    est.segments = segments;
    const double scale = 1.0 / (sample_rate_hz * window_power *
                                static_cast<double>(segments));
    est.frequency.resize(bins);
    est.power.resize(bins);
    for (std::size_t k = 0; k < bins; ++k) {
        est.frequency[k] = sample_rate_hz * static_cast<double>(k) /
                           static_cast<double>(seg);
        est.power[k] = accum[k] * scale;
    }
    return est;
}

std::vector<double>
binEvents(const std::vector<Cycles> &timestamps, Cycles duration,
          Cycles bin)
{
    if (bin == 0)
        fatal("binEvents needs a non-zero bin width");
    const std::size_t n = static_cast<std::size_t>(
        (duration + bin - 1) / bin);
    std::vector<double> out(n, 0.0);
    for (Cycles t : timestamps) {
        const std::size_t idx = static_cast<std::size_t>(t / bin);
        if (idx < n)
            out[idx] += 1.0;
    }
    return out;
}

double
harmonicScore(const PsdEstimate &psd, double base_hz, unsigned harmonics,
              double tolerance)
{
    const double total = psd.totalPower();
    if (total <= 0.0 || psd.frequency.size() < 2)
        return 0.0;
    const double df = psd.frequency[1] - psd.frequency[0];
    double score = 0.0;
    for (unsigned h = 1; h <= harmonics; ++h) {
        const double f = base_hz * static_cast<double>(h);
        const double half = std::max(df, f * tolerance);
        double band = 0.0;
        for (std::size_t i = 0; i < psd.frequency.size(); ++i) {
            if (std::abs(psd.frequency[i] - f) <= half)
                band += psd.power[i];
        }
        score += band;
    }
    return score / total;
}

} // namespace llcf
