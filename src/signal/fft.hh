/**
 * @file
 * Radix-2 fast Fourier transform for the spectral analysis pipeline.
 */

#ifndef LLCF_SIGNAL_FFT_HH
#define LLCF_SIGNAL_FFT_HH

#include <complex>
#include <vector>

namespace llcf {

/** Complex sample type used throughout the signal module. */
using Complex = std::complex<double>;

/**
 * In-place iterative radix-2 decimation-in-time FFT.
 * @pre data.size() is a power of two.
 * @param inverse Compute the inverse transform (with 1/N scaling).
 */
void fft(std::vector<Complex> &data, bool inverse = false);

/**
 * Forward FFT of a real signal, zero-padded to the next power of two.
 * @return complex spectrum of length >= signal size.
 */
std::vector<Complex> fftReal(const std::vector<double> &signal);

/** Smallest power of two >= n. */
std::size_t nextPowerOf2(std::size_t n);

} // namespace llcf

#endif // LLCF_SIGNAL_FFT_HH
