#include "fft.hh"

#include <cmath>

#include "common/log.hh"
#include "common/types.hh"

namespace llcf {

std::size_t
nextPowerOf2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

void
fft(std::vector<Complex> &data, bool inverse)
{
    const std::size_t n = data.size();
    if (n == 0)
        return;
    if (!isPowerOf2(n))
        panic("fft size %zu is not a power of two", n);

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i], data[j]);
    }

    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle = (inverse ? 2.0 : -2.0) * M_PI /
                             static_cast<double>(len);
        const Complex wlen(std::cos(angle), std::sin(angle));
        for (std::size_t i = 0; i < n; i += len) {
            Complex w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const Complex u = data[i + k];
                const Complex v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }

    if (inverse) {
        for (auto &x : data)
            x /= static_cast<double>(n);
    }
}

std::vector<Complex>
fftReal(const std::vector<double> &signal)
{
    std::vector<Complex> data(nextPowerOf2(signal.size()));
    for (std::size_t i = 0; i < signal.size(); ++i)
        data[i] = Complex(signal[i], 0.0);
    fft(data);
    return data;
}

} // namespace llcf
