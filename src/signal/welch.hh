/**
 * @file
 * Power spectral density estimation with Welch's method [Welch 1967],
 * as the paper uses to identify the victim's target cache set in the
 * frequency domain (Section 6.2), plus the event-trace binning and
 * peak utilities around it.
 */

#ifndef LLCF_SIGNAL_WELCH_HH
#define LLCF_SIGNAL_WELCH_HH

#include <vector>

#include "common/types.hh"

namespace llcf {

/** Window functions for periodogram segments. */
enum class WindowKind { Rect, Hann, Hamming };

/** Evaluate a window of @p n points. */
std::vector<double> makeWindow(WindowKind kind, std::size_t n);

/** Parameters for Welch PSD estimation. */
struct WelchParams
{
    std::size_t segmentLength = 256; //!< power of two
    double overlap = 0.5;            //!< fraction of segment overlap
    WindowKind window = WindowKind::Hann;
    bool detrend = true;             //!< remove per-segment mean
};

/** A one-sided PSD estimate. */
struct PsdEstimate
{
    std::vector<double> frequency; //!< Hz, given the sample rate
    std::vector<double> power;     //!< density at each frequency

    /**
     * Periodogram segments averaged into the estimate.  0 flags a
     * degenerate input (signal shorter than one segment, or a
     * non-positive sample rate): frequency/power are then empty and
     * consumers must treat the estimate as "no signal" rather than
     * derive scores from it.
     */
    std::size_t segments = 0;

    /** True iff at least one segment was averaged. */
    bool valid() const { return segments > 0; }

    /** Index of the strongest bin at or above @p min_hz. */
    std::size_t peakIndex(double min_hz = 0.0) const;

    /** Power at the bin nearest @p hz. */
    double powerAt(double hz) const;

    /** Total power (for normalisation). */
    double totalPower() const;
};

/**
 * Welch PSD of a uniformly sampled signal.
 *
 * @param signal Samples.
 * @param sample_rate_hz Sampling rate.
 */
PsdEstimate welchPsd(const std::vector<double> &signal,
                     double sample_rate_hz,
                     const WelchParams &params = WelchParams{});

/**
 * Convert an event-timestamp trace (cycles) to a uniformly binned 0/1+
 * count signal for spectral analysis.
 *
 * @param timestamps Event times in cycles (need not be sorted).
 * @param duration Trace duration in cycles.
 * @param bin Cycles per bin.
 * @return one count per bin.
 */
std::vector<double> binEvents(const std::vector<Cycles> &timestamps,
                              Cycles duration, Cycles bin);

/**
 * Harmonic-comb power score: sum of normalised PSD power in small
 * neighbourhoods of @p base_hz and its first harmonics.  A cheap,
 * classifier-free detector used as a baseline and for feature
 * engineering.
 */
double harmonicScore(const PsdEstimate &psd, double base_hz,
                     unsigned harmonics = 3, double tolerance = 0.08);

} // namespace llcf

#endif // LLCF_SIGNAL_WELCH_HH
