/**
 * @file
 * Deterministic parallel experiment runner.
 *
 * An experiment is N independent trials of one procedure (build an
 * eviction set, monitor a victim, ...).  The runner fans trials across
 * a thread pool, hands each trial its own positionally-derived RNG
 * stream (streamSeed(master, trial)), buffers every trial's recorded
 * samples in a per-trial slot, and only after all workers join merges
 * the slots *in trial order* into SampleStats / SuccessRate
 * aggregates.  Consequently the aggregate — and the JSON serialisation
 * of it — is bit-identical whatever the worker count or OS schedule:
 * `LLCF_THREADS=1` and `LLCF_THREADS=8` runs of a bench produce the
 * same BENCH_*.json.
 */

#ifndef LLCF_HARNESS_EXPERIMENT_HH
#define LLCF_HARNESS_EXPERIMENT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "harness/json.hh"

namespace llcf {

/** Identity and per-trial randomness of one running trial. */
struct TrialContext
{
    std::size_t index; //!< trial number in [0, trials)
    std::uint64_t seed; //!< this trial's stream seed
    Rng rng;            //!< generator already seeded with @p seed
};

/**
 * Per-trial sample sink.  Metrics accumulate scalar samples (a name
 * may be recorded any number of times per trial); outcomes accumulate
 * boolean trial results into success rates.
 */
class TrialRecorder
{
  public:
    /** Record one scalar sample under @p name. */
    void metric(std::string_view name, double v);

    /** Record one boolean outcome under @p name. */
    void outcome(std::string_view name, bool success);

    /** Recorded samples in record order (campaign shard folding). */
    const std::vector<std::pair<std::string, double>> &
    metrics() const
    {
        return metrics_;
    }

    /** Recorded outcomes in record order (campaign shard folding). */
    const std::vector<std::pair<std::string, bool>> &
    outcomes() const
    {
        return outcomes_;
    }

  private:
    friend class ExperimentRunner;

    std::vector<std::pair<std::string, double>> metrics_;
    std::vector<std::pair<std::string, bool>> outcomes_;
};

/** Configuration of one experiment run. */
struct ExperimentConfig
{
    std::string name;         //!< row label, e.g. "SingleSet Gt @ cloud"
    std::size_t trials = 1;   //!< independent repetitions
    unsigned threads = 0;     //!< 0: LLCF_THREADS or hardware concurrency
    std::uint64_t masterSeed = 42; //!< root of the per-trial streams
};

/** Aggregated result of one experiment. */
class ExperimentResult
{
  public:
    const std::string &name() const { return name_; }
    std::size_t trials() const { return trials_; }
    std::uint64_t masterSeed() const { return masterSeed_; }

    /** Worker threads actually used (not serialised to JSON). */
    unsigned threadsUsed() const { return threadsUsed_; }

    /** Aggregate for @p name, or nullptr if never recorded. */
    const SampleStats *metric(std::string_view name) const;

    /** Success rate for @p name, or nullptr if never recorded. */
    const SuccessRate *outcome(std::string_view name) const;

    /** Metric aggregates in first-recorded order. */
    const std::vector<std::pair<std::string, SampleStats>> &
    metrics() const
    {
        return metrics_;
    }

    /** Outcome aggregates in first-recorded order. */
    const std::vector<std::pair<std::string, SuccessRate>> &
    outcomes() const
    {
        return outcomes_;
    }

    /**
     * Serialise as one entry of a BENCH_*.json "benchmarks" array:
     * name, trials, seed, then {count, mean, stddev, min, p10, median,
     * p90, max} per metric and {trials, successes, rate} per outcome.
     * Thread count is deliberately omitted so runs at different
     * parallelism stay byte-identical.
     */
    void writeJson(JsonWriter &w) const;

    /**
     * The members of writeJson() without the surrounding object, for
     * wrappers (e.g. campaign results) that append members of their
     * own to the same benchmark entry.
     */
    void writeJsonMembers(JsonWriter &w) const;

  private:
    friend class ExperimentRunner;

    std::string name_;
    std::size_t trials_ = 0;
    unsigned threadsUsed_ = 0;
    std::uint64_t masterSeed_ = 0;
    std::vector<std::pair<std::string, SampleStats>> metrics_;
    std::vector<std::pair<std::string, SuccessRate>> outcomes_;
};

/**
 * Runs experiments.  Construct once per bench (the pool is created
 * per run() call, sized to the experiment's thread setting).
 */
class ExperimentRunner
{
  public:
    using TrialFn = std::function<void(TrialContext &, TrialRecorder &)>;

    explicit ExperimentRunner(ExperimentConfig cfg);

    const ExperimentConfig &config() const { return cfg_; }

    /**
     * Execute all trials of @p fn and aggregate.  A trial that throws
     * aborts the run by rethrowing after the pool drains.
     */
    ExperimentResult run(const TrialFn &fn) const;

  private:
    ExperimentConfig cfg_;
};

/**
 * An ordered collection of experiment results destined for one
 * BENCH_*.json file.
 */
class ExperimentSuite
{
  public:
    /** @param bench Bench identifier, e.g. "table4". */
    explicit ExperimentSuite(std::string bench);

    /**
     * Add a numeric entry to the suite's "context" object (e.g. the
     * tolerance a regression gate applies to this suite's metrics).
     * Rendered after the standard context members, in insertion order.
     */
    void contextValue(std::string key, double v);

    /** Append one result (rendered in insertion order). */
    void add(ExperimentResult result);

    const std::vector<ExperimentResult> &results() const { return results_; }

    /** Whole-suite JSON document (context + benchmarks array). */
    std::string toJson() const;

    /**
     * Write toJson() to @p path, or to the default path when empty:
     * $LLCF_JSON_OUT if set, else BENCH_<bench>.json in the working
     * directory.  Returns the path written, or "" on I/O failure.
     */
    std::string writeFile(const std::string &path = "") const;

  private:
    std::string bench_;
    std::vector<std::pair<std::string, double>> contextValues_;
    std::vector<ExperimentResult> results_;
};

/**
 * Write @p doc plus a trailing newline to @p path, or to the default
 * destination when @p path is empty: $LLCF_JSON_OUT if set, else
 * BENCH_<bench>.json in the working directory.  Returns the path
 * written, or "" on I/O failure.  Shared by every suite writer.
 */
std::string writeBenchDocument(const std::string &bench,
                               const std::string &doc,
                               const std::string &path = "");

} // namespace llcf

#endif // LLCF_HARNESS_EXPERIMENT_HH
