#include "json.hh"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "common/log.hh"

namespace llcf {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    // Integers in the exactly-representable range print without an
    // exponent ("100", not "1e+02").
    if (v == std::floor(v) && std::fabs(v) < 9007199254740992.0) {
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    // Try successively longer forms until one round-trips exactly;
    // this keeps common values short (0.5, 100) yet never loses bits.
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(buf, "%lf", &back);
        if (back == v)
            break;
    }
    return buf;
}

JsonWriter::JsonWriter() = default;

void
JsonWriter::indent()
{
    out_ += '\n';
    out_.append(stack_.size() * 2, ' ');
}

void
JsonWriter::prepareValue()
{
    if (stack_.empty()) {
        if (!out_.empty())
            panic("JsonWriter: multiple top-level values");
        return;
    }
    if (stack_.back() == Frame::Object) {
        if (!keyPending_)
            panic("JsonWriter: object member written without a key");
        keyPending_ = false;
        return; // key() already placed comma and indent
    }
    if (hasElems_.back())
        out_ += ',';
    hasElems_.back() = true;
    indent();
}

JsonWriter &
JsonWriter::beginObject()
{
    prepareValue();
    out_ += '{';
    stack_.push_back(Frame::Object);
    hasElems_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back() != Frame::Object || keyPending_)
        panic("JsonWriter: mismatched endObject");
    bool had = hasElems_.back();
    stack_.pop_back();
    hasElems_.pop_back();
    if (had)
        indent();
    out_ += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    prepareValue();
    out_ += '[';
    stack_.push_back(Frame::Array);
    hasElems_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back() != Frame::Array)
        panic("JsonWriter: mismatched endArray");
    bool had = hasElems_.back();
    stack_.pop_back();
    hasElems_.pop_back();
    if (had)
        indent();
    out_ += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    if (stack_.empty() || stack_.back() != Frame::Object || keyPending_)
        panic("JsonWriter: key outside an object");
    if (hasElems_.back())
        out_ += ',';
    hasElems_.back() = true;
    indent();
    out_ += '"';
    out_ += jsonEscape(k);
    out_ += "\": ";
    keyPending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    prepareValue();
    out_ += jsonNumber(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    prepareValue();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    prepareValue();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    prepareValue();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    prepareValue();
    out_ += '"';
    out_ += jsonEscape(v);
    out_ += '"';
    return *this;
}

const std::string &
JsonWriter::str() const
{
    if (!stack_.empty())
        panic("JsonWriter: document has unclosed containers");
    return out_;
}

} // namespace llcf
