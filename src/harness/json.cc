#include "json.hh"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.hh"

namespace llcf {

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    // Integers in the exactly-representable range print without an
    // exponent ("100", not "1e+02").
    if (v == std::floor(v) && std::fabs(v) < 9007199254740992.0) {
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    // Try successively longer forms until one round-trips exactly;
    // this keeps common values short (0.5, 100) yet never loses bits.
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(buf, "%lf", &back);
        if (back == v)
            break;
    }
    return buf;
}

JsonWriter::JsonWriter() = default;

void
JsonWriter::indent()
{
    out_ += '\n';
    out_.append(stack_.size() * 2, ' ');
}

void
JsonWriter::prepareValue()
{
    if (stack_.empty()) {
        if (!out_.empty())
            panic("JsonWriter: multiple top-level values");
        return;
    }
    if (stack_.back() == Frame::Object) {
        if (!keyPending_)
            panic("JsonWriter: object member written without a key");
        keyPending_ = false;
        return; // key() already placed comma and indent
    }
    if (hasElems_.back())
        out_ += ',';
    hasElems_.back() = true;
    indent();
}

JsonWriter &
JsonWriter::beginObject()
{
    prepareValue();
    out_ += '{';
    stack_.push_back(Frame::Object);
    hasElems_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (stack_.empty() || stack_.back() != Frame::Object || keyPending_)
        panic("JsonWriter: mismatched endObject");
    bool had = hasElems_.back();
    stack_.pop_back();
    hasElems_.pop_back();
    if (had)
        indent();
    out_ += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    prepareValue();
    out_ += '[';
    stack_.push_back(Frame::Array);
    hasElems_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (stack_.empty() || stack_.back() != Frame::Array)
        panic("JsonWriter: mismatched endArray");
    bool had = hasElems_.back();
    stack_.pop_back();
    hasElems_.pop_back();
    if (had)
        indent();
    out_ += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(std::string_view k)
{
    if (stack_.empty() || stack_.back() != Frame::Object || keyPending_)
        panic("JsonWriter: key outside an object");
    if (hasElems_.back())
        out_ += ',';
    hasElems_.back() = true;
    indent();
    out_ += '"';
    out_ += jsonEscape(k);
    out_ += "\": ";
    keyPending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(double v)
{
    prepareValue();
    out_ += jsonNumber(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    prepareValue();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    prepareValue();
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    out_ += buf;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    prepareValue();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::value(std::string_view v)
{
    prepareValue();
    out_ += '"';
    out_ += jsonEscape(v);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    prepareValue();
    out_ += "null";
    return *this;
}

bool
loadJsonFile(const std::string &path, JsonValue &out,
             std::string *error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        if (error)
            *error = "cannot read " + path;
        return false;
    }
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    const bool read_ok = std::ferror(f) == 0;
    std::fclose(f);
    if (!read_ok) {
        if (error)
            *error = "error reading " + path;
        return false;
    }
    std::string parse_error;
    if (!parseJson(text, out, &parse_error)) {
        if (error)
            *error = path + ": " + parse_error;
        return false;
    }
    return true;
}

void
writeStatsObject(JsonWriter &w, const SampleStats &stats)
{
    w.beginObject();
    w.member("count", static_cast<std::uint64_t>(stats.count()));
    if (stats.empty()) {
        // No samples: moments and quantiles do not exist.  count: 0
        // plus explicit nulls keeps the object shape machine-checkable
        // without ever serialising NaN (invalid JSON) or a garbage 0.
        w.key("mean").null();
        w.key("stddev").null();
    } else {
        w.member("mean", stats.mean());
        w.member("stddev", stats.stddev());
        w.member("min", stats.min());
        w.member("p10", stats.percentile(10.0));
        w.member("median", stats.median());
        w.member("p90", stats.percentile(90.0));
        w.member("max", stats.max());
    }
    w.endObject();
}

void
writeStatsObject(JsonWriter &w, const StreamingStats &stats)
{
    w.beginObject();
    w.member("count", static_cast<std::uint64_t>(stats.count()));
    if (stats.empty()) {
        w.key("mean").null();
        w.key("stddev").null();
    } else {
        w.member("mean", stats.mean());
        w.member("stddev", stats.stddev());
        w.member("min", stats.min());
        w.member("p10", stats.percentile(10.0));
        w.member("median", stats.median());
        w.member("p90", stats.percentile(90.0));
        w.member("max", stats.max());
    }
    w.endObject();
}

const std::string &
JsonWriter::str() const
{
    if (!stack_.empty())
        panic("JsonWriter: document has unclosed containers");
    return out_;
}

// ------------------------------------------------------------ parsing

double
JsonValue::asNumber() const
{
    if (kind_ != Kind::Number)
        panic("JsonValue: asNumber on non-number");
    return num_;
}

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        panic("JsonValue: asBool on non-bool");
    return bool_;
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        panic("JsonValue: asString on non-string");
    return str_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (kind_ != Kind::Array)
        panic("JsonValue: items on non-array");
    return items_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (kind_ != Kind::Object)
        panic("JsonValue: members on non-object");
    return members_;
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

/**
 * Recursive-descent parser over the JSON subset the deterministic
 * writer emits (which is plain standard JSON; no extensions).
 */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    bool
    parse(JsonValue &out, std::string *error)
    {
        bool ok = parseValue(out) && (skipWs(), pos_ == text_.size());
        if (!ok && error) {
            *error = "JSON parse error near offset " +
                     std::to_string(pos_) + ": " + err_;
        }
        return ok;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    fail(const char *what)
    {
        if (err_.empty())
            err_ = what;
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("unknown literal");
        pos_ += word.size();
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
              case '\\':
              case '/':
                out += esc;
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // The writer only escapes control characters, which
                // are single-byte; encode the general case as UTF-8.
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xc0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (cp & 0x3f));
                }
                break;
              }
              default:
                return fail("bad escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start)
            return fail("expected number");
        const std::string token(text_.substr(start, pos_ - start));
        char *end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size())
            return fail("malformed number");
        out.kind_ = JsonValue::Kind::Number;
        out.num_ = v;
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out.kind_ = JsonValue::Kind::Object;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_++] != ':')
                    return fail("expected ':'");
                JsonValue v;
                if (!parseValue(v))
                    return false;
                out.members_.emplace_back(std::move(key), std::move(v));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                const char d = text_[pos_++];
                if (d == '}')
                    return true;
                if (d != ',')
                    return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos_;
            out.kind_ = JsonValue::Kind::Array;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            for (;;) {
                JsonValue v;
                if (!parseValue(v))
                    return false;
                out.items_.push_back(std::move(v));
                skipWs();
                if (pos_ >= text_.size())
                    return fail("unterminated array");
                const char d = text_[pos_++];
                if (d == ']')
                    return true;
                if (d != ',')
                    return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            std::string str;
            if (!parseString(str))
                return false;
            out.kind_ = JsonValue::Kind::String;
            out.str_ = std::move(str);
            return true;
        }
        if (c == 't') {
            if (!literal("true"))
                return false;
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = true;
            return true;
        }
        if (c == 'f') {
            if (!literal("false"))
                return false;
            out.kind_ = JsonValue::Kind::Bool;
            out.bool_ = false;
            return true;
        }
        if (c == 'n') {
            if (!literal("null"))
                return false;
            out.kind_ = JsonValue::Kind::Null;
            return true;
        }
        return parseNumber(out);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string err_;
};

bool
parseJson(std::string_view text, JsonValue &out, std::string *error)
{
    out = JsonValue{};
    return JsonParser(text).parse(out, error);
}

} // namespace llcf
