/**
 * @file
 * A small fixed-size worker pool for fanning independent experiment
 * trials across threads.
 *
 * Simulated Machines are single-threaded by design, so parallelism in
 * this codebase lives one level up: each trial owns its whole world
 * (machine, session, RNG stream) and trials only meet again at
 * aggregation time.  The pool therefore needs no futures or result
 * channels — parallelFor indexes a preallocated output slot per trial.
 */

#ifndef LLCF_HARNESS_THREAD_POOL_HH
#define LLCF_HARNESS_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace llcf {

/**
 * Fixed-size thread pool with a shared FIFO queue.
 *
 * Jobs may be submitted from any thread.  Worker exceptions are
 * captured and rethrown (first one wins) from wait()/the destructor's
 * caller via rethrowIfFailed(), never swallowed.
 */
class ThreadPool
{
  public:
    /** Spawn @p threads workers. @pre threads > 0 */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue, joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned threadCount() const { return static_cast<unsigned>(workers_.size()); }

    /** Enqueue one job. */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished. */
    void wait();

    /** Rethrow the first exception any job raised (if any). */
    void rethrowIfFailed();

    /**
     * Run fn(i) for every i in [0, n), spread over the pool, and
     * block until all complete.  Rethrows the first job exception.
     * Iteration order across workers is unspecified; callers must
     * write results into per-index slots to stay deterministic.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;

    std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable allIdle_;
    std::size_t inFlight_ = 0; //!< queued + currently running jobs
    bool stopping_ = false;
    std::exception_ptr firstError_;
};

/**
 * Worker count to use: @p requested if non-zero, else the LLCF_THREADS
 * environment override, else the hardware concurrency (min 1).
 */
unsigned resolveThreadCount(unsigned requested = 0);

} // namespace llcf

#endif // LLCF_HARNESS_THREAD_POOL_HH
