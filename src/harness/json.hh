/**
 * @file
 * Minimal streaming JSON writer for machine-readable experiment
 * output (the BENCH_*.json files).
 *
 * The writer emits members in exactly the order they are written and
 * formats numbers deterministically, so two runs that record the same
 * aggregates produce byte-identical files — the property the harness
 * determinism tests assert across thread counts.
 */

#ifndef LLCF_HARNESS_JSON_HH
#define LLCF_HARNESS_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hh"

namespace llcf {

/**
 * Append-only JSON document builder.
 *
 * Usage: beginObject()/key()/value() calls mirroring the document
 * structure; commas and indentation are inserted automatically.
 * Structural misuse (e.g. a value without a key inside an object)
 * trips a panic — documents are built by trusted experiment code.
 */
class JsonWriter
{
  public:
    JsonWriter();

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Member key; must be inside an object. */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(bool v);
    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }

    /** Explicit JSON null. */
    JsonWriter &null();

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    member(std::string_view k, T v)
    {
        key(k);
        return value(v);
    }

    /** Finished document. @pre all containers closed */
    const std::string &str() const;

  private:
    enum class Frame { Object, Array };

    /** Comma/newline/indent before the next element as needed. */
    void prepareValue();

    void indent();

    std::string out_;
    std::vector<Frame> stack_;
    std::vector<bool> hasElems_; //!< parallel to stack_
    bool keyPending_ = false;
};

/**
 * A parsed JSON value.  Object members preserve document order, the
 * property the deterministic writer above guarantees, so a
 * write-parse round trip is order-faithful.  Used by the perf gate
 * (bench_hotpath --smoke) to read checked-in BENCH_*.json baselines.
 */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isNumber() const { return kind_ == Kind::Number; }

    /** Numeric value. @pre isNumber() (panics otherwise) */
    double asNumber() const;

    /** Boolean value. @pre kind() == Bool */
    bool asBool() const;

    /** String value. @pre kind() == String */
    const std::string &asString() const;

    /** Array elements. @pre isArray() */
    const std::vector<JsonValue> &items() const;

    /** Object members in document order. @pre isObject() */
    const std::vector<std::pair<std::string, JsonValue>> &members() const;

    /** Object member by key, or nullptr. @pre isObject() */
    const JsonValue *find(std::string_view key) const;

    /**
     * Walk a path of object keys, e.g. find("metrics", "mean").
     * Returns nullptr as soon as a key is missing or a non-object is
     * traversed.
     */
    template <typename... Rest>
    const JsonValue *
    find(std::string_view key, Rest... rest) const
    {
        const JsonValue *v = find(key);
        return v ? v->find(rest...) : nullptr;
    }

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/**
 * Parse a complete JSON document (object/array/scalar with only
 * trailing whitespace after it).
 *
 * @return true and fills @p out on success; false and fills @p error
 *         (when non-null) with a position-annotated message otherwise.
 */
bool parseJson(std::string_view text, JsonValue &out,
               std::string *error = nullptr);

/**
 * Read and parse a JSON file (e.g. a checked-in BENCH_*.json
 * baseline a CI gate compares against).
 *
 * @return true and fills @p out on success; false and fills @p error
 *         (when non-null) with an "unreadable file" or parse message
 *         otherwise.
 */
bool loadJsonFile(const std::string &path, JsonValue &out,
                  std::string *error = nullptr);

/** JSON string escaping (control chars, quote, backslash). */
std::string jsonEscape(std::string_view s);

/**
 * Serialise a SampleStats aggregate the way every BENCH_*.json
 * stores one: {count, mean, stddev, min, p10, median, p90, max}.
 * An *empty* aggregate — e.g. the bit-error rate of an all-miss
 * end-to-end run — keeps count (0) and writes explicit nulls for
 * mean/stddev while omitting the order statistics, so no NaN or
 * garbage quantile ever reaches a JSON document.
 */
void writeStatsObject(JsonWriter &w, const SampleStats &stats);

/**
 * Same object shape for a StreamingStats aggregate.  While the
 * accumulator is still in its exact head phase (all committed smoke
 * fleets are) the emitted bytes match the SampleStats overload.
 */
void writeStatsObject(JsonWriter &w, const StreamingStats &stats);

/**
 * Format a double the way the harness stores it: shortest form that
 * round-trips ("%.17g" collapsed when fewer digits suffice), with
 * non-finite values mapped to null per JSON rules.
 */
std::string jsonNumber(double v);

} // namespace llcf

#endif // LLCF_HARNESS_JSON_HH
