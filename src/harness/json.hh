/**
 * @file
 * Minimal streaming JSON writer for machine-readable experiment
 * output (the BENCH_*.json files).
 *
 * The writer emits members in exactly the order they are written and
 * formats numbers deterministically, so two runs that record the same
 * aggregates produce byte-identical files — the property the harness
 * determinism tests assert across thread counts.
 */

#ifndef LLCF_HARNESS_JSON_HH
#define LLCF_HARNESS_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace llcf {

/**
 * Append-only JSON document builder.
 *
 * Usage: beginObject()/key()/value() calls mirroring the document
 * structure; commas and indentation are inserted automatically.
 * Structural misuse (e.g. a value without a key inside an object)
 * trips a panic — documents are built by trusted experiment code.
 */
class JsonWriter
{
  public:
    JsonWriter();

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Member key; must be inside an object. */
    JsonWriter &key(std::string_view k);

    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(bool v);
    JsonWriter &value(std::string_view v);
    JsonWriter &value(const char *v) { return value(std::string_view(v)); }

    /** key() + value() in one call. */
    template <typename T>
    JsonWriter &
    member(std::string_view k, T v)
    {
        key(k);
        return value(v);
    }

    /** Finished document. @pre all containers closed */
    const std::string &str() const;

  private:
    enum class Frame { Object, Array };

    /** Comma/newline/indent before the next element as needed. */
    void prepareValue();

    void indent();

    std::string out_;
    std::vector<Frame> stack_;
    std::vector<bool> hasElems_; //!< parallel to stack_
    bool keyPending_ = false;
};

/** JSON string escaping (control chars, quote, backslash). */
std::string jsonEscape(std::string_view s);

/**
 * Format a double the way the harness stores it: shortest form that
 * round-trips ("%.17g" collapsed when fewer digits suffice), with
 * non-finite values mapped to null per JSON rules.
 */
std::string jsonNumber(double v);

} // namespace llcf

#endif // LLCF_HARNESS_JSON_HH
