#include "experiment.hh"

#include <cstdio>
#include <utility>

#include "common/options.hh"
#include "harness/thread_pool.hh"

namespace llcf {

void
TrialRecorder::metric(std::string_view name, double v)
{
    metrics_.emplace_back(std::string(name), v);
}

void
TrialRecorder::outcome(std::string_view name, bool success)
{
    outcomes_.emplace_back(std::string(name), success);
}

const SampleStats *
ExperimentResult::metric(std::string_view name) const
{
    for (const auto &[n, stats] : metrics_) {
        if (n == name)
            return &stats;
    }
    return nullptr;
}

const SuccessRate *
ExperimentResult::outcome(std::string_view name) const
{
    for (const auto &[n, sr] : outcomes_) {
        if (n == name)
            return &sr;
    }
    return nullptr;
}

void
ExperimentResult::writeJson(JsonWriter &w) const
{
    w.beginObject();
    writeJsonMembers(w);
    w.endObject();
}

void
ExperimentResult::writeJsonMembers(JsonWriter &w) const
{
    w.member("name", name_);
    w.member("trials", static_cast<std::uint64_t>(trials_));
    w.member("seed", masterSeed_);
    w.key("metrics").beginObject();
    for (const auto &[name, stats] : metrics_) {
        w.key(name);
        writeStatsObject(w, stats);
    }
    w.endObject();
    w.key("outcomes").beginObject();
    for (const auto &[name, sr] : outcomes_) {
        w.key(name).beginObject();
        w.member("trials", static_cast<std::uint64_t>(sr.trials()));
        w.member("successes", static_cast<std::uint64_t>(sr.successes()));
        w.member("rate", sr.rate());
        w.endObject();
    }
    w.endObject();
}

ExperimentRunner::ExperimentRunner(ExperimentConfig cfg)
    : cfg_(std::move(cfg))
{
}

ExperimentResult
ExperimentRunner::run(const TrialFn &fn) const
{
    const unsigned threads = resolveThreadCount(cfg_.threads);

    // One slot per trial; workers never touch shared aggregates.
    std::vector<TrialRecorder> slots(cfg_.trials);

    ThreadPool pool(threads);
    pool.parallelFor(cfg_.trials, [&](std::size_t i) {
        TrialContext ctx{i, streamSeed(cfg_.masterSeed, i),
                         Rng::forStream(cfg_.masterSeed, i)};
        fn(ctx, slots[i]);
    });

    ExperimentResult result;
    result.name_ = cfg_.name;
    result.trials_ = cfg_.trials;
    result.threadsUsed_ = threads;
    result.masterSeed_ = cfg_.masterSeed;

    // Merge in trial order: aggregate content and key order are then
    // functions of (seed, trials) alone, independent of scheduling.
    auto statsFor = [&result](const std::string &name) -> SampleStats & {
        for (auto &[n, stats] : result.metrics_) {
            if (n == name)
                return stats;
        }
        result.metrics_.emplace_back(name, SampleStats{});
        return result.metrics_.back().second;
    };
    auto rateFor = [&result](const std::string &name) -> SuccessRate & {
        for (auto &[n, sr] : result.outcomes_) {
            if (n == name)
                return sr;
        }
        result.outcomes_.emplace_back(name, SuccessRate{});
        return result.outcomes_.back().second;
    };
    for (const auto &slot : slots) {
        for (const auto &[name, v] : slot.metrics_)
            statsFor(name).add(v);
        for (const auto &[name, ok] : slot.outcomes_)
            rateFor(name).add(ok);
    }
    return result;
}

ExperimentSuite::ExperimentSuite(std::string bench)
    : bench_(std::move(bench))
{
}

void
ExperimentSuite::contextValue(std::string key, double v)
{
    contextValues_.emplace_back(std::move(key), v);
}

void
ExperimentSuite::add(ExperimentResult result)
{
    results_.push_back(std::move(result));
}

std::string
ExperimentSuite::toJson() const
{
    JsonWriter w;
    w.beginObject();
    w.key("context").beginObject();
    w.member("bench", bench_);
    w.member("base_seed", baseSeed());
    w.member("full_scale", fullScale());
    for (const auto &[key, v] : contextValues_)
        w.member(key, v);
    w.endObject();
    w.key("benchmarks").beginArray();
    for (const auto &r : results_)
        r.writeJson(w);
    w.endArray();
    w.endObject();
    return w.str();
}

std::string
ExperimentSuite::writeFile(const std::string &path) const
{
    return writeBenchDocument(bench_, toJson(), path);
}

std::string
writeBenchDocument(const std::string &bench, const std::string &doc,
                   const std::string &path)
{
    std::string target = path;
    if (target.empty())
        target = envString("LLCF_JSON_OUT", "BENCH_" + bench + ".json");
    std::FILE *f = std::fopen(target.c_str(), "w");
    if (!f)
        return "";
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) ==
                        doc.size() &&
                    std::fputc('\n', f) != EOF;
    std::fclose(f);
    return ok ? target : "";
}

} // namespace llcf
