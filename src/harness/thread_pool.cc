#include "thread_pool.hh"

#include <atomic>
#include <memory>

#include "common/log.hh"
#include "common/options.hh"

namespace llcf {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        panic("ThreadPool: zero workers requested");
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (stopping_)
            panic("ThreadPool: submit after shutdown");
        queue_.push_back(std::move(job));
        ++inFlight_;
    }
    workAvailable_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workAvailable_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            job();
        } catch (...) {
            std::unique_lock<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        {
            std::unique_lock<std::mutex> lock(mutex_);
            if (--inFlight_ == 0)
                allIdle_.notify_all();
        }
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allIdle_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::rethrowIfFailed()
{
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        err = firstError_;
        firstError_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    // One shared cursor instead of n queue entries: trials are usually
    // far more numerous than workers and the queue lock would serialise
    // very short trials.
    auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
    const unsigned lanes =
        static_cast<unsigned>(std::min<std::size_t>(n, threadCount()));
    for (unsigned w = 0; w < lanes; ++w) {
        submit([cursor, n, &fn] {
            for (;;) {
                const std::size_t i =
                    cursor->fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                fn(i);
            }
        });
    }
    wait();
    rethrowIfFailed();
}

unsigned
resolveThreadCount(unsigned requested)
{
    if (requested > 0)
        return requested;
    const std::uint64_t env = envU64("LLCF_THREADS", 0);
    if (env > 0)
        return static_cast<unsigned>(env);
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace llcf
