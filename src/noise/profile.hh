/**
 * @file
 * Environment noise profiles.
 *
 * A NoiseProfile captures everything that distinguishes a quiescent
 * local machine from a busy Cloud Run host in the paper's Section 4.3:
 *
 *  - the rate of background (other-tenant) accesses per LLC/SF set
 *    (Figure 2: ~11.5 /ms/set on Cloud Run vs ~0.29 /ms/set locally),
 *  - slower memory operations due to contention (sequential and
 *    parallel TestEviction run 26.9% / 42.1% faster locally), and
 *  - occasional interrupts / context switches producing latency
 *    outliers (> 20,000 cycles, excluded in the paper's Table 5).
 */

#ifndef LLCF_NOISE_PROFILE_HH
#define LLCF_NOISE_PROFILE_HH

#include <string>

#include "common/types.hh"

namespace llcf {

/**
 * Describes the background activity level of a simulated host.
 */
struct NoiseProfile
{
    std::string name = "quiescent-local";

    /**
     * Background LLC/SF accesses per set per millisecond by other
     * tenants and system processes (paper Figure 2).
     */
    double accessesPerSetPerMs = 0.29;

    /**
     * Fraction of background accesses that allocate a snoop-filter
     * entry (ordinary private-data accesses); the rest land in the
     * LLC (shared/evicted-reused lines).
     */
    double sfFraction = 0.75;

    /**
     * Burstiness: each noise arrival brings Geometric(1/burstMean)
     * extra accesses to nearby activity.  1.0 = pure Poisson.
     */
    double burstMean = 1.0;

    /** Multiplier on memory-hierarchy latencies due to contention. */
    double memLatencyMul = 1.0;

    /** Multiplier on sustained miss throughput cost (bandwidth). */
    double memThroughputMul = 1.0;

    /** Lognormal-ish jitter stddev as a fraction of each latency. */
    double latencyJitter = 0.02;

    /** Interrupt / context-switch rate per cycle of attacker time. */
    double interruptRate = 1e-9;

    /** Mean cost of one interrupt in cycles. */
    double interruptCostMean = 30000.0;

    /** Background accesses per set per cycle (derived). */
    double
    accessesPerSetPerCycle() const
    {
        return accessesPerSetPerMs / (kCpuGhz * 1e6);
    }
};

/** Quiescent local machine (paper's "Quiescent Local" rows). */
NoiseProfile quiescentLocal();

/** Busy Cloud Run host (paper's "Cloud Run" rows). */
NoiseProfile cloudRun();

/**
 * Cloud Run during the 3-5 am "quiet hours": the paper found load
 * barely drops (server consolidation keeps hosts busy), so this is
 * only marginally quieter.
 */
NoiseProfile cloudRunQuietHours();

/** A profile with a custom access rate, derived from cloudRun(). */
NoiseProfile customCloud(double accesses_per_set_per_ms);

/**
 * A perfectly deterministic environment: no background accesses, no
 * timing jitter, no interrupts.  Not one of the paper's measured
 * environments — used by regression scenarios and unit tests that
 * need tight tolerance bands.
 */
NoiseProfile silent();

/**
 * Look up a profile by its name field ("quiescent-local",
 * "cloud-run", "cloud-run-3-5am", "silent").
 * @return true and fills @p out on a known name.
 */
bool noiseProfileByName(const std::string &name, NoiseProfile &out);

} // namespace llcf

#endif // LLCF_NOISE_PROFILE_HH
