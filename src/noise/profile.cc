#include "profile.hh"

#include <utility>

namespace llcf {

NoiseProfile
quiescentLocal()
{
    NoiseProfile p;
    p.name = "quiescent-local";
    p.accessesPerSetPerMs = 0.29;
    p.sfFraction = 0.75;
    p.burstMean = 1.2;
    p.memLatencyMul = 1.0;
    p.memThroughputMul = 1.0;
    p.latencyJitter = 0.02;
    p.interruptRate = 5e-10;   // ~1 per ms of CPU time
    p.interruptCostMean = 25000.0;
    return p;
}

NoiseProfile
cloudRun()
{
    NoiseProfile p;
    p.name = "cloud-run";
    p.accessesPerSetPerMs = 11.5;
    p.sfFraction = 0.75;
    p.burstMean = 1.6;
    // Calibrated so sequential/parallel TestEviction are ~27%/42%
    // slower than the local profile (paper Section 4.3).
    p.memLatencyMul = 1.37;
    p.memThroughputMul = 1.73;
    p.latencyJitter = 0.08;
    p.interruptRate = 2e-9;    // ~4 per ms of CPU time
    p.interruptCostMean = 30000.0;
    return p;
}

NoiseProfile
cloudRunQuietHours()
{
    // The paper observed no significant variation at 3-5 am, which it
    // attributes to server consolidation; model a marginal reduction.
    NoiseProfile p = cloudRun();
    p.name = "cloud-run-3-5am";
    p.accessesPerSetPerMs = 11.0;
    return p;
}

NoiseProfile
customCloud(double accesses_per_set_per_ms)
{
    NoiseProfile p = cloudRun();
    p.name = "custom-cloud";
    p.accessesPerSetPerMs = accesses_per_set_per_ms;
    return p;
}

NoiseProfile
silent()
{
    NoiseProfile p;
    p.name = "silent";
    p.accessesPerSetPerMs = 0.0;
    p.burstMean = 1.0;
    p.latencyJitter = 0.0;
    p.interruptRate = 0.0;
    return p;
}

bool
noiseProfileByName(const std::string &name, NoiseProfile &out)
{
    for (NoiseProfile p : {quiescentLocal(), cloudRun(),
                           cloudRunQuietHours(), silent()}) {
        if (p.name == name) {
            out = std::move(p);
            return true;
        }
    }
    return false;
}

} // namespace llcf
