#!/usr/bin/env bash
# The repository's static-analysis gate, runnable locally exactly as
# CI runs it (the static-analysis job):
#
#   1. detlint — the determinism-contract linter (tools/detlint/):
#      banned constructs (rand/wallclock/getenv/unordered-iter/
#      float-format/thread-id) plus header and doc hygiene.  Any
#      finding fails the gate.
#   2. clang-tidy — general C++ hygiene over the compile database
#      (.clang-tidy).  Warnings are surfaced in the log; only the
#      WarningsAsErrors subset and parse errors fail the gate.
#      Skipped with a notice when clang-tidy is not installed, so
#      the script stays runnable on minimal dev containers.
#
# Usage:
#   scripts/run_static_analysis.sh [build-dir]
#
# The build dir (default: build) supplies the detlint binary and
# compile_commands.json; both are built/configured on demand.
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build=${1:-build}

fail() {
    echo "run_static_analysis: $*" >&2
    exit 1
}

cd "$repo_root"

# ------------------------------------------------------------ configure
if [ ! -f "$build/CMakeCache.txt" ]; then
    echo "== configuring $build =="
    cmake -B "$build" -S "$repo_root" > /dev/null
fi

# -------------------------------------------------------------- detlint
echo "== detlint (determinism contract) =="
cmake --build "$build" --target detlint > /dev/null
"$build/tools/detlint/detlint" --root="$repo_root"

# ----------------------------------------------------------- clang-tidy
if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "== clang-tidy not installed; skipping (CI runs it) =="
    exit 0
fi

echo "== clang-tidy (.clang-tidy, compile database) =="
[ -f "$build/compile_commands.json" ] || \
    fail "$build/compile_commands.json missing; configure with" \
         "CMAKE_EXPORT_COMPILE_COMMANDS (the default here)"

# Only translation units in the compile database are analyzable;
# that skips the detlint fixture corpus (never compiled) by
# construction.
jobs=$(nproc 2> /dev/null || echo 4)
git ls-files 'src/*.cc' 'bench/*.cc' 'tests/test_*.cc' \
    'tools/*.cc' |
    xargs -P "$jobs" -n 8 clang-tidy -p "$build" --quiet

echo "static analysis: clean"
