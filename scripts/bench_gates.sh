#!/usr/bin/env bash
# The repository's bench regression gates, runnable locally exactly as
# CI runs them.  Each gate compares freshly simulated output against
# the committed BENCH_*.json baselines and/or demands byte-identical
# JSON across worker-thread counts (the determinism contract).
#
# Usage:
#   scripts/bench_gates.sh <build-dir> [gate...]
#   scripts/bench_gates.sh --twin <scalar-build-dir> <simd-build-dir>
#
# With no gate names, every gate runs in order.  Gates:
#   harness     bench_fig2 / bench_table4 1-vs-8-thread byte identity
#   matrix      bench_matrix smoke: 1v8 identity, counters identity,
#               bad-selection must-fail
#   hotpath     bench_hotpath smoke vs BENCH_hotpath.json
#   scalar-flip LLCF_SCALAR_TAGS=1 runs match the vectorized bytes
#   e2e         bench_e2e smoke vs BENCH_e2e.json + 1v8 identity
#   resume      campaign interrupt/resume byte identity (fork path)
#   fullscale   reduced fleet vs BENCH_fullscale.json bands
#   calib       bench_calib smoke vs BENCH_calib.json + 1v8 identity
#   defense     bench_defense smoke vs BENCH_defense.json + 1v8
#               identity + the kill-cell hard gate
#   traffic     bench_traffic smoke vs BENCH_traffic.json + 1v8
#               identity + the AES-nibble / starved-cell /
#               rotation-epoch hard gates
#
# --twin mode runs the cross-build byte-identity check instead: two
# build trees of the same commit (scalar and SIMD tag-scan kernels)
# must emit byte-identical bench JSON.
#
# Exits non-zero on the first failing gate.  Requires the build dir to
# contain the bench executables (cmake --build <dir>).
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)

fail() {
    echo "bench_gates: $*" >&2
    exit 1
}

# ---------------------------------------------------------------- twin
if [ "${1:-}" = "--twin" ]; then
    [ $# -eq 3 ] || fail "--twin needs <scalar-build-dir> <simd-build-dir>"
    scalar=$(cd "$2" && pwd)
    simd=$(cd "$3" && pwd)
    echo "== gate: twin (cross-build byte identity) =="
    "$simd/bench_hotpath" --smoke \
        --json-out="$simd/BENCH_hotpath.json" > /dev/null
    cmp "$scalar/BENCH_hotpath.json" "$simd/BENCH_hotpath.json"
    "$scalar/bench_matrix" --smoke --threads=8 \
        --json-out="$scalar/BENCH_scenarios.json" > /dev/null
    "$simd/bench_matrix" --smoke --threads=8 \
        --json-out="$simd/BENCH_scenarios.json" > /dev/null
    cmp "$scalar/BENCH_scenarios.json" "$simd/BENCH_scenarios.json"
    echo "twin gate: scalar and SIMD builds byte-identical"
    exit 0
fi

# ------------------------------------------------------------- regular
[ $# -ge 1 ] || fail "usage: bench_gates.sh <build-dir> [gate...]"
build=$(cd "$1" && pwd)
shift
gates=("$@")
if [ ${#gates[@]} -eq 0 ]; then
    gates=(harness matrix hotpath scalar-flip e2e resume fullscale
           calib defense traffic)
fi

cd "$build" || fail "cannot enter build dir $build"

gate_harness() {
    ./bench_fig2 --threads=1 --trials=2 --json-out=fig2_t1.json \
        > /dev/null
    ./bench_fig2 --threads=8 --trials=2 --json-out=fig2_t8.json \
        > /dev/null
    cmp fig2_t1.json fig2_t8.json
    LLCF_WS_OFFSETS=2 ./bench_table4 --threads=1 --trials=1 \
        --json-out=t4_t1.json > /dev/null
    LLCF_WS_OFFSETS=2 ./bench_table4 --threads=8 --trials=1 \
        --json-out=t4_t8.json > /dev/null
    cmp t4_t1.json t4_t8.json
}

gate_matrix() {
    ./bench_matrix --list
    ./bench_matrix --smoke --threads=1 --json-out=scen_t1.json
    ./bench_matrix --smoke --threads=8 --json-out=scen_t8.json \
        > /dev/null
    cmp scen_t1.json scen_t8.json
    cp scen_t1.json BENCH_scenarios.json
    # Counter metrics obey the same 1-vs-8-thread contract.
    ./bench_matrix --smoke --counters --threads=1 \
        --scenario='build-bins-tiny-*' --json-out=scen_c1.json \
        > /dev/null
    ./bench_matrix --smoke --counters --threads=8 \
        --scenario='build-bins-tiny-*' --json-out=scen_c8.json \
        > /dev/null
    cmp scen_c1.json scen_c8.json
    # A selection that matches nothing must fail, not write an empty
    # suite that looks like a passing run.
    if ./bench_matrix --scenario=, --json-out=empty.json; then
        fail "empty scenario selection unexpectedly succeeded"
    fi
    if ./bench_matrix --scenario=definitely-missing; then
        fail "unknown scenario unexpectedly succeeded"
    fi
}

gate_hotpath() {
    ./bench_hotpath --smoke --json-out=BENCH_hotpath.json \
        --baseline="$repo_root/BENCH_hotpath.json"
}

gate_scalar_flip() {
    # Same binary, scalar tag-scan kernel forced at startup: every
    # simulated byte must match the vectorized runs.
    [ -f BENCH_hotpath.json ] || gate_hotpath
    [ -f BENCH_scenarios.json ] || \
        ./bench_matrix --smoke --threads=8 \
            --json-out=BENCH_scenarios.json > /dev/null
    LLCF_SCALAR_TAGS=1 ./bench_hotpath --smoke \
        --json-out=hotpath_scalar.json > /dev/null
    cmp BENCH_hotpath.json hotpath_scalar.json
    LLCF_SCALAR_TAGS=1 ./bench_matrix --smoke --threads=8 \
        --json-out=scen_scalar.json > /dev/null
    cmp BENCH_scenarios.json scen_scalar.json
}

gate_e2e() {
    ./bench_e2e --list
    # Baseline tolerance gate on the 1-thread run ...
    ./bench_e2e --smoke --threads=1 --json-out=BENCH_e2e.json \
        --baseline="$repo_root/BENCH_e2e.json"
    # ... and the fleet sharding must not change a byte.
    ./bench_e2e --smoke --threads=8 --json-out=e2e_t8.json > /dev/null
    cmp BENCH_e2e.json e2e_t8.json
}

gate_resume() {
    # A 66-victim forked fleet spans two shards.  Interrupt after the
    # first shard at 8 threads (exit code 3 by contract) ...
    rc=0
    ./bench_e2e --scenario=campaign-fork-tiny-silent-96 \
        --trials=66 --threads=8 --checkpoint=cp_resume.json \
        --stop-after-shards=1 || rc=$?
    [ "$rc" -eq 3 ] || fail "interrupt exit code $rc, expected 3"
    [ -f cp_resume.json ] || fail "no checkpoint written"
    # ... resume at 1 thread, and demand the same bytes as an
    # uninterrupted run at yet another thread count.
    ./bench_e2e --scenario=campaign-fork-tiny-silent-96 \
        --trials=66 --threads=1 --checkpoint=cp_resume.json \
        --resume --json-out=e2e_resumed.json > /dev/null
    ./bench_e2e --scenario=campaign-fork-tiny-silent-96 \
        --trials=66 --threads=8 --json-out=e2e_whole.json > /dev/null
    cmp e2e_resumed.json e2e_whole.json
}

gate_fullscale() {
    # The committed BENCH_fullscale.json comes from a 2,000-victim
    # run of the 100k spec; its gate bands are per-victim rates and
    # cycle means, so a 200-victim fleet of the same spec must sit
    # inside them (as must the nightly true 10^5 fleet).
    ./bench_e2e --full-scale --trials=200 --threads=8 \
        --json-out=fullscale_ci.json \
        --baseline="$repo_root/BENCH_fullscale.json"
}

gate_calib() {
    ./bench_calib --list
    # Baseline accuracy/cost gate on the 1-thread run ...
    ./bench_calib --smoke --threads=1 --json-out=BENCH_calib.json \
        --baseline="$repo_root/BENCH_calib.json"
    # ... and trial sharding must not change a byte.
    ./bench_calib --smoke --threads=8 --json-out=calib_t8.json \
        > /dev/null
    cmp BENCH_calib.json calib_t8.json
}

gate_defense() {
    ./bench_defense --list
    # Baseline gate (success rates, attack cost, kill-cell ceiling,
    # undefended-baseline floor) on the 1-thread run ...
    ./bench_defense --smoke --threads=1 --json-out=BENCH_defense.json \
        --baseline="$repo_root/BENCH_defense.json"
    # ... and trial sharding must not change a byte.
    ./bench_defense --smoke --threads=8 --json-out=defense_t8.json \
        > /dev/null
    cmp BENCH_defense.json defense_t8.json
}

gate_traffic() {
    ./bench_traffic --list
    # Baseline gate (success rates, attack cost, the AES nibble
    # floor, the starved-cell explicit miss, the rotation epoch
    # count) on the 1-thread run ...
    ./bench_traffic --smoke --threads=1 --json-out=BENCH_traffic.json \
        --baseline="$repo_root/BENCH_traffic.json"
    # ... and trial sharding must not change a byte.
    ./bench_traffic --smoke --threads=8 --json-out=traffic_t8.json \
        > /dev/null
    cmp BENCH_traffic.json traffic_t8.json
}

for gate in "${gates[@]}"; do
    echo "== gate: $gate =="
    case "$gate" in
      harness) gate_harness ;;
      matrix) gate_matrix ;;
      hotpath) gate_hotpath ;;
      scalar-flip) gate_scalar_flip ;;
      e2e) gate_e2e ;;
      resume) gate_resume ;;
      fullscale) gate_fullscale ;;
      calib) gate_calib ;;
      defense) gate_defense ;;
      traffic) gate_traffic ;;
      *) fail "unknown gate '$gate'" ;;
    esac
done
echo "bench_gates: all gates passed (${gates[*]})"
