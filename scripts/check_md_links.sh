#!/bin/sh
# Verify that every in-repo markdown link resolves to an existing file
# or directory.  External links (http/https/mailto) and pure anchors
# are skipped; anchors on local links are stripped before the check.
# Usage: scripts/check_md_links.sh [root]   (default: repo root)
set -u

root="${1:-$(dirname "$0")/..}"
cd "$root" || exit 2

# Tracked markdown only: scratch notes in ignored build trees do not
# get to fail CI.  Targets are handled line-by-line (never
# word-split), so paths with spaces stay intact.
broken=$(
    git ls-files '*.md' | while IFS= read -r md; do
        dir=$(dirname "$md")
        # Extract the (target) of every [text](target) link, skipping
        # fenced code blocks (example links must not fail CI) and
        # stripping an optional quoted markdown title.
        awk '/^[[:space:]]*```/ { fence = !fence; next } !fence' \
            "$md" |
            grep -o '](\([^)]*\))' | sed 's/^](//; s/)$//' |
            sed 's/[[:space:]]*"[^"]*"$//' |
            while IFS= read -r target; do
                case "$target" in
                  http://*|https://*|mailto:*|'#'*|'') continue ;;
                esac
                path=${target%%#*}
                [ -n "$path" ] || continue
                # Relative to the file; a leading / is repo-root.
                case "$path" in
                  /*) resolved=".$path" ;;
                  *) resolved="$dir/$path" ;;
                esac
                if [ ! -e "$resolved" ]; then
                    printf '%s: broken link -> %s\n' "$md" "$target"
                fi
            done
    done
)

if [ -n "$broken" ]; then
    printf '%s\n' "$broken"
    exit 1
fi
echo "markdown links: all local targets resolve"
exit 0
