/**
 * @file
 * Tests for the exact/streaming statistics layer: Neumaier compensated
 * summation (including the pathological magnitude-spread sets the old
 * naive accumulation got wrong), StreamingStats' head-phase
 * bit-equivalence with SampleStats, its sketch-phase accuracy beyond
 * the head, merge determinism, and exact JSON state round-trips.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "harness/json.hh"

namespace llcf {
namespace {

// ---------------------------------------------- compensated summation

TEST(CompensatedSumTest, ExactOnCancellingMagnitudes)
{
    // The classic Neumaier case: naive left-to-right addition returns
    // 0.0 because 1e100 swallows both unit terms.
    CompensatedSum s;
    for (double v : {1.0, 1e100, 1.0, -1e100})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.value(), 2.0);

    double naive = 0.0;
    for (double v : {1.0, 1e100, 1.0, -1e100})
        naive += v;
    EXPECT_DOUBLE_EQ(naive, 0.0); // documents why compensation exists
}

TEST(CompensatedSumTest, MergePreservesCompensation)
{
    CompensatedSum a, b;
    a.add(1.0);
    a.add(1e100);
    b.add(1.0);
    b.add(-1e100);
    a.add(b);
    EXPECT_DOUBLE_EQ(a.value(), 2.0);
}

// ----------------------------- SampleStats regression (satellite fix)

TEST(SampleStatsPrecision, MeanSurvivesMagnitudeSpread)
{
    // Regression for the naive-summation bug: a fleet-sized metric
    // mixing huge and tiny samples must not lose the tiny ones.
    SampleStats s;
    for (double v : {1.0, 1e16, 3.0, -1e16})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.sum(), 4.0);
    EXPECT_DOUBLE_EQ(s.mean(), 1.0);
}

TEST(SampleStatsPrecision, StddevIsCompensatedToo)
{
    // A large common offset must cancel exactly in the two-pass
    // stddev: these four samples have the same spread as {1,2,3,4}.
    SampleStats big, small;
    for (double v : {1.0, 2.0, 3.0, 4.0}) {
        small.add(v);
        big.add(v + 1e12);
    }
    EXPECT_NEAR(big.stddev(), small.stddev(), 1e-6);
}

// --------------------------------- StreamingStats: exact head phase

TEST(StreamingStatsTest, HeadPhaseMatchesSampleStatsBitForBit)
{
    // Below the head capacity the streaming accumulator must answer
    // every query with the *identical* doubles SampleStats produces —
    // that equivalence is what keeps committed BENCH bytes stable.
    Rng rng(7);
    SampleStats exact;
    StreamingStats streaming;
    for (int i = 0; i < 64; ++i) {
        const double v = rng.nextDouble() * 1e9 - 4e8;
        exact.add(v);
        streaming.add(v);
    }
    ASSERT_TRUE(streaming.exact());
    EXPECT_EQ(jsonNumber(exact.mean()), jsonNumber(streaming.mean()));
    EXPECT_EQ(jsonNumber(exact.stddev()),
              jsonNumber(streaming.stddev()));
    EXPECT_EQ(exact.min(), streaming.min());
    EXPECT_EQ(exact.max(), streaming.max());
    EXPECT_EQ(jsonNumber(exact.median()),
              jsonNumber(streaming.median()));
    for (double pct : {10.0, 50.0, 90.0, 99.0}) {
        EXPECT_EQ(jsonNumber(exact.percentile(pct)),
                  jsonNumber(streaming.percentile(pct)))
            << pct;
    }
}

TEST(StreamingStatsTest, SketchPhaseTracksExactStats)
{
    Rng rng(11);
    SampleStats exact;
    StreamingStats streaming;
    for (int i = 0; i < 20000; ++i) {
        const double v = rng.nextDouble() * 1000.0;
        exact.add(v);
        streaming.add(v);
    }
    EXPECT_FALSE(streaming.exact());
    EXPECT_EQ(streaming.count(), 20000u);
    // Sum and moments are exact/compensated even in sketch phase.
    EXPECT_DOUBLE_EQ(streaming.sum(), exact.sum());
    EXPECT_NEAR(streaming.mean(), exact.mean(), 1e-9);
    EXPECT_NEAR(streaming.stddev(), exact.stddev(), 1e-6);
    EXPECT_EQ(streaming.min(), exact.min());
    EXPECT_EQ(streaming.max(), exact.max());
    // Quantiles come from the compaction sketch: rank error is
    // bounded, not zero.  2% of the value range is ample slack.
    for (double pct : {10.0, 50.0, 90.0}) {
        EXPECT_NEAR(streaming.percentile(pct), exact.percentile(pct),
                    20.0)
            << pct;
    }
}

TEST(StreamingStatsTest, MergeOfExactOtherEqualsSequentialAdd)
{
    // Folding shard B's streaming aggregate into shard A must equal
    // having streamed all samples through one accumulator, whenever B
    // is still in its exact phase (the campaign fold path replays B's
    // head verbatim).
    Rng rng(3);
    std::vector<double> all;
    for (int i = 0; i < 200; ++i)
        all.push_back(rng.nextDouble() * 50.0);

    StreamingStats sequential;
    for (double v : all)
        sequential.add(v);

    StreamingStats a, b;
    for (std::size_t i = 0; i < all.size(); ++i)
        (i < 140 ? a : b).add(all[i]);
    ASSERT_TRUE(b.exact());
    a.merge(b);

    EXPECT_EQ(a.count(), sequential.count());
    EXPECT_EQ(jsonNumber(a.sum()), jsonNumber(sequential.sum()));
    EXPECT_EQ(jsonNumber(a.mean()), jsonNumber(sequential.mean()));
    EXPECT_EQ(a.min(), sequential.min());
    EXPECT_EQ(a.max(), sequential.max());
    EXPECT_EQ(jsonNumber(a.median()), jsonNumber(sequential.median()));
}

TEST(StreamingStatsTest, StateRoundTripsExactly)
{
    Rng rng(23);
    StreamingStats original;
    for (int i = 0; i < 5000; ++i)
        original.add(rng.nextDouble() * 1e6);

    StreamingStats restored =
        StreamingStats::fromState(original.state());
    EXPECT_EQ(restored.count(), original.count());
    EXPECT_EQ(jsonNumber(restored.sum()), jsonNumber(original.sum()));
    EXPECT_EQ(jsonNumber(restored.mean()),
              jsonNumber(original.mean()));
    EXPECT_EQ(jsonNumber(restored.stddev()),
              jsonNumber(original.stddev()));
    EXPECT_EQ(jsonNumber(restored.median()),
              jsonNumber(original.median()));

    // The restored accumulator must *continue* identically, not just
    // answer queries: resume-time folding depends on it.
    for (int i = 0; i < 100; ++i) {
        const double v = static_cast<double>(i) * 3.25;
        original.add(v);
        restored.add(v);
    }
    EXPECT_EQ(jsonNumber(restored.median()),
              jsonNumber(original.median()));
    EXPECT_EQ(jsonNumber(restored.stddev()),
              jsonNumber(original.stddev()));
}

// ------------------------------------------------------- SuccessRate

TEST(SuccessRateTest, CountsConstructorAndMerge)
{
    SuccessRate a(10, 4), b(6, 6);
    a.merge(b);
    EXPECT_EQ(a.trials(), 16u);
    EXPECT_EQ(a.successes(), 10u);
    EXPECT_DOUBLE_EQ(a.rate(), 10.0 / 16.0);
    EXPECT_DEATH(SuccessRate(3, 4), "successes");
}

} // namespace
} // namespace llcf
