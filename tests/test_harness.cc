/**
 * @file
 * Tests for the parallel experiment harness: JSON writer shape,
 * thread-pool behaviour, RNG stream derivation, and — the load-bearing
 * property — bit-identical aggregates regardless of worker count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "harness/experiment.hh"
#include "harness/json.hh"
#include "harness/thread_pool.hh"

namespace llcf {
namespace {

// ------------------------------------------------------------------ JSON

TEST(Json, EscapesAndNumbers)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
    EXPECT_EQ(jsonNumber(0.5), "0.5");
    EXPECT_EQ(jsonNumber(100.0), "100");
    EXPECT_EQ(jsonNumber(1.0 / 0.0), "null");
    // Round-trips exactly even for awkward values.
    const double v = 0.1 + 0.2;
    double back = 0.0;
    std::sscanf(jsonNumber(v).c_str(), "%lf", &back);
    EXPECT_EQ(back, v);
}

TEST(Json, DocumentStructure)
{
    JsonWriter w;
    w.beginObject();
    w.member("name", "x");
    w.member("n", std::uint64_t{3});
    w.key("arr").beginArray().value(1.0).value(2.0).endArray();
    w.key("flags").beginObject().member("ok", true).endObject();
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\n"
              "  \"name\": \"x\",\n"
              "  \"n\": 3,\n"
              "  \"arr\": [\n"
              "    1,\n"
              "    2\n"
              "  ],\n"
              "  \"flags\": {\n"
              "    \"ok\": true\n"
              "  }\n"
              "}");
}

TEST(Json, EmptyContainers)
{
    JsonWriter w;
    w.beginObject();
    w.key("a").beginArray().endArray();
    w.key("o").beginObject().endObject();
    w.endObject();
    EXPECT_EQ(w.str(), "{\n  \"a\": [],\n  \"o\": {}\n}");
}

TEST(Json, ExplicitNullValues)
{
    JsonWriter w;
    w.beginObject();
    w.key("missing").null();
    w.key("arr").beginArray().null().value(1.0).endArray();
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\n"
              "  \"missing\": null,\n"
              "  \"arr\": [\n"
              "    null,\n"
              "    1\n"
              "  ]\n"
              "}");
}

TEST(Json, EmptyStatsSerialiseAsNulls)
{
    // An all-miss experiment leaves aggregates like the bit-error
    // rate empty.  The serialised object must say so explicitly
    // (count 0, null moments) — never NaN text or fabricated zeros.
    SampleStats empty;
    JsonWriter w;
    writeStatsObject(w, empty);
    EXPECT_EQ(w.str(),
              "{\n"
              "  \"count\": 0,\n"
              "  \"mean\": null,\n"
              "  \"stddev\": null\n"
              "}");

    JsonValue parsed;
    ASSERT_TRUE(parseJson(w.str(), parsed));
    ASSERT_NE(parsed.find("mean"), nullptr);
    EXPECT_TRUE(parsed.find("mean")->isNull());
    EXPECT_EQ(parsed.find("min"), nullptr); // order stats omitted
}

TEST(Json, PopulatedStatsKeepTheHistoricalShape)
{
    SampleStats s;
    s.add(0.0);
    s.add(4.0);
    JsonWriter w;
    writeStatsObject(w, s);
    EXPECT_EQ(w.str(),
              "{\n"
              "  \"count\": 2,\n"
              "  \"mean\": 2,\n"
              "  \"stddev\": 2,\n"
              "  \"min\": 0,\n"
              "  \"p10\": 0.4,\n"
              "  \"median\": 2,\n"
              "  \"p90\": 3.6,\n"
              "  \"max\": 4\n"
              "}");
}

// ----------------------------------------------------------- thread pool

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(1000, [&](std::size_t i) { ++hits[i]; });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ActuallyUsesMultipleThreads)
{
    ThreadPool pool(4);
    // Asserts the pool really runs concurrently; the ids never
    // leave this test's stack.
    // detlint: allow(thread-id) -- concurrency assertion only
    std::set<std::thread::id> ids;
    std::mutex m;
    pool.parallelFor(64, [&](std::size_t) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        std::lock_guard<std::mutex> lock(m);
        // detlint: allow(thread-id) -- concurrency assertion only
        ids.insert(std::this_thread::get_id());
    });
    EXPECT_GT(ids.size(), 1u);
}

TEST(ThreadPool, PropagatesTrialExceptions)
{
    ThreadPool pool(2);
    EXPECT_THROW(pool.parallelFor(8,
                                  [](std::size_t i) {
                                      if (i == 5)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
}

TEST(ThreadPool, ResolveThreadCountHonoursEnv)
{
    EXPECT_EQ(resolveThreadCount(3), 3u);
    setenv("LLCF_THREADS", "7", 1);
    EXPECT_EQ(resolveThreadCount(0), 7u);
    EXPECT_EQ(resolveThreadCount(2), 2u); // explicit beats env
    unsetenv("LLCF_THREADS");
    EXPECT_GE(resolveThreadCount(0), 1u);
}

// ------------------------------------------------------------ RNG streams

TEST(RngStreams, PositionalDerivationIsStateless)
{
    // Stream i's seed must not depend on which seeds were queried
    // before it — the harness derives them concurrently.
    const std::uint64_t a = streamSeed(42, 17);
    streamSeed(42, 3);
    streamSeed(7, 17);
    EXPECT_EQ(streamSeed(42, 17), a);
    EXPECT_EQ(Rng::forStream(42, 17).next(), Rng(a).next());
}

TEST(RngStreams, StreamsAreDistinctAcrossMastersAndIndices)
{
    std::set<std::uint64_t> seeds;
    for (std::uint64_t master : {0ull, 1ull, 42ull, ~0ull}) {
        for (std::uint64_t i = 0; i < 256; ++i)
            seeds.insert(streamSeed(master, i));
    }
    EXPECT_EQ(seeds.size(), 4u * 256u);
}

TEST(RngStreams, StreamOutputsDoNotOverlap)
{
    // Adjacent streams of the same master must produce disjoint
    // prefixes (the whole point of splitting: no shared subsequence).
    std::set<std::uint64_t> seen;
    constexpr int kStreams = 32;
    constexpr int kDraws = 256;
    for (int s = 0; s < kStreams; ++s) {
        Rng rng = Rng::forStream(99, static_cast<std::uint64_t>(s));
        for (int d = 0; d < kDraws; ++d)
            seen.insert(rng.next());
    }
    EXPECT_EQ(seen.size(),
              static_cast<std::size_t>(kStreams) * kDraws);
}

TEST(RngStreams, StreamsAreIndividuallyUniformish)
{
    // Cheap sanity: each stream's doubles average near 0.5.
    for (std::uint64_t s = 0; s < 8; ++s) {
        Rng rng = Rng::forStream(1234, s);
        double sum = 0.0;
        for (int i = 0; i < 4000; ++i)
            sum += rng.nextDouble();
        EXPECT_NEAR(sum / 4000.0, 0.5, 0.05);
    }
}

// ------------------------------------------------------------ experiments

/** A stochastic trial body exercising metrics and outcomes. */
void
noisyTrial(TrialContext &ctx, TrialRecorder &rec)
{
    // Draw a variable number of samples so per-trial sample counts
    // differ — a stricter merge-order test than one sample per trial.
    const std::uint64_t n = 1 + ctx.rng.nextBelow(5);
    for (std::uint64_t i = 0; i < n; ++i)
        rec.metric("value", ctx.rng.nextGaussian(10.0, 2.0));
    rec.metric("trial_index", static_cast<double>(ctx.index));
    rec.outcome("success", ctx.rng.nextBool(0.7));
}

ExperimentResult
runNoisy(unsigned threads, std::size_t trials = 64,
         std::uint64_t seed = 7)
{
    ExperimentConfig cfg;
    cfg.name = "noisy";
    cfg.trials = trials;
    cfg.threads = threads;
    cfg.masterSeed = seed;
    return ExperimentRunner(cfg).run(noisyTrial);
}

TEST(Experiment, AggregatesAcrossTrials)
{
    ExperimentResult r = runNoisy(2, 32);
    ASSERT_NE(r.metric("value"), nullptr);
    ASSERT_NE(r.metric("trial_index"), nullptr);
    ASSERT_NE(r.outcome("success"), nullptr);
    EXPECT_EQ(r.metric("trial_index")->count(), 32u);
    EXPECT_EQ(r.outcome("success")->trials(), 32u);
    EXPECT_GE(r.metric("value")->count(), 32u);
    EXPECT_NEAR(r.metric("value")->mean(), 10.0, 1.0);
    EXPECT_EQ(r.metric("nope"), nullptr);
    EXPECT_EQ(r.outcome("nope"), nullptr);
}

TEST(Experiment, DeterministicAcrossThreadCounts)
{
    ExperimentResult serial = runNoisy(1);
    for (unsigned threads : {2u, 8u}) {
        ExperimentResult parallel = runNoisy(threads);
        ASSERT_EQ(parallel.threadsUsed(), threads);

        // Aggregate sample streams identical, in order.
        ASSERT_EQ(parallel.metrics().size(), serial.metrics().size());
        for (std::size_t m = 0; m < serial.metrics().size(); ++m) {
            EXPECT_EQ(parallel.metrics()[m].first,
                      serial.metrics()[m].first);
            EXPECT_EQ(parallel.metrics()[m].second.samples(),
                      serial.metrics()[m].second.samples());
        }
        EXPECT_EQ(parallel.outcome("success")->successes(),
                  serial.outcome("success")->successes());

        // And the serialised form is byte-identical.
        JsonWriter a, b;
        serial.writeJson(a);
        parallel.writeJson(b);
        EXPECT_EQ(a.str(), b.str());
    }
}

TEST(Experiment, SeedChangesResults)
{
    ExperimentResult a = runNoisy(4, 64, 7);
    ExperimentResult b = runNoisy(4, 64, 8);
    EXPECT_NE(a.metric("value")->samples(),
              b.metric("value")->samples());
}

TEST(Experiment, SuiteJsonIsDeterministic)
{
    auto build = [](unsigned threads) {
        ExperimentSuite suite("unit");
        suite.add(runNoisy(threads, 16, 3));
        suite.add(runNoisy(threads, 8, 4));
        return suite.toJson();
    };
    const std::string doc = build(1);
    EXPECT_EQ(build(8), doc);
    EXPECT_NE(doc.find("\"benchmarks\": ["), std::string::npos);
    EXPECT_NE(doc.find("\"bench\": \"unit\""), std::string::npos);
}

TEST(Experiment, SuiteWriteFileRoundTrips)
{
    ExperimentSuite suite("unit");
    suite.add(runNoisy(2, 4, 11));
    const std::string path = "test_harness_out.json";
    ASSERT_EQ(suite.writeFile(path), path);
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::string content;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        content.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_EQ(content, suite.toJson() + "\n");
}

} // namespace
} // namespace llcf
