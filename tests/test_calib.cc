/**
 * @file
 * Tests for the Step-0 blind-topology calibration subsystem: the
 * parameterized slice-hash family (bit-for-bit goldens against the
 * machines' existing hashes), the blind minimal-set reduction, the
 * TopologyProber's accuracy on the deterministic anchor hosts, the
 * blind-session discipline (no geometry before calibration), the
 * per-field oracle comparison report, 1-vs-8-thread byte-identical
 * calibration suite JSON, and the blind-vs-oracle end-to-end
 * regression: a blind campaign still recovers keys on the quiet
 * Skylake-SP scenario, with calibration cycles charged to the
 * per-key cost.
 */

#include <gtest/gtest.h>

#include <iterator>
#include <set>
#include <string>

#include "calib/prober.hh"
#include "campaign/campaign.hh"
#include "scenario/registry.hh"

namespace llcf {
namespace {

const ScenarioSpec &
spec(const char *name)
{
    const ScenarioSpec *s = builtinScenarios().find(name);
    EXPECT_NE(s, nullptr) << name;
    return *s;
}

// ------------------------------------------- slice-hash family

// The family factory must reproduce the machines' inlined hashes
// bit-for-bit: same record, same slice for every address.
TEST(SliceHashFamily, ReproducesMachineHashes)
{
    struct Row
    {
        MachineConfig cfg;
        std::uint64_t seed;
    };
    const Row rows[] = {
        {skylakeSp(28), 42}, {iceLakeSp(26), 42}, {tinyTest(2), 7}};
    NoiseProfile silent;
    ASSERT_TRUE(noiseProfileByName("silent", silent));
    for (const Row &r : rows) {
        Machine m(r.cfg, silent, r.seed);
        auto h = makeSliceHash(r.cfg.sliceHashParams(r.seed));
        ASSERT_EQ(h->slices(), r.cfg.llc.slices);
        for (Addr pa = 0; pa < (1ULL << 22); pa += 0x3fc0)
            EXPECT_EQ(h->slice(pa), m.sliceOf(pa)) << r.cfg.name;
    }
}

// Pinned goldens: the SKL/ICX opaque hashes must never drift across
// refactors (these values were produced by the pre-family hash).
TEST(SliceHashFamily, PinnedGoldens)
{
    const Addr pas[] = {0x0,        0x40,        0x1000,      0x3f7c0,
                        0x7fffffc0, 0x123456780, 0xdeadbeef00};
    const unsigned skl[] = {14, 6, 25, 15, 12, 17, 19};
    const unsigned icx[] = {2, 18, 9, 7, 14, 23, 13};
    auto hs = makeSliceHash(skylakeSp(28).sliceHashParams(42));
    auto hi = makeSliceHash(iceLakeSp(26).sliceHashParams(42));
    for (std::size_t i = 0; i < std::size(pas); ++i) {
        EXPECT_EQ(hs->slice(pas[i]), skl[i]) << i;
        EXPECT_EQ(hi->slice(pas[i]), icx[i]) << i;
    }
}

TEST(SliceHashFamily, XorMatrixMember)
{
    const std::vector<Addr> masks = {0x55555540, 0xaaaaaa80};
    auto h = makeSliceHash(SliceHashParams::xorMatrix(masks));
    XorMatrixSliceHash direct(masks);
    ASSERT_EQ(h->slices(), 4u);
    for (Addr pa = 0; pa < (1ULL << 20); pa += 0x1fc0)
        EXPECT_EQ(h->slice(pa), direct.slice(pa));
}

// ------------------------------------------- blind primitives

struct BlindRigTest : ::testing::Test
{
    BlindRigTest() : rig(spec("calib-tiny-lru-silent"), streamSeed(9, 0))
    {
    }
    ScenarioRig rig;
};

TEST_F(BlindRigTest, SessionStartsWithoutTopology)
{
    EXPECT_FALSE(rig.session->topologyKnown());
    TopologyView v;
    v.wLlc = 4;
    v.wSf = 5;
    v.slices = 2;
    v.uncontrolledIndexBits = 2;
    rig.session->adoptTopology(v);
    ASSERT_TRUE(rig.session->topologyKnown());
    EXPECT_EQ(rig.session->topology().wSf, 5u);
    EXPECT_FALSE(rig.session->topology().fromOracle);
}

TEST_F(BlindRigTest, BlindReductionMeasuresAssociativity)
{
    const Addr ta = rig.pool->at(0, 9);
    auto cands = rig.pool->candidatesAt(9);
    cands.erase(cands.begin());
    auto red = blindReduceToMinimal(
        *rig.session, ta, std::move(cands),
        rig.machine.now() + secToCycles(5.0));
    ASSERT_TRUE(red.success);
    // The minimal size is the true W_LLC, and every member is
    // ground-truth congruent with the target.
    EXPECT_EQ(red.evset.size(), rig.machine.config().llc.ways);
    for (Addr a : red.evset) {
        EXPECT_EQ(rig.machine.sharedSetOf(a),
                  rig.machine.sharedSetOf(ta));
    }
    EXPECT_GT(red.tests, 0u);
}

TEST_F(BlindRigTest, ProberRecoversTinyTopology)
{
    const ScenarioSpec &s = spec("calib-tiny-lru-silent");
    TopologyProber prober(*rig.session, *rig.pool,
                          s.calibrationConfig());
    CalibratedTopology calib = prober.calibrate();
    ASSERT_TRUE(calib.valid);
    const MachineConfig &cfg = rig.machine.config();
    EXPECT_EQ(calib.view.wLlc, cfg.llc.ways);
    EXPECT_EQ(calib.view.wSf, cfg.sf.ways);
    EXPECT_EQ(calib.view.uncertainty(), cfg.sf.uncertainty());
    EXPECT_GT(calib.confidence, 0.0);
    EXPECT_GT(calib.cycles, 0u);
    EXPECT_GT(calib.testEvictions, 0u);
    EXPECT_EQ(calib.hashModel.kind, SliceHashKind::Opaque);
    EXPECT_EQ(calib.hashModel.slices, calib.view.slices);
}

// ------------------------------------------- oracle comparison

TEST(CalibrationReportTest, FieldAccounting)
{
    const MachineConfig cfg = tinyTest(2);
    CalibratedTopology calib;
    calib.valid = true;
    calib.view.wLlc = cfg.llc.ways;
    calib.view.wSf = cfg.sf.ways;
    calib.view.slices = cfg.sf.slices;
    calib.view.uncontrolledIndexBits = cfg.sf.uncontrolledIndexBits();
    CalibrationReport rep = compareToOracle(calib, cfg);
    EXPECT_TRUE(rep.allMatch);
    EXPECT_EQ(rep.matches, rep.fields.size());

    // One wrong field must flip exactly its own accounting.
    calib.view.wSf = cfg.sf.ways + 1;
    rep = compareToOracle(calib, cfg);
    EXPECT_FALSE(rep.allMatch);
    EXPECT_EQ(rep.matches + 1, rep.fields.size());
    for (const CalibrationFieldReport &f : rep.fields) {
        EXPECT_EQ(f.match, std::string(f.field) != "w_sf")
            << f.field;
    }

    // An invalid calibration never reports a full match, even if the
    // guessed numbers happen to agree.
    calib.view.wSf = cfg.sf.ways;
    calib.valid = false;
    EXPECT_FALSE(compareToOracle(calib, cfg).allMatch);
}

// ------------------------------------------- scenario integration

TEST(CalibrateScenarios, RegistrySpansTheCalibrationMatrix)
{
    std::size_t cells = 0;
    std::set<ScenarioMachine> machines;
    std::set<std::string> noises;
    for (const ScenarioSpec &s : builtinScenarios().all()) {
        if (s.stage != ScenarioStage::Calibrate)
            continue;
        ++cells;
        machines.insert(s.machine);
        noises.insert(s.noise);
        EXPECT_TRUE(s.blind()) << s.name;
    }
    EXPECT_GE(cells, 6u);
    EXPECT_TRUE(machines.count(ScenarioMachine::SkylakeSp));
    EXPECT_TRUE(machines.count(ScenarioMachine::IceLakeSp));
    EXPECT_GE(noises.size(), 3u);
    EXPECT_STREQ(scenarioStageName(ScenarioStage::Calibrate),
                 "calibrate");
    // Blind campaigns exist as the oracle campaigns' counterparts.
    EXPECT_TRUE(spec("campaign-blind-skl-quiet-2").blindTopology);
    EXPECT_FALSE(spec("campaign-skl-lru-quiet-1").blind());
}

TEST(CalibrateScenarios, AnchorTrialRecordsTheCanonicalNames)
{
    ExperimentResult res =
        runScenario(spec("calib-tiny-lru-silent"), 2, 1, 42);
    ASSERT_NE(res.outcome("calibrated"), nullptr);
    ASSERT_NE(res.outcome("topology_match"), nullptr);
    ASSERT_NE(res.outcome("w_llc_match"), nullptr);
    ASSERT_NE(res.outcome("w_sf_match"), nullptr);
    ASSERT_NE(res.metric("calib_cycles"), nullptr);
    ASSERT_NE(res.metric("calib_test_evictions"), nullptr);
    // The silent anchor calibrates the way counts every time.
    EXPECT_EQ(res.outcome("calibrated")->rate(), 1.0);
    EXPECT_EQ(res.outcome("w_llc_match")->rate(), 1.0);
    EXPECT_EQ(res.outcome("w_sf_match")->rate(), 1.0);
    EXPECT_GT(res.metric("calib_cycles")->mean(), 0.0);
}

// Any stage can opt into blindness, not just campaigns: a blind
// eviction-set-build trial runs Step 0 first and then succeeds with
// the calibrated topology.
TEST(CalibrateScenarios, BlindEvsetBuildStageCalibratesFirst)
{
    ScenarioSpec s = spec("build-bins-tiny-lru-silent");
    s.name = "build-bins-tiny-lru-silent-blind";
    s.blindTopology = true;
    s.assumedMaxUncertainty = 16;
    s.assumedMaxWays = 8;
    s.calibSamplePages = 96;
    ExperimentResult res = runScenario(s, 2, 1, 42);
    ASSERT_NE(res.outcome("calibrated"), nullptr);
    EXPECT_EQ(res.outcome("calibrated")->rate(), 1.0);
    ASSERT_NE(res.outcome("success"), nullptr);
    EXPECT_EQ(res.outcome("success")->rate(), 1.0);
}

TEST(CalibrateScenarios, SuiteJsonIdenticalAcrossThreadCounts)
{
    const ScenarioSpec &s = spec("calib-tiny-lru-silent");
    ExperimentSuite one("calib"), eight("calib");
    one.add(runScenario(s, 3, 1, 42));
    eight.add(runScenario(s, 3, 8, 42));
    EXPECT_EQ(one.toJson(), eight.toJson());
}

// ------------------------------------------- blind-vs-oracle e2e

// The acceptance regression: with *no* oracle geometry, Step 0 feeds
// Steps 1-3 well enough to recover keys on the quiet Skylake-SP
// campaign, and the calibration cycles are charged to the cost.
TEST(BlindCampaign, RecoversKeysOnQuietSkylake)
{
    KeyRecoveryCampaign campaign(spec("campaign-blind-skl-quiet-2"));
    CampaignResult blind = campaign.run(1, 1, 42);
    EXPECT_EQ(blind.summary.keysRecovered, 1u);
    const StreamingStats *calib =
        blind.aggregate.metric("calib_cycles");
    ASSERT_NE(calib, nullptr);
    EXPECT_GT(calib->mean(), 0.0);
    // Calibration cost is part of the per-key cycle headline.
    const StreamingStats *total =
        blind.aggregate.metric("total_cycles");
    const StreamingStats *build =
        blind.aggregate.metric("build_cycles");
    const StreamingStats *scan = blind.aggregate.metric("scan_cycles");
    const StreamingStats *extract =
        blind.aggregate.metric("extract_cycles");
    ASSERT_NE(total, nullptr);
    EXPECT_NEAR(total->mean(),
                build->mean() + scan->mean() + extract->mean() +
                    calib->mean(),
                1.0);
}

TEST(BlindCampaign, TinySilentFleetMatchesOracleOutcome)
{
    // Oracle and blind fleets on the same host class both come home
    // with keys; the blind one just pays the Step-0 surcharge.
    KeyRecoveryCampaign blind(spec("campaign-blind-tiny-silent-2"));
    CampaignResult res = blind.run(2, 1, 42);
    EXPECT_EQ(res.summary.keysRecovered, 2u);
    EXPECT_EQ(res.summary.fleetSuccessRate, 1.0);
    ASSERT_NE(res.aggregate.outcome("topology_match"), nullptr);
}

} // namespace
} // namespace llcf
