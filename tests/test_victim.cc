/**
 * @file
 * Tests for the victim service: layout and ground truth, the
 * Figure 8 access pattern (boundary fetch every iteration, midpoint
 * fetch for the monitored bit value), request timing / duty cycle,
 * and stream registration with the machine.
 */

#include <gtest/gtest.h>

#include <limits>

#include "noise/profile.hh"
#include "victim/victim.hh"

namespace llcf {
namespace {

NoiseProfile
silent()
{
    NoiseProfile p = quiescentLocal();
    p.accessesPerSetPerMs = 0.0;
    p.latencyJitter = 0.0;
    p.interruptRate = 0.0;
    return p;
}

class VictimTest : public ::testing::Test
{
  protected:
    VictimTest() : machine_(tinyTest(), silent(), 81)
    {
        cfg_.iterationJitter = 0.0; // deterministic timing for tests
        victim_ = std::make_unique<EcdsaLadderVictim>(machine_, cfg_);
    }

    Machine machine_;
    VictimConfig cfg_;
    std::unique_ptr<EcdsaLadderVictim> victim_;
};

TEST_F(VictimTest, TargetLineHasConfiguredOffset)
{
    EXPECT_EQ(pageLineIndex(victim_->targetLinePa()),
              cfg_.targetLineIndex);
    EXPECT_EQ(victim_->decoyPas().size(), cfg_.decoyLines);
    for (Addr d : victim_->decoyPas())
        EXPECT_NE(lineAlign(d), lineAlign(victim_->targetLinePa()));
}

TEST_F(VictimTest, SignatureVerifiesAndBitsMatchNonce)
{
    auto exec = victim_->triggerRequest(machine_.now() + 1000);
    Ecdsa verifier(Rng(1));
    // The signature must verify against the victim's public key for
    // the signed message (reconstruct the digest from the counter).
    EXPECT_FALSE(exec.record.signature.r.isZero());
    ASSERT_EQ(exec.bits.size(), exec.record.nonce.bitLength() - 1);
}

TEST_F(VictimTest, AccessPatternFollowsFigure8)
{
    auto exec = victim_->triggerRequest(machine_.now() + 1000);
    // iterationStarts has one extra entry (the ladder end).
    ASSERT_EQ(exec.iterationStarts.size(), exec.bits.size() + 1);
    // Count accesses per iteration: 2 when bit==0 (midpointOnZero),
    // 1 when bit==1.
    std::size_t ai = 0;
    for (std::size_t i = 0; i < exec.bits.size(); ++i) {
        const Cycles start = exec.iterationStarts[i];
        const Cycles end = exec.iterationStarts[i + 1];
        unsigned count = 0;
        while (ai < exec.targetAccesses.size() &&
               exec.targetAccesses[ai] < end) {
            EXPECT_GE(exec.targetAccesses[ai], start);
            ++count;
            ++ai;
        }
        EXPECT_EQ(count, exec.bits[i] == 0 ? 2u : 1u)
            << "iteration " << i;
    }
    // One access remains: the closing boundary fetch at ladder exit,
    // matching the extra iterationStarts entry.
    ASSERT_EQ(ai + 1, exec.targetAccesses.size());
    EXPECT_EQ(exec.targetAccesses.back(), exec.ladderEnd);
}

TEST_F(VictimTest, MidpointConventionFlips)
{
    VictimConfig alt = cfg_;
    alt.midpointOnZero = false;
    Machine m2(tinyTest(), silent(), 83);
    EcdsaLadderVictim v2(m2, alt);
    auto exec = v2.triggerRequest(m2.now() + 1000);
    // Now bit==1 iterations get two accesses.
    std::size_t ones = 0, twos = 0;
    std::size_t ai = 0;
    for (std::size_t i = 0; i < exec.bits.size(); ++i) {
        const Cycles end = exec.iterationStarts[i + 1];
        unsigned count = 0;
        while (ai < exec.targetAccesses.size() &&
               exec.targetAccesses[ai] < end) {
            ++count;
            ++ai;
        }
        if (exec.bits[i] == 1) {
            EXPECT_EQ(count, 2u);
            ++twos;
        } else {
            EXPECT_EQ(count, 1u);
            ++ones;
        }
    }
    EXPECT_GT(ones, 0u);
    EXPECT_GT(twos, 0u);
}

TEST_F(VictimTest, IterationDurationMatchesConfig)
{
    auto exec = victim_->triggerRequest(machine_.now());
    for (std::size_t i = 0; i + 1 < exec.iterationStarts.size(); ++i) {
        const Cycles d = exec.iterationStarts[i + 1] -
                         exec.iterationStarts[i];
        EXPECT_EQ(d, cfg_.iterationCycles);
    }
}

TEST_F(VictimTest, DutyCycleShapesRequestWindow)
{
    auto exec = victim_->triggerRequest(machine_.now());
    const double ladder = static_cast<double>(exec.ladderEnd -
                                              exec.ladderStart);
    const double request = static_cast<double>(exec.requestEnd -
                                               exec.requestStart);
    EXPECT_NEAR(ladder / request, cfg_.dutyCycle, 0.03);
}

TEST_F(VictimTest, ExpectedFrequencyMatchesPaper)
{
    // One access per half iteration: 2 GHz / 4850 ~ 0.41 MHz.
    VictimConfig paper;
    paper.iterationCycles = 9700;
    Machine m2(tinyTest(), silent(), 85);
    EcdsaLadderVictim v2(m2, paper);
    EXPECT_NEAR(v2.expectedAccessFrequencyHz(), 0.41e6, 0.02e6);
}

TEST_F(VictimTest, StreamsDriveSfActivity)
{
    auto exec = victim_->triggerRequest(machine_.now() + 500);
    // Let the whole request elapse, touching the target set to sync.
    machine_.idle(exec.requestEnd - machine_.now() + 1000);
    machine_.load(0, victim_->targetLinePa());
    // All scheduled accesses must have been applied.
    EXPECT_GE(machine_.stats().streamAccesses,
              exec.targetAccesses.size());
}

TEST_F(VictimTest, ServeRequestsAreSequentialAndComplete)
{
    auto execs = victim_->serveRequests(machine_.now() + 100, 3);
    ASSERT_EQ(execs.size(), 3u);
    for (std::size_t i = 0; i + 1 < execs.size(); ++i)
        EXPECT_GE(execs[i + 1].requestStart, execs[i].requestEnd);
    for (const auto &e : execs) {
        EXPECT_GT(e.bits.size(), 500u); // ~569 ladder iterations
        EXPECT_LT(e.bits.size(), 575u);
    }
}

TEST_F(VictimTest, NoncesDifferAcrossRequests)
{
    auto execs = victim_->serveRequests(machine_.now(), 2);
    EXPECT_NE(execs[0].record.nonce, execs[1].record.nonce);
    EXPECT_NE(execs[0].bits, execs[1].bits);
}

TEST(VictimConfigDeathTest, RejectsOutOfRangeDutyCycle)
{
    // A dutyCycle outside (0, 1] used to slip through construction
    // and poison every derived duration (division by <= 0 yields inf
    // or negative request windows); the constructor now rejects it.
    Machine m(tinyTest(), silent(), 91);
    VictimConfig bad;
    bad.dutyCycle = 0.0;
    EXPECT_DEATH(EcdsaLadderVictim(m, bad), "dutyCycle");
    bad.dutyCycle = -0.25;
    EXPECT_DEATH(EcdsaLadderVictim(m, bad), "dutyCycle");
    bad.dutyCycle = 1.5;
    EXPECT_DEATH(EcdsaLadderVictim(m, bad), "dutyCycle");
    bad.dutyCycle = std::numeric_limits<double>::quiet_NaN();
    EXPECT_DEATH(EcdsaLadderVictim(m, bad), "dutyCycle");
}

TEST(VictimConfigDeathTest, RejectsDegenerateTimingFields)
{
    Machine m(tinyTest(), silent(), 93);
    VictimConfig bad;
    bad.iterationCycles = 0;
    EXPECT_DEATH(EcdsaLadderVictim(m, bad), "iterationCycles");
    bad = VictimConfig{};
    bad.iterationJitter = 1.0;
    EXPECT_DEATH(EcdsaLadderVictim(m, bad), "iterationJitter");
    bad.iterationJitter = -0.1;
    EXPECT_DEATH(EcdsaLadderVictim(m, bad), "iterationJitter");
    bad = VictimConfig{};
    bad.core = 255;
    EXPECT_DEATH(EcdsaLadderVictim(m, bad), "core");
    bad = VictimConfig{};
    bad.targetLineIndex = kLinesPerPage;
    EXPECT_DEATH(EcdsaLadderVictim(m, bad), "line index");
}

TEST_F(VictimTest, RequestQuotaExhaustsToEmpty)
{
    VictimConfig limited = cfg_;
    limited.requestQuota = 2;
    Machine m2(tinyTest(), silent(), 87);
    EcdsaLadderVictim v2(m2, limited);
    EXPECT_EQ(v2.remainingQuota(), 2u);

    auto first = v2.serveRequests(m2.now(), 5);
    EXPECT_EQ(first.size(), 2u); // clipped at the quota
    EXPECT_EQ(v2.remainingQuota(), 0u);

    auto second = v2.serveRequests(m2.now(), 1);
    EXPECT_TRUE(second.empty()); // exhausted: no execution at all

    // Unlimited victims never clip.
    EXPECT_EQ(victim_->remainingQuota(), ~0ULL);
}

} // namespace
} // namespace llcf
