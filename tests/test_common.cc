/**
 * @file
 * Unit tests for the common utilities: RNG determinism and
 * distribution sanity, summary statistics, CDFs, unit conversions,
 * and environment-variable options.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <set>
#include <vector>

#include "common/flat_set.hh"
#include "common/options.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace llcf {
namespace {

TEST(Types, CycleConversionsRoundTrip)
{
    EXPECT_DOUBLE_EQ(cyclesToUs(2000), 1.0);
    EXPECT_DOUBLE_EQ(cyclesToMs(2000000), 1.0);
    EXPECT_DOUBLE_EQ(cyclesToSec(2000000000ULL), 1.0);
    EXPECT_EQ(usToCycles(1.0), 2000u);
    EXPECT_EQ(msToCycles(1.0), 2000000u);
    EXPECT_EQ(secToCycles(1.0), 2000000000ULL);
}

TEST(Types, AddressHelpers)
{
    const Addr a = 0x123456789a;
    EXPECT_EQ(lineAlign(a) & 0x3f, 0u);
    EXPECT_LE(lineAlign(a), a);
    EXPECT_EQ(pageOffset(0x1234), 0x234u);
    EXPECT_EQ(pageLineIndex(0x1234), 0x234u / 64);
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(48));
    EXPECT_EQ(log2i(1), 0u);
    EXPECT_EQ(log2i(2048), 11u);
}

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123), b(123), c(124);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    Rng a2(123);
    for (int i = 0; i < 100; ++i)
        differs |= a2.next() != c.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, NextBelowInRangeAndCoversValues)
{
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = rng.nextBelow(10);
        ASSERT_LT(v, 10u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliFrequencyMatchesProbability)
{
    Rng rng(13);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextExponential(50.0);
    EXPECT_NEAR(sum / n, 50.0, 2.5);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(19);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        double v = rng.nextGaussian();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, PoissonMeanSmallAndLargeLambda)
{
    Rng rng(23);
    for (double lambda : {0.5, 5.0, 80.0}) {
        double sum = 0.0;
        const int n = 20000;
        for (int i = 0; i < n; ++i)
            sum += static_cast<double>(rng.nextPoisson(lambda));
        EXPECT_NEAR(sum / n, lambda, lambda * 0.06 + 0.05)
            << "lambda=" << lambda;
    }
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(31);
    Rng b = a.split();
    bool differs = false;
    for (int i = 0; i < 50; ++i)
        differs |= a.next() != b.next();
    EXPECT_TRUE(differs);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(37);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
    auto sorted = v;
    rng.shuffle(v);
    auto v2 = v;
    std::sort(v2.begin(), v2.end());
    EXPECT_EQ(v2, sorted);
}

TEST(Stats, MeanStddevMedian)
{
    SampleStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.median(), 4.5);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, PercentileInterpolates)
{
    SampleStats s;
    for (int i = 1; i <= 100; ++i)
        s.add(static_cast<double>(i));
    EXPECT_NEAR(s.percentile(95.0), 95.05, 0.01);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 100.0);
}

TEST(Stats, MergeCombinesSamples)
{
    SampleStats a, b;
    a.add(1.0);
    b.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Stats, EmptyStatsAreSafe)
{
    SampleStats s;
    EXPECT_TRUE(s.empty());
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, OrderStatisticsPanicOnEmpty)
{
    // Order statistics of an empty aggregate do not exist; reading
    // one is an invariant violation, not silent garbage.
    SampleStats s;
    EXPECT_DEATH((void)s.min(), "empty");
    EXPECT_DEATH((void)s.max(), "empty");
    EXPECT_DEATH((void)s.median(), "empty");
    EXPECT_DEATH((void)s.percentile(90.0), "empty");
}

TEST(Stats, SuccessRate)
{
    SuccessRate r;
    EXPECT_DOUBLE_EQ(r.rate(), 0.0);
    r.add(true);
    r.add(true);
    r.add(false);
    r.add(true);
    EXPECT_EQ(r.trials(), 4u);
    EXPECT_DOUBLE_EQ(r.rate(), 0.75);
}

TEST(Stats, EmpiricalCdfMonotone)
{
    EmpiricalCdf cdf({1.0, 2.0, 2.0, 3.0, 10.0});
    EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.6);
    EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
    double prev = 0.0;
    for (double x = 0.0; x <= 11.0; x += 0.25) {
        double v = cdf.at(x);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(Stats, EmpiricalCdfQuantile)
{
    std::vector<double> samples;
    for (int i = 0; i <= 100; ++i)
        samples.push_back(static_cast<double>(i));
    EmpiricalCdf cdf(std::move(samples));
    EXPECT_NEAR(cdf.quantile(0.5), 50.0, 0.5);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 100.0);
}

TEST(Stats, CdfCurveCoversRange)
{
    EmpiricalCdf cdf({0.0, 5.0, 10.0});
    auto curve = cdf.curve(11);
    ASSERT_EQ(curve.size(), 11u);
    EXPECT_DOUBLE_EQ(curve.front().first, 0.0);
    EXPECT_DOUBLE_EQ(curve.back().first, 10.0);
    EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Stats, FormatDurationUnits)
{
    EXPECT_EQ(formatDuration(2000.0), "1.0 us");
    EXPECT_EQ(formatDuration(2.0e6), "1.0 ms");
    EXPECT_EQ(formatDuration(4.0e9), "2.00 s");
}

TEST(FlatSet, IterationIsSortedRegardlessOfInsertOrder)
{
    // The property the unordered->flat sweep relies on: two sets
    // built from the same keys in different orders iterate (and so
    // serialize) identically.
    FlatSet<Addr> a, b;
    const Addr keys[] = {0x9000, 0x1000, 0x5000, 0x3000, 0x7000};
    for (Addr k : keys)
        a.insert(k);
    for (auto it = std::rbegin(keys); it != std::rend(keys); ++it)
        b.insert(*it);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
}

TEST(FlatSet, InsertCountErase)
{
    FlatSet<Addr> s;
    EXPECT_TRUE(s.insert(5));
    EXPECT_FALSE(s.insert(5)); // duplicate
    EXPECT_TRUE(s.insert(2));
    EXPECT_EQ(s.count(5), 1u);
    EXPECT_EQ(s.count(3), 0u);
    EXPECT_EQ(s.size(), 2u);
    EXPECT_TRUE(s.erase(5));
    EXPECT_FALSE(s.erase(5));
    EXPECT_EQ(s.count(5), 0u);
}

TEST(FlatSet, RangeConstructorDeduplicates)
{
    const std::vector<Addr> keys = {3, 1, 3, 2, 1};
    FlatSet<Addr> s(keys.begin(), keys.end());
    EXPECT_EQ(s.size(), 3u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
}

TEST(FlatMap, EmplaceFindAndSortedIteration)
{
    FlatMap<Addr, std::size_t> m;
    EXPECT_TRUE(m.emplace(30, 3));
    EXPECT_TRUE(m.emplace(10, 1));
    EXPECT_FALSE(m.emplace(30, 99)); // first value wins
    const auto *hit = m.find(30);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->second, 3u);
    EXPECT_EQ(m.find(20), nullptr);
    EXPECT_EQ(m.count(10), 1u);
    EXPECT_EQ(m.begin()->first, 10u); // sorted by key
}

TEST(Options, EnvParsing)
{
    setenv("LLCF_TEST_U64", "123", 1);
    setenv("LLCF_TEST_DBL", "2.5", 1);
    setenv("LLCF_TEST_BOOL", "false", 1);
    setenv("LLCF_TEST_STR", "hello", 1);
    EXPECT_EQ(envU64("LLCF_TEST_U64", 0), 123u);
    EXPECT_DOUBLE_EQ(envDouble("LLCF_TEST_DBL", 0.0), 2.5);
    EXPECT_FALSE(envBool("LLCF_TEST_BOOL", true));
    EXPECT_EQ(envString("LLCF_TEST_STR", ""), "hello");
    EXPECT_EQ(envU64("LLCF_TEST_UNSET_XYZ", 77), 77u);
}

} // namespace
} // namespace llcf
