/**
 * @file
 * Tests for the pruning algorithms and the construction pipeline:
 * a parameterised sweep proving every algorithm produces minimal,
 * ground-truth-congruent eviction sets (with and without filtering),
 * deadline handling, noise resilience ordering, SF extension, and
 * the bulk builders for PageOffset / WholeSys campaigns.
 */

#include <gtest/gtest.h>

#include <set>

#include "evset/builder.hh"
#include "noise/profile.hh"

namespace llcf {
namespace {

NoiseProfile
silent()
{
    NoiseProfile p = quiescentLocal();
    p.accessesPerSetPerMs = 0.0;
    p.latencyJitter = 0.0;
    p.interruptRate = 0.0;
    return p;
}

struct AlgoCase
{
    PruneAlgo algo;
    bool filter;
};

std::string
algoCaseName(const ::testing::TestParamInfo<AlgoCase> &info)
{
    return std::string(pruneAlgoName(info.param.algo)) +
           (info.param.filter ? "Filtered" : "Raw");
}

class PruneAlgoTest : public ::testing::TestWithParam<AlgoCase>
{
};

TEST_P(PruneAlgoTest, BuildsValidMinimalSfEvictionSet)
{
    Machine m(tinyTest(), silent(), 43);
    AttackerConfig cfg;
    cfg.seed = 43;
    AttackSession s(m, cfg);
    CandidatePool pool(s, CandidatePool::requiredPages(m, 3.0));
    auto cands = pool.candidatesAt(12);
    const Addr ta = cands.front();
    cands.erase(cands.begin());

    EvictionSetBuilder builder(s, GetParam().algo, GetParam().filter);
    auto out = builder.buildForTarget(ta, cands);
    ASSERT_TRUE(out.success);
    EXPECT_TRUE(out.groundTruthValid);
    EXPECT_EQ(out.evset.llcSet.size(), m.config().llc.ways);
    EXPECT_EQ(out.evset.sfSet.size(), m.config().sf.ways);
    // Minimal: every member congruent, no duplicates.
    std::set<Addr> uniq(out.evset.sfSet.begin(), out.evset.sfSet.end());
    EXPECT_EQ(uniq.size(), out.evset.sfSet.size());
    for (Addr a : out.evset.sfSet)
        EXPECT_EQ(m.sharedSetOf(a), m.sharedSetOf(ta));
    EXPECT_GT(out.elapsed, 0u);
    EXPECT_GE(out.attempts, 1u);
}

TEST_P(PruneAlgoTest, SucceedsUnderModerateNoise)
{
    // A mildly noisy environment (about a tenth of Cloud Run) should
    // not break any algorithm given the retry budget.
    Machine m(tinyTest(), customCloud(1.0), 47);
    AttackerConfig cfg;
    cfg.seed = 47;
    AttackSession s(m, cfg);
    CandidatePool pool(s, CandidatePool::requiredPages(m, 3.0));
    auto cands = pool.candidatesAt(3);
    const Addr ta = cands.front();
    cands.erase(cands.begin());
    EvictionSetBuilder builder(s, GetParam().algo, GetParam().filter);
    auto out = builder.buildForTarget(ta, cands);
    EXPECT_TRUE(out.success);
    EXPECT_TRUE(out.groundTruthValid);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgos, PruneAlgoTest,
    ::testing::Values(AlgoCase{PruneAlgo::Gt, false},
                      AlgoCase{PruneAlgo::GtOp, false},
                      AlgoCase{PruneAlgo::Ps, false},
                      AlgoCase{PruneAlgo::PsOp, false},
                      AlgoCase{PruneAlgo::BinS, false},
                      AlgoCase{PruneAlgo::Gt, true},
                      AlgoCase{PruneAlgo::GtOp, true},
                      AlgoCase{PruneAlgo::Ps, true},
                      AlgoCase{PruneAlgo::PsOp, true},
                      AlgoCase{PruneAlgo::BinS, true}),
    algoCaseName);

TEST(PruneAlgos, FailsCleanlyWithoutEnoughCongruentCandidates)
{
    Machine m(tinyTest(), silent(), 53);
    AttackSession s(m, AttackerConfig{});
    CandidatePool pool(s, CandidatePool::requiredPages(m, 3.0));
    auto cands = pool.candidatesAt(7);
    const Addr ta = cands.front();
    // Strip out all but W-1 congruent candidates.
    const unsigned target = m.sharedSetOf(ta);
    std::vector<Addr> starved;
    unsigned kept_cong = 0;
    for (std::size_t i = 1; i < cands.size(); ++i) {
        if (m.sharedSetOf(cands[i]) == target) {
            if (kept_cong + 1 >= m.config().llc.ways)
                continue;
            ++kept_cong;
        }
        starved.push_back(cands[i]);
    }
    for (auto algo : {PruneAlgo::Gt, PruneAlgo::BinS}) {
        auto pruner = makePruner(algo);
        auto pr = pruner->prune(s, ta, starved, m.config().llc.ways,
                                m.now() + msToCycles(50.0));
        EXPECT_FALSE(pr.success) << pruneAlgoName(algo);
    }
}

TEST(PruneAlgos, DeadlineIsHonoured)
{
    Machine m(tinyTest(), silent(), 59);
    AttackSession s(m, AttackerConfig{});
    CandidatePool pool(s, CandidatePool::requiredPages(m, 3.0));
    auto cands = pool.candidatesAt(8);
    const Addr ta = cands.front();
    cands.erase(cands.begin());
    auto pruner = makePruner(PruneAlgo::BinS);
    // An absurdly tight deadline: must fail, and must not run long.
    const Cycles start = m.now();
    auto pr = pruner->prune(s, ta, cands, m.config().llc.ways,
                            start + 100);
    EXPECT_FALSE(pr.success);
    EXPECT_LT(m.now() - start, msToCycles(5.0));
}

TEST(PruneAlgos, FactoryKindsRoundTrip)
{
    for (auto algo : {PruneAlgo::Gt, PruneAlgo::GtOp, PruneAlgo::Ps,
                      PruneAlgo::PsOp, PruneAlgo::BinS}) {
        EXPECT_EQ(makePruner(algo)->kind(), algo);
        EXPECT_STRNE(pruneAlgoName(algo), "?");
    }
}

TEST(Verify, AcceptsRealAndRejectsFakeEvictionSets)
{
    Machine m(tinyTest(), silent(), 61);
    AttackSession s(m, AttackerConfig{});
    CandidatePool pool(s, CandidatePool::requiredPages(m, 3.0));
    auto cands = pool.candidatesAt(10);
    const Addr ta = cands.front();
    const unsigned target = m.sharedSetOf(ta);
    std::vector<Addr> real, fake;
    for (std::size_t i = 1; i < cands.size(); ++i) {
        if (m.sharedSetOf(cands[i]) == target) {
            if (real.size() < m.config().llc.ways)
                real.push_back(cands[i]);
        } else if (fake.size() < m.config().llc.ways) {
            fake.push_back(cands[i]);
        }
    }
    ASSERT_EQ(real.size(), m.config().llc.ways);
    EXPECT_TRUE(verifyEvictionSet(s, ta, real));
    EXPECT_FALSE(verifyEvictionSet(s, ta, fake));
}

TEST(Builder, PageOffsetCampaignCoversAllSets)
{
    Machine m(tinyTest(), silent(), 67);
    AttackerConfig cfg;
    cfg.seed = 67;
    cfg.evsetBudget = msToCycles(100.0);
    AttackSession s(m, cfg);
    CandidatePool pool(s, CandidatePool::requiredPages(m, 3.0));
    EvictionSetBuilder builder(s, PruneAlgo::BinS, true);
    auto out = builder.buildAtLineIndex(pool, 14);
    EXPECT_EQ(out.expectedSets, m.config().sf.uncertainty());
    EXPECT_GE(out.successRate(), 0.85);
    // Every returned set valid and distinct targets map to distinct
    // shared sets.
    std::set<unsigned> sets;
    for (const auto &e : out.evsets)
        sets.insert(m.sharedSetOf(e.target));
    EXPECT_EQ(sets.size(), static_cast<std::size_t>(out.validSets));
}

TEST(Builder, WholeSystemSubsetCampaign)
{
    Machine m(tinyTest(), silent(), 71);
    AttackerConfig cfg;
    cfg.seed = 71;
    cfg.evsetBudget = msToCycles(100.0);
    AttackSession s(m, cfg);
    CandidatePool pool(s, CandidatePool::requiredPages(m, 3.0));
    EvictionSetBuilder builder(s, PruneAlgo::BinS, true);
    auto out = builder.buildWholeSystem(pool, {0, 13, 40});
    EXPECT_EQ(out.expectedSets, m.config().sf.uncertainty() * 3);
    EXPECT_GE(out.successRate(), 0.8);
    // Offsets must match the requested line indices.
    for (const auto &e : out.evsets) {
        const unsigned li = pageLineIndex(e.target);
        EXPECT_TRUE(li == 0 || li == 13 || li == 40);
    }
}

TEST(Builder, UnfilteredBulkAlsoWorks)
{
    Machine m(tinyTest(), silent(), 73);
    AttackerConfig cfg;
    cfg.seed = 73;
    cfg.evsetBudget = msToCycles(200.0);
    AttackSession s(m, cfg);
    CandidatePool pool(s, CandidatePool::requiredPages(m, 3.0));
    EvictionSetBuilder builder(s, PruneAlgo::GtOp, false);
    auto out = builder.buildAtLineIndex(pool, 2);
    EXPECT_GE(out.successRate(), 0.8);
}

} // namespace
} // namespace llcf
