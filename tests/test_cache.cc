/**
 * @file
 * Unit and property tests for the cache substrate: geometry maths
 * (uncertainty, index extraction), replacement policies (LRU order,
 * PLRU/ SRRIP behaviour, parameterised recency properties), slice
 * hashes, and the cache array's fill/evict/invalidate mechanics.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cache/cache_array.hh"
#include "cache/geometry.hh"
#include "cache/replacement.hh"
#include "cache/slice_hash.hh"

namespace llcf {
namespace {

// ------------------------------------------------------------ geometry

TEST(Geometry, SkylakeUncertaintyMatchesPaper)
{
    // Section 2.2.1: a 28-slice Skylake-SP has U_LLC = 2^5 * 28 = 896
    // and U_L2 = 2^4 = 16.
    CacheGeometry llc{11, 2048, 28};
    CacheGeometry l2{16, 1024, 1};
    EXPECT_EQ(llc.uncontrolledIndexBits(), 5u);
    EXPECT_EQ(llc.uncertainty(), 896u);
    EXPECT_EQ(l2.uncontrolledIndexBits(), 4u);
    EXPECT_EQ(l2.uncertainty(), 16u);
}

TEST(Geometry, SetIndexUsesExpectedBits)
{
    CacheGeometry l2{16, 1024, 1};
    // L2 set index is PA bits 15..6 (Figure 1).
    EXPECT_EQ(l2.setIndex(0x0), 0u);
    EXPECT_EQ(l2.setIndex(1ull << 6), 1u);
    EXPECT_EQ(l2.setIndex(1ull << 15), 512u);
    EXPECT_EQ(l2.setIndex(1ull << 16), 0u); // above the index bits
}

TEST(Geometry, L2IndexBitsAreSubsetOfLlcIndexBits)
{
    // The property candidate filtering relies on (Section 5.1): same
    // LLC set index => same L2 set index.
    CacheGeometry llc{11, 2048, 28};
    CacheGeometry l2{16, 1024, 1};
    Rng rng(9);
    for (int i = 0; i < 2000; ++i) {
        Addr a = lineAlign(rng.next() & ((1ull << 40) - 1));
        Addr b = lineAlign(rng.next() & ((1ull << 40) - 1));
        if (llc.setIndex(a) == llc.setIndex(b)) {
            EXPECT_EQ(l2.setIndex(a), l2.setIndex(b));
        }
    }
}

TEST(Geometry, TotalsAndCapacity)
{
    CacheGeometry g{12, 2048, 28};
    EXPECT_EQ(g.totalSets(), 2048u * 28);
    EXPECT_EQ(g.lineCapacity(), 12ull * 2048 * 28);
}

// -------------------------------------------------------- replacement

class ReplacementTest : public ::testing::TestWithParam<ReplKind>
{
};

TEST_P(ReplacementTest, VictimIsValidWay)
{
    auto policy = makeReplPolicy(GetParam());
    const unsigned ways = 8;
    std::vector<std::uint8_t> st(policy->stateBytes(ways), 0);
    policy->reset(st.data(), ways);
    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        unsigned v = policy->victim(st.data(), ways, rng);
        ASSERT_LT(v, ways);
        policy->onFill(st.data(), ways, v);
    }
}

TEST_P(ReplacementTest, MostRecentlyUsedIsNotImmediateVictim)
{
    // Recency property all non-random policies share: right after a
    // hit, the touched way must not be the next victim (ways >= 2).
    if (GetParam() == ReplKind::Random)
        GTEST_SKIP() << "random victims have no recency guarantee";
    auto policy = makeReplPolicy(GetParam());
    const unsigned ways = 8;
    std::vector<std::uint8_t> st(policy->stateBytes(ways), 0);
    policy->reset(st.data(), ways);
    Rng rng(2);
    // Warm every way.
    for (unsigned w = 0; w < ways; ++w)
        policy->onFill(st.data(), ways, w);
    for (unsigned touch = 0; touch < ways; ++touch) {
        policy->onHit(st.data(), ways, touch);
        EXPECT_NE(policy->victim(st.data(), ways, rng), touch);
    }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ReplacementTest,
                         ::testing::Values(ReplKind::LRU,
                                           ReplKind::TreePLRU,
                                           ReplKind::SRRIP,
                                           ReplKind::Random),
                         [](const auto &info) {
                             return replKindName(info.param);
                         });

TEST(Lru, ExactEvictionOrder)
{
    LruPolicy lru;
    const unsigned ways = 4;
    std::vector<std::uint8_t> st(lru.stateBytes(ways), 0);
    lru.reset(st.data(), ways);
    Rng rng(3);
    // Fill 0,1,2,3 in order; victim should then be 0, and after
    // touching 0, victim should be 1.
    for (unsigned w = 0; w < ways; ++w)
        lru.onFill(st.data(), ways, w);
    EXPECT_EQ(lru.victim(st.data(), ways, rng), 0u);
    lru.onHit(st.data(), ways, 0);
    EXPECT_EQ(lru.victim(st.data(), ways, rng), 1u);
    lru.onHit(st.data(), ways, 1);
    EXPECT_EQ(lru.victim(st.data(), ways, rng), 2u);
}

TEST(Srrip, InsertedLineEvictedBeforePromotedLine)
{
    SrripPolicy srrip;
    const unsigned ways = 4;
    std::vector<std::uint8_t> st(srrip.stateBytes(ways), 0);
    srrip.reset(st.data(), ways);
    Rng rng(4);
    for (unsigned w = 0; w < ways; ++w)
        srrip.onFill(st.data(), ways, w);
    // Promote ways 1..3; way 0 stays at insertion RRPV and must be
    // the victim.
    for (unsigned w = 1; w < ways; ++w)
        srrip.onHit(st.data(), ways, w);
    EXPECT_EQ(srrip.victim(st.data(), ways, rng), 0u);
}

TEST(ReplFactory, NamesRoundTrip)
{
    for (ReplKind k : {ReplKind::LRU, ReplKind::TreePLRU, ReplKind::SRRIP,
                       ReplKind::Random}) {
        auto p = makeReplPolicy(k);
        EXPECT_EQ(p->kind(), k);
        EXPECT_STRNE(replKindName(k), "?");
    }
}

// --------------------------------------------------------- slice hash

TEST(SliceHash, OpaqueCoversAllSlicesRoughlyUniformly)
{
    OpaqueSliceHash hash(28, 0x1234);
    std::map<unsigned, unsigned> counts;
    Rng rng(5);
    const int n = 28000;
    for (int i = 0; i < n; ++i)
        counts[hash.slice(lineAlign(rng.next()))]++;
    ASSERT_EQ(counts.size(), 28u);
    for (auto [slice, count] : counts)
        EXPECT_NEAR(count, n / 28, n / 28 * 0.25) << "slice " << slice;
}

TEST(SliceHash, DeterministicAndSaltDependent)
{
    OpaqueSliceHash a(28, 1), b(28, 1), c(28, 2);
    bool differs = false;
    Rng rng(6);
    for (int i = 0; i < 100; ++i) {
        Addr pa = lineAlign(rng.next());
        EXPECT_EQ(a.slice(pa), b.slice(pa));
        differs |= a.slice(pa) != c.slice(pa);
    }
    EXPECT_TRUE(differs);
}

TEST(SliceHash, PageOffsetDoesNotDetermineSlice)
{
    // Partial control of low PA bits must not narrow the slice
    // (Section 2.2.1's "complex addressing" property).
    OpaqueSliceHash hash(28, 99);
    std::set<unsigned> slices;
    for (Addr frame = 0; frame < 256; ++frame)
        slices.insert(hash.slice((frame << kPageBits) | 0x440));
    EXPECT_GT(slices.size(), 20u);
}

TEST(SliceHash, XorMatrixParityAndSliceCount)
{
    // One mask per slice bit; parity of the masked PA selects it.
    XorMatrixSliceHash hash({0x1111111111111140ull,
                             0x2222222222222280ull});
    EXPECT_EQ(hash.slices(), 4u);
    for (Addr pa : {0x0ull, 0x40ull, 0x80ull, 0xc0ull, 0x1234000ull}) {
        unsigned s = hash.slice(pa);
        EXPECT_LT(s, 4u);
        unsigned bit0 = __builtin_popcountll(pa &
                        0x1111111111111140ull) & 1;
        unsigned bit1 = __builtin_popcountll(pa &
                        0x2222222222222280ull) & 1;
        EXPECT_EQ(s, bit0 | (bit1 << 1));
    }
}

// -------------------------------------------------------- cache array

TEST(CacheArray, FillsInvalidWaysFirst)
{
    CacheArray arr(CacheGeometry{4, 8, 1}, ReplKind::LRU);
    Rng rng(7);
    for (unsigned i = 0; i < 4; ++i) {
        FillResult fr = arr.fill(0, CacheLine{0x1000ull + i * 0x4000,
                                 CohState::Shared, 0}, rng);
        EXPECT_FALSE(fr.evicted) << "way " << i;
    }
    EXPECT_EQ(arr.validCount(0), 4u);
    FillResult fr = arr.fill(0, CacheLine{0x9000, CohState::Shared, 0},
                             rng);
    EXPECT_TRUE(fr.evicted);
    EXPECT_EQ(arr.validCount(0), 4u);
}

TEST(CacheArray, LruEvictionOrderThroughFills)
{
    CacheArray arr(CacheGeometry{2, 8, 1}, ReplKind::LRU);
    Rng rng(8);
    arr.fill(3, CacheLine{0x10c0, CohState::Shared, 0}, rng);
    arr.fill(3, CacheLine{0x20c0, CohState::Shared, 0}, rng);
    // Next fill evicts the oldest (0x10c0).
    FillResult fr = arr.fill(3, CacheLine{0x30c0, CohState::Shared, 0},
                             rng);
    ASSERT_TRUE(fr.evicted);
    EXPECT_EQ(fr.victim.lineAddr, 0x10c0u);
    // Touch 0x20c0, then the next eviction must be 0x30c0.
    auto way = arr.findWay(3, 0x20c0);
    ASSERT_TRUE(way.has_value());
    arr.onHit(3, *way);
    fr = arr.fill(3, CacheLine{0x40c0, CohState::Shared, 0}, rng);
    ASSERT_TRUE(fr.evicted);
    EXPECT_EQ(fr.victim.lineAddr, 0x30c0u);
}

TEST(CacheArray, FindInvalidateRoundTrip)
{
    CacheArray arr(CacheGeometry{4, 8, 2}, ReplKind::LRU);
    Rng rng(9);
    const unsigned set = arr.flatSet(1, 5);
    arr.fill(set, CacheLine{0xabc140, CohState::Exclusive, 2}, rng);
    auto way = arr.findWay(set, 0xabc140);
    ASSERT_TRUE(way.has_value());
    EXPECT_EQ(arr.line(set, *way).coh, CohState::Exclusive);
    EXPECT_EQ(arr.line(set, *way).owner, 2);

    auto victim = arr.invalidateLine(set, 0xabc140);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->lineAddr, 0xabc140u);
    EXPECT_FALSE(arr.findWay(set, 0xabc140).has_value());
    EXPECT_FALSE(arr.invalidateLine(set, 0xabc140).has_value());
}

TEST(CacheArray, SetLineStateUpdatesInPlace)
{
    CacheArray arr(CacheGeometry{2, 4, 1}, ReplKind::LRU);
    Rng rng(10);
    arr.fill(0, CacheLine{0x40, CohState::Exclusive, 0}, rng);
    auto way = arr.findWay(0, 0x40);
    ASSERT_TRUE(way.has_value());
    arr.setLineState(0, *way, CohState::Shared, 1);
    EXPECT_EQ(arr.line(0, *way).coh, CohState::Shared);
    EXPECT_EQ(arr.line(0, *way).owner, 1);
}

TEST(CacheArray, FlushAllInvalidatesEverything)
{
    CacheArray arr(CacheGeometry{4, 8, 1}, ReplKind::LRU);
    Rng rng(11);
    for (unsigned s = 0; s < 8; ++s)
        arr.fill(s, CacheLine{(0x100ull + s) << kLineBits,
                 CohState::Shared, 0}, rng);
    arr.flushAll();
    for (unsigned s = 0; s < 8; ++s)
        EXPECT_EQ(arr.validCount(s), 0u);
}

} // namespace
} // namespace llcf
