/**
 * @file
 * Unit tests for physical frame allocation and virtual address
 * spaces: uniqueness, randomisation, translation consistency, and
 * shared mappings.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/address_space.hh"

namespace llcf {
namespace {

TEST(PageAllocator, FramesAreUniqueAndAligned)
{
    PageAllocator alloc(256, Rng(1));
    std::set<Addr> seen;
    for (int i = 0; i < 256; ++i) {
        Addr pa = alloc.allocFrame();
        EXPECT_EQ(pageOffset(pa), 0u);
        EXPECT_TRUE(seen.insert(pa).second) << "duplicate frame";
    }
    EXPECT_EQ(alloc.freeFrames(), 0u);
}

TEST(PageAllocator, FreeReturnsFrameToPool)
{
    PageAllocator alloc(4, Rng(2));
    Addr a = alloc.allocFrame();
    alloc.allocFrame();
    alloc.allocFrame();
    alloc.allocFrame();
    EXPECT_EQ(alloc.freeFrames(), 0u);
    alloc.freeFrame(a);
    EXPECT_EQ(alloc.freeFrames(), 1u);
    EXPECT_EQ(alloc.allocFrame(), a);
}

TEST(PageAllocator, AllocationOrderIsRandomised)
{
    // Two allocators with different seeds should hand out different
    // frame orders; one allocator should not hand out consecutive
    // frame numbers (overwhelmingly likely with 4096 frames).
    PageAllocator a(4096, Rng(3)), b(4096, Rng(4));
    bool differs = false;
    bool consecutive = true;
    Addr prev = a.allocFrame();
    for (int i = 0; i < 64; ++i) {
        Addr va = a.allocFrame();
        Addr vb = b.allocFrame();
        differs |= va != vb;
        consecutive &= va == prev + kPageBytes;
        prev = va;
    }
    EXPECT_TRUE(differs);
    EXPECT_FALSE(consecutive);
}

class AddressSpaceTest : public ::testing::Test
{
  protected:
    AddressSpaceTest() : alloc_(1024, Rng(5)), space_(alloc_, 0) {}

    PageAllocator alloc_;
    AddressSpace space_;
};

TEST_F(AddressSpaceTest, MmapTranslatesConsistently)
{
    const Addr base = space_.mmapAnon(8 * kPageBytes);
    EXPECT_EQ(space_.pageCount(), 8u);
    for (unsigned p = 0; p < 8; ++p) {
        for (unsigned off : {0u, 64u, 4095u}) {
            const Addr va = base + p * kPageBytes + off;
            const Addr pa = space_.translate(va);
            // Page offsets are preserved by translation.
            EXPECT_EQ(pageOffset(pa), off);
            // Translation is stable.
            EXPECT_EQ(space_.translate(va), pa);
        }
    }
}

TEST_F(AddressSpaceTest, DistinctPagesGetDistinctFrames)
{
    const Addr base = space_.mmapAnon(16 * kPageBytes);
    std::set<Addr> frames;
    for (unsigned p = 0; p < 16; ++p)
        frames.insert(space_.translate(base + p * kPageBytes));
    EXPECT_EQ(frames.size(), 16u);
}

TEST_F(AddressSpaceTest, IsMappedReflectsMappings)
{
    const Addr base = space_.mmapAnon(kPageBytes);
    EXPECT_TRUE(space_.isMapped(base));
    EXPECT_TRUE(space_.isMapped(base + 4095));
    EXPECT_FALSE(space_.isMapped(base + 8 * kPageBytes));
}

TEST_F(AddressSpaceTest, SeparateMappingsDoNotOverlap)
{
    const Addr a = space_.mmapAnon(4 * kPageBytes);
    const Addr b = space_.mmapAnon(4 * kPageBytes);
    EXPECT_GE(b, a + 4 * kPageBytes);
}

TEST_F(AddressSpaceTest, MapSharedAliasesFrames)
{
    const Addr base = space_.mmapAnon(2 * kPageBytes);
    const auto frames = space_.framesOf(base, 2 * kPageBytes);
    ASSERT_EQ(frames.size(), 2u);

    AddressSpace other(alloc_, 1);
    const Addr shared = other.mapShared(frames);
    EXPECT_EQ(other.translate(shared + 100), space_.translate(base + 100));
    EXPECT_EQ(other.translate(shared + kPageBytes),
              space_.translate(base + kPageBytes));
}

TEST_F(AddressSpaceTest, DifferentSpacesGetDifferentVaRanges)
{
    AddressSpace other(alloc_, 1);
    const Addr a = space_.mmapAnon(kPageBytes);
    const Addr b = other.mmapAnon(kPageBytes);
    EXPECT_NE(a, b);
}

} // namespace
} // namespace llcf
