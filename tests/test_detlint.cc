/**
 * @file
 * Tests for the detlint determinism linter (tools/detlint/).
 *
 * The fixture corpus in tests/detlint_fixtures/ holds one positive
 * and one negative file per rule; the corpus test asserts the EXACT
 * per-(file, rule) finding counts, so a rule that stops firing, or
 * starts over-firing, fails loudly.  The remaining tests pin the
 * suppression and config-allowlist machinery from both directions,
 * and the final test runs the real repo configuration over the real
 * tree — the same check scripts/run_static_analysis.sh and the CI
 * static-analysis job enforce.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "detlint.hh"

namespace llcf::detlint {
namespace {

namespace fs = std::filesystem;

const std::string kFixtures = LLCF_DETLINT_FIXTURES;
const std::string kRepoRoot = LLCF_REPO_ROOT;

Config
fixtureConfig()
{
    std::string err;
    auto cfg = Config::load(kFixtures + "/fixtures.conf", err);
    EXPECT_TRUE(cfg) << err;
    return cfg ? *cfg : Config{};
}

std::vector<std::string>
corpusFiles()
{
    std::vector<std::string> out;
    for (const auto &e : fs::directory_iterator(kFixtures)) {
        const std::string ext = e.path().extension().string();
        if (ext == ".cc" || ext == ".hh")
            out.push_back(e.path().filename().string());
    }
    std::sort(out.begin(), out.end());
    return out;
}

using CountMap = std::map<std::pair<std::string, std::string>, int>;

CountMap
countByFileRule(const std::vector<Finding> &findings)
{
    CountMap m;
    for (const Finding &f : findings)
        ++m[{f.path, f.rule}];
    return m;
}

TEST(Detlint, FixtureCorpusExactCounts)
{
    const auto findings =
        analyzeFiles(kFixtures, corpusFiles(), fixtureConfig());
    const CountMap got = countByFileRule(findings);

    const CountMap want = {
        {{"rand_bad.cc", "rand"}, 3},
        {{"wallclock_bad.cc", "wallclock"}, 3},
        {{"getenv_bad.cc", "getenv"}, 1},
        {{"float_format_bad.cc", "float-format"}, 6},
        {{"thread_id_bad.cc", "thread-id"}, 3},
        {{"header_guard_bad.hh", "header-guard"}, 2},
        {{"include_bad.cc", "include"}, 3},
        {{"doc_comment_bad.hh", "doc-comment"}, 3},
        {{"unordered_iter_bad.cc", "unordered-iter"}, 3},
        {{"suppression_bad.cc", "suppression"}, 3},
        {{"suppression_bad.cc", "rand"}, 1},
    };

    // Map equality asserts both directions at once: every positive
    // fixture fires exactly as specified, and every *_good fixture
    // (absent from `want`) produces zero findings.
    EXPECT_EQ(got, want) << [&] {
        std::string all;
        for (const Finding &f : findings) {
            all += f.path + ":" + std::to_string(f.line) + ": [" +
                   f.rule + "] " + f.message + "\n";
        }
        return all;
    }();
}

TEST(Detlint, JustifiedSuppressionSilences)
{
    const auto findings = analyzeFiles(
        kFixtures, {"suppression_good.cc"}, fixtureConfig());
    EXPECT_TRUE(findings.empty());
}

TEST(Detlint, UnjustifiedSuppressionDoesNotSilence)
{
    const auto findings = analyzeFiles(
        kFixtures, {"suppression_bad.cc"}, fixtureConfig());
    int rand_findings = 0;
    for (const Finding &f : findings)
        rand_findings += f.rule == "rand";
    EXPECT_EQ(rand_findings, 1);
}

TEST(Detlint, ConfigAllowanceSilencesFile)
{
    const auto with_conf = analyzeFiles(
        kFixtures, {"allowed_rand.cc"}, fixtureConfig());
    EXPECT_TRUE(with_conf.empty());

    // Without the allowance the same file must fire — proof the
    // conf entry, not the fixture, silences it.
    const auto without =
        analyzeFiles(kFixtures, {"allowed_rand.cc"}, Config{});
    ASSERT_EQ(without.size(), 1u);
    EXPECT_EQ(without[0].rule, "rand");
}

TEST(Detlint, ConfigRejectsUnknownRule)
{
    std::string err;
    const auto cfg = Config::load(kFixtures + "/bad.conf", err);
    EXPECT_FALSE(cfg);
    EXPECT_NE(err.find("nosuchrule"), std::string::npos);
}

TEST(Detlint, UnorderedIterRequiresReachability)
{
    // debugDump iterates a hash map but nothing reaches it: clean.
    const auto clean = analyzeFiles(
        kFixtures, {"unordered_iter_good.cc"}, fixtureConfig());
    EXPECT_TRUE(clean.empty());

    // Making debugDump itself a root flips the verdict.
    Config cfg = fixtureConfig();
    cfg.rootFuncs.insert("debugDump");
    const auto rooted = analyzeFiles(
        kFixtures, {"unordered_iter_good.cc"}, cfg);
    ASSERT_EQ(rooted.size(), 1u);
    EXPECT_EQ(rooted[0].rule, "unordered-iter");
}

TEST(Detlint, RuleNamesStable)
{
    EXPECT_EQ(ruleNames().size(), 10u);
}

TEST(Detlint, RepoIsClean)
{
    std::string err;
    const auto cfg =
        Config::load(kRepoRoot + "/tools/detlint/detlint.conf", err);
    ASSERT_TRUE(cfg) << err;

    std::vector<std::string> files;
    for (const char *top : {"src", "bench", "tests"}) {
        for (const auto &e : fs::recursive_directory_iterator(
                 fs::path(kRepoRoot) / top)) {
            if (!e.is_regular_file())
                continue;
            const std::string ext = e.path().extension().string();
            if (ext != ".cc" && ext != ".hh")
                continue;
            files.push_back(
                fs::relative(e.path(), kRepoRoot).generic_string());
        }
    }
    std::sort(files.begin(), files.end());
    // The traffic/victim split grew the lintable corpus to 163
    // files; pin a floor so a broken directory walk (silently
    // skipping whole subtrees) can't masquerade as a clean repo.
    EXPECT_GE(files.size(), 163u);

    const auto findings = analyzeFiles(kRepoRoot, files, *cfg);
    std::string all;
    for (const Finding &f : findings) {
        all += f.path + ":" + std::to_string(f.line) + ": [" + f.rule +
               "] " + f.message + "\n";
    }
    EXPECT_TRUE(findings.empty()) << all;
}

} // namespace
} // namespace llcf::detlint
