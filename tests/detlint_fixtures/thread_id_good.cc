// Fixture: deterministic lane indices instead of thread ids.
// Expected: 0 findings.

#include <cstdio>

namespace llcf {

void
logLane(unsigned lane)
{
    std::printf("lane %u\n", lane);
}

} // namespace llcf
