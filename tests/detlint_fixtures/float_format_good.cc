// Fixture: integer conversions, literal percents and to_string of
// integers are all fine.  Expected: 0 findings.

#include <cstdio>
#include <string>

namespace llcf {

std::string
cleanReport(long count, double mean)
{
    std::printf("%ld items (100%% done)\n", count);
    std::string out = std::to_string(count);
    (void)mean;
    return out;
}

} // namespace llcf
