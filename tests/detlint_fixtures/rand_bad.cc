// Fixture: every banned randomness source fires the 'rand' rule.
// Expected: 3 rand findings.

#include <cstdlib>
#include <random>

namespace llcf {

int
hostNoise()
{
    std::srand(42);
    std::random_device entropy;
    const int raw = std::rand();
    return raw + static_cast<int>(entropy());
}

} // namespace llcf
