// Fixture: environment access through the options layer helper.
// Expected: 0 findings.

namespace llcf {

bool envBool(const char *name, bool dflt);

bool
scalarTagsRequested()
{
    return envBool("LLCF_SCALAR_TAGS", false);
}

} // namespace llcf
