// Fixture: unresolvable quoted include, deprecated C header, and a
// project header included with angle brackets.
// Expected: 3 include findings.

#include "missing/not_here.hh"
#include <stdio.h>
#include <include_helper.hh>

namespace llcf {

int
fixtureIncludes()
{
    return 0;
}

} // namespace llcf
