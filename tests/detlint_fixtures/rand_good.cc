// Fixture: seeded-stream randomness and rand-lookalike identifiers
// ('strand', 'operand') must not fire.  Expected: 0 findings.

namespace llcf {

struct Rng
{
    unsigned long long state = 1;

    unsigned long long
    next()
    {
        return state *= 6364136223846793005ULL;
    }
};

int
streamNoise(Rng &rng)
{
    int strand = static_cast<int>(rng.next() & 0xff);
    int operand = 7;
    return strand + operand;
}

} // namespace llcf
