// Fixture: quoted in-tree include and <c...> system headers.
// Expected: 0 findings.

#include "include_helper.hh"

#include <cstdio>
#include <vector>

namespace llcf {

int
fixtureIncludesClean()
{
    std::vector<int> v{1, 2, 3};
    std::printf("%zu\n", v.size());
    return 0;
}

} // namespace llcf
