/**
 * @file
 * Fixture: the canonical include guard.  Expected: 0 findings.
 */

#ifndef LLCF_HEADER_GUARD_GOOD_HH
#define LLCF_HEADER_GUARD_GOOD_HH

#endif // LLCF_HEADER_GUARD_GOOD_HH
