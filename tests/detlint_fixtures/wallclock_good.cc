// Fixture: simulated time is fine.  Expected: 0 findings.

namespace llcf {

using Cycles = unsigned long long;

Cycles
simulatedNow(Cycles clock)
{
    return clock + 100;
}

} // namespace llcf
