/**
 * @file
 * Fixture: resolvable in-tree include target for the include-rule
 * fixtures.  Expected: 0 findings.
 */

#ifndef LLCF_INCLUDE_HELPER_HH
#define LLCF_INCLUDE_HELPER_HH

#endif // LLCF_INCLUDE_HELPER_HH
