// Fixture: every float-serialization bypass fires 'float-format'.
// Expected: 6 float-format findings (%f, %g, setprecision,
// ostream<<literal, ostream<<double-var, to_string(double)).

#include <cstdio>
#include <iomanip>
#include <sstream>
#include <string>

namespace llcf {

void
printReport(double mean)
{
    std::printf("%f\n", mean);
    std::printf("width %8.3g end\n", mean);
}

void
streamReport(std::ostringstream &os, double mean)
{
    os << std::setprecision(17);
    os << 3.14;
    os << mean;
    os << "done";
}

std::string
describe(long count)
{
    double ratio = 0.5;
    std::string out = std::to_string(ratio);
    out += std::to_string(count);
    return out;
}

} // namespace llcf
