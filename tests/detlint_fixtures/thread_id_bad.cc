// Fixture: thread identities and %p addresses as data fire
// 'thread-id'.  Expected: 3 thread-id findings.

#include <cstdio>
#include <thread>

namespace llcf {

void
logWorker()
{
    std::thread::id worker;
    worker = std::this_thread::get_id();
    std::printf("worker at %p\n", static_cast<void *>(&worker));
}

} // namespace llcf
