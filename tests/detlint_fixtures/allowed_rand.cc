// Fixture: a file-level allowance in fixtures.conf ('allow rand
// allowed_rand.cc') silences the rand finding here.
// Expected: 0 findings with the fixture config, 1 without.

#include <cstdlib>

namespace llcf {

int
fileAllowance()
{
    return std::rand();
}

} // namespace llcf
