// Fixture: hash iteration in a function NOT reachable from any
// JSON root, and a lookup-only map inside a root — both fine.
// Expected: 0 findings.

#include <unordered_map>

namespace llcf {

namespace {
std::unordered_map<int, long> stash;
} // namespace

long
debugDump()
{
    long total = 0;
    for (const auto &kv : stash)
        total += kv.second;
    return total;
}

long
writeJsonClean()
{
    const auto it = stash.find(3);
    return it == stash.end() ? 0 : it->second;
}

} // namespace llcf
