/**
 * @file
 * Fixture: fully documented public header.  Expected: 0 findings.
 */

#ifndef LLCF_DOC_COMMENT_GOOD_HH
#define LLCF_DOC_COMMENT_GOOD_HH

namespace llcf {

/** A documented gadget. */
struct Gadget
{
    int weight = 0;
};

/** Documented accessor: the gadget's weight. */
int gadgetWeight(const Gadget &g);

} // namespace llcf

#endif // LLCF_DOC_COMMENT_GOOD_HH
