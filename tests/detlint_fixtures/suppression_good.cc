// Fixture: a justified suppression silences the covered finding.
// Expected: 0 findings.

#include <cstdlib>

namespace llcf {

int
quiet()
{
    // detlint: allow(rand) -- fixture: justified allows suppress
    return std::rand();
}

} // namespace llcf
