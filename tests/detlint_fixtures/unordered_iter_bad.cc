// Fixture: hash-order iteration reachable from JSON roots.
// writeJsonReport is a config root ('root writeJsonReport' in
// fixtures.conf); sumTally is reachable from it through the call
// graph; emitViaWriter roots itself by referencing JsonWriter.
// Expected: 3 unordered-iter findings.

#include <string>
#include <unordered_map>

namespace llcf {

namespace {
std::unordered_map<int, long> tally;
} // namespace

long
sumTally()
{
    long total = 0;
    for (const auto &kv : tally)
        total += kv.second;
    return total;
}

long
writeJsonReport()
{
    std::unordered_map<std::string, long> extra;
    extra.emplace("a", 1);
    long total = sumTally();
    for (const auto &kv : extra)
        total += kv.second;
    return total;
}

long
emitViaWriter()
{
    JsonWriter writer;
    (void)writer;
    long total = 0;
    for (const auto &kv : tally)
        total += kv.second;
    return total;
}

} // namespace llcf
