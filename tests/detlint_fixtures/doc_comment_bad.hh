#ifndef LLCF_DOC_COMMENT_BAD_HH
#define LLCF_DOC_COMMENT_BAD_HH

namespace llcf {

struct Widget
{
    int weight = 0;
};

int widgetWeight(const Widget &w);

} // namespace llcf

#endif // LLCF_DOC_COMMENT_BAD_HH
