// Fixture: host clock reads fire the 'wallclock' rule.
// Expected: 3 wallclock findings.

#include <chrono>
#include <sys/time.h>

namespace llcf {

double
hostSeconds()
{
    const auto t0 = std::chrono::steady_clock::now();
    const auto t1 = std::chrono::system_clock::now();
    struct timeval tv;
    gettimeofday(&tv, nullptr);
    (void)t0;
    (void)t1;
    return static_cast<double>(tv.tv_sec);
}

} // namespace llcf
