// Fixture: a direct getenv outside the options layer fires.
// Expected: 1 getenv finding.

#include <cstdlib>

namespace llcf {

bool
scalarTagsRequested()
{
    return std::getenv("LLCF_SCALAR_TAGS") != nullptr;
}

} // namespace llcf
