// Fixture: broken suppressions are findings themselves, and an
// unjustified suppression does NOT silence the underlying rule.
// Expected: 3 suppression findings + 1 rand finding.

#include <cstdlib>

namespace llcf {

int
noisy()
{
    // detlint: allow(rand)
    int a = std::rand();
    // detlint: allow(notarule) -- the rule name is wrong on purpose
    int b = 1;
    // detlint: oops, not even an allow()
    return a + b;
}

} // namespace llcf
