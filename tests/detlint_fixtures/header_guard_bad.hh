/**
 * @file
 * Fixture: wrong guard symbol and a bare closing #endif.
 * Expected: 2 header-guard findings.
 */

#ifndef WRONG_GUARD_HH
#define WRONG_GUARD_HH

#endif
