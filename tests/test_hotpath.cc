/**
 * @file
 * Tests for the devirtualized batched hot path: scalar-vs-batched
 * equivalence (byte-identical harness JSON across every replacement
 * policy), the scalar-vs-SIMD tag-scan differential suite (identical
 * kernels on random rows, byte-identical suite JSON and equal perf
 * counters on paper-scale machines), PerfCounters accounting
 * invariants, the slice hash's divide-free reduction, and the JSON
 * parser the perf gate reads baselines with.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "cache/tag_scan.hh"
#include "harness/experiment.hh"
#include "harness/json.hh"
#include "noise/profile.hh"
#include "scenario/registry.hh"
#include "scenario/scenario.hh"
#include "sim/configs.hh"
#include "sim/machine.hh"

namespace llcf {
namespace {

std::vector<Addr>
mapLines(Machine &m, AddressSpace &as, std::size_t pages)
{
    const Addr base = as.mmapAnon(pages * kPageBytes);
    std::vector<Addr> lines;
    for (std::size_t p = 0; p < pages; ++p) {
        for (unsigned l = 0; l < kLinesPerPage; ++l) {
            lines.push_back(as.translate(base + p * kPageBytes +
                                         l * kLineBytes));
        }
    }
    (void)m;
    return lines;
}

/**
 * One mixed trial touching every batched operation; @p batched picks
 * the accessBatch path, otherwise the scalar per-element loop.  Runs
 * under a noisy profile so RNG-dependent paths (jitter, noise replay,
 * reuse predictor) are exercised too.
 */
void
mixedTrial(ReplKind repl, bool batched, TrialContext &ctx,
           TrialRecorder &rec)
{
    MachineConfig cfg = tinyTest(2);
    cfg.withSharedRepl(repl);
    NoiseProfile noise;
    ASSERT_TRUE(noiseProfileByName("cloud-run", noise));
    Machine m(cfg, noise, ctx.seed);
    auto as = m.newAddressSpace();
    const auto lines = mapLines(m, *as, 6);
    const std::span<const Addr> span(lines);

    if (batched) {
        m.accessBatch(0, span, {BatchOp::Load});
        m.accessBatch(0, span, {BatchOp::Load, true, -1});
        m.accessBatch(0, span, {BatchOp::Store});
        m.accessBatch(0, span, {BatchOp::Store, true, -1});
        m.accessBatch(0, span, {BatchOp::Flush});
        m.accessBatch(0, span, {BatchOp::Load, false, 1});
        m.accessBatch(0, span, {BatchOp::Load, true, 1});
        m.accessBatch(0, span, {BatchOp::TimedLoad});
        m.accessBatch(0, span, {BatchOp::ChaseLoad});
        m.accessBatch(0, span, {BatchOp::ProbeLoad});
        m.accessBatch(0, span, {BatchOp::Flush, true, -1});
    } else {
        for (Addr a : lines)
            m.load(0, a);
        m.parallelLoads(0, span);
        for (Addr a : lines)
            m.store(0, a);
        m.parallelStores(0, span);
        for (Addr a : lines)
            m.clflush(0, a);
        for (Addr a : lines)
            m.loadShared(0, 1, a);
        m.parallelLoadsShared(0, 1, span);
        for (Addr a : lines)
            m.timedLoad(0, a);
        for (Addr a : lines)
            m.chaseLoad(0, a);
        for (Addr a : lines)
            m.probeLoad(0, a);
        m.clflushMany(0, span);
    }

    // Aggregate everything observable: virtual time, event counters
    // and the full PerfCounters snapshot.  Byte-identical suite JSON
    // then certifies the two paths produced identical machines.
    rec.metric("clock", static_cast<double>(m.now()));
    rec.metric("loads", static_cast<double>(m.stats().loads));
    rec.metric("stores", static_cast<double>(m.stats().stores));
    rec.metric("dram", static_cast<double>(m.stats().dramFills));
    rec.metric("noise", static_cast<double>(m.stats().noiseAccesses));
    recordPerfCounters(rec, m.perfCounters());
}

TEST(BatchedEquivalence, ByteIdenticalJsonAcrossAllPolicies)
{
    for (ReplKind repl : kAllReplKinds) {
        ExperimentSuite scalar("equiv"), batched("equiv");
        for (bool use_batch : {false, true}) {
            ExperimentConfig cfg;
            cfg.name = std::string("mixed-") + replKindName(repl);
            cfg.trials = 3;
            cfg.masterSeed = 1234;
            ExperimentRunner runner(cfg);
            ExperimentResult res = runner.run(
                [&](TrialContext &ctx, TrialRecorder &rec) {
                    mixedTrial(repl, use_batch, ctx, rec);
                });
            (use_batch ? batched : scalar).add(std::move(res));
        }
        EXPECT_EQ(scalar.toJson(), batched.toJson())
            << "policy " << replKindName(repl);
    }
}

// ---------------------------------------- scalar-vs-SIMD differential

/** Flip the force-scalar override for a scope, restoring it on exit. */
class ScopedForceScalar
{
  public:
    explicit ScopedForceScalar(bool force)
        : prev_(detail::g_tag_scan_force_scalar)
    {
        setTagScanForceScalar(force);
    }
    ~ScopedForceScalar() { setTagScanForceScalar(prev_); }

  private:
    bool prev_;
};

TEST(TagScanDifferential, KernelsAgreeOnRandomRows)
{
#if LLCF_TAG_SCAN_VECTOR
    Rng rng(2024);
    for (int iter = 0; iter < 20000; ++iter) {
        const unsigned words =
            (1 + static_cast<unsigned>(rng.nextBelow(8))) * kTagLane;
        std::vector<Addr> row(words);
        for (Addr &w : row) {
            // Mix of sentinel and line-aligned tags, like a real row.
            w = rng.nextBool(0.5) ? 0x1 : lineAlign(rng.next());
        }
        // Needle present (possibly at several slots) half the time.
        Addr needle = lineAlign(rng.next());
        if (rng.nextBool(0.5))
            needle = row[rng.nextBelow(words)];
        EXPECT_EQ(tagScanFindVector(row.data(), words, needle),
                  tagScanFindScalar(row.data(), words, needle))
            << "words " << words;
    }
#else
    GTEST_SKIP() << "scalar-only build: single kernel";
#endif
}

TEST(TagScanDifferential, ForceScalarOverrideControlsDispatch)
{
    const bool prev = detail::g_tag_scan_force_scalar;
    setTagScanForceScalar(true);
    EXPECT_FALSE(tagScanVectorActive());
    setTagScanForceScalar(false);
    EXPECT_EQ(tagScanVectorActive(), LLCF_TAG_SCAN_VECTOR != 0);
    setTagScanForceScalar(prev);
}

/**
 * One trace through a paper-scale machine touching the load, shared,
 * store, flush and probe paths, under a noisy profile so the
 * RNG-coupled paths run too.  Records everything observable; the
 * byte-identity test below runs it under each tag-scan kernel.
 */
void
scaledKernelTrial(MachineConfig (*make)(unsigned), ReplKind repl,
                  TrialContext &ctx, TrialRecorder &rec)
{
    MachineConfig cfg = make(2);
    cfg.withSharedRepl(repl);
    NoiseProfile noise;
    ASSERT_TRUE(noiseProfileByName("cloud-run", noise));
    Machine m(cfg, noise, ctx.seed);
    auto as = m.newAddressSpace();
    const Addr base = as->mmapAnon(24 * kPageBytes);
    const auto lines = as->translateLines(base, 24 * kPageBytes);
    const std::span<const Addr> span(lines);
    m.accessBatch(0, span, {BatchOp::Load});
    m.accessBatch(0, span, {BatchOp::Load, true, -1});
    m.accessBatch(1, span, {BatchOp::Store, true, -1});
    m.accessBatch(0, span, {BatchOp::Flush, true, -1});
    m.accessBatch(0, span, {BatchOp::Load, true, 1});
    m.accessBatch(0, span, {BatchOp::ProbeLoad});
    rec.metric("clock", static_cast<double>(m.now()));
    rec.metric("noise", static_cast<double>(m.stats().noiseAccesses));
    recordPerfCounters(rec, m.perfCounters());
}

TEST(TagScanDifferential, ByteIdenticalJsonOnScaledMachines)
{
    const struct
    {
        const char *name;
        MachineConfig (*make)(unsigned);
    } machines[] = {
        {"skl", scaledSkylake},
        {"icx", scaledIceLake},
    };
    for (const auto &mach : machines) {
        for (ReplKind repl : kAllReplKinds) {
            ExperimentSuite scalar("kernels"), vector("kernels");
            for (bool force : {true, false}) {
                ScopedForceScalar guard(force);
                ExperimentConfig cfg;
                cfg.name = std::string("diff-") + mach.name + '-' +
                           replKindName(repl);
                cfg.trials = 2;
                cfg.threads = 1;
                cfg.masterSeed = 20817;
                ExperimentRunner runner(cfg);
                ExperimentResult res = runner.run(
                    [&](TrialContext &ctx, TrialRecorder &rec) {
                        scaledKernelTrial(mach.make, repl, ctx, rec);
                    });
                (force ? scalar : vector).add(std::move(res));
            }
            EXPECT_EQ(scalar.toJson(), vector.toJson())
                << mach.name << ' ' << replKindName(repl);
        }
    }
}

void
expectArrayCountersEq(const ArrayCounters &a, const ArrayCounters &b,
                      const char *what)
{
    EXPECT_EQ(a.hits, b.hits) << what;
    EXPECT_EQ(a.fills, b.fills) << what;
    EXPECT_EQ(a.evictions, b.evictions) << what;
    EXPECT_EQ(a.invalidations, b.invalidations) << what;
    EXPECT_EQ(a.tagScans, b.tagScans) << what;
}

TEST(TagScanDifferential, PerfCountersIncludingTagScansMatch)
{
    // tagScans never reaches the suite JSON (recordPerfCounters emits
    // named metrics only), so the byte-identity test above cannot see
    // it; compare the raw snapshots directly.
    for (ReplKind repl : kAllReplKinds) {
        PerfCounters pc[2];
        std::size_t idx = 0;
        for (bool force : {true, false}) {
            ScopedForceScalar guard(force);
            MachineConfig cfg = scaledIceLake(2);
            cfg.withSharedRepl(repl);
            Machine m(cfg, silent(), 321);
            auto as = m.newAddressSpace();
            const Addr base = as->mmapAnon(8 * kPageBytes);
            const auto lines =
                as->translateLines(base, 8 * kPageBytes);
            m.accessBatch(0, lines, {BatchOp::Load});
            m.accessBatch(0, lines, {BatchOp::Flush, true, -1});
            m.accessBatch(0, lines, {BatchOp::Load, true, -1});
            pc[idx++] = m.perfCounters();
        }
        const char *name = replKindName(repl);
        expectArrayCountersEq(pc[0].l1, pc[1].l1, name);
        expectArrayCountersEq(pc[0].l2, pc[1].l2, name);
        expectArrayCountersEq(pc[0].llc, pc[1].llc, name);
        expectArrayCountersEq(pc[0].sf, pc[1].sf, name);
        EXPECT_EQ(pc[0].accesses, pc[1].accesses) << name;
        EXPECT_EQ(pc[0].hits, pc[1].hits) << name;
        EXPECT_EQ(pc[0].misses, pc[1].misses) << name;
        EXPECT_EQ(pc[0].simCycles, pc[1].simCycles) << name;
    }
}

// ------------------------------------------------------ perf counters

TEST(PerfCounters, ArrayEvictionsMatchFillResults)
{
    for (ReplKind repl : kAllReplKinds) {
        CacheArray arr(CacheGeometry{4, 8, 1}, repl);
        Rng rng(7);
        std::uint64_t evicted = 0, fills = 0;
        for (unsigned i = 0; i < 200; ++i) {
            FillResult fr = arr.fill(
                i % 8,
                CacheLine{(0x1000ull + i * 0x2000), CohState::Shared, 0},
                rng);
            ++fills;
            evicted += fr.evicted ? 1 : 0;
        }
        EXPECT_EQ(arr.counters().fills, fills) << replKindName(repl);
        EXPECT_EQ(arr.counters().evictions, evicted)
            << replKindName(repl);
        // 8 sets x 4 ways capacity: everything beyond it must evict.
        EXPECT_EQ(evicted, fills - 32) << replKindName(repl);
        EXPECT_EQ(arr.counters().hits, 0u);
    }
}

TEST(PerfCounters, HitsPlusMissesEqualsAccesses)
{
    MachineConfig cfg = tinyTest(2);
    NoiseProfile noise;
    ASSERT_TRUE(noiseProfileByName("cloud-run", noise));
    Machine m(cfg, noise, 99);
    auto as = m.newAddressSpace();
    const auto lines = mapLines(m, *as, 8);
    for (int round = 0; round < 3; ++round) {
        m.accessBatch(0, lines, {BatchOp::Load});
        m.accessBatch(1, lines, {BatchOp::Store, true, -1});
        m.accessBatch(0, lines, {BatchOp::Flush, true, -1});
    }
    const PerfCounters pc = m.perfCounters();
    EXPECT_GT(pc.accesses, 0u);
    EXPECT_EQ(pc.hits + pc.misses, pc.accesses);
    std::uint64_t level_sum = 0;
    for (unsigned i = 0; i < kHitLevelCount; ++i)
        level_sum += pc.levelAccesses[i];
    EXPECT_EQ(level_sum, pc.accesses);
    EXPECT_EQ(pc.levelAccesses[static_cast<unsigned>(HitLevel::Dram)],
              pc.misses);
    EXPECT_EQ(pc.simCycles, m.now());
    // The flush sweeps force repeated SF/LLC turnover.
    EXPECT_GT(pc.sf.fills, 0u);
    EXPECT_GE(pc.sf.fills, pc.sf.evictions);
    EXPECT_GE(pc.l1.fills, pc.l1.evictions);
}

TEST(PerfCounters, CoherenceDowngradeCounted)
{
    Machine m(tinyTest(2), silent(), 5);
    auto as = m.newAddressSpace();
    const Addr pa = as->translate(as->mmapAnon(kPageBytes));
    m.load(0, pa); // Exclusive, owned by core 0
    EXPECT_TRUE(m.inSf(pa));
    EXPECT_EQ(m.perfCounters().cohDowngrades, 0u);
    m.load(1, pa); // cross-core load: E -> Shared downgrade
    EXPECT_EQ(m.perfCounters().cohDowngrades, 1u);
    EXPECT_TRUE(m.inLlc(pa));
    EXPECT_FALSE(m.inSf(pa));
}

TEST(PerfCounters, CountersMetricsAppearOnlyWhenEnabled)
{
    const ScenarioSpec *spec =
        builtinScenarios().find("build-bins-tiny-lru-silent");
    ASSERT_NE(spec, nullptr);

    ExperimentResult off = runScenario(*spec, 2, 0, 42);
    EXPECT_EQ(off.metric("pc_accesses"), nullptr);

    setenv("LLCF_COUNTERS", "1", 1);
    ExperimentResult on_a = runScenario(*spec, 2, 1, 42);
    ExperimentResult on_b = runScenario(*spec, 2, 8, 42);
    unsetenv("LLCF_COUNTERS");

    ASSERT_NE(on_a.metric("pc_accesses"), nullptr);
    ASSERT_NE(on_a.metric("pc_sim_cycles"), nullptr);
    EXPECT_GT(on_a.metric("pc_accesses")->mean(), 0.0);

    // Counter metrics obey the same determinism contract as the rest
    // of the suite JSON.
    ExperimentSuite sa("scenarios"), sb("scenarios");
    sa.add(std::move(on_a));
    sb.add(std::move(on_b));
    EXPECT_EQ(sa.toJson(), sb.toJson());

    // And the trial metrics themselves must not disturb the metrics
    // recorded without counters.
    ExperimentResult off2 = runScenario(*spec, 2, 0, 42);
    ExperimentSuite soff("scenarios"), soff2("scenarios");
    soff.add(std::move(off));
    soff2.add(std::move(off2));
    EXPECT_EQ(soff.toJson(), soff2.toJson());
}

// --------------------------------------------------------- slice hash

TEST(SliceHashFastPath, ReductionMatchesModuloReference)
{
    Rng rng(11);
    for (unsigned n = 1; n <= 33; ++n) {
        OpaqueSliceHash hash(n, 0xfeedULL + n);
        for (int i = 0; i < 2000; ++i) {
            const Addr pa = lineAlign(rng.next());
            const std::uint64_t h =
                mix64((pa >> kLineBits) ^ (0xfeedULL + n));
            EXPECT_EQ(hash.slice(pa), h % n) << "slices " << n;
        }
    }
}

// -------------------------------------------------------- JSON parser

TEST(JsonParser, RoundTripsSuiteDocuments)
{
    ExperimentConfig cfg;
    cfg.name = "json-roundtrip";
    cfg.trials = 2;
    cfg.masterSeed = 3;
    ExperimentRunner runner(cfg);
    ExperimentResult res =
        runner.run([](TrialContext &ctx, TrialRecorder &rec) {
            rec.metric("value", static_cast<double>(ctx.index) + 0.25);
            rec.outcome("ok", ctx.index % 2 == 0);
        });
    ExperimentSuite suite("roundtrip");
    suite.contextValue("tolerance", 0.1);
    suite.add(std::move(res));

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(suite.toJson(), doc, &err)) << err;
    ASSERT_TRUE(doc.isObject());
    const JsonValue *tol = doc.find("context", "tolerance");
    ASSERT_NE(tol, nullptr);
    EXPECT_DOUBLE_EQ(tol->asNumber(), 0.1);
    const JsonValue *benches = doc.find("benchmarks");
    ASSERT_NE(benches, nullptr);
    ASSERT_TRUE(benches->isArray());
    ASSERT_EQ(benches->items().size(), 1u);
    const JsonValue &b = benches->items()[0];
    EXPECT_EQ(b.find("name")->asString(), "json-roundtrip");
    const JsonValue *mean = b.find("metrics", "value", "mean");
    ASSERT_NE(mean, nullptr);
    EXPECT_DOUBLE_EQ(mean->asNumber(), 0.75);
    const JsonValue *rate = b.find("outcomes", "ok", "rate");
    ASSERT_NE(rate, nullptr);
    EXPECT_DOUBLE_EQ(rate->asNumber(), 0.5);
}

TEST(JsonParser, ParsesScalarsAndEscapes)
{
    JsonValue v;
    ASSERT_TRUE(parseJson(R"({"s": "a\"b\\c\nd", "t": true,
                              "f": false, "n": null,
                              "xs": [1, -2.5, 3e2]})",
                          v, nullptr));
    EXPECT_EQ(v.find("s")->asString(), "a\"b\\c\nd");
    EXPECT_TRUE(v.find("t")->asBool());
    EXPECT_FALSE(v.find("f")->asBool());
    EXPECT_TRUE(v.find("n")->isNull());
    const auto &xs = v.find("xs")->items();
    ASSERT_EQ(xs.size(), 3u);
    EXPECT_DOUBLE_EQ(xs[0].asNumber(), 1.0);
    EXPECT_DOUBLE_EQ(xs[1].asNumber(), -2.5);
    EXPECT_DOUBLE_EQ(xs[2].asNumber(), 300.0);
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_EQ(v.find("xs", "nested"), nullptr);
}

TEST(JsonParser, RejectsMalformedDocuments)
{
    JsonValue v;
    std::string err;
    EXPECT_FALSE(parseJson("{", v, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(parseJson("{\"a\": }", v, nullptr));
    EXPECT_FALSE(parseJson("[1, 2", v, nullptr));
    EXPECT_FALSE(parseJson("{\"a\": 1} trailing", v, nullptr));
    EXPECT_FALSE(parseJson("\"unterminated", v, nullptr));
    EXPECT_FALSE(parseJson("nope", v, nullptr));
    EXPECT_FALSE(parseJson("", v, nullptr));
}

} // namespace
} // namespace llcf
