/**
 * @file
 * Golden-value tests for the crypto and hashing primitives: SHA-256
 * against NIST CAVS / FIPS 180-4 byte-oriented vectors beyond the
 * ones in test_crypto.cc, BigUint multiply/divide/mod round-trip
 * identities on random multi-limb operands, slice-hash uniformity and
 * pinned mappings for the default machine salts, and an ECDSA
 * sign/verify + ladder-nonce-bit round trip.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cache/slice_hash.hh"
#include "common/rng.hh"
#include "crypto/biguint.hh"
#include "crypto/ecdsa.hh"
#include "crypto/sha256.hh"

namespace llcf {
namespace {

// ------------------------------------------------------------- SHA-256

TEST(Sha256Golden, SingleBlockAsciiVectors)
{
    EXPECT_EQ(digestToHex(sha256(std::string("a"))),
              "ca978112ca1bbdcafac231b39a23dc4da786eff8147c4e72b9807785"
              "afee48bb");
    EXPECT_EQ(digestToHex(sha256(std::string("message digest"))),
              "f7846f55cf23e14eebeab5b4e1550cad5b509e3348fbc4efa3a1413d"
              "393cb650");
    EXPECT_EQ(digestToHex(sha256(
                  std::string("abcdefghijklmnopqrstuvwxyz"))),
              "71c480df93d6ae2f1efad1447c66c9525e316218cf51fc8d9ed832f2"
              "daf18b73");
    EXPECT_EQ(digestToHex(sha256(std::string(
                  "The quick brown fox jumps over the lazy dog"))),
              "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf"
              "37c9e592");
}

TEST(Sha256Golden, FipsTwoBlock896Bit)
{
    // FIPS 180-4 "long" vector: 112 bytes, forcing two blocks of
    // message before the padding block.
    EXPECT_EQ(digestToHex(sha256(std::string(
                  "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijkl"
                  "mnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopq"
                  "rstu"))),
              "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac4503"
              "7afee9d1");
}

TEST(Sha256Golden, CavsByteOrientedShortMessages)
{
    // NIST CAVS SHA256ShortMsg.rsp entries (binary, non-ASCII).
    const std::vector<std::uint8_t> one_byte{0xd3};
    EXPECT_EQ(digestToHex(sha256(one_byte)),
              "28969cdfa74a12c82f3bad960b0b000aca2ac329deea5c2328ebc6f2"
              "ba9802c1");

    const std::vector<std::uint8_t> two_bytes{0x11, 0xaf};
    EXPECT_EQ(digestToHex(sha256(two_bytes)),
              "5ca7133fa735326081558ac312c620eeca9970d1e70a4b95533d956f"
              "072d1f98");

    const std::vector<std::uint8_t> four_bytes{0x74, 0xba, 0x25, 0x21};
    EXPECT_EQ(digestToHex(sha256(four_bytes)),
              "b16aa56be3880d18cd41e68384cf1ec8c17680c45a02b1575dc15189"
              "23ae8b0e");
}

TEST(Sha256Golden, PointerOverloadMatchesContainers)
{
    const std::string msg = "message digest";
    const auto from_string = sha256(msg);
    const auto from_ptr = sha256(
        reinterpret_cast<const std::uint8_t *>(msg.data()), msg.size());
    EXPECT_EQ(from_string, from_ptr);
}

// ------------------------------------------------------------- BigUint

/** Random value of roughly @p limbs 64-bit limbs. */
BigUint
randomWide(Rng &rng, std::size_t limbs)
{
    std::vector<std::uint64_t> words(limbs);
    for (auto &w : words)
        w = rng.next();
    return BigUint::fromLimbs(std::move(words));
}

TEST(BigUintRoundTrip, MulDivModReconstructs)
{
    Rng rng(2024);
    for (int iter = 0; iter < 50; ++iter) {
        const BigUint a = randomWide(rng, 1 + iter % 9);
        BigUint b = randomWide(rng, 1 + (iter / 3) % 9);
        if (b.isZero())
            b = BigUint(1);
        const BigUint prod = a * b;
        // Exact product: division and remainder must round-trip.
        EXPECT_EQ(prod / b, a);
        EXPECT_TRUE((prod % b).isZero());
        auto [q, r] = BigUint::divmod(prod + b - BigUint(1), b);
        EXPECT_EQ(q * b + r, prod + b - BigUint(1));
        EXPECT_TRUE(r < b);
    }
}

TEST(BigUintRoundTrip, MulModMatchesWideningMultiply)
{
    Rng rng(77);
    for (int iter = 0; iter < 50; ++iter) {
        const BigUint a = randomWide(rng, 1 + iter % 9);
        const BigUint b = randomWide(rng, 1 + (iter / 5) % 9);
        BigUint m = randomWide(rng, 1 + iter % 5);
        if (m.isZero() || m.isOne())
            m = BigUint(97);
        EXPECT_EQ(BigUint::mulMod(a, b, m), (a * b) % m);
        EXPECT_EQ(BigUint::addMod(a % m, b % m, m), (a + b) % m);
        // subMod wraps into [0, m).
        const BigUint am = a % m, bm = b % m;
        const BigUint diff = BigUint::subMod(am, bm, m);
        EXPECT_TRUE(diff < m);
        EXPECT_EQ(BigUint::addMod(diff, bm, m), am);
    }
}

TEST(BigUintRoundTrip, MulModAgainstMersennePrimeInverse)
{
    // p = 2^127 - 1 (prime), so every non-zero residue is invertible.
    const BigUint p =
        BigUint::fromHex("7fffffffffffffffffffffffffffffff");
    Rng rng(5);
    for (int iter = 0; iter < 20; ++iter) {
        BigUint a = randomWide(rng, 4) % p;
        if (a.isZero())
            a = BigUint(3);
        const BigUint inv = a.invMod(p);
        EXPECT_TRUE(BigUint::mulMod(a, inv, p).isOne());
    }
}

TEST(BigUintRoundTrip, HexAndShiftRoundTrips)
{
    Rng rng(31337);
    for (int iter = 0; iter < 30; ++iter) {
        const BigUint a = randomWide(rng, 1 + iter % 10);
        EXPECT_EQ(BigUint::fromHex(a.toHex()), a);
        const unsigned k = static_cast<unsigned>(rng.nextBelow(200));
        EXPECT_EQ((a << k) >> k, a);
    }
}

// ----------------------------------------------------------- slice hash

TEST(SliceHashGolden, UniformAcrossSlicesForFixedSalts)
{
    // The pruning algorithms assume candidate addresses spread evenly
    // over slices for any salt; a skewed hash would silently inflate
    // per-set congruence and fake success rates.
    for (std::uint64_t salt : {0x5eed5a17ULL, 0xabcdef01ULL, 0x1ULL}) {
        for (unsigned slices : {8u, 26u, 28u}) {
            OpaqueSliceHash hash(slices, salt);
            std::vector<unsigned> counts(slices, 0);
            const unsigned n = 64 * 1024;
            for (unsigned i = 0; i < n; ++i) {
                // Page-stride addresses, like candidate-pool frames.
                const Addr pa = static_cast<Addr>(i) * kPageBytes;
                const unsigned s = hash.slice(pa);
                ASSERT_LT(s, slices);
                counts[s]++;
            }
            const double expect = static_cast<double>(n) / slices;
            for (unsigned s = 0; s < slices; ++s) {
                EXPECT_NEAR(counts[s], expect, expect * 0.2)
                    << "salt " << salt << " slices " << slices
                    << " slice " << s;
            }
        }
    }
}

TEST(SliceHashGolden, PinnedValuesForDefaultSalt)
{
    // Pin the mapping of the default machine salt: a drift here would
    // silently re-shuffle every scenario's ground truth.
    OpaqueSliceHash h28(28, 0x5eed5a17);
    OpaqueSliceHash h26(26, 0x5eed5a17);
    const struct
    {
        Addr pa;
        unsigned s28;
        unsigned s26;
    } golden[] = {
        {0x0ULL, 2u, 12u},
        {0x40ULL, 8u, 14u},
        {0x1000ULL, 10u, 10u},
        {0xdeadbee000ULL, 4u, 18u},
        {0x48d159e000ULL, 13u, 5u},
    };
    for (const auto &g : golden) {
        EXPECT_EQ(h28.slice(g.pa), g.s28) << std::hex << g.pa;
        EXPECT_EQ(h26.slice(g.pa), g.s26) << std::hex << g.pa;
    }
}

TEST(SliceHashGolden, XorMatrixParity)
{
    // Two mask bits -> 4 slices; slice bit i = parity(pa & mask[i]).
    XorMatrixSliceHash hash({0x40ULL, 0x80ULL});
    EXPECT_EQ(hash.slices(), 4u);
    EXPECT_EQ(hash.slice(0x000), 0u);
    EXPECT_EQ(hash.slice(0x040), 1u);
    EXPECT_EQ(hash.slice(0x080), 2u);
    EXPECT_EQ(hash.slice(0x0c0), 3u);
    EXPECT_EQ(hash.slice(0x1c0), 3u); // bit 8 not in any mask
}

// ---------------------------------------------------------------- ECDSA

TEST(EcdsaGolden, SignVerifyAndLadderBitRoundTrip)
{
    Ecdsa ecdsa(Rng{1234});
    const EcdsaKeyPair kp = ecdsa.generateKey();
    const Sha256Digest digest = sha256(std::string(
        "scenario-matrix golden message"));

    SigningRecord rec = ecdsa.signWithTrace(digest, kp.d);
    EXPECT_TRUE(ecdsa.verify(digest, rec.signature, kp.q));

    // Tampering must break verification.
    EXPECT_FALSE(ecdsa.verify(sha256(std::string("tampered")),
                              rec.signature, kp.q));
    EcdsaSignature bad = rec.signature;
    bad.s = BigUint::addMod(bad.s, BigUint(1),
                            Sect571r1::instance().order());
    EXPECT_FALSE(ecdsa.verify(digest, bad, kp.q));

    // Nonce-bit round trip: the ladder records the bits below the
    // implicit leading 1, in loop (MSB-first) order — exactly the
    // ground truth the extraction pipeline is scored against.
    ASSERT_FALSE(rec.ladderBits.empty());
    ASSERT_EQ(rec.ladderBits.size(), rec.nonce.bitLength() - 1);
    BigUint k(1);
    for (std::uint8_t bit : rec.ladderBits) {
        ASSERT_LE(bit, 1);
        k = (k << 1) + BigUint(bit);
    }
    EXPECT_EQ(k, rec.nonce);
}

TEST(EcdsaGolden, DistinctNoncesAcrossSignings)
{
    // Nonce reuse would invalidate the attack premise (and the
    // crypto); consecutive signings must draw fresh nonces.
    Ecdsa ecdsa(Rng{777});
    const EcdsaKeyPair kp = ecdsa.generateKey();
    const Sha256Digest digest = sha256(std::string("same message"));
    SigningRecord a = ecdsa.signWithTrace(digest, kp.d);
    SigningRecord b = ecdsa.signWithTrace(digest, kp.d);
    EXPECT_NE(a.nonce, b.nonce);
    EXPECT_TRUE(ecdsa.verify(digest, a.signature, kp.q));
    EXPECT_TRUE(ecdsa.verify(digest, b.signature, kp.q));
}

} // namespace
} // namespace llcf
