/**
 * @file
 * Golden-value tests for the crypto primitives: SHA-256 against NIST
 * CAVS / FIPS 180-4 byte-oriented vectors beyond the ones in
 * test_crypto.cc, and BigUint multiply/divide/mod round-trip
 * identities on random multi-limb operands.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "crypto/biguint.hh"
#include "crypto/sha256.hh"

namespace llcf {
namespace {

// ------------------------------------------------------------- SHA-256

TEST(Sha256Golden, SingleBlockAsciiVectors)
{
    EXPECT_EQ(digestToHex(sha256(std::string("a"))),
              "ca978112ca1bbdcafac231b39a23dc4da786eff8147c4e72b9807785"
              "afee48bb");
    EXPECT_EQ(digestToHex(sha256(std::string("message digest"))),
              "f7846f55cf23e14eebeab5b4e1550cad5b509e3348fbc4efa3a1413d"
              "393cb650");
    EXPECT_EQ(digestToHex(sha256(
                  std::string("abcdefghijklmnopqrstuvwxyz"))),
              "71c480df93d6ae2f1efad1447c66c9525e316218cf51fc8d9ed832f2"
              "daf18b73");
    EXPECT_EQ(digestToHex(sha256(std::string(
                  "The quick brown fox jumps over the lazy dog"))),
              "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf"
              "37c9e592");
}

TEST(Sha256Golden, FipsTwoBlock896Bit)
{
    // FIPS 180-4 "long" vector: 112 bytes, forcing two blocks of
    // message before the padding block.
    EXPECT_EQ(digestToHex(sha256(std::string(
                  "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijkl"
                  "mnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopq"
                  "rstu"))),
              "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac4503"
              "7afee9d1");
}

TEST(Sha256Golden, CavsByteOrientedShortMessages)
{
    // NIST CAVS SHA256ShortMsg.rsp entries (binary, non-ASCII).
    const std::vector<std::uint8_t> one_byte{0xd3};
    EXPECT_EQ(digestToHex(sha256(one_byte)),
              "28969cdfa74a12c82f3bad960b0b000aca2ac329deea5c2328ebc6f2"
              "ba9802c1");

    const std::vector<std::uint8_t> two_bytes{0x11, 0xaf};
    EXPECT_EQ(digestToHex(sha256(two_bytes)),
              "5ca7133fa735326081558ac312c620eeca9970d1e70a4b95533d956f"
              "072d1f98");

    const std::vector<std::uint8_t> four_bytes{0x74, 0xba, 0x25, 0x21};
    EXPECT_EQ(digestToHex(sha256(four_bytes)),
              "b16aa56be3880d18cd41e68384cf1ec8c17680c45a02b1575dc15189"
              "23ae8b0e");
}

TEST(Sha256Golden, PointerOverloadMatchesContainers)
{
    const std::string msg = "message digest";
    const auto from_string = sha256(msg);
    const auto from_ptr = sha256(
        reinterpret_cast<const std::uint8_t *>(msg.data()), msg.size());
    EXPECT_EQ(from_string, from_ptr);
}

// ------------------------------------------------------------- BigUint

/** Random value of roughly @p limbs 64-bit limbs. */
BigUint
randomWide(Rng &rng, std::size_t limbs)
{
    std::vector<std::uint64_t> words(limbs);
    for (auto &w : words)
        w = rng.next();
    return BigUint::fromLimbs(std::move(words));
}

TEST(BigUintRoundTrip, MulDivModReconstructs)
{
    Rng rng(2024);
    for (int iter = 0; iter < 50; ++iter) {
        const BigUint a = randomWide(rng, 1 + iter % 9);
        BigUint b = randomWide(rng, 1 + (iter / 3) % 9);
        if (b.isZero())
            b = BigUint(1);
        const BigUint prod = a * b;
        // Exact product: division and remainder must round-trip.
        EXPECT_EQ(prod / b, a);
        EXPECT_TRUE((prod % b).isZero());
        auto [q, r] = BigUint::divmod(prod + b - BigUint(1), b);
        EXPECT_EQ(q * b + r, prod + b - BigUint(1));
        EXPECT_TRUE(r < b);
    }
}

TEST(BigUintRoundTrip, MulModMatchesWideningMultiply)
{
    Rng rng(77);
    for (int iter = 0; iter < 50; ++iter) {
        const BigUint a = randomWide(rng, 1 + iter % 9);
        const BigUint b = randomWide(rng, 1 + (iter / 5) % 9);
        BigUint m = randomWide(rng, 1 + iter % 5);
        if (m.isZero() || m.isOne())
            m = BigUint(97);
        EXPECT_EQ(BigUint::mulMod(a, b, m), (a * b) % m);
        EXPECT_EQ(BigUint::addMod(a % m, b % m, m), (a + b) % m);
        // subMod wraps into [0, m).
        const BigUint am = a % m, bm = b % m;
        const BigUint diff = BigUint::subMod(am, bm, m);
        EXPECT_TRUE(diff < m);
        EXPECT_EQ(BigUint::addMod(diff, bm, m), am);
    }
}

TEST(BigUintRoundTrip, MulModAgainstMersennePrimeInverse)
{
    // p = 2^127 - 1 (prime), so every non-zero residue is invertible.
    const BigUint p =
        BigUint::fromHex("7fffffffffffffffffffffffffffffff");
    Rng rng(5);
    for (int iter = 0; iter < 20; ++iter) {
        BigUint a = randomWide(rng, 4) % p;
        if (a.isZero())
            a = BigUint(3);
        const BigUint inv = a.invMod(p);
        EXPECT_TRUE(BigUint::mulMod(a, inv, p).isOne());
    }
}

TEST(BigUintRoundTrip, HexAndShiftRoundTrips)
{
    Rng rng(31337);
    for (int iter = 0; iter < 30; ++iter) {
        const BigUint a = randomWide(rng, 1 + iter % 10);
        EXPECT_EQ(BigUint::fromHex(a.toHex()), a);
        const unsigned k = static_cast<unsigned>(rng.nextBelow(200));
        EXPECT_EQ((a << k) >> k, a);
    }
}

} // namespace
} // namespace llcf
