/**
 * @file
 * Tests for campaign checkpoint/resume and the fork-from-snapshot
 * execution path: exact aggregate state round-trips, atomic
 * checkpoint files, identity validation on resume, byte-identical
 * JSON from an interrupted-then-resumed campaign at mixed thread
 * counts, and the all-victims-failed fleet whose accuracy metrics are
 * legitimately absent.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "campaign/campaign.hh"
#include "campaign/checkpoint.hh"
#include "scenario/registry.hh"

namespace llcf {
namespace {

const ScenarioSpec &
forkSpec()
{
    const ScenarioSpec *spec =
        builtinScenarios().find("campaign-fork-tiny-silent-96");
    EXPECT_NE(spec, nullptr);
    return *spec;
}

std::string
tmpPath(const char *name)
{
    return testing::TempDir() + name;
}

std::string
benchEntryJson(const CampaignAggregate &agg)
{
    JsonWriter w;
    w.beginObject();
    agg.writeJsonMembers(w, "x", 42);
    w.endObject();
    return w.str();
}

// ------------------------------------------ aggregate state round-trip

TEST(CampaignAggregateState, RoundTripsThroughJsonExactly)
{
    CampaignAggregate original;
    for (std::size_t v = 0; v < 100; ++v) {
        TrialRecorder rec;
        rec.outcome("key_recovered", v % 3 != 0);
        rec.metric("total_cycles", 1e9 + static_cast<double>(v) * 0.1);
        rec.metric("bit_error_rate",
                   static_cast<double>(v % 7) / 100.0);
        original.fold(rec);
    }

    JsonWriter w;
    original.writeState(w);
    JsonValue doc;
    ASSERT_TRUE(parseJson(w.str(), doc));
    CampaignAggregate restored;
    std::string error;
    ASSERT_TRUE(CampaignAggregate::fromState(doc, restored, &error))
        << error;

    // The round trip must preserve the *emitted* bytes, not merely
    // approximate values: resumed runs serialise from restored state.
    EXPECT_EQ(benchEntryJson(original), benchEntryJson(restored));

    // ... and continue identically when more trials fold in.
    TrialRecorder more;
    more.outcome("key_recovered", true);
    more.metric("total_cycles", 2e9);
    CampaignAggregate contOriginal = original;
    contOriginal.fold(more);
    restored.fold(more);
    EXPECT_EQ(benchEntryJson(contOriginal), benchEntryJson(restored));
}

// ------------------------------------------------- checkpoint files

TEST(CampaignCheckpointFile, WritesAndLoadsFullSeedRange)
{
    CampaignCheckpoint cp;
    cp.campaign = "campaign-fork-tiny-silent-96";
    // A seed above 2^53: doubles cannot carry it, the string
    // serialisation must.
    cp.masterSeed = 0xDEADBEEFCAFEF00Dull;
    cp.fleet = 100000;
    cp.shardTrials = kCampaignShardTrials;
    cp.nextTrial = 4096;
    TrialRecorder rec;
    rec.outcome("key_recovered", true);
    rec.metric("total_cycles", 12345.5);
    cp.aggregate.fold(rec);

    const std::string path = tmpPath("cp_roundtrip.json");
    std::string error;
    ASSERT_TRUE(writeCampaignCheckpoint(path, cp, &error)) << error;

    CampaignCheckpoint loaded;
    ASSERT_TRUE(loadCampaignCheckpoint(path, loaded, &error)) << error;
    EXPECT_EQ(loaded.campaign, cp.campaign);
    EXPECT_EQ(loaded.masterSeed, cp.masterSeed);
    EXPECT_EQ(loaded.fleet, cp.fleet);
    EXPECT_EQ(loaded.shardTrials, cp.shardTrials);
    EXPECT_EQ(loaded.nextTrial, cp.nextTrial);
    EXPECT_EQ(loaded.aggregate.trials(), 1u);
    std::remove(path.c_str());
}

TEST(CampaignCheckpointFile, LoadRejectsMalformedDocument)
{
    const std::string path = tmpPath("cp_bad.json");
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"campaign\": \"x\"}", f);
    std::fclose(f);
    CampaignCheckpoint out;
    std::string error;
    EXPECT_FALSE(loadCampaignCheckpoint(path, out, &error));
    EXPECT_FALSE(error.empty());
    std::remove(path.c_str());
}

// ----------------------------------- interrupt / resume determinism

TEST(CampaignResume, ResumedJsonMatchesUninterruptedAtAnyThreadCount)
{
    // 66 victims span two shards (64 + 2), so stopping after the
    // first shard interrupts mid-campaign.  The resumed run uses a
    // different thread count than both the interrupted prefix and the
    // reference runs — the bytes must not care.
    const ScenarioSpec &spec = forkSpec();
    const std::string cp = tmpPath("cp_resume.json");
    std::remove(cp.c_str());

    CampaignRunOptions interrupt;
    interrupt.fleet = 66;
    interrupt.threads = 8;
    interrupt.masterSeed = 7;
    interrupt.checkpointPath = cp;
    interrupt.stopAfterShards = 1;
    CampaignResult partial = KeyRecoveryCampaign(spec).run(interrupt);
    EXPECT_TRUE(partial.interrupted);
    EXPECT_EQ(partial.aggregate.trials(), kCampaignShardTrials);

    CampaignRunOptions resume;
    resume.fleet = 66;
    resume.threads = 1;
    resume.masterSeed = 7;
    resume.checkpointPath = cp;
    resume.resume = true;
    CampaignResult resumed = KeyRecoveryCampaign(spec).run(resume);
    EXPECT_FALSE(resumed.interrupted);
    EXPECT_EQ(resumed.aggregate.trials(), 66u);

    CampaignSuite resumedSuite("e2e"), oneSuite("e2e"),
        eightSuite("e2e");
    resumedSuite.add(std::move(resumed));
    oneSuite.add(KeyRecoveryCampaign(spec).run(66, 1, 7));
    eightSuite.add(KeyRecoveryCampaign(spec).run(66, 8, 7));
    EXPECT_EQ(resumedSuite.toJson(), oneSuite.toJson());
    EXPECT_EQ(resumedSuite.toJson(), eightSuite.toJson());
    std::remove(cp.c_str());
}

TEST(CampaignResume, RejectsCheckpointOfDifferentRun)
{
    const ScenarioSpec &spec = forkSpec();
    const std::string cp = tmpPath("cp_mismatch.json");
    std::remove(cp.c_str());

    CampaignRunOptions first;
    first.fleet = 66;
    first.threads = 2;
    first.masterSeed = 7;
    first.checkpointPath = cp;
    first.stopAfterShards = 1;
    ASSERT_TRUE(KeyRecoveryCampaign(spec).run(first).interrupted);

    CampaignRunOptions wrongSeed = first;
    wrongSeed.stopAfterShards = 0;
    wrongSeed.resume = true;
    wrongSeed.masterSeed = 8;
    EXPECT_DEATH(KeyRecoveryCampaign(spec).run(wrongSeed),
                 "different run");
    std::remove(cp.c_str());
}

// ------------------------------------------- fork-path constraints

TEST(CampaignFork, RejectsNonUniformFleets)
{
    ScenarioSpec spec = forkSpec();
    spec.fleetLineIndexStep = 13;
    EXPECT_DEATH(KeyRecoveryCampaign{spec}, "uniform fleet");
    spec.fleetLineIndexStep = 0;
    spec.fleetNoises = {"silent", "quiescent-local"};
    EXPECT_DEATH(KeyRecoveryCampaign{spec}, "uniform fleet");
}

// --------------------------- all-victims-failed fleets (absent metrics)

TEST(CampaignBlindFailure, AbsentAccuracyMetricsStayAbsent)
{
    // A blind fork campaign whose Step-0 budget is hopeless: warmup
    // calibration fails, so *no* victim is ever attacked and the
    // accuracy metrics legitimately never exist.  The summary and the
    // JSON must represent that explicitly instead of inventing zeros.
    ScenarioSpec spec = forkSpec();
    spec.name = "campaign-fork-blind-doomed";
    spec.blindTopology = true;
    spec.calibBudgetMs = 0.001; // ~2000 cycles: cannot measure anything
    spec.assumedMaxUncertainty = 16;
    spec.assumedMaxWays = 8;
    spec.calibSamplePages = 96;

    CampaignResult res = KeyRecoveryCampaign(spec).run(3, 1, 42);
    EXPECT_EQ(res.aggregate.trials(), 3u);
    EXPECT_EQ(res.summary.keysRecovered, 0u);
    EXPECT_DOUBLE_EQ(res.summary.fleetSuccessRate, 0.0);
    EXPECT_EQ(res.aggregate.metric("recovered_fraction"), nullptr);
    EXPECT_EQ(res.aggregate.metric("bit_error_rate"), nullptr);
    // The one-time (wasted) warmup cost is still charged.
    const StreamingStats *warm = res.aggregate.metric("warmup_cycles");
    ASSERT_NE(warm, nullptr);
    EXPECT_EQ(warm->count(), 1u);
    EXPECT_DOUBLE_EQ(res.summary.totalAttackCycles, warm->sum());

    JsonWriter w;
    res.writeJson(w);
    const std::string doc = w.str();
    EXPECT_EQ(doc.find("recovered_fraction"), std::string::npos);
    EXPECT_EQ(doc.find("nan"), std::string::npos);
    EXPECT_NE(doc.find("\"cycles_per_recovered_key\": null"),
              std::string::npos);
}

} // namespace
} // namespace llcf
