/**
 * @file
 * Property tests for the four ReplPolicy kinds: exact LRU eviction
 * order against a reference recency model, Tree-PLRU tree invariants
 * (touched-way protection, full-coverage victim cycling), SRRIP
 * promotion/aging semantics, and Random's statelessness plus
 * determinism under a fixed seed.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <set>
#include <vector>

#include "cache/replacement.hh"
#include "common/rng.hh"

namespace llcf {
namespace {

const unsigned kWayCounts[] = {2, 4, 8, 11, 12, 16};

std::vector<std::uint8_t>
freshState(const ReplPolicy &p, unsigned ways)
{
    std::vector<std::uint8_t> st(std::max<std::size_t>(
        p.stateBytes(ways), 1));
    p.reset(st.data(), ways);
    return st;
}

// ----------------------------------------------------------------- LRU

TEST(LruPolicy, MatchesReferenceRecencyModel)
{
    LruPolicy p;
    Rng rng(42), vic_rng(43);
    for (unsigned ways : kWayCounts) {
        auto st = freshState(p, ways);
        // Reference model: recency list, most recent at the front.
        // reset() seeds ages as way 0 = LRU ... way (ways-1) = MRU.
        std::list<unsigned> order;
        for (unsigned w = 0; w < ways; ++w)
            order.push_front(w);

        for (int step = 0; step < 2000; ++step) {
            const unsigned expected = order.back();
            EXPECT_EQ(p.victim(st.data(), ways, vic_rng), expected)
                << ways << " ways, step " << step;
            if (rng.nextBool(0.5)) {
                // Hit a random way.
                const unsigned w = static_cast<unsigned>(
                    rng.nextBelow(ways));
                p.onHit(st.data(), ways, w);
                order.remove(w);
                order.push_front(w);
            } else {
                // Fill the victim way, as the cache array does.
                p.onFill(st.data(), ways, expected);
                order.remove(expected);
                order.push_front(expected);
            }
        }
    }
}

// ----------------------------------------------------------- Tree-PLRU

TEST(TreePlruPolicy, VictimNeverEqualsJustTouchedWayForPow2)
{
    // Full binary tree: after touching a way, every node on its path
    // points away, so the victim walk must diverge.  (With non-pow2
    // ways the out-of-range clamp can land back on the touched way —
    // a documented simplification; see NonPow2VictimStaysInRange.)
    TreePlruPolicy p;
    Rng rng(7), vic_rng(8);
    for (unsigned ways : {2u, 4u, 8u, 16u}) {
        auto st = freshState(p, ways);
        for (int step = 0; step < 2000; ++step) {
            const unsigned w = static_cast<unsigned>(
                rng.nextBelow(ways));
            p.onHit(st.data(), ways, w);
            EXPECT_NE(p.victim(st.data(), ways, vic_rng), w)
                << ways << " ways, step " << step;
        }
    }
}

TEST(TreePlruPolicy, FillVictimCycleCoversAllWaysForPow2)
{
    // For power-of-two associativity, W consecutive victim+fill pairs
    // must touch every way exactly once, from any reachable state —
    // the pseudo-LRU full-coverage guarantee.
    TreePlruPolicy p;
    Rng rng(11), vic_rng(12);
    for (unsigned ways : {2u, 4u, 8u, 16u}) {
        auto st = freshState(p, ways);
        for (int round = 0; round < 50; ++round) {
            // Scramble into an arbitrary reachable state.
            for (int i = 0; i < 5; ++i) {
                p.onHit(st.data(), ways,
                        static_cast<unsigned>(rng.nextBelow(ways)));
            }
            std::set<unsigned> seen;
            for (unsigned i = 0; i < ways; ++i) {
                const unsigned v = p.victim(st.data(), ways, vic_rng);
                ASSERT_LT(v, ways);
                EXPECT_TRUE(seen.insert(v).second)
                    << ways << " ways: way " << v << " evicted twice "
                    << "within one generation";
                p.onFill(st.data(), ways, v);
            }
            EXPECT_EQ(seen.size(), ways);
        }
    }
}

TEST(TreePlruPolicy, NonPow2VictimStaysInRange)
{
    TreePlruPolicy p;
    Rng rng(13), vic_rng(14);
    for (unsigned ways : {3u, 11u, 12u}) {
        auto st = freshState(p, ways);
        for (int step = 0; step < 2000; ++step) {
            const unsigned v = p.victim(st.data(), ways, vic_rng);
            EXPECT_LT(v, ways);
            p.onFill(st.data(), ways,
                     static_cast<unsigned>(rng.nextBelow(ways)));
        }
    }
}

// --------------------------------------------------------------- SRRIP

TEST(SrripPolicy, ColdSetEvictsLowestIndexAndFillsProtect)
{
    SrripPolicy p;
    Rng vic_rng(21);
    const unsigned ways = 8;
    auto st = freshState(p, ways);
    // All ways start at RRPV max: way 0 is the first victim.
    EXPECT_EQ(p.victim(st.data(), ways, vic_rng), 0u);
    // A fill inserts with a long re-reference interval (max-1), so a
    // freshly filled way is not the next victim while aged ways exist.
    p.onFill(st.data(), ways, 0);
    EXPECT_EQ(p.victim(st.data(), ways, vic_rng), 1u);
}

TEST(SrripPolicy, HitPromotionOutlivesOneAgingRound)
{
    SrripPolicy p;
    Rng vic_rng(22);
    const unsigned ways = 4;
    auto st = freshState(p, ways);
    for (unsigned w = 0; w < ways; ++w)
        p.onFill(st.data(), ways, w); // all at RRPV 2
    p.onHit(st.data(), ways, 2);      // way 2 promoted to RRPV 0

    // Aging raises everyone until some way reaches max; way 2 stays
    // below max through that round, so it is not the victim.
    const unsigned v = p.victim(st.data(), ways, vic_rng);
    EXPECT_NE(v, 2u);
    EXPECT_EQ(v, 0u); // ties broken by lowest index

    // Evicting + refilling the victims repeatedly must eventually
    // come back to way 2 (no starvation).
    std::set<unsigned> evicted{v};
    p.onFill(st.data(), ways, v);
    for (int i = 0; i < 16 && evicted.size() < ways; ++i) {
        const unsigned next = p.victim(st.data(), ways, vic_rng);
        evicted.insert(next);
        p.onFill(st.data(), ways, next);
    }
    EXPECT_EQ(evicted.size(), ways);
}

TEST(SrripPolicy, AgingTerminates)
{
    // victim() must return even when every way was just promoted.
    SrripPolicy p;
    Rng vic_rng(23);
    const unsigned ways = 12;
    auto st = freshState(p, ways);
    for (unsigned w = 0; w < ways; ++w) {
        p.onFill(st.data(), ways, w);
        p.onHit(st.data(), ways, w);
    }
    EXPECT_LT(p.victim(st.data(), ways, vic_rng), ways);
}

// -------------------------------------------------------------- Random

TEST(RandomPolicy, StatelessAndSeedDeterministic)
{
    RandomPolicy p;
    EXPECT_EQ(p.stateBytes(16), 0u);

    for (unsigned ways : kWayCounts) {
        Rng a(777), b(777), c(778);
        auto st = freshState(p, ways);
        bool diverged = false;
        for (int i = 0; i < 200; ++i) {
            const unsigned va = p.victim(st.data(), ways, a);
            const unsigned vb = p.victim(st.data(), ways, b);
            const unsigned vc = p.victim(st.data(), ways, c);
            EXPECT_EQ(va, vb) << "same seed must replay identically";
            diverged |= va != vc;
        }
        if (ways > 1) {
            EXPECT_TRUE(diverged) << "distinct seeds should differ";
        }
    }
}

TEST(RandomPolicy, RoughlyUniformVictims)
{
    RandomPolicy p;
    const unsigned ways = 8;
    Rng rng(31415);
    auto st = freshState(p, ways);
    std::vector<unsigned> counts(ways, 0);
    const int n = 8000;
    for (int i = 0; i < n; ++i)
        counts[p.victim(st.data(), ways, rng)]++;
    for (unsigned w = 0; w < ways; ++w) {
        EXPECT_NEAR(counts[w], n / ways, n / ways * 0.25)
            << "way " << w;
    }
}

// -------------------------------------------------------------- common

TEST(ReplPolicy, FactoryRoundTripsKind)
{
    for (ReplKind kind : kAllReplKinds) {
        auto p = makeReplPolicy(kind);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p->kind(), kind);
    }
}

TEST(ReplPolicy, ParseNamesRoundTrip)
{
    for (ReplKind kind : kAllReplKinds) {
        ReplKind parsed;
        ASSERT_TRUE(parseReplKind(replKindName(kind), parsed));
        EXPECT_EQ(parsed, kind);
    }
    ReplKind out;
    EXPECT_TRUE(parseReplKind("treeplru", out));
    EXPECT_EQ(out, ReplKind::TreePLRU);
    EXPECT_FALSE(parseReplKind("mru", out));
    EXPECT_FALSE(parseReplKind("", out));
}

} // namespace
} // namespace llcf
